// perf_check: compares two bench_baseline JSON files and fails on host-perf
// regressions.
//
// Reads the baseline (checked-in BENCH_*.json) and the current run, matches
// rows by (workload, scheme, seed), and compares the *aggregate* cycles_per_s
// over the shared rows. Aggregating before comparing keeps single-row wall
// clock noise from tripping the gate; the threshold (default 30%) absorbs
// host-to-host variance between the machine that recorded the baseline and
// the CI runner.
//
//   usage: perf_check BASELINE.json CURRENT.json [--max-regression 0.30]
//
// Exit codes: 0 = within threshold, 1 = regression, 2 = usage/parse error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "sim/jsonio.hpp"

namespace {

namespace jio = puno::sim::jsonio;

using RowKey = std::tuple<std::string, std::string, std::uint64_t>;

/// One bench run row: (workload, scheme, seed) -> cycles_per_s.
struct BenchFile {
  std::map<RowKey, double> rows;
};

bool parse_run(std::string_view& s, BenchFile& out) {
  if (!jio::consume(s, '{')) return false;
  std::string workload;
  std::string scheme;
  std::uint64_t seed = 0;
  double cps = 0.0;
  for (;;) {
    std::string key;
    if (!jio::parse_string(s, key) || !jio::consume(s, ':')) return false;
    if (key == "workload") {
      if (!jio::parse_string(s, workload)) return false;
    } else if (key == "scheme") {
      if (!jio::parse_string(s, scheme)) return false;
    } else if (key == "seed") {
      if (!jio::parse_u64(s, seed)) return false;
    } else if (key == "cycles_per_s") {
      if (!jio::parse_double(s, cps)) return false;
    } else {
      if (!jio::skip_value(s)) return false;  // components, cycles, ...
    }
    if (jio::consume(s, ',')) continue;
    break;
  }
  if (!jio::consume(s, '}')) return false;
  out.rows[RowKey{workload, scheme, seed}] = cps;
  return true;
}

bool parse_bench(const std::string& path, BenchFile& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_check: cannot read '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::string_view s = text;
  if (!jio::consume(s, '{')) return false;
  for (;;) {
    std::string key;
    if (!jio::parse_string(s, key) || !jio::consume(s, ':')) return false;
    if (key == "runs") {
      if (!jio::consume(s, '[')) return false;
      jio::skip_ws(s);
      if (!jio::consume(s, ']')) {
        for (;;) {
          if (!parse_run(s, out)) return false;
          if (jio::consume(s, ',')) continue;
          if (!jio::consume(s, ']')) return false;
          break;
        }
      }
    } else {
      if (!jio::skip_value(s)) return false;  // schema, ticks_per_second
    }
    if (jio::consume(s, ',')) continue;
    break;
  }
  return jio::consume(s, '}');
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string cur_path;
  double max_regression = 0.30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regression") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_check: missing value for %s\n",
                     arg.c_str());
        return 2;
      }
      max_regression = std::atof(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: perf_check BASELINE.json CURRENT.json"
          " [--max-regression 0.30]\n");
      return 0;
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (cur_path.empty()) {
      cur_path = arg;
    } else {
      std::fprintf(stderr, "perf_check: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (cur_path.empty()) {
    std::fprintf(stderr,
                 "usage: perf_check BASELINE.json CURRENT.json"
                 " [--max-regression 0.30]\n");
    return 2;
  }

  BenchFile base;
  BenchFile cur;
  if (!parse_bench(base_path, base) || !parse_bench(cur_path, cur)) {
    std::fprintf(stderr, "perf_check: malformed bench JSON\n");
    return 2;
  }

  double base_sum = 0.0;
  double cur_sum = 0.0;
  std::size_t shared = 0;
  // Per-(workload, scheme) sums across seeds, for the worst-regression
  // table below — single rows are noisy, a whole cell less so.
  std::map<std::pair<std::string, std::string>, std::pair<double, double>>
      cells;
  for (const auto& [key, base_cps] : base.rows) {
    const auto it = cur.rows.find(key);
    if (it == cur.rows.end()) continue;
    ++shared;
    base_sum += base_cps;
    cur_sum += it->second;
    auto& cell = cells[{std::get<0>(key), std::get<1>(key)}];
    cell.first += base_cps;
    cell.second += it->second;
    std::printf("%-12s %-9s seed %llu: %10.0f -> %10.0f cycles/s (%.2fx)\n",
                std::get<0>(key).c_str(), std::get<1>(key).c_str(),
                static_cast<unsigned long long>(std::get<2>(key)), base_cps,
                it->second, base_cps > 0 ? it->second / base_cps : 0.0);
  }
  if (shared == 0) {
    std::fprintf(stderr, "perf_check: no shared (workload, scheme, seed)"
                 " rows between '%s' and '%s'\n",
                 base_path.c_str(), cur_path.c_str());
    return 2;
  }
  // Worst regressions first, one row per workload x scheme cell: pinpoints
  // which configuration dragged the aggregate down when the gate trips.
  std::vector<std::tuple<double, std::string, std::string>> table;
  for (const auto& [cell, sums] : cells) {
    table.emplace_back(sums.first > 0.0 ? sums.second / sums.first : 0.0,
                       cell.first, cell.second);
  }
  std::sort(table.begin(), table.end());
  std::printf("\nworst cells (workload x scheme, seeds pooled):\n");
  const std::size_t show = std::min<std::size_t>(table.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    std::printf("  %-12s %-9s %.2fx\n", std::get<1>(table[i]).c_str(),
                std::get<2>(table[i]).c_str(), std::get<0>(table[i]));
  }

  const double ratio = base_sum > 0.0 ? cur_sum / base_sum : 0.0;
  std::printf("aggregate over %zu shared rows: %.0f -> %.0f cycles/s"
              " (%.2fx, floor %.2fx)\n",
              shared, base_sum, cur_sum, ratio, 1.0 - max_regression);
  if (ratio < 1.0 - max_regression) {
    std::fprintf(stderr,
                 "perf_check: FAIL — aggregate cycles_per_s regressed to"
                 " %.2fx of baseline (allowed floor %.2fx)\n",
                 ratio, 1.0 - max_regression);
    return 1;
  }
  std::printf("perf_check: OK\n");
  return 0;
}
