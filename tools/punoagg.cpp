// punoagg: cross-run fleet aggregator (docs/RUNNER.md).
//
//   ./punoagg sweepA/runs.jsonl sweepB/runs.jsonl \
//       --results sweepA/out.jsonl --results sweepB/out.jsonl \
//       --aggregate fleet.jsonl --fleet fleet.html \
//       --bench BENCH_old.json --bench BENCH_current.json
//
// Walks one or more punobatch manifests, joins each with its result JSONL
// (k-th --results pairs with the k-th manifest) and per-job telemetry
// series, and emits: the deterministic aggregate JSONL (merged append-safe
// into --aggregate via atomic temp + rename), the self-contained fleet
// dashboard (--fleet), and, over two or more bench_baseline snapshots
// (--bench), the perf-trajectory report. Exits 1 when the newest trajectory
// step has a flagged regression or --verify finds a non-canonical aggregate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runner/aggregate.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s MANIFEST... [options]\n"
      "  MANIFEST           punobatch --manifest JSONL (repeatable)\n"
      "  --results FILE     punobatch --jsonl results; the k-th --results\n"
      "                     joins the k-th MANIFEST (row metrics + heatmap\n"
      "                     data appear in the aggregate)\n"
      "  --aggregate FILE   merge the rows into FILE (append-safe: existing\n"
      "                     rows survive unless re-keyed; atomic publish)\n"
      "  --fleet FILE       write the fleet dashboard HTML\n"
      "  --bench FILE       bench_baseline snapshot for the trajectory\n"
      "                     report (repeatable; >= 2 to diff)\n"
      "  --trajectory FILE  trajectory report destination (default stdout)\n"
      "  --max-regression X flag rows whose throughput ratio drops below X\n"
      "                     (default 0.70)\n"
      "  --verify           re-read --aggregate after publishing and check\n"
      "                     every row re-serializes byte-identically\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puno;
  namespace fs = std::filesystem;

  std::vector<std::string> manifests, results, benches;
  std::string aggregate_path, fleet_path, trajectory_path;
  double max_regression = 0.70;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--results") {
      results.push_back(next());
    } else if (arg == "--aggregate") {
      aggregate_path = next();
    } else if (arg == "--fleet") {
      fleet_path = next();
    } else if (arg == "--bench") {
      benches.push_back(next());
    } else if (arg == "--trajectory") {
      trajectory_path = next();
    } else if (arg == "--max-regression") {
      max_regression = std::atof(next());
      if (max_regression <= 0.0 || max_regression > 1.0) {
        std::fprintf(stderr, "--max-regression must be in (0, 1]\n");
        return 2;
      }
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      manifests.push_back(arg);
    }
  }
  if (manifests.empty() && benches.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (results.size() > manifests.size()) {
    std::fprintf(stderr, "punoagg: %zu --results for %zu manifests\n",
                 results.size(), manifests.size());
    return 2;
  }

  std::vector<runner::AggregateRow> rows;
  try {
    for (std::size_t i = 0; i < manifests.size(); ++i) {
      const fs::path res =
          i < results.size() ? fs::path(results[i]) : fs::path();
      auto batch = runner::aggregate_manifest(manifests[i], res);
      rows.insert(rows.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "punoagg: %s\n", e.what());
    return 2;
  }
  // Later manifests win on a key collision, mirroring publish_aggregate.
  {
    std::map<std::string, std::size_t> by_key;
    std::vector<runner::AggregateRow> unique;
    for (auto& row : rows) {
      const auto it = by_key.find(row.key);
      if (it == by_key.end()) {
        by_key.emplace(row.key, unique.size());
        unique.push_back(std::move(row));
      } else {
        unique[it->second] = std::move(row);
      }
    }
    rows = std::move(unique);
  }
  runner::sort_aggregate(rows);
  if (!manifests.empty()) {
    std::printf("punoagg: %zu rows from %zu manifest%s\n", rows.size(),
                manifests.size(), manifests.size() == 1 ? "" : "s");
  }

  if (!aggregate_path.empty()) {
    std::string err;
    if (!runner::publish_aggregate(aggregate_path, rows, &err)) {
      std::fprintf(stderr, "punoagg: %s\n", err.c_str());
      return 1;
    }
    // The fleet view below reflects the merged file, not just this batch.
    std::vector<runner::AggregateRow> merged;
    std::ifstream in(aggregate_path);
    std::string line;
    std::size_t lineno = 0;
    bool verify_ok = true;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      runner::AggregateRow row;
      if (!runner::parse_aggregate_row(line, row, &err)) {
        std::fprintf(stderr, "punoagg: %s: line %zu: %s\n",
                     aggregate_path.c_str(), lineno, err.c_str());
        return 1;
      }
      if (verify) {
        std::ostringstream rt;
        runner::write_aggregate_row(row, rt);
        if (rt.str() != line + "\n") {
          std::fprintf(stderr,
                       "punoagg: verify: line %zu does not round-trip\n",
                       lineno);
          verify_ok = false;
        }
      }
      merged.push_back(std::move(row));
    }
    if (verify) {
      std::printf("verify               %zu rows round-trip: %s\n",
                  merged.size(), verify_ok ? "ok" : "FAILED");
      if (!verify_ok) return 1;
    }
    std::printf("aggregate            %zu rows -> %s\n", merged.size(),
                aggregate_path.c_str());
    rows = std::move(merged);
  }

  if (!fleet_path.empty()) {
    std::ofstream out(fleet_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "punoagg: cannot write '%s'\n",
                   fleet_path.c_str());
      return 1;
    }
    runner::write_fleet_dashboard(rows, out);
    std::printf("fleet dashboard      -> %s\n", fleet_path.c_str());
  }

  if (!benches.empty()) {
    std::vector<runner::BenchSnapshot> snaps;
    for (const std::string& b : benches) {
      runner::BenchSnapshot snap;
      std::string err;
      if (!runner::read_bench_snapshot(b, snap, &err)) {
        std::fprintf(stderr, "punoagg: %s\n", err.c_str());
        return 2;
      }
      snaps.push_back(std::move(snap));
    }
    std::size_t flagged = 0;
    if (trajectory_path.empty() || trajectory_path == "-") {
      flagged = runner::write_trajectory_report(std::move(snaps),
                                                max_regression, std::cout);
    } else {
      std::ofstream out(trajectory_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "punoagg: cannot write '%s'\n",
                     trajectory_path.c_str());
        return 1;
      }
      flagged = runner::write_trajectory_report(std::move(snaps),
                                                max_regression, out);
      std::printf("trajectory report    -> %s\n", trajectory_path.c_str());
    }
    if (flagged > 0) {
      std::fprintf(stderr,
                   "punoagg: %zu regression%s flagged in the newest step\n",
                   flagged, flagged == 1 ? "" : "s");
      return 1;
    }
  }
  return 0;
}
