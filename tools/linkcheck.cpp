// linkcheck: documentation link checker for the repository's Markdown.
//
// Scans every *.md under the given roots (default: current directory,
// skipping build*/ and dot-directories) and verifies
//
//   * relative links `[text](path)` resolve to an existing file/directory,
//   * anchored links `[text](path#anchor)` and same-file `[text](#anchor)`
//     name a real heading in the target file (GitHub anchor slugging),
//
// printing every broken link as `file:line: message` and exiting 1 if any.
// External schemes (http:, https:, mailto:) are out of scope — CI must not
// depend on the network. Fenced code blocks and inline code spans are
// ignored, so example snippets can show link syntax freely.
//
// Wired into the test suite under the `docs_links` ctest label.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Link {
  std::string target;  // raw link destination
  std::size_t line = 0;
};

[[nodiscard]] bool is_external(std::string_view target) {
  return target.starts_with("http://") || target.starts_with("https://") ||
         target.starts_with("mailto:") || target.starts_with("ftp://");
}

/// GitHub's heading → anchor slug: lowercase, drop everything but
/// alphanumerics, spaces and hyphens, then spaces → hyphens.
[[nodiscard]] std::string slugify(std::string_view heading) {
  std::string slug;
  slug.reserve(heading.size());
  for (const char ch : heading) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      slug.push_back(static_cast<char>(std::tolower(c)));
    } else if (c == ' ' || c == '-' || c == '_') {
      slug.push_back(c == ' ' ? '-' : static_cast<char>(c));
    }
    // every other character (punctuation, backticks, slashes) is dropped
  }
  return slug;
}

/// Strip markdown emphasis/code markers GitHub removes before slugging.
[[nodiscard]] std::string strip_inline_markup(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '`' || c == '*') continue;
    if (c == '[') continue;
    if (c == ']') {
      // drop a trailing "(url)" of an inline link inside the heading
      if (i + 1 < s.size() && s[i + 1] == '(') {
        const std::size_t close = s.find(')', i + 1);
        if (close != std::string_view::npos) i = close;
      }
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Anchors available in one markdown file: the slug of every ATX heading,
/// with GitHub's -1, -2 suffixes for duplicates.
[[nodiscard]] std::set<std::string> collect_anchors(const fs::path& file) {
  std::set<std::string> anchors;
  std::map<std::string, int> seen;
  std::ifstream in(file);
  std::string line;
  bool in_fence = false;
  while (std::getline(in, line)) {
    std::string_view v(line);
    if (v.starts_with("```") || v.starts_with("~~~")) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence || !v.starts_with("#")) continue;
    std::size_t level = 0;
    while (level < v.size() && v[level] == '#') ++level;
    if (level > 6 || level == v.size() || v[level] != ' ') continue;
    std::string text(v.substr(level + 1));
    // trim trailing closing hashes/space ("## title ##")
    while (!text.empty() && (text.back() == '#' || text.back() == ' ')) {
      text.pop_back();
    }
    const std::string slug = slugify(strip_inline_markup(text));
    const int n = seen[slug]++;
    anchors.insert(n == 0 ? slug : slug + "-" + std::to_string(n));
  }
  return anchors;
}

/// Inline `[text](target)` links outside code fences and `code spans`,
/// including images; reference-style links are not used in this repo.
[[nodiscard]] std::vector<Link> collect_links(const fs::path& file) {
  std::vector<Link> links;
  std::ifstream in(file);
  std::string line;
  std::size_t lineno = 0;
  bool in_fence = false;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view v(line);
    if (v.starts_with("```") || v.starts_with("~~~")) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    bool in_code_span = false;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == '`') {
        in_code_span = !in_code_span;
        continue;
      }
      if (in_code_span || v[i] != ']' || i + 1 >= v.size() ||
          v[i + 1] != '(') {
        continue;
      }
      // confirm there is a matching '[' before us on this line
      const std::size_t open = v.rfind('[', i);
      if (open == std::string_view::npos) continue;
      const std::size_t close = v.find(')', i + 2);
      if (close == std::string_view::npos) continue;
      std::string target(v.substr(i + 2, close - (i + 2)));
      // drop an optional title: [x](path "title")
      if (const std::size_t sp = target.find(' ');
          sp != std::string::npos) {
        target.resize(sp);
      }
      if (!target.empty()) links.push_back({target, lineno});
      i = close;
    }
  }
  return links;
}

[[nodiscard]] bool should_skip_dir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name.starts_with(".") || name.starts_with("build") ||
         name == "node_modules";
}

[[nodiscard]] std::vector<fs::path> find_markdown(const fs::path& root) {
  std::vector<fs::path> files;
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied);
  for (const auto& entry : it) {
    if (entry.is_directory() && should_skip_dir(entry.path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (entry.is_regular_file() && entry.path().extension() == ".md") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots.emplace_back(".");

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!fs::exists(root)) {
      std::fprintf(stderr, "linkcheck: no such path: %s\n",
                   root.string().c_str());
      return 2;
    }
    auto found = find_markdown(root);
    files.insert(files.end(), found.begin(), found.end());
  }

  int broken = 0;
  std::size_t checked = 0;
  std::map<fs::path, std::set<std::string>> anchor_cache;
  const auto anchors_of = [&](const fs::path& f) -> const std::set<std::string>& {
    const fs::path key = fs::weakly_canonical(f);
    auto it = anchor_cache.find(key);
    if (it == anchor_cache.end()) {
      it = anchor_cache.emplace(key, collect_anchors(f)).first;
    }
    return it->second;
  };

  for (const fs::path& file : files) {
    for (const Link& link : collect_links(file)) {
      if (is_external(link.target)) continue;
      ++checked;
      std::string path_part = link.target;
      std::string anchor;
      if (const std::size_t hash = path_part.find('#');
          hash != std::string::npos) {
        anchor = path_part.substr(hash + 1);
        path_part.resize(hash);
      }
      const fs::path target_file =
          path_part.empty() ? file : file.parent_path() / path_part;
      if (!fs::exists(target_file)) {
        std::fprintf(stderr, "%s:%zu: broken link: %s (file not found)\n",
                     file.string().c_str(), link.line,
                     link.target.c_str());
        ++broken;
        continue;
      }
      if (!anchor.empty()) {
        if (target_file.extension() != ".md") continue;  // HTML ids etc.
        const auto& anchors = anchors_of(target_file);
        if (!anchors.contains(anchor)) {
          std::fprintf(stderr,
                       "%s:%zu: broken anchor: %s (no heading '#%s' in %s)\n",
                       file.string().c_str(), link.line,
                       link.target.c_str(), anchor.c_str(),
                       target_file.string().c_str());
          ++broken;
        }
      }
    }
  }

  std::printf("linkcheck: %zu markdown files, %zu relative links, %d broken\n",
              files.size(), checked, broken);
  return broken == 0 ? 0 : 1;
}
