// Figure 14: transaction execution efficiency — the ratio of cycles spent
// in committed transactions (good effort) to cycles spent in aborted ones
// (discarded effort). Larger is better. Paper: PUNO's G/D ratio beats
// Baseline / random backoff / RMW-Pred by 1.65x / 1.24x / 2.11x on average.
#include "bench/fig_common.hpp"

int main() {
  puno::bench::run_scheme_figure(
      "Figure 14 — G/D ratio (good / discarded transaction effort)",
      [](const puno::metrics::RunResult& r) { return r.gd_ratio(); },
      "Paper shape: PUNO highest (values here are normalized to Baseline,"
      "\nso >1 means better execution efficiency than Baseline).");
  return 0;
}
