// Ablation (DESIGN.md): separate PUNO's two mechanisms — predictive unicast
// and notification — and measure each in isolation on the high-contention
// set. Not a paper figure, but the decomposition Section III argues for.
#include <cstdio>

#include "bench/common/bench_util.hpp"
#include "workloads/stamp.hpp"

int main() {
  using namespace puno;
  using metrics::ExperimentParams;

  const std::vector<std::string> hc = {"bayes", "intruder", "labyrinth",
                                       "yada"};
  struct Variant {
    const char* name;
    Scheme scheme;
    bool unicast;
    bool notification;
  };
  const Variant variants[] = {
      {"Baseline", Scheme::kBaseline, false, false},
      {"Unicast", Scheme::kPuno, true, false},
      {"Notify", Scheme::kPuno, false, true},
      {"PUNO", Scheme::kPuno, true, true},
  };

  std::printf("PUNO ablation — unicast vs. notification (high-contention "
              "set)\n");
  std::printf("============================================================="
              "==\n");
  std::printf("%-11s %-9s %10s %10s %12s %10s %8s\n", "Benchmark", "Variant",
              "Cycles", "Aborts", "Traffic", "FalseAb", "Hit%");
  for (const std::string& w : hc) {
    for (const Variant& v : variants) {
      ExperimentParams p;
      p.workload = w;
      p.scheme = v.scheme;
      p.base_config.puno.enable_unicast = v.unicast;
      p.base_config.puno.enable_notification = v.notification;
      const auto r = bench::cached_run(p);
      std::printf("%-11s %-9s %10llu %10llu %12llu %10llu %7.1f%%\n",
                  w.c_str(), v.name,
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.aborts),
                  static_cast<unsigned long long>(r.router_traversals),
                  static_cast<unsigned long long>(r.false_abort_events),
                  r.prediction_hit_rate() * 100.0);
    }
  }
  std::printf("\nReading: Unicast alone removes most false aborting; "
              "Notify alone removes\nmost polling traffic; PUNO composes "
              "both (Section III).\n");
  return 0;
}
