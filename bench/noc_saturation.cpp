// Standalone NoC characterization: average packet latency versus offered
// load for the classic synthetic patterns. Not a paper figure — it
// validates that the mesh substrate behaves like a real VC-router network
// (flat latency at low load, a knee, then saturation), which the protocol
// experiments implicitly rely on.
#include <cstdio>

#include "noc/traffic.hpp"

int main() {
  using namespace puno;
  using noc::TrafficPattern;

  std::printf("NoC saturation — 4x4 mesh, single-flit packets\n");
  std::printf("===============================================\n");
  std::printf("%-14s", "rate");
  const TrafficPattern patterns[] = {
      TrafficPattern::kUniformRandom, TrafficPattern::kHotspot,
      TrafficPattern::kTranspose, TrafficPattern::kNearestNeighbour};
  for (auto p : patterns) std::printf(" %14s", to_string(p));
  std::printf("\n");

  for (double rate : {0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    std::printf("%-14.2f", rate);
    for (auto p : patterns) {
      sim::Kernel kernel;
      NocConfig cfg;
      noc::Mesh mesh(kernel, cfg);
      kernel.add_tickable(mesh);
      noc::TrafficGenerator gen(kernel, mesh, cfg, p, rate);
      kernel.add_tickable(gen);
      kernel.run_for(8000);
      const auto r = gen.results(8000);
      const bool saturated = r.delivered + 200 < r.injected;
      if (saturated) {
        std::printf(" %12s**", "sat");
      } else {
        std::printf(" %14.1f", r.avg_latency);
      }
    }
    std::printf("\n");
  }
  std::printf("\n(cells: average packet latency in cycles; ** = offered load"
              "\n exceeds sustainable throughput)\n");
  return 0;
}
