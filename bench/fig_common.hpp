// Shared body for the Figures 10-14 benches: run the 8-workload x 4-scheme
// sweep and print one metric as a paper-style normalized figure.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "workloads/stamp.hpp"

namespace puno::bench {

using MetricFn = std::function<double(const metrics::RunResult&)>;

/// Seeds averaged by every figure (the paper's runs amortize far more
/// dynamic transactions than one seed of ours; three seeds keep the
/// normalized ratios stable to within ~1%).
inline const std::vector<std::uint64_t>& figure_seeds() {
  static const std::vector<std::uint64_t> seeds = {1, 2, 3};
  return seeds;
}

inline void run_scheme_figure(const std::string& title, const MetricFn& metric,
                              const std::string& paper_note) {
  const std::vector<Scheme> schemes = {Scheme::kBaseline,
                                       Scheme::kRandomBackoff,
                                       Scheme::kRmwPred, Scheme::kPuno};
  std::vector<Series> series;
  for (Scheme s : schemes) {
    Series col;
    col.name = to_string(s);
    for (std::uint64_t seed : figure_seeds()) {
      const auto suite = cached_suite(s, seed);
      if (col.values.empty()) col.values.resize(suite.size(), 0.0);
      for (std::size_t i = 0; i < suite.size(); ++i) {
        col.values[i] += metric(suite[i]) / figure_seeds().size();
      }
    }
    series.push_back(std::move(col));
  }
  print_normalized(title, workloads::stamp::benchmark_names(), series);
  std::printf("\n%s\n", paper_note.c_str());
}

}  // namespace puno::bench
