// Shared body for the Figures 10-14 benches: run the 8-workload x 4-scheme
// x 3-seed sweep as ONE sharded runner batch (96 jobs; PUNO_JOBS workers,
// results cached) and print one metric as a paper-style normalized figure.
// The runner's summary line reports wall time vs. summed sim time, i.e. the
// parallel speedup of the sweep itself.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench/common/bench_util.hpp"
#include "workloads/stamp.hpp"

namespace puno::bench {

using MetricFn = std::function<double(const metrics::RunResult&)>;

/// Seeds averaged by every figure (the paper's runs amortize far more
/// dynamic transactions than one seed of ours; three seeds keep the
/// normalized ratios stable to within ~1%).
inline const std::vector<std::uint64_t>& figure_seeds() {
  static const std::vector<std::uint64_t> seeds = {1, 2, 3};
  return seeds;
}

inline void run_scheme_figure(const std::string& title, const MetricFn& metric,
                              const std::string& paper_note) {
  const std::vector<Scheme> schemes = {Scheme::kBaseline,
                                       Scheme::kRandomBackoff,
                                       Scheme::kRmwPred, Scheme::kPuno};
  const SweepGrid grid = cached_sweep(schemes, figure_seeds());
  std::vector<Series> series;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    Series col;
    col.name = to_string(schemes[s]);
    col.values.resize(grid.workloads.size(), 0.0);
    for (std::size_t k = 0; k < grid.seeds.size(); ++k) {
      for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
        col.values[w] +=
            metric(grid.at(s, k, w)) / static_cast<double>(grid.seeds.size());
      }
    }
    series.push_back(std::move(col));
  }
  print_normalized(title, grid.workloads, series);
  std::printf("\n%s\n", paper_note.c_str());
}

}  // namespace puno::bench
