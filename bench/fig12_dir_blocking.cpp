// Figure 12: normalized cycles a directory entry stays in the blocking
// transient state while servicing a transactional GETX. Paper: PUNO
// eliminates 18% on average (42% in labyrinth, whose writers otherwise wait
// for responses from a large sharer set).
#include "bench/fig_common.hpp"

int main() {
  puno::bench::run_scheme_figure(
      "Figure 12 — directory blocking while servicing transactional GETX",
      [](const puno::metrics::RunResult& r) { return r.dir_blocked_mean; },
      "Paper shape: PUNO below Baseline — a unicast needs one response"
      "\ninstead of one per sharer, so the entry unblocks sooner.");
  return 0;
}
