// Extension study (paper Section VI, future work): commit-triggered retry
// hints on top of PUNO. The sensitivity bench shows notification estimates
// overestimate when nackers finish early (commit before their TxLB average,
// or abort); the hint closes exactly that gap. Compare Baseline, PUNO and
// PUNO+Hint across the full suite.
#include <cstdio>

#include "bench/common/bench_util.hpp"
#include "workloads/stamp.hpp"

int main() {
  using namespace puno;
  std::printf("Extension — commit-triggered retry hints on top of PUNO\n");
  std::printf("========================================================\n");
  std::printf("%-11s | %9s %9s | %9s %9s | %9s %9s\n", "Benchmark", "PUNOcyc",
              "Hintcyc", "PUNOab", "Hintab", "hints", "wakeups");
  for (const std::string& w : workloads::stamp::benchmark_names()) {
    metrics::ExperimentParams p;
    p.workload = w;
    p.scheme = Scheme::kBaseline;
    const auto base = bench::cached_run(p);
    p.scheme = Scheme::kPuno;
    const auto puno = bench::cached_run(p);
    p.base_config.puno.enable_commit_hint = true;
    const auto hint = bench::cached_run(p);
    std::printf("%-11s | %9.3f %9.3f | %9.3f %9.3f | %9llu %9llu\n",
                w.c_str(),
                static_cast<double>(puno.cycles) / base.cycles,
                static_cast<double>(hint.cycles) / base.cycles,
                static_cast<double>(puno.aborts) / base.aborts,
                static_cast<double>(hint.aborts) / base.aborts,
                static_cast<unsigned long long>(hint.commit_hints_sent),
                static_cast<unsigned long long>(hint.hint_wakeups));
  }
  std::printf("\n(cycles and aborts normalized to Baseline; hints add one\n"
              "single-flit message per released waiter)\n");
  return 0;
}
