// bench_baseline: host-performance baseline for CI trend tracking.
//
// Drives arch::Cmp directly (no runner, no result cache — the point is the
// wall clock, which a cache hit would fake) for a workload x scheme grid,
// with the telemetry::HostProfiler attached so the per-component host-time
// split rides along. Covers the full 8-workload x 4-scheme STAMP grid by
// default and writes BENCH_5.json:
//
//   {"schema":"puno-bench-baseline-2",
//    "ticks_per_second":2.99e9,
//    "runs":[{"workload":"intruder","scheme":"PUNO","seed":1,
//             "cycles":67975,"wall_s":0.22,"cycles_per_s":3.1e5,
//             "commits":160,
//             "components":[{"name":"noc.mesh","calls":...,"ticks":...},...]
//            },...]}
//
// CI runs this on two small workloads and uploads the JSON as an artifact;
// comparing cycles_per_s across commits catches host-perf regressions the
// simulated-cycle tests cannot see.
//
// tools/perf_check compares two of these files and fails on aggregate
// cycles_per_s regressions (the CI perf gate).
//
//   usage: bench_baseline [--out FILE] [--workloads LIST] [--schemes LIST]
//                         [--seed N] [--scale X] [--max-cycles N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/cmp.hpp"
#include "metrics/stats_io.hpp"
#include "runner/cache.hpp"
#include "runner/grid.hpp"
#include "sim/profile.hpp"
#include "telemetry/host_profiler.hpp"
#include "workloads/stamp.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct BenchRun {
  std::string workload;
  puno::Scheme scheme{};
  std::uint64_t seed = 1;
  std::uint64_t cycles = 0;
  std::uint64_t commits = 0;
  bool completed = false;
  double wall_s = 0.0;
  std::vector<puno::telemetry::HostProfiler::Bucket> components;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --out FILE        output JSON (default: BENCH_5.json)\n"
      "  --workloads LIST  csv of benchmarks, or \"all\"\n"
      "                    (default: all)\n"
      "  --schemes LIST    csv of baseline|backoff|rmw|puno, or \"all\"\n"
      "                    (default: all)\n"
      "  --seed N          workload seed (default: 1)\n"
      "  --scale X         committed-txn quota multiplier (default: 0.25)\n"
      "  --max-cycles N    per-run cycle budget (default: 30000000)\n",
      argv0);
}

/// The commit this binary was benchmarked at: CI exports GITHUB_SHA; local
/// runs ask git; a tarball build stamps "unknown".
std::string resolve_git_sha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr && *env) {
    return env;
  }
  std::string sha;
  if (FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    ::pclose(p);
  }
  return sha.empty() ? "unknown" : sha;
}

/// UTC wall-clock stamp, ISO-8601 (e.g. "2026-08-08T12:34:56Z") — the sort
/// key tools/punoagg uses to order baselines into a perf trajectory.
std::string iso8601_utc_now() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void write_json(const std::vector<BenchRun>& runs, std::ostream& out) {
  char num[40];
  std::snprintf(num, sizeof num, "%.6g", puno::sim::host_ticks_per_second());
  // git_sha / config_schema / generated_at identify where a baseline came
  // from; tools/perf_check skips unknown keys, so older checkers still read
  // stamped files.
  out << "{\"schema\":\"puno-bench-baseline-2\",\"git_sha\":\""
      << puno::metrics::json_escape(resolve_git_sha())
      << "\",\"config_schema\":" << puno::runner::kCacheSchemaVersion
      << ",\"generated_at\":\"" << iso8601_utc_now()
      << "\",\"ticks_per_second\":" << num << ",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const BenchRun& r = runs[i];
    const double cps =
        r.wall_s > 0.0 ? static_cast<double>(r.cycles) / r.wall_s : 0.0;
    if (i > 0) out << ',';
    out << "\n {\"workload\":\"" << puno::metrics::json_escape(r.workload)
        << "\",\"scheme\":\"" << puno::to_string(r.scheme)
        << "\",\"seed\":" << r.seed << ",\"completed\":"
        << (r.completed ? "true" : "false") << ",\"cycles\":" << r.cycles
        << ",\"commits\":" << r.commits << ",\"wall_s\":";
    std::snprintf(num, sizeof num, "%.6g", r.wall_s);
    out << num << ",\"cycles_per_s\":";
    std::snprintf(num, sizeof num, "%.6g", cps);
    out << num << ",\"components\":[";
    for (std::size_t c = 0; c < r.components.size(); ++c) {
      const auto& b = r.components[c];
      if (c > 0) out << ',';
      out << "{\"name\":\"" << puno::metrics::json_escape(b.name)
          << "\",\"calls\":" << b.calls << ",\"ticks\":" << b.ticks << '}';
    }
    out << "]}";
  }
  out << "\n]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puno;

  std::string out_path = "BENCH_5.json";
  std::string workloads_spec = "all";
  std::string schemes_spec = "all";
  std::uint64_t seed = 1;
  double scale = 0.25;
  Cycle max_cycles = 30'000'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--workloads") {
      workloads_spec = next();
    } else if (arg == "--schemes") {
      schemes_spec = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--max-cycles") {
      max_cycles = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<std::string> workloads;
  std::vector<Scheme> schemes;
  try {
    workloads = runner::parse_workload_list(workloads_spec);
    schemes = runner::parse_scheme_list(schemes_spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_baseline: %s\n", e.what());
    return 2;
  }

  std::vector<BenchRun> runs;
  for (const std::string& w : workloads) {
    for (const Scheme s : schemes) {
      SystemConfig cfg;
      cfg.scheme = s;
      cfg.seed = seed;
      auto workload = workloads::stamp::make(w, cfg.num_nodes, seed, scale);
      arch::Cmp cmp(cfg, *workload);
      telemetry::HostProfiler profiler;
      cmp.kernel().set_profiler(&profiler);
      const auto t0 = Clock::now();
      const bool completed = cmp.run(max_cycles);
      const double wall =
          std::chrono::duration<double>(Clock::now() - t0).count();
      cmp.kernel().set_profiler(nullptr);

      BenchRun r;
      r.workload = w;
      r.scheme = s;
      r.seed = seed;
      r.cycles = cmp.kernel().now();
      r.commits = cmp.kernel().stats().counter("htm.commits").value();
      r.completed = completed;
      r.wall_s = wall;
      for (const auto& b : profiler.tickables()) r.components.push_back(b);
      for (const auto& b : profiler.hooks()) r.components.push_back(b);
      r.components.push_back(profiler.events());
      runs.push_back(std::move(r));

      std::printf("%-12s %-9s %12llu cycles  %8.3fs  %10.3gM cycles/s\n",
                  w.c_str(), to_string(s),
                  static_cast<unsigned long long>(r.cycles), wall,
                  wall > 0 ? static_cast<double>(r.cycles) / wall / 1e6 : 0.0);
    }
  }

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_baseline: cannot write '%s'\n",
                 out_path.c_str());
    return 1;
  }
  write_json(runs, out);
  std::printf("baseline written to %s\n", out_path.c_str());
  return 0;
}
