// Table III: VLSI area and power of the PUNO hardware structures at 65 nm /
// 2.3 GHz / 0.9 V, normalized against a Sun Rock core (the paper's 0.41%
// area and 0.31% power headline overheads).
#include <cstdio>

#include "hwcost/hwcost.hpp"

int main() {
  using namespace puno;
  const SystemConfig cfg;  // Table II configuration
  const hwcost::PunoCost c = hwcost::estimate(cfg);
  const hwcost::PunoBits bits = hwcost::count_bits(cfg);

  std::printf("Table III — area and power overhead estimation\n");
  std::printf("===============================================\n");
  std::printf("%-14s %12s %12s %14s\n", "Component", "Area (um^2)",
              "Power (mW)", "Storage (bits)");
  std::printf("%-14s %12.0f %12.2f %14llu\n", "Prio-Buffer",
              c.pbuffer.area_um2, c.pbuffer.power_mw,
              static_cast<unsigned long long>(bits.pbuffer_bits));
  std::printf("%-14s %12.0f %12.2f %14llu\n", "TxLB", c.txlb.area_um2,
              c.txlb.power_mw,
              static_cast<unsigned long long>(bits.txlb_bits));
  std::printf("%-14s %12.0f %12.2f %14llu\n", "UD pointers",
              c.ud_pointers.area_um2, c.ud_pointers.power_mw,
              static_cast<unsigned long long>(bits.ud_pointer_bits));
  std::printf("%-14s %12.0f %12.2f\n", "Overall", c.total.area_um2,
              c.total.power_mw);
  std::printf("%-14s %11.2f%% %11.2f%%\n", "Overhead", c.area_overhead * 100,
              c.power_overhead * 100);
  std::printf("\n(paper: 4700/5380/47400 um^2, 7.28/7.52/16.43 mW, overall "
              "57480 um^2 / 31.23 mW,\n overhead 0.41%% area, 0.31%% power "
              "vs one 14 mm^2 / 10 W Rock core)\n");
  return 0;
}
