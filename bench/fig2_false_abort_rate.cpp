// Figure 2: percentage of transactional GETX requests that trigger false
// aborting, measured on the baseline HTM (the paper reports a 41% average
// over its high-contention study set).
#include <cstdio>

#include "bench/common/bench_util.hpp"

int main() {
  using namespace puno;
  std::printf("Figure 2 — transactional GETX requests incurring false "
              "aborting (baseline)\n");
  std::printf("==========================================================="
              "=========\n");
  std::printf("%-11s %14s %14s %10s\n", "Benchmark", "TxGETX", "FalseAbort",
              "Rate");
  const auto base = bench::cached_suite(Scheme::kBaseline);
  double acc = 0;
  int counted = 0;
  for (const auto& r : base) {
    const double rate = r.false_abort_fraction();
    std::printf("%-11s %14llu %14llu %9.1f%%\n", r.workload.c_str(),
                static_cast<unsigned long long>(r.tx_getx_issued),
                static_cast<unsigned long long>(r.false_abort_events),
                rate * 100.0);
    // The paper's 41% average is over workloads that actually contend.
    if (r.tx_getx_issued > 0 && r.abort_rate() > 0.1) {
      acc += rate;
      ++counted;
    }
  }
  if (counted > 0) {
    std::printf("%-11s %14s %14s %9.1f%%  (paper: 41%%)\n",
                "mean(contended)", "", "", acc / counted * 100.0);
  }
  return 0;
}
