// Figure 11: normalized on-chip network traffic measured in router
// traversals by all flits. Paper: PUNO removes 33% (up to 68%) of the
// traffic in high-contention workloads, 17% across all workloads.
#include "bench/fig_common.hpp"

int main() {
  puno::bench::run_scheme_figure(
      "Figure 11 — on-chip network traffic (flit router traversals)",
      [](const puno::metrics::RunResult& r) {
        return static_cast<double>(r.router_traversals);
      },
      "Paper shape: PUNO lowest, biggest wins in high-contention workloads;"
      "\nreductions come from unicast (no wasted invalidations + no wasted"
      "\ndata reply), throttled polling, and fewer aborted re-executions.");
  return 0;
}
