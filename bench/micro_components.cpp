// Google-benchmark microbenchmarks of the hot simulator components: the
// structures PUNO adds (P-Buffer, TxLB, RMW predictor), the caches and the
// NoC. These bound the simulator's own performance, not the modelled
// hardware's.
#include <benchmark/benchmark.h>

#include <memory>

#include "coherence/cache_array.hpp"
#include "htm/rmw_predictor.hpp"
#include "htm/txlb.hpp"
#include "noc/mesh.hpp"
#include "puno/pbuffer.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "workloads/stamp.hpp"

namespace {

using namespace puno;

void BM_RngNextBelow(benchmark::State& state) {
  sim::Rng rng(1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(1000));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_PBufferUpdate(benchmark::State& state) {
  core::PBuffer pb(16);
  sim::Rng rng(1, 0);
  Timestamp ts = 0;
  for (auto _ : state) {
    pb.update(static_cast<NodeId>(rng.next_below(16)), ++ts);
  }
}
BENCHMARK(BM_PBufferUpdate);

void BM_PBufferTimeout(benchmark::State& state) {
  core::PBuffer pb(16);
  for (NodeId n = 0; n < 16; ++n) pb.update(n, n);
  for (auto _ : state) {
    pb.on_timeout();
    pb.update(3, 100);  // keep some validity alive
  }
}
BENCHMARK(BM_PBufferTimeout);

void BM_TxLBCommit(benchmark::State& state) {
  htm::TxLB txlb(32);
  sim::Rng rng(1, 0);
  for (auto _ : state) {
    txlb.on_commit(static_cast<StaticTxId>(rng.next_below(15)),
                   rng.next_below(1000));
  }
}
BENCHMARK(BM_TxLBCommit);

void BM_RmwPredict(benchmark::State& state) {
  htm::RmwPredictor pred(256);
  for (std::uint64_t pc = 0; pc < 128; ++pc) pred.train(pc, true);
  std::uint64_t pc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.predict_exclusive(pc++ % 256));
  }
}
BENCHMARK(BM_RmwPredict);

void BM_CacheArrayLookup(benchmark::State& state) {
  struct Meta {};
  coherence::CacheArray<Meta> cache(32 * 1024, 4, 64);
  sim::Rng rng(1, 0);
  for (int i = 0; i < 512; ++i) {
    const BlockAddr a = rng.next_below(1024) * 64;
    cache.fill(cache.victim(a), a);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(rng.next_below(1024) * 64));
  }
}
BENCHMARK(BM_CacheArrayLookup);

void BM_MeshSingleFlitDelivery(benchmark::State& state) {
  // Whole-network cost of moving one control packet corner to corner.
  struct Payload final : noc::PacketPayload {};
  sim::Kernel kernel;
  NocConfig cfg;
  noc::Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);
  bool got = false;
  mesh.set_handler(15, [&](noc::Packet) { got = true; });
  auto payload = std::make_shared<Payload>();
  for (auto _ : state) {
    got = false;
    mesh.send(0, 15, noc::VNet::kRequest, 0, payload);
    while (!got) kernel.step();
  }
}
BENCHMARK(BM_MeshSingleFlitDelivery);

void BM_MeshSaturated(benchmark::State& state) {
  // Simulator throughput under all-to-one hotspot traffic (cycles/sec of
  // simulated network under load).
  struct Payload final : noc::PacketPayload {};
  sim::Kernel kernel;
  NocConfig cfg;
  noc::Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);
  std::uint64_t delivered = 0;
  mesh.set_handler(0, [&](noc::Packet) { ++delivered; });
  auto payload = std::make_shared<Payload>();
  NodeId src = 1;
  for (auto _ : state) {
    mesh.send(src, 0, noc::VNet::kResponse, 64, payload);
    src = static_cast<NodeId>(src % 15 + 1);
    kernel.step();
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshSaturated);

void BM_WorkloadGeneration(benchmark::State& state) {
  auto wl = workloads::stamp::make("bayes", 16, 1, /*scale=*/1e9);
  NodeId node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl->next(node));
    node = static_cast<NodeId>((node + 1) % 16);
  }
}
BENCHMARK(BM_WorkloadGeneration);

}  // namespace

BENCHMARK_MAIN();
