// Shared infrastructure for the per-figure/table experiment harnesses.
//
// Every figure bench runs (a subset of) the same 8-workload x 4-scheme
// sweep, so results are cached on disk keyed by the experiment parameters;
// delete the cache directory (./.puno-bench-cache) or set
// PUNO_BENCH_NOCACHE=1 to force re-simulation. PUNO_BENCH_SCALE scales the
// per-node committed-transaction quota (default 1.0).
#pragma once

#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "metrics/run_result.hpp"

namespace puno::bench {

/// Experiment scale taken from PUNO_BENCH_SCALE (default 1.0).
[[nodiscard]] double bench_scale();

/// Runs (or loads from cache) one experiment.
[[nodiscard]] metrics::RunResult cached_run(metrics::ExperimentParams params);

/// Runs (or loads) the whole suite for one scheme.
[[nodiscard]] std::vector<metrics::RunResult> cached_suite(
    Scheme scheme, std::uint64_t seed = 1);

/// A figure's data: per-workload values for several named series.
struct Series {
  std::string name;
  std::vector<double> values;  // one per workload, paper order
};

/// Prints a paper-style normalized figure: every series divided by the
/// first (baseline) series per workload, plus overall and high-contention
/// geometric means.
void print_normalized(const std::string& title,
                      const std::vector<std::string>& workloads,
                      const std::vector<Series>& series);

/// Prints raw (unnormalized) values with a column per series.
void print_raw(const std::string& title,
               const std::vector<std::string>& workloads,
               const std::vector<Series>& series, const char* unit);

/// Geometric mean over a subset of indices.
[[nodiscard]] double geomean(const std::vector<double>& v,
                             const std::vector<std::size_t>& idx);

}  // namespace puno::bench
