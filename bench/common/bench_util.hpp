// Shared infrastructure for the per-figure/table experiment harnesses.
//
// Every figure bench runs (a subset of) the same 8-workload x 4-scheme
// sweep. Sweeps go through the parallel experiment runner (src/runner/):
// jobs shard across worker threads (--jobs equivalent: PUNO_JOBS, default
// hardware_concurrency) and finished runs are cached on disk in the
// content-addressed result cache (default ./.puno-cache, override with
// PUNO_CACHE_DIR). Delete the cache directory or set PUNO_BENCH_NOCACHE=1
// to force re-simulation. PUNO_BENCH_SCALE scales the per-node
// committed-transaction quota (default 1.0).
#pragma once

#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "metrics/run_result.hpp"
#include "runner/suite.hpp"

namespace puno::bench {

/// Experiment scale taken from PUNO_BENCH_SCALE (default 1.0).
[[nodiscard]] double bench_scale();

/// False when PUNO_BENCH_NOCACHE=1 disables the on-disk result cache.
[[nodiscard]] bool cache_enabled();

/// The benches' shared result cache (at runner::ResultCache::default_dir()).
[[nodiscard]] const runner::ResultCache& bench_cache();

/// Runs (or loads from cache) one experiment.
[[nodiscard]] metrics::RunResult cached_run(metrics::ExperimentParams params);

/// Runs (or loads) the whole suite for one scheme — one sharded batch.
[[nodiscard]] std::vector<metrics::RunResult> cached_suite(
    Scheme scheme, std::uint64_t seed = 1);

/// A full schemes x seeds x 8-workload sweep, executed as one parallel
/// batch (with a live progress meter and a wall-time/speedup summary).
struct SweepGrid {
  std::vector<Scheme> schemes;
  std::vector<std::uint64_t> seeds;
  std::vector<std::string> workloads;  // paper order
  runner::SweepResult sweep;

  /// Result of (schemes[s], seeds[k], workloads[w]).
  [[nodiscard]] const metrics::RunResult& at(std::size_t s, std::size_t k,
                                             std::size_t w) const {
    return sweep.outcomes[(s * seeds.size() + k) * workloads.size() + w]
        .result;
  }
};
[[nodiscard]] SweepGrid cached_sweep(const std::vector<Scheme>& schemes,
                                     const std::vector<std::uint64_t>& seeds);

/// A figure's data: per-workload values for several named series.
struct Series {
  std::string name;
  std::vector<double> values;  // one per workload, paper order
};

/// Prints a paper-style normalized figure: every series divided by the
/// first (baseline) series per workload, plus overall and high-contention
/// geometric means.
void print_normalized(const std::string& title,
                      const std::vector<std::string>& workloads,
                      const std::vector<Series>& series);

/// Prints raw (unnormalized) values with a column per series.
void print_raw(const std::string& title,
               const std::vector<std::string>& workloads,
               const std::vector<Series>& series, const char* unit);

/// Geometric mean over a subset of indices.
[[nodiscard]] double geomean(const std::vector<double>& v,
                             const std::vector<std::size_t>& idx);

}  // namespace puno::bench
