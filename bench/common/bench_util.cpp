#include "bench/common/bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <iterator>

#include "runner/grid.hpp"
#include "workloads/stamp.hpp"

namespace puno::bench {

using metrics::ExperimentParams;
using metrics::RunResult;

double bench_scale() {
  if (const char* v = std::getenv("PUNO_BENCH_SCALE")) {
    const double s = std::atof(v);
    if (s > 0) return s;
  }
  return 1.0;
}

bool cache_enabled() {
  const char* v = std::getenv("PUNO_BENCH_NOCACHE");
  return v == nullptr || v[0] == '0';
}

const runner::ResultCache& bench_cache() {
  static const runner::ResultCache cache(runner::ResultCache::default_dir());
  return cache;
}

RunResult cached_run(ExperimentParams params) {
  if (params.scale <= 0) params.scale = bench_scale();
  if (cache_enabled()) {
    if (auto hit = bench_cache().load(params)) return std::move(*hit);
  }
  const RunResult r = metrics::run_experiment(params);
  if (cache_enabled()) bench_cache().store(params, r);
  return r;
}

std::vector<RunResult> cached_suite(Scheme scheme, std::uint64_t seed) {
  runner::SuiteOptions options;
  options.cache = cache_enabled() ? &bench_cache() : nullptr;
  options.scale = bench_scale();
  return runner::run_suite(scheme, seed, options);
}

SweepGrid cached_sweep(const std::vector<Scheme>& schemes,
                       const std::vector<std::uint64_t>& seeds) {
  SweepGrid grid;
  grid.schemes = schemes;
  grid.seeds = seeds;
  grid.workloads = workloads::stamp::benchmark_names();

  // Scheme-major, then seed, then the 8 workloads — the index order at()
  // expects. expand_grid is workload-major, so expand per (scheme, seed).
  std::vector<runner::JobSpec> specs;
  for (const Scheme s : schemes) {
    for (const std::uint64_t seed : seeds) {
      runner::GridSpec g;
      g.workloads = grid.workloads;
      g.schemes = {s};
      g.seeds = {seed};
      g.scale = bench_scale();
      auto part = runner::expand_grid(g);
      specs.insert(specs.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
  }

  runner::RunnerOptions options;
  options.cache = cache_enabled() ? &bench_cache() : nullptr;
  options.progress = true;
  grid.sweep = runner::run_jobs(specs, options);
  runner::print_summary(grid.sweep, std::cout);
  return grid;
}

double geomean(const std::vector<double>& v,
               const std::vector<std::size_t>& idx) {
  if (idx.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i : idx) acc += std::log(v[i] <= 0 ? 1e-12 : v[i]);
  return std::exp(acc / static_cast<double>(idx.size()));
}

namespace {

void print_header(const std::string& title,
                  const std::vector<std::string>& workloads,
                  const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  for (std::size_t i = 0; i < title.size(); ++i) std::printf("=");
  std::printf("\n%-11s", "");
  for (const Series& s : series) std::printf(" %12s", s.name.c_str());
  std::printf("\n");
  (void)workloads;
}

std::vector<std::size_t> hc_indices(const std::vector<std::string>& ws) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    if (workloads::stamp::is_high_contention(ws[i])) idx.push_back(i);
  }
  return idx;
}

std::vector<std::size_t> all_indices(const std::vector<std::string>& ws) {
  std::vector<std::size_t> idx(ws.size());
  for (std::size_t i = 0; i < ws.size(); ++i) idx[i] = i;
  return idx;
}

}  // namespace

void print_normalized(const std::string& title,
                      const std::vector<std::string>& workloads,
                      const std::vector<Series>& series) {
  print_header(title + " (normalized to " + series.front().name + ")",
               workloads, series);
  std::vector<std::vector<double>> norm(series.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("%-11s", workloads[w].c_str());
    const double base = series.front().values[w];
    for (std::size_t s = 0; s < series.size(); ++s) {
      const double n = base == 0 ? 0.0 : series[s].values[w] / base;
      norm[s].push_back(n);
      std::printf(" %12.3f", n);
    }
    std::printf("\n");
  }
  const auto all = all_indices(workloads);
  const auto hc = hc_indices(workloads);
  std::printf("%-11s", "geomean");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf(" %12.3f", geomean(norm[s], all));
  }
  std::printf("\n%-11s", "geomean-HC");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf(" %12.3f", geomean(norm[s], hc));
  }
  std::printf("\n");
}

void print_raw(const std::string& title,
               const std::vector<std::string>& workloads,
               const std::vector<Series>& series, const char* unit) {
  print_header(title + std::string(" [") + unit + "]", workloads, series);
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("%-11s", workloads[w].c_str());
    for (const Series& s : series) std::printf(" %12.1f", s.values[w]);
    std::printf("\n");
  }
}

}  // namespace puno::bench
