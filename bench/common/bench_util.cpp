#include "bench/common/bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "workloads/stamp.hpp"

namespace puno::bench {

namespace fs = std::filesystem;
using metrics::ExperimentParams;
using metrics::RunResult;

namespace {

/// Bump when the simulator's behaviour changes so stale caches self-expire.
constexpr int kCacheVersion = 4;

[[nodiscard]] bool cache_enabled() {
  const char* v = std::getenv("PUNO_BENCH_NOCACHE");
  return v == nullptr || v[0] == '0';
}

[[nodiscard]] fs::path cache_dir() { return ".puno-bench-cache"; }

[[nodiscard]] std::string cache_key(const ExperimentParams& p) {
  // Every knob that changes simulated behaviour must appear in the key.
  const PunoConfig& pc = p.base_config.puno;
  std::ostringstream os;
  os << "v" << kCacheVersion << "_" << p.workload << "_"
     << to_string(p.scheme) << "_s" << p.seed << "_x" << p.scale << "_u"
     << pc.enable_unicast << "_n" << pc.enable_notification << "_vt"
     << int{pc.validity_threshold} << "_tf" << pc.timeout_fraction << "_cap"
     << pc.max_notified_backoff << "_ms" << pc.unicast_min_sharers << "_pe"
     << pc.pbuffer_entries << "_te" << pc.txlb_entries << "_nn"
     << p.base_config.num_nodes << "_ch" << pc.enable_commit_hint;
  return os.str();
}

void save(const fs::path& file, const RunResult& r) {
  std::ofstream out(file);
  if (!out) return;
  out << r.workload << '\n'
      << static_cast<int>(r.scheme) << '\n'
      << r.completed << '\n'
      << r.cycles << '\n'
      << r.commits << ' ' << r.aborts << ' ' << r.aborts_by_getx << ' '
      << r.aborts_by_gets << ' ' << r.aborts_overflow << '\n'
      << r.tx_getx_issued << ' ' << r.tx_getx_nacked << ' '
      << r.request_retries << ' ' << r.retries_per_contended_acquire << '\n'
      << r.false_abort_events << ' ' << r.falsely_aborted_txns << '\n'
      << r.router_traversals << '\n'
      << r.dir_blocked_mean << ' ' << r.dir_txgetx_services << '\n'
      << r.good_cycles << ' ' << r.discarded_cycles << '\n'
      << r.unicast_forwards << ' ' << r.mp_feedbacks << ' '
      << r.notified_backoffs << ' ' << r.commit_hints_sent << ' '
      << r.hint_wakeups << '\n'
      << r.false_abort_multiplicity.size() << '\n';
  for (double f : r.false_abort_multiplicity) out << f << ' ';
  out << '\n';
}

[[nodiscard]] bool load(const fs::path& file, RunResult& r) {
  std::ifstream in(file);
  if (!in) return false;
  int scheme = 0;
  std::size_t hist = 0;
  in >> r.workload >> scheme >> r.completed >> r.cycles >> r.commits >>
      r.aborts >> r.aborts_by_getx >> r.aborts_by_gets >> r.aborts_overflow >>
      r.tx_getx_issued >> r.tx_getx_nacked >> r.request_retries >>
      r.retries_per_contended_acquire >> r.false_abort_events >>
      r.falsely_aborted_txns >> r.router_traversals >> r.dir_blocked_mean >>
      r.dir_txgetx_services >> r.good_cycles >> r.discarded_cycles >>
      r.unicast_forwards >> r.mp_feedbacks >> r.notified_backoffs >>
      r.commit_hints_sent >> r.hint_wakeups >> hist;
  if (!in) return false;
  r.scheme = static_cast<Scheme>(scheme);
  r.false_abort_multiplicity.resize(hist);
  for (auto& f : r.false_abort_multiplicity) in >> f;
  return static_cast<bool>(in);
}

}  // namespace

double bench_scale() {
  if (const char* v = std::getenv("PUNO_BENCH_SCALE")) {
    const double s = std::atof(v);
    if (s > 0) return s;
  }
  return 1.0;
}

RunResult cached_run(ExperimentParams params) {
  if (params.scale <= 0) params.scale = bench_scale();
  const fs::path file = cache_dir() / cache_key(params);
  if (cache_enabled()) {
    RunResult r;
    if (load(file, r)) return r;
  }
  const RunResult r = metrics::run_experiment(params);
  if (cache_enabled()) {
    std::error_code ec;
    fs::create_directories(cache_dir(), ec);
    if (!ec) save(file, r);
  }
  return r;
}

std::vector<RunResult> cached_suite(Scheme scheme, std::uint64_t seed) {
  std::vector<RunResult> out;
  for (const std::string& w : workloads::stamp::benchmark_names()) {
    ExperimentParams p;
    p.workload = w;
    p.scheme = scheme;
    p.seed = seed;
    p.scale = bench_scale();
    out.push_back(cached_run(p));
  }
  return out;
}

double geomean(const std::vector<double>& v,
               const std::vector<std::size_t>& idx) {
  if (idx.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i : idx) acc += std::log(v[i] <= 0 ? 1e-12 : v[i]);
  return std::exp(acc / static_cast<double>(idx.size()));
}

namespace {

void print_header(const std::string& title,
                  const std::vector<std::string>& workloads,
                  const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  for (std::size_t i = 0; i < title.size(); ++i) std::printf("=");
  std::printf("\n%-11s", "");
  for (const Series& s : series) std::printf(" %12s", s.name.c_str());
  std::printf("\n");
  (void)workloads;
}

std::vector<std::size_t> hc_indices(const std::vector<std::string>& ws) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    if (workloads::stamp::is_high_contention(ws[i])) idx.push_back(i);
  }
  return idx;
}

std::vector<std::size_t> all_indices(const std::vector<std::string>& ws) {
  std::vector<std::size_t> idx(ws.size());
  for (std::size_t i = 0; i < ws.size(); ++i) idx[i] = i;
  return idx;
}

}  // namespace

void print_normalized(const std::string& title,
                      const std::vector<std::string>& workloads,
                      const std::vector<Series>& series) {
  print_header(title + " (normalized to " + series.front().name + ")",
               workloads, series);
  std::vector<std::vector<double>> norm(series.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("%-11s", workloads[w].c_str());
    const double base = series.front().values[w];
    for (std::size_t s = 0; s < series.size(); ++s) {
      const double n = base == 0 ? 0.0 : series[s].values[w] / base;
      norm[s].push_back(n);
      std::printf(" %12.3f", n);
    }
    std::printf("\n");
  }
  const auto all = all_indices(workloads);
  const auto hc = hc_indices(workloads);
  std::printf("%-11s", "geomean");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf(" %12.3f", geomean(norm[s], all));
  }
  std::printf("\n%-11s", "geomean-HC");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf(" %12.3f", geomean(norm[s], hc));
  }
  std::printf("\n");
}

void print_raw(const std::string& title,
               const std::vector<std::string>& workloads,
               const std::vector<Series>& series, const char* unit) {
  print_header(title + std::string(" [") + unit + "]", workloads, series);
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("%-11s", workloads[w].c_str());
    for (const Series& s : series) std::printf(" %12.1f", s.values[w]);
    std::printf("\n");
  }
}

}  // namespace puno::bench
