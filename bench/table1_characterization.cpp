// Table I: benchmark input parameters and baseline abort rates.
//
// Prints, for each STAMP-like kernel, the paper's input-parameter string and
// "Abort %" next to the abort rate this reproduction measures under the
// baseline HTM (16 cores, Table II system).
#include <cstdio>

#include "bench/common/bench_util.hpp"
#include "workloads/analysis.hpp"
#include "workloads/stamp.hpp"

int main() {
  using namespace puno;
  std::printf("Table I — benchmark input parameters and abort rates\n");
  std::printf("====================================================\n");
  std::printf("%-11s %-34s %10s %12s\n", "Benchmark", "Input Parameters",
              "Paper %", "Measured %");
  double paper_acc = 0, ours_acc = 0;
  const auto base = bench::cached_suite(Scheme::kBaseline);
  for (const auto& r : base) {
    const double paper = workloads::stamp::paper_abort_rate(r.workload);
    const double ours = r.abort_rate();
    paper_acc += paper;
    ours_acc += ours;
    std::printf("%-11s %-34s %9.1f%% %11.1f%%\n", r.workload.c_str(),
                workloads::stamp::input_parameters(r.workload).c_str(),
                paper * 100.0, ours * 100.0);
  }
  std::printf("%-11s %-34s %9.1f%% %11.1f%%\n", "mean", "",
              paper_acc / base.size() * 100.0, ours_acc / base.size() * 100.0);
  std::printf(
      "\nNote: \"Measured\" is this reproduction's baseline abort rate;\n"
      "the contention *ordering* and high/low classes are the target, not\n"
      "digit-exact Table I values (see EXPERIMENTS.md).\n");

  std::printf("\nStatic workload characterization\n");
  std::printf("--------------------------------\n");
  for (const auto& name : workloads::stamp::benchmark_names()) {
    auto wl = workloads::stamp::make(name, 16, 1, bench::bench_scale());
    const auto profile = workloads::analyze(*wl, 16);
    std::printf("  %s\n", workloads::summarize(profile).c_str());
  }
  return 0;
}
