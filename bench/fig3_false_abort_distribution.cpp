// Figure 3: distribution of the number of transactions aborted unnecessarily
// per false-aborting event (baseline HTM). The paper highlights the long
// tail — single events can abort 5+ transactions (e.g. 10% of intruder's
// events abort 5).
#include <cstdio>

#include "bench/common/bench_util.hpp"

int main() {
  using namespace puno;
  std::printf("Figure 3 — transactions aborted unnecessarily per "
              "false-aborting event (baseline)\n");
  std::printf("==================================================="
              "============================\n");
  std::printf("%-11s", "Benchmark");
  constexpr int kMax = 8;
  for (int k = 1; k <= kMax; ++k) std::printf("   k=%-5d", k);
  std::printf("  k>%d\n", kMax);
  const auto base = bench::cached_suite(Scheme::kBaseline);
  for (const auto& r : base) {
    if (r.false_abort_events == 0) continue;
    std::printf("%-11s", r.workload.c_str());
    double tail = 0.0;
    for (std::size_t k = kMax + 1; k < r.false_abort_multiplicity.size();
         ++k) {
      tail += r.false_abort_multiplicity[k];
    }
    for (int k = 1; k <= kMax; ++k) {
      const double f = static_cast<std::size_t>(k) <
                               r.false_abort_multiplicity.size()
                           ? r.false_abort_multiplicity[k]
                           : 0.0;
      std::printf("  %6.1f%%", f * 100.0);
    }
    std::printf("  %5.1f%%\n", tail * 100.0);
  }
  std::printf("\n(rows: fraction of false-aborting events that aborted "
              "exactly k transactions)\n");
  return 0;
}
