// Core-count scaling: the same contended workload on 2x2, 3x3 and 4x4
// meshes. Not a paper figure, but the natural question after Section IV:
// false aborting worsens with the sharer count, so PUNO's margin should
// grow with the machine.
#include <cstdio>

#include "arch/cmp.hpp"
#include "metrics/run_result.hpp"
#include "workloads/stamp.hpp"

namespace {

using namespace puno;

metrics::RunResult run_at(std::uint32_t width, Scheme scheme) {
  SystemConfig cfg;
  cfg.noc.mesh_width = width;
  cfg.num_nodes = width * width;
  cfg.scheme = scheme;
  cfg.seed = 1;
  auto wl = workloads::stamp::make("intruder", cfg.num_nodes, cfg.seed, 0.75);
  arch::Cmp cmp(cfg, *wl);
  cmp.run(40'000'000);
  auto r = metrics::RunResult::from_stats(cmp.kernel().stats());
  r.cycles = cmp.kernel().now();
  return r;
}

}  // namespace

int main() {
  std::printf("Mesh scaling — intruder, Baseline vs PUNO\n");
  std::printf("=========================================\n");
  std::printf("%6s | %9s %10s | %9s %9s %9s\n", "cores", "abort%", "falseAb%",
              "ab ratio", "traf rat", "cyc rat");
  for (std::uint32_t w : {2u, 3u, 4u}) {
    const auto base = run_at(w, Scheme::kBaseline);
    const auto puno = run_at(w, Scheme::kPuno);
    std::printf("%6u | %8.1f%% %9.1f%% | %9.3f %9.3f %9.3f\n", w * w,
                base.abort_rate() * 100, base.false_abort_fraction() * 100,
                static_cast<double>(puno.aborts) / base.aborts,
                static_cast<double>(puno.router_traversals) /
                    base.router_traversals,
                static_cast<double>(puno.cycles) / base.cycles);
  }
  std::printf("\n(ratios are PUNO/Baseline; more cores -> more sharers per "
              "hot line ->\n more false aborting for PUNO to remove)\n");
  return 0;
}
