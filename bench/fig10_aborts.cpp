// Figure 10: normalized transaction aborts across the four schemes.
// Paper: PUNO cuts aborts by 43% on average (up to 98%), 61% in the
// high-contention set; RMW-Pred helps kmeans/ssca2 but inflates aborts in
// contended workloads (~2x in vacation).
#include "bench/fig_common.hpp"

int main() {
  puno::bench::run_scheme_figure(
      "Figure 10 — transaction aborts",
      [](const puno::metrics::RunResult& r) {
        return static_cast<double>(r.aborts);
      },
      "Paper shape: PUNO lowest in the high-contention set (bayes, intruder,"
      "\nlabyrinth, yada); RMW-Pred above Baseline in contended workloads.");
  return 0;
}
