// Sensitivity ablation over PUNO's design parameters (DESIGN.md): validity
// threshold, staleness-decay rate (timeout fraction), the notified-backoff
// cap, and the minimum-sharer unicast rule. Run on one representative
// high-contention workload (intruder) and one moderate one (vacation).
#include <cstdio>

#include "bench/common/bench_util.hpp"

namespace {

using namespace puno;

void report(const char* label, const metrics::RunResult& r,
            const metrics::RunResult& base) {
  std::printf("  %-24s cyc %6.3f  aborts %6.3f  traffic %6.3f  hit %5.1f%% "
              "uni %6llu\n",
              label, static_cast<double>(r.cycles) / base.cycles,
              static_cast<double>(r.aborts) / base.aborts,
              static_cast<double>(r.router_traversals) /
                  base.router_traversals,
              r.prediction_hit_rate() * 100.0,
              static_cast<unsigned long long>(r.unicast_forwards));
}

void sweep(const std::string& workload) {
  metrics::ExperimentParams p;
  p.workload = workload;
  p.scheme = Scheme::kBaseline;
  const auto base = bench::cached_run(p);
  std::printf("%s (values normalized to Baseline)\n", workload.c_str());

  p.scheme = Scheme::kPuno;
  report("PUNO default", bench::cached_run(p), base);

  for (int thr : {0, 2}) {
    auto q = p;
    q.base_config.puno.validity_threshold = static_cast<std::uint8_t>(thr);
    char label[64];
    std::snprintf(label, sizeof label, "validity>%d", thr);
    report(label, bench::cached_run(q), base);
  }
  for (double frac : {0.25, 4.0}) {
    auto q = p;
    q.base_config.puno.timeout_fraction = frac;
    char label[64];
    std::snprintf(label, sizeof label, "timeout %.2fx txn len", frac);
    report(label, bench::cached_run(q), base);
  }
  for (Cycle cap : {Cycle{60}, Cycle{240}}) {
    auto q = p;
    q.base_config.puno.max_notified_backoff = cap;
    char label[64];
    std::snprintf(label, sizeof label, "backoff cap %llu",
                  static_cast<unsigned long long>(cap));
    report(label, bench::cached_run(q), base);
  }
  {
    auto q = p;
    q.base_config.puno.unicast_min_sharers = 1;
    report("unicast even to 1 sharer", bench::cached_run(q), base);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("PUNO parameter sensitivity\n");
  std::printf("==========================\n");
  sweep("intruder");
  sweep("vacation");
  std::printf("Defaults: validity>1, timeout = 1.0x average transaction\n"
              "length, uncapped notified backoff (the paper's formula),\n"
              "unicast only for >=2 sharers.\n");
  return 0;
}
