// Figure 13: normalized execution time. Paper: PUNO improves execution time
// by 12% (up to 31%) in high-contention workloads and 8% on average;
// random backoff over-serializes labyrinth; RMW-Pred slows contended
// workloads (1.83x) while winning marginally (<1.6%) on kmeans/ssca2.
#include "bench/fig_common.hpp"

int main() {
  puno::bench::run_scheme_figure(
      "Figure 13 — execution time",
      [](const puno::metrics::RunResult& r) {
        return static_cast<double>(r.cycles);
      },
      "Paper shape: PUNO <= Baseline everywhere, biggest gains where abort"
      "\nreduction is largest; RMW-Pred pays a large penalty in the"
      "\nhigh-contention set.");
  return 0;
}
