// Experiment result extraction: one RunResult per (workload, scheme) run,
// carrying every metric the paper's figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace puno::metrics {

struct RunResult {
  std::string workload;
  Scheme scheme = Scheme::kBaseline;
  bool completed = false;  ///< All cores finished within the cycle budget.

  // Figure 13: execution time.
  Cycle cycles = 0;

  // Figure 10: transaction aborts (and their causes).
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t aborts_by_getx = 0;
  std::uint64_t aborts_by_gets = 0;
  std::uint64_t aborts_overflow = 0;

  // Figures 2-3: false aborting.
  std::uint64_t tx_getx_issued = 0;
  std::uint64_t tx_getx_nacked = 0;
  std::uint64_t request_retries = 0;  ///< Re-issues after NACK ("polling").
  /// Mean number of re-issues per acquisition that was nacked at least once
  /// — the per-handoff polling intensity notification throttles.
  double retries_per_contended_acquire = 0.0;
  std::uint64_t false_abort_events = 0;
  std::uint64_t falsely_aborted_txns = 0;
  /// Fraction of false-aborting events that aborted exactly k transactions
  /// (index k, 1..); the Figure 3 distribution.
  std::vector<double> false_abort_multiplicity;

  // Figure 11: network traffic (router traversals by all flits).
  std::uint64_t router_traversals = 0;

  // Figure 12: mean cycles a directory entry stays blocked while servicing
  // a transactional GETX.
  double dir_blocked_mean = 0.0;
  std::uint64_t dir_txgetx_services = 0;

  // Figure 14: transaction execution efficiency.
  std::uint64_t good_cycles = 0;
  std::uint64_t discarded_cycles = 0;

  // PUNO internals (prediction quality, Section III.C's "90%+ hit rate").
  std::uint64_t unicast_forwards = 0;
  std::uint64_t mp_feedbacks = 0;
  std::uint64_t notified_backoffs = 0;
  // Commit-hint extension (off by default).
  std::uint64_t commit_hints_sent = 0;
  std::uint64_t hint_wakeups = 0;

  // Event-trace metadata, set by run_experiment() when the params carried a
  // TraceRequest (docs/TRACING.md); defaults otherwise. Not derived from the
  // stats registry — from_stats() leaves these untouched.
  std::string trace_path;            ///< Chrome trace JSON file ("" = none).
  std::uint64_t trace_events = 0;    ///< Events retained at export.
  std::uint64_t trace_dropped = 0;   ///< Events lost to ring wraparound.

  // Telemetry metadata, set by run_experiment() when the params carried a
  // TelemetryRequest (docs/TELEMETRY.md); same contract as the trace fields
  // above (not derived from the stats registry, absent from default output).
  std::string telemetry_path;           ///< Sample-series JSONL ("" = none).
  std::uint64_t telemetry_samples = 0;  ///< Windows retained at export.
  std::uint64_t telemetry_dropped = 0;  ///< Windows lost to the series cap.

  // Open-loop traffic outcomes (docs/TRAFFIC.md), derived from the
  // traffic.* stats the engine binds at attach(). All zero for closed-loop
  // workloads (the stats don't exist there), and the JSONL keys only appear
  // when offered_txns > 0 — closed-loop rows stay byte-identical.
  std::uint64_t offered_txns = 0;      ///< Arrivals generated (admit + drop).
  std::uint64_t dropped_txns = 0;      ///< Arrivals shed at a full queue.
  std::uint64_t queue_delay_p50 = 0;   ///< Queue-delay percentiles (cycles),
  std::uint64_t queue_delay_p90 = 0;   ///< from the traffic.queue_delay
  std::uint64_t queue_delay_p99 = 0;   ///< histogram (cap = overflow bucket).

  [[nodiscard]] double abort_rate() const {
    const double total = static_cast<double>(commits + aborts);
    return total == 0.0 ? 0.0 : static_cast<double>(aborts) / total;
  }
  /// Good/Discarded transactional-cycle ratio (Figure 14; larger = better).
  [[nodiscard]] double gd_ratio() const {
    return discarded_cycles == 0
               ? static_cast<double>(good_cycles)
               : static_cast<double>(good_cycles) /
                     static_cast<double>(discarded_cycles);
  }
  /// Fraction of transactional GETX requests that triggered false aborting
  /// (Figure 2).
  [[nodiscard]] double false_abort_fraction() const {
    return tx_getx_issued == 0
               ? 0.0
               : static_cast<double>(false_abort_events) /
                     static_cast<double>(tx_getx_issued);
  }
  /// Fraction of offered open-loop arrivals shed at a full queue (0 for
  /// closed-loop workloads — nothing is ever offered, let alone dropped).
  [[nodiscard]] double drop_rate() const {
    return offered_txns == 0
               ? 0.0
               : static_cast<double>(dropped_txns) /
                     static_cast<double>(offered_txns);
  }
  /// Unicast prediction hit rate (fraction of unicasts not flagged MP).
  [[nodiscard]] double prediction_hit_rate() const {
    return unicast_forwards == 0
               ? 0.0
               : 1.0 - static_cast<double>(mp_feedbacks) /
                           static_cast<double>(unicast_forwards);
  }

  /// Populates the stat-derived fields from a finished run's registry.
  static RunResult from_stats(const sim::StatsRegistry& stats);
};

}  // namespace puno::metrics
