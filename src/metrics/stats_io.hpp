// Statistics export: CSV serialization of the stats registry and of
// RunResult rows, for spreadsheet/pandas post-processing of experiments.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/run_result.hpp"
#include "sim/stats.hpp"

namespace puno::metrics {

/// Writes every counter/scalar/histogram as "kind,name,field,value" rows.
void write_stats_csv(const sim::StatsRegistry& stats, std::ostream& out);

/// Header row matching write_result_csv's columns.
[[nodiscard]] std::string result_csv_header();

/// One experiment as a CSV row (workload, scheme, and every metric).
void write_result_csv(const RunResult& result, std::ostream& out);

/// Convenience: a whole sweep with header.
void write_results_csv(const std::vector<RunResult>& results,
                       std::ostream& out);

}  // namespace puno::metrics
