// Statistics export: CSV and JSONL serialization of the stats registry and
// of RunResult rows, for spreadsheet/pandas post-processing of experiments.
//
// JSONL schema (one flat JSON object per line, one line per RunResult): the
// raw fields of RunResult in declaration order, keyed by field name —
//   workload (string), scheme (string, to_string(Scheme)), completed (bool),
//   cycles, commits, aborts, aborts_by_getx, aborts_by_gets,
//   aborts_overflow, tx_getx_issued, tx_getx_nacked, request_retries
//   (integers), retries_per_contended_acquire (number), false_abort_events,
//   falsely_aborted_txns (integers), false_abort_multiplicity (array of
//   numbers), router_traversals (integer), dir_blocked_mean (number),
//   dir_txgetx_services, good_cycles, discarded_cycles, unicast_forwards,
//   mp_feedbacks, notified_backoffs, commit_hints_sent, hint_wakeups
//   (integers). When the run carried an event trace (docs/TRACING.md) three
//   more keys follow: trace_path (string), trace_events, trace_dropped
//   (integers); untraced rows omit them and stay byte-identical to the
//   pre-tracing schema. Likewise, a run with telemetry sampling
//   (docs/TELEMETRY.md) appends telemetry_path (string), telemetry_samples,
//   telemetry_dropped (integers); unsampled rows omit them.
// Derived metrics (abort_rate, gd_ratio, ...) are intentionally omitted:
// they are recomputable from the raw fields. read_result_jsonl() restores
// every field and skips unknown keys, so the schema can grow compatibly.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/run_result.hpp"
#include "sim/stats.hpp"

namespace puno::metrics {

/// Writes every counter/scalar/histogram as "kind,name,field,value" rows.
void write_stats_csv(const sim::StatsRegistry& stats, std::ostream& out);

/// Header row matching write_result_csv's columns.
[[nodiscard]] std::string result_csv_header();

/// One experiment as a CSV row (workload, scheme, and every metric).
void write_result_csv(const RunResult& result, std::ostream& out);

/// Convenience: a whole sweep with header.
void write_results_csv(const std::vector<RunResult>& results,
                       std::ostream& out);

/// One experiment as one JSON object on one line (schema above, no newline
/// characters inside the object). Doubles are printed with max_digits10
/// precision so a write/read round trip is exact.
void write_result_jsonl(const RunResult& result, std::ostream& out);

/// A whole sweep, one line per result.
void write_results_jsonl(const std::vector<RunResult>& results,
                         std::ostream& out);

/// Parses one JSONL line back into a RunResult (the inverse of
/// write_result_jsonl). Returns false — leaving `result` unspecified — on
/// malformed input; unknown keys are skipped.
[[nodiscard]] bool read_result_jsonl(std::string_view line, RunResult& result);

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included). Shared by the JSONL writers, the result cache and the runner
/// manifest.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace puno::metrics
