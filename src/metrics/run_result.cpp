#include "metrics/run_result.hpp"

namespace puno::metrics {

namespace {
[[nodiscard]] std::uint64_t counter_of(const sim::StatsRegistry& stats,
                                       const std::string& name) {
  const auto it = stats.counters().find(name);
  return it == stats.counters().end() ? 0 : it->second.value();
}
}  // namespace

RunResult RunResult::from_stats(const sim::StatsRegistry& stats) {
  RunResult r;
  r.commits = counter_of(stats, "htm.commits");
  r.aborts = counter_of(stats, "htm.aborts");
  r.aborts_by_getx = counter_of(stats, "htm.aborts_by_getx");
  r.aborts_by_gets = counter_of(stats, "htm.aborts_by_gets");
  r.aborts_overflow = counter_of(stats, "htm.aborts_overflow");
  r.tx_getx_issued = counter_of(stats, "l1.tx_getx_issued");
  r.tx_getx_nacked = counter_of(stats, "l1.tx_getx_nacked");
  r.request_retries = counter_of(stats, "l1.request_retries");
  r.false_abort_events = counter_of(stats, "htm.false_abort_events");
  r.falsely_aborted_txns = counter_of(stats, "htm.falsely_aborted_txns");
  r.router_traversals = counter_of(stats, "noc.router_traversals");
  r.good_cycles = counter_of(stats, "htm.good_cycles");
  r.discarded_cycles = counter_of(stats, "htm.discarded_cycles");
  r.unicast_forwards = counter_of(stats, "dir.unicast_forwards");
  r.mp_feedbacks = counter_of(stats, "dir.mp_feedbacks");
  r.notified_backoffs = counter_of(stats, "htm.notified_backoffs");
  r.commit_hints_sent = counter_of(stats, "htm.commit_hints_sent");
  r.hint_wakeups = counter_of(stats, "l1.hint_wakeups");
  r.dir_txgetx_services = counter_of(stats, "dir.txgetx_services");

  if (const auto it = stats.scalars().find("dir.txgetx_blocked_cycles");
      it != stats.scalars().end()) {
    r.dir_blocked_mean = it->second.mean();
  }
  if (const auto it = stats.scalars().find("l1.retries_per_contended_acquire");
      it != stats.scalars().end()) {
    r.retries_per_contended_acquire = it->second.mean();
  }
  // Open-loop traffic stats exist only when an OpenLoopWorkload attached;
  // find-based lookups leave closed-loop results (and registries) untouched.
  r.offered_txns = counter_of(stats, "traffic.offered");
  r.dropped_txns = counter_of(stats, "traffic.dropped");
  if (const auto it = stats.histograms().find("traffic.queue_delay");
      it != stats.histograms().end()) {
    r.queue_delay_p50 = it->second.percentile(0.50);
    r.queue_delay_p90 = it->second.percentile(0.90);
    r.queue_delay_p99 = it->second.percentile(0.99);
  }

  if (const auto it = stats.histograms().find("htm.false_abort_multiplicity");
      it != stats.histograms().end()) {
    const sim::Histogram& h = it->second;
    r.false_abort_multiplicity.resize(h.num_buckets());
    for (std::size_t k = 0; k < h.num_buckets(); ++k) {
      r.false_abort_multiplicity[k] = h.fraction(k);
    }
  }
  return r;
}

}  // namespace puno::metrics
