#include "metrics/stats_io.hpp"

#include <ostream>

namespace puno::metrics {

void write_stats_csv(const sim::StatsRegistry& stats, std::ostream& out) {
  out << "kind,name,field,value\n";
  for (const auto& [name, c] : stats.counters()) {
    out << "counter," << name << ",value," << c.value() << "\n";
  }
  for (const auto& [name, s] : stats.scalars()) {
    out << "scalar," << name << ",count," << s.count() << "\n";
    out << "scalar," << name << ",mean," << s.mean() << "\n";
    out << "scalar," << name << ",min," << s.min() << "\n";
    out << "scalar," << name << ",max," << s.max() << "\n";
  }
  for (const auto& [name, h] : stats.histograms()) {
    out << "histogram," << name << ",total," << h.total() << "\n";
    out << "histogram," << name << ",mean," << h.mean() << "\n";
    for (std::size_t b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket(b) == 0) continue;
      out << "histogram," << name << ",bucket" << b << "," << h.bucket(b)
          << "\n";
    }
  }
}

std::string result_csv_header() {
  return "workload,scheme,completed,cycles,commits,aborts,aborts_by_getx,"
         "aborts_by_gets,aborts_overflow,abort_rate,tx_getx_issued,"
         "tx_getx_nacked,request_retries,false_abort_events,"
         "falsely_aborted_txns,false_abort_fraction,router_traversals,"
         "dir_blocked_mean,good_cycles,discarded_cycles,gd_ratio,"
         "unicast_forwards,mp_feedbacks,prediction_hit_rate,"
         "notified_backoffs,commit_hints_sent,hint_wakeups";
}

void write_result_csv(const RunResult& r, std::ostream& out) {
  out << r.workload << ',' << to_string(r.scheme) << ',' << r.completed << ','
      << r.cycles << ',' << r.commits << ',' << r.aborts << ','
      << r.aborts_by_getx << ',' << r.aborts_by_gets << ','
      << r.aborts_overflow << ',' << r.abort_rate() << ','
      << r.tx_getx_issued << ',' << r.tx_getx_nacked << ','
      << r.request_retries << ',' << r.false_abort_events << ','
      << r.falsely_aborted_txns << ',' << r.false_abort_fraction() << ','
      << r.router_traversals << ',' << r.dir_blocked_mean << ','
      << r.good_cycles << ',' << r.discarded_cycles << ',' << r.gd_ratio()
      << ',' << r.unicast_forwards << ',' << r.mp_feedbacks << ','
      << r.prediction_hit_rate() << ',' << r.notified_backoffs << ','
      << r.commit_hints_sent << ',' << r.hint_wakeups << '\n';
}

void write_results_csv(const std::vector<RunResult>& results,
                       std::ostream& out) {
  out << result_csv_header() << '\n';
  for (const RunResult& r : results) write_result_csv(r, out);
}

}  // namespace puno::metrics
