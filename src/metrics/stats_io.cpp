#include "metrics/stats_io.hpp"

#include <cstdio>
#include <ostream>

#include "sim/jsonio.hpp"

namespace puno::metrics {

void write_stats_csv(const sim::StatsRegistry& stats, std::ostream& out) {
  out << "kind,name,field,value\n";
  for (const auto& [name, c] : stats.counters()) {
    out << "counter," << name << ",value," << c.value() << "\n";
  }
  for (const auto& [name, s] : stats.scalars()) {
    out << "scalar," << name << ",count," << s.count() << "\n";
    out << "scalar," << name << ",mean," << s.mean() << "\n";
    out << "scalar," << name << ",min," << s.min() << "\n";
    out << "scalar," << name << ",max," << s.max() << "\n";
  }
  for (const auto& [name, h] : stats.histograms()) {
    out << "histogram," << name << ",total," << h.total() << "\n";
    out << "histogram," << name << ",mean," << h.mean() << "\n";
    for (std::size_t b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket(b) == 0) continue;
      out << "histogram," << name << ",bucket" << b << "," << h.bucket(b)
          << "\n";
    }
  }
}

std::string result_csv_header() {
  return "workload,scheme,completed,cycles,commits,aborts,aborts_by_getx,"
         "aborts_by_gets,aborts_overflow,abort_rate,tx_getx_issued,"
         "tx_getx_nacked,request_retries,false_abort_events,"
         "falsely_aborted_txns,false_abort_fraction,router_traversals,"
         "dir_blocked_mean,good_cycles,discarded_cycles,gd_ratio,"
         "unicast_forwards,mp_feedbacks,prediction_hit_rate,"
         "notified_backoffs,commit_hints_sent,hint_wakeups,"
         "offered_txns,dropped_txns,drop_rate,"
         "queue_delay_p50,queue_delay_p90,queue_delay_p99";
}

void write_result_csv(const RunResult& r, std::ostream& out) {
  out << r.workload << ',' << to_string(r.scheme) << ',' << r.completed << ','
      << r.cycles << ',' << r.commits << ',' << r.aborts << ','
      << r.aborts_by_getx << ',' << r.aborts_by_gets << ','
      << r.aborts_overflow << ',' << r.abort_rate() << ','
      << r.tx_getx_issued << ',' << r.tx_getx_nacked << ','
      << r.request_retries << ',' << r.false_abort_events << ','
      << r.falsely_aborted_txns << ',' << r.false_abort_fraction() << ','
      << r.router_traversals << ',' << r.dir_blocked_mean << ','
      << r.good_cycles << ',' << r.discarded_cycles << ',' << r.gd_ratio()
      << ',' << r.unicast_forwards << ',' << r.mp_feedbacks << ','
      << r.prediction_hit_rate() << ',' << r.notified_backoffs << ','
      << r.commit_hints_sent << ',' << r.hint_wakeups << ','
      << r.offered_txns << ',' << r.dropped_txns << ',' << r.drop_rate()
      << ',' << r.queue_delay_p50 << ',' << r.queue_delay_p90 << ','
      << r.queue_delay_p99 << '\n';
}

void write_results_csv(const std::vector<RunResult>& results,
                       std::ostream& out) {
  out << result_csv_header() << '\n';
  for (const RunResult& r : results) write_result_csv(r, out);
}

std::string json_escape(std::string_view s) {
  return sim::jsonio::escape(s);
}

// The JSON mechanics live in sim/jsonio.hpp (shared with the telemetry
// exporter and the result cache); this file only knows the RunResult schema.
namespace {

using sim::jsonio::consume;
using sim::jsonio::parse_bool;
using sim::jsonio::parse_double;
using sim::jsonio::parse_double_array;
using sim::jsonio::parse_string;
using sim::jsonio::parse_u64;
using sim::jsonio::skip_ws;
using sim::jsonio::write_double;

[[nodiscard]] bool parse_result_field(std::string_view& s,
                                      const std::string& key, RunResult& r) {
  if (key == "workload") return parse_string(s, r.workload);
  if (key == "scheme") {
    std::string name;
    if (!parse_string(s, name)) return false;
    const auto scheme = scheme_from_string(name);
    if (!scheme) return false;
    r.scheme = *scheme;
    return true;
  }
  if (key == "completed") return parse_bool(s, r.completed);
  if (key == "cycles") return parse_u64(s, r.cycles);
  if (key == "commits") return parse_u64(s, r.commits);
  if (key == "aborts") return parse_u64(s, r.aborts);
  if (key == "aborts_by_getx") return parse_u64(s, r.aborts_by_getx);
  if (key == "aborts_by_gets") return parse_u64(s, r.aborts_by_gets);
  if (key == "aborts_overflow") return parse_u64(s, r.aborts_overflow);
  if (key == "tx_getx_issued") return parse_u64(s, r.tx_getx_issued);
  if (key == "tx_getx_nacked") return parse_u64(s, r.tx_getx_nacked);
  if (key == "request_retries") return parse_u64(s, r.request_retries);
  if (key == "retries_per_contended_acquire") {
    return parse_double(s, r.retries_per_contended_acquire);
  }
  if (key == "false_abort_events") {
    return parse_u64(s, r.false_abort_events);
  }
  if (key == "falsely_aborted_txns") {
    return parse_u64(s, r.falsely_aborted_txns);
  }
  if (key == "false_abort_multiplicity") {
    return parse_double_array(s, r.false_abort_multiplicity);
  }
  if (key == "router_traversals") {
    return parse_u64(s, r.router_traversals);
  }
  if (key == "dir_blocked_mean") return parse_double(s, r.dir_blocked_mean);
  if (key == "dir_txgetx_services") {
    return parse_u64(s, r.dir_txgetx_services);
  }
  if (key == "good_cycles") return parse_u64(s, r.good_cycles);
  if (key == "discarded_cycles") return parse_u64(s, r.discarded_cycles);
  if (key == "unicast_forwards") return parse_u64(s, r.unicast_forwards);
  if (key == "mp_feedbacks") return parse_u64(s, r.mp_feedbacks);
  if (key == "notified_backoffs") {
    return parse_u64(s, r.notified_backoffs);
  }
  if (key == "commit_hints_sent") {
    return parse_u64(s, r.commit_hints_sent);
  }
  if (key == "hint_wakeups") return parse_u64(s, r.hint_wakeups);
  if (key == "trace_path") return parse_string(s, r.trace_path);
  if (key == "trace_events") return parse_u64(s, r.trace_events);
  if (key == "trace_dropped") return parse_u64(s, r.trace_dropped);
  if (key == "telemetry_path") return parse_string(s, r.telemetry_path);
  if (key == "telemetry_samples") {
    return parse_u64(s, r.telemetry_samples);
  }
  if (key == "telemetry_dropped") {
    return parse_u64(s, r.telemetry_dropped);
  }
  if (key == "offered_txns") return parse_u64(s, r.offered_txns);
  if (key == "dropped_txns") return parse_u64(s, r.dropped_txns);
  if (key == "queue_delay_p50") return parse_u64(s, r.queue_delay_p50);
  if (key == "queue_delay_p90") return parse_u64(s, r.queue_delay_p90);
  if (key == "queue_delay_p99") return parse_u64(s, r.queue_delay_p99);
  return sim::jsonio::skip_value(s);  // unknown key: ignore for forward compat
}

}  // namespace

void write_result_jsonl(const RunResult& r, std::ostream& out) {
  out << "{\"workload\":\"" << json_escape(r.workload) << "\",\"scheme\":\""
      << to_string(r.scheme)
      << "\",\"completed\":" << (r.completed ? "true" : "false")
      << ",\"cycles\":" << r.cycles << ",\"commits\":" << r.commits
      << ",\"aborts\":" << r.aborts
      << ",\"aborts_by_getx\":" << r.aborts_by_getx
      << ",\"aborts_by_gets\":" << r.aborts_by_gets
      << ",\"aborts_overflow\":" << r.aborts_overflow
      << ",\"tx_getx_issued\":" << r.tx_getx_issued
      << ",\"tx_getx_nacked\":" << r.tx_getx_nacked
      << ",\"request_retries\":" << r.request_retries
      << ",\"retries_per_contended_acquire\":";
  write_double(out, r.retries_per_contended_acquire);
  out << ",\"false_abort_events\":" << r.false_abort_events
      << ",\"falsely_aborted_txns\":" << r.falsely_aborted_txns
      << ",\"false_abort_multiplicity\":[";
  for (std::size_t i = 0; i < r.false_abort_multiplicity.size(); ++i) {
    if (i != 0) out << ',';
    write_double(out, r.false_abort_multiplicity[i]);
  }
  out << "],\"router_traversals\":" << r.router_traversals
      << ",\"dir_blocked_mean\":";
  write_double(out, r.dir_blocked_mean);
  out << ",\"dir_txgetx_services\":" << r.dir_txgetx_services
      << ",\"good_cycles\":" << r.good_cycles
      << ",\"discarded_cycles\":" << r.discarded_cycles
      << ",\"unicast_forwards\":" << r.unicast_forwards
      << ",\"mp_feedbacks\":" << r.mp_feedbacks
      << ",\"notified_backoffs\":" << r.notified_backoffs
      << ",\"commit_hints_sent\":" << r.commit_hints_sent
      << ",\"hint_wakeups\":" << r.hint_wakeups;
  // Trace metadata only appears when a trace was attached, so untraced rows
  // stay byte-identical to the pre-tracing schema.
  if (!r.trace_path.empty() || r.trace_events > 0 || r.trace_dropped > 0) {
    out << ",\"trace_path\":\"" << json_escape(r.trace_path)
        << "\",\"trace_events\":" << r.trace_events
        << ",\"trace_dropped\":" << r.trace_dropped;
  }
  // Same conditional contract for telemetry metadata: untraced/unsampled
  // rows stay byte-identical to the historical schema.
  if (!r.telemetry_path.empty() || r.telemetry_samples > 0 ||
      r.telemetry_dropped > 0) {
    out << ",\"telemetry_path\":\"" << json_escape(r.telemetry_path)
        << "\",\"telemetry_samples\":" << r.telemetry_samples
        << ",\"telemetry_dropped\":" << r.telemetry_dropped;
  }
  // Open-loop traffic fields only appear when arrivals were offered, so
  // closed-loop rows keep the historical schema byte-for-byte.
  if (r.offered_txns > 0) {
    out << ",\"offered_txns\":" << r.offered_txns
        << ",\"dropped_txns\":" << r.dropped_txns
        << ",\"queue_delay_p50\":" << r.queue_delay_p50
        << ",\"queue_delay_p90\":" << r.queue_delay_p90
        << ",\"queue_delay_p99\":" << r.queue_delay_p99;
  }
  out << "}\n";
}

void write_results_jsonl(const std::vector<RunResult>& results,
                         std::ostream& out) {
  for (const RunResult& r : results) write_result_jsonl(r, out);
}

bool read_result_jsonl(std::string_view line, RunResult& result) {
  result = RunResult{};
  std::string_view s = line;
  if (!consume(s, '{')) return false;
  skip_ws(s);
  if (!consume(s, '}')) {
    for (;;) {
      std::string key;
      if (!parse_string(s, key)) return false;
      if (!consume(s, ':')) return false;
      if (!parse_result_field(s, key, result)) return false;
      if (consume(s, ',')) continue;
      if (consume(s, '}')) break;
      return false;
    }
  }
  skip_ws(s);
  return s.empty();
}

}  // namespace puno::metrics
