#include "metrics/stats_io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace puno::metrics {

void write_stats_csv(const sim::StatsRegistry& stats, std::ostream& out) {
  out << "kind,name,field,value\n";
  for (const auto& [name, c] : stats.counters()) {
    out << "counter," << name << ",value," << c.value() << "\n";
  }
  for (const auto& [name, s] : stats.scalars()) {
    out << "scalar," << name << ",count," << s.count() << "\n";
    out << "scalar," << name << ",mean," << s.mean() << "\n";
    out << "scalar," << name << ",min," << s.min() << "\n";
    out << "scalar," << name << ",max," << s.max() << "\n";
  }
  for (const auto& [name, h] : stats.histograms()) {
    out << "histogram," << name << ",total," << h.total() << "\n";
    out << "histogram," << name << ",mean," << h.mean() << "\n";
    for (std::size_t b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket(b) == 0) continue;
      out << "histogram," << name << ",bucket" << b << "," << h.bucket(b)
          << "\n";
    }
  }
}

std::string result_csv_header() {
  return "workload,scheme,completed,cycles,commits,aborts,aborts_by_getx,"
         "aborts_by_gets,aborts_overflow,abort_rate,tx_getx_issued,"
         "tx_getx_nacked,request_retries,false_abort_events,"
         "falsely_aborted_txns,false_abort_fraction,router_traversals,"
         "dir_blocked_mean,good_cycles,discarded_cycles,gd_ratio,"
         "unicast_forwards,mp_feedbacks,prediction_hit_rate,"
         "notified_backoffs,commit_hints_sent,hint_wakeups";
}

void write_result_csv(const RunResult& r, std::ostream& out) {
  out << r.workload << ',' << to_string(r.scheme) << ',' << r.completed << ','
      << r.cycles << ',' << r.commits << ',' << r.aborts << ','
      << r.aborts_by_getx << ',' << r.aborts_by_gets << ','
      << r.aborts_overflow << ',' << r.abort_rate() << ','
      << r.tx_getx_issued << ',' << r.tx_getx_nacked << ','
      << r.request_retries << ',' << r.false_abort_events << ','
      << r.falsely_aborted_txns << ',' << r.false_abort_fraction() << ','
      << r.router_traversals << ',' << r.dir_blocked_mean << ','
      << r.good_cycles << ',' << r.discarded_cycles << ',' << r.gd_ratio()
      << ',' << r.unicast_forwards << ',' << r.mp_feedbacks << ','
      << r.prediction_hit_rate() << ',' << r.notified_backoffs << ','
      << r.commit_hints_sent << ',' << r.hint_wakeups << '\n';
}

void write_results_csv(const std::vector<RunResult>& results,
                       std::ostream& out) {
  out << result_csv_header() << '\n';
  for (const RunResult& r : results) write_result_csv(r, out);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Writes a double as a JSON number that parses back to the same value
/// (max_digits10); non-finite values, which JSON cannot represent, become 0.
void write_json_double(std::ostream& out, double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) {
    out << 0;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

// ---- minimal JSON reader for the flat RunResult schema -------------------

void skip_ws(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
}

[[nodiscard]] bool consume(std::string_view& s, char c) {
  skip_ws(s);
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

[[nodiscard]] bool parse_json_string(std::string_view& s, std::string& out) {
  if (!consume(s, '"')) return false;
  out.clear();
  while (!s.empty()) {
    const char c = s.front();
    s.remove_prefix(1);
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (s.empty()) return false;
    const char esc = s.front();
    s.remove_prefix(1);
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (s.size() < 4) return false;
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = s.front();
          s.remove_prefix(1);
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // BMP code points only (the writer never emits surrogate pairs).
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

[[nodiscard]] bool parse_number_token(std::string_view& s, std::string& tok) {
  skip_ws(s);
  tok.clear();
  while (!s.empty()) {
    const char c = s.front();
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      tok += c;
      s.remove_prefix(1);
    } else {
      break;
    }
  }
  return !tok.empty();
}

[[nodiscard]] bool parse_json_double(std::string_view& s, double& v) {
  std::string tok;
  if (!parse_number_token(s, tok)) return false;
  char* end = nullptr;
  errno = 0;
  v = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0' && errno == 0;
}

[[nodiscard]] bool parse_json_u64(std::string_view& s, std::uint64_t& v) {
  std::string tok;
  if (!parse_number_token(s, tok)) return false;
  char* end = nullptr;
  errno = 0;
  v = std::strtoull(tok.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && errno == 0) return true;
  // Tolerate a float spelling (e.g. "1e3") for an integer field.
  errno = 0;
  const double d = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno != 0 || d < 0) return false;
  v = static_cast<std::uint64_t>(d);
  return true;
}

[[nodiscard]] bool parse_json_bool(std::string_view& s, bool& v) {
  skip_ws(s);
  if (s.substr(0, 4) == "true") {
    v = true;
    s.remove_prefix(4);
    return true;
  }
  if (s.substr(0, 5) == "false") {
    v = false;
    s.remove_prefix(5);
    return true;
  }
  return false;
}

[[nodiscard]] bool parse_json_double_array(std::string_view& s,
                                           std::vector<double>& out) {
  if (!consume(s, '[')) return false;
  out.clear();
  skip_ws(s);
  if (consume(s, ']')) return true;
  for (;;) {
    double v = 0;
    if (!parse_json_double(s, v)) return false;
    out.push_back(v);
    if (consume(s, ',')) continue;
    return consume(s, ']');
  }
}

/// Skips one JSON value of any type (for forward-compatible unknown keys).
[[nodiscard]] bool skip_json_value(std::string_view& s) {
  skip_ws(s);
  if (s.empty()) return false;
  const char c = s.front();
  if (c == '"') {
    std::string dummy;
    return parse_json_string(s, dummy);
  }
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    s.remove_prefix(1);
    skip_ws(s);
    if (consume(s, close)) return true;
    for (;;) {
      if (c == '{') {
        std::string key;
        if (!parse_json_string(s, key)) return false;
        if (!consume(s, ':')) return false;
      }
      if (!skip_json_value(s)) return false;
      if (consume(s, ',')) continue;
      return consume(s, close);
    }
  }
  if (c == 't' || c == 'f') {
    bool dummy = false;
    return parse_json_bool(s, dummy);
  }
  if (s.substr(0, 4) == "null") {
    s.remove_prefix(4);
    return true;
  }
  std::string tok;
  return parse_number_token(s, tok);
}

[[nodiscard]] bool parse_result_field(std::string_view& s,
                                      const std::string& key, RunResult& r) {
  if (key == "workload") return parse_json_string(s, r.workload);
  if (key == "scheme") {
    std::string name;
    if (!parse_json_string(s, name)) return false;
    const auto scheme = scheme_from_string(name);
    if (!scheme) return false;
    r.scheme = *scheme;
    return true;
  }
  if (key == "completed") return parse_json_bool(s, r.completed);
  if (key == "cycles") return parse_json_u64(s, r.cycles);
  if (key == "commits") return parse_json_u64(s, r.commits);
  if (key == "aborts") return parse_json_u64(s, r.aborts);
  if (key == "aborts_by_getx") return parse_json_u64(s, r.aborts_by_getx);
  if (key == "aborts_by_gets") return parse_json_u64(s, r.aborts_by_gets);
  if (key == "aborts_overflow") return parse_json_u64(s, r.aborts_overflow);
  if (key == "tx_getx_issued") return parse_json_u64(s, r.tx_getx_issued);
  if (key == "tx_getx_nacked") return parse_json_u64(s, r.tx_getx_nacked);
  if (key == "request_retries") return parse_json_u64(s, r.request_retries);
  if (key == "retries_per_contended_acquire") {
    return parse_json_double(s, r.retries_per_contended_acquire);
  }
  if (key == "false_abort_events") {
    return parse_json_u64(s, r.false_abort_events);
  }
  if (key == "falsely_aborted_txns") {
    return parse_json_u64(s, r.falsely_aborted_txns);
  }
  if (key == "false_abort_multiplicity") {
    return parse_json_double_array(s, r.false_abort_multiplicity);
  }
  if (key == "router_traversals") {
    return parse_json_u64(s, r.router_traversals);
  }
  if (key == "dir_blocked_mean") return parse_json_double(s, r.dir_blocked_mean);
  if (key == "dir_txgetx_services") {
    return parse_json_u64(s, r.dir_txgetx_services);
  }
  if (key == "good_cycles") return parse_json_u64(s, r.good_cycles);
  if (key == "discarded_cycles") return parse_json_u64(s, r.discarded_cycles);
  if (key == "unicast_forwards") return parse_json_u64(s, r.unicast_forwards);
  if (key == "mp_feedbacks") return parse_json_u64(s, r.mp_feedbacks);
  if (key == "notified_backoffs") {
    return parse_json_u64(s, r.notified_backoffs);
  }
  if (key == "commit_hints_sent") {
    return parse_json_u64(s, r.commit_hints_sent);
  }
  if (key == "hint_wakeups") return parse_json_u64(s, r.hint_wakeups);
  if (key == "trace_path") return parse_json_string(s, r.trace_path);
  if (key == "trace_events") return parse_json_u64(s, r.trace_events);
  if (key == "trace_dropped") return parse_json_u64(s, r.trace_dropped);
  return skip_json_value(s);  // unknown key: ignore for forward compat
}

}  // namespace

void write_result_jsonl(const RunResult& r, std::ostream& out) {
  out << "{\"workload\":\"" << json_escape(r.workload) << "\",\"scheme\":\""
      << to_string(r.scheme)
      << "\",\"completed\":" << (r.completed ? "true" : "false")
      << ",\"cycles\":" << r.cycles << ",\"commits\":" << r.commits
      << ",\"aborts\":" << r.aborts
      << ",\"aborts_by_getx\":" << r.aborts_by_getx
      << ",\"aborts_by_gets\":" << r.aborts_by_gets
      << ",\"aborts_overflow\":" << r.aborts_overflow
      << ",\"tx_getx_issued\":" << r.tx_getx_issued
      << ",\"tx_getx_nacked\":" << r.tx_getx_nacked
      << ",\"request_retries\":" << r.request_retries
      << ",\"retries_per_contended_acquire\":";
  write_json_double(out, r.retries_per_contended_acquire);
  out << ",\"false_abort_events\":" << r.false_abort_events
      << ",\"falsely_aborted_txns\":" << r.falsely_aborted_txns
      << ",\"false_abort_multiplicity\":[";
  for (std::size_t i = 0; i < r.false_abort_multiplicity.size(); ++i) {
    if (i != 0) out << ',';
    write_json_double(out, r.false_abort_multiplicity[i]);
  }
  out << "],\"router_traversals\":" << r.router_traversals
      << ",\"dir_blocked_mean\":";
  write_json_double(out, r.dir_blocked_mean);
  out << ",\"dir_txgetx_services\":" << r.dir_txgetx_services
      << ",\"good_cycles\":" << r.good_cycles
      << ",\"discarded_cycles\":" << r.discarded_cycles
      << ",\"unicast_forwards\":" << r.unicast_forwards
      << ",\"mp_feedbacks\":" << r.mp_feedbacks
      << ",\"notified_backoffs\":" << r.notified_backoffs
      << ",\"commit_hints_sent\":" << r.commit_hints_sent
      << ",\"hint_wakeups\":" << r.hint_wakeups;
  // Trace metadata only appears when a trace was attached, so untraced rows
  // stay byte-identical to the pre-tracing schema.
  if (!r.trace_path.empty() || r.trace_events > 0 || r.trace_dropped > 0) {
    out << ",\"trace_path\":\"" << json_escape(r.trace_path)
        << "\",\"trace_events\":" << r.trace_events
        << ",\"trace_dropped\":" << r.trace_dropped;
  }
  out << "}\n";
}

void write_results_jsonl(const std::vector<RunResult>& results,
                         std::ostream& out) {
  for (const RunResult& r : results) write_result_jsonl(r, out);
}

bool read_result_jsonl(std::string_view line, RunResult& result) {
  result = RunResult{};
  std::string_view s = line;
  if (!consume(s, '{')) return false;
  skip_ws(s);
  if (!consume(s, '}')) {
    for (;;) {
      std::string key;
      if (!parse_json_string(s, key)) return false;
      if (!consume(s, ':')) return false;
      if (!parse_result_field(s, key, result)) return false;
      if (consume(s, ',')) continue;
      if (consume(s, '}')) break;
      return false;
    }
  }
  skip_ws(s);
  return s.empty();
}

}  // namespace puno::metrics
