// One-call experiment driver: build a STAMP-like workload and a CMP with a
// given scheme, run it to completion, and extract a RunResult. This is the
// entry point the benches, examples and integration tests share.
#pragma once

#include <string>
#include <vector>

#include "metrics/run_result.hpp"
#include "sim/config.hpp"

namespace puno::metrics {

struct ExperimentParams {
  std::string workload = "vacation";  ///< STAMP benchmark name.
  Scheme scheme = Scheme::kBaseline;
  std::uint64_t seed = 1;
  /// Scales the per-node committed-transaction quota (1.0 = bench default).
  double scale = 1.0;
  Cycle max_cycles = 30'000'000;
  /// Overrides applied on top of the Table II defaults (set by ablations).
  SystemConfig base_config{};
};

/// Runs one (workload, scheme) experiment and returns its metrics.
[[nodiscard]] RunResult run_experiment(const ExperimentParams& params);

/// Runs all 8 STAMP-like workloads under one scheme.
[[nodiscard]] std::vector<RunResult> run_suite(Scheme scheme,
                                               std::uint64_t seed = 1,
                                               double scale = 1.0);

/// Runs the full cross product: every workload under every scheme, in the
/// paper's order (Baseline, Backoff, RMW-Pred, PUNO).
struct SuiteComparison {
  std::vector<RunResult> baseline;
  std::vector<RunResult> backoff;
  std::vector<RunResult> rmw;
  std::vector<RunResult> puno;
};
[[nodiscard]] SuiteComparison run_comparison(std::uint64_t seed = 1,
                                             double scale = 1.0);

}  // namespace puno::metrics
