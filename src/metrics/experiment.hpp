// One-call experiment driver: build a STAMP-like workload and a CMP with a
// given scheme, run it to completion, and extract a RunResult. This is the
// entry point the benches, examples and integration tests share.
//
// Suite-level sweeps (every workload, every scheme) live in the parallel
// experiment runner: see runner/suite.hpp (library puno_runner).
#pragma once

#include <functional>
#include <string>

#include "metrics/run_result.hpp"
#include "sim/config.hpp"
#include "telemetry/series.hpp"
#include "trace/recorder.hpp"

namespace puno::metrics {

struct ExperimentParams {
  std::string workload = "vacation";  ///< STAMP benchmark name.
  Scheme scheme = Scheme::kBaseline;
  std::uint64_t seed = 1;
  /// Scales the per-node committed-transaction quota (1.0 = bench default).
  double scale = 1.0;
  Cycle max_cycles = 30'000'000;
  /// Overrides applied on top of the Table II defaults (set by ablations).
  SystemConfig base_config{};
  /// Event-trace request (docs/TRACING.md). Deliberately NOT part of the
  /// runner's cache key: tracing never changes simulated behaviour, and
  /// traced jobs bypass the cache so the side-effect files always appear.
  trace::TraceRequest trace{};
  /// Telemetry-sampling request (docs/TELEMETRY.md). Same cache contract as
  /// `trace`: excluded from the key, sampled jobs bypass the cache.
  telemetry::TelemetryRequest telemetry{};
};

/// Optional supervision of a running experiment: `stop` is polled every
/// `check_interval` simulated cycles and ends the run early (with
/// completed = false) when it returns true. The runner's wall-clock
/// watchdog is built on this; slicing does not perturb simulated behaviour.
struct ExperimentWatch {
  Cycle check_interval = 0;  ///< 0 = never poll.
  std::function<bool(Cycle)> stop;
};

/// Runs one (workload, scheme) experiment and returns its metrics.
[[nodiscard]] RunResult run_experiment(const ExperimentParams& params);

/// As above, under a watch (see ExperimentWatch).
[[nodiscard]] RunResult run_experiment(const ExperimentParams& params,
                                       const ExperimentWatch& watch);

}  // namespace puno::metrics
