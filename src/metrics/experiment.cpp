#include "metrics/experiment.hpp"

#include <fstream>
#include <optional>
#include <stdexcept>

#include "arch/cmp.hpp"
#include "telemetry/dashboard.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sampler.hpp"
#include "trace/abort_attribution.hpp"
#include "trace/chrome_export.hpp"
#include "traffic/engine.hpp"
#include "traffic/registry.hpp"

namespace puno::metrics {

RunResult run_experiment(const ExperimentParams& params) {
  return run_experiment(params, ExperimentWatch{});
}

RunResult run_experiment(const ExperimentParams& params,
                         const ExperimentWatch& watch) {
  SystemConfig cfg = params.base_config;
  cfg.scheme = params.scheme;
  cfg.seed = params.seed;

  auto workload = traffic::registry::make(params.workload, cfg, params.scale);
  arch::Cmp cmp(cfg, *workload);

  // Open-loop traffic workloads read simulated time (and bind their
  // traffic.* stats) through the kernel; closed-loop workloads need nothing.
  if (auto* open = dynamic_cast<traffic::OpenLoopWorkload*>(workload.get())) {
    open->attach(cmp.kernel());
  }

  // Attach the recorder before the first cycle so txn begins are never
  // missed. The recorder lives on this frame; detach before it dies.
  std::optional<trace::TraceRecorder> recorder;
  if (params.trace.active()) {
    const auto mask = trace::parse_filter(params.trace.filter);
    if (!mask) {
      throw std::runtime_error("trace: unknown filter '" +
                               params.trace.filter + "'");
    }
    recorder.emplace(params.trace.capacity, *mask);
    cmp.kernel().set_tracer(&*recorder);
  }

  // The sampler's hook registers before the first cycle so window 0 starts
  // at cycle 0. Pure observer: attaching it never changes the RunResult
  // (tests/telemetry/telemetry_integration_test.cpp asserts bit-identity).
  std::unique_ptr<telemetry::TelemetrySampler> sampler;
  if (params.telemetry.active()) {
    sampler = telemetry::TelemetrySampler::attach(cmp, params.telemetry);
  }

  const bool completed =
      cmp.run(params.max_cycles, watch.check_interval, watch.stop);

  RunResult r = RunResult::from_stats(cmp.kernel().stats());
  r.workload = params.workload;
  r.scheme = params.scheme;
  r.completed = completed;
  r.cycles = cmp.kernel().now();

  if (recorder.has_value()) {
    cmp.kernel().set_tracer(nullptr);
    r.trace_events = recorder->size();
    r.trace_dropped = recorder->dropped();
    if (!params.trace.path.empty()) {
      trace::TraceMeta meta;
      meta.workload = params.workload;
      meta.scheme = to_string(params.scheme);
      meta.seed = params.seed;
      meta.num_nodes = cfg.num_nodes;
      meta.final_cycle = cmp.kernel().now();
      if (!trace::write_chrome_trace_file(*recorder, meta,
                                          params.trace.path)) {
        throw std::runtime_error("trace: cannot write " + params.trace.path);
      }
      r.trace_path = params.trace.path;
    }
    if (!params.trace.report_path.empty()) {
      std::ofstream rep(params.trace.report_path, std::ios::trunc);
      if (!rep.is_open()) {
        throw std::runtime_error("trace: cannot write " +
                                 params.trace.report_path);
      }
      trace::write_abort_report(trace::attribute_aborts(*recorder), rep);
    }
  }

  if (sampler != nullptr) {
    sampler->finish();  // close the final partial window
    const auto& samples = sampler->series().samples();
    r.telemetry_samples = samples.size();
    r.telemetry_dropped = sampler->series().dropped();
    const auto open_out = [](const std::string& path) {
      std::ofstream out(path, std::ios::trunc);
      if (!out.is_open()) {
        throw std::runtime_error("telemetry: cannot write " + path);
      }
      return out;
    };
    if (!params.telemetry.jsonl_path.empty()) {
      auto out = open_out(params.telemetry.jsonl_path);
      telemetry::write_telemetry_jsonl(samples, out);
      r.telemetry_path = params.telemetry.jsonl_path;
    }
    if (!params.telemetry.csv_path.empty()) {
      auto out = open_out(params.telemetry.csv_path);
      telemetry::write_telemetry_csv(samples, cfg.num_nodes, out);
    }
    if (!params.telemetry.dashboard_path.empty()) {
      auto out = open_out(params.telemetry.dashboard_path);
      telemetry::DashboardMeta meta;
      meta.workload = params.workload;
      meta.scheme = to_string(params.scheme);
      meta.cycles = cmp.kernel().now();
      meta.interval = sampler->interval();
      meta.dropped = sampler->series().dropped();
      meta.num_nodes = cfg.num_nodes;
      meta.mesh_width = cfg.noc.mesh_width;
      meta.mesh_height = cfg.noc.rows();
      telemetry::write_dashboard_html(meta, samples, &cmp.kernel().stats(),
                                      out);
    }
  }
  return r;
}

}  // namespace puno::metrics
