#include "metrics/experiment.hpp"

#include "arch/cmp.hpp"
#include "workloads/stamp.hpp"

namespace puno::metrics {

RunResult run_experiment(const ExperimentParams& params) {
  return run_experiment(params, ExperimentWatch{});
}

RunResult run_experiment(const ExperimentParams& params,
                         const ExperimentWatch& watch) {
  SystemConfig cfg = params.base_config;
  cfg.scheme = params.scheme;
  cfg.seed = params.seed;

  auto workload = workloads::stamp::make(params.workload, cfg.num_nodes,
                                         params.seed, params.scale);
  arch::Cmp cmp(cfg, *workload);
  const bool completed =
      cmp.run(params.max_cycles, watch.check_interval, watch.stop);

  RunResult r = RunResult::from_stats(cmp.kernel().stats());
  r.workload = params.workload;
  r.scheme = params.scheme;
  r.completed = completed;
  r.cycles = cmp.kernel().now();
  return r;
}

}  // namespace puno::metrics
