#include "metrics/experiment.hpp"

#include "arch/cmp.hpp"
#include "workloads/stamp.hpp"

namespace puno::metrics {

RunResult run_experiment(const ExperimentParams& params) {
  SystemConfig cfg = params.base_config;
  cfg.scheme = params.scheme;
  cfg.seed = params.seed;

  auto workload = workloads::stamp::make(params.workload, cfg.num_nodes,
                                         params.seed, params.scale);
  arch::Cmp cmp(cfg, *workload);
  const bool completed = cmp.run(params.max_cycles);

  RunResult r = RunResult::from_stats(cmp.kernel().stats());
  r.workload = params.workload;
  r.scheme = params.scheme;
  r.completed = completed;
  r.cycles = cmp.kernel().now();
  return r;
}

std::vector<RunResult> run_suite(Scheme scheme, std::uint64_t seed,
                                 double scale) {
  std::vector<RunResult> results;
  for (const std::string& name : workloads::stamp::benchmark_names()) {
    ExperimentParams p;
    p.workload = name;
    p.scheme = scheme;
    p.seed = seed;
    p.scale = scale;
    results.push_back(run_experiment(p));
  }
  return results;
}

SuiteComparison run_comparison(std::uint64_t seed, double scale) {
  SuiteComparison c;
  c.baseline = run_suite(Scheme::kBaseline, seed, scale);
  c.backoff = run_suite(Scheme::kRandomBackoff, seed, scale);
  c.rmw = run_suite(Scheme::kRmwPred, seed, scale);
  c.puno = run_suite(Scheme::kPuno, seed, scale);
  return c;
}

}  // namespace puno::metrics
