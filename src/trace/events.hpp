// Transaction-lifecycle trace event vocabulary.
//
// One TraceEvent is a fixed-size POD snapshot of a single simulator
// occurrence: a transaction phase change, a conflict-detection decision, a
// directory service span, or a NoC flit crossing an injection/ejection
// boundary. Events carry no pointers and no ownership — they are plain
// values copied into the recorder's ring buffer — so recording can never
// perturb simulated behaviour (the zero-overhead contract, docs/TRACING.md).
//
// The per-kind meaning of the generic fields (`peer`, `ts`, `a`, `b`,
// `flags`) is documented next to each kind below and normatively in
// docs/TRACING.md; the Chrome exporter and the abort-attribution walker are
// the two consumers.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace puno::trace {

/// Coarse event category, used as the runtime filter granularity
/// (`--trace=txn,dir`). Values are bitmask bits.
enum class Cat : std::uint32_t {
  kTxn = 1u << 0,       ///< Transaction lifecycle: begin/commit/abort/stall.
  kConflict = 1u << 1,  ///< Conflict detection: NACKs, GETX outcomes, backoff.
  kDir = 1u << 2,       ///< Directory: service spans, unicast/multicast.
  kNoc = 1u << 3,       ///< Network: per-flit injection/ejection.
  kPuno = 1u << 4,      ///< PUNO predictor: UD predictions and fallbacks.
};

inline constexpr std::uint32_t kAllCats =
    static_cast<std::uint32_t>(Cat::kTxn) |
    static_cast<std::uint32_t>(Cat::kConflict) |
    static_cast<std::uint32_t>(Cat::kDir) |
    static_cast<std::uint32_t>(Cat::kNoc) |
    static_cast<std::uint32_t>(Cat::kPuno);

/// What happened. Field interpretation per kind:
///
///   kTxnBegin      node=core. ts=txn timestamp, a=static txn id,
///                  flags bit0 = retry of an aborted instance.
///   kTxnCommit     node=core. ts=txn timestamp, a=static txn id,
///                  b=attempt length in cycles.
///   kTxnAbort      node=victim core. ts=victim's txn timestamp,
///                  peer=requester whose message caused the abort
///                  (kInvalidNode for overflow), addr=conflicting block,
///                  a=cause (0 remote write, 1 remote read, 2 overflow),
///                  b=requester's txn timestamp (kInvalidTimestamp for
///                  overflow).
///   kTxnStall      node=core. a=restart stall length in cycles (abort
///                  recovery + scheme backoff), b=aborts of this instance
///                  so far.
///   kNackSent      node=nacker core, peer=requester, addr=block.
///                  ts=requester's txn timestamp, a=notification attached
///                  (cycles, 0 = none), b=nacker's txn timestamp,
///                  flags bit0 = the nacked request was a GETX (write).
///   kNackMispredict node=nacked core (PUNO unicast misprediction),
///                  peer=requester, addr=block, ts=requester's timestamp,
///                  b=local txn timestamp (kInvalidTimestamp if the node was
///                  not in a transaction), flags bit0 as kNackSent.
///   kGetxOutcome   node=requester core, addr=block. a=NACKs collected this
///                  issue, b=sharers that aborted for this issue,
///                  flags bit0 = the issue succeeded.
///   kBackoffWindow node=requester core, addr=block. a=backoff window in
///                  cycles, b=retries so far, ts=best notification received
///                  (0 = none), flags bit0 = the window was
///                  notification-guided.
///   kDirBlock      node=directory, peer=requester, addr=block.
///                  cycle=service start, a=blocked duration in cycles,
///                  flags bit0 = the service was a transactional GETX.
///   kGetxUnicast   node=directory, peer=predicted unicast destination,
///                  addr=block, ts=requester's txn timestamp, a=requester,
///                  b=sharer count the multicast would have disrupted.
///   kGetxMulticast node=directory, peer=requester, addr=block,
///                  ts=requester's txn timestamp, a=invalidation target
///                  mask, b=target count, flags bit0 = transactional.
///   kUdPredict     node=directory, peer=predicted destination,
///                  ts=requester's txn timestamp, a=requester, b=P-Buffer
///                  timestamp of the predicted node.
///   kUdFallback    node=directory, ts=requester's txn timestamp,
///                  a=requester (no usable prediction: multicast).
///   kMpFeedback    node=directory, peer=node whose stale P-Buffer priority
///                  misdirected a unicast (UNBLOCK MP-bit).
///   kFlitInject    node=injecting NI, peer=destination node, a=packet id,
///                  b=virtual network, flags bit0 = head flit,
///                  bit1 = tail flit.
///   kFlitEject     node=ejecting NI, peer=source node, a=packet id,
///                  b=virtual network, flags bit0 = head flit,
///                  bit1 = tail flit.
enum class EventKind : std::uint8_t {
  kTxnBegin,
  kTxnCommit,
  kTxnAbort,
  kTxnStall,
  kNackSent,
  kNackMispredict,
  kGetxOutcome,
  kBackoffWindow,
  kDirBlock,
  kGetxUnicast,
  kGetxMulticast,
  kUdPredict,
  kUdFallback,
  kMpFeedback,
  kFlitInject,
  kFlitEject,
};

[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTxnBegin: return "txn_begin";
    case EventKind::kTxnCommit: return "txn_commit";
    case EventKind::kTxnAbort: return "txn_abort";
    case EventKind::kTxnStall: return "txn_stall";
    case EventKind::kNackSent: return "nack";
    case EventKind::kNackMispredict: return "nack_mispredict";
    case EventKind::kGetxOutcome: return "getx_outcome";
    case EventKind::kBackoffWindow: return "backoff";
    case EventKind::kDirBlock: return "dir_block";
    case EventKind::kGetxUnicast: return "getx_unicast";
    case EventKind::kGetxMulticast: return "getx_multicast";
    case EventKind::kUdPredict: return "ud_predict";
    case EventKind::kUdFallback: return "ud_fallback";
    case EventKind::kMpFeedback: return "mp_feedback";
    case EventKind::kFlitInject: return "flit_inject";
    case EventKind::kFlitEject: return "flit_eject";
  }
  return "?";
}

/// Category each kind belongs to (drives the runtime filter).
[[nodiscard]] constexpr Cat category_of(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTxnBegin:
    case EventKind::kTxnCommit:
    case EventKind::kTxnAbort:
    case EventKind::kTxnStall:
      return Cat::kTxn;
    case EventKind::kNackSent:
    case EventKind::kNackMispredict:
    case EventKind::kGetxOutcome:
    case EventKind::kBackoffWindow:
      return Cat::kConflict;
    case EventKind::kDirBlock:
    case EventKind::kGetxUnicast:
    case EventKind::kGetxMulticast:
    case EventKind::kMpFeedback:
      return Cat::kDir;
    case EventKind::kUdPredict:
    case EventKind::kUdFallback:
      return Cat::kPuno;
    case EventKind::kFlitInject:
    case EventKind::kFlitEject:
      return Cat::kNoc;
  }
  return Cat::kTxn;
}

/// Abort causes mirrored from htm::AbortCause (kept as raw integers so the
/// trace library does not depend on the HTM layer).
inline constexpr std::uint64_t kAbortRemoteWrite = 0;
inline constexpr std::uint64_t kAbortRemoteRead = 1;
inline constexpr std::uint64_t kAbortOverflow = 2;

/// One recorded occurrence. 48 bytes, trivially copyable; ownership is by
/// value (the recorder's ring owns its copies, emitters keep nothing).
struct TraceEvent {
  Cycle cycle = 0;       ///< Simulated cycle the event describes (for span
                         ///< kinds: the span start).
  BlockAddr addr = 0;    ///< Cache-block address involved (0 if none).
  Timestamp ts = 0;      ///< Transaction timestamp (priority); see per-kind.
  std::uint64_t a = 0;   ///< Kind-specific (see EventKind docs).
  std::uint64_t b = 0;   ///< Kind-specific (see EventKind docs).
  NodeId node = 0;       ///< Track owner: the tile the event happened on.
  NodeId peer = 0;       ///< Other party (requester/destination); see kind.
  EventKind kind = EventKind::kTxnBegin;
  std::uint8_t flags = 0;  ///< Kind-specific bits (see EventKind docs).
};

static_assert(sizeof(TraceEvent) <= 48, "keep trace events cache-friendly");

}  // namespace puno::trace
