// Fixed-capacity ring-buffer trace recorder.
//
// A TraceRecorder owns a preallocated ring of TraceEvents. Recording is a
// masked bit-test plus a struct copy — no allocation, no I/O, no branches on
// simulated state — so attaching a recorder never changes simulation
// results (verified by tests/trace/trace_integration_test.cpp).
//
// Attachment model: the Kernel holds a nullable `trace::TraceRecorder*`
// (see sim/kernel.hpp). Components emit through the PUNO_TEV macro below,
// which compiles to a null-check when tracing is enabled and to nothing at
// all when the library is built with -DPUNO_TRACING_DISABLED=ON (the
// compile-time no-op path of the zero-overhead contract, docs/TRACING.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/events.hpp"

namespace puno::trace {

/// Parse a comma-separated category filter ("txn,conflict", "all", "dir")
/// into a Cat bitmask. Empty string means all categories. Returns
/// std::nullopt on an unknown token. Accepted tokens: txn, conflict, dir,
/// noc, puno, all.
[[nodiscard]] std::optional<std::uint32_t> parse_filter(std::string_view s);

/// Render a category mask back to canonical filter syntax ("txn,dir",
/// "all").
[[nodiscard]] std::string filter_to_string(std::uint32_t mask);

class TraceRecorder {
 public:
  /// 256Ki events ≈ 12 MiB: enough to hold every event of the smoke-sized
  /// workloads without wrapping, small enough to sit in a sweep job.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity,
                         std::uint32_t category_mask = kAllCats);

  /// Does the filter want this category? Emitters call this before paying
  /// for event construction.
  [[nodiscard]] bool wants(Cat c) const noexcept {
    return (mask_ & static_cast<std::uint32_t>(c)) != 0;
  }

  /// Append one event; O(1), never allocates. When the ring is full the
  /// oldest event is overwritten (dropped() starts counting).
  void record(const TraceEvent& ev) noexcept {
    ring_[next_] = ev;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    ++recorded_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint32_t category_mask() const noexcept { return mask_; }

  /// Events currently held (≤ capacity).
  [[nodiscard]] std::uint64_t size() const noexcept {
    return recorded_ < ring_.size() ? recorded_ : ring_.size();
  }
  /// Events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Oldest events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  /// Visit retained events oldest → newest (recording order; within a cycle
  /// this is deterministic emission order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = static_cast<std::size_t>(size());
    const std::size_t first =
        recorded_ > ring_.size() ? next_ : 0;  // wrapped ⇒ oldest is at next_
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = first + i < ring_.size()
                                 ? first + i
                                 : first + i - ring_.size();
      fn(ring_[at]);
    }
  }

  /// Retained events as a vector, oldest → newest (convenience for
  /// exporters and tests).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear() noexcept {
    next_ = 0;
    recorded_ = 0;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;        // slot the next event lands in
  std::uint64_t recorded_ = 0;  // lifetime count, monotone
  std::uint32_t mask_ = kAllCats;
};

/// Run-scoped settings a caller (punosim, punobatch, ExperimentParams)
/// uses to request tracing. Plain data; owned by value wherever embedded.
struct TraceRequest {
  bool enabled = false;      ///< Master switch; false ⇒ all below ignored.
  std::string filter;        ///< Category filter syntax; "" = all.
  std::string path;          ///< Chrome trace JSON output; "" = don't write.
  std::string report_path;   ///< Abort-attribution report; "" = don't write.
  std::size_t capacity = TraceRecorder::kDefaultCapacity;

  [[nodiscard]] bool active() const noexcept { return enabled; }
};

}  // namespace puno::trace

/// Emission macro used at every instrumentation site:
///
///   PUNO_TEV(kernel_, trace::Cat::kTxn,
///            (trace::TraceEvent{.cycle = kernel_.now(), ...}));
///
/// Expands to a pointer load + mask test guarding the event construction
/// (runtime-disabled cost: one predictable branch), or to nothing when the
/// tree is compiled with -DPUNO_TRACING_DISABLED=ON.
#ifndef PUNO_TRACING_DISABLED
#define PUNO_TEV(kernel, cat, ...)                                          \
  do {                                                                      \
    if (::puno::trace::TraceRecorder* puno_tev_r_ = (kernel).tracer();      \
        puno_tev_r_ != nullptr && puno_tev_r_->wants(cat)) {                \
      puno_tev_r_->record(__VA_ARGS__);                                     \
    }                                                                       \
  } while (false)
#else
// Compiled-out form: sizeof keeps every operand semantically "used" (so
// parameters that only feed trace events don't trip -Wunused-parameter)
// while remaining a strictly unevaluated context — no code is generated.
#define PUNO_TEV(kernel, cat, ...)                                          \
  do {                                                                      \
    (void)sizeof((void)(kernel), (void)(cat), (__VA_ARGS__));               \
  } while (false)
#endif
