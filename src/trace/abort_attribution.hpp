// Abort attribution: classify every recorded transaction abort as false or
// necessary by walking requester→nacker conflict chains.
//
// Ground truth from the paper (PAPER.md §3): a multicast transactional GETX
// invalidates every sharer; sharers with lower priority abort, the rest
// NACK. If *any* sharer NACKed, the requester's issue failed and the aborted
// sharers aborted for nothing — a *false abort*. If the issue succeeded,
// those aborts were necessary to grant exclusivity.
//
// The walker replays a recorder's event stream chronologically:
//
//   kTxnAbort (remote-write cause)  → pend on (aborting requester, addr);
//   kNackSent / kNackMispredict     → accumulate on (requester, addr) as the
//                                     chain of higher-priority survivors;
//   kGetxOutcome (requester, addr)  → resolve: failure ⇒ pending aborts were
//                                     false (chain attached), success ⇒
//                                     necessary;
//   kTxnAbort (remote-read cause)   → necessary immediately (a forwarded
//                                     GETS is always granted — there is no
//                                     failing multicast to blame);
//   kTxnAbort (overflow cause)      → counted separately, not a conflict.
//
// By construction `report.false_abort_events` equals the simulator's
// `htm.false_abort_events` counter and `report.falsely_aborted_txns` equals
// `htm.falsely_aborted_txns` whenever the ring did not drop events — the
// cross-check behind `punosim --verify-trace` and the Fig. 2 walkthrough in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/recorder.hpp"

namespace puno::trace {

enum class AbortClass : std::uint8_t {
  kFalse,       ///< GETX that caused it was NACKed: aborted for nothing.
  kNecessary,   ///< Conflict was real: the requester won and proceeded.
  kOverflow,    ///< Capacity eviction, not a coherence conflict.
  kUnresolved,  ///< No matching outcome in the trace (truncated/filtered).
};

[[nodiscard]] constexpr const char* to_string(AbortClass c) noexcept {
  switch (c) {
    case AbortClass::kFalse: return "false";
    case AbortClass::kNecessary: return "necessary";
    case AbortClass::kOverflow: return "overflow";
    case AbortClass::kUnresolved: return "unresolved";
  }
  return "?";
}

/// One NACK inside a conflict chain: a sharer that out-prioritized the
/// requester.
struct ChainNack {
  NodeId nacker = kInvalidNode;
  Timestamp nacker_ts = kInvalidTimestamp;  ///< kInvalidTimestamp: the NACK
                                            ///< came from a non-transactional
                                            ///< or mispredicted node.
  Cycle cycle = 0;
  bool mispredict = false;  ///< PUNO unicast landed on a non-conflicting node.
};

/// One classified abort.
struct AttributedAbort {
  Cycle cycle = 0;               ///< When the victim aborted.
  Cycle resolved_at = 0;         ///< When the classifying outcome arrived.
  BlockAddr addr = 0;            ///< Conflicting block.
  NodeId victim = kInvalidNode;  ///< Core whose transaction died.
  NodeId aborter = kInvalidNode; ///< Requester whose message killed it.
  Timestamp victim_ts = kInvalidTimestamp;
  Timestamp aborter_ts = kInvalidTimestamp;
  std::uint64_t cause = kAbortRemoteWrite;
  AbortClass cls = AbortClass::kUnresolved;
};

/// One *failed* transactional GETX issue: the requester, the sharers that
/// NACKed it (priority ordering), and the sharers that aborted for it.
struct ConflictChain {
  Cycle resolved_at = 0;
  BlockAddr addr = 0;
  NodeId requester = kInvalidNode;
  Timestamp requester_ts = kInvalidTimestamp;
  std::uint64_t aborted_sharers = 0;  ///< As counted by the requester's acks.
  std::vector<ChainNack> nacks;       ///< In arrival order.
};

struct AttributionReport {
  std::vector<AttributedAbort> aborts;       ///< Every abort, stream order.
  std::vector<ConflictChain> failed_issues;  ///< Every NACKed tx-GETX issue.

  // Aggregates (aborts by class; events as the counters define them).
  std::uint64_t false_aborts = 0;
  std::uint64_t necessary_aborts = 0;
  std::uint64_t overflow_aborts = 0;
  std::uint64_t unresolved_aborts = 0;
  /// Failed issues that aborted ≥1 sharer — comparable to the simulator's
  /// `htm.false_abort_events` StatsRegistry counter.
  std::uint64_t false_abort_events = 0;
  /// Sum of sharers aborted across those — comparable to
  /// `htm.falsely_aborted_txns`.
  std::uint64_t falsely_aborted_txns = 0;
  /// Ring drops at walk time; >0 weakens the counter-match guarantee.
  std::uint64_t dropped_events = 0;

  [[nodiscard]] std::uint64_t total_aborts() const noexcept {
    return false_aborts + necessary_aborts + overflow_aborts +
           unresolved_aborts;
  }
};

/// Walk retained events and classify (see file comment for the algorithm).
[[nodiscard]] AttributionReport attribute_aborts(const TraceRecorder& rec);

/// Same walk over a bare event vector (events must be in recording order);
/// lets tests hand-build scenarios without a recorder.
[[nodiscard]] AttributionReport attribute_aborts(
    const std::vector<TraceEvent>& events, std::uint64_t dropped = 0);

/// Human-readable report: aggregate table, then one line per abort and per
/// failed-issue chain. Stable formatting (goldenable).
void write_abort_report(const AttributionReport& report, std::ostream& out);

}  // namespace puno::trace
