// Chrome trace-event JSON exporter (Perfetto-loadable).
//
// Output format: the "JSON Object Format" of the Chrome trace-event spec —
// `{"traceEvents":[...]}` — which Perfetto's trace-event importer accepts
// (open ui.perfetto.dev and drop the file). Track layout:
//
//   pid 0 "cores"        one tid per core: transaction spans ("X" complete
//                        events: attempt begin → commit/abort), stall and
//                        backoff spans, NACK/outcome instants.
//   pid 1 "directories"  one tid per directory: service-blocking spans,
//                        unicast/multicast decision instants, predictor
//                        instants.
//   pid 2 "noc"          one tid per NI: flit injection/ejection instants.
//
// Timestamps: Chrome's `ts` is microseconds; we write one simulated cycle
// as one microsecond so Perfetto's timeline reads directly in cycles.
//
// Determinism: the writer emits events in recording order with no
// wall-clock, hostname or path content, so the same simulation produces
// byte-identical files no matter where or under how many runner threads it
// ran (tests/trace/chrome_export_test.cpp relies on this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "trace/recorder.hpp"

namespace puno::trace {

/// Run identity stamped into the file as metadata (otherArgs of a global
/// metadata event). Strings are copied; no ownership is retained.
struct TraceMeta {
  std::string workload;
  std::string scheme;
  std::uint64_t seed = 0;
  std::uint32_t num_nodes = 0;
  Cycle final_cycle = 0;  ///< Kernel cycle at export time; closes open spans.
};

/// Write the recorder's retained events as Chrome trace JSON.
void write_chrome_trace(const TraceRecorder& rec, const TraceMeta& meta,
                        std::ostream& out);

/// Convenience: open `path`, write, return false on I/O failure.
[[nodiscard]] bool write_chrome_trace_file(const TraceRecorder& rec,
                                           const TraceMeta& meta,
                                           const std::string& path);

/// What validate_chrome_trace() learned about a trace file.
struct ChromeTraceCheck {
  std::uint64_t events = 0;        ///< Elements of "traceEvents".
  std::uint64_t complete = 0;      ///< ph=="X" spans.
  std::uint64_t instants = 0;      ///< ph=="i" instants.
  std::uint64_t metadata = 0;      ///< ph=="M" metadata records.
};

/// Structural validator: parse `in` as JSON (full grammar: objects, arrays,
/// strings with escapes, numbers, literals), require a top-level object
/// with a "traceEvents" array whose elements are objects each carrying
/// string "ph" and "name" fields. Returns std::nullopt (with a message in
/// *error if given) on any syntax or shape violation. This is the same
/// structure Perfetto's trace-event importer requires, so a passing file
/// loads there; used by `punosim --verify-trace` and the trace_smoke test.
[[nodiscard]] std::optional<ChromeTraceCheck> validate_chrome_trace(
    std::istream& in, std::string* error = nullptr);

}  // namespace puno::trace
