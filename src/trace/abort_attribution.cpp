#include "trace/abort_attribution.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <utility>

namespace puno::trace {

namespace {

/// Pending state is keyed by (requester node, block): a requester has at
/// most one outstanding GETX per block, so the next kGetxOutcome at the key
/// resolves everything accumulated under it.
using Key = std::pair<NodeId, BlockAddr>;

[[nodiscard]] std::string ts_str(Timestamp ts) {
  if (ts == kInvalidTimestamp) return "-";
  return std::to_string(ts);
}

}  // namespace

AttributionReport attribute_aborts(const std::vector<TraceEvent>& events,
                                   std::uint64_t dropped) {
  AttributionReport rep;
  rep.dropped_events = dropped;

  // Indices into rep.aborts awaiting their requester's outcome.
  std::map<Key, std::vector<std::size_t>> pending_aborts;
  // NACK chains accumulating against a requester's in-flight issue.
  std::map<Key, std::vector<ChainNack>> pending_nacks;

  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::kTxnAbort: {
        AttributedAbort ab;
        ab.cycle = ev.cycle;
        ab.addr = ev.addr;
        ab.victim = ev.node;
        ab.aborter = ev.peer;
        ab.victim_ts = ev.ts;
        ab.aborter_ts = ev.b;
        ab.cause = ev.a;
        if (ev.a == kAbortOverflow) {
          ab.cls = AbortClass::kOverflow;
          ab.resolved_at = ev.cycle;
          ++rep.overflow_aborts;
        } else if (ev.a == kAbortRemoteRead) {
          // A forwarded GETS is always granted — no multicast to blame.
          ab.cls = AbortClass::kNecessary;
          ab.resolved_at = ev.cycle;
          ++rep.necessary_aborts;
        } else {
          ab.cls = AbortClass::kUnresolved;  // until the outcome arrives
          pending_aborts[{ev.peer, ev.addr}].push_back(rep.aborts.size());
        }
        rep.aborts.push_back(ab);
        break;
      }
      case EventKind::kNackSent:
      case EventKind::kNackMispredict: {
        // flags bit0 = the nacked request was a GETX. A nacked GETS never
        // produces an outcome event, so pending it would pollute the next
        // GETX chain at the same (requester, addr).
        if ((ev.flags & 1) == 0) break;
        ChainNack n;
        n.nacker = ev.node;
        n.nacker_ts = ev.b;
        n.cycle = ev.cycle;
        n.mispredict = ev.kind == EventKind::kNackMispredict;
        pending_nacks[{ev.peer, ev.addr}].push_back(n);
        break;
      }
      case EventKind::kGetxOutcome: {
        const Key key{ev.node, ev.addr};
        const bool success = (ev.flags & 1) != 0;
        const std::uint64_t nacks = ev.a;
        const std::uint64_t aborted = ev.b;

        const auto pa = pending_aborts.find(key);
        if (pa != pending_aborts.end()) {
          for (const std::size_t idx : pa->second) {
            AttributedAbort& ab = rep.aborts[idx];
            ab.resolved_at = ev.cycle;
            ab.cls = success ? AbortClass::kNecessary : AbortClass::kFalse;
            if (success) {
              ++rep.necessary_aborts;
            } else {
              ++rep.false_aborts;
            }
          }
          pending_aborts.erase(pa);
        }

        std::vector<ChainNack> chain;
        const auto pn = pending_nacks.find(key);
        if (pn != pending_nacks.end()) {
          chain = std::move(pn->second);
          pending_nacks.erase(pn);
        }

        if (!success) {
          // Mirror the simulator's accounting exactly: a failed issue is a
          // false-abort *event* only if it also aborted somebody.
          if (nacks > 0 && aborted > 0) {
            ++rep.false_abort_events;
            rep.falsely_aborted_txns += aborted;
          }
          ConflictChain cc;
          cc.resolved_at = ev.cycle;
          cc.addr = ev.addr;
          cc.requester = ev.node;
          // Every NACK in the chain carries the same requester timestamp.
          cc.requester_ts = ev.ts;
          cc.aborted_sharers = aborted;
          cc.nacks = std::move(chain);
          rep.failed_issues.push_back(std::move(cc));
        }
        break;
      }
      default:
        break;  // other kinds don't participate in attribution
    }
  }

  for (const auto& [key, idxs] : pending_aborts) {
    (void)key;
    rep.unresolved_aborts += idxs.size();
  }
  return rep;
}

AttributionReport attribute_aborts(const TraceRecorder& rec) {
  return attribute_aborts(rec.snapshot(), rec.dropped());
}

void write_abort_report(const AttributionReport& rep, std::ostream& out) {
  out << "abort attribution\n";
  out << "  total aborts:        " << rep.total_aborts() << "\n";
  out << "  false:               " << rep.false_aborts << "\n";
  out << "  necessary:           " << rep.necessary_aborts << "\n";
  out << "  overflow:            " << rep.overflow_aborts << "\n";
  out << "  unresolved:          " << rep.unresolved_aborts << "\n";
  out << "  false-abort events:  " << rep.false_abort_events
      << "  (failed tx-GETX issues that aborted >=1 sharer)\n";
  out << "  falsely aborted txns:" << rep.falsely_aborted_txns << "\n";
  if (rep.dropped_events > 0) {
    out << "  WARNING: " << rep.dropped_events
        << " events dropped by ring wraparound; counts are a lower bound\n";
  }

  if (!rep.aborts.empty()) {
    out << "aborts (cycle victim <- aborter @addr cause class "
           "victim_ts/aborter_ts)\n";
    for (const AttributedAbort& ab : rep.aborts) {
      char aborter[16];
      if (ab.aborter == kInvalidNode) {
        std::snprintf(aborter, sizeof aborter, "-");
      } else {
        std::snprintf(aborter, sizeof aborter, "n%u",
                      static_cast<unsigned>(ab.aborter));
      }
      char line[192];
      std::snprintf(line, sizeof line,
                    "  %10llu  n%-3u <- %-4s @0x%-10llx %-12s %-10s %s/%s\n",
                    static_cast<unsigned long long>(ab.cycle),
                    static_cast<unsigned>(ab.victim), aborter,
                    static_cast<unsigned long long>(ab.addr),
                    ab.cause == kAbortOverflow     ? "overflow"
                    : ab.cause == kAbortRemoteRead ? "remote-read"
                                                   : "remote-write",
                    to_string(ab.cls), ts_str(ab.victim_ts).c_str(),
                    ts_str(ab.aborter_ts).c_str());
      out << line;
    }
  }

  if (!rep.failed_issues.empty()) {
    out << "failed tx-GETX issues (requester -> nacker chain, priority = "
           "smaller ts wins)\n";
    for (const ConflictChain& cc : rep.failed_issues) {
      char head[128];
      std::snprintf(head, sizeof head,
                    "  %10llu  n%-3u ts=%s @0x%llx aborted=%llu nacked by:",
                    static_cast<unsigned long long>(cc.resolved_at),
                    static_cast<unsigned>(cc.requester),
                    ts_str(cc.requester_ts).c_str(),
                    static_cast<unsigned long long>(cc.addr),
                    static_cast<unsigned long long>(cc.aborted_sharers));
      out << head;
      if (cc.nacks.empty()) out << " (nack chain not in trace)";
      for (const ChainNack& n : cc.nacks) {
        out << " n" << n.nacker << "(ts=" << ts_str(n.nacker_ts)
            << (n.mispredict ? ",mispredict" : "") << ")";
      }
      out << "\n";
    }
  }
}

}  // namespace puno::trace
