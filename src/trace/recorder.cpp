#include "trace/recorder.hpp"

namespace puno::trace {

namespace {

[[nodiscard]] std::optional<std::uint32_t> token_mask(std::string_view tok) {
  if (tok == "all") return kAllCats;
  if (tok == "txn") return static_cast<std::uint32_t>(Cat::kTxn);
  if (tok == "conflict") return static_cast<std::uint32_t>(Cat::kConflict);
  if (tok == "dir") return static_cast<std::uint32_t>(Cat::kDir);
  if (tok == "noc") return static_cast<std::uint32_t>(Cat::kNoc);
  if (tok == "puno") return static_cast<std::uint32_t>(Cat::kPuno);
  return std::nullopt;
}

}  // namespace

std::optional<std::uint32_t> parse_filter(std::string_view s) {
  if (s.empty()) return kAllCats;
  std::uint32_t mask = 0;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view tok =
        comma == std::string_view::npos ? s : s.substr(0, comma);
    s = comma == std::string_view::npos ? std::string_view{}
                                        : s.substr(comma + 1);
    if (tok.empty()) continue;  // tolerate "txn,,dir" and trailing commas
    const auto m = token_mask(tok);
    if (!m) return std::nullopt;
    mask |= *m;
  }
  return mask == 0 ? kAllCats : mask;
}

std::string filter_to_string(std::uint32_t mask) {
  if ((mask & kAllCats) == kAllCats) return "all";
  std::string out;
  const auto add = [&](Cat c, const char* name) {
    if ((mask & static_cast<std::uint32_t>(c)) == 0) return;
    if (!out.empty()) out += ',';
    out += name;
  };
  add(Cat::kTxn, "txn");
  add(Cat::kConflict, "conflict");
  add(Cat::kDir, "dir");
  add(Cat::kNoc, "noc");
  add(Cat::kPuno, "puno");
  return out.empty() ? "none" : out;
}

TraceRecorder::TraceRecorder(std::size_t capacity,
                             std::uint32_t category_mask)
    : ring_(capacity > 0 ? capacity : 1), mask_(category_mask) {}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(size()));
  for_each([&](const TraceEvent& ev) { out.push_back(ev); });
  return out;
}

}  // namespace puno::trace
