#include "trace/chrome_export.hpp"

#include <array>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

namespace puno::trace {

namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

[[nodiscard]] std::string jesc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

[[nodiscard]] std::string hex_addr(BlockAddr a) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(a));
  return buf;
}

class ChromeWriter {
 public:
  ChromeWriter(const TraceMeta& meta, std::ostream& out)
      : meta_(meta), out_(out) {}

  void write(const TraceRecorder& rec) {
    out_ << "{\"traceEvents\":[";
    write_process_meta();
    rec.for_each([&](const TraceEvent& ev) { dispatch(ev); });
    close_open_txns();
    out_ << "\n],\"otherData\":{\"workload\":\"" << jesc(meta_.workload)
         << "\",\"scheme\":\"" << jesc(meta_.scheme)
         << "\",\"seed\":" << meta_.seed
         << ",\"num_nodes\":" << meta_.num_nodes
         << ",\"recorded\":" << rec.recorded()
         << ",\"dropped\":" << rec.dropped() << ",\"filter\":\""
         << jesc(filter_to_string(rec.category_mask()))
         << "\"},\"displayTimeUnit\":\"ns\"}\n";
  }

 private:
  struct OpenTxn {
    bool active = false;
    Cycle begin = 0;
    Timestamp ts = 0;
    std::uint64_t id = 0;
    bool retry = false;
  };

  void comma() {
    if (first_) {
      first_ = false;
    } else {
      out_ << ',';
    }
    out_ << "\n";
  }

  void write_process_meta() {
    static constexpr std::array<const char*, 3> kProc = {"cores",
                                                         "directories", "noc"};
    static constexpr std::array<const char*, 3> kThread = {"core", "dir",
                                                           "ni"};
    for (int pid = 0; pid < 3; ++pid) {
      comma();
      out_ << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << kProc[pid]
           << "\"}}";
      for (std::uint32_t n = 0; n < meta_.num_nodes; ++n) {
        comma();
        out_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << n
             << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
             << kThread[pid] << " " << n << "\"}}";
      }
    }
  }

  void span(int pid, NodeId tid, const char* name, Cycle start, Cycle dur,
            const std::string& args) {
    comma();
    out_ << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":" << start << ",\"dur\":" << dur << ",\"name\":\""
         << name << "\"";
    if (!args.empty()) out_ << ",\"args\":{" << args << "}";
    out_ << "}";
  }

  void instant(int pid, NodeId tid, const char* name, Cycle at,
               const std::string& args) {
    comma();
    out_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":" << at << ",\"name\":\"" << name << "\"";
    if (!args.empty()) out_ << ",\"args\":{" << args << "}";
    out_ << "}";
  }

  [[nodiscard]] static std::string txn_args(const OpenTxn& t,
                                            const char* outcome) {
    std::ostringstream a;
    a << "\"txn\":" << t.id << ",\"priority_ts\":" << t.ts
      << ",\"retry\":" << (t.retry ? "true" : "false") << ",\"outcome\":\""
      << outcome << "\"";
    return a.str();
  }

  void dispatch(const TraceEvent& ev) {
    std::ostringstream a;
    switch (ev.kind) {
      case EventKind::kTxnBegin: {
        OpenTxn& t = open_txn(ev.node);
        t = OpenTxn{true, ev.cycle, ev.ts, ev.a, (ev.flags & 1) != 0};
        return;  // span written at commit/abort
      }
      case EventKind::kTxnCommit: {
        OpenTxn& t = open_txn(ev.node);
        if (t.active) {
          span(0, ev.node, "txn", t.begin, ev.cycle - t.begin,
               txn_args(t, "commit"));
          t.active = false;
        } else {  // begin lost to ring wraparound
          a << "\"txn\":" << ev.a << ",\"outcome\":\"commit\"";
          instant(0, ev.node, "txn_commit", ev.cycle, a.str());
        }
        return;
      }
      case EventKind::kTxnAbort: {
        OpenTxn& t = open_txn(ev.node);
        std::ostringstream extra;
        extra << "\"by\":" << ev.peer << ",\"addr\":\"" << hex_addr(ev.addr)
              << "\",\"cause\":" << ev.a << ",\"aborter_ts\":" << ev.b;
        if (t.active) {
          span(0, ev.node, "txn", t.begin, ev.cycle - t.begin,
               txn_args(t, "abort") + "," + extra.str());
          t.active = false;
        } else {
          instant(0, ev.node, "txn_abort", ev.cycle, extra.str());
        }
        return;
      }
      case EventKind::kTxnStall:
        a << "\"stall\":" << ev.a << ",\"aborts\":" << ev.b;
        span(0, ev.node, "stall", ev.cycle, ev.a, a.str());
        return;
      case EventKind::kBackoffWindow:
        a << "\"window\":" << ev.a << ",\"retries\":" << ev.b
          << ",\"notification\":" << ev.ts << ",\"guided\":"
          << ((ev.flags & 1) != 0 ? "true" : "false") << ",\"addr\":\""
          << hex_addr(ev.addr) << "\"";
        span(0, ev.node, "backoff", ev.cycle, ev.a, a.str());
        return;
      case EventKind::kDirBlock:
        a << "\"requester\":" << ev.peer << ",\"addr\":\""
          << hex_addr(ev.addr) << "\",\"tx_getx\":"
          << ((ev.flags & 1) != 0 ? "true" : "false");
        span(1, ev.node, "dir_block", ev.cycle, ev.a, a.str());
        return;
      case EventKind::kNackSent:
      case EventKind::kNackMispredict:
        a << "\"requester\":" << ev.peer << ",\"addr\":\""
          << hex_addr(ev.addr) << "\",\"requester_ts\":" << ev.ts
          << ",\"local_ts\":" << ev.b;
        if (ev.kind == EventKind::kNackSent) {
          a << ",\"notification\":" << ev.a;
        }
        instant(0, ev.node, to_string(ev.kind), ev.cycle, a.str());
        return;
      case EventKind::kGetxOutcome:
        a << "\"addr\":\"" << hex_addr(ev.addr) << "\",\"nacks\":" << ev.a
          << ",\"aborted_sharers\":" << ev.b << ",\"success\":"
          << ((ev.flags & 1) != 0 ? "true" : "false");
        instant(0, ev.node, "getx_outcome", ev.cycle, a.str());
        return;
      case EventKind::kGetxUnicast:
        a << "\"requester\":" << ev.a << ",\"target\":" << ev.peer
          << ",\"addr\":\"" << hex_addr(ev.addr)
          << "\",\"spared_sharers\":" << ev.b << ",\"requester_ts\":"
          << ev.ts;
        instant(1, ev.node, "getx_unicast", ev.cycle, a.str());
        return;
      case EventKind::kGetxMulticast:
        a << "\"requester\":" << ev.peer << ",\"addr\":\""
          << hex_addr(ev.addr) << "\",\"targets\":" << ev.b
          << ",\"requester_ts\":" << ev.ts << ",\"transactional\":"
          << ((ev.flags & 1) != 0 ? "true" : "false");
        instant(1, ev.node, "getx_multicast", ev.cycle, a.str());
        return;
      case EventKind::kUdPredict:
        a << "\"requester\":" << ev.a << ",\"target\":" << ev.peer
          << ",\"target_ts\":" << ev.b << ",\"requester_ts\":" << ev.ts;
        instant(1, ev.node, "ud_predict", ev.cycle, a.str());
        return;
      case EventKind::kUdFallback:
        a << "\"requester\":" << ev.a << ",\"requester_ts\":" << ev.ts;
        instant(1, ev.node, "ud_fallback", ev.cycle, a.str());
        return;
      case EventKind::kMpFeedback:
        a << "\"stale_node\":" << ev.peer;
        instant(1, ev.node, "mp_feedback", ev.cycle, a.str());
        return;
      case EventKind::kFlitInject:
      case EventKind::kFlitEject:
        a << "\"peer\":" << ev.peer << ",\"packet\":" << ev.a
          << ",\"vnet\":" << ev.b << ",\"head\":"
          << ((ev.flags & 1) != 0 ? "true" : "false")
          << ",\"tail\":" << ((ev.flags & 2) != 0 ? "true" : "false");
        instant(2, ev.node, to_string(ev.kind), ev.cycle, a.str());
        return;
    }
  }

  void close_open_txns() {
    for (std::size_t n = 0; n < open_.size(); ++n) {
      const OpenTxn& t = open_[n];
      if (!t.active) continue;
      const Cycle end =
          meta_.final_cycle > t.begin ? meta_.final_cycle : t.begin;
      span(0, static_cast<NodeId>(n), "txn", t.begin, end - t.begin,
           txn_args(t, "open"));
    }
  }

  OpenTxn& open_txn(NodeId node) {
    if (open_.size() <= node) open_.resize(node + std::size_t{1});
    return open_[node];
  }

  const TraceMeta& meta_;
  std::ostream& out_;
  std::vector<OpenTxn> open_;
  bool first_ = true;
};

// ---------------------------------------------------------------------------
// Validator: streaming recursive-descent JSON parser.
// ---------------------------------------------------------------------------

class JsonScanner {
 public:
  explicit JsonScanner(std::istream& in) : in_(in) {}

  /// Entry point: parse the whole document, filling `check`.
  [[nodiscard]] bool run(ChromeTraceCheck& check) {
    check_ = &check;
    skip_ws();
    if (!parse_top_object()) return false;
    skip_ws();
    if (peek() != EOF) return fail("trailing content after document");
    if (!saw_trace_events_) return fail("no \"traceEvents\" array");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return err_; }

 private:
  [[nodiscard]] int peek() { return in_.peek(); }
  int get() { return in_.get(); }

  void skip_ws() {
    int c = peek();
    while (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      get();
      c = peek();
    }
  }

  bool fail(const std::string& what) {
    if (err_.empty()) err_ = what;
    return false;
  }

  bool expect(char c) {
    if (get() != c) return fail(std::string("expected '") + c + "'");
    return true;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    for (;;) {
      const int c = get();
      if (c == EOF) return fail("unterminated string");
      if (c == '"') return true;
      if (c == '\\') {
        const int e = get();
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f': case 'n':
          case 'r': case 't':
            if (out) out->push_back(static_cast<char>(e));
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) {
              const int h = get();
              if (!std::isxdigit(h)) return fail("bad \\u escape");
            }
            if (out) out->push_back('?');
            break;
          default:
            return fail("bad escape character");
        }
      } else if (out) {
        out->push_back(static_cast<char>(c));
      }
    }
  }

  bool parse_number() {
    int c = peek();
    if (c == '-') get(), c = peek();
    if (!std::isdigit(c)) return fail("malformed number");
    while (std::isdigit(peek())) get();
    if (peek() == '.') {
      get();
      if (!std::isdigit(peek())) return fail("malformed fraction");
      while (std::isdigit(peek())) get();
    }
    if (peek() == 'e' || peek() == 'E') {
      get();
      if (peek() == '+' || peek() == '-') get();
      if (!std::isdigit(peek())) return fail("malformed exponent");
      while (std::isdigit(peek())) get();
    }
    return true;
  }

  bool parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (get() != *p) return fail(std::string("bad literal ") + lit);
    }
    return true;
  }

  /// Any JSON value, contents discarded.
  bool skip_value() {
    skip_ws();
    switch (peek()) {
      case '{': return skip_object();
      case '[': return skip_array();
      case '"': return parse_string(nullptr);
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }

  bool skip_object() {
    if (!expect('{')) return false;
    skip_ws();
    if (peek() == '}') return get(), true;
    for (;;) {
      skip_ws();
      if (!parse_string(nullptr)) return false;
      skip_ws();
      if (!expect(':')) return false;
      if (!skip_value()) return false;
      skip_ws();
      const int c = get();
      if (c == '}') return true;
      if (c != ',') return fail("expected ',' or '}'");
    }
  }

  bool skip_array() {
    if (!expect('[')) return false;
    skip_ws();
    if (peek() == ']') return get(), true;
    for (;;) {
      if (!skip_value()) return false;
      skip_ws();
      const int c = get();
      if (c == ']') return true;
      if (c != ',') return fail("expected ',' or ']'");
    }
  }

  /// One element of "traceEvents": an object with string "ph" and "name".
  bool parse_event() {
    skip_ws();
    if (peek() != '{') return fail("traceEvents element is not an object");
    get();
    std::string ph;
    bool has_name = false;
    skip_ws();
    if (peek() == '}') {
      get();
      return fail("traceEvents element missing \"ph\"");
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      if (key == "ph") {
        skip_ws();
        if (peek() != '"') return fail("\"ph\" is not a string");
        if (!parse_string(&ph)) return false;
      } else if (key == "name") {
        skip_ws();
        if (peek() != '"') return fail("\"name\" is not a string");
        if (!parse_string(nullptr)) return false;
        has_name = true;
      } else {
        if (!skip_value()) return false;
      }
      skip_ws();
      const int c = get();
      if (c == '}') break;
      if (c != ',') return fail("expected ',' or '}' in event");
    }
    if (ph.empty()) return fail("traceEvents element missing \"ph\"");
    if (!has_name) return fail("traceEvents element missing \"name\"");
    ++check_->events;
    if (ph == "X") ++check_->complete;
    else if (ph == "i" || ph == "I") ++check_->instants;
    else if (ph == "M") ++check_->metadata;
    return true;
  }

  bool parse_trace_events() {
    skip_ws();
    if (peek() != '[') return fail("\"traceEvents\" is not an array");
    get();
    skip_ws();
    if (peek() == ']') return get(), true;
    for (;;) {
      if (!parse_event()) return false;
      skip_ws();
      const int c = get();
      if (c == ']') return true;
      if (c != ',') return fail("expected ',' or ']' in traceEvents");
    }
  }

  bool parse_top_object() {
    skip_ws();
    if (peek() != '{') return fail("document is not a JSON object");
    get();
    skip_ws();
    if (peek() == '}') return get(), true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      if (key == "traceEvents") {
        saw_trace_events_ = true;
        if (!parse_trace_events()) return false;
      } else {
        if (!skip_value()) return false;
      }
      skip_ws();
      const int c = get();
      if (c == '}') return true;
      if (c != ',') return fail("expected ',' or '}' at top level");
    }
  }

  std::istream& in_;
  ChromeTraceCheck* check_ = nullptr;
  std::string err_;
  bool saw_trace_events_ = false;
};

}  // namespace

void write_chrome_trace(const TraceRecorder& rec, const TraceMeta& meta,
                        std::ostream& out) {
  ChromeWriter(meta, out).write(rec);
}

bool write_chrome_trace_file(const TraceRecorder& rec, const TraceMeta& meta,
                             const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  write_chrome_trace(rec, meta, out);
  out.flush();
  return out.good();
}

std::optional<ChromeTraceCheck> validate_chrome_trace(std::istream& in,
                                                      std::string* error) {
  ChromeTraceCheck check;
  JsonScanner scanner(in);
  if (!scanner.run(check)) {
    if (error != nullptr) *error = scanner.error();
    return std::nullopt;
  }
  return check;
}

}  // namespace puno::trace
