#include "runner/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef _WIN32
#include <process.h>
#define PUNO_GETPID _getpid
#else
#include <unistd.h>
#define PUNO_GETPID getpid
#endif

#include "metrics/stats_io.hpp"

namespace puno::runner {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// Doubles rendered with max_digits10 so distinct values never collapse to
/// one key and equal values always render identically.
void put(std::ostream& os, const char* name, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << ' ' << name << '=' << buf;
}

void put(std::ostream& os, const char* name, std::uint64_t v) {
  os << ' ' << name << '=' << v;
}

void put(std::ostream& os, const char* name, bool v) {
  os << ' ' << name << '=' << (v ? 1 : 0);
}

}  // namespace

std::string params_repr(const metrics::ExperimentParams& p) {
  // Every field of ExperimentParams and SystemConfig, by name. When a new
  // knob is added to either struct, add it here (the cache_key regression
  // tests enumerate the fields most likely to be forgotten).
  // Exception: p.trace and p.telemetry are deliberately NOT keyed — both
  // are observational (bit-identical simulation either way), and the runner
  // never serves a traced or sampled job from the cache because the cached
  // row carries no trace/telemetry files.
  const SystemConfig& c = p.base_config;
  std::ostringstream os;
  os << "workload=" << p.workload;
  os << " scheme=" << to_string(p.scheme);
  put(os, "seed", p.seed);
  put(os, "scale", p.scale);
  put(os, "max_cycles", p.max_cycles);
  put(os, "num_nodes", std::uint64_t{c.num_nodes});
  // c.scheme and c.seed are overwritten from the params at run time, so they
  // are deliberately not part of the key.
  put(os, "noc.mesh_width", std::uint64_t{c.noc.mesh_width});
  put(os, "noc.mesh_height", std::uint64_t{c.noc.mesh_height});
  put(os, "noc.num_vnets", std::uint64_t{c.noc.num_vnets});
  put(os, "noc.vcs_per_vnet", std::uint64_t{c.noc.vcs_per_vnet});
  put(os, "noc.vc_depth", std::uint64_t{c.noc.vc_depth});
  put(os, "noc.pipeline_stages", std::uint64_t{c.noc.pipeline_stages});
  put(os, "noc.link_latency", std::uint64_t{c.noc.link_latency});
  put(os, "noc.flit_bytes", std::uint64_t{c.noc.flit_bytes});
  put(os, "noc.always_tick", c.noc.always_tick);
  put(os, "cache.block_bytes", std::uint64_t{c.cache.block_bytes});
  put(os, "cache.l1_size_bytes", std::uint64_t{c.cache.l1_size_bytes});
  put(os, "cache.l1_assoc", std::uint64_t{c.cache.l1_assoc});
  put(os, "cache.l1_latency", std::uint64_t{c.cache.l1_latency});
  put(os, "cache.l2_size_bytes", c.cache.l2_size_bytes);
  put(os, "cache.l2_assoc", std::uint64_t{c.cache.l2_assoc});
  put(os, "cache.l2_latency", std::uint64_t{c.cache.l2_latency});
  put(os, "cache.memory_latency", std::uint64_t{c.cache.memory_latency});
  put(os, "cache.num_memory_controllers",
      std::uint64_t{c.cache.num_memory_controllers});
  put(os, "cache.l2_banks", std::uint64_t{c.cache.l2_banks});
  os << " dir.sharer_rep=" << to_string(c.dir.sharer_rep);
  put(os, "dir.coarse_region", std::uint64_t{c.dir.coarse_region});
  put(os, "dir.limited_pointers", std::uint64_t{c.dir.limited_pointers});
  put(os, "dir.shards", std::uint64_t{c.dir.shards});
  put(os, "htm.fixed_backoff", std::uint64_t{c.htm.fixed_backoff});
  put(os, "htm.backoff_slot", std::uint64_t{c.htm.backoff_slot});
  put(os, "htm.backoff_max_slots", std::uint64_t{c.htm.backoff_max_slots});
  put(os, "htm.abort_recovery_latency",
      std::uint64_t{c.htm.abort_recovery_latency});
  put(os, "htm.rmw_entries", std::uint64_t{c.htm.rmw_entries});
  put(os, "htm.requester_wins_max_retries",
      std::uint64_t{c.htm.requester_wins_max_retries});
  put(os, "htm.limited_read_entries",
      std::uint64_t{c.htm.limited_read_entries});
  put(os, "htm.limited_write_entries",
      std::uint64_t{c.htm.limited_write_entries});
  put(os, "puno.pbuffer_entries", std::uint64_t{c.puno.pbuffer_entries});
  put(os, "puno.txlb_entries", std::uint64_t{c.puno.txlb_entries});
  put(os, "puno.min_timeout", std::uint64_t{c.puno.min_timeout});
  put(os, "puno.max_timeout", std::uint64_t{c.puno.max_timeout});
  put(os, "puno.validity_threshold",
      std::uint64_t{c.puno.validity_threshold});
  put(os, "puno.enable_unicast", c.puno.enable_unicast);
  put(os, "puno.enable_notification", c.puno.enable_notification);
  put(os, "puno.max_notified_backoff", c.puno.max_notified_backoff);
  put(os, "puno.timeout_fraction", c.puno.timeout_fraction);
  put(os, "puno.enable_commit_hint", c.puno.enable_commit_hint);
  put(os, "puno.commit_hint_entries",
      std::uint64_t{c.puno.commit_hint_entries});
  put(os, "puno.unicast_min_sharers",
      std::uint64_t{c.puno.unicast_min_sharers});
  put(os, "traffic.arrivals_per_node",
      std::uint64_t{c.traffic.arrivals_per_node});
  put(os, "traffic.keys", c.traffic.keys);
  put(os, "traffic.zipf_theta", c.traffic.zipf_theta);
  put(os, "traffic.hot_keys", std::uint64_t{c.traffic.hot_keys});
  put(os, "traffic.hot_frac", c.traffic.hot_frac);
  put(os, "traffic.phase_cycles", c.traffic.phase_cycles);
  os << " traffic.arrival=" << to_string(c.traffic.arrival);
  put(os, "traffic.rate_per_kcycle",
      std::uint64_t{c.traffic.rate_per_kcycle});
  put(os, "traffic.burst_on_frac", c.traffic.burst_on_frac);
  put(os, "traffic.burst_boost", c.traffic.burst_boost);
  put(os, "traffic.burst_period", c.traffic.burst_period);
  put(os, "traffic.diurnal_amplitude", c.traffic.diurnal_amplitude);
  put(os, "traffic.diurnal_period", c.traffic.diurnal_period);
  put(os, "traffic.queue_capacity", std::uint64_t{c.traffic.queue_capacity});
  os << " traffic.placement=" << to_string(c.traffic.placement);
  put(os, "traffic.keys_per_block", std::uint64_t{c.traffic.keys_per_block});
  put(os, "traffic.update_frac", c.traffic.update_frac);
  put(os, "traffic.counter_blocks",
      std::uint64_t{c.traffic.counter_blocks});
  put(os, "traffic.op_think_min", std::uint64_t{c.traffic.op_think_min});
  put(os, "traffic.op_think_max", std::uint64_t{c.traffic.op_think_max});
  return os.str();
}

std::string cache_key(const metrics::ExperimentParams& params) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "v%d-%016llx", kCacheSchemaVersion,
                static_cast<unsigned long long>(fnv1a64(params_repr(params))));
  return buf;
}

fs::path ResultCache::default_dir() {
  if (const char* dir = std::getenv("PUNO_CACHE_DIR"); dir && dir[0] != '\0') {
    return dir;
  }
  return ".puno-cache";
}

fs::path ResultCache::entry_path(const metrics::ExperimentParams& p) const {
  return dir_ / (cache_key(p) + ".json");
}

std::optional<metrics::RunResult> ResultCache::load(
    const metrics::ExperimentParams& params) const {
  std::ifstream in(entry_path(params));
  if (!in) return std::nullopt;
  std::string header, body;
  if (!std::getline(in, header) || !std::getline(in, body)) {
    return std::nullopt;
  }
  // The header must carry this exact schema/params rendering; anything else
  // is a stale schema, a hash collision or a torn legacy entry.
  std::ostringstream expected;
  expected << "{\"puno_cache\":" << kCacheSchemaVersion << ",\"key\":\""
           << cache_key(params) << "\",\"params\":\""
           << metrics::json_escape(params_repr(params)) << "\"}";
  if (header != expected.str()) return std::nullopt;
  metrics::RunResult r;
  if (!metrics::read_result_jsonl(body, r)) return std::nullopt;
  return r;
}

bool ResultCache::store(const metrics::ExperimentParams& params,
                        const metrics::RunResult& result) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  // Unique temp name per writer (pid + thread) so concurrent stores of the
  // same key never interleave; rename() makes publication atomic on POSIX
  // filesystems.
  std::ostringstream tmp_name;
  tmp_name << cache_key(params) << ".tmp." << PUNO_GETPID() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const fs::path tmp = dir_ / tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "{\"puno_cache\":" << kCacheSchemaVersion << ",\"key\":\""
        << cache_key(params) << "\",\"params\":\""
        << metrics::json_escape(params_repr(params)) << "\"}\n";
    metrics::write_result_jsonl(result, out);
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, entry_path(params), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace puno::runner
