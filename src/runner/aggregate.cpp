#include "runner/aggregate.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#ifdef _WIN32
#include <process.h>
#define PUNO_GETPID _getpid
#else
#include <unistd.h>
#define PUNO_GETPID getpid
#endif

#include "metrics/stats_io.hpp"
#include "sim/jsonio.hpp"
#include "telemetry/export.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/html.hpp"

namespace puno::runner {

namespace fs = std::filesystem;
namespace jio = sim::jsonio;

namespace {

/// The token the parser choked on, for error messages: up to 24 characters
/// of what remains (whitespace-trimmed, never spanning a newline).
std::string offending_token(std::string_view s) {
  jio::skip_ws(s);
  if (s.empty()) return "<end of line>";
  std::size_t n = 0;
  while (n < s.size() && n < 24 && s[n] != '\n' && s[n] != '\r') ++n;
  return std::string(s.substr(0, n));
}

bool fail(std::string_view s, const std::string& what, std::string* err) {
  if (err != nullptr) *err = what + " near '" + offending_token(s) + "'";
  return false;
}

/// Drives one flat JSON object: `field(key, s)` parses the value for a key
/// (dispatching unknown keys to jio::skip_value for forward compat) and
/// returns false on a malformed value.
template <typename FieldFn>
bool parse_object(std::string_view line, FieldFn&& field, std::string* err) {
  std::string_view s = line;
  if (!jio::consume(s, '{')) return fail(s, "expected '{'", err);
  jio::skip_ws(s);
  std::string_view probe = s;
  if (!jio::consume(probe, '}')) {
    while (true) {
      std::string key;
      if (!jio::parse_string(s, key)) {
        return fail(s, "expected key string", err);
      }
      if (!jio::consume(s, ':')) return fail(s, "expected ':'", err);
      if (!field(key, s)) {
        return fail(s, "bad value for \"" + key + "\"", err);
      }
      jio::skip_ws(s);
      if (jio::consume(s, ',')) continue;
      if (jio::consume(s, '}')) break;
      return fail(s, "expected ',' or '}'", err);
    }
  } else {
    s = probe;
  }
  jio::skip_ws(s);
  if (!s.empty()) return fail(s, "trailing garbage", err);
  return true;
}

}  // namespace

bool parse_manifest_row(std::string_view line, ManifestRow& row,
                        std::string* err) {
  row = ManifestRow{};
  return parse_object(
      line,
      [&](const std::string& key, std::string_view& s) {
        if (key == "index") return jio::parse_u64(s, row.index);
        if (key == "label") return jio::parse_string(s, row.label);
        if (key == "workload") return jio::parse_string(s, row.workload);
        if (key == "scheme") return jio::parse_string(s, row.scheme);
        if (key == "seed") return jio::parse_u64(s, row.seed);
        if (key == "scale") return jio::parse_double(s, row.scale);
        if (key == "max_cycles") return jio::parse_u64(s, row.max_cycles);
        if (key == "num_nodes") return jio::parse_u64(s, row.num_nodes);
        if (key == "mesh_width") return jio::parse_u64(s, row.mesh_width);
        if (key == "mesh_height") return jio::parse_u64(s, row.mesh_height);
        if (key == "key") return jio::parse_string(s, row.key);
        if (key == "status") return jio::parse_string(s, row.status);
        if (key == "attempts") return jio::parse_u64(s, row.attempts);
        if (key == "wall_s") return jio::parse_double(s, row.wall_s);
        if (key == "cycles") return jio::parse_u64(s, row.cycles);
        if (key == "cycles_per_s") {
          return jio::parse_double(s, row.cycles_per_s);
        }
        if (key == "overrides") return jio::parse_string(s, row.overrides);
        if (key == "trace_path") return jio::parse_string(s, row.trace_path);
        if (key == "telemetry_path") {
          return jio::parse_string(s, row.telemetry_path);
        }
        if (key == "telemetry_samples") {
          return jio::parse_u64(s, row.telemetry_samples);
        }
        if (key == "telemetry_dropped") {
          return jio::parse_u64(s, row.telemetry_dropped);
        }
        if (key == "error") return jio::parse_string(s, row.error);
        return jio::skip_value(s);
      },
      err);
}

std::vector<ManifestRow> read_manifest_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw std::runtime_error("cannot read manifest '" + path.string() + "'");
  }
  std::vector<ManifestRow> rows;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ManifestRow row;
    std::string err;
    if (!parse_manifest_row(line, row, &err)) {
      throw std::runtime_error(path.string() + ": line " +
                               std::to_string(lineno) + ": " + err);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void sort_aggregate(std::vector<AggregateRow>& rows) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const AggregateRow& a, const AggregateRow& b) {
                     return std::tie(a.workload, a.scheme, a.num_nodes,
                                     a.scale, a.overrides, a.seed, a.key) <
                            std::tie(b.workload, b.scheme, b.num_nodes,
                                     b.scale, b.overrides, b.seed, b.key);
                   });
}

namespace {

/// Per-tile whole-run totals from one job's telemetry series: tile aborts
/// when the series carries the spatial channels, router traversals
/// otherwise. A missing or empty file yields no thumbnail (not an error —
/// artifacts move around); a malformed one throws.
void join_telemetry(const fs::path& manifest_dir, const ManifestRow& m,
                    AggregateRow& row) {
  if (m.telemetry_path.empty()) return;
  fs::path p = m.telemetry_path;
  if (!fs::exists(p)) p = manifest_dir / m.telemetry_path;
  if (!fs::exists(p)) return;
  std::ifstream in(p);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::vector<telemetry::TelemetrySample> samples;
  if (!telemetry::read_telemetry_jsonl(text, samples)) {
    throw std::runtime_error("malformed telemetry series '" + p.string() +
                             "'");
  }
  if (samples.empty()) return;
  const bool spatial = samples.front().spatial();
  const auto& probe = spatial ? samples.front().tile_aborts
                              : samples.front().router_traversals;
  if (probe.empty()) return;
  row.heat_channel = spatial ? "aborts" : "traversals";
  row.tile_heat.assign(probe.size(), 0);
  for (const telemetry::TelemetrySample& s : samples) {
    const auto& v = spatial ? s.tile_aborts : s.router_traversals;
    for (std::size_t i = 0; i < row.tile_heat.size() && i < v.size(); ++i) {
      row.tile_heat[i] += v[i];
    }
  }
}

}  // namespace

std::vector<AggregateRow> aggregate_manifest(const fs::path& manifest_path,
                                             const fs::path& results_path) {
  const std::vector<ManifestRow> manifest = read_manifest_file(manifest_path);

  std::vector<metrics::RunResult> results;
  if (!results_path.empty()) {
    std::ifstream in(results_path);
    if (!in.is_open()) {
      throw std::runtime_error("cannot read results '" +
                               results_path.string() + "'");
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      metrics::RunResult r;
      if (!metrics::read_result_jsonl(line, r)) {
        throw std::runtime_error(results_path.string() + ": line " +
                                 std::to_string(lineno) +
                                 ": malformed result row");
      }
      results.push_back(std::move(r));
    }
    if (results.size() != manifest.size()) {
      throw std::runtime_error(
          results_path.string() + ": " + std::to_string(results.size()) +
          " result rows for " + std::to_string(manifest.size()) +
          " manifest rows in '" + manifest_path.string() + "'");
    }
  }

  const fs::path dir = manifest_path.parent_path();
  std::vector<AggregateRow> rows;
  rows.reserve(manifest.size());
  for (const ManifestRow& m : manifest) {
    // Manifest rows are written in completion order; the recorded index is
    // the spec position, which is the result JSONL's row order.
    const std::size_t i = m.index;
    AggregateRow row;
    row.key = m.key;
    row.workload = m.workload;
    row.scheme = m.scheme;
    row.seed = m.seed;
    row.scale = m.scale;
    row.num_nodes = m.num_nodes;
    row.mesh_width = m.mesh_width;
    row.mesh_height = m.mesh_height;
    row.overrides = m.overrides;
    // A cache hit and a fresh simulation are the same experiment; keeping
    // the distinction would make the aggregate depend on cache warmth.
    row.status = m.status == "cached" ? "ok" : m.status;
    row.cycles = m.cycles;
    if (i < results.size()) {
      const metrics::RunResult& r = results[i];
      if (r.workload != m.workload ||
          std::string(to_string(r.scheme)) != m.scheme) {
        throw std::runtime_error(
            results_path.string() + ": row " + std::to_string(i + 1) +
            " is " + r.workload + "/" + to_string(r.scheme) +
            ", manifest row is " + m.workload + "/" + m.scheme);
      }
      row.has_result = true;
      row.commits = r.commits;
      row.aborts = r.aborts;
      row.false_abort_events = r.false_abort_events;
      row.router_traversals = r.router_traversals;
    }
    join_telemetry(dir, m, row);
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_aggregate_row(const AggregateRow& row, std::ostream& out) {
  char num[40];
  std::snprintf(num, sizeof num, "%.17g", row.scale);
  out << "{\"key\":\"" << metrics::json_escape(row.key) << "\",\"workload\":\""
      << metrics::json_escape(row.workload) << "\",\"scheme\":\""
      << metrics::json_escape(row.scheme) << "\",\"seed\":" << row.seed
      << ",\"scale\":" << num << ",\"num_nodes\":" << row.num_nodes
      << ",\"mesh_width\":" << row.mesh_width
      << ",\"mesh_height\":" << row.mesh_height;
  if (!row.overrides.empty()) {
    out << ",\"overrides\":\"" << metrics::json_escape(row.overrides) << "\"";
  }
  out << ",\"status\":\"" << metrics::json_escape(row.status)
      << "\",\"cycles\":" << row.cycles;
  if (row.has_result) {
    out << ",\"commits\":" << row.commits << ",\"aborts\":" << row.aborts
        << ",\"false_abort_events\":" << row.false_abort_events
        << ",\"router_traversals\":" << row.router_traversals;
  }
  if (!row.tile_heat.empty()) {
    out << ",\"heat_channel\":\"" << metrics::json_escape(row.heat_channel)
        << "\",\"tile_heat\":[";
    for (std::size_t i = 0; i < row.tile_heat.size(); ++i) {
      if (i != 0) out << ',';
      out << row.tile_heat[i];
    }
    out << ']';
  }
  out << "}\n";
}

bool parse_aggregate_row(std::string_view line, AggregateRow& row,
                         std::string* err) {
  row = AggregateRow{};
  return parse_object(
      line,
      [&](const std::string& key, std::string_view& s) {
        if (key == "key") return jio::parse_string(s, row.key);
        if (key == "workload") return jio::parse_string(s, row.workload);
        if (key == "scheme") return jio::parse_string(s, row.scheme);
        if (key == "seed") return jio::parse_u64(s, row.seed);
        if (key == "scale") return jio::parse_double(s, row.scale);
        if (key == "num_nodes") return jio::parse_u64(s, row.num_nodes);
        if (key == "mesh_width") return jio::parse_u64(s, row.mesh_width);
        if (key == "mesh_height") return jio::parse_u64(s, row.mesh_height);
        if (key == "overrides") return jio::parse_string(s, row.overrides);
        if (key == "status") return jio::parse_string(s, row.status);
        if (key == "cycles") return jio::parse_u64(s, row.cycles);
        if (key == "commits") {
          row.has_result = true;
          return jio::parse_u64(s, row.commits);
        }
        if (key == "aborts") {
          row.has_result = true;
          return jio::parse_u64(s, row.aborts);
        }
        if (key == "false_abort_events") {
          row.has_result = true;
          return jio::parse_u64(s, row.false_abort_events);
        }
        if (key == "router_traversals") {
          row.has_result = true;
          return jio::parse_u64(s, row.router_traversals);
        }
        if (key == "heat_channel") {
          return jio::parse_string(s, row.heat_channel);
        }
        if (key == "tile_heat") return jio::parse_u64_array(s, row.tile_heat);
        return jio::skip_value(s);
      },
      err);
}

bool publish_aggregate(const fs::path& path,
                       const std::vector<AggregateRow>& rows,
                       std::string* err) {
  // Keyed merge: whatever is already published survives unless this batch
  // carries a fresher row for the same cache key.
  std::map<std::string, AggregateRow> merged;
  if (fs::exists(path)) {
    std::ifstream in(path);
    if (!in.is_open()) {
      if (err != nullptr) *err = "cannot read '" + path.string() + "'";
      return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      AggregateRow row;
      std::string perr;
      if (!parse_aggregate_row(line, row, &perr)) {
        if (err != nullptr) {
          *err = path.string() + ": line " + std::to_string(lineno) + ": " +
                 perr;
        }
        return false;
      }
      merged[row.key] = std::move(row);
    }
  }
  for (const AggregateRow& row : rows) merged[row.key] = row;

  std::vector<AggregateRow> all;
  all.reserve(merged.size());
  for (auto& [k, row] : merged) all.push_back(std::move(row));
  sort_aggregate(all);

  // Same atomic-publication idiom as the result cache: a writer-unique temp
  // file next to the target, then rename. Readers never see a torn file.
  std::ostringstream tmp_name;
  tmp_name << path.filename().string() << ".tmp." << PUNO_GETPID() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const fs::path tmp =
      (path.has_parent_path() ? path.parent_path() : fs::path(".")) /
      tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      if (err != nullptr) *err = "cannot write '" + tmp.string() + "'";
      return false;
    }
    for (const AggregateRow& row : all) write_aggregate_row(row, out);
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      if (err != nullptr) *err = "short write to '" + tmp.string() + "'";
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    if (err != nullptr) {
      *err = "cannot publish '" + path.string() + "': " + ec.message();
    }
    return false;
  }
  return true;
}

namespace {

/// Thumbnail cell size: the longer mesh dimension fits ~120px, floor 2px.
int thumb_cell_px(const telemetry::MeshGeometry& g) {
  const std::size_t longest =
      std::max<std::size_t>(1, std::max(g.width, g.height));
  return std::clamp(120 / static_cast<int>(longest), 2, 8);
}

/// Config identity within one workload table: everything but the scheme.
using ConfigKey =
    std::tuple<std::uint64_t, double, std::string, std::uint64_t>;

ConfigKey config_key(const AggregateRow& r) {
  return {r.num_nodes, r.scale, r.overrides, r.seed};
}

std::string config_label(const AggregateRow& r) {
  std::string label = std::to_string(r.num_nodes) + " tiles (" +
                      std::to_string(r.mesh_width) + "x" +
                      std::to_string(r.mesh_height) + ")";
  label += ", scale " + telemetry::html::fmt(r.scale);
  label += ", seed " + std::to_string(r.seed);
  if (!r.overrides.empty()) label += ", " + r.overrides;
  return label;
}

}  // namespace

void write_fleet_dashboard(const std::vector<AggregateRow>& rows,
                           std::ostream& out) {
  namespace html = telemetry::html;

  // Column order: schemes as first encountered in (sorted) row order.
  std::vector<std::string> schemes;
  std::set<std::string> workloads;
  for (const AggregateRow& r : rows) {
    if (std::find(schemes.begin(), schemes.end(), r.scheme) ==
        schemes.end()) {
      schemes.push_back(r.scheme);
    }
    workloads.insert(r.workload);
  }

  std::string style;
  style += ".hm{display:block;margin-top:4px}\n";
  style += "td{vertical-align:top}\n";
  style += ".bad{color:#d0342c;font-weight:600}\n";
  style += ".n{color:#666;font-size:.85em}\n";
  html::begin_page(out, "PUNO fleet dashboard", "PUNO fleet dashboard",
                   style);
  out << "<p class=\"meta\">" << rows.size() << " configurations &middot; "
      << workloads.size() << " workloads &middot; " << schemes.size()
      << " schemes";
  out << "</p>\n";

  for (const std::string& workload : workloads) {
    // config -> scheme -> row, in sorted-row order.
    std::map<ConfigKey, std::map<std::string, const AggregateRow*>> grid;
    for (const AggregateRow& r : rows) {
      if (r.workload == workload) grid[config_key(r)][r.scheme] = &r;
    }
    out << "<h2>" << html::escape(workload) << "</h2>\n<table><tr><th>config"
        << "</th>";
    for (const std::string& s : schemes) {
      out << "<th>" << html::escape(s) << "</th>";
    }
    out << "</tr>";
    for (const auto& [cfg, by_scheme] : grid) {
      const AggregateRow* any = by_scheme.begin()->second;
      out << "<tr><td>" << html::escape(config_label(*any)) << "</td>";
      for (const std::string& s : schemes) {
        const auto it = by_scheme.find(s);
        if (it == by_scheme.end()) {
          out << "<td class=\"n\">&mdash;</td>";
          continue;
        }
        const AggregateRow& r = *it->second;
        out << "<td>";
        if (r.status != "ok") {
          out << "<span class=\"bad\">" << html::escape(r.status)
              << "</span><br>";
        }
        out << r.cycles << " <span class=\"n\">cycles</span>";
        if (r.has_result) {
          out << "<br>" << r.commits << " <span class=\"n\">commits</span>, "
              << r.aborts << " <span class=\"n\">aborts</span><br>"
              << r.false_abort_events
              << " <span class=\"n\">false-abort events</span>";
        }
        const telemetry::MeshGeometry geom{
            r.num_nodes, r.mesh_width, r.mesh_height};
        if (!r.tile_heat.empty() && geom.valid()) {
          std::uint64_t maxv = 0;
          for (const std::uint64_t v : r.tile_heat) {
            maxv = std::max(maxv, v);
          }
          telemetry::write_heatmap_svg(out, geom, r.tile_heat, maxv, "",
                                       thumb_cell_px(geom));
          out << "<br><span class=\"n\">" << html::escape(r.heat_channel)
              << " heatmap, concentration "
              << html::fmt(telemetry::concentration_index(r.tile_heat))
              << "</span>";
        }
        out << "</td>";
      }
      out << "</tr>";
    }
    out << "</table>\n";
  }
  html::end_page(out);
}

bool read_bench_snapshot(const fs::path& path, BenchSnapshot& snap,
                         std::string* err) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (err != nullptr) *err = "cannot read '" + path.string() + "'";
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  snap = BenchSnapshot{};
  snap.path = path.string();

  const auto parse_run = [&](std::string_view& s) {
    BenchSnapshot::Row row;
    const bool ok = parse_object(
        // parse_object expects a whole line; give it the remaining text and
        // let it stop at the object end by carving the value out below.
        s,
        [&](const std::string& key, std::string_view& v) {
          if (key == "workload") return jio::parse_string(v, row.workload);
          if (key == "scheme") return jio::parse_string(v, row.scheme);
          if (key == "cycles") return jio::parse_u64(v, row.cycles);
          if (key == "wall_s") return jio::parse_double(v, row.wall_s);
          if (key == "cycles_per_s") {
            return jio::parse_double(v, row.cycles_per_s);
          }
          return jio::skip_value(v);
        },
        nullptr);
    if (ok) snap.rows.push_back(std::move(row));
    return ok;
  };

  // The snapshot is one nested object (runs hold component arrays), so this
  // is a hand-rolled walk rather than the flat parse_object driver.
  std::string_view s = text;
  bool ok = jio::consume(s, '{');
  while (ok) {
    jio::skip_ws(s);
    std::string key;
    if (!jio::parse_string(s, key) || !jio::consume(s, ':')) {
      ok = false;
      break;
    }
    if (key == "schema") {
      std::string schema;
      ok = jio::parse_string(s, schema);
    } else if (key == "git_sha") {
      ok = jio::parse_string(s, snap.git_sha);
    } else if (key == "generated_at") {
      ok = jio::parse_string(s, snap.generated_at);
    } else if (key == "config_schema") {
      ok = jio::parse_u64(s, snap.config_schema);
    } else if (key == "runs") {
      ok = jio::consume(s, '[');
      jio::skip_ws(s);
      if (ok && !s.empty() && s.front() == ']') {
        s.remove_prefix(1);
      } else {
        while (ok) {
          // Carve one {...} object out of the stream so the flat driver can
          // insist on consuming it fully.
          jio::skip_ws(s);
          std::size_t depth = 0, end = 0;
          bool in_str = false;
          for (; end < s.size(); ++end) {
            const char c = s[end];
            if (in_str) {
              if (c == '\\') ++end;
              else if (c == '"') in_str = false;
            } else if (c == '"') {
              in_str = true;
            } else if (c == '{') {
              ++depth;
            } else if (c == '}') {
              if (--depth == 0) { ++end; break; }
            }
          }
          std::string_view obj = s.substr(0, end);
          ok = depth == 0 && end > 0 && parse_run(obj);
          if (!ok) break;
          s.remove_prefix(end);
          jio::skip_ws(s);
          if (jio::consume(s, ',')) continue;
          ok = jio::consume(s, ']');
          break;
        }
      }
    } else {
      ok = jio::skip_value(s);
    }
    if (!ok) break;
    jio::skip_ws(s);
    if (jio::consume(s, ',')) continue;
    ok = jio::consume(s, '}');
    break;
  }
  if (!ok) {
    if (err != nullptr) {
      *err = path.string() + ": malformed snapshot near '" +
             offending_token(s) + "'";
    }
    return false;
  }
  return true;
}

std::size_t write_trajectory_report(std::vector<BenchSnapshot> snaps,
                                    double max_regression,
                                    std::ostream& out) {
  // Stamped snapshots sort by generation time (ISO-8601 sorts lexically);
  // unstamped ones keep their given position.
  std::stable_sort(snaps.begin(), snaps.end(),
                   [](const BenchSnapshot& a, const BenchSnapshot& b) {
                     return !a.generated_at.empty() &&
                            !b.generated_at.empty() &&
                            a.generated_at < b.generated_at;
                   });

  char num[40];
  std::snprintf(num, sizeof num, "%.3g", max_regression);
  out << "perf trajectory: " << snaps.size() << " snapshots (threshold "
      << num << "x)\n";
  const auto aggregate_cps = [](const BenchSnapshot& s) {
    double cycles = 0, wall = 0;
    for (const auto& r : s.rows) {
      cycles += static_cast<double>(r.cycles);
      wall += r.wall_s;
    }
    return wall > 0 ? cycles / wall : 0.0;
  };
  for (const BenchSnapshot& s : snaps) {
    out << "  " << s.path;
    if (!s.generated_at.empty()) out << "  " << s.generated_at;
    if (!s.git_sha.empty()) out << "  @" << s.git_sha.substr(0, 12);
    std::snprintf(num, sizeof num, "%.4g", aggregate_cps(s));
    out << "  " << s.rows.size() << " rows, aggregate " << num
        << " cycles/s\n";
  }
  if (snaps.size() < 2) {
    out << "  (need at least 2 snapshots to diff)\n";
    return 0;
  }

  std::size_t last_step_flagged = 0;
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    const BenchSnapshot& prev = snaps[i - 1];
    const BenchSnapshot& cur = snaps[i];
    std::map<std::string, const BenchSnapshot::Row*> prev_rows;
    for (const auto& r : prev.rows) {
      prev_rows[r.workload + "/" + r.scheme] = &r;
    }
    double worst = 0.0;
    std::string worst_name;
    std::size_t compared = 0, flagged = 0;
    std::ostringstream flags;
    for (const auto& r : cur.rows) {
      const auto it = prev_rows.find(r.workload + "/" + r.scheme);
      if (it == prev_rows.end() || it->second->cycles_per_s <= 0.0) continue;
      const double ratio = r.cycles_per_s / it->second->cycles_per_s;
      ++compared;
      if (worst_name.empty() || ratio < worst) {
        worst = ratio;
        worst_name = r.workload + "/" + r.scheme;
      }
      if (ratio < max_regression) {
        ++flagged;
        char rnum[40], pnum[40], cnum[40];
        std::snprintf(rnum, sizeof rnum, "%.3g", ratio);
        std::snprintf(pnum, sizeof pnum, "%.4g", it->second->cycles_per_s);
        std::snprintf(cnum, sizeof cnum, "%.4g", r.cycles_per_s);
        flags << "    REGRESSION " << r.workload << "/" << r.scheme << " "
              << rnum << "x (" << pnum << " -> " << cnum << " cycles/s)\n";
      }
    }
    const double agg_prev = aggregate_cps(prev);
    const double agg_ratio =
        agg_prev > 0 ? aggregate_cps(cur) / agg_prev : 0.0;
    char anum[40], wnum[40];
    std::snprintf(anum, sizeof anum, "%.3g", agg_ratio);
    std::snprintf(wnum, sizeof wnum, "%.3g", worst);
    out << "  step " << prev.path << " -> " << cur.path << ": aggregate "
        << anum << "x over " << compared << " rows";
    if (!worst_name.empty()) {
      out << ", worst " << worst_name << " " << wnum << "x";
    }
    out << (flagged > 0 ? "  ** FLAGGED **" : "") << "\n" << flags.str();
    if (i + 1 == snaps.size()) last_step_flagged = flagged;
  }
  return last_step_flagged;
}

}  // namespace puno::runner
