#include "runner/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <stdexcept>

#include "traffic/registry.hpp"
#include "workloads/stamp.hpp"

namespace puno::runner {

namespace {

[[nodiscard]] bool parse_u32(std::string_view v, std::uint32_t& out) {
  const std::string s(v);
  char* end = nullptr;
  const unsigned long long n = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || n > 0xFFFFFFFFull) return false;
  out = static_cast<std::uint32_t>(n);
  return true;
}

[[nodiscard]] bool parse_u64(std::string_view v, std::uint64_t& out) {
  const std::string s(v);
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

[[nodiscard]] bool parse_f64(std::string_view v, double& out) {
  const std::string s(v);
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

[[nodiscard]] bool parse_bool(std::string_view v, bool& out) {
  if (v == "1" || v == "true" || v == "on") {
    out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off") {
    out = false;
    return true;
  }
  return false;
}

using Setter = std::function<bool(SystemConfig&, std::string_view)>;

template <typename Sub>
[[nodiscard]] Setter set_u32(Sub SystemConfig::*sub,
                             std::uint32_t Sub::*field) {
  return [sub, field](SystemConfig& c, std::string_view v) {
    return parse_u32(v, c.*sub.*field);
  };
}

template <typename Sub>
[[nodiscard]] Setter set_u64(Sub SystemConfig::*sub,
                             std::uint64_t Sub::*field) {
  return [sub, field](SystemConfig& c, std::string_view v) {
    return parse_u64(v, c.*sub.*field);
  };
}

template <typename Sub>
[[nodiscard]] Setter set_f64(Sub SystemConfig::*sub, double Sub::*field) {
  return [sub, field](SystemConfig& c, std::string_view v) {
    return parse_f64(v, c.*sub.*field);
  };
}

template <typename Sub>
[[nodiscard]] Setter set_bool(Sub SystemConfig::*sub, bool Sub::*field) {
  return [sub, field](SystemConfig& c, std::string_view v) {
    return parse_bool(v, c.*sub.*field);
  };
}

/// num_nodes and the mesh dimensions must stay coupled
/// (num_nodes == mesh_width * rows()). Setting either dimension recomputes
/// num_nodes; setting num_nodes re-derives the dimensions.
[[nodiscard]] bool set_mesh_width(SystemConfig& c, std::string_view v) {
  std::uint32_t w = 0;
  if (!parse_u32(v, w) || w == 0) return false;
  c.noc.mesh_width = w;
  c.num_nodes = w * c.noc.rows();
  return true;
}

[[nodiscard]] bool set_mesh_height(SystemConfig& c, std::string_view v) {
  std::uint32_t h = 0;
  if (!parse_u32(v, h)) return false;  // 0 = square (height == width)
  c.noc.mesh_height = h;
  c.num_nodes = c.noc.mesh_width * c.noc.rows();
  return true;
}

[[nodiscard]] bool set_num_nodes(SystemConfig& c, std::string_view v) {
  std::uint32_t n = 0;
  if (!parse_u32(v, n) || n == 0) return false;
  const auto r = static_cast<std::uint32_t>(
      std::lround(std::sqrt(static_cast<double>(n))));
  if (r * r == n) {
    // Perfect square: keep the mesh square.
    c.num_nodes = n;
    c.noc.mesh_width = r;
    c.noc.mesh_height = 0;
    return true;
  }
  // Otherwise pick the most square w x h factorisation (w >= h).
  for (std::uint32_t h = r; h >= 1; --h) {
    if (n % h == 0) {
      c.num_nodes = n;
      c.noc.mesh_width = n / h;
      c.noc.mesh_height = h;
      return true;
    }
  }
  return false;
}

[[nodiscard]] const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> m = {
      {"num_nodes", set_num_nodes},
      {"noc.mesh_width", set_mesh_width},
      {"noc.mesh_height", set_mesh_height},
      {"noc.vcs_per_vnet", set_u32(&SystemConfig::noc, &NocConfig::vcs_per_vnet)},
      {"noc.vc_depth", set_u32(&SystemConfig::noc, &NocConfig::vc_depth)},
      {"noc.pipeline_stages",
       set_u32(&SystemConfig::noc, &NocConfig::pipeline_stages)},
      {"noc.link_latency",
       set_u32(&SystemConfig::noc, &NocConfig::link_latency)},
      {"noc.flit_bytes", set_u32(&SystemConfig::noc, &NocConfig::flit_bytes)},
      {"noc.always_tick", set_bool(&SystemConfig::noc, &NocConfig::always_tick)},
      {"cache.l1_size_bytes",
       set_u32(&SystemConfig::cache, &CacheConfig::l1_size_bytes)},
      {"cache.l1_assoc", set_u32(&SystemConfig::cache, &CacheConfig::l1_assoc)},
      {"cache.l1_latency",
       set_u32(&SystemConfig::cache, &CacheConfig::l1_latency)},
      {"cache.l2_size_bytes",
       set_u64(&SystemConfig::cache, &CacheConfig::l2_size_bytes)},
      {"cache.l2_assoc", set_u32(&SystemConfig::cache, &CacheConfig::l2_assoc)},
      {"cache.l2_latency",
       set_u32(&SystemConfig::cache, &CacheConfig::l2_latency)},
      {"cache.memory_latency",
       set_u32(&SystemConfig::cache, &CacheConfig::memory_latency)},
      {"cache.l2_banks",
       set_u32(&SystemConfig::cache, &CacheConfig::l2_banks)},
      {"dir.sharer_rep",
       [](SystemConfig& c, std::string_view v) {
         const auto r = sharer_rep_from_string(v);
         if (!r) return false;
         c.dir.sharer_rep = *r;
         return true;
       }},
      {"dir.coarse_region",
       set_u32(&SystemConfig::dir, &DirectoryConfig::coarse_region)},
      {"dir.limited_pointers",
       set_u32(&SystemConfig::dir, &DirectoryConfig::limited_pointers)},
      {"dir.shards", set_u32(&SystemConfig::dir, &DirectoryConfig::shards)},
      {"htm.fixed_backoff",
       set_u32(&SystemConfig::htm, &HtmConfig::fixed_backoff)},
      {"htm.backoff_slot",
       set_u32(&SystemConfig::htm, &HtmConfig::backoff_slot)},
      {"htm.backoff_max_slots",
       set_u32(&SystemConfig::htm, &HtmConfig::backoff_max_slots)},
      {"htm.abort_recovery_latency",
       set_u32(&SystemConfig::htm, &HtmConfig::abort_recovery_latency)},
      {"htm.rmw_entries", set_u32(&SystemConfig::htm, &HtmConfig::rmw_entries)},
      {"htm.requester_wins_max_retries",
       set_u32(&SystemConfig::htm, &HtmConfig::requester_wins_max_retries)},
      {"htm.limited_read_entries",
       set_u32(&SystemConfig::htm, &HtmConfig::limited_read_entries)},
      {"htm.limited_write_entries",
       set_u32(&SystemConfig::htm, &HtmConfig::limited_write_entries)},
      {"puno.pbuffer_entries",
       set_u32(&SystemConfig::puno, &PunoConfig::pbuffer_entries)},
      {"puno.txlb_entries",
       set_u32(&SystemConfig::puno, &PunoConfig::txlb_entries)},
      {"puno.min_timeout",
       set_u32(&SystemConfig::puno, &PunoConfig::min_timeout)},
      {"puno.max_timeout",
       set_u32(&SystemConfig::puno, &PunoConfig::max_timeout)},
      {"puno.validity_threshold",
       [](SystemConfig& c, std::string_view v) {
         std::uint32_t n = 0;
         if (!parse_u32(v, n) || n > 0xFF) return false;
         c.puno.validity_threshold = static_cast<std::uint8_t>(n);
         return true;
       }},
      {"puno.enable_unicast",
       set_bool(&SystemConfig::puno, &PunoConfig::enable_unicast)},
      {"puno.enable_notification",
       set_bool(&SystemConfig::puno, &PunoConfig::enable_notification)},
      {"puno.max_notified_backoff",
       set_u64(&SystemConfig::puno, &PunoConfig::max_notified_backoff)},
      {"puno.timeout_fraction",
       set_f64(&SystemConfig::puno, &PunoConfig::timeout_fraction)},
      {"puno.enable_commit_hint",
       set_bool(&SystemConfig::puno, &PunoConfig::enable_commit_hint)},
      {"puno.commit_hint_entries",
       set_u32(&SystemConfig::puno, &PunoConfig::commit_hint_entries)},
      {"puno.unicast_min_sharers",
       set_u32(&SystemConfig::puno, &PunoConfig::unicast_min_sharers)},
      {"traffic.arrivals_per_node",
       set_u32(&SystemConfig::traffic, &TrafficConfig::arrivals_per_node)},
      {"traffic.keys", set_u64(&SystemConfig::traffic, &TrafficConfig::keys)},
      {"traffic.zipf_theta",
       set_f64(&SystemConfig::traffic, &TrafficConfig::zipf_theta)},
      {"traffic.hot_keys",
       set_u32(&SystemConfig::traffic, &TrafficConfig::hot_keys)},
      {"traffic.hot_frac",
       set_f64(&SystemConfig::traffic, &TrafficConfig::hot_frac)},
      {"traffic.phase_cycles",
       set_u64(&SystemConfig::traffic, &TrafficConfig::phase_cycles)},
      {"traffic.arrival",
       [](SystemConfig& c, std::string_view v) {
         const auto k = arrival_kind_from_string(v);
         if (!k) return false;
         c.traffic.arrival = *k;
         return true;
       }},
      {"traffic.rate_per_kcycle",
       set_u32(&SystemConfig::traffic, &TrafficConfig::rate_per_kcycle)},
      {"traffic.burst_on_frac",
       set_f64(&SystemConfig::traffic, &TrafficConfig::burst_on_frac)},
      {"traffic.burst_boost",
       set_f64(&SystemConfig::traffic, &TrafficConfig::burst_boost)},
      {"traffic.burst_period",
       set_u64(&SystemConfig::traffic, &TrafficConfig::burst_period)},
      {"traffic.diurnal_amplitude",
       set_f64(&SystemConfig::traffic, &TrafficConfig::diurnal_amplitude)},
      {"traffic.diurnal_period",
       set_u64(&SystemConfig::traffic, &TrafficConfig::diurnal_period)},
      {"traffic.queue_capacity",
       set_u32(&SystemConfig::traffic, &TrafficConfig::queue_capacity)},
      {"traffic.placement",
       [](SystemConfig& c, std::string_view v) {
         const auto m2 = placement_mode_from_string(v);
         if (!m2) return false;
         c.traffic.placement = *m2;
         return true;
       }},
      {"traffic.keys_per_block",
       set_u32(&SystemConfig::traffic, &TrafficConfig::keys_per_block)},
      {"traffic.update_frac",
       set_f64(&SystemConfig::traffic, &TrafficConfig::update_frac)},
      {"traffic.counter_blocks",
       set_u32(&SystemConfig::traffic, &TrafficConfig::counter_blocks)},
      {"traffic.op_think_min",
       set_u32(&SystemConfig::traffic, &TrafficConfig::op_think_min)},
      {"traffic.op_think_max",
       set_u32(&SystemConfig::traffic, &TrafficConfig::op_think_max)},
  };
  return m;
}

}  // namespace

bool apply_override(SystemConfig& cfg, std::string_view key,
                    std::string_view value) {
  const auto it = setters().find(std::string(key));
  return it != setters().end() && it->second(cfg, value);
}

const std::vector<std::string>& override_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> k;
    for (const auto& [name, _] : setters()) k.push_back(name);
    return k;
  }();
  return keys;
}

std::vector<std::string> split_list(std::string_view csv) {
  std::vector<std::string> out;
  while (!csv.empty()) {
    const std::size_t comma = csv.find(',');
    const std::string_view piece = csv.substr(0, comma);
    if (!piece.empty()) out.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    csv.remove_prefix(comma + 1);
  }
  return out;
}

std::vector<std::uint64_t> parse_seed_list(std::string_view spec) {
  std::vector<std::uint64_t> seeds;
  if (const std::size_t dots = spec.find(".."); dots != std::string_view::npos) {
    std::uint64_t lo = 0, hi = 0;
    if (!parse_u64(spec.substr(0, dots), lo) ||
        !parse_u64(spec.substr(dots + 2), hi) || hi < lo) {
      throw std::invalid_argument("bad seed range '" + std::string(spec) +
                                  "' (expected e.g. 1..8)");
    }
    for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
    return seeds;
  }
  for (const std::string& piece : split_list(spec)) {
    std::uint64_t s = 0;
    if (!parse_u64(piece, s)) {
      throw std::invalid_argument("bad seed '" + piece + "'");
    }
    seeds.push_back(s);
  }
  if (seeds.empty()) {
    throw std::invalid_argument("empty seed list '" + std::string(spec) + "'");
  }
  return seeds;
}

std::vector<Scheme> parse_scheme_list(std::string_view spec) {
  if (spec == "all") {
    return {std::begin(kAllSchemes), std::end(kAllSchemes)};
  }
  std::vector<Scheme> schemes;
  for (const std::string& piece : split_list(spec)) {
    const auto s = scheme_from_string(piece);
    if (!s) throw std::invalid_argument("unknown scheme '" + piece + "'");
    schemes.push_back(*s);
  }
  if (schemes.empty()) {
    throw std::invalid_argument("empty scheme list '" + std::string(spec) +
                                "'");
  }
  return schemes;
}

std::vector<std::string> parse_workload_list(std::string_view spec) {
  // "all" keeps its historical meaning (the 8 closed-loop STAMP profiles);
  // "traffic" expands to the open-loop kernels; any registry name works
  // explicitly. The two groups compose: "all,traffic" runs everything.
  std::vector<std::string> names;
  const auto known = traffic::registry::names();
  for (const std::string& piece : split_list(spec)) {
    if (piece == "all") {
      const auto& stamp = workloads::stamp::benchmark_names();
      names.insert(names.end(), stamp.begin(), stamp.end());
    } else if (piece == "traffic") {
      for (const auto& e : traffic::registry::entries()) {
        if (e.open_loop) names.push_back(e.name);
      }
    } else if (std::find(known.begin(), known.end(), piece) != known.end()) {
      names.push_back(piece);
    } else {
      throw std::invalid_argument("unknown workload '" + piece +
                                  "' (see --list-workloads)");
    }
  }
  if (names.empty()) {
    throw std::invalid_argument("empty workload list '" + std::string(spec) +
                                "'");
  }
  return names;
}

std::vector<JobSpec> expand_grid(const GridSpec& grid) {
  for (const std::string& w : grid.workloads) {
    if (!traffic::registry::known(w)) {
      throw std::invalid_argument("unknown workload '" + w + "'");
    }
  }
  for (const OverrideAxis& axis : grid.overrides) {
    if (setters().find(axis.key) == setters().end()) {
      throw std::invalid_argument("unknown override key '" + axis.key +
                                  "' (see --list-keys)");
    }
  }

  // Expand the override axes' cross product once; each combo is a list of
  // (key, value) picks applied on top of the base config.
  struct Combo {
    SystemConfig config;
    std::string desc;   // "k=v k=v"
    std::string label;  // "/k=v/k=v"
  };
  std::vector<Combo> combos{{grid.base_config, "", ""}};
  for (const OverrideAxis& axis : grid.overrides) {
    std::vector<Combo> expanded;
    for (const Combo& base : combos) {
      for (const std::string& value : axis.values) {
        Combo c = base;
        if (!apply_override(c.config, axis.key, value)) {
          throw std::invalid_argument("bad value '" + value + "' for '" +
                                      axis.key + "'");
        }
        if (!c.desc.empty()) c.desc += ' ';
        c.desc += axis.key + "=" + value;
        c.label += "/" + axis.key + "=" + value;
        expanded.push_back(std::move(c));
      }
    }
    combos = std::move(expanded);
  }

  std::vector<JobSpec> specs;
  specs.reserve(grid.workloads.size() * grid.schemes.size() *
                grid.seeds.size() * combos.size());
  for (const std::string& w : grid.workloads) {
    for (const Scheme scheme : grid.schemes) {
      for (const std::uint64_t seed : grid.seeds) {
        for (const Combo& combo : combos) {
          JobSpec spec;
          spec.params.workload = w;
          spec.params.scheme = scheme;
          spec.params.seed = seed;
          spec.params.scale = grid.scale;
          spec.params.max_cycles = grid.max_cycles;
          spec.params.base_config = combo.config;
          spec.label = w + "/" + to_string(scheme) + "/s" +
                       std::to_string(seed) + combo.label;
          spec.overrides = combo.desc;
          specs.push_back(std::move(spec));
        }
      }
    }
  }
  return specs;
}

}  // namespace puno::runner
