// Experiment grid expansion for sweep drivers (punobatch, benches).
//
// A GridSpec is the cross product workloads x schemes x seeds x every
// config-override axis; expand_grid() flattens it into the runner's JobSpec
// list in a deterministic order (workload-major, overrides innermost), so a
// grid always shards and serializes identically.
//
// Config overrides address SystemConfig fields by dotted name
// ("puno.timeout_fraction", "cache.l2_latency", ...); override_keys() lists
// every supported key. "num_nodes"/"noc.mesh_width" are coupled: setting
// either keeps num_nodes == mesh_width^2, which the CMP asserts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runner/runner.hpp"
#include "sim/config.hpp"

namespace puno::runner {

/// One override axis: a key plus the values it sweeps over.
struct OverrideAxis {
  std::string key;
  std::vector<std::string> values;
};

struct GridSpec {
  std::vector<std::string> workloads;
  std::vector<Scheme> schemes;
  std::vector<std::uint64_t> seeds = {1};
  double scale = 1.0;
  Cycle max_cycles = 30'000'000;
  SystemConfig base_config{};
  std::vector<OverrideAxis> overrides;
};

/// Sets one dotted-name SystemConfig field from a string value. Returns
/// false for an unknown key or an unparseable value.
[[nodiscard]] bool apply_override(SystemConfig& cfg, std::string_view key,
                                  std::string_view value);

/// Every key apply_override understands, for --list-keys and diagnostics.
[[nodiscard]] const std::vector<std::string>& override_keys();

/// Flattens the grid. Throws std::invalid_argument on an unknown workload,
/// an unknown override key or a bad override value.
[[nodiscard]] std::vector<JobSpec> expand_grid(const GridSpec& grid);

/// Splits "a,b,c" (empty pieces dropped).
[[nodiscard]] std::vector<std::string> split_list(std::string_view csv);

/// Parses "1,2,9" or the range form "1..8" (inclusive).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<std::uint64_t> parse_seed_list(std::string_view spec);

/// Parses "all" or a csv of baseline|backoff|rmw|puno.
/// Throws std::invalid_argument on an unknown scheme name.
[[nodiscard]] std::vector<Scheme> parse_scheme_list(std::string_view spec);

/// Parses a csv of workload names from the registry. "all" expands to the 8
/// STAMP profiles (the historical meaning), "traffic" to the open-loop
/// traffic kernels; groups and names compose ("all,traffic" = everything).
/// Throws std::invalid_argument on an unknown benchmark name.
[[nodiscard]] std::vector<std::string> parse_workload_list(
    std::string_view spec);

}  // namespace puno::runner
