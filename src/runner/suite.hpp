// Suite-level sweeps on top of the parallel runner.
//
// run_suite/run_comparison used to live in puno_metrics and ran strictly
// serially; they are now thin grid builders over runner::run_jobs, so the
// whole 8-workload x 4-scheme cross product shards across cores while
// staying bit-identical to the old serial loops (each job owns its kernel,
// RNG and stats registry — see docs/RUNNER.md).
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/run_result.hpp"
#include "runner/runner.hpp"

namespace puno::runner {

struct SuiteOptions {
  unsigned jobs = 0;                  ///< 0 = $PUNO_JOBS / hardware threads.
  const ResultCache* cache = nullptr; ///< Optional result cache.
  bool progress = false;              ///< Live meter on stderr.
  double scale = 1.0;                 ///< Committed-txn quota multiplier.
};

/// Runs all 8 STAMP-like workloads under one scheme, in paper order. A job
/// that fails even after its retry yields a stub row (completed = false,
/// zero metrics) so the suite shape is always 8 rows.
[[nodiscard]] std::vector<metrics::RunResult> run_suite(
    Scheme scheme, std::uint64_t seed = 1, const SuiteOptions& options = {});

/// The full cross product: every workload under every scheme, in the
/// paper's order (Baseline, Backoff, RMW-Pred, PUNO), executed as one
/// sharded batch.
struct SuiteComparison {
  std::vector<metrics::RunResult> baseline;
  std::vector<metrics::RunResult> backoff;
  std::vector<metrics::RunResult> rmw;
  std::vector<metrics::RunResult> puno;
};
[[nodiscard]] SuiteComparison run_comparison(std::uint64_t seed = 1,
                                             const SuiteOptions& options = {});

}  // namespace puno::runner
