// Content-addressed on-disk result cache for experiment runs.
//
// The cache key is a 64-bit FNV-1a hash of a canonical text rendering of
// the *complete* experiment configuration — every field of ExperimentParams
// and of the embedded SystemConfig (NoC, cache hierarchy, HTM and PUNO
// knobs included). Any knob that can change simulated behaviour therefore
// changes the key; there is no hand-maintained "list of fields that
// matter" to fall out of date (the failure mode of the old
// .puno-bench-cache keys, which silently dropped max_cycles and most of
// SystemConfig).
//
// Layout: one file per entry, `<dir>/<key>.json`, holding a header line
// (schema version, key, the full canonical parameter rendering — used to
// reject hash collisions and stale schemas on load) followed by the
// result as one JSONL line (metrics/stats_io.hpp schema).
//
// Writes are atomic: the entry is written to a unique temp file in the same
// directory and rename()d into place, so concurrent benches sharing a cache
// directory can never observe a half-written entry. Loads of corrupt or
// mismatched entries simply report a miss.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "metrics/experiment.hpp"
#include "metrics/run_result.hpp"

namespace puno::runner {

/// Bump when simulator behaviour or the cache layout changes so every stale
/// entry self-expires. (Continues the old bench-cache numbering.)
inline constexpr int kCacheSchemaVersion = 7;

/// 64-bit FNV-1a.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// Canonical text rendering of every behaviour-relevant field of `params`
/// (including the full SystemConfig). Two params serialize identically iff
/// they describe the same simulation.
[[nodiscard]] std::string params_repr(const metrics::ExperimentParams& params);

/// The content-addressed cache key: "v<schema>-<fnv1a64(params_repr) hex>".
[[nodiscard]] std::string cache_key(const metrics::ExperimentParams& params);

class ResultCache {
 public:
  explicit ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {}

  /// Default location: $PUNO_CACHE_DIR if set, else ./.puno-cache.
  [[nodiscard]] static std::filesystem::path default_dir();

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

  /// Path the entry for `params` lives at (whether or not it exists).
  [[nodiscard]] std::filesystem::path entry_path(
      const metrics::ExperimentParams& params) const;

  /// Loads a cached result, or nullopt on miss/corruption/schema mismatch.
  [[nodiscard]] std::optional<metrics::RunResult> load(
      const metrics::ExperimentParams& params) const;

  /// Atomically stores a result (temp file + rename). Returns false on I/O
  /// failure; the cache never throws on I/O problems.
  bool store(const metrics::ExperimentParams& params,
             const metrics::RunResult& result) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace puno::runner
