#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "metrics/stats_io.hpp"

namespace puno::runner {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Internal: thrown by the built-in job body when the wall-clock watchdog
/// fires. Handled without a retry — a rerun would only time out again.
struct WatchdogExpired : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Simulated-cycle granularity of the watchdog poll: coarse enough to be
/// free, fine enough that an expired job dies within milliseconds.
constexpr Cycle kWatchdogCheckInterval = 1u << 16;

[[nodiscard]] metrics::RunResult simulate(const JobSpec& spec,
                                          double watchdog_seconds) {
  if (watchdog_seconds <= 0.0) return metrics::run_experiment(spec.params);
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(watchdog_seconds);
  bool expired = false;
  Cycle expired_at = 0;
  metrics::ExperimentWatch watch;
  watch.check_interval = kWatchdogCheckInterval;
  watch.stop = [&](Cycle now) {
    if (Clock::now() >= deadline) {
      expired = true;
      expired_at = now;
    }
    return expired;
  };
  metrics::RunResult r = metrics::run_experiment(spec.params, watch);
  if (expired) {
    char msg[128];
    std::snprintf(msg, sizeof msg,
                  "watchdog: exceeded %.3gs wall clock at cycle %llu",
                  watchdog_seconds,
                  static_cast<unsigned long long>(expired_at));
    throw WatchdogExpired(msg);
  }
  return r;
}

[[nodiscard]] std::string auto_label(const JobSpec& spec) {
  if (!spec.label.empty()) return spec.label;
  return spec.params.workload + "/" + to_string(spec.params.scheme) + "/s" +
         std::to_string(spec.params.seed);
}

void write_manifest_row(std::ostream& out, std::size_t index,
                        const JobSpec& spec, const JobOutcome& o) {
  const metrics::ExperimentParams& p = spec.params;
  const double cps =
      o.wall_seconds > 0.0
          ? static_cast<double>(o.result.cycles) / o.wall_seconds
          : 0.0;
  out << "{\"index\":" << index << ",\"label\":\""
      << metrics::json_escape(auto_label(spec)) << "\",\"workload\":\""
      << metrics::json_escape(p.workload) << "\",\"scheme\":\""
      << to_string(p.scheme) << "\",\"seed\":" << p.seed << ",\"scale\":";
  char num[40];
  std::snprintf(num, sizeof num, "%.17g", p.scale);
  out << num << ",\"max_cycles\":" << p.max_cycles
      << ",\"num_nodes\":" << p.base_config.num_nodes
      << ",\"mesh_width\":" << p.base_config.noc.mesh_width
      << ",\"mesh_height\":" << p.base_config.noc.rows() << ",\"key\":\""
      << cache_key(p) << "\",\"status\":\"" << to_string(o.status)
      << "\",\"attempts\":" << o.attempts << ",\"wall_s\":";
  std::snprintf(num, sizeof num, "%.6g", o.wall_seconds);
  out << num << ",\"cycles\":" << o.result.cycles << ",\"cycles_per_s\":";
  std::snprintf(num, sizeof num, "%.6g", cps);
  out << num;
  if (!spec.overrides.empty()) {
    out << ",\"overrides\":\"" << metrics::json_escape(spec.overrides)
        << "\"";
  }
  // Per-job trace manifest: where the Chrome JSON landed and how complete
  // the ring was, so a sweep's traces can be located programmatically.
  if (!o.result.trace_path.empty() || o.result.trace_events > 0) {
    out << ",\"trace_path\":\"" << metrics::json_escape(o.result.trace_path)
        << "\",\"trace_events\":" << o.result.trace_events
        << ",\"trace_dropped\":" << o.result.trace_dropped;
  }
  // Per-job telemetry manifest, same contract as the trace block above.
  if (!o.result.telemetry_path.empty() || o.result.telemetry_samples > 0) {
    out << ",\"telemetry_path\":\""
        << metrics::json_escape(o.result.telemetry_path)
        << "\",\"telemetry_samples\":" << o.result.telemetry_samples
        << ",\"telemetry_dropped\":" << o.result.telemetry_dropped;
  }
  if (!o.error.empty()) {
    out << ",\"error\":\"" << metrics::json_escape(o.error) << "\"";
  }
  out << "}\n";
  out.flush();
}

}  // namespace

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* v = std::getenv("PUNO_JOBS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepResult run_jobs(const std::vector<JobSpec>& specs,
                     const RunnerOptions& options, const JobFn& fn) {
  SweepResult sweep;
  sweep.outcomes.resize(specs.size());
  const std::size_t want =
      std::min<std::size_t>(resolve_jobs(options.jobs), specs.size());
  sweep.jobs_used = static_cast<unsigned>(std::max<std::size_t>(1, want));

  std::ofstream manifest;
  if (!options.manifest_path.empty()) {
    manifest.open(options.manifest_path, std::ios::trunc);
  }

  const auto t0 = Clock::now();
  std::atomic<std::size_t> next{0};
  std::size_t completed = 0;  // guarded by book_mutex
  std::mutex book_mutex;      // progress + manifest + sweep counters

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) return;
      const JobSpec& spec = specs[i];
      JobOutcome& out = sweep.outcomes[i];
      // Identity stub so a failed row still names its experiment.
      out.result.workload = spec.params.workload;
      out.result.scheme = spec.params.scheme;

      bool hit = false;
      // Traced and telemetry-sampled jobs always simulate: the point of
      // either is its side-effect files, which a cached result row cannot
      // reproduce.
      const bool traced =
          spec.params.trace.active() || spec.params.telemetry.active();
      if (options.cache != nullptr && !traced) {
        if (auto cached = options.cache->load(spec.params)) {
          out.result = std::move(*cached);
          out.status = JobStatus::kCached;
          hit = true;
        }
      }
      if (!hit) {
        for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
          out.attempts = attempt;
          const auto job_t0 = Clock::now();
          try {
            metrics::RunResult r =
                fn ? fn(spec) : simulate(spec, options.watchdog_seconds);
            out.wall_seconds = seconds_since(job_t0);
            out.result = std::move(r);
            out.status = JobStatus::kOk;
            out.error.clear();
            break;
          } catch (const WatchdogExpired& e) {
            out.wall_seconds = seconds_since(job_t0);
            out.status = JobStatus::kFailed;
            out.error = e.what();
            break;  // deliberate: no retry after a watchdog kill
          } catch (const std::exception& e) {
            out.wall_seconds = seconds_since(job_t0);
            out.status = JobStatus::kFailed;
            out.error = e.what();
          } catch (...) {
            out.wall_seconds = seconds_since(job_t0);
            out.status = JobStatus::kFailed;
            out.error = "unknown exception";
          }
        }
        if (out.status == JobStatus::kOk && options.cache != nullptr &&
            !traced) {
          options.cache->store(spec.params, out.result);
        }
      }

      std::lock_guard<std::mutex> lock(book_mutex);
      ++completed;
      sweep.sim_seconds += out.wall_seconds;
      switch (out.status) {
        case JobStatus::kOk: ++sweep.simulated; break;
        case JobStatus::kCached: ++sweep.cached; break;
        case JobStatus::kFailed: ++sweep.failed; break;
      }
      if (out.status != JobStatus::kFailed) {
        sweep.total_cycles += out.result.cycles;
      }
      if (manifest.is_open()) write_manifest_row(manifest, i, spec, out);
      if (options.progress) {
        const double elapsed = seconds_since(t0);
        const double eta =
            elapsed / static_cast<double>(completed) *
            static_cast<double>(specs.size() - completed);
        std::fprintf(stderr, "\r[%zu/%zu] %3.0f%% | ETA %5.1fs | %-44.44s",
                     completed, specs.size(),
                     100.0 * static_cast<double>(completed) /
                         static_cast<double>(specs.size()),
                     eta, auto_label(spec).c_str());
        std::fflush(stderr);
      }
    }
  };

  if (sweep.jobs_used == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(sweep.jobs_used);
    for (unsigned t = 0; t < sweep.jobs_used; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options.progress) std::fprintf(stderr, "\r%78s\r", "");
  sweep.wall_seconds = seconds_since(t0);
  return sweep;
}

void print_summary(const SweepResult& s, std::ostream& out) {
  char line[256];
  std::snprintf(line, sizeof line,
                "sweep: %zu jobs (%zu simulated, %zu cached, %zu failed) in "
                "%.2fs wall on %u worker%s",
                s.outcomes.size(), s.simulated, s.cached, s.failed,
                s.wall_seconds, s.jobs_used, s.jobs_used == 1 ? "" : "s");
  out << line;
  // Speedup and throughput only mean something when work was simulated.
  if (s.simulated > 0 && s.sim_seconds > 0.0 && s.wall_seconds > 0.0) {
    std::snprintf(line, sizeof line,
                  "; sim time %.2fs, speedup %.2fx, %.1fM cycles/s aggregate",
                  s.sim_seconds, s.speedup(),
                  static_cast<double>(s.total_cycles) / s.wall_seconds / 1e6);
    out << line;
  } else if (s.cached == s.outcomes.size() && !s.outcomes.empty()) {
    out << "; all results served from cache";
  }
  out << '\n';
}

}  // namespace puno::runner
