// Cross-run fleet aggregation behind tools/punoagg.
//
// A punobatch sweep leaves three artifacts: the per-job JSONL manifest
// (config identity + outcome + artifact paths), the result JSONL (one
// RunResult row per job, same order as the manifest) and per-job telemetry
// series. This module walks one or more manifests, joins those artifacts on
// the content-addressed cache key, and produces:
//
//   - deterministic aggregate rows (host-time fields dropped, "cached"
//     normalized to "ok", sorted by config identity) that are byte-identical
//     however many worker threads produced the sweep,
//   - an append-safe aggregate JSONL on disk: rows merge into whatever is
//     already there (newest row per cache key wins) and the file is
//     republished via temp + rename, the same atomic-publication idiom as
//     the result cache,
//   - the self-contained fleet dashboard comparing schemes x sizes x
//     workloads with a per-config mesh-heatmap thumbnail,
//   - a perf-trajectory report over a series of bench_baseline snapshots
//     (BENCH_*.json) that flags throughput regressions beyond a threshold.
//
// Parse errors follow the trace-parser convention: the offending token is
// quoted in the message, with the file and line number.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace puno::runner {

/// One punobatch manifest line, as written by write_manifest_row. Optional
/// blocks (overrides, trace, telemetry, error) default to empty/0.
struct ManifestRow {
  std::uint64_t index = 0;
  std::string label;
  std::string workload;
  std::string scheme;
  std::uint64_t seed = 0;
  double scale = 1.0;
  std::uint64_t max_cycles = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t mesh_width = 0;
  std::uint64_t mesh_height = 0;
  std::string key;     ///< Cache key — the cross-artifact join key.
  std::string status;  ///< "ok" | "cached" | "failed".
  std::uint64_t attempts = 0;
  double wall_s = 0.0;
  std::uint64_t cycles = 0;
  double cycles_per_s = 0.0;
  std::string overrides;
  std::string trace_path;
  std::string telemetry_path;
  std::uint64_t telemetry_samples = 0;
  std::uint64_t telemetry_dropped = 0;
  std::string error;
};

/// Parses one manifest JSONL line; unknown keys are skipped. On malformed
/// input returns false and, when `err` is non-null, stores a message quoting
/// the offending token.
[[nodiscard]] bool parse_manifest_row(std::string_view line, ManifestRow& row,
                                      std::string* err);

/// Reads a whole manifest file. Throws std::runtime_error naming the file,
/// the 1-based line and the offending token on the first malformed line.
[[nodiscard]] std::vector<ManifestRow> read_manifest_file(
    const std::filesystem::path& path);

/// One aggregate row: the config identity plus only the fields that are
/// deterministic for that config (no wall time, no attempt counts). The
/// thumbnail channel is per-tile whole-run totals from the job's telemetry
/// series — tile aborts when the series is spatial, router traversals
/// otherwise — and stays empty when the job carried no telemetry.
struct AggregateRow {
  std::string key;
  std::string workload;
  std::string scheme;
  std::uint64_t seed = 0;
  double scale = 1.0;
  std::uint64_t num_nodes = 0;
  std::uint64_t mesh_width = 0;
  std::uint64_t mesh_height = 0;
  std::string overrides;
  std::string status;  ///< "ok" (cached runs normalized) or "failed".
  std::uint64_t cycles = 0;
  bool has_result = false;  ///< Result row joined: metric fields valid.
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t false_abort_events = 0;
  std::uint64_t router_traversals = 0;
  std::string heat_channel;  ///< "aborts" | "traversals" | "".
  std::vector<std::uint64_t> tile_heat;  ///< Per-tile whole-run totals.
};

/// Deterministic ordering: workload, scheme, num_nodes, scale, overrides,
/// seed, then key as the final tiebreak.
void sort_aggregate(std::vector<AggregateRow>& rows);

/// Builds aggregate rows from one manifest. `results_path` may be empty; when
/// given it is the sweep's result JSONL (joined by row order, cross-checked
/// by workload/scheme). Per-job telemetry paths are resolved relative to the
/// manifest's directory when not found as written. Throws std::runtime_error
/// on unreadable/malformed inputs.
[[nodiscard]] std::vector<AggregateRow> aggregate_manifest(
    const std::filesystem::path& manifest_path,
    const std::filesystem::path& results_path);

/// One row as one JSON object line (conditional keys: result metrics only
/// with has_result, heat fields only when non-empty).
void write_aggregate_row(const AggregateRow& row, std::ostream& out);

/// Inverse of write_aggregate_row; same error contract as
/// parse_manifest_row.
[[nodiscard]] bool parse_aggregate_row(std::string_view line,
                                       AggregateRow& row, std::string* err);

/// Merges `rows` into the aggregate JSONL at `path` (rows already there are
/// kept unless a new row has the same cache key), sorts, and republishes the
/// whole file atomically via temp + rename. Returns false with `err` set on
/// I/O failure or a malformed existing file.
[[nodiscard]] bool publish_aggregate(const std::filesystem::path& path,
                                     const std::vector<AggregateRow>& rows,
                                     std::string* err);

/// The fleet dashboard: per-workload tables of scheme columns x config rows
/// with headline metrics and heatmap thumbnails, fully self-contained HTML.
void write_fleet_dashboard(const std::vector<AggregateRow>& rows,
                           std::ostream& out);

/// One bench_baseline snapshot (BENCH_*.json), headline fields only.
struct BenchSnapshot {
  std::string path;
  std::string git_sha;       ///< Empty for pre-stamping snapshots.
  std::string generated_at;  ///< ISO-8601 UTC; empty for unstamped files.
  std::uint64_t config_schema = 0;
  struct Row {
    std::string workload;
    std::string scheme;
    std::uint64_t cycles = 0;
    double wall_s = 0.0;
    double cycles_per_s = 0.0;
  };
  std::vector<Row> rows;
};

/// Reads one snapshot; returns false with `err` set (offending token
/// quoted) on malformed input.
[[nodiscard]] bool read_bench_snapshot(const std::filesystem::path& path,
                                       BenchSnapshot& snap, std::string* err);

/// Orders snapshots into a trajectory (generated_at when stamped, falling
/// back to the given order), diffs consecutive snapshots per workload x
/// scheme row, and writes the report. A row whose throughput ratio drops
/// below `max_regression` (e.g. 0.7 = lost 30%) is flagged; the return
/// value is the number of flagged regressions in the newest step.
[[nodiscard]] std::size_t write_trajectory_report(
    std::vector<BenchSnapshot> snaps, double max_regression,
    std::ostream& out);

}  // namespace puno::runner
