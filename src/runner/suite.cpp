#include "runner/suite.hpp"

#include <iterator>

#include "runner/grid.hpp"
#include "workloads/stamp.hpp"

namespace puno::runner {

namespace {

[[nodiscard]] RunnerOptions to_runner_options(const SuiteOptions& options) {
  RunnerOptions ro;
  ro.jobs = options.jobs;
  ro.cache = options.cache;
  ro.progress = options.progress;
  return ro;
}

[[nodiscard]] std::vector<metrics::RunResult> extract(
    std::vector<JobOutcome>&& outcomes) {
  std::vector<metrics::RunResult> results;
  results.reserve(outcomes.size());
  for (JobOutcome& o : outcomes) results.push_back(std::move(o.result));
  return results;
}

}  // namespace

std::vector<metrics::RunResult> run_suite(Scheme scheme, std::uint64_t seed,
                                          const SuiteOptions& options) {
  GridSpec grid;
  grid.workloads = workloads::stamp::benchmark_names();
  grid.schemes = {scheme};
  grid.seeds = {seed};
  grid.scale = options.scale;
  SweepResult sweep = run_jobs(expand_grid(grid), to_runner_options(options));
  return extract(std::move(sweep.outcomes));
}

SuiteComparison run_comparison(std::uint64_t seed,
                               const SuiteOptions& options) {
  GridSpec grid;
  grid.workloads = workloads::stamp::benchmark_names();
  // Scheme-major so the flat outcome vector splits into 4 contiguous suites.
  grid.schemes = {Scheme::kBaseline, Scheme::kRandomBackoff, Scheme::kRmwPred,
                  Scheme::kPuno};
  grid.seeds = {seed};
  grid.scale = options.scale;

  // expand_grid is workload-major; rebuild scheme-major by expanding one
  // scheme at a time into a single job list, then run it as one batch.
  std::vector<JobSpec> specs;
  for (const Scheme s : grid.schemes) {
    GridSpec per = grid;
    per.schemes = {s};
    auto part = expand_grid(per);
    specs.insert(specs.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
  }
  SweepResult sweep = run_jobs(specs, to_runner_options(options));
  auto results = extract(std::move(sweep.outcomes));

  const std::size_t n = workloads::stamp::benchmark_names().size();
  SuiteComparison c;
  c.baseline.assign(std::make_move_iterator(results.begin()),
                    std::make_move_iterator(results.begin() + n));
  c.backoff.assign(std::make_move_iterator(results.begin() + n),
                   std::make_move_iterator(results.begin() + 2 * n));
  c.rmw.assign(std::make_move_iterator(results.begin() + 2 * n),
               std::make_move_iterator(results.begin() + 3 * n));
  c.puno.assign(std::make_move_iterator(results.begin() + 3 * n),
                std::make_move_iterator(results.begin() + 4 * n));
  return c;
}

}  // namespace puno::runner
