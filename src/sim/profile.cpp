#include "sim/profile.hpp"

#include <chrono>

namespace puno::sim {

namespace {

double calibrate() {
#if defined(__x86_64__) || defined(_M_X64)
  // Spin for ~2 ms against steady_clock and take the ratio. Short enough to
  // be unnoticeable, long enough that clock granularity is in the noise.
  using clock = std::chrono::steady_clock;
  const auto wall0 = clock::now();
  const std::uint64_t tsc0 = host_ticks();
  for (;;) {
    const auto wall = clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall - wall0)
            .count();
    if (ns >= 2'000'000) {
      const std::uint64_t tsc = host_ticks();
      return static_cast<double>(tsc - tsc0) * 1e9 / static_cast<double>(ns);
    }
  }
#else
  return 1e9;  // host_ticks() is steady_clock nanoseconds on this target
#endif
}

}  // namespace

double host_ticks_per_second() {
  static const double rate = calibrate();
  return rate;
}

}  // namespace puno::sim
