// Statistics primitives: counters, scalars and histograms, grouped in a
// registry so experiment harnesses can dump everything by name.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace puno::sim {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Running mean/min/max of a sampled quantity.
class Scalar {
 public:
  void sample(double v) noexcept {
    sum_ += v;
    count_ += 1;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  void reset() noexcept { *this = Scalar{}; }

 private:
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Integer-bucketed histogram with a configurable cap; samples beyond the
/// cap land in the overflow bucket. Used e.g. for the Fig. 3 distribution of
/// transactions falsely aborted per event.
class Histogram {
 public:
  explicit Histogram(std::size_t max_bucket = 64) : buckets_(max_bucket + 1) {}

  void sample(std::uint64_t v) noexcept {
    const std::size_t idx =
        std::min<std::uint64_t>(v, buckets_.size() - 1);
    buckets_[idx] += 1;
    total_ += 1;
    sum_ += v;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return i < buckets_.size() ? buckets_[i] : 0;
  }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(total_);
  }
  /// Fraction of samples with value == i.
  [[nodiscard]] double fraction(std::size_t i) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(bucket(i)) /
                             static_cast<double>(total_);
  }
  /// The p-quantile (p in [0,1], clamped): the smallest bucket value v such
  /// that at least ceil(p * total) samples are <= v. Returns 0 on an empty
  /// histogram; samples beyond the cap report the overflow bucket's index,
  /// so a tail percentile can read "cap or more". percentile(0.5) is the
  /// median; the dashboard's latency/backoff panels use p50/p90/p99.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (total_ == 0) return 0;
    const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    // ceil(p * total), but at least 1 so percentile(0) is the minimum.
    auto rank = static_cast<std::uint64_t>(clamped *
                                           static_cast<double>(total_));
    if (static_cast<double>(rank) < clamped * static_cast<double>(total_) ||
        rank == 0) {
      ++rank;
    }
    if (rank > total_) rank = total_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      cum += buckets_[i];
      if (cum >= rank) return i;
    }
    return buckets_.size() - 1;  // unreachable: cum == total_ at the end
  }
  void reset() noexcept {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    sum_ = 0;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Name → stat registry. Components create their stats through a registry so
/// a harness can enumerate and print them without knowing every component.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Scalar& scalar(const std::string& name) { return scalars_[name]; }
  Histogram& histogram(const std::string& name, std::size_t max_bucket = 64) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{max_bucket}).first;
    }
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Scalar>& scalars() const {
    return scalars_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void reset() {
    for (auto& [_, c] : counters_) c.reset();
    for (auto& [_, s] : scalars_) s.reset();
    for (auto& [_, h] : histograms_) h.reset();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Scalar> scalars_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace puno::sim
