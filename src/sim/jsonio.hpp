// Minimal JSON reading/writing helpers shared by every flat-JSONL schema in
// the tree (RunResult rows, the runner manifest, the result cache and the
// telemetry series).
//
// This is deliberately not a general JSON library: the writers emit flat
// objects whose values are strings, numbers, booleans and numeric arrays,
// and the readers parse exactly that shape back, skipping unknown values so
// schemas can grow compatibly. Doubles round-trip exactly (max_digits10);
// non-finite values, which JSON cannot represent, are written as 0.
//
// The parse_* functions consume from a std::string_view in place and return
// false (leaving the view unspecified) on malformed input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace puno::sim::jsonio {

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string escape(std::string_view s);

/// Writes a double as a JSON number that parses back to the same value.
void write_double(std::ostream& out, double v);

void skip_ws(std::string_view& s);

/// Consumes one expected punctuation character (after whitespace).
[[nodiscard]] bool consume(std::string_view& s, char c);

[[nodiscard]] bool parse_string(std::string_view& s, std::string& out);
[[nodiscard]] bool parse_double(std::string_view& s, double& v);
[[nodiscard]] bool parse_u64(std::string_view& s, std::uint64_t& v);
[[nodiscard]] bool parse_bool(std::string_view& s, bool& v);
[[nodiscard]] bool parse_double_array(std::string_view& s,
                                      std::vector<double>& out);
[[nodiscard]] bool parse_u64_array(std::string_view& s,
                                   std::vector<std::uint64_t>& out);

/// Skips one JSON value of any type (for forward-compatible unknown keys).
[[nodiscard]] bool skip_value(std::string_view& s);

}  // namespace puno::sim::jsonio
