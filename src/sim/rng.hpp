// Deterministic pseudo-random number generation for the simulator.
//
// Every source of randomness in the simulation draws from an Rng seeded from
// (global seed, stream id). This makes whole-CMP simulations bit-reproducible
// across platforms, which the experiment harness relies on.
#pragma once

#include <cstdint>
#include <limits>

namespace puno::sim {

/// SplitMix64: used only to expand a user seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, tiny-state PRNG (Blackman & Vigna).
/// Satisfies the subset of UniformRandomBitGenerator we need.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a (seed, stream) pair so that independent components get
  /// decorrelated streams from one experiment-level seed.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    std::uint64_t sm = seed ^ (0xA0761D6478BD642FULL * (stream + 1));
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::uint64_t next_range(std::uint64_t lo,
                                         std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of returning true.
  [[nodiscard]] bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace puno::sim
