// Small-buffer-optimized move-only callable for the kernel's event queue.
//
// Every scheduled event used to round-trip through std::function, whose
// inline buffer (16 bytes on libstdc++) is too small for the typical capture
// of a simulation event (a `this` pointer plus a couple of ids plus a
// payload handle), so nearly every Kernel::schedule() call heap-allocated.
// SmallFn widens the inline buffer so those captures are stored in place;
// only callables larger than the buffer fall back to the heap. It is
// move-only (events run once and are destroyed), which also lets it hold
// move-only captures that std::function rejects.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace puno::sim {

/// Move-only `void()` callable with `Capacity` bytes of inline storage.
/// Callables that fit (size and alignment) are stored in place; larger ones
/// are heap-allocated behind a pointer kept in the same buffer.
template <std::size_t Capacity = 48>
class SmallFn {
 public:
  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule() call site.
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the held callable lives in the inline buffer (test hook for
  /// the no-allocation contract).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  /// The inline capacity, for static_asserts at hot call sites.
  static constexpr std::size_t capacity() noexcept { return Capacity; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable from `src` into `dst`, destroying the
    /// source — the single primitive move ctor/assign need.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t)
           && std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        Fn** s = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*s);
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
      /*inline_storage=*/false,
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

/// The kernel's event callable: large enough for a `this` pointer, a few
/// ids and a payload handle without touching the heap.
using EventFn = SmallFn<48>;

}  // namespace puno::sim
