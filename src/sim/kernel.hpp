// The simulation kernel: a synchronous clocked engine plus a delayed-event
// scheduler.
//
// Components that do per-cycle work (routers, cache controllers, cores)
// implement Tickable and register with the kernel; latency-shaped work
// (memory access completion, backoff expiry) is scheduled as one-shot events.
// Everything runs single-threaded and deterministically: within one cycle,
// tickables run in registration order and events in scheduling order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/profile.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace puno::trace {
class TraceRecorder;  // src/trace — depends on sim, so only a pointer here
}  // namespace puno::trace

namespace puno::sim {

/// Interface for components that act every cycle.
class Tickable {
 public:
  virtual ~Tickable() = default;
  /// Perform this component's work for the current cycle.
  virtual void tick(Cycle now) = 0;
};

/// Single-clock-domain simulation kernel.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Registers a per-cycle component. Order of registration fixes the order
  /// of evaluation within a cycle (and therefore determinism). The name is
  /// only used by the host profiler's per-component breakdown.
  void add_tickable(Tickable& t, std::string name = "tickable") {
    tickables_.push_back(&t);
    tickable_names_.push_back(std::move(name));
    if (profiler_ != nullptr) {
      profiler_->declare_tickable(tickables_.size() - 1,
                                  tickable_names_.back().c_str());
    }
  }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle,
  /// after all tickables). Events at the same cycle run in scheduling order;
  /// a zero-delay event scheduled from inside another event handler still
  /// runs this cycle, after all previously-scheduled same-cycle events.
  void schedule(Cycle delay, std::function<void()> fn) {
    events_.push_back(Event{now_ + delay, next_seq_++, std::move(fn)});
    std::push_heap(events_.begin(), events_.end(), EventLater{});
  }

  /// Registers an observer invoked at the end of every cycle, after all
  /// tickables and events have run but before the clock advances. Hooks must
  /// only *inspect* state; an event scheduled from a hook (even with delay 0)
  /// runs in the next cycle.
  void add_post_cycle_hook(std::function<void(Cycle)> hook,
                           std::string name = "hook") {
    post_cycle_hooks_.push_back(std::move(hook));
    hook_names_.push_back(std::move(name));
    if (profiler_ != nullptr) {
      profiler_->declare_hook(post_cycle_hooks_.size() - 1,
                              hook_names_.back().c_str());
    }
  }

  /// Advances one cycle: run all tickables, then all events due this cycle,
  /// then the post-cycle hooks.
  void step() {
#ifndef PUNO_PROFILING_DISABLED
    if (profiler_ != nullptr) {
      step_profiled();
      return;
    }
#endif
    for (Tickable* t : tickables_) t->tick(now_);
    drain_due_events();
    for (const auto& hook : post_cycle_hooks_) hook(now_);
    ++now_;
  }

  /// Runs until `done()` returns true or `max_cycles` elapse.
  /// Returns true if `done()` fired (i.e., we did not hit the cycle limit).
  bool run_until(const std::function<bool()>& done, Cycle max_cycles) {
    const Cycle limit = now_ + max_cycles;
    while (now_ < limit) {
      if (done()) return true;
      step();
    }
    return done();
  }

  /// Runs a fixed number of cycles.
  void run_for(Cycle cycles) {
    const Cycle limit = now_ + cycles;
    while (now_ < limit) step();
  }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

  /// Global stats registry for this simulation instance.
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }

  /// Optional event-trace recorder. Null (the default) means tracing is
  /// off; components emit through PUNO_TEV (trace/recorder.hpp), which
  /// reduces to this null check. The kernel does not own the recorder —
  /// the caller (e.g. metrics::run_experiment) keeps it alive for the run.
  void set_tracer(trace::TraceRecorder* t) noexcept { tracer_ = t; }
  [[nodiscard]] trace::TraceRecorder* tracer() const noexcept {
    return tracer_;
  }

  /// Optional host-time profiler. Null (the default) means step() runs the
  /// unprofiled path; with a sink attached every tick, event batch and hook
  /// is bracketed with host_ticks(). Like the tracer, the kernel does not
  /// own the sink. Under PUNO_PROFILING_DISABLED the attachment is accepted
  /// but never consulted, so profiling code compiles out of step().
  void set_profiler(ProfileSink* p) {
    profiler_ = p;
    if (profiler_ == nullptr) return;
    for (std::size_t i = 0; i < tickable_names_.size(); ++i) {
      profiler_->declare_tickable(i, tickable_names_[i].c_str());
    }
    for (std::size_t i = 0; i < hook_names_.size(); ++i) {
      profiler_->declare_hook(i, hook_names_[i].c_str());
    }
  }
  [[nodiscard]] ProfileSink* profiler() const noexcept { return profiler_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;  // tie-break: FIFO among same-cycle events
    std::function<void()> fn;
  };
  /// Heap comparator: the front of the heap is the earliest (when, seq).
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  /// Runs all events due this cycle. Returns the number of handlers run.
  std::uint64_t drain_due_events() {
    std::uint64_t ran = 0;
    while (!events_.empty() && events_.front().when <= now_) {
      // Move the event fully out of the heap before running it, so the
      // handler can schedule further events (including zero-delay ones for
      // this same cycle) without touching live heap storage.
      std::pop_heap(events_.begin(), events_.end(), EventLater{});
      Event ev = std::move(events_.back());
      events_.pop_back();
      ev.fn();
      ++ran;
    }
    return ran;
  }

#ifndef PUNO_PROFILING_DISABLED
  /// step() with each phase bracketed by host_ticks(). A separate method so
  /// the common unprofiled path stays branch-light and the timing calls sit
  /// outside it entirely.
  void step_profiled() {
    for (std::size_t i = 0; i < tickables_.size(); ++i) {
      const std::uint64_t t0 = host_ticks();
      tickables_[i]->tick(now_);
      profiler_->tickable_cost(i, host_ticks() - t0);
    }
    {
      const std::uint64_t t0 = host_ticks();
      const std::uint64_t ran = drain_due_events();
      profiler_->event_cost(ran, host_ticks() - t0);
    }
    for (std::size_t i = 0; i < post_cycle_hooks_.size(); ++i) {
      const std::uint64_t t0 = host_ticks();
      post_cycle_hooks_[i](now_);
      profiler_->hook_cost(i, host_ticks() - t0);
    }
    ++now_;
  }
#endif

  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Tickable*> tickables_;
  std::vector<std::string> tickable_names_;  ///< Parallel to tickables_.
  std::vector<Event> events_;  ///< Binary heap ordered by EventLater.
  std::vector<std::function<void(Cycle)>> post_cycle_hooks_;
  std::vector<std::string> hook_names_;  ///< Parallel to post_cycle_hooks_.
  StatsRegistry stats_;
  trace::TraceRecorder* tracer_ = nullptr;    // not owned
  ProfileSink* profiler_ = nullptr;           // not owned
};

}  // namespace puno::sim
