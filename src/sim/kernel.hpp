// The simulation kernel: a synchronous clocked engine plus a delayed-event
// scheduler.
//
// Components that do per-cycle work (routers, cache controllers, cores)
// implement Tickable and register with the kernel; latency-shaped work
// (memory access completion, backoff expiry) is scheduled as one-shot events.
// Everything runs single-threaded and deterministically: within one cycle,
// tickables run in registration order and events in scheduling order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace puno::trace {
class TraceRecorder;  // src/trace — depends on sim, so only a pointer here
}  // namespace puno::trace

namespace puno::sim {

/// Interface for components that act every cycle.
class Tickable {
 public:
  virtual ~Tickable() = default;
  /// Perform this component's work for the current cycle.
  virtual void tick(Cycle now) = 0;
};

/// Single-clock-domain simulation kernel.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Registers a per-cycle component. Order of registration fixes the order
  /// of evaluation within a cycle (and therefore determinism).
  void add_tickable(Tickable& t) { tickables_.push_back(&t); }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle,
  /// after all tickables). Events at the same cycle run in scheduling order;
  /// a zero-delay event scheduled from inside another event handler still
  /// runs this cycle, after all previously-scheduled same-cycle events.
  void schedule(Cycle delay, std::function<void()> fn) {
    events_.push_back(Event{now_ + delay, next_seq_++, std::move(fn)});
    std::push_heap(events_.begin(), events_.end(), EventLater{});
  }

  /// Registers an observer invoked at the end of every cycle, after all
  /// tickables and events have run but before the clock advances. Hooks must
  /// only *inspect* state; an event scheduled from a hook (even with delay 0)
  /// runs in the next cycle.
  void add_post_cycle_hook(std::function<void(Cycle)> hook) {
    post_cycle_hooks_.push_back(std::move(hook));
  }

  /// Advances one cycle: run all tickables, then all events due this cycle,
  /// then the post-cycle hooks.
  void step() {
    for (Tickable* t : tickables_) t->tick(now_);
    while (!events_.empty() && events_.front().when <= now_) {
      // Move the event fully out of the heap before running it, so the
      // handler can schedule further events (including zero-delay ones for
      // this same cycle) without touching live heap storage.
      std::pop_heap(events_.begin(), events_.end(), EventLater{});
      Event ev = std::move(events_.back());
      events_.pop_back();
      ev.fn();
    }
    for (const auto& hook : post_cycle_hooks_) hook(now_);
    ++now_;
  }

  /// Runs until `done()` returns true or `max_cycles` elapse.
  /// Returns true if `done()` fired (i.e., we did not hit the cycle limit).
  bool run_until(const std::function<bool()>& done, Cycle max_cycles) {
    const Cycle limit = now_ + max_cycles;
    while (now_ < limit) {
      if (done()) return true;
      step();
    }
    return done();
  }

  /// Runs a fixed number of cycles.
  void run_for(Cycle cycles) {
    const Cycle limit = now_ + cycles;
    while (now_ < limit) step();
  }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

  /// Global stats registry for this simulation instance.
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }

  /// Optional event-trace recorder. Null (the default) means tracing is
  /// off; components emit through PUNO_TEV (trace/recorder.hpp), which
  /// reduces to this null check. The kernel does not own the recorder —
  /// the caller (e.g. metrics::run_experiment) keeps it alive for the run.
  void set_tracer(trace::TraceRecorder* t) noexcept { tracer_ = t; }
  [[nodiscard]] trace::TraceRecorder* tracer() const noexcept {
    return tracer_;
  }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;  // tie-break: FIFO among same-cycle events
    std::function<void()> fn;
  };
  /// Heap comparator: the front of the heap is the earliest (when, seq).
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Tickable*> tickables_;
  std::vector<Event> events_;  ///< Binary heap ordered by EventLater.
  std::vector<std::function<void(Cycle)>> post_cycle_hooks_;
  StatsRegistry stats_;
  trace::TraceRecorder* tracer_ = nullptr;  // not owned
};

}  // namespace puno::sim
