// The simulation kernel: a synchronous clocked engine plus a delayed-event
// scheduler.
//
// Components that do per-cycle work (routers, cache controllers, cores)
// implement Tickable and register with the kernel; latency-shaped work
// (memory access completion, backoff expiry) is scheduled as one-shot events.
// Everything runs single-threaded and deterministically: within one cycle,
// tickables run in registration order and events in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace puno::sim {

/// Interface for components that act every cycle.
class Tickable {
 public:
  virtual ~Tickable() = default;
  /// Perform this component's work for the current cycle.
  virtual void tick(Cycle now) = 0;
};

/// Single-clock-domain simulation kernel.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Registers a per-cycle component. Order of registration fixes the order
  /// of evaluation within a cycle (and therefore determinism).
  void add_tickable(Tickable& t) { tickables_.push_back(&t); }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle,
  /// after all tickables). Events at the same cycle run in scheduling order.
  void schedule(Cycle delay, std::function<void()> fn) {
    events_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  /// Advances one cycle: run all tickables, then all events due this cycle.
  void step() {
    for (Tickable* t : tickables_) t->tick(now_);
    while (!events_.empty() && events_.top().when <= now_) {
      // Copy out before pop so the handler can schedule without invalidation.
      auto fn = std::move(const_cast<Event&>(events_.top()).fn);
      events_.pop();
      fn();
    }
    ++now_;
  }

  /// Runs until `done()` returns true or `max_cycles` elapse.
  /// Returns true if `done()` fired (i.e., we did not hit the cycle limit).
  bool run_until(const std::function<bool()>& done, Cycle max_cycles) {
    const Cycle limit = now_ + max_cycles;
    while (now_ < limit) {
      if (done()) return true;
      step();
    }
    return done();
  }

  /// Runs a fixed number of cycles.
  void run_for(Cycle cycles) {
    const Cycle limit = now_ + cycles;
    while (now_ < limit) step();
  }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

  /// Global stats registry for this simulation instance.
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;  // tie-break: FIFO among same-cycle events
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Tickable*> tickables_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  StatsRegistry stats_;
};

}  // namespace puno::sim
