// The simulation kernel: a synchronous clocked engine plus a delayed-event
// scheduler.
//
// Components that do per-cycle work (routers, cache controllers, cores)
// implement Tickable and register with the kernel; latency-shaped work
// (memory access completion, backoff expiry) is scheduled as one-shot events.
// Everything runs single-threaded and deterministically: within one cycle,
// tickables run in registration order and events in scheduling order.
//
// The scheduler is a calendar queue: events due within the next kWindow
// cycles land in a per-cycle bucket of a circular array (append = O(1), no
// comparisons), and only far-future events (notification backoff expiry,
// rollover timeouts) fall back to a binary heap. Nearly every event in a
// simulation is a small constant delay — link traversals, pipeline and cache
// latencies — so the hot path never touches the heap. Event callables are
// sim::EventFn (smallfn.hpp), which stores typical captures inline instead
// of heap-allocating like std::function. Both structures preserve the exact
// (due-cycle, scheduling-order) event ordering of the original single heap,
// so simulations are bit-identical to the pre-calendar-queue kernel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/profile.hpp"
#include "sim/smallfn.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace puno::trace {
class TraceRecorder;  // src/trace — depends on sim, so only a pointer here
}  // namespace puno::trace

namespace puno::sim {

/// Interface for components that act every cycle.
class Tickable {
 public:
  virtual ~Tickable() = default;
  /// Perform this component's work for the current cycle.
  virtual void tick(Cycle now) = 0;
};

/// Single-clock-domain simulation kernel.
class Kernel {
 public:
  /// Calendar-queue horizon: events with delay < kWindow use the bucket
  /// ring, the rest the far-future heap. Covers every constant simulation
  /// latency (links, pipelines, caches, DRAM at 200) with room to spare.
  static constexpr Cycle kWindow = 256;

  Kernel() : buckets_(kWindow), bucket_unsorted_(kWindow, 0) {}
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Keeps `r` alive until the kernel itself is destroyed — *after* all
  /// pending events. Components whose scheduled events capture handles into
  /// component-owned arenas (the NoC packet pool) register the arena here so
  /// that events still queued when the component dies destruct safely.
  void retain(std::shared_ptr<void> r) { retained_.push_back(std::move(r)); }

  /// Registers a per-cycle component. Order of registration fixes the order
  /// of evaluation within a cycle (and therefore determinism). The name is
  /// only used by the host profiler's per-component breakdown.
  void add_tickable(Tickable& t, std::string name = "tickable") {
    tickables_.push_back(&t);
    tickable_names_.push_back(std::move(name));
    if (profiler_ != nullptr) {
      profiler_->declare_tickable(tickables_.size() - 1,
                                  tickable_names_.back().c_str());
    }
  }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle,
  /// after all tickables). Events at the same cycle run in scheduling order;
  /// a zero-delay event scheduled from inside another event handler still
  /// runs this cycle, after all previously-scheduled same-cycle events.
  void schedule(Cycle delay, EventFn fn) {
    const Cycle when = now_ + delay;
    ++pending_;
    if (delay >= kWindow) {
      far_.push_back(Event{when, next_seq_++, std::move(fn)});
      std::push_heap(far_.begin(), far_.end(), EventLater{});
      return;
    }
    // A zero-delay event scheduled after this cycle's events already drained
    // (i.e. from a post-cycle hook) runs next cycle. It keeps `when = now`,
    // which sorts it ahead of genuine next-cycle events — exactly the order
    // the single-heap kernel produced — so the target bucket needs a sort.
    Cycle slot_cycle = when;
    if (delay == 0 && post_drain_) slot_cycle = now_ + 1;
    const std::size_t idx = static_cast<std::size_t>(slot_cycle) & kMask;
    if (slot_cycle != when) bucket_unsorted_[idx] = 1;
    buckets_[idx].push_back(Event{when, next_seq_++, std::move(fn)});
  }

  /// Registers an observer invoked at the end of every cycle, after all
  /// tickables and events have run but before the clock advances. Hooks must
  /// only *inspect* state; an event scheduled from a hook (even with delay 0)
  /// runs in the next cycle.
  void add_post_cycle_hook(std::function<void(Cycle)> hook,
                           std::string name = "hook") {
    post_cycle_hooks_.push_back(std::move(hook));
    hook_names_.push_back(std::move(name));
    if (profiler_ != nullptr) {
      profiler_->declare_hook(post_cycle_hooks_.size() - 1,
                              hook_names_.back().c_str());
    }
  }

  /// Advances one cycle: run all tickables, then all events due this cycle,
  /// then the post-cycle hooks.
  void step() {
#ifndef PUNO_PROFILING_DISABLED
    if (profiler_ != nullptr) {
      step_profiled();
      return;
    }
#endif
    for (Tickable* t : tickables_) t->tick(now_);
    drain_due_events();
    for (const auto& hook : post_cycle_hooks_) hook(now_);
    ++now_;
    post_drain_ = false;
  }

  /// Runs until `done()` returns true or `max_cycles` elapse.
  /// Returns true if `done()` fired (i.e., we did not hit the cycle limit).
  bool run_until(const std::function<bool()>& done, Cycle max_cycles) {
    const Cycle limit = now_ + max_cycles;
    while (now_ < limit) {
      if (done()) return true;
      step();
    }
    return done();
  }

  /// Runs a fixed number of cycles.
  void run_for(Cycle cycles) {
    const Cycle limit = now_ + cycles;
    while (now_ < limit) step();
  }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return pending_;
  }

  /// Global stats registry for this simulation instance.
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }

  /// Optional event-trace recorder. Null (the default) means tracing is
  /// off; components emit through PUNO_TEV (trace/recorder.hpp), which
  /// reduces to this null check. The kernel does not own the recorder —
  /// the caller (e.g. metrics::run_experiment) keeps it alive for the run.
  void set_tracer(trace::TraceRecorder* t) noexcept { tracer_ = t; }
  [[nodiscard]] trace::TraceRecorder* tracer() const noexcept {
    return tracer_;
  }

  /// Optional host-time profiler. Null (the default) means step() runs the
  /// unprofiled path; with a sink attached every tick, event batch and hook
  /// is bracketed with host_ticks(). Like the tracer, the kernel does not
  /// own the sink. Under PUNO_PROFILING_DISABLED the attachment is accepted
  /// but never consulted, so profiling code compiles out of step().
  void set_profiler(ProfileSink* p) {
    profiler_ = p;
    if (profiler_ == nullptr) return;
    for (std::size_t i = 0; i < tickable_names_.size(); ++i) {
      profiler_->declare_tickable(i, tickable_names_[i].c_str());
    }
    for (std::size_t i = 0; i < hook_names_.size(); ++i) {
      profiler_->declare_hook(i, hook_names_[i].c_str());
    }
  }
  [[nodiscard]] ProfileSink* profiler() const noexcept { return profiler_; }

 private:
  static constexpr std::size_t kMask = kWindow - 1;
  static_assert((kWindow & kMask) == 0, "kWindow must be a power of two");

  struct Event {
    Cycle when;
    std::uint64_t seq;  // tie-break: FIFO among same-cycle events
    EventFn fn;
  };
  /// Heap comparator: the front of the heap is the earliest (when, seq).
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  /// Drain-order comparator: earliest (when, seq) first.
  struct EventEarlier {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }
  };

  /// Runs all events due this cycle. Returns the number of handlers run.
  std::uint64_t drain_due_events() {
    const std::size_t idx = static_cast<std::size_t>(now_) & kMask;
    std::vector<Event>& slot = buckets_[idx];
    bool unsorted = bucket_unsorted_[idx] != 0;
    bucket_unsorted_[idx] = 0;
    // Far-future events maturing this cycle join the bucket. They pop from
    // the heap in (when, seq) order but interleave with bucket entries by
    // seq, so the merged bucket needs the sort below.
    if (!far_.empty() && far_.front().when <= now_) {
      do {
        std::pop_heap(far_.begin(), far_.end(), EventLater{});
        slot.push_back(std::move(far_.back()));
        far_.pop_back();
      } while (!far_.empty() && far_.front().when <= now_);
      unsorted = true;
    }
    if (unsorted) std::sort(slot.begin(), slot.end(), EventEarlier{});

    // Handlers may schedule zero-delay events, which append to this same
    // bucket (always with the highest seq so far, keeping it ordered);
    // index-based iteration picks them up, and moving the event out first
    // keeps it safe across any push_back reallocation.
    std::uint64_t ran = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
      Event ev = std::move(slot[i]);
      ev.fn();
      ++ran;
    }
    pending_ -= ran;
    slot.clear();  // capacity is retained for the bucket's next lap
    post_drain_ = true;
    return ran;
  }

#ifndef PUNO_PROFILING_DISABLED
  /// step() with each phase bracketed by host_ticks(). A separate method so
  /// the common unprofiled path stays branch-light and the timing calls sit
  /// outside it entirely.
  void step_profiled() {
    for (std::size_t i = 0; i < tickables_.size(); ++i) {
      const std::uint64_t t0 = host_ticks();
      tickables_[i]->tick(now_);
      profiler_->tickable_cost(i, host_ticks() - t0);
    }
    {
      const std::uint64_t t0 = host_ticks();
      const std::uint64_t ran = drain_due_events();
      profiler_->event_cost(ran, host_ticks() - t0);
    }
    for (std::size_t i = 0; i < post_cycle_hooks_.size(); ++i) {
      const std::uint64_t t0 = host_ticks();
      post_cycle_hooks_[i](now_);
      profiler_->hook_cost(i, host_ticks() - t0);
    }
    ++now_;
    post_drain_ = false;
  }
#endif

  // Destroyed last (declared first): pending events in the structures below
  // may hold handles into retained arenas.
  std::vector<std::shared_ptr<void>> retained_;

  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;   ///< Events queued across buckets + heap.
  bool post_drain_ = false;   ///< This cycle's events already ran (hooks).
  std::vector<Tickable*> tickables_;
  std::vector<std::string> tickable_names_;  ///< Parallel to tickables_.
  std::vector<std::vector<Event>> buckets_;  ///< Calendar ring [cycle % W].
  std::vector<std::uint8_t> bucket_unsorted_;  ///< Needs sort before drain.
  std::vector<Event> far_;  ///< Binary heap (EventLater) for delay >= W.
  std::vector<std::function<void(Cycle)>> post_cycle_hooks_;
  std::vector<std::string> hook_names_;  ///< Parallel to post_cycle_hooks_.
  StatsRegistry stats_;
  trace::TraceRecorder* tracer_ = nullptr;    // not owned
  ProfileSink* profiler_ = nullptr;           // not owned
};

}  // namespace puno::sim
