// Fundamental scalar types shared by every simulator subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace puno {

/// Simulated clock cycle. The whole CMP is modelled in one clock domain
/// (Table II: 1 GHz cores, network and caches on the same grid clock).
using Cycle = std::uint64_t;

/// Identifier of a node (core + L1 + L2 bank + router). 16 nodes in the
/// paper's CMP, but nothing in the code assumes 16.
using NodeId = std::uint16_t;

/// Physical byte address.
using Addr = std::uint64_t;

/// Cache-block-aligned address (byte address with the offset bits cleared).
using BlockAddr = std::uint64_t;

/// Transaction timestamp used by the time-based conflict-resolution policy
/// [Rajwar & Goodman]. Smaller value = older transaction = higher priority.
using Timestamp = std::uint64_t;

/// Identifier of a *static* transaction (a TX_BEGIN/TX_END site in the
/// program text). Dynamic instances of the same static transaction share a
/// TxLB entry.
using StaticTxId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Timestamp kInvalidTimestamp =
    std::numeric_limits<Timestamp>::max();
inline constexpr Cycle kInfiniteCycle = std::numeric_limits<Cycle>::max();

}  // namespace puno
