// Host-side self-profiling interface.
//
// The kernel can be asked to time, in host (wall-clock) terms, every
// Tickable::tick, every event-handler batch and every post-cycle hook it
// runs, reporting the costs to a ProfileSink. The concrete sink — the
// per-component aggregator with naming and report output — lives in
// src/telemetry (telemetry/host_profiler.hpp); this header only defines
// what the kernel needs to see, so puno_sim stays dependency-free.
//
// Zero-overhead contract (mirrors tracing, docs/TELEMETRY.md): with no sink
// attached the kernel pays one predictable null-pointer test per cycle, and
// a build with -DPUNO_PROFILING_DISABLED=ON compiles the test out entirely.
// Profiling reads only the host clock and writes only into the sink, so the
// simulated run is bit-identical with or without it.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace puno::sim {

/// A monotonic host timestamp for interval measurement. On x86-64 this is
/// the TSC (one instruction, ~no serialization — cheap enough to bracket
/// every tick); elsewhere it falls back to steady_clock nanoseconds. Units
/// are "host ticks": only ratios and sums are meaningful, and
/// host_ticks_per_second() converts to seconds for reports.
[[nodiscard]] inline std::uint64_t host_ticks() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Measures the host-tick rate against steady_clock (calibrated once, on
/// first use; ~1 ms of spinning). On the chrono fallback this is exactly
/// 1e9.
[[nodiscard]] double host_ticks_per_second();

/// Receiver for the kernel's per-component host-time measurements. Indexes
/// are registration orders (see Kernel::add_tickable / add_post_cycle_hook);
/// the kernel reports the matching names once via declare_*.
class ProfileSink {
 public:
  virtual ~ProfileSink() = default;

  /// Announces the name of tickable / post-cycle hook `idx` (called when the
  /// sink is attached, for every component registered so far, and again for
  /// late registrations).
  virtual void declare_tickable(std::size_t idx, const char* name) = 0;
  virtual void declare_hook(std::size_t idx, const char* name) = 0;

  /// One Tickable::tick of component `idx` took `ticks` host ticks.
  virtual void tickable_cost(std::size_t idx, std::uint64_t ticks) = 0;
  /// One post-cycle hook invocation of hook `idx` took `ticks` host ticks.
  virtual void hook_cost(std::size_t idx, std::uint64_t ticks) = 0;
  /// The cycle's whole event-drain phase (all due events) took `ticks` host
  /// ticks over `events` handler invocations. Events carry no component
  /// identity (they are plain closures), so they are profiled as one bucket.
  virtual void event_cost(std::uint64_t events, std::uint64_t ticks) = 0;
};

}  // namespace puno::sim
