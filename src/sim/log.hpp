// Lightweight category-gated trace logging.
//
// Tracing is off by default and costs one branch per call site when
// disabled. Enable categories programmatically (TraceLog::enable) or through
// the PUNO_TRACE environment variable, e.g. PUNO_TRACE=coherence,htm.
#pragma once

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string_view>

#include "sim/types.hpp"

namespace puno::sim {

enum class TraceCat : std::uint32_t {
  kKernel = 1u << 0,
  kNoc = 1u << 1,
  kCoherence = 1u << 2,
  kHtm = 1u << 3,
  kPuno = 1u << 4,
  kWorkload = 1u << 5,
};

class TraceLog {
 public:
  static TraceLog& instance() {
    static TraceLog log;
    return log;
  }

  void enable(TraceCat cat) noexcept {
    mask_ |= static_cast<std::uint32_t>(cat);
  }
  void disable_all() noexcept { mask_ = 0; }
  [[nodiscard]] bool enabled(TraceCat cat) const noexcept {
    return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
  }

  /// Parses a comma-separated category list ("noc,htm,all").
  void enable_from_spec(std::string_view spec);

  template <typename... Args>
  void trace(TraceCat cat, Cycle now, Args&&... args) {
    if (!enabled(cat)) return;
    std::ostringstream os;
    os << "[" << now << "] ";
    (os << ... << args);
    std::clog << os.str() << '\n';
  }

 private:
  TraceLog();
  std::uint32_t mask_ = 0;
};

#define PUNO_TRACE(cat, now, ...)                                      \
  do {                                                                 \
    auto& puno_log_ = ::puno::sim::TraceLog::instance();               \
    if (puno_log_.enabled(cat)) puno_log_.trace(cat, now, __VA_ARGS__); \
  } while (false)

}  // namespace puno::sim
