// System configuration (the paper's Table II, plus the knobs of every
// mechanism evaluated in Section IV).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "sim/types.hpp"

namespace puno {

// clang-format off
/// X-macro table of contention-management schemes: X(enumerator, canonical
/// display name, short CLI spelling). The paper's four mechanisms
/// (Section IV.A) plus two extension schemes behind the same ConflictManager
/// interface. One table generates the enum, kAllSchemes, to_string and
/// scheme_from_string so the spellings can never drift apart.
#define PUNO_SCHEME_LIST(X)                                                   \
  /* Eager HTM, fixed 20-cycle retry backoff. */                              \
  X(kBaseline, "Baseline", "baseline")                                        \
  /* Randomized linear backoff on abort [Scherer&Scott]. */                   \
  X(kRandomBackoff, "Backoff", "backoff")                                     \
  /* Read-modify-write predictor [Bobba et al.]. */                           \
  X(kRmwPred, "RMW-Pred", "rmw")                                              \
  /* Predictive Unicast and Notification (this paper). */                     \
  X(kPuno, "PUNO", "puno")                                                    \
  /* TSX-style requester-wins, serialized fallback after bounded retries. */  \
  X(kRequesterWins, "RequesterWins", "reqwins")                               \
  /* FORTH-style capacity-bounded sets; overflow aborts and serializes. */    \
  X(kLimitedSet, "LimitedSet", "limited")
// clang-format on

/// Which contention-management mechanism the HTM runs (the ConflictManager
/// the registry builds for each node; see src/htm/conflict_manager.hpp).
enum class Scheme : std::uint8_t {
#define PUNO_SCHEME_ENUM(name, canonical, alias) name,
  PUNO_SCHEME_LIST(PUNO_SCHEME_ENUM)
#undef PUNO_SCHEME_ENUM
};

/// Every scheme, in enum order — what "--schemes all" expands to.
inline constexpr Scheme kAllSchemes[] = {
#define PUNO_SCHEME_VALUE(name, canonical, alias) Scheme::name,
    PUNO_SCHEME_LIST(PUNO_SCHEME_VALUE)
#undef PUNO_SCHEME_VALUE
};

[[nodiscard]] constexpr const char* to_string(Scheme s) noexcept {
  switch (s) {
#define PUNO_SCHEME_TO_STRING(name, canonical, alias) \
  case Scheme::name:                                  \
    return canonical;
    PUNO_SCHEME_LIST(PUNO_SCHEME_TO_STRING)
#undef PUNO_SCHEME_TO_STRING
  }
  return "?";
}

/// Inverse of to_string, also accepting the short lower-case CLI spellings
/// ("baseline", "backoff", ..., "reqwins", "limited") and the legacy
/// "rmw-pred". Round-trips: scheme_from_string(to_string(s)) == s for every
/// enum value. Returns nullopt for anything else.
[[nodiscard]] constexpr std::optional<Scheme> scheme_from_string(
    std::string_view s) noexcept {
#define PUNO_SCHEME_FROM_STRING(name, canonical, alias) \
  if (s == canonical || s == alias) return Scheme::name;
  PUNO_SCHEME_LIST(PUNO_SCHEME_FROM_STRING)
#undef PUNO_SCHEME_FROM_STRING
  if (s == "rmw-pred") return Scheme::kRmwPred;  // legacy spelling
  return std::nullopt;
}

struct NocConfig {
  std::uint32_t mesh_width = 4;      ///< 4x4 mesh of 16 routers (Table II).
  /// Three virtual networks (requests, forwards, responses) prevent
  /// protocol-level deadlock, as in GEMS/Garnet configurations.
  std::uint32_t num_vnets = 3;
  std::uint32_t vcs_per_vnet = 2;    ///< Virtual channels per vnet per port.
  std::uint32_t vc_depth = 4;        ///< Flit buffer depth per VC.
  std::uint32_t pipeline_stages = 4; ///< 4-stage router (Table II).
  std::uint32_t link_latency = 1;    ///< Cycles per inter-router hop.
  std::uint32_t flit_bytes = 16;     ///< Channel width; 64B line = 4 body flits.
  /// Validation knob: tick every router/NI every cycle (the pre-active-set
  /// reference schedule) instead of only the registered active set. Produces
  /// bit-identical results by construction; the equivalence tests flip it to
  /// prove exactly that. Off by default — the active-set path is the fast one.
  bool always_tick = false;

  [[nodiscard]] std::uint32_t total_vcs() const noexcept {
    return num_vnets * vcs_per_vnet;
  }
};

struct CacheConfig {
  std::uint32_t block_bytes = 64;

  std::uint32_t l1_size_bytes = 32 * 1024;  ///< 32 KB private L1.
  std::uint32_t l1_assoc = 4;
  std::uint32_t l1_latency = 1;             ///< 1-cycle hit (Table II).

  std::uint64_t l2_size_bytes = 8ull * 1024 * 1024;  ///< 8 MB shared NUCA L2.
  std::uint32_t l2_assoc = 8;
  std::uint32_t l2_latency = 20;            ///< 20-cycle bank access.

  std::uint32_t memory_latency = 200;       ///< 200-cycle DRAM (Table II).
  std::uint32_t num_memory_controllers = 4;
};

struct HtmConfig {
  /// Baseline nacked-requester retry backoff (Section IV.A: fixed 20 cycles).
  std::uint32_t fixed_backoff = 20;
  /// Randomized linear backoff: slot width; window grows linearly with the
  /// number of aborts of the restarting transaction.
  std::uint32_t backoff_slot = 40;
  std::uint32_t backoff_max_slots = 32;
  /// Cycles to restore pre-transaction state from the hardware abort buffer
  /// (FASTM-style fast abort recovery).
  std::uint32_t abort_recovery_latency = 10;
  /// RMW predictor capacity: up to 256 load instructions per node.
  std::uint32_t rmw_entries = 256;
  /// RequesterWins: conflict aborts one attempt tolerates before its retry
  /// takes the serialized fallback path (TSX spirit: a few speculative
  /// tries, then a lock-like irrevocable run).
  std::uint32_t requester_wins_max_retries = 4;
  /// LimitedSet: architectural read/write set capacities in blocks. A
  /// speculative attempt that would exceed either aborts with kOverflow and
  /// retries serialized with unbounded sets.
  std::uint32_t limited_read_entries = 48;
  std::uint32_t limited_write_entries = 24;
};

struct PunoConfig {
  std::uint32_t pbuffer_entries = 16;  ///< One per node (Table II).
  std::uint32_t txlb_entries = 32;     ///< Static transactions per node.
  /// Clamp bounds for the adaptive rollover-counter timeout period.
  std::uint32_t min_timeout = 64;
  std::uint32_t max_timeout = 1u << 16;
  /// Validity threshold: only priorities with validity counter > 1 are used
  /// for unicast prediction (Section III.B).
  std::uint8_t validity_threshold = 1;
  /// Ablation switches: PUNO = predictive unicast + notification; disabling
  /// one isolates the other's contribution.
  bool enable_unicast = true;
  bool enable_notification = true;
  /// Cap on the notification-guided backoff (0 = uncapped, the paper's
  /// formula). Exposed for the sensitivity ablation.
  Cycle max_notified_backoff = 0;
  /// The rollover-counter period as a fraction of the observed average
  /// transaction length (Section III.B says the period is "determined
  /// dynamically based on the average transaction length" without giving
  /// the factor; smaller = faster staleness decay = fewer but more accurate
  /// unicasts).
  double timeout_fraction = 1.0;
  /// EXTENSION (paper Section VI, future work): when a transaction that
  /// nacked requesters commits or aborts, it sends those requesters a
  /// single-flit retry hint so they stop waiting on a (possibly stale)
  /// notification estimate. Off by default: plain PUNO.
  bool enable_commit_hint = false;
  /// Waiting requesters remembered per node for commit hints.
  std::uint32_t commit_hint_entries = 8;
  /// Minimum sharer count for unicast prediction. With a single sharer,
  /// false aborting cannot occur (a lone sharer either nacks — and then no
  /// one was aborted — or grants and the request succeeds), so a unicast
  /// can only add a wasted round trip. Default 2.
  std::uint32_t unicast_min_sharers = 2;
};

/// Top-level simulated-system configuration.
struct SystemConfig {
  std::uint32_t num_nodes = 16;  ///< 16 cores (Table II).
  NocConfig noc;
  CacheConfig cache;
  HtmConfig htm;
  PunoConfig puno;
  Scheme scheme = Scheme::kBaseline;
  std::uint64_t seed = 1;

  [[nodiscard]] BlockAddr block_of(Addr a) const noexcept {
    return a & ~static_cast<Addr>(cache.block_bytes - 1);
  }
  /// Static NUCA home-node mapping: block address interleaved across nodes.
  [[nodiscard]] NodeId home_of(BlockAddr b) const noexcept {
    return static_cast<NodeId>((b / cache.block_bytes) % num_nodes);
  }
};

}  // namespace puno
