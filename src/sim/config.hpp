// System configuration (the paper's Table II, plus the knobs of every
// mechanism evaluated in Section IV).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace puno {

// clang-format off
/// X-macro table of contention-management schemes: X(enumerator, canonical
/// display name, short CLI spelling). The paper's four mechanisms
/// (Section IV.A) plus two extension schemes behind the same ConflictManager
/// interface. One table generates the enum, kAllSchemes, to_string and
/// scheme_from_string so the spellings can never drift apart.
#define PUNO_SCHEME_LIST(X)                                                   \
  /* Eager HTM, fixed 20-cycle retry backoff. */                              \
  X(kBaseline, "Baseline", "baseline")                                        \
  /* Randomized linear backoff on abort [Scherer&Scott]. */                   \
  X(kRandomBackoff, "Backoff", "backoff")                                     \
  /* Read-modify-write predictor [Bobba et al.]. */                           \
  X(kRmwPred, "RMW-Pred", "rmw")                                              \
  /* Predictive Unicast and Notification (this paper). */                     \
  X(kPuno, "PUNO", "puno")                                                    \
  /* TSX-style requester-wins, serialized fallback after bounded retries. */  \
  X(kRequesterWins, "RequesterWins", "reqwins")                               \
  /* FORTH-style capacity-bounded sets; overflow aborts and serializes. */    \
  X(kLimitedSet, "LimitedSet", "limited")
// clang-format on

/// Which contention-management mechanism the HTM runs (the ConflictManager
/// the registry builds for each node; see src/htm/conflict_manager.hpp).
enum class Scheme : std::uint8_t {
#define PUNO_SCHEME_ENUM(name, canonical, alias) name,
  PUNO_SCHEME_LIST(PUNO_SCHEME_ENUM)
#undef PUNO_SCHEME_ENUM
};

/// Every scheme, in enum order — what "--schemes all" expands to.
inline constexpr Scheme kAllSchemes[] = {
#define PUNO_SCHEME_VALUE(name, canonical, alias) Scheme::name,
    PUNO_SCHEME_LIST(PUNO_SCHEME_VALUE)
#undef PUNO_SCHEME_VALUE
};

[[nodiscard]] constexpr const char* to_string(Scheme s) noexcept {
  switch (s) {
#define PUNO_SCHEME_TO_STRING(name, canonical, alias) \
  case Scheme::name:                                  \
    return canonical;
    PUNO_SCHEME_LIST(PUNO_SCHEME_TO_STRING)
#undef PUNO_SCHEME_TO_STRING
  }
  return "?";
}

/// Inverse of to_string, also accepting the short lower-case CLI spellings
/// ("baseline", "backoff", ..., "reqwins", "limited") and the legacy
/// "rmw-pred". Round-trips: scheme_from_string(to_string(s)) == s for every
/// enum value. Returns nullopt for anything else.
[[nodiscard]] constexpr std::optional<Scheme> scheme_from_string(
    std::string_view s) noexcept {
#define PUNO_SCHEME_FROM_STRING(name, canonical, alias) \
  if (s == canonical || s == alias) return Scheme::name;
  PUNO_SCHEME_LIST(PUNO_SCHEME_FROM_STRING)
#undef PUNO_SCHEME_FROM_STRING
  if (s == "rmw-pred") return Scheme::kRmwPred;  // legacy spelling
  return std::nullopt;
}

struct NocConfig {
  /// Mesh X dimension (routers per row). The paper's Table II system is the
  /// default 4x4 = 16 routers; any width x height mesh is configurable.
  std::uint32_t mesh_width = 4;
  /// Mesh Y dimension. 0 (the default) means "square": height = mesh_width.
  std::uint32_t mesh_height = 0;
  /// Three virtual networks (requests, forwards, responses) prevent
  /// protocol-level deadlock, as in GEMS/Garnet configurations.
  std::uint32_t num_vnets = 3;
  std::uint32_t vcs_per_vnet = 2;    ///< Virtual channels per vnet per port.
  std::uint32_t vc_depth = 4;        ///< Flit buffer depth per VC.
  std::uint32_t pipeline_stages = 4; ///< 4-stage router (Table II).
  std::uint32_t link_latency = 1;    ///< Cycles per inter-router hop.
  std::uint32_t flit_bytes = 16;     ///< Channel width; 64B line = 4 body flits.
  /// Validation knob: tick every router/NI every cycle (the pre-active-set
  /// reference schedule) instead of only the registered active set. Produces
  /// bit-identical results by construction; the equivalence tests flip it to
  /// prove exactly that. Off by default — the active-set path is the fast one.
  bool always_tick = false;

  [[nodiscard]] std::uint32_t total_vcs() const noexcept {
    return num_vnets * vcs_per_vnet;
  }
  /// Mesh Y dimension with the square default applied.
  [[nodiscard]] std::uint32_t rows() const noexcept {
    return mesh_height == 0 ? mesh_width : mesh_height;
  }
};

struct CacheConfig {
  std::uint32_t block_bytes = 64;

  std::uint32_t l1_size_bytes = 32 * 1024;  ///< 32 KB private L1.
  std::uint32_t l1_assoc = 4;
  std::uint32_t l1_latency = 1;             ///< 1-cycle hit (Table II).

  std::uint64_t l2_size_bytes = 8ull * 1024 * 1024;  ///< 8 MB shared NUCA L2.
  std::uint32_t l2_assoc = 8;
  std::uint32_t l2_latency = 20;            ///< 20-cycle bank access.
  /// Shared-L2 bank count; each home directory is co-located with one bank
  /// of l2_size_bytes / banks. 0 (default) = one bank per home directory
  /// (i.e. per directory shard, which defaults to per node).
  std::uint32_t l2_banks = 0;

  std::uint32_t memory_latency = 200;       ///< 200-cycle DRAM (Table II).
  std::uint32_t num_memory_controllers = 4;
};

/// How a directory entry encodes its sharer list (coherence::SharerSet).
/// Spellings are the CLI/grid values of "dir.sharer_rep".
enum class SharerRep : std::uint8_t {
  kFull = 0,     ///< Exact bit per node (the seed behaviour; default).
  kCoarse = 1,   ///< One bit per region of dir.coarse_region nodes
                 ///< (over-approximate; spurious invalidations are acked).
  kLimited = 2,  ///< dir.limited_pointers exact pointers, then overflow to
                 ///< broadcast (every node treated as a sharer).
};

[[nodiscard]] constexpr const char* to_string(SharerRep r) noexcept {
  switch (r) {
    case SharerRep::kFull: return "full";
    case SharerRep::kCoarse: return "coarse";
    case SharerRep::kLimited: return "limited";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<SharerRep> sharer_rep_from_string(
    std::string_view s) noexcept {
  if (s == "full") return SharerRep::kFull;
  if (s == "coarse") return SharerRep::kCoarse;
  if (s == "limited") return SharerRep::kLimited;
  return std::nullopt;
}

/// Directory organization knobs (scale axis: docs/SCALING.md).
struct DirectoryConfig {
  /// Sharer-list encoding of every directory entry.
  SharerRep sharer_rep = SharerRep::kFull;
  /// kCoarse: consecutive nodes covered per coarse bit.
  std::uint32_t coarse_region = 4;
  /// kLimited: exact node pointers per entry before overflow-to-broadcast
  /// (1..16).
  std::uint32_t limited_pointers = 4;
  /// Home directories the address space is interleaved over. 0 (default) =
  /// every node is a home. Must divide num_nodes; homes are spaced evenly
  /// across the id space (stride num_nodes / shards).
  std::uint32_t shards = 0;
};

struct HtmConfig {
  /// Baseline nacked-requester retry backoff (Section IV.A: fixed 20 cycles).
  std::uint32_t fixed_backoff = 20;
  /// Randomized linear backoff: slot width; window grows linearly with the
  /// number of aborts of the restarting transaction.
  std::uint32_t backoff_slot = 40;
  std::uint32_t backoff_max_slots = 32;
  /// Cycles to restore pre-transaction state from the hardware abort buffer
  /// (FASTM-style fast abort recovery).
  std::uint32_t abort_recovery_latency = 10;
  /// RMW predictor capacity: up to 256 load instructions per node.
  std::uint32_t rmw_entries = 256;
  /// RequesterWins: conflict aborts one attempt tolerates before its retry
  /// takes the serialized fallback path (TSX spirit: a few speculative
  /// tries, then a lock-like irrevocable run).
  std::uint32_t requester_wins_max_retries = 4;
  /// LimitedSet: architectural read/write set capacities in blocks. A
  /// speculative attempt that would exceed either aborts with kOverflow and
  /// retries serialized with unbounded sets.
  std::uint32_t limited_read_entries = 48;
  std::uint32_t limited_write_entries = 24;
};

/// Arrival process driven by the open-loop traffic engine (src/traffic).
/// Spellings are the CLI/grid values of "traffic.arrival".
enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,  ///< Memoryless: exponential inter-arrival times.
  kOnOff = 1,    ///< Markov-style on/off bursts over a square-wave schedule.
  kDiurnal = 2,  ///< Sinusoidal rate modulation (compressed day/night).
};

[[nodiscard]] constexpr const char* to_string(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kOnOff: return "onoff";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<ArrivalKind> arrival_kind_from_string(
    std::string_view s) noexcept {
  if (s == "poisson") return ArrivalKind::kPoisson;
  if (s == "onoff") return ArrivalKind::kOnOff;
  if (s == "diurnal") return ArrivalKind::kDiurnal;
  return std::nullopt;
}

/// How the traffic engine maps logical keys onto cache blocks — the
/// memory-placement adversary (cache-line co-location / false sharing).
/// Spellings are the CLI/grid values of "traffic.placement".
enum class PlacementMode : std::uint8_t {
  kSpread = 0,   ///< One key per block: co-location forbidden.
  kPack = 1,     ///< keys_per_block *adjacent* keys share a block.
  kShuffle = 2,  ///< keys_per_block *unrelated* keys share a block (a
                 ///< deterministic permutation packs arbitrary keys
                 ///< together, like an adversarial allocator).
};

[[nodiscard]] constexpr const char* to_string(PlacementMode m) noexcept {
  switch (m) {
    case PlacementMode::kSpread: return "spread";
    case PlacementMode::kPack: return "pack";
    case PlacementMode::kShuffle: return "shuffle";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<PlacementMode>
placement_mode_from_string(std::string_view s) noexcept {
  if (s == "spread") return PlacementMode::kSpread;
  if (s == "pack") return PlacementMode::kPack;
  if (s == "shuffle") return PlacementMode::kShuffle;
  return std::nullopt;
}

/// Knobs of the open-loop production-traffic engine (docs/TRAFFIC.md).
/// Only the traffic-kernel workloads ("traffic-*") read these; the STAMP
/// profiles ignore them. Every field flows through the grid setters
/// ("traffic.*" keys) and the content-addressed result-cache key.
struct TrafficConfig {
  // --- workload volume -------------------------------------------------
  /// Open-loop arrival quota per core (ExperimentParams::scale multiplies
  /// it). The run ends when every core has drained its admitted arrivals.
  std::uint32_t arrivals_per_node = 512;

  // --- keyspace and skew ----------------------------------------------
  /// Logical keys in the structure under test (can far exceed cache sizes).
  std::uint64_t keys = 65536;
  /// Zipfian skew parameter theta (0 = uniform, 0.99 = YCSB default,
  /// >1 = extreme hot-key concentration). Ignored when hot_keys > 0.
  double zipf_theta = 0.99;
  /// When > 0, use a hot-set sampler instead of Zipf: hot_frac of accesses
  /// land uniformly in a hot set of this many keys.
  std::uint32_t hot_keys = 0;
  double hot_frac = 0.9;
  /// Hot-set migration period in cycles of *arrival time* (0 = static).
  /// Every period the skewed region rotates to a different key range, the
  /// phase-shifting contention a cache warmed on the old hot set mispredicts.
  std::uint64_t phase_cycles = 0;

  // --- arrival process -------------------------------------------------
  ArrivalKind arrival = ArrivalKind::kPoisson;
  /// Mean offered load per core, arrivals per 1000 cycles. (Integer so the
  /// grid sweeps cleanly; 20 = one arrival per 50 cycles per core.)
  std::uint32_t rate_per_kcycle = 20;
  /// On/off bursts: fraction of each burst_period spent "on", and the rate
  /// multiplier while on ("off" rate is scaled down to keep the mean).
  double burst_on_frac = 0.2;
  double burst_boost = 8.0;
  std::uint64_t burst_period = 50'000;
  /// Diurnal: sinusoidal modulation amplitude in [0,1) over diurnal_period.
  double diurnal_amplitude = 0.8;
  std::uint64_t diurnal_period = 200'000;

  // --- open-loop queueing ----------------------------------------------
  /// Bounded per-core arrival queue; arrivals past capacity are dropped
  /// (counted as traffic.dropped — the load-shedding signal).
  std::uint32_t queue_capacity = 64;

  // --- placement adversary ---------------------------------------------
  PlacementMode placement = PlacementMode::kSpread;
  /// Logical keys co-located per cache block under pack/shuffle (>= 2
  /// manufactures false sharing the conflict detector cannot distinguish).
  std::uint32_t keys_per_block = 4;

  // --- kernel shape ----------------------------------------------------
  /// Fraction of map/set operations that update (write) vs look up.
  double update_frac = 0.5;
  /// Distinct counter blocks for the counter kernel (small = hotter).
  std::uint32_t counter_blocks = 8;
  /// Per-op compute think time bounds (cycles).
  std::uint32_t op_think_min = 1;
  std::uint32_t op_think_max = 4;
};

struct PunoConfig {
  /// P-Buffer entries per directory (Table II: 16, one per node of the
  /// paper's CMP). On larger meshes the buffer is capacity-bounded: it
  /// tracks at most this many nodes and evicts deterministically under
  /// pressure (puno.pbuffer_evictions counts that). 0 = one entry per node.
  std::uint32_t pbuffer_entries = 16;
  std::uint32_t txlb_entries = 32;     ///< Static transactions per node.
  /// Clamp bounds for the adaptive rollover-counter timeout period.
  std::uint32_t min_timeout = 64;
  std::uint32_t max_timeout = 1u << 16;
  /// Validity threshold: only priorities with validity counter > 1 are used
  /// for unicast prediction (Section III.B).
  std::uint8_t validity_threshold = 1;
  /// Ablation switches: PUNO = predictive unicast + notification; disabling
  /// one isolates the other's contribution.
  bool enable_unicast = true;
  bool enable_notification = true;
  /// Cap on the notification-guided backoff (0 = uncapped, the paper's
  /// formula). Exposed for the sensitivity ablation.
  Cycle max_notified_backoff = 0;
  /// The rollover-counter period as a fraction of the observed average
  /// transaction length (Section III.B says the period is "determined
  /// dynamically based on the average transaction length" without giving
  /// the factor; smaller = faster staleness decay = fewer but more accurate
  /// unicasts).
  double timeout_fraction = 1.0;
  /// EXTENSION (paper Section VI, future work): when a transaction that
  /// nacked requesters commits or aborts, it sends those requesters a
  /// single-flit retry hint so they stop waiting on a (possibly stale)
  /// notification estimate. Off by default: plain PUNO.
  bool enable_commit_hint = false;
  /// Waiting requesters remembered per node for commit hints.
  std::uint32_t commit_hint_entries = 8;
  /// Minimum sharer count for unicast prediction. With a single sharer,
  /// false aborting cannot occur (a lone sharer either nacks — and then no
  /// one was aborted — or grants and the request succeeds), so a unicast
  /// can only add a wasted round trip. Default 2.
  std::uint32_t unicast_min_sharers = 2;
};

/// Hard ceiling on num_nodes (keeps NodeId in 16 bits with headroom and
/// bounds validation loops; the scale study tops out at 1024).
inline constexpr std::uint32_t kMaxNodes = 4096;

/// Top-level simulated-system configuration.
struct SystemConfig {
  std::uint32_t num_nodes = 16;  ///< Cores/tiles (Table II: 16).
  NocConfig noc;
  CacheConfig cache;
  DirectoryConfig dir;
  HtmConfig htm;
  PunoConfig puno;
  TrafficConfig traffic;
  Scheme scheme = Scheme::kBaseline;
  std::uint64_t seed = 1;

  [[nodiscard]] BlockAddr block_of(Addr a) const noexcept {
    return a & ~static_cast<Addr>(cache.block_bytes - 1);
  }
  /// Home directories with the "every node" default applied.
  [[nodiscard]] std::uint32_t dir_shards() const noexcept {
    return dir.shards == 0 ? num_nodes : dir.shards;
  }
  /// L2 bank count with the "one per home directory" default applied.
  [[nodiscard]] std::uint32_t effective_l2_banks() const noexcept {
    return cache.l2_banks == 0 ? dir_shards() : cache.l2_banks;
  }
  /// P-Buffer capacity with the "one entry per node" auto value applied.
  [[nodiscard]] std::uint32_t effective_pbuffer_entries() const noexcept {
    return puno.pbuffer_entries == 0 ? num_nodes : puno.pbuffer_entries;
  }
  /// Static NUCA home-node mapping: block address interleaved across the
  /// home directories (every node when dir.shards == 0; otherwise shards
  /// homes spaced evenly through the node-id space).
  [[nodiscard]] NodeId home_of(BlockAddr b) const noexcept {
    const std::uint64_t line = b / cache.block_bytes;
    const std::uint32_t shards = dir_shards();
    if (shards == num_nodes) return static_cast<NodeId>(line % num_nodes);
    return static_cast<NodeId>((line % shards) * (num_nodes / shards));
  }
};

/// Structural validation of a SystemConfig. Returns a human-readable
/// description of the first problem found, or nullopt if the configuration
/// is runnable. arch::Cmp calls this at construction and throws on error;
/// the CLIs call it up front so a bad --set fails before any simulation.
[[nodiscard]] inline std::optional<std::string> validate(
    const SystemConfig& cfg) {
  const auto rows = cfg.noc.rows();
  if (cfg.num_nodes < 2 || cfg.num_nodes > kMaxNodes)
    return std::string("num_nodes must be in [2, ") +
           std::to_string(kMaxNodes) + "]";
  if (cfg.noc.mesh_width == 0) return std::string("noc.mesh_width must be > 0");
  if (cfg.num_nodes != cfg.noc.mesh_width * rows)
    return "num_nodes (" + std::to_string(cfg.num_nodes) +
           ") must equal mesh_width x mesh_height (" +
           std::to_string(cfg.noc.mesh_width) + "x" + std::to_string(rows) +
           ")";
  if (cfg.cache.block_bytes == 0 ||
      (cfg.cache.block_bytes & (cfg.cache.block_bytes - 1)) != 0)
    return std::string("cache.block_bytes must be a power of two");
  if (cfg.noc.flit_bytes == 0 || cfg.noc.vc_depth == 0 ||
      cfg.noc.vcs_per_vnet == 0 || cfg.noc.num_vnets < 3)
    return std::string(
        "noc.flit_bytes/vc_depth/vcs_per_vnet must be > 0 and num_vnets >= 3");
  if (cfg.dir.shards != 0 && (cfg.dir.shards > cfg.num_nodes ||
                              cfg.num_nodes % cfg.dir.shards != 0))
    return std::string("dir.shards must divide num_nodes");
  if (cfg.cache.l2_banks != 0 && (cfg.cache.l2_banks > cfg.num_nodes ||
                                  cfg.num_nodes % cfg.cache.l2_banks != 0))
    return std::string("cache.l2_banks must divide num_nodes");
  const std::uint64_t bank_bytes =
      cfg.cache.l2_size_bytes / cfg.effective_l2_banks();
  if (bank_bytes <
      static_cast<std::uint64_t>(cfg.cache.block_bytes) * cfg.cache.l2_assoc)
    return std::string("cache.l2_size_bytes too small for ") +
           std::to_string(cfg.effective_l2_banks()) +
           " banks (each needs >= block_bytes * l2_assoc)";
  if (cfg.dir.coarse_region == 0 || cfg.dir.coarse_region > cfg.num_nodes)
    return std::string("dir.coarse_region must be in [1, num_nodes]");
  if (cfg.dir.limited_pointers == 0 || cfg.dir.limited_pointers > 16)
    return std::string("dir.limited_pointers must be in [1, 16]");
  if (cfg.puno.txlb_entries == 0)
    return std::string("puno.txlb_entries must be > 0");
  return std::nullopt;
}

}  // namespace puno
