#include "sim/log.hpp"

#include <cstdlib>

namespace puno::sim {

TraceLog::TraceLog() {
  if (const char* spec = std::getenv("PUNO_TRACE")) {
    enable_from_spec(spec);
  }
}

void TraceLog::enable_from_spec(std::string_view spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view tok =
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    if (tok == "kernel") enable(TraceCat::kKernel);
    else if (tok == "noc") enable(TraceCat::kNoc);
    else if (tok == "coherence") enable(TraceCat::kCoherence);
    else if (tok == "htm") enable(TraceCat::kHtm);
    else if (tok == "puno") enable(TraceCat::kPuno);
    else if (tok == "workload") enable(TraceCat::kWorkload);
    else if (tok == "all") {
      enable(TraceCat::kKernel);
      enable(TraceCat::kNoc);
      enable(TraceCat::kCoherence);
      enable(TraceCat::kHtm);
      enable(TraceCat::kPuno);
      enable(TraceCat::kWorkload);
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
}

}  // namespace puno::sim
