#include "sim/jsonio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace puno::sim::jsonio {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_double(std::ostream& out, double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) {
    out << 0;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void skip_ws(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
}

bool consume(std::string_view& s, char c) {
  skip_ws(s);
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

bool parse_string(std::string_view& s, std::string& out) {
  if (!consume(s, '"')) return false;
  out.clear();
  while (!s.empty()) {
    const char c = s.front();
    s.remove_prefix(1);
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (s.empty()) return false;
    const char esc = s.front();
    s.remove_prefix(1);
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (s.size() < 4) return false;
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = s.front();
          s.remove_prefix(1);
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // BMP code points only (the writers never emit surrogate pairs).
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

namespace {

[[nodiscard]] bool parse_number_token(std::string_view& s, std::string& tok) {
  skip_ws(s);
  tok.clear();
  while (!s.empty()) {
    const char c = s.front();
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      tok += c;
      s.remove_prefix(1);
    } else {
      break;
    }
  }
  return !tok.empty();
}

}  // namespace

bool parse_double(std::string_view& s, double& v) {
  std::string tok;
  if (!parse_number_token(s, tok)) return false;
  char* end = nullptr;
  errno = 0;
  v = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0' && errno == 0;
}

bool parse_u64(std::string_view& s, std::uint64_t& v) {
  std::string tok;
  if (!parse_number_token(s, tok)) return false;
  char* end = nullptr;
  errno = 0;
  v = std::strtoull(tok.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && errno == 0) return true;
  // Tolerate a float spelling (e.g. "1e3") for an integer field.
  errno = 0;
  const double d = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno != 0 || d < 0) return false;
  v = static_cast<std::uint64_t>(d);
  return true;
}

bool parse_bool(std::string_view& s, bool& v) {
  skip_ws(s);
  if (s.substr(0, 4) == "true") {
    v = true;
    s.remove_prefix(4);
    return true;
  }
  if (s.substr(0, 5) == "false") {
    v = false;
    s.remove_prefix(5);
    return true;
  }
  return false;
}

bool parse_double_array(std::string_view& s, std::vector<double>& out) {
  if (!consume(s, '[')) return false;
  out.clear();
  skip_ws(s);
  if (consume(s, ']')) return true;
  for (;;) {
    double v = 0;
    if (!parse_double(s, v)) return false;
    out.push_back(v);
    if (consume(s, ',')) continue;
    return consume(s, ']');
  }
}

bool parse_u64_array(std::string_view& s, std::vector<std::uint64_t>& out) {
  if (!consume(s, '[')) return false;
  out.clear();
  skip_ws(s);
  if (consume(s, ']')) return true;
  for (;;) {
    std::uint64_t v = 0;
    if (!parse_u64(s, v)) return false;
    out.push_back(v);
    if (consume(s, ',')) continue;
    return consume(s, ']');
  }
}

bool skip_value(std::string_view& s) {
  skip_ws(s);
  if (s.empty()) return false;
  const char c = s.front();
  if (c == '"') {
    std::string dummy;
    return parse_string(s, dummy);
  }
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    s.remove_prefix(1);
    skip_ws(s);
    if (consume(s, close)) return true;
    for (;;) {
      if (c == '{') {
        std::string key;
        if (!parse_string(s, key)) return false;
        if (!consume(s, ':')) return false;
      }
      if (!skip_value(s)) return false;
      if (consume(s, ',')) continue;
      return consume(s, close);
    }
  }
  if (c == 't' || c == 'f') {
    bool dummy = false;
    return parse_bool(s, dummy);
  }
  if (s.substr(0, 4) == "null") {
    s.remove_prefix(4);
    return true;
  }
  std::string tok;
  return parse_number_token(s, tok);
}

}  // namespace puno::sim::jsonio
