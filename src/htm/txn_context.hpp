// Per-node transaction context: the HTM's architectural state.
//
// Models a log-based, eager-versioning / eager-conflict-detection HTM in the
// LogTM family with FASTM-style fast abort recovery (Section IV.A):
//
//   * read/write sets at cache-block granularity;
//   * the time-based conflict-resolution policy [Rajwar & Goodman]: each
//     transaction carries a timestamp, older (smaller) wins, and the
//     timestamp is retained across aborts so every transaction eventually
//     becomes the oldest and commits (starvation freedom);
//   * the conflict rule of Section II.B: an incoming request that touches
//     the local sets is NACKed if the local transaction is older, otherwise
//     the local transaction aborts itself and grants;
//   * scheme-dependent contention management, delegated to the node's
//     ConflictManager (src/htm/conflict_manager.hpp): resolution, backoff,
//     timestamp and admission policy all come from the scheme registry.
//
// It also owns the false-abort accounting that Figures 2 and 3 report: a
// transactional GETX that collected at least one NACK plus at least one
// "I aborted" ACK is a false-aborting request, and every such abort was
// unnecessary.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/hooks.hpp"
#include "htm/conflict_manager.hpp"
#include "htm/rmw_predictor.hpp"
#include "htm/txlb.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"

namespace puno::coherence {
class L1Controller;
}

namespace puno::htm {

enum class AbortCause : std::uint8_t {
  kRemoteWrite,  ///< Invalidation from a remote transactional GETX.
  kRemoteRead,   ///< Forwarded GETS hit our write set.
  kOverflow,     ///< L1 set conflict forced a transactional line out.
};

class TxnContext final : public coherence::TxnHooks {
 public:
  TxnContext(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node,
             Cycle avg_c2c_latency);

  TxnContext(const TxnContext&) = delete;
  TxnContext& operator=(const TxnContext&) = delete;

  void attach_l1(coherence::L1Controller* l1) noexcept { l1_ = l1; }

  /// Commit-hint extension wiring: callback that delivers a RetryHint for
  /// `addr` to a waiting requester node (see PunoConfig::enable_commit_hint)
  using HintSender = std::function<void(NodeId, BlockAddr)>;
  void set_hint_sender(HintSender sender) {
    send_hint_ = std::move(sender);
  }

  // --- Core-facing transaction interface ---

  /// Starts (or restarts after an abort) a dynamic instance of static
  /// transaction `id`. The timestamp is fresh for a first attempt and
  /// retained across aborts of the same instance.
  void begin(StaticTxId id);

  /// Commits the running transaction: clears the sets, trains the TxLB,
  /// accumulates good transactional cycles.
  void commit();

  [[nodiscard]] bool in_txn() const noexcept { return in_txn_; }
  /// True if the running attempt has been aborted (by a remote conflict or
  /// overflow) and the core must roll back to begin().
  [[nodiscard]] bool aborted() const noexcept { return aborted_; }
  [[nodiscard]] std::uint32_t attempt_aborts() const noexcept {
    return attempt_aborts_;
  }

  // --- per-tile telemetry counters (cumulative over the run) ---
  // Plain members, never registered in the stats registry, so stats dumps
  // stay byte-identical whether or not a sampler reads them. The spatial
  // telemetry channels (docs/TELEMETRY.md) difference these per window.
  /// Aborts suffered by this tile's core (victim-attributed).
  [[nodiscard]] std::uint64_t tile_aborts() const noexcept {
    return tile_aborts_;
  }
  /// False-abort events this tile's core *caused* as the failed requester
  /// (requester-attributed, matching htm.false_abort_events).
  [[nodiscard]] std::uint64_t tile_false_aborts() const noexcept {
    return tile_false_aborts_;
  }

  /// Scheme-dependent delay before re-running an aborted transaction,
  /// *excluding* the fixed abort-recovery latency (randomized linear backoff
  /// for the Backoff scheme [17], zero otherwise).
  [[nodiscard]] Cycle restart_backoff();

  /// Records a completed transactional access into the read/write set and
  /// trains the RMW predictor.
  void on_access(Addr addr, bool write, std::uint64_t pc);

  /// RMW predictor consultation: should the load at `pc` fetch exclusive?
  [[nodiscard]] bool should_load_exclusive(std::uint64_t pc) const;

  /// The scheme policy object driving this context (from the registry).
  [[nodiscard]] const ConflictManager& conflict_manager() const noexcept {
    return *mgr_;
  }

  // --- coherence::TxnHooks ---
  [[nodiscard]] coherence::ConflictVerdict on_remote_request(
      BlockAddr addr, bool write, Timestamp ts, NodeId requester,
      bool u_bit) override;
  [[nodiscard]] bool is_txn_line(BlockAddr addr) const override;
  void on_overflow_eviction(BlockAddr addr) override;
  [[nodiscard]] Cycle retry_backoff(Cycle notification,
                                    std::uint32_t retries) override;
  void on_getx_outcome(BlockAddr addr, bool success, std::uint32_t nacks,
                       std::uint32_t aborted_sharers) override;
  [[nodiscard]] Timestamp current_ts() const override { return ts_; }
  [[nodiscard]] Cycle avg_txn_len() const override {
    return txlb_.overall_average();
  }

  // --- Introspection ---
  [[nodiscard]] const TxLB& txlb() const noexcept { return txlb_; }
  [[nodiscard]] const RmwPredictor& rmw_predictor() const noexcept {
    return rmw_;
  }
  [[nodiscard]] std::size_t read_set_size() const noexcept {
    return read_set_.size();
  }
  [[nodiscard]] std::size_t write_set_size() const noexcept {
    return write_set_.size();
  }
  [[nodiscard]] const std::unordered_set<BlockAddr>& read_set() const noexcept {
    return read_set_;
  }
  [[nodiscard]] const std::unordered_set<BlockAddr>& write_set()
      const noexcept {
    return write_set_;
  }

 private:
  /// Scheme policies read/mutate transaction state only through the
  /// ConflictManager accessor surface.
  friend class ConflictManager;

  void abort(AbortCause cause);
  /// Remembers a requester this transaction just nacked (commit-hint
  /// extension), bounded by commit_hint_entries.
  void remember_waiter(NodeId requester, BlockAddr addr);
  /// Transaction finished (commit or abort): wake every remembered waiter.
  void flush_waiters();
  /// Estimated remaining running time of the current transaction, from the
  /// TxLB average minus cycles already executed (Section III.D).
  [[nodiscard]] Cycle estimate_remaining() const;

  sim::Kernel& kernel_;
  const SystemConfig& cfg_;
  NodeId node_;
  Cycle avg_c2c_latency_;
  coherence::L1Controller* l1_ = nullptr;
  sim::Rng rng_;

  bool in_txn_ = false;
  bool aborted_ = false;
  Timestamp ts_ = kInvalidTimestamp;
  StaticTxId static_id_ = 0;
  Cycle attempt_begin_ = 0;
  std::uint32_t attempt_aborts_ = 0;  ///< Aborts of the current instance.
  std::uint64_t tile_aborts_ = 0;        ///< Run-total aborts (this tile).
  std::uint64_t tile_false_aborts_ = 0;  ///< Run-total false-abort events.

  std::unordered_set<BlockAddr> read_set_;
  std::unordered_set<BlockAddr> write_set_;
  /// block -> PC of the first load, for RMW-predictor training.
  std::unordered_map<BlockAddr, std::uint64_t> txn_loads_;
  std::unordered_set<BlockAddr> txn_stored_;

  TxLB txlb_;
  RmwPredictor rmw_;
  HintSender send_hint_;
  std::vector<std::pair<NodeId, BlockAddr>> waiters_;

  sim::Counter& commits_;
  sim::Counter& aborts_;
  sim::Counter& aborts_by_write_;
  sim::Counter& aborts_by_read_;
  sim::Counter& aborts_overflow_;
  sim::Counter& good_cycles_;
  sim::Counter& discarded_cycles_;
  sim::Counter& false_abort_events_;
  sim::Counter& falsely_aborted_txns_;
  sim::Histogram& false_abort_multiplicity_;
  sim::Counter& notified_backoffs_;
  sim::Counter& commit_hints_sent_;
  /// Committed-attempt length and granted backoff wait distributions; feed
  /// the dashboard's p50/p90/p99 latency panels. Stats only — never read
  /// back by the simulation, so they cannot perturb behaviour.
  sim::Histogram& txn_len_cycles_;
  sim::Histogram& backoff_cycles_;

  /// Last member: scheme-specific counters (registered by some manager
  /// constructors) land in the registry after the standard ones above, which
  /// keeps the stats CSV of the four pre-framework schemes byte-identical.
  std::unique_ptr<ConflictManager> mgr_;
};

}  // namespace puno::htm
