// Pluggable per-scheme conflict management (the ConflictManager framework).
//
// Everything scheme-specific that used to be dispatched on `Scheme::`
// switches inside TxnContext and Cmp lives behind this interface: the
// resolution of a racing conflicting request, the two backoff policies
// (nacked-requester retry and abort restart), timestamp assignment, RMW
// exclusive-load prediction, architectural set-capacity admission, the
// PUNO notification payload, and commit/abort bookkeeping. TxnContext owns
// exactly one manager, created from the registry (make_conflict_manager)
// keyed by SystemConfig::scheme; the protocol and the core call only the
// hooks.
//
// The four pre-existing schemes (Baseline, Backoff, RMW-Pred, PUNO) are
// bit-identical to their pre-framework implementations — the golden suite
// (tests/integration/golden_identity_test.cpp) pins result JSONL, the full
// stats registry, traces and abort attribution byte-for-byte. To keep the
// stats registry identical, scheme-specific counters are registered lazily
// in the concrete manager's constructor, never in TxnContext.
//
// docs/SCHEMES.md describes the six schemes and their resolution matrices.
#pragma once

#include <cstdint>
#include <memory>

#include "coherence/hooks.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace puno::sim {
class Kernel;
class Rng;
}  // namespace puno::sim

namespace puno::htm {

class TxnContext;
enum class AbortCause : std::uint8_t;

/// Timestamp tag bit used by the fallback-capable schemes (RequesterWins,
/// LimitedSet): set on every ordinary speculative attempt, clear on a
/// fallback/serialized attempt. Under the plain "smaller timestamp wins"
/// comparison a fallback attempt therefore dominates every speculative one
/// (including non-transactional requesters, whose kInvalidTimestamp also
/// carries the bit) while concurrent fallback attempts still order among
/// themselves by age — no message format or protocol hook changes needed.
/// The legacy schemes never set the bit: their timestamps are small cycle
/// products, far below bit 62.
inline constexpr Timestamp kSpeculativeTsBit = Timestamp{1} << 62;

/// Per-node conflict-management policy. One instance per TxnContext, bound
/// to it right after construction; hooks may read/mutate the transaction's
/// state through the protected accessors (ConflictManager is a friend of
/// TxnContext, so scheme implementations cannot bypass this surface).
///
/// The base-class defaults implement the legacy time-based policy [Rajwar &
/// Goodman]: older (smaller timestamp) wins, timestamps retained across
/// retries, fixed nacked-requester backoff, no restart backoff — so
/// BaselineManager is the trivial subclass and every other scheme overrides
/// only what it changes.
class ConflictManager {
 public:
  ConflictManager(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node)
      : kernel_(kernel), cfg_(cfg), node_(node) {}
  virtual ~ConflictManager() = default;

  ConflictManager(const ConflictManager&) = delete;
  ConflictManager& operator=(const ConflictManager&) = delete;

  /// Called once by the owning TxnContext before any hook.
  void bind(TxnContext& txn) noexcept { txn_ = &txn; }

  [[nodiscard]] virtual Scheme scheme() const noexcept = 0;

  /// Whether each home directory runs a PUNO assist (P-Buffer + predictive
  /// unicast). Queried by Cmp (and the protocol test fixture) at
  /// construction time.
  [[nodiscard]] virtual bool wants_directory_assist() const noexcept {
    return false;
  }

  /// Timestamp for a fresh dynamic instance beginning at `now` (smaller =
  /// older = higher priority). Also the scheme's new-instance reset point:
  /// fallback/serial modes of the previous instance end here.
  [[nodiscard]] virtual Timestamp fresh_timestamp(Cycle now) {
    return now * cfg_.num_nodes + node_;
  }

  /// Timestamp carried into the retry of an aborted instance. The legacy
  /// policy retains it unchanged so the transaction ages into the highest
  /// priority (starvation freedom); fallback schemes may re-tag it here.
  [[nodiscard]] virtual Timestamp retry_timestamp(Timestamp prev) {
    return prev;
  }

  /// Resolution for a racing remote request that conflicts with the local
  /// sets: kGrantAfterAbort = the local transaction loses (the caller
  /// aborts it and grants), kNack = the requester must retry. Never kGrant
  /// — a conflict cannot be ignored. Must not mutate transaction state
  /// (the caller performs the abort so trace emission stays in one place).
  [[nodiscard]] virtual coherence::ConflictDecision resolve(BlockAddr addr,
                                                            bool write,
                                                            Timestamp req_ts);

  /// Payload attached to a NACK: the estimated remaining running time of
  /// the local transaction (PUNO's notification, Section III.D); 0 = none.
  [[nodiscard]] virtual Cycle nack_notification() { return 0; }

  /// RMW prediction: should the transactional load at `pc` fetch exclusive?
  [[nodiscard]] virtual bool load_exclusive(std::uint64_t pc) {
    (void)pc;
    return false;
  }

  /// Architectural set-capacity admission, consulted before `block` is
  /// recorded into the read/write set. Returning false aborts the attempt
  /// through the overflow path (trace event + kOverflow cause).
  [[nodiscard]] virtual bool admit_access(BlockAddr block, bool write) {
    (void)block;
    (void)write;
    return true;
  }

  /// Wait before the L1 re-issues a nacked transactional request.
  /// `notification` is the nacker's estimate delivered with the NACK.
  [[nodiscard]] virtual Cycle retry_backoff(Cycle notification,
                                            std::uint32_t retries);

  /// Wait before the core re-runs an aborted attempt, on top of the fixed
  /// abort-recovery latency.
  [[nodiscard]] virtual Cycle restart_backoff() { return 0; }

  /// Bookkeeping hooks. The transaction's own accounting (commit/abort
  /// counters, cycle attribution, set teardown) stays in TxnContext; these
  /// are for scheme-internal state and scheme-specific counters only.
  virtual void on_commit() {}
  virtual void on_abort(AbortCause cause) { (void)cause; }

 protected:
  // --- Accessors into the bound TxnContext (its friend). Defined in the
  // .cpp so this header needs only a forward declaration. ---
  [[nodiscard]] sim::Rng& rng() noexcept;
  [[nodiscard]] Timestamp local_ts() const noexcept;
  [[nodiscard]] std::uint32_t attempt_aborts() const noexcept;
  [[nodiscard]] Cycle estimate_remaining() const;
  [[nodiscard]] Cycle avg_c2c_latency() const noexcept;
  [[nodiscard]] bool rmw_predicts_exclusive(std::uint64_t pc) const;
  [[nodiscard]] std::size_t read_set_size() const noexcept;
  [[nodiscard]] std::size_t write_set_size() const noexcept;
  [[nodiscard]] bool in_read_set(BlockAddr block) const;
  [[nodiscard]] bool in_write_set(BlockAddr block) const;
  /// Samples the htm.backoff_cycles histogram (dashboard latency panels).
  void sample_backoff(Cycle wait);
  /// Counts an htm.notified_backoffs (PUNO took the notification path).
  void count_notified_backoff();

  /// Randomized linear backoff [Scherer & Scott]: the contention window
  /// grows linearly with the number of aborts this attempt has suffered.
  /// Shared by the Backoff and RequesterWins schemes.
  [[nodiscard]] Cycle randomized_linear_backoff();

  sim::Kernel& kernel_;
  const SystemConfig& cfg_;
  NodeId node_;
  TxnContext* txn_ = nullptr;
};

/// Registry: the manager implementing `cfg.scheme`. Covers every value in
/// kAllSchemes; a new scheme is added by extending PUNO_SCHEME_LIST and
/// this factory.
[[nodiscard]] std::unique_ptr<ConflictManager> make_conflict_manager(
    sim::Kernel& kernel, const SystemConfig& cfg, NodeId node);

}  // namespace puno::htm
