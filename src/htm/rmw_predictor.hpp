// Read-Modify-Write predictor, one of the two comparison mechanisms of the
// evaluation (Section IV.A), after Bobba et al., "Performance Pathologies in
// Hardware Transactional Memory".
//
// A load instruction (identified by its PC) that has historically been
// followed by a store to the same block within the same transaction is
// predicted to be the read half of a read-modify-write pair; such loads
// request exclusive permission (GETX) up front, avoiding the later
// "dueling write" abort. Each node tracks up to 256 load instructions
// (Table in Section IV.A) in a direct-mapped, tagged table of saturating
// confidence counters.
//
// Units: `pc` is the static instruction address of the load (a synthetic
// program counter in our workloads); nothing in this class is measured in
// cycles — prediction is purely history-based.
//
// Ownership: one RmwPredictor is owned by value by each node's TxnContext
// (allocated only under Scheme::kRmwPred). The table owns its slots; no
// pointer into it escapes — predictions are returned by value at issue
// time and training mutates slots in place.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace puno::htm {

class RmwPredictor {
 public:
  explicit RmwPredictor(std::uint32_t entries) : table_(entries) {}

  /// Should the load at `pc` request exclusive permission?
  [[nodiscard]] bool predict_exclusive(std::uint64_t pc) const {
    const Slot& s = slot(pc);
    return s.tag == pc && s.confidence >= 2;
  }

  /// The load at `pc` turned out to be (`was_rmw`) / not be the read half of
  /// a read-modify-write pair in the transaction that just resolved.
  /// Confidence moves by 1 per outcome and saturates at [0, 3]; entries are
  /// allocated (at confidence 2, weakly predicting) only on a confirmed RMW
  /// so plain reads never evict useful history.
  void train(std::uint64_t pc, bool was_rmw) {
    Slot& s = slot(pc);
    if (s.tag != pc) {
      if (!was_rmw) return;  // don't allocate entries for plain reads
      s.tag = pc;
      s.confidence = 2;  // allocate weakly-predicting
      return;
    }
    if (was_rmw) {
      if (s.confidence < 3) ++s.confidence;
    } else {
      if (s.confidence > 0) --s.confidence;
    }
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(table_.size());
  }

 private:
  struct Slot {
    std::uint64_t tag = 0;
    std::uint8_t confidence = 0;  ///< 2-bit saturating counter.
  };

  [[nodiscard]] Slot& slot(std::uint64_t pc) {
    return table_[pc % table_.size()];
  }
  [[nodiscard]] const Slot& slot(std::uint64_t pc) const {
    return table_[pc % table_.size()];
  }

  std::vector<Slot> table_;
};

}  // namespace puno::htm
