// Transaction Length Buffer (TxLB), Section III.D / Figure 6.
//
// One per node. Tracks the average dynamic length of each *static*
// transaction (a TX_BEGIN/TX_END site) with the paper's recency-weighted
// update, formula (1):
//
//     StaticTxLen_new = (StaticTxLen_prev + DynTxLen) / 2
//
// The buffer has a small fixed capacity (32 entries, Table II); STAMP-class
// workloads have at most ~15 static transactions, so overflow is rare and
// handled by evicting the least-recently-updated entry (the paper notes a
// software fallback; a hardware LRU eviction preserves the same behaviour
// for our purposes).
//
// Units: every length in this class (`dyn_len`, `estimate()`,
// `overall_average()`) is in simulated cycles. `last_update` is a local
// logical counter (update order), not a cycle count.
//
// Ownership: one TxLB is owned by value by each node's TxnContext. It
// stores only plain values — estimates read from it are copied into NACK
// notifications, never referenced, so entries can be evicted at any time.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"

namespace puno::htm {

class TxLB {
 public:
  explicit TxLB(std::uint32_t capacity) : capacity_(capacity) {}

  /// Records a committed dynamic instance of `id` that ran `dyn_len`
  /// cycles (TX_BEGIN to TX_END of the successful attempt, excluding
  /// aborted attempts and backoff).
  void on_commit(StaticTxId id, Cycle dyn_len) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      if (entries_.size() >= capacity_) evict_lru();
      it = entries_.emplace(id, Entry{dyn_len, 0}).first;
    } else {
      it->second.avg_len = (it->second.avg_len + dyn_len) / 2;  // formula (1)
    }
    it->second.last_update = ++update_clock_;

    // Node-wide running average, piggybacked on requests to drive the
    // directories' adaptive validity timeout (Section III.B).
    overall_avg_ = overall_avg_ == 0 ? dyn_len : (overall_avg_ + dyn_len) / 2;
  }

  /// Average length of static transaction `id` in cycles; 0 if never
  /// committed (callers treat 0 as "no estimate", falling back to the
  /// scheme's fixed backoff).
  [[nodiscard]] Cycle estimate(StaticTxId id) const {
    const auto it = entries_.find(id);
    return it == entries_.end() ? 0 : it->second.avg_len;
  }

  /// Recency-weighted average across all static transactions on this node.
  [[nodiscard]] Cycle overall_average() const noexcept { return overall_avg_; }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    Cycle avg_len = 0;
    std::uint64_t last_update = 0;
  };

  void evict_lru() {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_update < victim->second.last_update) victim = it;
    }
    entries_.erase(victim);
  }

  std::uint32_t capacity_;
  std::uint64_t update_clock_ = 0;
  Cycle overall_avg_ = 0;
  std::unordered_map<StaticTxId, Entry> entries_;
};

}  // namespace puno::htm
