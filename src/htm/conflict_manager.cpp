#include "htm/conflict_manager.hpp"

#include <algorithm>

#include "htm/txn_context.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"

namespace puno::htm {

// --- Accessors into the bound TxnContext (friend access) ---

sim::Rng& ConflictManager::rng() noexcept { return txn_->rng_; }

Timestamp ConflictManager::local_ts() const noexcept { return txn_->ts_; }

std::uint32_t ConflictManager::attempt_aborts() const noexcept {
  return txn_->attempt_aborts_;
}

Cycle ConflictManager::estimate_remaining() const {
  return txn_->estimate_remaining();
}

Cycle ConflictManager::avg_c2c_latency() const noexcept {
  return txn_->avg_c2c_latency_;
}

bool ConflictManager::rmw_predicts_exclusive(std::uint64_t pc) const {
  return txn_->rmw_.predict_exclusive(pc);
}

std::size_t ConflictManager::read_set_size() const noexcept {
  return txn_->read_set_.size();
}

std::size_t ConflictManager::write_set_size() const noexcept {
  return txn_->write_set_.size();
}

bool ConflictManager::in_read_set(BlockAddr block) const {
  return txn_->read_set_.contains(block);
}

bool ConflictManager::in_write_set(BlockAddr block) const {
  return txn_->write_set_.contains(block);
}

void ConflictManager::sample_backoff(Cycle wait) {
  txn_->backoff_cycles_.sample(wait);
}

void ConflictManager::count_notified_backoff() {
  txn_->notified_backoffs_.add();
}

// --- Legacy defaults shared by the time-based schemes ---

coherence::ConflictDecision ConflictManager::resolve(BlockAddr /*addr*/,
                                                     bool /*write*/,
                                                     Timestamp req_ts) {
  // The conflict rule of Section II.B: the older (smaller-timestamp)
  // transaction wins; a younger (or non-transactional, ts = max) requester
  // is NACKed, an older one makes the local transaction abort and grant.
  return req_ts < local_ts() ? coherence::ConflictDecision::kGrantAfterAbort
                             : coherence::ConflictDecision::kNack;
}

Cycle ConflictManager::retry_backoff(Cycle /*notification*/,
                                     std::uint32_t /*retries*/) {
  if (cfg_.htm.fixed_backoff > 0) sample_backoff(cfg_.htm.fixed_backoff);
  return cfg_.htm.fixed_backoff;
}

Cycle ConflictManager::randomized_linear_backoff() {
  const std::uint64_t slots =
      std::min<std::uint64_t>(attempt_aborts(), cfg_.htm.backoff_max_slots);
  if (slots == 0) return 0;
  const Cycle wait = rng().next_below(slots + 1) * cfg_.htm.backoff_slot;
  if (wait > 0) sample_backoff(wait);
  return wait;
}

namespace {

/// Eager HTM with the fixed 20-cycle retry backoff (Section IV.A). Pure
/// base-class behaviour.
class BaselineManager final : public ConflictManager {
 public:
  using ConflictManager::ConflictManager;
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kBaseline;
  }
};

/// Baseline plus randomized linear backoff on restart [Scherer & Scott].
class RandomBackoffManager final : public ConflictManager {
 public:
  using ConflictManager::ConflictManager;
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRandomBackoff;
  }
  [[nodiscard]] Cycle restart_backoff() override {
    return randomized_linear_backoff();
  }
};

/// Baseline plus the RMW predictor [Bobba et al.]: predicted
/// read-modify-write loads fetch exclusive up front.
class RmwPredManager final : public ConflictManager {
 public:
  using ConflictManager::ConflictManager;
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRmwPred;
  }
  [[nodiscard]] bool load_exclusive(std::uint64_t pc) override {
    return rmw_predicts_exclusive(pc);
  }
};

/// Predictive Unicast and Notification (this paper): directories run the
/// P-Buffer assist, NACKs carry the nacker's estimated remaining running
/// time, and the requester backs off on it instead of polling
/// (Section III.D).
class PunoManager final : public ConflictManager {
 public:
  using ConflictManager::ConflictManager;
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kPuno;
  }
  [[nodiscard]] bool wants_directory_assist() const noexcept override {
    return true;
  }
  [[nodiscard]] Cycle nack_notification() override {
    return cfg_.puno.enable_notification ? estimate_remaining() : 0;
  }
  [[nodiscard]] Cycle retry_backoff(Cycle notification,
                                    std::uint32_t retries) override {
    if (notification > 0) {
      // Back off until the nacker is expected to finish, minus the round
      // trip (twice the average cache-to-cache latency, Section III.D).
      const Cycle rtt = 2 * avg_c2c_latency();
      if (notification > rtt) {
        count_notified_backoff();
        Cycle wait = notification - rtt;
        if (cfg_.puno.max_notified_backoff > 0 &&
            wait > cfg_.puno.max_notified_backoff) {
          wait = cfg_.puno.max_notified_backoff;
        }
        sample_backoff(wait);
        return wait;
      }
    }
    return ConflictManager::retry_backoff(notification, retries);
  }
};

/// TSX-style requester-wins: a speculative transaction always aborts for a
/// conflicting request. An attempt that has been aborted
/// requester_wins_max_retries times re-runs on the serialized fallback
/// path: its timestamp drops the speculative tag, so it NACKs every
/// speculative requester while concurrent fallbacks order by age.
class RequesterWinsManager final : public ConflictManager {
 public:
  RequesterWinsManager(sim::Kernel& kernel, const SystemConfig& cfg,
                       NodeId node)
      : ConflictManager(kernel, cfg, node),
        fallback_entries_(kernel.stats().counter("htm.fallback_entries")) {}
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRequesterWins;
  }
  [[nodiscard]] Timestamp fresh_timestamp(Cycle now) override {
    fallback_ = false;
    return (now * cfg_.num_nodes + node_) | kSpeculativeTsBit;
  }
  [[nodiscard]] Timestamp retry_timestamp(Timestamp prev) override {
    if (!fallback_ &&
        attempt_aborts() >= cfg_.htm.requester_wins_max_retries) {
      fallback_ = true;
      fallback_entries_.add();
    }
    return fallback_ ? prev & ~kSpeculativeTsBit : prev;
  }
  [[nodiscard]] coherence::ConflictDecision resolve(
      BlockAddr /*addr*/, bool /*write*/, Timestamp req_ts) override {
    if (!fallback_) return coherence::ConflictDecision::kGrantAfterAbort;
    // Fallback attempt: speculative (tagged) requesters — including
    // non-transactional ones, kInvalidTimestamp carries the tag — lose;
    // between two fallbacks the older wins, which keeps them deadlock-free.
    if ((req_ts & kSpeculativeTsBit) != 0) {
      return coherence::ConflictDecision::kNack;
    }
    return req_ts < local_ts()
               ? coherence::ConflictDecision::kGrantAfterAbort
               : coherence::ConflictDecision::kNack;
  }
  [[nodiscard]] Cycle restart_backoff() override {
    return randomized_linear_backoff();
  }

 private:
  bool fallback_ = false;
  sim::Counter& fallback_entries_;
};

/// FORTH-style limited-set HTM: read/write sets are architecturally
/// capacity-bounded; an attempt that overflows them aborts (through the
/// same path as an L1 set-conflict eviction) and re-runs serialized with
/// unbounded sets, its timestamp untagged so it dominates all speculation.
class LimitedSetManager final : public ConflictManager {
 public:
  LimitedSetManager(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node)
      : ConflictManager(kernel, cfg, node),
        capacity_overflows_(
            kernel.stats().counter("htm.set_capacity_overflows")),
        serial_entries_(kernel.stats().counter("htm.serial_mode_entries")) {}
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kLimitedSet;
  }
  [[nodiscard]] Timestamp fresh_timestamp(Cycle now) override {
    serial_ = false;
    return (now * cfg_.num_nodes + node_) | kSpeculativeTsBit;
  }
  [[nodiscard]] Timestamp retry_timestamp(Timestamp prev) override {
    return serial_ ? prev & ~kSpeculativeTsBit : prev;
  }
  [[nodiscard]] bool admit_access(BlockAddr block, bool write) override {
    if (serial_) return true;  // serialized retry: sets are unbounded
    // A write inserts into both sets (a writer is implicitly a reader), so
    // it must fit both bounds; a read only the read-set bound.
    const bool new_read = !in_read_set(block);
    const bool over_read =
        new_read && read_set_size() >= cfg_.htm.limited_read_entries;
    const bool over_write =
        write && !in_write_set(block) &&
        write_set_size() >= cfg_.htm.limited_write_entries;
    if (over_read || over_write) {
      capacity_overflows_.add();
      return false;
    }
    return true;
  }
  void on_abort(AbortCause cause) override {
    // Any capacity abort — architectural set overflow or L1 set-conflict
    // eviction — serializes the remaining retries of this attempt.
    if (cause == AbortCause::kOverflow && !serial_) {
      serial_ = true;
      serial_entries_.add();
    }
  }

 private:
  bool serial_ = false;
  sim::Counter& capacity_overflows_;
  sim::Counter& serial_entries_;
};

}  // namespace

std::unique_ptr<ConflictManager> make_conflict_manager(sim::Kernel& kernel,
                                                       const SystemConfig& cfg,
                                                       NodeId node) {
  switch (cfg.scheme) {
    case Scheme::kBaseline:
      return std::make_unique<BaselineManager>(kernel, cfg, node);
    case Scheme::kRandomBackoff:
      return std::make_unique<RandomBackoffManager>(kernel, cfg, node);
    case Scheme::kRmwPred:
      return std::make_unique<RmwPredManager>(kernel, cfg, node);
    case Scheme::kPuno:
      return std::make_unique<PunoManager>(kernel, cfg, node);
    case Scheme::kRequesterWins:
      return std::make_unique<RequesterWinsManager>(kernel, cfg, node);
    case Scheme::kLimitedSet:
      return std::make_unique<LimitedSetManager>(kernel, cfg, node);
  }
  return std::make_unique<BaselineManager>(kernel, cfg, node);
}

}  // namespace puno::htm
