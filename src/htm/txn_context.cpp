#include "htm/txn_context.hpp"

#include <algorithm>
#include <cassert>

#include "coherence/l1_controller.hpp"
#include "sim/log.hpp"
#include "trace/recorder.hpp"

namespace puno::htm {

TxnContext::TxnContext(sim::Kernel& kernel, const SystemConfig& cfg,
                       NodeId node, Cycle avg_c2c_latency)
    : kernel_(kernel),
      cfg_(cfg),
      node_(node),
      avg_c2c_latency_(avg_c2c_latency),
      rng_(cfg.seed, 0x700 + node),
      txlb_(cfg.puno.txlb_entries),
      rmw_(cfg.htm.rmw_entries),
      commits_(kernel.stats().counter("htm.commits")),
      aborts_(kernel.stats().counter("htm.aborts")),
      aborts_by_write_(kernel.stats().counter("htm.aborts_by_getx")),
      aborts_by_read_(kernel.stats().counter("htm.aborts_by_gets")),
      aborts_overflow_(kernel.stats().counter("htm.aborts_overflow")),
      good_cycles_(kernel.stats().counter("htm.good_cycles")),
      discarded_cycles_(kernel.stats().counter("htm.discarded_cycles")),
      false_abort_events_(kernel.stats().counter("htm.false_abort_events")),
      falsely_aborted_txns_(
          kernel.stats().counter("htm.falsely_aborted_txns")),
      false_abort_multiplicity_(
          kernel.stats().histogram("htm.false_abort_multiplicity", 16)),
      notified_backoffs_(kernel.stats().counter("htm.notified_backoffs")),
      commit_hints_sent_(kernel.stats().counter("htm.commit_hints_sent")),
      txn_len_cycles_(kernel.stats().histogram("htm.txn_len_cycles", 256)),
      backoff_cycles_(kernel.stats().histogram("htm.backoff_cycles", 256)),
      mgr_(make_conflict_manager(kernel, cfg, node)) {
  mgr_->bind(*this);
}

void TxnContext::remember_waiter(NodeId requester, BlockAddr addr) {
  if (!cfg_.puno.enable_commit_hint || send_hint_ == nullptr) return;
  for (const auto& [node, block] : waiters_) {
    if (node == requester && block == addr) return;
  }
  if (waiters_.size() >= cfg_.puno.commit_hint_entries) {
    waiters_.erase(waiters_.begin());  // bounded hardware buffer: drop oldest
  }
  waiters_.emplace_back(requester, addr);
}

void TxnContext::flush_waiters() {
  if (waiters_.empty()) return;
  for (const auto& [node, block] : waiters_) {
    commit_hints_sent_.add();
    send_hint_(node, block);
  }
  waiters_.clear();
}

void TxnContext::begin(StaticTxId id) {
  // Either a fresh instance (no transaction running) or the restart of an
  // aborted one (in_txn_ stays set through the rollback window so that the
  // timestamp is retained).
  assert(!in_txn_ || aborted_);
  const bool retry = in_txn_ && aborted_ && static_id_ == id;
  in_txn_ = true;
  aborted_ = false;
  static_id_ = id;
  attempt_begin_ = kernel_.now();
  if (retry) {
    // A retried instance keeps (or, under a fallback scheme, re-tags) its
    // timestamp so the transaction ages into the highest priority
    // (time-base policy [11]).
    ts_ = mgr_->retry_timestamp(ts_);
  } else {
    ts_ = mgr_->fresh_timestamp(kernel_.now());
    attempt_aborts_ = 0;
  }
  PUNO_TRACE(sim::TraceCat::kHtm, kernel_.now(), "node ", node_, " TX_BEGIN ",
             id, " ts ", ts_, retry ? " (retry)" : "");
  PUNO_TEV(kernel_, trace::Cat::kTxn,
           (trace::TraceEvent{.cycle = kernel_.now(),
                              .ts = ts_,
                              .a = id,
                              .node = node_,
                              .kind = trace::EventKind::kTxnBegin,
                              .flags = retry ? std::uint8_t{1}
                                             : std::uint8_t{0}}));
}

void TxnContext::commit() {
  assert(in_txn_ && !aborted_);
  const Cycle len = kernel_.now() - attempt_begin_;
  PUNO_TEV(kernel_, trace::Cat::kTxn,
           (trace::TraceEvent{.cycle = kernel_.now(),
                              .ts = ts_,
                              .a = static_id_,
                              .b = len,
                              .node = node_,
                              .kind = trace::EventKind::kTxnCommit}));
  txlb_.on_commit(static_id_, len);
  good_cycles_.add(len);
  commits_.add();
  txn_len_cycles_.sample(len);
  mgr_->on_commit();

  // Negative RMW training: loads whose block was never stored in this
  // transaction were plain reads.
  for (const auto& [block, pc] : txn_loads_) {
    if (!txn_stored_.contains(block)) rmw_.train(pc, false);
  }

  in_txn_ = false;
  ts_ = kInvalidTimestamp;
  read_set_.clear();
  write_set_.clear();
  txn_loads_.clear();
  txn_stored_.clear();
  flush_waiters();  // commit-hint extension: the nacked requesters may retry
  PUNO_TRACE(sim::TraceCat::kHtm, kernel_.now(), "node ", node_, " TX_COMMIT ",
             static_id_);
}

void TxnContext::abort(AbortCause cause) {
  assert(in_txn_);
  if (aborted_) return;  // already rolling back; nothing more to discard
  aborted_ = true;
  ++attempt_aborts_;
  ++tile_aborts_;
  aborts_.add();
  switch (cause) {
    case AbortCause::kRemoteWrite: aborts_by_write_.add(); break;
    case AbortCause::kRemoteRead: aborts_by_read_.add(); break;
    case AbortCause::kOverflow: aborts_overflow_.add(); break;
  }
  discarded_cycles_.add(kernel_.now() - attempt_begin_);
  mgr_->on_abort(cause);

  // Fast abort recovery (FASTM-style): pre-transaction state is restored
  // from the hardware buffer; architecturally the sets drop instantly. The
  // recovery latency is charged where it is observed (response delay at the
  // L1, restart delay at the core).
  read_set_.clear();
  write_set_.clear();
  txn_loads_.clear();
  txn_stored_.clear();
  if (l1_ != nullptr) l1_->on_local_abort();
  flush_waiters();  // the conflicting claim is gone; waiters may retry
  PUNO_TRACE(sim::TraceCat::kHtm, kernel_.now(), "node ", node_, " TX_ABORT ",
             static_id_, " cause ", static_cast<int>(cause));
}

Cycle TxnContext::restart_backoff() { return mgr_->restart_backoff(); }

void TxnContext::on_access(Addr addr, bool write, std::uint64_t pc) {
  if (!in_txn_ || aborted_) return;
  const BlockAddr block = cfg_.block_of(addr);
  if (!mgr_->admit_access(block, write)) {
    // Architectural set capacity exceeded (LimitedSet): abort through the
    // same path as an L1 set-conflict eviction.
    on_overflow_eviction(block);
    return;
  }
  if (write) {
    write_set_.insert(block);
    read_set_.insert(block);  // a writer is implicitly a reader
    txn_stored_.insert(block);
    if (const auto it = txn_loads_.find(block); it != txn_loads_.end()) {
      rmw_.train(it->second, true);  // load at it->second was an RMW read
    }
  } else {
    read_set_.insert(block);
    txn_loads_.try_emplace(block, pc);
  }
}

bool TxnContext::should_load_exclusive(std::uint64_t pc) const {
  return mgr_->load_exclusive(pc);
}

coherence::ConflictVerdict TxnContext::on_remote_request(BlockAddr addr,
                                                         bool write,
                                                         Timestamp ts,
                                                         NodeId requester,
                                                         bool u_bit) {
  const bool conflict =
      in_txn_ && !aborted_ &&
      (write ? (read_set_.contains(addr) || write_set_.contains(addr))
             : write_set_.contains(addr));

  if (!conflict) {
    if (u_bit) {
      // Unicast reached a node with no conflicting transaction: the P-Buffer
      // priority was stale. NACK conservatively with the MP-bit set
      // (Section III.C) — granting would leave other sharers unnotified.
      PUNO_TEV(kernel_, trace::Cat::kConflict,
               (trace::TraceEvent{
                   .cycle = kernel_.now(),
                   .addr = addr,
                   .ts = ts,
                   .b = in_txn_ && !aborted_ ? ts_ : kInvalidTimestamp,
                   .node = node_,
                   .peer = requester,
                   .kind = trace::EventKind::kNackMispredict,
                   .flags = 1}));
      return {coherence::ConflictDecision::kNack, 0, /*mispredicted=*/true};
    }
    return {coherence::ConflictDecision::kGrant, 0, false};
  }

  if (mgr_->resolve(addr, write, ts) ==
      coherence::ConflictDecision::kGrantAfterAbort) {
    // The scheme ruled for the requester (legacy policy: it is older). Under
    // a (correct) unicast we would have been predicted to win — this is a
    // misprediction; NACK conservatively without aborting.
    if (u_bit) {
      PUNO_TEV(kernel_, trace::Cat::kConflict,
               (trace::TraceEvent{.cycle = kernel_.now(),
                                  .addr = addr,
                                  .ts = ts,
                                  .b = ts_,
                                  .node = node_,
                                  .peer = requester,
                                  .kind = trace::EventKind::kNackMispredict,
                                  .flags = 1}));
      return {coherence::ConflictDecision::kNack, 0, /*mispredicted=*/true};
    }
    PUNO_TEV(kernel_, trace::Cat::kTxn,
             (trace::TraceEvent{
                 .cycle = kernel_.now(),
                 .addr = addr,
                 .ts = ts_,
                 .a = write ? trace::kAbortRemoteWrite : trace::kAbortRemoteRead,
                 .b = ts,
                 .node = node_,
                 .peer = requester,
                 .kind = trace::EventKind::kTxnAbort}));
    abort(write ? AbortCause::kRemoteWrite : AbortCause::kRemoteRead);
    return {coherence::ConflictDecision::kGrantAfterAbort, 0, false};
  }

  // The local transaction keeps the line: NACK. Under PUNO, attach the
  // estimated remaining running time so the requester can back off instead
  // of polling (Section III.D).
  remember_waiter(requester, addr);
  const Cycle note = mgr_->nack_notification();
  PUNO_TEV(kernel_, trace::Cat::kConflict,
           (trace::TraceEvent{.cycle = kernel_.now(),
                              .addr = addr,
                              .ts = ts,
                              .a = note,
                              .b = ts_,
                              .node = node_,
                              .peer = requester,
                              .kind = trace::EventKind::kNackSent,
                              .flags = write ? std::uint8_t{1}
                                             : std::uint8_t{0}}));
  return {coherence::ConflictDecision::kNack, note, false};
}

Cycle TxnContext::estimate_remaining() const {
  const Cycle avg = txlb_.estimate(static_id_);
  if (avg == 0) return 0;
  const Cycle ran = kernel_.now() - attempt_begin_;
  return avg > ran ? avg - ran : 0;
}

bool TxnContext::is_txn_line(BlockAddr addr) const {
  return in_txn_ && !aborted_ &&
         (read_set_.contains(addr) || write_set_.contains(addr));
}

void TxnContext::on_overflow_eviction(BlockAddr addr) {
  if (in_txn_ && !aborted_) {
    PUNO_TEV(kernel_, trace::Cat::kTxn,
             (trace::TraceEvent{.cycle = kernel_.now(),
                                .addr = addr,
                                .ts = ts_,
                                .a = trace::kAbortOverflow,
                                .b = kInvalidTimestamp,
                                .node = node_,
                                .peer = kInvalidNode,
                                .kind = trace::EventKind::kTxnAbort}));
  }
  abort(AbortCause::kOverflow);
}

Cycle TxnContext::retry_backoff(Cycle notification, std::uint32_t retries) {
  return mgr_->retry_backoff(notification, retries);
}

void TxnContext::on_getx_outcome(BlockAddr addr, bool success,
                                 std::uint32_t nacks,
                                 std::uint32_t aborted_sharers) {
  PUNO_TEV(kernel_, trace::Cat::kConflict,
           (trace::TraceEvent{.cycle = kernel_.now(),
                              .addr = addr,
                              .ts = ts_,
                              .a = nacks,
                              .b = aborted_sharers,
                              .node = node_,
                              .kind = trace::EventKind::kGetxOutcome,
                              .flags = success ? std::uint8_t{1}
                                               : std::uint8_t{0}}));
  if (!success && nacks > 0 && aborted_sharers > 0) {
    // The request was nacked, so the sharers it aborted were aborted for
    // nothing: false aborting (Section II.C).
    false_abort_events_.add();
    ++tile_false_aborts_;
    falsely_aborted_txns_.add(aborted_sharers);
    false_abort_multiplicity_.sample(aborted_sharers);
  }
}

}  // namespace puno::htm
