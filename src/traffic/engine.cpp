#include "traffic/engine.hpp"

#include <cmath>
#include <limits>

namespace puno::traffic {

namespace {

[[nodiscard]] std::uint64_t scaled_quota(std::uint32_t base, double scale) {
  if (!(scale > 0.0)) scale = 1.0;
  const double q = std::llround(static_cast<double>(base) * scale);
  return q < 1.0 ? 1 : static_cast<std::uint64_t>(q);
}

}  // namespace

OpenLoopWorkload::OpenLoopWorkload(KernelKind kind, const TrafficConfig& cfg,
                                   NodeId num_nodes, std::uint64_t seed,
                                   std::uint32_t block_bytes, double scale)
    : name_(std::string("traffic-") + to_string(kind)),
      cfg_(cfg),
      sampler_(cfg),
      gen_(kind, cfg, block_bytes),
      quota_(scaled_quota(cfg.arrivals_per_node, scale)) {
  nodes_.reserve(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) nodes_.emplace_back(cfg, seed, n);
}

void OpenLoopWorkload::attach(sim::Kernel& k) {
  kernel_ = &k;
  auto& st = k.stats();
  st_offered_ = &st.counter("traffic.offered");
  st_admitted_ = &st.counter("traffic.admitted");
  st_dropped_ = &st.counter("traffic.dropped");
  st_begun_ = &st.counter("traffic.begun");
  st_delay_ = &st.histogram("traffic.queue_delay", kDelayHistMax);
}

bool OpenLoopWorkload::ensure_next(NodeState& ns) {
  if (ns.next_ready) return true;
  if (ns.generated >= quota_) return false;
  ns.next_time = ns.arrivals.next();
  ns.next_ready = true;
  return true;
}

workloads::TxnDesc OpenLoopWorkload::build(NodeState& ns,
                                           std::uint64_t when) {
  const std::uint64_t key = sampler_.next(when, ns.gen_rng);
  return gen_.make(key, when, ns.gen_rng);
}

void OpenLoopWorkload::count_offered(bool admitted_one) {
  ++offered_;
  if (st_offered_ != nullptr) st_offered_->add();
  if (admitted_one) {
    ++admitted_;
    if (st_admitted_ != nullptr) st_admitted_->add();
  } else {
    ++dropped_;
    if (st_dropped_ != nullptr) st_dropped_->add();
  }
}

void OpenLoopWorkload::pump(NodeState& ns, std::uint64_t now) {
  const std::size_t cap = cfg_.queue_capacity == 0 ? 1 : cfg_.queue_capacity;
  while (ensure_next(ns) && ns.next_time <= now) {
    const bool fits = ns.queue.size() < cap;
    if (fits) {
      // Draw the descriptor only for admitted arrivals: drops consume no
      // gen_rng state, so admitted requests' bodies depend only on the
      // admitted prefix (and the arrival stream stays untouched either way).
      Queued q;
      q.arrival = ns.next_time;
      q.desc = build(ns, ns.next_time);
      ns.queue.push_back(std::move(q));
    }
    count_offered(fits);
    ++ns.generated;
    ns.next_ready = false;
  }
}

std::optional<workloads::TxnDesc> OpenLoopWorkload::next(NodeId node) {
  NodeState& ns = nodes_.at(node);

  if (kernel_ == nullptr) {
    // Drain mode: every arrival in order, no queueing, no waiting. The
    // virtual clock is the arrival schedule itself, so phase-shifted
    // sampling still keys off arrival time.
    if (!ensure_next(ns)) return std::nullopt;
    workloads::TxnDesc d = build(ns, ns.next_time);
    count_offered(true);
    ++begun_;
    ++ns.generated;
    ns.next_ready = false;
    return d;
  }

  const std::uint64_t now = kernel_->now();
  pump(ns, now);

  if (!ns.queue.empty()) {
    Queued q = std::move(ns.queue.front());
    ns.queue.pop_front();
    const std::uint64_t delay = now - q.arrival;
    ++begun_;
    if (st_begun_ != nullptr) st_begun_->add();
    if (st_delay_ != nullptr) st_delay_->sample(delay);
    q.desc.pre_think = 0;  // already waited `delay` in the queue
    return std::move(q.desc);
  }

  if (!ensure_next(ns)) return std::nullopt;  // quota drained, queue empty

  // Idle core, next arrival still in the future: serve it directly with
  // pre_think covering the gap, so the core begins exactly at arrival time.
  // (It would be admitted to an empty queue at that instant anyway.)
  const std::uint64_t when = ns.next_time;
  workloads::TxnDesc d = build(ns, when);
  count_offered(true);
  ++begun_;
  if (st_begun_ != nullptr) st_begun_->add();
  if (st_delay_ != nullptr) st_delay_->sample(0);
  ++ns.generated;
  ns.next_ready = false;
  const std::uint64_t gap = when - now;
  d.pre_think = gap > std::numeric_limits<std::uint32_t>::max()
                    ? std::numeric_limits<std::uint32_t>::max()
                    : static_cast<std::uint32_t>(gap);
  return d;
}

}  // namespace puno::traffic
