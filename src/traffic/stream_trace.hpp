// Streaming trace-v1 replay: constant memory for arbitrarily large traces.
//
// TraceWorkload::load materializes every descriptor of every node up front
// (a multi-GB production trace would not fit). StreamTraceWorkload instead
// keeps one independent file cursor per node: next(node) scans forward from
// that node's position, skips other nodes' txn blocks with a cheap
// first-token classification, fully parses its own blocks through the
// shared trace_format helpers, and returns one descriptor at a time.
// Memory is O(nodes), not O(trace).
//
// Replay order per node is file order, identical to TraceWorkload — the
// equivalence test replays both against the same simulator config and pins
// bit-identical results.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace puno::traffic {

class StreamTraceWorkload final : public workloads::Workload {
 public:
  /// Opens one cursor per node on `path`; validates the header on the first
  /// read of each cursor. Throws std::runtime_error if the file cannot be
  /// opened or (lazily, from next()) on malformed content.
  StreamTraceWorkload(const std::string& path, NodeId num_nodes);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::optional<workloads::TxnDesc> next(NodeId node) override;

  /// Descriptors already returned for `node` (for progress reporting).
  [[nodiscard]] std::uint64_t replayed(NodeId node) const;

 private:
  struct Cursor {
    std::ifstream in;
    std::size_t lineno = 0;
    std::uint64_t replayed = 0;
    bool header_seen = false;
    bool done = false;
  };

  std::string path_;
  std::string name_;
  std::vector<Cursor> cursors_;
};

}  // namespace puno::traffic
