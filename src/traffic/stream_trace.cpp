#include "traffic/stream_trace.hpp"

#include <stdexcept>

#include "workloads/trace_format.hpp"

namespace puno::traffic {

namespace fmt = workloads::trace_format;

namespace {

/// Consumes the remainder of another node's txn block (cheap first-token
/// classification, no field decoding). `lineno` tracks the cursor's line.
void skip_foreign_block(std::ifstream& in, std::size_t& lineno) {
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string tok = fmt::first_token(line);
    if (tok.empty()) continue;
    if (tok == "end") return;
    if (tok == "txn") fmt::fail(lineno, "nested 'txn'");
    if (tok != "r" && tok != "w") {
      fmt::fail(lineno, "unknown directive '" + tok + "'");
    }
  }
  fmt::fail(lineno, "unterminated txn block");
}

}  // namespace

StreamTraceWorkload::StreamTraceWorkload(const std::string& path,
                                         NodeId num_nodes)
    : path_(path), name_("trace"), cursors_(num_nodes) {
  for (NodeId n = 0; n < num_nodes; ++n) {
    cursors_[n].in.open(path);
    if (!cursors_[n].in) {
      throw std::runtime_error("cannot open trace file: " + path);
    }
  }
  // Read the workload name from the header up front (progress displays want
  // it before the first next()); cursors still validate it on first read.
  std::ifstream head(path);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(head, line)) {
    ++lineno;
    const fmt::Line parsed = fmt::parse_line(line, lineno);
    if (parsed.kind == fmt::Line::Kind::kBlank) continue;
    if (parsed.kind != fmt::Line::Kind::kHeader) {
      fmt::fail(lineno, "missing 'trace-v1' header");
    }
    name_ = parsed.name;
    return;
  }
  fmt::fail(lineno, "empty trace");
}

std::optional<workloads::TxnDesc> StreamTraceWorkload::next(NodeId node) {
  Cursor& c = cursors_.at(node);
  if (c.done) return std::nullopt;

  std::string line;
  while (std::getline(c.in, line)) {
    ++c.lineno;
    const std::string tok = fmt::first_token(line);
    if (tok.empty()) continue;

    if (!c.header_seen) {
      if (tok != "trace-v1") fmt::fail(c.lineno, "missing 'trace-v1' header");
      c.header_seen = true;
      continue;
    }

    if (tok != "txn") {
      fmt::fail(c.lineno, "'" + tok + "' outside a txn block");
    }
    const fmt::Line head = fmt::parse_line(line, c.lineno);
    if (head.node != node) {
      skip_foreign_block(c.in, c.lineno);
      continue;
    }

    workloads::TxnDesc d;
    d.static_id = head.static_id;
    d.pre_think = head.pre;
    d.post_think = head.post;
    while (std::getline(c.in, line)) {
      ++c.lineno;
      const fmt::Line parsed = fmt::parse_line(line, c.lineno);
      switch (parsed.kind) {
        case fmt::Line::Kind::kBlank:
          continue;
        case fmt::Line::Kind::kOp:
          d.ops.push_back(parsed.op);
          continue;
        case fmt::Line::Kind::kEnd:
          ++c.replayed;
          return d;
        case fmt::Line::Kind::kTxn:
          fmt::fail(c.lineno, "nested 'txn'");
        case fmt::Line::Kind::kHeader:
          fmt::fail(c.lineno, "duplicate 'trace-v1' header");
      }
    }
    fmt::fail(c.lineno, "unterminated txn block");
  }

  if (!c.header_seen) fmt::fail(c.lineno, "empty trace");
  c.done = true;
  return std::nullopt;
}

std::uint64_t StreamTraceWorkload::replayed(NodeId node) const {
  return cursors_.at(node).replayed;
}

}  // namespace puno::traffic
