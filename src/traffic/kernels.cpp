#include "traffic/kernels.hpp"

namespace puno::traffic {

namespace {

// Anchor-region layout (block indices inside Placement::anchor_addr space).
constexpr std::uint64_t kQueueHeadAnchor = 0;
constexpr std::uint64_t kQueueTailAnchor = 1;
constexpr std::uint64_t kCounterAnchorBase = 16;   // counter_blocks cells
constexpr std::uint64_t kBucketAnchorBase = 64;    // bucket directory
constexpr std::uint64_t kBucketCount = 512;

// Static transaction sites (TxLB keys); one per (kernel, operation) pair.
constexpr StaticTxId kSiteMapGet = 1;
constexpr StaticTxId kSiteMapPut = 2;
constexpr StaticTxId kSiteSetContains = 3;
constexpr StaticTxId kSiteSetUpdate = 4;
constexpr StaticTxId kSiteQueueEnq = 5;
constexpr StaticTxId kSiteQueueDeq = 6;
constexpr StaticTxId kSiteCounterInc = 7;

[[nodiscard]] constexpr std::uint64_t pc_base(StaticTxId site) noexcept {
  return (static_cast<std::uint64_t>(site) + 1) << 16;
}

[[nodiscard]] std::uint64_t bucket_of(std::uint64_t key) noexcept {
  // splitmix64 finalizer decorrelates adjacent keys across buckets.
  std::uint64_t x = key;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x % kBucketCount;
}

}  // namespace

const char* to_string(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::kMap: return "map";
    case KernelKind::kSet: return "set";
    case KernelKind::kQueue: return "queue";
    case KernelKind::kCounter: return "counter";
  }
  return "?";
}

std::optional<KernelKind> kernel_kind_from_string(
    std::string_view s) noexcept {
  if (s == "map") return KernelKind::kMap;
  if (s == "set") return KernelKind::kSet;
  if (s == "queue") return KernelKind::kQueue;
  if (s == "counter") return KernelKind::kCounter;
  return std::nullopt;
}

KernelGen::KernelGen(KernelKind kind, const TrafficConfig& cfg,
                     std::uint32_t block_bytes)
    : kind_(kind), cfg_(cfg), placement_(cfg, block_bytes) {}

std::uint32_t KernelGen::think(sim::Rng& rng) const {
  const std::uint32_t lo = cfg_.op_think_min;
  const std::uint32_t hi =
      cfg_.op_think_max < lo ? lo : cfg_.op_think_max;
  return static_cast<std::uint32_t>(rng.next_range(lo, hi));
}

void KernelGen::push_op(workloads::TxnDesc& d, bool is_store, Addr addr,
                        std::uint64_t pc, sim::Rng& rng) const {
  workloads::TxOp op;
  op.is_store = is_store;
  op.addr = addr;
  op.pc = pc;
  op.pre_think = think(rng);
  d.ops.push_back(op);
}

workloads::TxnDesc KernelGen::make(std::uint64_t key,
                                   std::uint64_t arrival_cycle,
                                   sim::Rng& rng) const {
  workloads::TxnDesc d;
  const Addr key_block = placement_.key_addr(key);

  switch (kind_) {
    case KernelKind::kMap: {
      const Addr bucket =
          placement_.anchor_addr(kBucketAnchorBase + bucket_of(key));
      if (rng.next_bool(cfg_.update_frac)) {
        d.static_id = kSiteMapPut;
        const std::uint64_t pcs = pc_base(kSiteMapPut);
        push_op(d, false, bucket, pcs + 0, rng);     // walk bucket head
        push_op(d, false, key_block, pcs + 1, rng);  // find entry
        push_op(d, true, key_block, pcs + 2, rng);   // RMW value in place
        // One in eight puts rewires the bucket head (insert/rehash), the
        // directory-write that serializes every reader of the bucket.
        if (rng.next_bool(0.125)) {
          push_op(d, true, bucket, pcs + 3, rng);
        }
      } else {
        d.static_id = kSiteMapGet;
        const std::uint64_t pcs = pc_base(kSiteMapGet);
        push_op(d, false, bucket, pcs + 0, rng);
        push_op(d, false, key_block, pcs + 1, rng);
      }
      break;
    }
    case KernelKind::kSet: {
      if (rng.next_bool(cfg_.update_frac)) {
        d.static_id = kSiteSetUpdate;
        const std::uint64_t pcs = pc_base(kSiteSetUpdate);
        push_op(d, false, key_block, pcs + 0, rng);  // membership probe
        push_op(d, true, key_block, pcs + 1, rng);   // flip membership bit
      } else {
        d.static_id = kSiteSetContains;
        const std::uint64_t pcs = pc_base(kSiteSetContains);
        push_op(d, false, key_block, pcs + 0, rng);
      }
      break;
    }
    case KernelKind::kQueue: {
      // The payload slot is the sampled key's block; head/tail anchors are
      // the globally shared hot cells every core RMWs.
      if (rng.next_bool(cfg_.update_frac)) {
        d.static_id = kSiteQueueEnq;
        const std::uint64_t pcs = pc_base(kSiteQueueEnq);
        const Addr tail = placement_.anchor_addr(kQueueTailAnchor);
        push_op(d, false, tail, pcs + 0, rng);       // load tail index
        push_op(d, true, key_block, pcs + 1, rng);   // store payload
        push_op(d, true, tail, pcs + 2, rng);        // bump tail (RMW)
      } else {
        d.static_id = kSiteQueueDeq;
        const std::uint64_t pcs = pc_base(kSiteQueueDeq);
        const Addr head = placement_.anchor_addr(kQueueHeadAnchor);
        push_op(d, false, head, pcs + 0, rng);       // load head index
        push_op(d, false, key_block, pcs + 1, rng);  // read payload
        push_op(d, true, head, pcs + 2, rng);        // bump head (RMW)
      }
      break;
    }
    case KernelKind::kCounter: {
      d.static_id = kSiteCounterInc;
      const std::uint64_t pcs = pc_base(kSiteCounterInc);
      const std::uint32_t cells =
          cfg_.counter_blocks == 0 ? 1 : cfg_.counter_blocks;
      // Skew the shard choice with the key sampler's key so hot keys map
      // to hot counters (a sharded global statistic, not uniform striping).
      const Addr cell =
          placement_.anchor_addr(kCounterAnchorBase + key % cells);
      push_op(d, false, cell, pcs + 0, rng);
      push_op(d, true, cell, pcs + 1, rng);
      break;
    }
  }

  (void)arrival_cycle;  // keys are already phase-shifted by the sampler
  return d;
}

}  // namespace puno::traffic
