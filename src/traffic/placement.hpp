// Memory-placement adversary: maps logical keys onto cache blocks.
//
// The HTM's conflict detector works at block granularity, so *where the
// allocator puts keys* decides whether two logically independent
// transactions conflict. This is the knob the TSX malloc-placement study
// turns: co-locating unrelated hot objects on one line manufactures
// transactional false sharing no software layer above can see.
//
//   spread   one key per block — co-location forbidden (the friendly
//            allocator; conflicts are all logically real)
//   pack     keys_per_block adjacent keys share a block (arrays/pools)
//   shuffle  keys_per_block *unrelated* keys share a block: a
//            deterministic keyspace permutation packs arbitrary keys
//            together, the adversarial-allocator worst case
//
// The key region sits above a small reserved anchor region (queue heads,
// counter cells) so kernels and keys never alias by construction.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace puno::traffic {

/// Blocks reserved at the bottom of the address space for kernel anchor
/// structures (queue head/tail, counter cells, bucket directory base).
inline constexpr std::uint64_t kAnchorRegionBlocks = 1024;

class Placement {
 public:
  Placement(const TrafficConfig& cfg, std::uint32_t block_bytes)
      : mode_(cfg.placement),
        keys_(cfg.keys == 0 ? 1 : cfg.keys),
        per_block_(cfg.keys_per_block == 0 ? 1 : cfg.keys_per_block),
        block_bytes_(block_bytes) {
    // Feistel domain: smallest even-bit-width power of two >= keys_.
    std::uint32_t bits = 2;
    while ((std::uint64_t{1} << bits) < keys_ && bits < 62) bits += 2;
    half_bits_ = bits / 2;
    half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
  }

  /// The address of logical key `key` (block-aligned; the simulator's
  /// conflict detection never looks below block granularity).
  [[nodiscard]] Addr key_addr(std::uint64_t key) const {
    std::uint64_t block;
    switch (mode_) {
      case PlacementMode::kSpread:
        block = key;
        break;
      case PlacementMode::kPack:
        block = key / per_block_;
        break;
      case PlacementMode::kShuffle:
        block = permute(key) / per_block_;
        break;
      default:
        block = key;
        break;
    }
    return (kAnchorRegionBlocks + block) * block_bytes_;
  }

  /// Anchor cell `i` (kernel-owned structure heads, below the key region).
  [[nodiscard]] Addr anchor_addr(std::uint64_t i) const {
    return (i % kAnchorRegionBlocks) * block_bytes_;
  }

  /// Distinct blocks the key region occupies under this placement.
  [[nodiscard]] std::uint64_t key_blocks() const {
    if (mode_ == PlacementMode::kSpread) return keys_;
    return (keys_ + per_block_ - 1) / per_block_;
  }

  [[nodiscard]] PlacementMode mode() const noexcept { return mode_; }

  /// Deterministic bijection over [0, keys_): a 4-round fixed-key Feistel
  /// network on the smallest power-of-two domain covering the keyspace,
  /// cycle-walked back into [0, keys_) (expected < 2 walks since the
  /// domain is < 4x the keyspace). Same key always lands on the same
  /// block, so the adversary is reproducible across runs and schemes.
  [[nodiscard]] std::uint64_t permute(std::uint64_t key) const {
    std::uint64_t x = key;
    do {
      x = feistel(x);
    } while (x >= keys_);
    return x;
  }

 private:
  [[nodiscard]] std::uint64_t feistel(std::uint64_t x) const {
    std::uint64_t left = x >> half_bits_;
    std::uint64_t right = x & half_mask_;
    for (int round = 0; round < 4; ++round) {
      const std::uint64_t f =
          round_fn(right + (static_cast<std::uint64_t>(round) << 32));
      const std::uint64_t next = left ^ (f & half_mask_);
      left = right;
      right = next;
    }
    return (left << half_bits_) | right;
  }

  /// splitmix64 finalizer as the Feistel round function.
  [[nodiscard]] static std::uint64_t round_fn(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  PlacementMode mode_;
  std::uint64_t keys_;
  std::uint64_t per_block_;
  std::uint64_t block_bytes_;
  std::uint32_t half_bits_ = 1;
  std::uint64_t half_mask_ = 1;
};

}  // namespace puno::traffic
