// Transactional data-structure kernels: the per-request transaction bodies
// the open-loop engine replays (Proust-style design space: map, set, queue,
// counter, with a tunable lookup/update mix).
//
// Each kernel turns one sampled key into a TxnDesc whose access pattern
// mirrors the real structure's sharing behaviour:
//
//   map      bucket-directory read + key-block access; updates RMW the key
//            block and occasionally rewire the bucket head
//   set      membership probe on the key block; updates RMW it
//   queue    MPMC queue: enqueue/dequeue RMW the shared tail/head anchor
//            and touch a payload slot — queue-head contention incarnate
//   counter  sharded hot counters: pure RMW on a tiny anchor set
//
// Static transaction ids and PCs are stable per (kernel, operation) site so
// PC-indexed hardware (RMW predictor, TxLB) sees the same code locations
// across dynamic instances, as with the STAMP profiles.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "traffic/placement.hpp"
#include "traffic/sampler.hpp"
#include "workloads/workload.hpp"

namespace puno::traffic {

enum class KernelKind : std::uint8_t {
  kMap = 0,
  kSet = 1,
  kQueue = 2,
  kCounter = 3,
};

/// Registry names are "traffic-" + this spelling.
[[nodiscard]] const char* to_string(KernelKind k) noexcept;
[[nodiscard]] std::optional<KernelKind> kernel_kind_from_string(
    std::string_view s) noexcept;

/// Stateless descriptor factory; all randomness comes from the caller's
/// per-node Rng, all placement from the shared (deterministic) adversary.
class KernelGen {
 public:
  KernelGen(KernelKind kind, const TrafficConfig& cfg,
            std::uint32_t block_bytes);

  /// Builds the transaction for a request on `key` arriving at
  /// `arrival_cycle`. pre/post think are left 0 — the open-loop driver owns
  /// inter-transaction timing.
  [[nodiscard]] workloads::TxnDesc make(std::uint64_t key,
                                        std::uint64_t arrival_cycle,
                                        sim::Rng& rng) const;

  [[nodiscard]] KernelKind kind() const noexcept { return kind_; }
  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }

 private:
  [[nodiscard]] std::uint32_t think(sim::Rng& rng) const;
  void push_op(workloads::TxnDesc& d, bool is_store, Addr addr,
               std::uint64_t pc, sim::Rng& rng) const;

  KernelKind kind_;
  TrafficConfig cfg_;
  Placement placement_;
};

}  // namespace puno::traffic
