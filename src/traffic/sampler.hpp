// Skewed key sampling for the production-traffic engine.
//
// Two families cover the service-traffic design space:
//
//  - ZipfianSampler: rank-frequency skew over an arbitrarily large keyspace
//    (the YCSB/Gray et al. rejection-free construction). theta = 0 is
//    uniform, 0.99 the YCSB default, > 1 concentrates most accesses on a
//    handful of keys — the hot-key regime where block-granular conflict
//    detection starts aborting logically independent transactions.
//  - HotSetSampler: an explicit hot set of H keys absorbing a fixed
//    fraction of accesses, the classic "working set + long tail" model.
//
// Both are wrapped by KeySampler, which adds phase shift: the sampler's
// *preference order* is rotated across the keyspace every phase_cycles of
// arrival time, so the hot keys migrate mid-run (diurnal contention drift).
// Every draw comes from a caller-owned sim::Rng, so streams are
// seed-deterministic and per-node decorrelated.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace puno::traffic {

/// Zipf(theta) over [0, n): P(rank k) ∝ 1 / (k+1)^theta. Uses the
/// Gray et al. closed-form inverse (as in YCSB's ZipfianGenerator): O(n)
/// zeta precomputation at construction, O(1) per draw, no rejection loop.
class ZipfianSampler {
 public:
  ZipfianSampler(std::uint64_t n, double theta)
      : n_(n == 0 ? 1 : n), theta_(theta) {
    // The closed-form inverse has a pole at theta == 1; nudge off it (the
    // distribution is continuous in theta, so this is invisible in draws).
    if (theta_ > 0.999999 && theta_ < 1.000001) theta_ = 0.999999;
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Draws a rank in [0, n); rank 0 is the hottest key.
  [[nodiscard]] std::uint64_t next(sim::Rng& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto k = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  [[nodiscard]] static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

/// Hot-set skew: with probability hot_frac draw uniformly from the first
/// `hot` keys, otherwise uniformly from the remaining n - hot.
class HotSetSampler {
 public:
  HotSetSampler(std::uint64_t n, std::uint64_t hot, double hot_frac)
      : n_(n == 0 ? 1 : n),
        hot_(hot == 0 ? 1 : (hot >= n_ ? n_ : hot)),
        hot_frac_(hot_frac) {}

  [[nodiscard]] std::uint64_t next(sim::Rng& rng) const {
    if (hot_ >= n_ || rng.next_bool(hot_frac_)) {
      return rng.next_below(hot_);
    }
    return hot_ + rng.next_below(n_ - hot_);
  }

 private:
  std::uint64_t n_;
  std::uint64_t hot_;
  double hot_frac_;
};

/// The engine-facing sampler: Zipf or hot-set skew (per TrafficConfig) with
/// a phase rotation on top. The underlying sampler produces a *rank* (hot
/// keys first); the rotation maps ranks onto actual keys with an offset
/// that advances every cfg.phase_cycles of arrival time, so which keys are
/// hot changes mid-run while the skew *shape* stays fixed.
class KeySampler {
 public:
  explicit KeySampler(const TrafficConfig& cfg)
      : keys_(cfg.keys == 0 ? 1 : cfg.keys),
        phase_cycles_(cfg.phase_cycles),
        use_hot_set_(cfg.hot_keys > 0),
        zipf_(keys_, cfg.hot_keys > 0 ? 0.0 : cfg.zipf_theta),
        hot_(keys_, cfg.hot_keys, cfg.hot_frac) {}

  /// Draws the key accessed by a transaction arriving at `arrival_cycle`.
  [[nodiscard]] std::uint64_t next(std::uint64_t arrival_cycle,
                                   sim::Rng& rng) const {
    const std::uint64_t rank =
        use_hot_set_ ? hot_.next(rng) : zipf_.next(rng);
    return rotate(rank, phase(arrival_cycle));
  }

  /// Phase index for an arrival time (0 when phase shifting is off).
  [[nodiscard]] std::uint64_t phase(std::uint64_t arrival_cycle) const {
    return phase_cycles_ == 0 ? 0 : arrival_cycle / phase_cycles_;
  }

  /// Rank -> key under phase `p`: a keyspace rotation by a per-phase offset
  /// decorrelated across phases (multiplying by a large odd constant), so
  /// successive hot sets land in unrelated regions rather than sliding.
  [[nodiscard]] std::uint64_t rotate(std::uint64_t rank,
                                     std::uint64_t p) const {
    if (p == 0) return rank;
    const std::uint64_t offset = (p * 0x9E3779B97F4A7C15ULL) % keys_;
    return (rank + offset) % keys_;
  }

  [[nodiscard]] std::uint64_t keys() const noexcept { return keys_; }

 private:
  std::uint64_t keys_;
  std::uint64_t phase_cycles_;
  bool use_hot_set_;
  ZipfianSampler zipf_;
  HotSetSampler hot_;
};

}  // namespace puno::traffic
