#include "traffic/registry.hpp"

#include <stdexcept>

#include "traffic/engine.hpp"
#include "workloads/stamp.hpp"

namespace puno::traffic::registry {

namespace {

[[nodiscard]] std::vector<Entry> build_entries() {
  std::vector<Entry> out;
  for (const std::string& name : workloads::stamp::benchmark_names()) {
    Entry e;
    e.name = name;
    e.description = "STAMP profile (" +
                    workloads::stamp::input_parameters(name) + ")";
    out.push_back(std::move(e));
  }
  const struct {
    KernelKind kind;
    const char* what;
  } kernels[] = {
      {KernelKind::kMap, "open-loop hash-map kernel: bucket walk + "
                         "key lookup/update (traffic.update_frac)"},
      {KernelKind::kSet, "open-loop set kernel: membership probe, "
                         "RMW update on the key block"},
      {KernelKind::kQueue, "open-loop MPMC queue kernel: shared head/tail "
                           "anchors, queue-head contention"},
      {KernelKind::kCounter, "open-loop sharded-counter kernel: pure RMW "
                             "on traffic.counter_blocks hot blocks"},
  };
  for (const auto& k : kernels) {
    Entry e;
    e.name = std::string("traffic-") + to_string(k.kind);
    e.description = k.what;
    e.open_loop = true;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

const std::vector<Entry>& entries() {
  static const std::vector<Entry> table = build_entries();
  return table;
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(entries().size());
  for (const Entry& e : entries()) out.push_back(e.name);
  return out;
}

bool known(const std::string& name) {
  for (const Entry& e : entries()) {
    if (e.name == name) return true;
  }
  return false;
}

bool is_traffic(const std::string& name) {
  for (const Entry& e : entries()) {
    if (e.name == name) return e.open_loop;
  }
  return false;
}

std::unique_ptr<workloads::Workload> make(const std::string& name,
                                          const SystemConfig& cfg,
                                          double scale) {
  constexpr const char* kPrefix = "traffic-";
  if (name.rfind(kPrefix, 0) == 0) {
    const auto kind = kernel_kind_from_string(name.substr(8));
    if (!kind) throw std::invalid_argument("unknown workload: " + name);
    return std::make_unique<OpenLoopWorkload>(
        *kind, cfg.traffic, static_cast<NodeId>(cfg.num_nodes), cfg.seed,
        cfg.cache.block_bytes, scale);
  }
  if (!known(name)) throw std::invalid_argument("unknown workload: " + name);
  return workloads::stamp::make(name, cfg.num_nodes, cfg.seed, scale);
}

}  // namespace puno::traffic::registry
