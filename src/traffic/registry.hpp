// The workload registry: one namespace that knows every runnable workload —
// the 8 STAMP-like profiles and the 4 open-loop traffic kernels — so the
// CLIs, the grid expander and run_experiment resolve names through a single
// table instead of each hard-coding stamp::benchmark_names().
//
// Traffic kernels are registered as "traffic-<kernel>" (traffic-map,
// traffic-set, traffic-queue, traffic-counter) and read SystemConfig::traffic
// at construction; the STAMP profiles ignore it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "workloads/workload.hpp"

namespace puno::traffic::registry {

struct Entry {
  std::string name;
  std::string description;  ///< One line, for --list-workloads.
  bool open_loop = false;   ///< True for the traffic-* kernels.
};

/// Every registered workload, STAMP profiles first, in stable order.
[[nodiscard]] const std::vector<Entry>& entries();

/// Just the names, in entries() order (grid validation, CLI errors).
[[nodiscard]] std::vector<std::string> names();

[[nodiscard]] bool known(const std::string& name);

/// True when `name` is an open-loop traffic kernel ("traffic-*").
[[nodiscard]] bool is_traffic(const std::string& name);

/// Builds the named workload. Traffic kernels read cfg.traffic /
/// cfg.cache.block_bytes / cfg.num_nodes / cfg.seed; STAMP profiles read
/// cfg.num_nodes / cfg.seed and their own calibration tables. `scale`
/// multiplies the per-node transaction (or arrival) quota. Throws
/// std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<workloads::Workload> make(
    const std::string& name, const SystemConfig& cfg, double scale = 1.0);

}  // namespace puno::traffic::registry
