// Open-loop arrival processes: when do requests reach a core, independent
// of when the core can serve them.
//
// Every process is built on a Poisson stream at the configured *peak* rate,
// thinned by a deterministic time-varying acceptance probability (Lewis &
// Shedler's thinning method). This yields exact nonhomogeneous-Poisson
// arrivals for the on/off and diurnal schedules while keeping every draw a
// plain Rng call — seed-deterministic, one independent stream per core.
//
//   poisson  constant rate r
//   onoff    square wave: "on" for on_frac of each period at rate
//            r * boost, "off" at a floor rate chosen so the mean stays r
//   diurnal  r * (1 + A sin(2 pi t / period)), a compressed day/night cycle
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace puno::traffic {

/// Generates one core's monotonically non-decreasing arrival times, lazily.
class ArrivalSchedule {
 public:
  /// `stream_seed`/`stream_id` seed this core's private Rng.
  ArrivalSchedule(const TrafficConfig& cfg, std::uint64_t seed,
                  std::uint64_t stream_id)
      : cfg_(cfg), rng_(seed, stream_id) {
    mean_rate_ = static_cast<double>(cfg.rate_per_kcycle) / 1000.0;
    if (mean_rate_ <= 0.0) mean_rate_ = 1e-6;
    switch (cfg.arrival) {
      case ArrivalKind::kPoisson:
        peak_rate_ = mean_rate_;
        break;
      case ArrivalKind::kOnOff: {
        const double boost = std::max(1.0, cfg.burst_boost);
        peak_rate_ = mean_rate_ * boost;
        const double on = std::min(std::max(cfg.burst_on_frac, 0.0), 1.0);
        // Solve on*boost + (1-on)*floor = 1 for the off-rate multiplier;
        // clamp at 0 when the burst already carries more than the mean.
        off_mult_ = on >= 1.0
                        ? 1.0
                        : std::max(0.0, (1.0 - on * boost) / (1.0 - on));
        on_frac_ = on;
        break;
      }
      case ArrivalKind::kDiurnal: {
        const double amp = std::min(std::max(cfg.diurnal_amplitude, 0.0),
                                    0.999);
        amplitude_ = amp;
        peak_rate_ = mean_rate_ * (1.0 + amp);
        break;
      }
    }
  }

  /// The next arrival time at or after the previous one. Strictly advances
  /// by at least one cycle per arrival so a bounded queue drains in finite
  /// simulated time.
  [[nodiscard]] std::uint64_t next() {
    for (;;) {
      // Exponential inter-arrival at the peak rate (candidate event).
      const double u = rng_.next_double();
      const double gap = -std::log(1.0 - u) / peak_rate_;
      const auto step = static_cast<std::uint64_t>(
          std::max(1.0, std::ceil(gap)));
      t_ += step;
      // Thinning: accept with prob rate(t)/peak.
      const double accept = rate_multiplier(t_) * mean_rate_ / peak_rate_;
      if (accept >= 1.0 || rng_.next_bool(accept)) return t_;
    }
  }

  /// Instantaneous rate multiplier m(t) (mean rate x m(t) = rate at t).
  [[nodiscard]] double rate_multiplier(std::uint64_t t) const {
    switch (cfg_.arrival) {
      case ArrivalKind::kPoisson:
        return 1.0;
      case ArrivalKind::kOnOff: {
        const std::uint64_t period =
            cfg_.burst_period == 0 ? 1 : cfg_.burst_period;
        const double pos = static_cast<double>(t % period) /
                           static_cast<double>(period);
        return pos < on_frac_ ? std::max(1.0, cfg_.burst_boost) : off_mult_;
      }
      case ArrivalKind::kDiurnal: {
        const std::uint64_t period =
            cfg_.diurnal_period == 0 ? 1 : cfg_.diurnal_period;
        const double phase = 2.0 * M_PI * static_cast<double>(t % period) /
                             static_cast<double>(period);
        return 1.0 + amplitude_ * std::sin(phase);
      }
    }
    return 1.0;
  }

  [[nodiscard]] double mean_rate() const noexcept { return mean_rate_; }

 private:
  TrafficConfig cfg_;
  sim::Rng rng_;
  std::uint64_t t_ = 0;  ///< Time of the last generated arrival.
  double mean_rate_ = 0.0;
  double peak_rate_ = 0.0;
  double on_frac_ = 0.0;
  double off_mult_ = 1.0;
  double amplitude_ = 0.0;
};

}  // namespace puno::traffic
