// The open-loop production-traffic driver.
//
// Closed-loop workloads (STAMP profiles, traces) hand the core a new
// transaction the moment the previous one commits, so offered load always
// equals service rate and contention collapse is invisible. Production
// services are open loop: requests arrive on their own schedule, queue in a
// bounded buffer, and are shed when the buffer is full. Under HTM that
// distinction is the whole story — a scheme that aborts 2x more does not
// just run 2x longer, it drops requests and stretches queue delay tails.
//
// OpenLoopWorkload implements the Workload interface on top of per-core
// arrival schedules (arrivals.hpp), skewed key sampling (sampler.hpp) and
// transactional kernels (kernels.hpp):
//
//  - attached to a sim::Kernel (the normal simulation path), next(node)
//    pumps that core's arrival process up to the current simulated cycle
//    into a bounded queue, drops past-capacity arrivals, and serves the
//    queue head. When the queue is empty with arrivals still to come, the
//    next future arrival is served with pre_think = (arrival - now) so the
//    core idles exactly until it lands. Pumping lazily at poll times is
//    *exact*: pops only ever happen at polls, so admitting arrivals in time
//    order against the running queue size (arrivals ahead of the poll's pop
//    at equal times) reproduces instant-by-instant bounded-queue semantics.
//
//  - unattached ("drain mode": workloads::analyze, punosim --record-trace),
//    next(node) yields every arrival in order with no queueing, no drops
//    and no waiting — a virtual clock advances along the arrival schedule so
//    phase-shifted key sampling still sees arrival time.
//
// Everything is seed-deterministic: each core owns two private Rng streams
// (arrival process / key+kernel draws), and descriptors are built in
// arrival order, so a given (seed, config) produces bit-identical traffic
// regardless of runner parallelism.
//
// Stats (created lazily at attach(), so non-traffic runs' stats output is
// byte-identical to before this engine existed):
//   traffic.offered      arrivals generated (admitted + dropped)
//   traffic.admitted     arrivals that fit in the bounded queue
//   traffic.dropped      arrivals shed at a full queue
//   traffic.begun        admitted arrivals handed to a core
//   traffic.queue_delay  histogram of admit -> serve delay (cycles)
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/kernels.hpp"
#include "traffic/sampler.hpp"
#include "workloads/workload.hpp"

namespace puno::traffic {

class OpenLoopWorkload final : public workloads::Workload {
 public:
  /// Queue-delay histogram cap (cycles); longer delays land in the overflow
  /// bucket, so tail percentiles read "cap or more".
  static constexpr std::size_t kDelayHistMax = 4096;

  /// `scale` multiplies cfg.arrivals_per_node (the ExperimentParams::scale
  /// convention the STAMP profiles use for transaction counts); the quota
  /// is rounded and floored at 1.
  OpenLoopWorkload(KernelKind kind, const TrafficConfig& cfg,
                   NodeId num_nodes, std::uint64_t seed,
                   std::uint32_t block_bytes, double scale = 1.0);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::optional<workloads::TxnDesc> next(NodeId node) override;

  /// Switches from drain mode to open-loop mode: next() reads simulated
  /// time from `k` and binds the traffic.* stats in k.stats(). Call before
  /// the first next() (metrics::run_experiment does, right after Cmp
  /// construction).
  void attach(sim::Kernel& k);

  [[nodiscard]] bool attached() const noexcept { return kernel_ != nullptr; }
  [[nodiscard]] KernelKind kind() const noexcept { return gen_.kind(); }
  [[nodiscard]] const KernelGen& kernel_gen() const noexcept { return gen_; }
  /// Arrival quota per core after scaling.
  [[nodiscard]] std::uint64_t quota() const noexcept { return quota_; }

  // Aggregate outcomes (mirrors of the traffic.* stats; also live in drain
  // mode, where nothing is ever queued or dropped).
  [[nodiscard]] std::uint64_t offered() const noexcept { return offered_; }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t begun() const noexcept { return begun_; }

 private:
  struct Queued {
    std::uint64_t arrival = 0;  ///< Cycle the request reached the core.
    workloads::TxnDesc desc;
  };

  struct NodeState {
    NodeState(const TrafficConfig& cfg, std::uint64_t seed, NodeId n)
        : arrivals(cfg, seed, 0xA00 + n), gen_rng(seed, 0xB00 + n) {}

    ArrivalSchedule arrivals;
    sim::Rng gen_rng;          ///< Key sampling + kernel body draws.
    std::uint64_t generated = 0;
    std::uint64_t next_time = 0;  ///< Pending arrival (valid if next_ready).
    bool next_ready = false;
    std::deque<Queued> queue;
  };

  /// Draws ns.next_time if no arrival is pending. Returns false once the
  /// core's quota is exhausted.
  bool ensure_next(NodeState& ns);
  /// Builds the descriptor for an arrival at `when` (consumes gen_rng draws
  /// in arrival order — the determinism contract).
  [[nodiscard]] workloads::TxnDesc build(NodeState& ns, std::uint64_t when);
  /// Admits every arrival at or before `now` against the bounded queue.
  void pump(NodeState& ns, std::uint64_t now);
  void count_offered(bool admitted_one);

  std::string name_;
  TrafficConfig cfg_;
  KeySampler sampler_;
  KernelGen gen_;
  std::uint64_t quota_;
  std::vector<NodeState> nodes_;

  sim::Kernel* kernel_ = nullptr;  // not owned; null = drain mode
  sim::Counter* st_offered_ = nullptr;
  sim::Counter* st_admitted_ = nullptr;
  sim::Counter* st_dropped_ = nullptr;
  sim::Counter* st_begun_ = nullptr;
  sim::Histogram* st_delay_ = nullptr;

  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t begun_ = 0;
};

}  // namespace puno::traffic
