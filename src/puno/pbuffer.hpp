// Transaction Priority Buffer (P-Buffer), Section III.B / Figure 5.
//
// One per directory (i.e. per node). Entries record the latest known
// transaction priority (timestamp) of nodes on the CMP, refreshed from
// every incoming transactional coherence request. Each entry carries a 2-bit
// validity counter driven by a shared rollover timeout:
//
//   * timeout  -> every non-zero validity counter decrements (staleness);
//   * update   -> the entry's counter increments, and an update to a
//                 0-validity entry increments twice (Figure 5(b)), giving
//                 freshly revived entries a longer grace period;
//   * only entries with validity counter > 1 participate in unicast
//     prediction.
//
// Misprediction feedback (Section III.C) zeroes the offending entry.
//
// The paper sizes the buffer at one entry per node of its 16-core CMP.
// Past that, the buffer is capacity-bounded: it tracks at most `capacity`
// distinct nodes, and learning an untracked node when full evicts a victim
// deterministically — lowest validity first (most stale), then youngest
// timestamp (lowest priority, least likely to win a conflict), then the
// highest node id. Evictions are the P-Buffer-pressure signal the scale
// study reports (puno.pbuffer_evictions). With capacity >= num_nodes no
// eviction can ever occur, so the paper's 16-node configuration behaves
// exactly as the unbounded seed did.
//
// Units: `ts` is a transaction timestamp (priority), not a cycle count —
// it is derived as begin_cycle * num_nodes + node, so smaller means older
// and older wins conflicts; kInvalidTimestamp marks "no known priority".
// The validity counter is dimensionless; the *cadence* of on_timeout() is
// the directory's adaptive validity timeout, measured in cycles and owned
// by PunoDirectory (puno_directory.hpp), not by this class.
//
// Ownership: one PBuffer is owned by value by each node's PunoDirectory.
// get() returns a reference into the table that is only valid until the
// next update — callers (unicast prediction) copy the fields they need
// within the same cycle and never retain the reference.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace puno::core {

class PBuffer {
 public:
  struct Entry {
    Timestamp ts = kInvalidTimestamp;
    std::uint8_t validity = 0;  ///< 2-bit saturating counter, 0..3.
  };

  /// Unbounded form (capacity == node count): the paper's configuration.
  explicit PBuffer(std::uint32_t num_nodes) : PBuffer(num_nodes, num_nodes) {}

  /// Capacity-bounded form: track at most `capacity` of `num_nodes` nodes.
  PBuffer(std::uint32_t capacity, std::uint32_t num_nodes)
      : slots_(num_nodes), capacity_(capacity == 0 ? num_nodes : capacity) {}

  /// Refreshes node `n`'s priority from an incoming transactional request,
  /// evicting a victim first if the buffer is full and `n` is untracked.
  void update(NodeId n, Timestamp ts) {
    assert(n < slots_.size());
    Slot& s = slots_[n];
    if (!s.tracked) {
      if (tracked_ == capacity_) evict_one();
      s.tracked = true;
      s.e = Entry{};
      ++tracked_;
    }
    s.e.ts = ts;
    // Figure 5(b): +1 on update, +2 when reviving a fully stale entry.
    const std::uint8_t inc = s.e.validity == 0 ? 2 : 1;
    s.e.validity = static_cast<std::uint8_t>(
        s.e.validity + inc > 3 ? 3 : s.e.validity + inc);
  }

  /// Rollover-counter timeout: age every entry.
  void on_timeout() {
    for (Slot& s : slots_) {
      if (s.e.validity > 0) --s.e.validity;
    }
  }

  /// Misprediction feedback: the recorded priority was stale; kill it. The
  /// entry stays allocated (a zero-validity entry, as in the paper).
  void invalidate(NodeId n) {
    assert(n < slots_.size());
    slots_[n].e.validity = 0;
  }

  /// Untracked nodes read as an empty entry (no priority, zero validity).
  [[nodiscard]] const Entry& get(NodeId n) const {
    assert(n < slots_.size());
    return slots_[n].e;
  }

  /// True if entry `n` may be used for unicast prediction (validity > 1,
  /// Section III.B).
  [[nodiscard]] bool usable(NodeId n,
                            std::uint8_t threshold = 1) const {
    const Entry& e = slots_[n].e;
    return e.validity > threshold && e.ts != kInvalidTimestamp;
  }

  [[nodiscard]] bool tracked(NodeId n) const {
    assert(n < slots_.size());
    return slots_[n].tracked;
  }
  [[nodiscard]] std::uint32_t tracked_count() const noexcept {
    return tracked_;
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  /// Node-id index range (== num_nodes).
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }
  /// Total capacity evictions so far (the scale study's pressure metric).
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Slot {
    Entry e;
    bool tracked = false;
  };

  void evict_one() {
    // Deterministic victim: lowest validity, then youngest (largest)
    // timestamp — kInvalidTimestamp sorts youngest of all — then highest id.
    NodeId victim = kInvalidNode;
    std::uint8_t vv = 0;
    Timestamp vts = 0;
    for (NodeId n = 0; n < slots_.size(); ++n) {
      const Slot& s = slots_[n];
      if (!s.tracked) continue;
      if (victim == kInvalidNode || s.e.validity < vv ||
          (s.e.validity == vv && s.e.ts >= vts)) {
        victim = n;
        vv = s.e.validity;
        vts = s.e.ts;
      }
    }
    assert(victim != kInvalidNode);
    slots_[victim] = Slot{};
    --tracked_;
    ++evictions_;
  }

  std::vector<Slot> slots_;  ///< Indexed by node id.
  std::uint32_t capacity_;
  std::uint32_t tracked_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace puno::core
