// Transaction Priority Buffer (P-Buffer), Section III.B / Figure 5.
//
// One per directory (i.e. per node). N entries record the latest known
// transaction priority (timestamp) of each node on the CMP, refreshed from
// every incoming transactional coherence request. Each entry carries a 2-bit
// validity counter driven by a shared rollover timeout:
//
//   * timeout  -> every non-zero validity counter decrements (staleness);
//   * update   -> the entry's counter increments, and an update to a
//                 0-validity entry increments twice (Figure 5(b)), giving
//                 freshly revived entries a longer grace period;
//   * only entries with validity counter > 1 participate in unicast
//     prediction.
//
// Misprediction feedback (Section III.C) zeroes the offending entry.
//
// Units: `ts` is a transaction timestamp (priority), not a cycle count —
// it is derived as begin_cycle * num_nodes + node, so smaller means older
// and older wins conflicts; kInvalidTimestamp marks "no known priority".
// The validity counter is dimensionless; the *cadence* of on_timeout() is
// the directory's adaptive validity timeout, measured in cycles and owned
// by PunoDirectory (puno_directory.hpp), not by this class.
//
// Ownership: one PBuffer is owned by value by each node's PunoDirectory.
// get() returns a reference into the table that is only valid until the
// next update — callers (unicast prediction) copy the fields they need
// within the same cycle and never retain the reference.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace puno::core {

class PBuffer {
 public:
  struct Entry {
    Timestamp ts = kInvalidTimestamp;
    std::uint8_t validity = 0;  ///< 2-bit saturating counter, 0..3.
  };

  explicit PBuffer(std::uint32_t num_entries) : entries_(num_entries) {}

  /// Refreshes node `n`'s priority from an incoming transactional request.
  void update(NodeId n, Timestamp ts) {
    assert(n < entries_.size());
    Entry& e = entries_[n];
    e.ts = ts;
    // Figure 5(b): +1 on update, +2 when reviving a fully stale entry.
    const std::uint8_t inc = e.validity == 0 ? 2 : 1;
    e.validity = static_cast<std::uint8_t>(
        e.validity + inc > 3 ? 3 : e.validity + inc);
  }

  /// Rollover-counter timeout: age every entry.
  void on_timeout() {
    for (Entry& e : entries_) {
      if (e.validity > 0) --e.validity;
    }
  }

  /// Misprediction feedback: the recorded priority was stale; kill it.
  void invalidate(NodeId n) {
    assert(n < entries_.size());
    entries_[n].validity = 0;
  }

  [[nodiscard]] const Entry& get(NodeId n) const {
    assert(n < entries_.size());
    return entries_[n];
  }

  /// True if entry `n` may be used for unicast prediction (validity > 1,
  /// Section III.B).
  [[nodiscard]] bool usable(NodeId n,
                            std::uint8_t threshold = 1) const {
    const Entry& e = entries_[n];
    return e.validity > threshold && e.ts != kInvalidTimestamp;
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace puno::core
