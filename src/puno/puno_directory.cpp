#include "puno/puno_directory.hpp"

#include <algorithm>
#include <bit>

#include "coherence/directory.hpp"
#include "trace/recorder.hpp"

namespace puno::core {

PunoDirectory::PunoDirectory(sim::Kernel& kernel, const SystemConfig& cfg,
                             NodeId node)
    : kernel_(kernel),
      cfg_(cfg),
      node_(node),
      pbuf_(cfg.effective_pbuffer_entries(), cfg.num_nodes),
      period_(cfg.puno.min_timeout),
      predictions_(kernel.stats().counter("puno.unicast_predictions")),
      multicast_fallbacks_(kernel.stats().counter("puno.multicast_fallbacks")) {
}

void PunoDirectory::observe_request(NodeId src, Timestamp ts,
                                    Cycle avg_txn_len) {
  const std::uint64_t evictions_before = pbuf_.evictions();
  pbuf_.update(src, ts);
  if (pbuf_.evictions() != evictions_before) {
    // Lazily created: a P-Buffer with capacity >= num_nodes never evicts,
    // so the counter never appears in those runs' stats dumps.
    if (pbuffer_evictions_ == nullptr) {
      pbuffer_evictions_ = &kernel_.stats().counter("puno.pbuffer_evictions");
    }
    pbuffer_evictions_->add(pbuf_.evictions() - evictions_before);
  }
  if (avg_txn_len > 0) {
    // Adaptive timeout: EWMA of the requesters' average transaction lengths,
    // scaled by the configured fraction.
    const auto target = static_cast<Cycle>(
        static_cast<double>(avg_txn_len) * cfg_.puno.timeout_fraction);
    const Cycle ewma = (period_ + target) / 2;
    period_ = std::clamp<Cycle>(ewma, cfg_.puno.min_timeout,
                                cfg_.puno.max_timeout);
  }
  if (!rollover_armed_) {
    rollover_armed_ = true;
    schedule_rollover();
  }
}

void PunoDirectory::schedule_rollover() {
  // The 32-bit rollover counter of Figure 5(a): on overflow, all validity
  // counters age by one and the counter restarts with the current period.
  kernel_.schedule(period_, [this] {
    pbuf_.on_timeout();
    schedule_rollover();
  });
}

NodeId PunoDirectory::predict_unicast(const coherence::SharerSet& sharers,
                                      NodeId requester, Timestamp req_ts,
                                      NodeId ud_hint) {
  // No unicast for single-sharer lines: false aborting needs at least one
  // nacker plus one aborted sharer, which a lone sharer cannot produce.
  if (sharers.count() < cfg_.puno.unicast_min_sharers) {
    multicast_fallbacks_.add();
    PUNO_TEV(kernel_, trace::Cat::kPuno,
             (trace::TraceEvent{.cycle = kernel_.now(),
                                .ts = req_ts,
                                .a = requester,
                                .node = node_,
                                .kind = trace::EventKind::kUdFallback}));
    return kInvalidNode;
  }
  // The UD pointer indexes the P-Buffer; unicast only when the pointed-to
  // sharer is still predicted valid and out-prioritizes the requester.
  if (cfg_.puno.enable_unicast && ud_hint != kInvalidNode &&
      sharers.contains(ud_hint) &&
      pbuf_.usable(ud_hint, cfg_.puno.validity_threshold) &&
      pbuf_.get(ud_hint).ts < req_ts) {
    predictions_.add();
    PUNO_TEV(kernel_, trace::Cat::kPuno,
             (trace::TraceEvent{.cycle = kernel_.now(),
                                .ts = req_ts,
                                .a = requester,
                                .b = pbuf_.get(ud_hint).ts,
                                .node = node_,
                                .peer = ud_hint,
                                .kind = trace::EventKind::kUdPredict}));
    return ud_hint;
  }
  multicast_fallbacks_.add();
  PUNO_TEV(kernel_, trace::Cat::kPuno,
           (trace::TraceEvent{.cycle = kernel_.now(),
                              .ts = req_ts,
                              .a = requester,
                              .node = node_,
                              .kind = trace::EventKind::kUdFallback}));
  return kInvalidNode;
}

NodeId PunoDirectory::recompute_ud(const coherence::SharerSet& sharers) {
  NodeId best = kInvalidNode;
  Timestamp best_ts = kInvalidTimestamp;
  // Ascending-id iteration keeps tie-breaks (strictly-older wins; equal
  // timestamps keep the lowest id) identical to the pre-SharerSet loop.
  sharers.for_each([&](NodeId n) {
    if (n >= pbuf_.size()) return;
    const PBuffer::Entry& e = pbuf_.get(n);
    if (e.validity == 0 || e.ts == kInvalidTimestamp) return;
    if (e.ts < best_ts) {
      best_ts = e.ts;
      best = n;
    }
  });
  return best;
}

void PunoDirectory::on_misprediction(NodeId mp_node) {
  if (mp_node != kInvalidNode && mp_node < pbuf_.size()) {
    pbuf_.invalidate(mp_node);
  }
}

}  // namespace puno::core
