// PUNO's directory-side assist: unicast-destination prediction.
//
// Implements coherence::DirectoryAssist on top of the P-Buffer, the per-entry
// UD (Unicast Destination) pointers (stored inside the directory entries and
// recomputed here off the critical path), and the adaptive rollover timeout:
// the timeout period tracks an exponentially weighted average of the
// transaction lengths that requesters piggyback on their requests, clamped
// to [min_timeout, max_timeout] (Section III.B notes the period is derived
// from the average transaction length so that workloads with long
// transactions age their priorities more slowly).
//
// Units: `avg_txn_len`, `timeout_period()` and `prediction_latency()` are
// in simulated cycles (the 2-cycle prediction latency models the P-Buffer
// lookup + compare, off the directory's critical path). `Timestamp`
// arguments are transaction priorities (smaller = older = wins), not
// cycles. `sharer_mask` is a bit per node, bit i = node i shares the block.
//
// Ownership: one PunoDirectory per node, owned by arch::Cmp and attached
// to the node's Directory via set_assist() as a non-owning pointer — the
// assist must stay alive for as long as the directory services requests
// (the directory never dereferences it after the simulation stops). The
// UD pointer itself lives inside each directory entry; this class only
// recomputes it, and the P-Buffer it consults is owned here by value.
#pragma once

#include <cstdint>

#include "coherence/hooks.hpp"
#include "puno/pbuffer.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::core {

class PunoDirectory final : public coherence::DirectoryAssist {
 public:
  PunoDirectory(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node);

  PunoDirectory(const PunoDirectory&) = delete;
  PunoDirectory& operator=(const PunoDirectory&) = delete;

  // --- coherence::DirectoryAssist ---
  /// Every incoming transactional request refreshes the P-Buffer with the
  /// requester's priority and folds its piggybacked average transaction
  /// length (cycles) into the adaptive rollover period.
  void observe_request(NodeId src, Timestamp ts, Cycle avg_txn_len) override;
  /// Unicast decision for a transactional GETX: returns the single sharer
  /// to forward to (the UD hint, revalidated against the P-Buffer), or
  /// kInvalidNode to fall back to multicast (no usable prediction, or the
  /// predicted sharer would lose to the requester anyway).
  [[nodiscard]] NodeId predict_unicast(const coherence::SharerSet& sharers,
                                       NodeId requester, Timestamp req_ts,
                                       NodeId ud_hint) override;
  /// Recomputes a directory entry's UD pointer: the highest-priority
  /// (oldest-timestamp) sharer with a live (validity > 0) P-Buffer entry,
  /// else kInvalidNode. Runs off the critical path (on UNBLOCK).
  [[nodiscard]] NodeId recompute_ud(const coherence::SharerSet& sharers)
      override;
  /// MP-bit feedback: the unicast sent to `mp_node` was wasted; zero its
  /// P-Buffer validity so it cannot misdirect again until refreshed.
  void on_misprediction(NodeId mp_node) override;
  /// P-Buffer lookup + priority compare latency in cycles, charged to the
  /// directory's service time on the predicted path.
  [[nodiscard]] Cycle prediction_latency() const override { return 2; }

  // --- Introspection ---
  [[nodiscard]] const PBuffer& pbuffer() const noexcept { return pbuf_; }
  /// Current adaptive rollover period in cycles (clamped to
  /// [puno.min_timeout, puno.max_timeout]).
  [[nodiscard]] Cycle timeout_period() const noexcept { return period_; }

 private:
  void schedule_rollover();

  sim::Kernel& kernel_;
  const SystemConfig& cfg_;
  NodeId node_;
  PBuffer pbuf_;
  Cycle period_;
  bool rollover_armed_ = false;

  sim::Counter& predictions_;
  sim::Counter& multicast_fallbacks_;
  /// Created lazily on the first capacity eviction, so configurations that
  /// never overflow the P-Buffer (capacity >= num_nodes, e.g. the paper's
  /// 16-node CMP) keep a byte-identical stats registry.
  sim::Counter* pbuffer_evictions_ = nullptr;
};

}  // namespace puno::core
