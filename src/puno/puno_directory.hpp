// PUNO's directory-side assist: unicast-destination prediction.
//
// Implements coherence::DirectoryAssist on top of the P-Buffer, the per-entry
// UD (Unicast Destination) pointers (stored inside the directory entries and
// recomputed here off the critical path), and the adaptive rollover timeout:
// the timeout period tracks an exponentially weighted average of the
// transaction lengths that requesters piggyback on their requests, clamped
// to [min_timeout, max_timeout] (Section III.B notes the period is derived
// from the average transaction length so that workloads with long
// transactions age their priorities more slowly).
#pragma once

#include <cstdint>

#include "coherence/hooks.hpp"
#include "puno/pbuffer.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::core {

class PunoDirectory final : public coherence::DirectoryAssist {
 public:
  PunoDirectory(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node);

  PunoDirectory(const PunoDirectory&) = delete;
  PunoDirectory& operator=(const PunoDirectory&) = delete;

  // --- coherence::DirectoryAssist ---
  void observe_request(NodeId src, Timestamp ts, Cycle avg_txn_len) override;
  [[nodiscard]] NodeId predict_unicast(std::uint64_t sharer_mask,
                                       NodeId requester, Timestamp req_ts,
                                       NodeId ud_hint) override;
  [[nodiscard]] NodeId recompute_ud(std::uint64_t sharer_mask) override;
  void on_misprediction(NodeId mp_node) override;
  [[nodiscard]] Cycle prediction_latency() const override { return 2; }

  // --- Introspection ---
  [[nodiscard]] const PBuffer& pbuffer() const noexcept { return pbuf_; }
  [[nodiscard]] Cycle timeout_period() const noexcept { return period_; }

 private:
  void schedule_rollover();

  sim::Kernel& kernel_;
  const SystemConfig& cfg_;
  NodeId node_;
  PBuffer pbuf_;
  Cycle period_;
  bool rollover_armed_ = false;

  sim::Counter& predictions_;
  sim::Counter& multicast_fallbacks_;
};

}  // namespace puno::core
