// Analytical VLSI area/power model for the PUNO hardware structures
// (Table III).
//
// The paper estimates the P-Buffer, TxLB and UD pointers with a commercial
// memory compiler at 65 nm, 2.3 GHz, 0.9 V, and normalizes the overhead
// against the Sun Rock processor (16 cores, 14,000,000 um^2 and 10 W per
// core). A memory compiler is proprietary, so we substitute a standard
// bit-count SRAM model: area and dynamic power scale affinely with storage
// bits, with coefficients fitted to the three component datapoints the
// paper itself publishes — the model then reproduces the paper's arithmetic
// and lets users re-estimate under different configurations (entry counts,
// node counts, field widths).
#pragma once

#include <cstdint>

#include "sim/config.hpp"

namespace puno::hwcost {

/// Technology/operating point of the paper's estimation.
struct TechPoint {
  double clock_ghz = 2.3;
  double vdd = 0.9;
  std::uint32_t node_nm = 65;
};

/// The reference chip the overhead is normalized against (Sun Rock).
struct ReferenceChip {
  std::uint32_t cores = 16;
  double core_area_um2 = 14'000'000.0;
  double core_power_w = 10.0;

  [[nodiscard]] double total_area_um2() const {
    return core_area_um2 * cores;
  }
  [[nodiscard]] double total_power_mw() const {
    return core_power_w * 1000.0 * cores;
  }
};

struct ComponentCost {
  double area_um2 = 0.0;
  double power_mw = 0.0;
};

struct PunoCost {
  ComponentCost pbuffer;      ///< Per-chip (all 16 directories).
  ComponentCost txlb;         ///< Per-chip (all 16 nodes).
  ComponentCost ud_pointers;  ///< Per-chip (all directory entries).
  ComponentCost total;
  double area_overhead = 0.0;   ///< Fraction of the reference chip area.
  double power_overhead = 0.0;  ///< Fraction of the reference chip power.
};

/// Storage-bit accounting for the PUNO structures under a configuration.
struct PunoBits {
  std::uint64_t pbuffer_bits = 0;
  std::uint64_t txlb_bits = 0;
  std::uint64_t ud_pointer_bits = 0;
};

/// Bits of storage each structure needs (Section III / Figure 5):
///  - P-Buffer: per node, N entries x (timestamp + 2-bit validity), plus the
///    32-bit rollover counter;
///  - TxLB: per node, M entries x (static-txn tag + average length);
///  - UD pointers: one pointer per tracked directory entry. The paper
///    over-provisions each pointer at 8 bits (Section IV.G); directory
///    entries are provisioned for the L2's tracked lines per node.
[[nodiscard]] PunoBits count_bits(const SystemConfig& cfg,
                                  std::uint32_t timestamp_bits = 32,
                                  std::uint32_t txlb_tag_bits = 16,
                                  std::uint32_t txlb_len_bits = 24,
                                  std::uint32_t ud_bits = 8);

/// Full-chip cost estimate. Coefficients are fitted to the paper's Table III
/// component values (see hwcost.cpp); the defaults reproduce the table.
[[nodiscard]] PunoCost estimate(const SystemConfig& cfg,
                                const ReferenceChip& ref = {},
                                const TechPoint& tech = {});

}  // namespace puno::hwcost
