#include "hwcost/hwcost.hpp"

namespace puno::hwcost {

namespace {

// The paper's Table III component datapoints at the default configuration
// (16 nodes, 16-entry P-Buffers, 32-entry TxLBs, 8-bit UD pointers, 65 nm,
// 2.3 GHz, 0.9 V). Our model scales these anchors by storage-bit ratio and
// by technology point, which reproduces the table exactly at the defaults.
constexpr double kPBufferAreaUm2 = 4700.0;
constexpr double kPBufferPowerMw = 7.28;
constexpr double kTxlbAreaUm2 = 5380.0;
constexpr double kTxlbPowerMw = 7.52;
constexpr double kUdAreaUm2 = 47400.0;
constexpr double kUdPowerMw = 16.43;

/// Directory entries provisioned with a UD pointer per node at the paper's
/// operating point (the exact provisioning is not published; the anchor
/// value absorbs it, and changing entry counts scales linearly from there).
constexpr std::uint64_t kUdEntriesPerNode = 4096;

[[nodiscard]] PunoBits default_bits() {
  SystemConfig cfg;  // Table II defaults
  return count_bits(cfg);
}

[[nodiscard]] double ratio(std::uint64_t bits, std::uint64_t anchor_bits) {
  return anchor_bits == 0 ? 0.0
                          : static_cast<double>(bits) /
                                static_cast<double>(anchor_bits);
}

}  // namespace

PunoBits count_bits(const SystemConfig& cfg, std::uint32_t timestamp_bits,
                    std::uint32_t txlb_tag_bits, std::uint32_t txlb_len_bits,
                    std::uint32_t ud_bits) {
  PunoBits b;
  // P-Buffer: entries x (timestamp + 2-bit validity) + one 32-bit rollover
  // counter per directory (Figure 5(a)).
  const std::uint64_t pbuf_per_node =
      static_cast<std::uint64_t>(cfg.puno.pbuffer_entries) *
          (timestamp_bits + 2) +
      32;
  b.pbuffer_bits = pbuf_per_node * cfg.num_nodes;

  // TxLB: entries x (static-transaction tag + average-length field), Fig. 6.
  const std::uint64_t txlb_per_node =
      static_cast<std::uint64_t>(cfg.puno.txlb_entries) *
      (txlb_tag_bits + txlb_len_bits);
  b.txlb_bits = txlb_per_node * cfg.num_nodes;

  // UD pointers: one per provisioned directory entry (8 bits each in the
  // paper's over-provisioned estimate, Section IV.G).
  b.ud_pointer_bits = static_cast<std::uint64_t>(kUdEntriesPerNode) *
                      ud_bits * cfg.num_nodes;
  return b;
}

PunoCost estimate(const SystemConfig& cfg, const ReferenceChip& ref,
                  const TechPoint& tech) {
  const PunoBits bits = count_bits(cfg);
  const PunoBits anchor = default_bits();

  // Area scales with storage bits and (node/65nm)^2; dynamic power scales
  // with bits, frequency and Vdd^2 relative to the 2.3 GHz / 0.9 V anchor.
  const double area_tech =
      (static_cast<double>(tech.node_nm) / 65.0) *
      (static_cast<double>(tech.node_nm) / 65.0);
  const double power_tech =
      (tech.clock_ghz / 2.3) * (tech.vdd / 0.9) * (tech.vdd / 0.9);

  PunoCost c;
  c.pbuffer.area_um2 =
      kPBufferAreaUm2 * ratio(bits.pbuffer_bits, anchor.pbuffer_bits) *
      area_tech;
  c.pbuffer.power_mw =
      kPBufferPowerMw * ratio(bits.pbuffer_bits, anchor.pbuffer_bits) *
      power_tech;
  c.txlb.area_um2 =
      kTxlbAreaUm2 * ratio(bits.txlb_bits, anchor.txlb_bits) * area_tech;
  c.txlb.power_mw =
      kTxlbPowerMw * ratio(bits.txlb_bits, anchor.txlb_bits) * power_tech;
  c.ud_pointers.area_um2 =
      kUdAreaUm2 * ratio(bits.ud_pointer_bits, anchor.ud_pointer_bits) *
      area_tech;
  c.ud_pointers.power_mw =
      kUdPowerMw * ratio(bits.ud_pointer_bits, anchor.ud_pointer_bits) *
      power_tech;

  c.total.area_um2 =
      c.pbuffer.area_um2 + c.txlb.area_um2 + c.ud_pointers.area_um2;
  c.total.power_mw =
      c.pbuffer.power_mw + c.txlb.power_mw + c.ud_pointers.power_mw;

  // The paper normalizes the added structures against a single Rock core
  // (57,480 um^2 / 14,000,000 um^2 = 0.41%; 31.23 mW / 10 W = 0.31%).
  c.area_overhead = c.total.area_um2 / ref.core_area_um2;
  c.power_overhead = c.total.power_mw / (ref.core_power_w * 1000.0);
  return c;
}

}  // namespace puno::hwcost
