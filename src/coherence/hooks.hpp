// Interfaces through which the coherence layer consults the transaction
// layer (HTM) and the directory-side predictor (PUNO).
//
// The coherence protocol itself has no notion of transactions — exactly the
// mismatch the paper describes. All transactional behaviour is injected
// through these two interfaces: TxnHooks at the L1s (conflict detection,
// Section II.B) and DirectoryAssist at the directories (PUNO's predictive
// unicast, Section III.B).
#pragma once

#include <cstdint>

#include "coherence/sharer_set.hpp"
#include "sim/types.hpp"

namespace puno::coherence {

/// What a node decides to do with an incoming forwarded request that may
/// conflict with its running transaction.
enum class ConflictDecision : std::uint8_t {
  kGrant,            ///< No conflict: service the request normally.
  kGrantAfterAbort,  ///< Conflict, local transaction younger: abort it, then
                     ///< service the request (Section II.B).
  kNack,             ///< Conflict, local transaction older: reject.
};

/// Verdict returned by the transaction layer for a forwarded request.
struct ConflictVerdict {
  ConflictDecision decision = ConflictDecision::kGrant;
  /// Attached to a NACK under PUNO: estimated remaining running time of the
  /// local (nacker) transaction, in cycles (Section III.D). 0 = no estimate.
  Cycle notification = 0;
  /// The request carried the U-bit but the local transaction does NOT
  /// out-prioritize the requester: unicast-destination misprediction
  /// (Section III.C). Always reported together with kNack.
  bool mispredicted = false;
};

/// Per-node transaction-layer hooks, implemented by htm::TxnContext.
class TxnHooks {
 public:
  virtual ~TxnHooks() = default;

  /// Conflict check for a remote request to `addr` (write if `write`),
  /// issued by `requester` with transaction timestamp `ts` (kInvalidTimestamp
  /// if non-transactional). `u_bit` marks a PUNO unicast forward.
  /// If the verdict is kGrantAfterAbort the implementation has already
  /// initiated the local abort when this returns.
  [[nodiscard]] virtual ConflictVerdict on_remote_request(BlockAddr addr,
                                                          bool write,
                                                          Timestamp ts,
                                                          NodeId requester,
                                                          bool u_bit) = 0;

  /// True if `addr` is in the running transaction's read or write set, i.e.
  /// the L1 must not silently evict it.
  [[nodiscard]] virtual bool is_txn_line(BlockAddr addr) const = 0;

  /// The L1 is forced to evict a transactional line (all ways pinned):
  /// overflow abort of the local transaction.
  virtual void on_overflow_eviction(BlockAddr addr) = 0;

  /// Cycles the requester should wait before re-issuing a nacked request.
  /// `notification` is the nacker's estimate (0 if none was provided).
  [[nodiscard]] virtual Cycle retry_backoff(Cycle notification,
                                            std::uint32_t retries) = 0;

  /// Outcome report for a completed transactional GETX (success or final
  /// failure of one issue), used for false-abort accounting (Figures 2-3)
  /// and RMW-predictor training.
  virtual void on_getx_outcome(BlockAddr addr, bool success,
                               std::uint32_t nacks,
                               std::uint32_t aborted_sharers) = 0;

  /// Current transaction timestamp (kInvalidTimestamp when not in one).
  [[nodiscard]] virtual Timestamp current_ts() const = 0;

  /// This node's running average transaction length (TxLB-derived), carried
  /// on requests to drive the directories' adaptive validity timeout.
  [[nodiscard]] virtual Cycle avg_txn_len() const = 0;
};

/// Directory-side assist, implemented by puno::PunoDirectory. A null
/// implementation (never unicast) yields the baseline protocol.
class DirectoryAssist {
 public:
  virtual ~DirectoryAssist() = default;

  /// Observes an incoming transactional request: refresh the P-Buffer entry
  /// for `src` with priority `ts` (Section III.B) and fold `avg_txn_len`
  /// into the adaptive timeout period.
  virtual void observe_request(NodeId src, Timestamp ts, Cycle avg_txn_len) = 0;

  /// Unicast-destination prediction for a transactional GETX from
  /// `requester` (timestamp `req_ts`) to a line shared by `sharers`
  /// (requester excluded; an exact expansion of the directory entry's
  /// possibly-lossy sharer list). `ud_hint` is the entry's UD pointer.
  /// Returns the sharer to unicast to, or kInvalidNode to multicast.
  [[nodiscard]] virtual NodeId predict_unicast(const SharerSet& sharers,
                                               NodeId requester,
                                               Timestamp req_ts,
                                               NodeId ud_hint) = 0;

  /// Recomputes a directory entry's UD pointer: the member of `sharers`
  /// with the highest P-Buffer priority. Called off the critical path, after
  /// a service completes. `sharers` may be the entry's own (lossy) sharer
  /// list; represented-but-not-actual members are acceptable UD targets —
  /// the misprediction feedback path corrects them.
  [[nodiscard]] virtual NodeId recompute_ud(const SharerSet& sharers) = 0;

  /// Misprediction feedback from an UNBLOCK (MP-bit set): invalidate the
  /// stale priority of `mp_node` (Section III.C).
  virtual void on_misprediction(NodeId mp_node) = 0;

  /// Extra directory occupancy (cycles) for the prediction: 1 cycle P-Buffer
  /// access + 1 cycle unicast decision (Section IV.A). 0 for the baseline.
  [[nodiscard]] virtual Cycle prediction_latency() const = 0;
};

}  // namespace puno::coherence
