#include "coherence/directory.hpp"

#include <cassert>

#include "sim/log.hpp"
#include "trace/recorder.hpp"

namespace puno::coherence {

Directory::Directory(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node,
                     SendFn send)
    : kernel_(kernel),
      cfg_(cfg),
      node_(node),
      send_(std::move(send)),
      sharer_params_(sharer_params(cfg)),
      l2_(cfg.cache.l2_size_bytes / cfg.effective_l2_banks(),
          cfg.cache.l2_assoc, cfg.cache.block_bytes),
      requests_(kernel.stats().counter("dir.requests")),
      tx_getx_services_(kernel.stats().counter("dir.txgetx_services")),
      unicast_forwards_(kernel.stats().counter("dir.unicast_forwards")),
      multicast_invs_(kernel.stats().counter("dir.multicast_invs")),
      l2_misses_(kernel.stats().counter("dir.l2_misses")),
      wb_stales_(kernel.stats().counter("dir.wb_stales")),
      tx_getx_blocked_cycles_(
          kernel.stats().scalar("dir.txgetx_blocked_cycles")),
      mp_feedbacks_(kernel.stats().counter("dir.mp_feedbacks")) {}

const Directory::Entry* Directory::peek(BlockAddr addr) const {
  const auto it = entries_.find(addr);
  return it == entries_.end() ? nullptr : &it->second;
}

Directory::Entry& Directory::entry_at(BlockAddr addr) {
  const auto [it, fresh] = entries_.try_emplace(addr);
  if (fresh) it->second.sharers = SharerSet(sharer_params_);
  return it->second;
}

Cycle Directory::data_latency(BlockAddr addr) {
  if (l2_.find(addr) != nullptr) return cfg_.cache.l2_latency;
  l2_misses_.add();
  fill_l2(addr);
  return cfg_.cache.memory_latency;
}

void Directory::fill_l2(BlockAddr addr) {
  if (auto* line = l2_.find(addr)) {
    l2_.touch(*line);
    return;
  }
  auto& victim = l2_.victim(addr);
  // Directory state is memory-backed, so L2 victims leave silently; the
  // simulator carries no data values, only presence.
  l2_.fill(victim, addr);
}

void Directory::send_data(NodeId dst, BlockAddr addr, bool exclusive,
                          std::uint32_t expected_responses, bool sole,
                          bool payload, Cycle delay) {
  auto data = std::make_shared<Message>();
  data->type = MsgType::kData;
  data->addr = addr;
  data->sender = node_;
  data->requester = dst;
  data->exclusive = exclusive;
  data->expected_responses = expected_responses;
  data->sole = sole;
  data->has_payload = payload;
  kernel_.schedule(delay, [this, dst, data = std::move(data)] {
    send_(dst, data);
  });
}

void Directory::handle_message(const Message& msg) {
  auto shared = std::make_shared<Message>(msg);
  switch (msg.type) {
    case MsgType::kGetS:
    case MsgType::kGetX:
    case MsgType::kPutX: {
      requests_.add();
      Entry& e = entry_at(msg.addr);
      if (e.busy) {
        e.pending.push_back(std::move(shared));
        return;
      }
      service(shared);
      return;
    }
    case MsgType::kWbData:
      // Dirty data accompanying an owner downgrade: lands in the L2 bank.
      fill_l2(msg.addr);
      return;
    case MsgType::kUnblock: {
      const auto it = entries_.find(msg.addr);
      assert(it != entries_.end() && it->second.busy &&
             "UNBLOCK for a line that is not being serviced");
      handle_unblock(it->second, msg);
      return;
    }
    default:
      assert(false && "message type not handled by the directory");
  }
}

void Directory::service(const std::shared_ptr<const Message>& msg) {
  Entry& e = entry_at(msg->addr);
  assert(!e.busy);

  if (msg->type == MsgType::kPutX) {
    handle_put_x(e, *msg);
    // A PutX never blocks the entry; requests queued behind it (it may have
    // been dequeued from the pending list) must still get serviced.
    maybe_service_next(msg->addr);
    return;
  }

  // PUNO Section III.B: the P-Buffer learns the latest {node, priority} pair
  // from every incoming transactional request.
  if (assist_ != nullptr && msg->transactional) {
    assist_->observe_request(msg->sender, msg->ts, msg->avg_txn_len);
  }

  e.busy = true;
  e.busy_since = kernel_.now();
  e.busy_requester = msg->requester;
  e.busy_tx_getx = msg->type == MsgType::kGetX && msg->transactional;
  ++busy_entries_;
  if (e.busy_tx_getx) tx_getx_services_.add();

  PUNO_TRACE(sim::TraceCat::kCoherence, kernel_.now(), "dir ", node_,
             " services ", to_string(msg->type), " addr ", msg->addr,
             " from node ", msg->requester);

  if (msg->type == MsgType::kGetS) {
    service_get_s(e, *msg);
  } else {
    service_get_x(e, *msg);
  }
}

void Directory::service_get_s(Entry& e, const Message& msg) {
  switch (e.state) {
    case DirState::kI: {
      e.kind = ServiceKind::kGetSIdle;
      // No sharers anywhere: grant exclusive (the E of MESI).
      send_data(msg.requester, msg.addr, /*exclusive=*/true, 0, /*sole=*/true,
                /*payload=*/true, data_latency(msg.addr));
      return;
    }
    case DirState::kS: {
      e.kind = ServiceKind::kGetSShared;
      send_data(msg.requester, msg.addr, /*exclusive=*/false, 0, /*sole=*/true,
                /*payload=*/true, data_latency(msg.addr));
      return;
    }
    case DirState::kEM: {
      e.kind = ServiceKind::kGetSOwned;
      auto fwd = std::make_shared<Message>();
      fwd->type = MsgType::kFwdGetS;
      fwd->addr = msg.addr;
      fwd->sender = node_;
      fwd->requester = msg.requester;
      fwd->transactional = msg.transactional;
      fwd->ts = msg.ts;
      fwd->sole = true;
      send_(e.owner, std::move(fwd));
      return;
    }
  }
}

void Directory::service_get_x(Entry& e, const Message& msg) {
  switch (e.state) {
    case DirState::kI: {
      e.kind = ServiceKind::kGetXIdle;
      send_data(msg.requester, msg.addr, /*exclusive=*/true, 0, /*sole=*/true,
                /*payload=*/true, data_latency(msg.addr));
      return;
    }
    case DirState::kS: {
      // Exact invalidation targets, derived by expanding the (possibly
      // lossy) sharer representation. Over-approximate representations add
      // spurious targets here; non-holders ack them like the stale-sharer
      // acks the protocol already tolerates.
      const SharerSet others = e.sharers.expand_excluding(msg.requester);
      const bool requester_is_sharer = e.sharers.contains(msg.requester);
      if (others.empty()) {
        // Upgrade with no other sharers: a pure permission grant.
        e.kind = ServiceKind::kGetXMulticast;
        e.inv_targets.clear();
        send_data(msg.requester, msg.addr, /*exclusive=*/true, 0,
                  /*sole=*/true, /*payload=*/!requester_is_sharer,
                  requester_is_sharer ? 1 : data_latency(msg.addr));
        return;
      }

      // PUNO: try to predict the one sharer whose NACK would resolve the
      // conflict, instead of disrupting every sharer (Section III.B).
      NodeId ud = kInvalidNode;
      Cycle extra = 0;
      if (assist_ != nullptr && msg.transactional) {
        extra = assist_->prediction_latency();
        ud = assist_->predict_unicast(others, msg.requester, msg.ts, e.ud);
      }
      if (ud != kInvalidNode) {
        assert(others.contains(ud));
        e.kind = ServiceKind::kGetXUnicast;
        e.inv_targets.clear();
        e.inv_targets.add(ud);
        unicast_forwards_.add();
        PUNO_TEV(kernel_, trace::Cat::kDir,
                 (trace::TraceEvent{
                     .cycle = kernel_.now(),
                     .addr = msg.addr,
                     .ts = msg.ts,
                     .a = msg.requester,
                     .b = others.count(),
                     .node = node_,
                     .peer = ud,
                     .kind = trace::EventKind::kGetxUnicast}));
        auto inv = std::make_shared<Message>();
        inv->type = MsgType::kInv;
        inv->addr = msg.addr;
        inv->sender = node_;
        inv->requester = msg.requester;
        inv->transactional = msg.transactional;
        inv->ts = msg.ts;
        inv->u_bit = true;  // Figure 7: the GETX/INV unicast bit.
        inv->sole = true;
        kernel_.schedule(extra, [this, ud, inv = std::move(inv)] {
          send_(ud, inv);
        });
        // Deliberately no data message: the unicast is nacked by design,
        // so the data would be wasted traffic.
        return;
      }

      e.kind = ServiceKind::kGetXMulticast;
      e.inv_targets = others;
      const std::uint32_t count = others.count();
      multicast_invs_.add(count);
      PUNO_TEV(kernel_, trace::Cat::kDir,
               (trace::TraceEvent{.cycle = kernel_.now(),
                                  .addr = msg.addr,
                                  .ts = msg.ts,
                                  .a = others.mask64(),
                                  .b = count,
                                  .node = node_,
                                  .peer = msg.requester,
                                  .kind = trace::EventKind::kGetxMulticast,
                                  .flags = msg.transactional
                                               ? std::uint8_t{1}
                                               : std::uint8_t{0}}));
      others.for_each([&](NodeId n) {
        auto inv = std::make_shared<Message>();
        inv->type = MsgType::kInv;
        inv->addr = msg.addr;
        inv->sender = node_;
        inv->requester = msg.requester;
        inv->transactional = msg.transactional;
        inv->ts = msg.ts;
        kernel_.schedule(extra, [this, n, inv = std::move(inv)] {
          send_(n, inv);
        });
      });
      send_data(msg.requester, msg.addr, /*exclusive=*/true, count,
                /*sole=*/false, /*payload=*/!requester_is_sharer,
                extra + (requester_is_sharer ? 1 : data_latency(msg.addr)));
      return;
    }
    case DirState::kEM: {
      e.kind = ServiceKind::kGetXOwned;
      e.inv_targets.clear();
      e.inv_targets.add(e.owner);
      auto inv = std::make_shared<Message>();
      inv->type = MsgType::kInv;
      inv->addr = msg.addr;
      inv->sender = node_;
      inv->requester = msg.requester;
      inv->transactional = msg.transactional;
      inv->ts = msg.ts;
      inv->sole = true;  // Owner's Data/Nack fully resolves the request.
      send_(e.owner, std::move(inv));
      return;
    }
  }
}

void Directory::handle_put_x(Entry& e, const Message& msg) {
  if (e.state == DirState::kEM && e.owner == msg.sender) {
    e.state = DirState::kI;
    e.owner = kInvalidNode;
    // The UD pointer must never outlive the sharers it was computed from: a
    // stale pointer on an idle line would be fed back to predict_unicast as
    // a hint the next time the line is shared (the exact class of mismatch
    // bug the invariant checker's UD invariant exists to catch).
    e.ud = kInvalidNode;
    fill_l2(msg.addr);  // dirty (or clean-E) data returns home
    send_(msg.sender, Message::make(MsgType::kWbAck, msg.addr, node_,
                                    msg.sender));
  } else {
    // The writeback crossed a forward: the (ex-)owner already serviced the
    // forward out of its writeback buffer, so the PutX is stale.
    wb_stales_.add();
    send_(msg.sender, Message::make(MsgType::kWbStale, msg.addr, node_,
                                    msg.sender));
  }
}

void Directory::handle_unblock(Entry& e, const Message& msg) {
  assert(msg.sender == e.busy_requester);
  finish_service(e, msg);
}

void Directory::finish_service(Entry& e, const Message& unblock) {
  const NodeId req = e.busy_requester;
  if (e.busy_tx_getx) {
    tx_getx_blocked_cycles_.sample(
        static_cast<double>(kernel_.now() - e.busy_since));
  }
  PUNO_TEV(kernel_, trace::Cat::kDir,
           (trace::TraceEvent{.cycle = e.busy_since,
                              .addr = unblock.addr,
                              .a = kernel_.now() - e.busy_since,
                              .node = node_,
                              .peer = req,
                              .kind = trace::EventKind::kDirBlock,
                              .flags = e.busy_tx_getx ? std::uint8_t{1}
                                                      : std::uint8_t{0}}));

  switch (e.kind) {
    case ServiceKind::kGetSIdle:
      // Exclusive (E) grant.
      e.state = DirState::kEM;
      e.owner = req;
      e.sharers.clear();
      break;
    case ServiceKind::kGetSShared:
      e.state = DirState::kS;
      e.sharers.add(req);
      break;
    case ServiceKind::kGetSOwned:
      if (unblock.success) {
        e.state = DirState::kS;
        e.sharers.clear();
        e.sharers.add(e.owner);
        e.sharers.add(req);
        e.owner = kInvalidNode;
      }
      break;
    case ServiceKind::kGetXIdle:
      e.state = DirState::kEM;
      e.owner = req;
      e.sharers.clear();
      break;
    case ServiceKind::kGetXMulticast:
      if (unblock.success) {
        e.state = DirState::kEM;
        e.owner = req;
        e.sharers.clear();
      } else {
        // Keep exactly the sharers that nacked (and the requester's own
        // copy if it was upgrading): the aborted sharers were invalidated.
        // The exact survivor set is then re-encoded into the configured
        // representation.
        SharerSet kept =
            SharerSet::intersect(e.inv_targets, unblock.surviving_sharers);
        if (e.sharers.contains(req)) kept.add(req);
        e.sharers.assign(kept);
        assert(!e.sharers.empty());
      }
      break;
    case ServiceKind::kGetXUnicast:
      if (unblock.success) {
        // Cannot happen: a U-bit forward is always nacked (predicted nack
        // or conservative misprediction nack).
        assert(false && "unicast GETX must not succeed");
      }
      // Nothing was invalidated; the sharer list is untouched. This is the
      // whole point of PUNO: the false aborts never happened.
      break;
    case ServiceKind::kGetXOwned:
      if (unblock.success) {
        e.state = DirState::kEM;
        e.owner = req;
        e.sharers.clear();
      }
      break;
  }

  // Misprediction feedback (Section III.C): invalidate the stale P-Buffer
  // priority that led the unicast astray.
  if (unblock.mp_bit && assist_ != nullptr) {
    mp_feedbacks_.add();
    ++tile_mp_feedbacks_;
    PUNO_TEV(kernel_, trace::Cat::kDir,
             (trace::TraceEvent{.cycle = kernel_.now(),
                                .addr = unblock.addr,
                                .node = node_,
                                .peer = unblock.mp_node,
                                .kind = trace::EventKind::kMpFeedback}));
    assist_->on_misprediction(unblock.mp_node);
  }

  // Off the critical path: refresh this entry's UD pointer from the P-Buffer
  if (assist_ != nullptr) {
    if (e.state == DirState::kS) {
      e.ud = assist_->recompute_ud(e.sharers);
    } else if (e.state == DirState::kEM) {
      SharerSet owner_only;
      owner_only.add(e.owner);
      e.ud = assist_->recompute_ud(owner_only);
    } else {
      e.ud = assist_->recompute_ud(SharerSet{});
    }
  }

  e.busy = false;
  e.busy_tx_getx = false;
  --busy_entries_;
  maybe_service_next(unblock.addr);
}

void Directory::maybe_service_next(BlockAddr addr) {
  Entry& e = entry_at(addr);
  if (e.busy || e.pending.empty()) return;
  auto next = std::move(e.pending.front());
  e.pending.pop_front();
  kernel_.schedule(1, [this, next = std::move(next)] {
    Entry& entry = entry_at(next->addr);
    if (entry.busy) {
      // A same-cycle race re-busied the line; requeue at the front.
      entry.pending.push_front(next);
      return;
    }
    service(next);
  });
}

}  // namespace puno::coherence
