// Home-node directory controller + co-located shared-L2 bank.
//
// One Directory instance lives on every node; the static-NUCA address
// interleaving (SystemConfig::home_of) decides which blocks it is home for.
// The protocol is a blocking MESI directory in the SGI-Origin style the
// paper assumes (Section II.A):
//
//   * GETS to an idle line: data (exclusive if there are no sharers).
//   * GETS to an owned line: forwarded to the owner, who supplies data and
//     downgrades (or NACKs on a transactional conflict).
//   * GETX to a shared line: invalidations multicast to all sharers plus
//     data from the L2 bank — unless the PUNO assist predicts a unicast
//     destination, in which case a single U-bit invalidation is sent and no
//     data is wasted (Section III.B).
//   * The entry is "busy" from service start until the requester's UNBLOCK;
//     further requests to the line queue. The cycles a transactional GETX
//     keeps an entry busy are the Figure 12 metric.
//
// A failed (nacked) GETX restores the sharer list to the survivors the
// requester reports in the UNBLOCK, removing exactly the sharers that were
// (falsely) invalidated.
//
// The directory state itself is memory-backed (complete), as in the Origin;
// the L2 bank is a data-only cache deciding whether a fill costs the
// 20-cycle bank latency or the 200-cycle memory latency.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "coherence/cache_array.hpp"
#include "coherence/hooks.hpp"
#include "coherence/message.hpp"
#include "coherence/sharer_set.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::coherence {

class Directory {
 public:
  using SendFn =
      std::function<void(NodeId dst, std::shared_ptr<const Message>)>;

  enum class DirState : std::uint8_t { kI, kS, kEM };

  /// What the in-flight service was, deciding the state transition applied
  /// when the UNBLOCK arrives.
  enum class ServiceKind : std::uint8_t {
    kGetSIdle,
    kGetSShared,
    kGetSOwned,
    kGetXIdle,
    kGetXMulticast,
    kGetXUnicast,
    kGetXOwned,
  };

  struct Entry {
    DirState state = DirState::kI;
    /// Sharer list in the configured representation (DirectoryConfig::
    /// sharer_rep) — the only representation-encoded, possibly lossy set.
    SharerSet sharers;
    NodeId owner = kInvalidNode;
    NodeId ud = kInvalidNode;  ///< PUNO Unicast-Destination pointer.

    bool busy = false;
    Cycle busy_since = 0;
    bool busy_tx_getx = false;
    ServiceKind kind = ServiceKind::kGetSIdle;
    NodeId busy_requester = kInvalidNode;
    /// Exact nodes the in-flight GETX invalidated (expansion of `sharers`
    /// at service time), intersected with the UNBLOCK's survivors on a
    /// failure to rebuild the sharer list.
    SharerSet inv_targets;
    std::deque<std::shared_ptr<const Message>> pending;
  };

  Directory(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node,
            SendFn send);

  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  /// Installs the PUNO directory assist (nullptr = baseline behaviour).
  void set_assist(DirectoryAssist* assist) noexcept { assist_ = assist; }

  /// Entry point for every protocol message addressed to this home node.
  void handle_message(const Message& msg);

  /// Test/debug introspection.
  [[nodiscard]] const Entry* peek(BlockAddr addr) const;
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::size_t pending_services() const noexcept {
    return busy_entries_;
  }
  /// Number of blocks this home node currently tracks (occupancy gauge for
  /// the telemetry sampler's directory panel).
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }
  /// Per-tile telemetry counter (docs/TELEMETRY.md): UD misprediction
  /// feedbacks absorbed at this home node. Plain member outside the stats
  /// registry so stats dumps never change when a sampler is attached.
  [[nodiscard]] std::uint64_t tile_mp_feedbacks() const noexcept {
    return tile_mp_feedbacks_;
  }
  /// Visits every entry that is currently busy (debug aid).
  template <typename Fn>
  void for_each_busy(Fn&& fn) const {
    for (const auto& [addr, e] : entries_) {
      if (e.busy) fn(addr, e);
    }
  }
  /// Read-only visit of every directory entry, for the invariant checker:
  /// fn(BlockAddr, const Entry&).
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [addr, e] : entries_) fn(addr, e);
  }
  /// Fault injection for the invariant-checker tests ONLY: hands out a
  /// mutable entry so a test can seed a corruption (stale UD pointer, bogus
  /// owner, ...) and assert the checker reports it. Returns nullptr when the
  /// line has no entry yet.
  [[nodiscard]] Entry* mutable_entry_for_test(BlockAddr addr) {
    const auto it = entries_.find(addr);
    return it == entries_.end() ? nullptr : &it->second;
  }

 private:
  /// entries_ accessor that imbues a freshly created entry's sharer list
  /// with the configured representation.
  Entry& entry_at(BlockAddr addr);
  void service(const std::shared_ptr<const Message>& msg);
  void service_get_s(Entry& e, const Message& msg);
  void service_get_x(Entry& e, const Message& msg);
  void handle_put_x(Entry& e, const Message& msg);
  void handle_unblock(Entry& e, const Message& msg);
  void finish_service(Entry& e, const Message& unblock);
  void maybe_service_next(BlockAddr addr);

  /// Latency to produce the line's data at this bank: L2 hit or memory.
  [[nodiscard]] Cycle data_latency(BlockAddr addr);
  void fill_l2(BlockAddr addr);

  void send_data(NodeId dst, BlockAddr addr, bool exclusive,
                 std::uint32_t expected_responses, bool sole, bool payload,
                 Cycle delay);

  sim::Kernel& kernel_;
  const SystemConfig& cfg_;
  NodeId node_;
  SendFn send_;
  DirectoryAssist* assist_ = nullptr;

  std::unordered_map<BlockAddr, Entry> entries_;
  SharerSet::Params sharer_params_;
  struct L2Meta {};
  CacheArray<L2Meta> l2_;
  std::size_t busy_entries_ = 0;

  sim::Counter& requests_;
  sim::Counter& tx_getx_services_;
  sim::Counter& unicast_forwards_;
  sim::Counter& multicast_invs_;
  sim::Counter& l2_misses_;
  sim::Counter& wb_stales_;
  sim::Scalar& tx_getx_blocked_cycles_;
  sim::Counter& mp_feedbacks_;

  std::uint64_t tile_mp_feedbacks_ = 0;  ///< Run-total MP feedbacks here.
};

}  // namespace puno::coherence
