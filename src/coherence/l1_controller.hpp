// Private L1 cache controller.
//
// Services the core's loads and stores (32 KB, 4-way, 1-cycle hits), issues
// GETS/GETX to the home directory on misses and upgrades, collects the
// Data/Ack/Nack response set, and answers forwarded requests from other
// nodes after consulting the transaction layer for conflicts (Section II.B):
//
//   * conflicting, local transaction older  -> NACK the requester;
//   * conflicting, local transaction younger -> abort locally, then grant;
//   * U-bit (PUNO unicast) forwards are never granted: a correct prediction
//     nacks with a notification, a misprediction nacks conservatively with
//     the MP-bit set (Section III.C).
//
// A nacked request is re-issued after a backoff chosen by the transaction
// layer (fixed 20 cycles in the baseline, notification-guided under PUNO) —
// this retry loop is the "polling" the paper's Figure 4 shows exacerbating
// false aborting.
//
// The core issues at most one memory operation at a time, so the controller
// holds at most one miss (MSHR); writebacks of dirty victims ride a separate
// writeback buffer that also answers forwards that cross a PutX in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "coherence/cache_array.hpp"
#include "coherence/hooks.hpp"
#include "coherence/message.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::coherence {

class L1Controller {
 public:
  using SendFn =
      std::function<void(NodeId dst, std::shared_ptr<const Message>)>;
  /// Completion callback: true = the operation performed; false = it was
  /// cancelled because the surrounding transaction aborted.
  using OpCallback = std::function<void(bool)>;

  enum class LineState : std::uint8_t { kS, kE, kM };

  L1Controller(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node,
               TxnHooks& hooks, SendFn send);

  L1Controller(const L1Controller&) = delete;
  L1Controller& operator=(const L1Controller&) = delete;

  /// Core-facing memory operations. `exclusive_hint` asks for a GETX even on
  /// a load (the RMW predictor's "request exclusive permission upon the
  /// read"). At most one operation may be outstanding.
  void load(Addr addr, bool transactional, bool exclusive_hint, OpCallback cb);
  void store(Addr addr, bool transactional, OpCallback cb);

  /// Protocol messages addressed to this node's L1.
  void handle_message(const Message& msg);

  /// The local transaction aborted: cancel the outstanding transactional
  /// miss at its next completion/retry boundary.
  void on_local_abort();

  /// Test/debug introspection.
  [[nodiscard]] std::optional<LineState> line_state(BlockAddr addr) const;
  [[nodiscard]] bool has_outstanding_miss() const noexcept {
    return mshr_.has_value();
  }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  /// True while a PutX for `addr` is in flight (the writeback buffer still
  /// answers forwards for the line).
  [[nodiscard]] bool has_writeback(BlockAddr addr) const {
    return wb_buffer_.contains(addr);
  }
  /// Read-only visit of every valid L1 line, for the invariant checker:
  /// fn(BlockAddr, LineState).
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    cache_.for_each_valid(
        [&fn](const CacheLine<L1Meta>& line) { fn(line.addr, line.state.state); });
  }

  // --- per-tile telemetry counters/gauges (docs/TELEMETRY.md) ---
  // Plain members outside the stats registry so stats dumps never change
  // when a sampler is attached; differenced per window by the spatial
  // telemetry channels.
  /// NACK messages this tile's L1 sent to remote requesters.
  [[nodiscard]] std::uint64_t tile_nacks_sent() const noexcept {
    return tile_nacks_sent_;
  }
  /// NACK messages this tile's L1 received for its own acquisitions.
  [[nodiscard]] std::uint64_t tile_nacks_received() const noexcept {
    return tile_nacks_received_;
  }
  /// Gauge: valid L1 lines currently pinned by the local transaction
  /// (read/write-set residents the replacement policy must not evict).
  [[nodiscard]] std::uint64_t txn_pinned_lines() const {
    std::uint64_t pinned = 0;
    cache_.for_each_valid([&](const CacheLine<L1Meta>& line) {
      if (hooks_.is_txn_line(line.addr)) ++pinned;
    });
    return pinned;
  }
  /// Fault injection for the invariant-checker tests ONLY: silently drops
  /// `addr` from the cache as a (hypothetical) pinning bug would, so tests
  /// can assert the checker catches an unpinned transactional line.
  void corrupt_invalidate_for_test(BlockAddr addr) {
    if (auto* line = cache_.find(addr)) cache_.invalidate(*line);
  }

 private:
  struct L1Meta {
    LineState state = LineState::kS;
  };
  struct Mshr {
    BlockAddr addr = 0;
    bool is_store = false;
    bool exclusive = false;  ///< Request is a GETX (store or RMW-hint load).
    bool transactional = false;
    OpCallback cb;
    std::uint32_t retries = 0;
    bool cancel = false;
    // Response collection state for the current issue:
    bool data_received = false;
    bool data_exclusive = false;
    bool expected_known = false;
    std::uint32_t expected = 0;
    std::uint32_t responses = 0;
    std::uint32_t nacks = 0;
    std::uint32_t aborted_acks = 0;
    /// Exact set of nodes that nacked this issue (reported to the home on
    /// the UNBLOCK as the surviving sharers).
    SharerSet nackers;
    Cycle best_notification = 0;
    bool mp_seen = false;
    NodeId mp_node = kInvalidNode;
    bool in_backoff = false;
    /// Guards scheduled retry events against stale wakeups when a hint (or
    /// anything else) re-issues the request early.
    std::uint64_t backoff_epoch = 0;
    Cycle first_issue = 0;
  };
  struct WbEntry {
    bool dirty = false;
  };
  struct DeferredOp {
    bool is_store = false;
    bool transactional = false;
    bool exclusive_hint = false;
    OpCallback cb;
    Addr addr = 0;
  };

  void start_miss(Addr addr, bool is_store, bool exclusive, bool transactional,
                  OpCallback cb);
  void issue_request();
  void check_completion();
  void complete_success();
  void complete_failure();
  void finalize(bool success);

  void handle_response(const Message& msg);
  void handle_retry_hint(const Message& msg);
  void handle_inv(const Message& msg);
  void handle_fwd_gets(const Message& msg);
  void handle_wb_reply(const Message& msg);

  /// Installs `addr`, evicting as needed (transactional lines are pinned;
  /// if a set is fully pinned the transaction suffers an overflow abort).
  CacheLine<L1Meta>& install(BlockAddr addr, LineState state);
  void evict(CacheLine<L1Meta>& line);

  [[nodiscard]] NodeId home(BlockAddr addr) const {
    return cfg_.home_of(addr);
  }
  [[nodiscard]] std::shared_ptr<Message> make_msg(MsgType t, BlockAddr addr);

  sim::Kernel& kernel_;
  const SystemConfig& cfg_;
  NodeId node_;
  TxnHooks& hooks_;
  SendFn send_;

  CacheArray<L1Meta> cache_;
  std::optional<Mshr> mshr_;
  std::unordered_map<BlockAddr, WbEntry> wb_buffer_;
  std::optional<DeferredOp> deferred_;  ///< Op waiting for a writeback ack.

  sim::Counter& loads_;
  sim::Counter& stores_;
  sim::Counter& hits_;
  sim::Counter& misses_;
  sim::Counter& tx_getx_issued_;
  sim::Counter& tx_getx_nacked_;
  sim::Counter& retries_stat_;
  sim::Counter& overflow_aborts_;
  sim::Counter& evictions_;
  sim::Scalar& contended_acquire_latency_;
  sim::Scalar& retries_per_contended_acquire_;
  sim::Counter& hint_wakeups_;

  std::uint64_t tile_nacks_sent_ = 0;      ///< Run-total NACKs sent.
  std::uint64_t tile_nacks_received_ = 0;  ///< Run-total NACKs received.
};

}  // namespace puno::coherence
