// Sharer-set abstraction: who holds a copy of a block, as the directory
// tracks it.
//
// The paper's 16-core CMP (Table II) lets a directory entry track sharers
// with one 64-bit mask. Past 64 tiles that stops being representable, and
// past a few hundred it stops being realistic hardware: a 1024-tile mesh
// would spend 128 B per entry on an exact vector. SharerSet factors the
// representation out of the protocol and offers the three classic encodings
// (selected by DirectoryConfig::sharer_rep):
//
//   * kFull    — exact bit per node. Inline storage up to 128 nodes, one
//                heap allocation beyond. This is the seed behaviour and the
//                representation the 16-node golden tests pin bit-for-bit.
//   * kCoarse  — coarse bit-vector: one bit per region of K consecutive
//                nodes (DirectoryConfig::coarse_region). Over-approximates:
//                any member of a region marks the whole region. Spurious
//                invalidations to non-holders are acked like the stale-
//                sharer acks the protocol already tolerates.
//   * kLimited — up to P exact node pointers (DirectoryConfig::
//                limited_pointers, <= 16); one more distinct sharer
//                overflows to broadcast (every node is considered a
//                sharer until the set is rebuilt from scratch).
//
// Only the directory entry's sharer list is representation-encoded (that is
// the hardware structure whose area scales with node count). Transient
// protocol state — invalidation target sets, UNBLOCK survivor sets, MSHR
// nacker sets — stays exact (default-constructed kFull), exactly as wide
// as the nodes that actually appear in it.
//
// Lossy representations are always over-approximations: contains() never
// returns false for a real sharer, so the DIR-L1 inclusivity invariant is
// preserved by construction. Iteration (for_each) is in ascending node id
// for every representation — the order every protocol multicast and UD
// recomputation relies on for determinism.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace puno::coherence {

class SharerSet {
 public:
  /// Representation parameters, normally derived from a SystemConfig via
  /// sharer_params(cfg). num_nodes == 0 is allowed only for kFull and means
  /// "unbounded domain, grow on demand" (transient exact sets).
  struct Params {
    SharerRep rep = SharerRep::kFull;
    std::uint16_t num_nodes = 0;
    std::uint16_t coarse_region = 4;
    std::uint16_t limited_pointers = 4;
  };

  static constexpr std::uint32_t kMaxLimitedPointers = 16;

  /// Exact full-bit-vector set over an unbounded domain (transient sets).
  SharerSet() = default;

  explicit SharerSet(const Params& p)
      : rep_(p.rep),
        num_nodes_(p.num_nodes),
        region_(p.coarse_region == 0 ? 1 : p.coarse_region),
        ptr_cap_(p.limited_pointers) {
    assert(rep_ == SharerRep::kFull || num_nodes_ > 0);
    if (ptr_cap_ == 0) ptr_cap_ = 1;
    if (ptr_cap_ > kMaxLimitedPointers) ptr_cap_ = kMaxLimitedPointers;
  }

  SharerSet(const SharerSet& o) { copy_from(o); }
  SharerSet& operator=(const SharerSet& o) {
    if (this != &o) copy_from(o);
    return *this;
  }
  SharerSet(SharerSet&&) noexcept = default;
  SharerSet& operator=(SharerSet&&) noexcept = default;

  [[nodiscard]] SharerRep rep() const noexcept { return rep_; }
  /// Limited-pointer set has overflowed: every node counts as a sharer.
  [[nodiscard]] bool broadcast() const noexcept { return broadcast_; }

  /// Removes every member; representation parameters are kept.
  void clear() noexcept {
    std::memset(inline_, 0, sizeof(inline_));
    if (heap_) std::memset(heap_.get(), 0, heap_words_ * sizeof(std::uint64_t));
    ptr_count_ = 0;
    broadcast_ = false;
  }

  void add(NodeId n) {
    assert(num_nodes_ == 0 || n < num_nodes_);
    switch (rep_) {
      case SharerRep::kFull:
        set_bit(n);
        return;
      case SharerRep::kCoarse:
        set_bit(static_cast<NodeId>(n / region_));
        return;
      case SharerRep::kLimited: {
        if (broadcast_) return;
        // Keep the pointer list sorted so iteration stays ascending.
        std::uint8_t i = 0;
        while (i < ptr_count_ && ptrs_[i] < n) ++i;
        if (i < ptr_count_ && ptrs_[i] == n) return;
        if (ptr_count_ == ptr_cap_) {
          // One sharer too many: overflow to broadcast (Dir_i_B style).
          broadcast_ = true;
          ptr_count_ = 0;
          return;
        }
        for (std::uint8_t j = ptr_count_; j > i; --j) ptrs_[j] = ptrs_[j - 1];
        ptrs_[i] = n;
        ++ptr_count_;
        return;
      }
    }
  }

  /// Removal is representation-limited, mirroring the hardware:
  ///   * kFull: exact.
  ///   * kCoarse: no-op — a region bit cannot be cleared without knowing the
  ///     other members (the directory rebuilds via assign() instead).
  ///   * kLimited: drops the pointer when present; no-op once broadcast.
  void remove(NodeId n) {
    switch (rep_) {
      case SharerRep::kFull:
        clear_bit(n);
        return;
      case SharerRep::kCoarse:
        return;
      case SharerRep::kLimited: {
        if (broadcast_) return;
        for (std::uint8_t i = 0; i < ptr_count_; ++i) {
          if (ptrs_[i] != n) continue;
          for (std::uint8_t j = i; j + 1 < ptr_count_; ++j)
            ptrs_[j] = ptrs_[j + 1];
          --ptr_count_;
          return;
        }
        return;
      }
    }
  }

  [[nodiscard]] bool contains(NodeId n) const noexcept {
    switch (rep_) {
      case SharerRep::kFull:
        return test_bit(n);
      case SharerRep::kCoarse:
        return test_bit(static_cast<NodeId>(n / region_));
      case SharerRep::kLimited: {
        if (broadcast_) return n < num_nodes_;
        for (std::uint8_t i = 0; i < ptr_count_; ++i) {
          if (ptrs_[i] == n) return true;
        }
        return false;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const noexcept {
    switch (rep_) {
      case SharerRep::kFull:
      case SharerRep::kCoarse: {
        for (std::uint32_t w = 0; w < words(); ++w) {
          if (word(w) != 0) return false;
        }
        return true;
      }
      case SharerRep::kLimited:
        return !broadcast_ && ptr_count_ == 0;
    }
    return true;
  }

  /// Number of *represented* sharers (over-approximations count every node
  /// they cover; broadcast counts the whole machine).
  [[nodiscard]] std::uint32_t count() const noexcept {
    switch (rep_) {
      case SharerRep::kFull: {
        std::uint32_t c = 0;
        for (std::uint32_t w = 0; w < words(); ++w)
          c += static_cast<std::uint32_t>(std::popcount(word(w)));
        return c;
      }
      case SharerRep::kCoarse: {
        std::uint32_t c = 0;
        const std::uint32_t regions = num_regions();
        for (std::uint32_t r = 0; r < regions; ++r) {
          if (!test_bit(static_cast<NodeId>(r))) continue;
          const std::uint32_t lo = r * region_;
          const std::uint32_t hi =
              std::min<std::uint32_t>(lo + region_, num_nodes_);
          c += hi - lo;
        }
        return c;
      }
      case SharerRep::kLimited:
        return broadcast_ ? num_nodes_ : ptr_count_;
    }
    return 0;
  }

  /// Visits every represented member in ascending node id.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    switch (rep_) {
      case SharerRep::kFull: {
        for (std::uint32_t w = 0; w < words(); ++w) {
          std::uint64_t bits = word(w);
          while (bits != 0) {
            const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
            fn(static_cast<NodeId>(w * 64 + b));
            bits &= bits - 1;
          }
        }
        return;
      }
      case SharerRep::kCoarse: {
        const std::uint32_t regions = num_regions();
        for (std::uint32_t r = 0; r < regions; ++r) {
          if (!test_bit(static_cast<NodeId>(r))) continue;
          const std::uint32_t lo = r * region_;
          const std::uint32_t hi =
              std::min<std::uint32_t>(lo + region_, num_nodes_);
          for (std::uint32_t n = lo; n < hi; ++n) fn(static_cast<NodeId>(n));
        }
        return;
      }
      case SharerRep::kLimited: {
        if (broadcast_) {
          for (std::uint32_t n = 0; n < num_nodes_; ++n)
            fn(static_cast<NodeId>(n));
          return;
        }
        for (std::uint8_t i = 0; i < ptr_count_; ++i) fn(ptrs_[i]);
        return;
      }
    }
  }

  /// First 64 nodes of the expansion, as the legacy bitmask (trace events
  /// carry this; it truncates on purpose past node 63).
  [[nodiscard]] std::uint64_t mask64() const {
    std::uint64_t m = 0;
    for_each([&m](NodeId n) {
      if (n < 64) m |= std::uint64_t{1} << n;
    });
    return m;
  }

  /// Exact (kFull) copy of the represented members, minus `excl`. This is
  /// how the directory derives invalidation targets from a possibly lossy
  /// sharer list.
  [[nodiscard]] SharerSet expand_excluding(NodeId excl) const {
    SharerSet out;
    out.num_nodes_ = num_nodes_;
    for_each([&out, excl](NodeId n) {
      if (n != excl) out.set_bit(n);
    });
    return out;
  }

  /// Exact copy of the represented members.
  [[nodiscard]] SharerSet expand() const {
    return expand_excluding(kInvalidNode);
  }

  /// Re-encodes the members of `members` into this set's representation
  /// (the directory rebuilding its sharer list from exact survivor info).
  void assign(const SharerSet& members) {
    clear();
    members.for_each([this](NodeId n) { add(n); });
  }

  /// Exact intersection of two sets' represented members.
  [[nodiscard]] static SharerSet intersect(const SharerSet& a,
                                           const SharerSet& b) {
    SharerSet out;
    out.num_nodes_ = a.num_nodes_;
    a.for_each([&out, &b](NodeId n) {
      if (b.contains(n)) out.set_bit(n);
    });
    return out;
  }

  [[nodiscard]] std::vector<NodeId> to_vector() const {
    std::vector<NodeId> v;
    v.reserve(count());
    for_each([&v](NodeId n) { v.push_back(n); });
    return v;
  }

  /// Same represented membership (representation parameters ignored).
  [[nodiscard]] friend bool operator==(const SharerSet& a, const SharerSet& b) {
    return a.to_vector() == b.to_vector();
  }

 private:
  static constexpr std::uint32_t kInlineWords = 2;  ///< 128 nodes heap-free.

  [[nodiscard]] std::uint32_t num_regions() const noexcept {
    return (num_nodes_ + region_ - 1) / region_;
  }
  [[nodiscard]] std::uint32_t words() const noexcept {
    return kInlineWords + heap_words_;
  }
  [[nodiscard]] std::uint64_t word(std::uint32_t w) const noexcept {
    return w < kInlineWords ? inline_[w] : heap_[w - kInlineWords];
  }

  void set_bit(NodeId n) {
    const std::uint32_t w = n / 64u;
    if (w >= kInlineWords) {
      const std::uint32_t hw = w - kInlineWords;
      if (hw >= heap_words_) grow_heap(hw + 1);
      heap_[hw] |= std::uint64_t{1} << (n % 64u);
      return;
    }
    inline_[w] |= std::uint64_t{1} << (n % 64u);
  }
  void clear_bit(NodeId n) noexcept {
    const std::uint32_t w = n / 64u;
    if (w >= kInlineWords) {
      const std::uint32_t hw = w - kInlineWords;
      if (hw < heap_words_) heap_[hw] &= ~(std::uint64_t{1} << (n % 64u));
      return;
    }
    inline_[w] &= ~(std::uint64_t{1} << (n % 64u));
  }
  [[nodiscard]] bool test_bit(NodeId n) const noexcept {
    const std::uint32_t w = n / 64u;
    if (w >= kInlineWords) {
      const std::uint32_t hw = w - kInlineWords;
      return hw < heap_words_ &&
             (heap_[hw] & (std::uint64_t{1} << (n % 64u))) != 0;
    }
    return (inline_[w] & (std::uint64_t{1} << (n % 64u))) != 0;
  }

  void grow_heap(std::uint32_t need) {
    auto bigger = std::make_unique<std::uint64_t[]>(need);
    std::memset(bigger.get(), 0, need * sizeof(std::uint64_t));
    if (heap_)
      std::memcpy(bigger.get(), heap_.get(),
                  heap_words_ * sizeof(std::uint64_t));
    heap_ = std::move(bigger);
    heap_words_ = need;
  }

  void copy_from(const SharerSet& o) {
    rep_ = o.rep_;
    broadcast_ = o.broadcast_;
    ptr_count_ = o.ptr_count_;
    ptr_cap_ = o.ptr_cap_;
    num_nodes_ = o.num_nodes_;
    region_ = o.region_;
    ptrs_ = o.ptrs_;
    std::memcpy(inline_, o.inline_, sizeof(inline_));
    heap_words_ = o.heap_words_;
    if (o.heap_) {
      heap_ = std::make_unique<std::uint64_t[]>(heap_words_);
      std::memcpy(heap_.get(), o.heap_.get(),
                  heap_words_ * sizeof(std::uint64_t));
    } else {
      heap_.reset();
    }
  }

  SharerRep rep_ = SharerRep::kFull;
  bool broadcast_ = false;
  std::uint8_t ptr_count_ = 0;
  std::uint8_t ptr_cap_ = kMaxLimitedPointers;
  std::uint16_t num_nodes_ = 0;  ///< 0 = unbounded (kFull transient sets).
  std::uint16_t region_ = 1;
  std::uint32_t heap_words_ = 0;
  std::uint64_t inline_[kInlineWords] = {0, 0};
  std::unique_ptr<std::uint64_t[]> heap_;
  std::array<NodeId, kMaxLimitedPointers> ptrs_{};
};

/// Directory-entry representation parameters for a system configuration.
[[nodiscard]] inline SharerSet::Params sharer_params(const SystemConfig& cfg) {
  return SharerSet::Params{
      .rep = cfg.dir.sharer_rep,
      .num_nodes = static_cast<std::uint16_t>(cfg.num_nodes),
      .coarse_region = static_cast<std::uint16_t>(cfg.dir.coarse_region),
      .limited_pointers = static_cast<std::uint16_t>(cfg.dir.limited_pointers),
  };
}

}  // namespace puno::coherence
