// Generic set-associative tag array with true-LRU replacement.
//
// Used for both the private L1s and the shared L2 banks. The simulator
// tracks tags and per-line metadata only — simulated programs have no data
// values, so "data" never needs to be stored.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hpp"

namespace puno::coherence {

/// Per-line metadata kept by a CacheArray user.
template <typename LineState>
struct CacheLine {
  BlockAddr addr = 0;
  bool valid = false;
  std::uint64_t lru = 0;  ///< Larger = more recently used.
  LineState state{};
};

template <typename LineState>
class CacheArray {
 public:
  /// size_bytes / block_bytes must be divisible by assoc; all powers of two.
  CacheArray(std::uint64_t size_bytes, std::uint32_t assoc,
             std::uint32_t block_bytes)
      : assoc_(assoc),
        block_bytes_(block_bytes),
        num_sets_(static_cast<std::uint32_t>(size_bytes / block_bytes / assoc)),
        lines_(static_cast<std::size_t>(num_sets_) * assoc) {
    assert(std::has_single_bit(num_sets_));
    assert(std::has_single_bit(block_bytes_));
  }

  [[nodiscard]] std::uint32_t num_sets() const noexcept { return num_sets_; }
  [[nodiscard]] std::uint32_t assoc() const noexcept { return assoc_; }

  [[nodiscard]] std::uint32_t set_index(BlockAddr addr) const noexcept {
    return static_cast<std::uint32_t>((addr / block_bytes_) & (num_sets_ - 1));
  }

  /// Looks up `addr`; returns the line if present and valid.
  [[nodiscard]] CacheLine<LineState>* find(BlockAddr addr) {
    const std::uint32_t set = set_index(addr);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      CacheLine<LineState>& line = at(set, w);
      if (line.valid && line.addr == addr) return &line;
    }
    return nullptr;
  }
  [[nodiscard]] const CacheLine<LineState>* find(BlockAddr addr) const {
    return const_cast<CacheArray*>(this)->find(addr);
  }

  /// Marks a line most-recently-used.
  void touch(CacheLine<LineState>& line) noexcept { line.lru = ++lru_clock_; }

  /// Returns the line to fill for `addr`: an invalid way if one exists,
  /// otherwise the LRU way. The caller must handle eviction of the returned
  /// line if it is valid (check `valid` before overwriting).
  [[nodiscard]] CacheLine<LineState>& victim(BlockAddr addr) {
    const std::uint32_t set = set_index(addr);
    CacheLine<LineState>* best = &at(set, 0);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      CacheLine<LineState>& line = at(set, w);
      if (!line.valid) return line;
      if (line.lru < best->lru) best = &line;
    }
    return *best;
  }

  /// Victim selection that skips lines for which `pinned(state)` is true
  /// (e.g. transactional lines that must not be silently evicted). Returns
  /// nullptr if every way in the set is pinned.
  template <typename Pred>
  [[nodiscard]] CacheLine<LineState>* victim_excluding(BlockAddr addr,
                                                       Pred&& pinned) {
    const std::uint32_t set = set_index(addr);
    CacheLine<LineState>* best = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      CacheLine<LineState>& line = at(set, w);
      if (!line.valid) return &line;
      if (pinned(line)) continue;
      if (best == nullptr || line.lru < best->lru) best = &line;
    }
    return best;
  }

  /// Installs `addr` into `line` (which the caller obtained from victim()).
  CacheLine<LineState>& fill(CacheLine<LineState>& line, BlockAddr addr) {
    line.addr = addr;
    line.valid = true;
    line.state = LineState{};
    touch(line);
    return line;
  }

  void invalidate(CacheLine<LineState>& line) noexcept { line.valid = false; }

  /// Iterates all valid lines (test/debug aid).
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& line : lines_) {
      if (line.valid) fn(line);
    }
  }
  template <typename Fn>
  void for_each_valid(Fn&& fn) const {
    for (const auto& line : lines_) {
      if (line.valid) fn(line);
    }
  }

 private:
  [[nodiscard]] CacheLine<LineState>& at(std::uint32_t set, std::uint32_t way) {
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
  }

  std::uint32_t assoc_;
  std::uint32_t block_bytes_;
  std::uint32_t num_sets_;
  std::uint64_t lru_clock_ = 0;
  std::vector<CacheLine<LineState>> lines_;
};

}  // namespace puno::coherence
