#include "coherence/l1_controller.hpp"

#include <cassert>

#include "sim/log.hpp"
#include "trace/recorder.hpp"

namespace puno::coherence {

L1Controller::L1Controller(sim::Kernel& kernel, const SystemConfig& cfg,
                           NodeId node, TxnHooks& hooks, SendFn send)
    : kernel_(kernel),
      cfg_(cfg),
      node_(node),
      hooks_(hooks),
      send_(std::move(send)),
      cache_(cfg.cache.l1_size_bytes, cfg.cache.l1_assoc,
             cfg.cache.block_bytes),
      loads_(kernel.stats().counter("l1.loads")),
      stores_(kernel.stats().counter("l1.stores")),
      hits_(kernel.stats().counter("l1.hits")),
      misses_(kernel.stats().counter("l1.misses")),
      tx_getx_issued_(kernel.stats().counter("l1.tx_getx_issued")),
      tx_getx_nacked_(kernel.stats().counter("l1.tx_getx_nacked")),
      retries_stat_(kernel.stats().counter("l1.request_retries")),
      overflow_aborts_(kernel.stats().counter("l1.overflow_aborts")),
      evictions_(kernel.stats().counter("l1.evictions")),
      contended_acquire_latency_(
          kernel.stats().scalar("l1.contended_acquire_latency")),
      retries_per_contended_acquire_(
          kernel.stats().scalar("l1.retries_per_contended_acquire")),
      hint_wakeups_(kernel.stats().counter("l1.hint_wakeups")) {}

std::optional<L1Controller::LineState> L1Controller::line_state(
    BlockAddr addr) const {
  const auto* line = cache_.find(addr);
  if (line == nullptr) return std::nullopt;
  return line->state.state;
}

std::shared_ptr<Message> L1Controller::make_msg(MsgType t, BlockAddr addr) {
  auto m = std::make_shared<Message>();
  m->type = t;
  m->addr = addr;
  m->sender = node_;
  m->requester = node_;
  return m;
}

void L1Controller::load(Addr addr, bool transactional, bool exclusive_hint,
                        OpCallback cb) {
  loads_.add();
  const BlockAddr block = cfg_.block_of(addr);
  if (auto* line = cache_.find(block)) {
    cache_.touch(*line);
    hits_.add();
    // The hit completes after the access latency — and must be re-validated
    // then: an invalidation arriving inside the window would otherwise let
    // the load slip past conflict detection (the cache port orders incoming
    // probes ahead of in-flight hits).
    kernel_.schedule(cfg_.cache.l1_latency,
                     [this, block, transactional, exclusive_hint,
                      cb = std::move(cb)]() mutable {
                       if (cache_.find(block) != nullptr) {
                         cb(true);
                         return;
                       }
                       misses_.add();
                       start_miss(block, /*is_store=*/false, exclusive_hint,
                                  transactional, std::move(cb));
                     });
    return;
  }
  misses_.add();
  start_miss(block, /*is_store=*/false, /*exclusive=*/exclusive_hint,
             transactional, std::move(cb));
}

void L1Controller::store(Addr addr, bool transactional, OpCallback cb) {
  stores_.add();
  const BlockAddr block = cfg_.block_of(addr);
  if (auto* line = cache_.find(block)) {
    if (line->state.state != LineState::kS) {
      cache_.touch(*line);
      hits_.add();
      // Same re-validation as loads: the line may be invalidated (or
      // downgraded to S by a forwarded read) while the hit is in flight.
      kernel_.schedule(
          cfg_.cache.l1_latency,
          [this, block, transactional, cb = std::move(cb)]() mutable {
            auto* l = cache_.find(block);
            if (l != nullptr && l->state.state != LineState::kS) {
              l->state.state = LineState::kM;  // E upgrades to M silently
              cb(true);
              return;
            }
            misses_.add();
            start_miss(block, /*is_store=*/true, /*exclusive=*/true,
                       transactional, std::move(cb));
          });
      return;
    }
    // S needs exclusive permission: upgrade GETX.
  }
  misses_.add();
  start_miss(block, /*is_store=*/true, /*exclusive=*/true, transactional,
             std::move(cb));
}

void L1Controller::start_miss(Addr addr, bool is_store, bool exclusive,
                              bool transactional, OpCallback cb) {
  assert(!mshr_.has_value() && "core must issue one operation at a time");
  if (wb_buffer_.contains(addr)) {
    // The block's writeback is still in flight; defer until it resolves so
    // the directory never sees a request racing our own PutX.
    assert(!deferred_.has_value());
    deferred_ = DeferredOp{is_store, transactional, exclusive, std::move(cb),
                           addr};
    return;
  }
  Mshr m;
  m.addr = addr;
  m.is_store = is_store;
  m.exclusive = exclusive || is_store;
  m.transactional = transactional;
  m.cb = std::move(cb);
  m.first_issue = kernel_.now();
  mshr_ = std::move(m);
  issue_request();
}

void L1Controller::issue_request() {
  Mshr& m = *mshr_;
  m.data_received = false;
  m.data_exclusive = false;
  m.expected_known = false;
  m.expected = 0;
  m.responses = 0;
  m.nacks = 0;
  m.aborted_acks = 0;
  m.nackers.clear();
  m.best_notification = 0;
  m.mp_seen = false;
  m.mp_node = kInvalidNode;
  m.in_backoff = false;

  auto req = make_msg(m.exclusive ? MsgType::kGetX : MsgType::kGetS, m.addr);
  req->transactional = m.transactional;
  req->ts = hooks_.current_ts();
  req->avg_txn_len = hooks_.avg_txn_len();
  if (m.transactional && m.exclusive) tx_getx_issued_.add();
  PUNO_TRACE(sim::TraceCat::kCoherence, kernel_.now(), "L1 ", node_, " issues ",
             to_string(req->type), " addr ", m.addr, " ts ", req->ts);
  send_(home(m.addr), std::move(req));
}

void L1Controller::handle_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kData:
    case MsgType::kAck:
    case MsgType::kNack:
      handle_response(msg);
      return;
    case MsgType::kInv:
      handle_inv(msg);
      return;
    case MsgType::kFwdGetS:
      handle_fwd_gets(msg);
      return;
    case MsgType::kWbAck:
    case MsgType::kWbStale:
      handle_wb_reply(msg);
      return;
    case MsgType::kRetryHint:
      handle_retry_hint(msg);
      return;
    default:
      assert(false && "message type not handled by the L1");
  }
}

void L1Controller::handle_response(const Message& msg) {
  // Responses can only belong to the single outstanding miss.
  if (!mshr_.has_value() || mshr_->addr != msg.addr || mshr_->in_backoff) {
    assert(false && "response without a matching MSHR");
    return;
  }
  Mshr& m = *mshr_;
  switch (msg.type) {
    case MsgType::kData:
      m.data_received = true;
      m.data_exclusive = msg.exclusive;
      if (msg.sole) {
        m.expected_known = true;
        m.expected = 0;
        m.responses = 0;
      } else if (!m.expected_known) {
        m.expected_known = true;
        m.expected = msg.expected_responses;
      }
      break;
    case MsgType::kAck:
      ++m.responses;
      if (msg.responder_aborted) ++m.aborted_acks;
      break;
    case MsgType::kNack:
      ++m.responses;
      ++m.nacks;
      ++tile_nacks_received_;
      m.nackers.add(msg.sender);
      if (msg.notification > m.best_notification) {
        m.best_notification = msg.notification;
      }
      if (msg.mp_bit) {
        m.mp_seen = true;
        m.mp_node = msg.sender;
      }
      if (msg.sole) {
        // A sole NACK (owner forward or PUNO unicast) fully resolves the
        // request: no data or further responses will come.
        m.data_received = false;
        m.expected_known = true;
        m.expected = 1;
      }
      break;
    default:
      assert(false);
  }
  check_completion();
}

void L1Controller::check_completion() {
  Mshr& m = *mshr_;
  if (m.nacks > 0) {
    // Failure completes once every expected response has arrived (the data
    // message may still be in flight for the multicast case; it carries the
    // expected count, so it must be seen before we can be sure).
    if (m.expected_known && m.responses >= m.expected &&
        (m.data_received || m.expected == 1)) {
      complete_failure();
    }
    return;
  }
  if (m.data_received && m.expected_known && m.responses >= m.expected) {
    complete_success();
  }
}

void L1Controller::complete_success() {
  Mshr& m = *mshr_;
  LineState target;
  if (m.is_store) {
    target = LineState::kM;
  } else if (m.exclusive || m.data_exclusive) {
    target = LineState::kE;
  } else {
    target = LineState::kS;
  }
  if (auto* line = cache_.find(m.addr)) {
    line->state.state = target;
    cache_.touch(*line);
  } else {
    install(m.addr, target);
  }

  auto unblock = make_msg(MsgType::kUnblock, m.addr);
  unblock->success = true;
  send_(home(m.addr), std::move(unblock));

  if (m.transactional && m.exclusive) {
    hooks_.on_getx_outcome(m.addr, /*success=*/true, m.nacks, m.aborted_acks);
  }
  if (m.retries > 0) {
    // An acquisition that was nacked at least once: the handoff latency the
    // backoff policy governs.
    contended_acquire_latency_.sample(
        static_cast<double>(kernel_.now() - m.first_issue));
    retries_per_contended_acquire_.sample(static_cast<double>(m.retries));
  }
  finalize(true);
}

void L1Controller::complete_failure() {
  Mshr& m = *mshr_;
  if (m.transactional && m.exclusive) tx_getx_nacked_.add();

  auto unblock = make_msg(MsgType::kUnblock, m.addr);
  unblock->success = false;
  unblock->surviving_sharers = m.nackers;
  if (m.mp_seen) {
    // Misprediction feedback rides the UNBLOCK to the directory (Fig. 7).
    unblock->mp_bit = true;
    unblock->mp_node = m.mp_node;
  }
  send_(home(m.addr), std::move(unblock));

  if (m.transactional && m.exclusive) {
    hooks_.on_getx_outcome(m.addr, /*success=*/false, m.nacks,
                           m.aborted_acks);
  }

  if (m.cancel) {
    // The local transaction aborted while this request was in flight; the
    // operation dies with it.
    finalize(false);
    return;
  }

  // Retry after backoff ("polling the sharers", Section II.C). PUNO's
  // notification makes this wait long enough for the nacker to finish.
  const Cycle backoff = hooks_.retry_backoff(m.best_notification, m.retries);
  PUNO_TEV(kernel_, trace::Cat::kConflict,
           (trace::TraceEvent{.cycle = kernel_.now(),
                              .addr = m.addr,
                              .ts = m.best_notification,
                              .a = backoff,
                              .b = m.retries,
                              .node = node_,
                              .kind = trace::EventKind::kBackoffWindow,
                              .flags = m.best_notification > 0
                                           ? std::uint8_t{1}
                                           : std::uint8_t{0}}));
  ++m.retries;
  retries_stat_.add();
  m.in_backoff = true;
  ++m.backoff_epoch;
  kernel_.schedule(backoff, [this, addr = m.addr, epoch = m.backoff_epoch] {
    if (!mshr_.has_value() || mshr_->addr != addr || !mshr_->in_backoff ||
        mshr_->backoff_epoch != epoch) {
      return;  // stale wakeup: a retry hint (or a newer backoff) beat us
    }
    if (mshr_->cancel) {
      finalize(false);
      return;
    }
    issue_request();
  });
}

void L1Controller::handle_retry_hint(const Message& msg) {
  // Commit-hint extension: the transaction that nacked us has finished, so
  // the (possibly overestimated) notification wait can be cut short.
  if (!mshr_.has_value() || mshr_->addr != msg.addr || !mshr_->in_backoff) {
    return;  // nothing waiting on this line (hint raced the retry)
  }
  if (mshr_->cancel) {
    finalize(false);
    return;
  }
  hint_wakeups_.add();
  ++mshr_->backoff_epoch;  // invalidate the scheduled wakeup
  issue_request();
}

void L1Controller::finalize(bool success) {
  OpCallback cb = std::move(mshr_->cb);
  mshr_.reset();
  cb(success);
}

void L1Controller::on_local_abort() {
  if (mshr_.has_value() && mshr_->transactional) mshr_->cancel = true;
}

void L1Controller::handle_inv(const Message& msg) {
  // Writeback races: we are no longer the real holder, but the directory's
  // forward crossed our PutX. Serve it from the writeback buffer.
  if (const auto wb = wb_buffer_.find(msg.addr); wb != wb_buffer_.end()) {
    assert(!hooks_.is_txn_line(msg.addr));
    if (msg.sole && !msg.u_bit) {
      // Ownership transfer: supply the line from the buffer.
      auto data = std::make_shared<Message>();
      data->type = MsgType::kData;
      data->addr = msg.addr;
      data->sender = node_;
      data->requester = msg.requester;
      data->exclusive = true;
      data->sole = true;
      send_(msg.requester, std::move(data));
    } else {
      if (msg.u_bit) ++tile_nacks_sent_;
      auto resp = make_msg(msg.u_bit ? MsgType::kNack : MsgType::kAck,
                           msg.addr);
      resp->requester = msg.requester;
      resp->sole = msg.sole;
      resp->mp_bit = msg.u_bit;  // not a nacker transaction: misprediction
      send_(msg.requester, std::move(resp));
    }
    return;
  }

  auto* line = cache_.find(msg.addr);
  const ConflictVerdict verdict = hooks_.on_remote_request(
      msg.addr, /*write=*/true, msg.ts, msg.requester, msg.u_bit);

  if (msg.u_bit) {
    // PUNO unicast forwards never invalidate and never abort: either the
    // prediction was right (NACK with notification) or it was wrong (NACK
    // with the MP-bit, Section III.C).
    assert(verdict.decision == ConflictDecision::kNack);
    ++tile_nacks_sent_;
    auto nack = make_msg(MsgType::kNack, msg.addr);
    nack->requester = msg.requester;
    nack->sole = true;
    nack->notification = verdict.notification;
    nack->mp_bit = verdict.mispredicted;
    send_(msg.requester, std::move(nack));
    return;
  }

  if (verdict.decision == ConflictDecision::kNack) {
    ++tile_nacks_sent_;
    auto nack = make_msg(MsgType::kNack, msg.addr);
    nack->requester = msg.requester;
    nack->sole = msg.sole;
    nack->notification = verdict.notification;
    send_(msg.requester, std::move(nack));
    return;
  }

  const bool aborted = verdict.decision == ConflictDecision::kGrantAfterAbort;
  const Cycle delay = aborted ? cfg_.htm.abort_recovery_latency : 0;
  const bool owner_transfer =
      msg.sole && line != nullptr && line->state.state != LineState::kS;

  if (line != nullptr) cache_.invalidate(*line);

  if (owner_transfer) {
    auto data = std::make_shared<Message>();
    data->type = MsgType::kData;
    data->addr = msg.addr;
    data->sender = node_;
    data->requester = msg.requester;
    data->exclusive = true;
    data->sole = true;
    data->responder_aborted = aborted;
    kernel_.schedule(delay, [this, dst = msg.requester,
                             data = std::move(data)] { send_(dst, data); });
  } else {
    // Sharer invalidation (or stale-sharer ack for a silently evicted line).
    auto ack = make_msg(MsgType::kAck, msg.addr);
    ack->requester = msg.requester;
    ack->sole = msg.sole;
    ack->responder_aborted = aborted;
    kernel_.schedule(delay, [this, dst = msg.requester,
                             ack = std::move(ack)] { send_(dst, ack); });
  }
}

void L1Controller::handle_fwd_gets(const Message& msg) {
  if (const auto wb = wb_buffer_.find(msg.addr); wb != wb_buffer_.end()) {
    assert(!hooks_.is_txn_line(msg.addr));
    auto data = std::make_shared<Message>();
    data->type = MsgType::kData;
    data->addr = msg.addr;
    data->sender = node_;
    data->requester = msg.requester;
    data->exclusive = false;
    data->sole = true;
    send_(msg.requester, std::move(data));
    auto wbd = make_msg(MsgType::kWbData, msg.addr);
    send_(home(msg.addr), std::move(wbd));
    return;
  }

  auto* line = cache_.find(msg.addr);
  assert(line != nullptr && line->state.state != LineState::kS &&
         "FwdGetS must reach the exclusive owner");

  const ConflictVerdict verdict = hooks_.on_remote_request(
      msg.addr, /*write=*/false, msg.ts, msg.requester, /*u_bit=*/false);

  if (verdict.decision == ConflictDecision::kNack) {
    ++tile_nacks_sent_;
    auto nack = make_msg(MsgType::kNack, msg.addr);
    nack->requester = msg.requester;
    nack->sole = true;
    nack->notification = verdict.notification;
    send_(msg.requester, std::move(nack));
    return;
  }

  const bool aborted = verdict.decision == ConflictDecision::kGrantAfterAbort;
  const Cycle delay = aborted ? cfg_.htm.abort_recovery_latency : 0;

  line->state.state = LineState::kS;  // downgrade; requester gets a copy

  auto data = std::make_shared<Message>();
  data->type = MsgType::kData;
  data->addr = msg.addr;
  data->sender = node_;
  data->requester = msg.requester;
  data->exclusive = false;
  data->sole = true;
  data->responder_aborted = aborted;
  auto wbd = make_msg(MsgType::kWbData, msg.addr);
  kernel_.schedule(delay, [this, dst = msg.requester, data = std::move(data),
                           h = home(msg.addr), wbd = std::move(wbd)] {
    send_(dst, data);
    send_(h, wbd);
  });
}

void L1Controller::handle_wb_reply(const Message& msg) {
  wb_buffer_.erase(msg.addr);
  if (deferred_.has_value() && cfg_.block_of(deferred_->addr) == msg.addr) {
    DeferredOp op = std::move(*deferred_);
    deferred_.reset();
    start_miss(cfg_.block_of(op.addr), op.is_store,
               op.exclusive_hint || op.is_store, op.transactional,
               std::move(op.cb));
  }
}

CacheLine<L1Controller::L1Meta>& L1Controller::install(BlockAddr addr,
                                                       LineState state) {
  auto pinned = [this](const CacheLine<L1Meta>& line) {
    return hooks_.is_txn_line(line.addr);
  };
  auto* victim = cache_.victim_excluding(addr, pinned);
  if (victim == nullptr) {
    // Every way in the set belongs to the running transaction's footprint:
    // bounded-HTM overflow. Abort the transaction, which unpins the lines.
    overflow_aborts_.add();
    hooks_.on_overflow_eviction(addr);
    victim = cache_.victim_excluding(addr, pinned);
    assert(victim != nullptr && "overflow abort must unpin the set");
  }
  if (victim->valid) evict(*victim);
  auto& line = cache_.fill(*victim, addr);
  line.state.state = state;
  return line;
}

void L1Controller::evict(CacheLine<L1Meta>& line) {
  evictions_.add();
  if (line.state.state == LineState::kS) {
    // Silent eviction; the directory's sharer list goes stale-inclusive and
    // a later invalidation gets a plain ack.
    return;
  }
  const bool dirty = line.state.state == LineState::kM;
  wb_buffer_[line.addr] = WbEntry{dirty};
  auto putx = make_msg(MsgType::kPutX, line.addr);
  putx->has_payload = dirty;
  send_(home(line.addr), std::move(putx));
}

}  // namespace puno::coherence
