// Coherence protocol message vocabulary.
//
// The protocol is a blocking, MESI, SGI-Origin-style directory protocol (the
// family the paper's baseline HTM piggybacks on), extended with the NACK
// semantics eager HTMs add and with the three PUNO message extensions of
// Figure 7:
//   * GETX/INV gains a U-bit (unicast),
//   * NACK gains a notification field (nacker's estimated remaining cycles)
//     and an MP-bit (misprediction feedback),
//   * UNBLOCK gains an MP-bit and MP-node field.
// None of these extensions adds flits: control messages stay single-flit.
#pragma once

#include <cstdint>
#include <memory>

#include "coherence/sharer_set.hpp"
#include "noc/flit.hpp"
#include "sim/types.hpp"

namespace puno::coherence {

/// Bit for node `n` in a sharer bitmask.
[[nodiscard]] constexpr std::uint64_t node_bit(NodeId n) noexcept {
  return 1ull << n;
}

enum class MsgType : std::uint8_t {
  // Requests: L1 -> home directory (virtual network 0).
  kGetS,     ///< Read (shared) access.
  kGetX,     ///< Write (exclusive) access; also upgrades from S.
  kPutX,     ///< Writeback of a dirty line.
  // Forwards: directory -> L1 (virtual network 1).
  kFwdGetS,  ///< Forwarded read request to the exclusive owner.
  kInv,      ///< Invalidation (forwarded GETX) to a sharer / owner.
  kWbAck,    ///< Writeback accepted.
  kWbStale,  ///< Writeback crossed a forward in flight; drop it.
  // Responses (virtual network 2).
  kData,      ///< Cache line data (from home or owner).
  kRetryHint, ///< Extension: a nacker finished; the waiter may retry now.
  kAck,       ///< Invalidation acknowledged.
  kNack,      ///< Negative acknowledgement: conflict, request rejected.
  kUnblock,   ///< Requester -> home: transaction on the line is complete.
  kWbData,    ///< Owner -> home: dirty data accompanying a downgrade.
};

[[nodiscard]] constexpr const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetX: return "GetX";
    case MsgType::kPutX: return "PutX";
    case MsgType::kFwdGetS: return "FwdGetS";
    case MsgType::kInv: return "Inv";
    case MsgType::kWbAck: return "WbAck";
    case MsgType::kWbStale: return "WbStale";
    case MsgType::kData: return "Data";
    case MsgType::kRetryHint: return "RetryHint";
    case MsgType::kAck: return "Ack";
    case MsgType::kNack: return "Nack";
    case MsgType::kUnblock: return "Unblock";
    case MsgType::kWbData: return "WbData";
  }
  return "?";
}

/// True for message types that carry a full cache line (head + body flits).
[[nodiscard]] constexpr bool carries_data(MsgType t) noexcept {
  return t == MsgType::kData || t == MsgType::kWbData || t == MsgType::kPutX;
}

struct Message final : noc::PacketPayload {
  MsgType type = MsgType::kGetS;
  BlockAddr addr = 0;
  NodeId sender = kInvalidNode;     ///< Node emitting this message.
  NodeId requester = kInvalidNode;  ///< Original requester of the operation.

  // --- HTM conflict-detection fields (Section II.B) ---
  bool transactional = false;  ///< Request issued from inside a transaction.
  Timestamp ts = kInvalidTimestamp;  ///< Requester's transaction timestamp.

  // --- Response bookkeeping ---
  /// On kData: how many Ack/Nack responses the requester must still collect.
  std::uint32_t expected_responses = 0;
  bool exclusive = false;  ///< kData grants E/M instead of S.
  bool success = false;    ///< kUnblock: the request completed (vs. nacked).
  /// kUnblock after a failed GETX: sharers that nacked and therefore keep
  /// their copy. Exact (full-bit-vector) regardless of the directory's
  /// configured sharer representation — the wire carries real node ids.
  SharerSet surviving_sharers;
  /// kAck: the responder aborted its transaction to honour the invalidation.
  /// Physically one bit; used for false-abort accounting (Figures 2 and 3).
  bool responder_aborted = false;
  /// Forwards: the receiver is the only node being forwarded to, so its
  /// response fully resolves the request (owner forwards and PUNO unicasts).
  /// Responses: echo of the same bit, telling the requester not to wait for
  /// further responses or data.
  bool sole = false;
  /// kData: false for a permission-upgrade grant that carries no cache line
  /// (the requester already holds the data in S); such grants are
  /// single-flit control messages.
  bool has_payload = true;

  // --- PUNO message extensions (Figure 7) ---
  bool u_bit = false;    ///< kInv/kFwdGetS: this forward is a predicted unicast
  bool mp_bit = false;   ///< kNack/kUnblock: unicast destination mispredicted.
  NodeId mp_node = kInvalidNode;  ///< kUnblock: the mispredicted sharer.
  /// kNack: nacker's estimated remaining running time in cycles (Section
  /// III.D). Zero means "no estimate".
  Cycle notification = 0;
  /// Requests: requester's current average transaction length (drives the
  /// adaptive timeout of the P-Buffer validity mechanism, Section III.B).
  Cycle avg_txn_len = 0;

  [[nodiscard]] static std::shared_ptr<const Message> make(
      MsgType type, BlockAddr addr, NodeId sender, NodeId requester) {
    auto m = std::make_shared<Message>();
    m->type = type;
    m->addr = addr;
    m->sender = sender;
    m->requester = requester;
    return m;
  }
};

/// Virtual-network assignment by message class (request / forward / response)
[[nodiscard]] constexpr noc::VNet vnet_of(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetS:
    case MsgType::kGetX:
    case MsgType::kPutX:
      return noc::VNet::kRequest;
    case MsgType::kFwdGetS:
    case MsgType::kInv:
    case MsgType::kWbAck:
    case MsgType::kWbStale:
      return noc::VNet::kForward;
    case MsgType::kData:
    case MsgType::kAck:
    case MsgType::kNack:
    case MsgType::kUnblock:
    case MsgType::kWbData:
    case MsgType::kRetryHint:
      return noc::VNet::kResponse;
  }
  return noc::VNet::kResponse;
}

}  // namespace puno::coherence
