// TelemetrySampler: a kernel post-cycle observer that periodically
// snapshots live gauges from every subsystem of a Cmp into a SeriesRing.
//
// Attachment model mirrors check::InvariantChecker: attach() registers a
// post-cycle hook (named "telemetry.sampler" for the host profiler) on the
// Cmp's kernel. The hook only *reads* — counters from the stats registry,
// gauges through const introspection accessors — so an attached sampler
// never changes simulated behaviour; tests/telemetry assert RunResults are
// bit-identical with sampling on and off.
#pragma once

#include <memory>

#include "sim/types.hpp"
#include "telemetry/series.hpp"

namespace puno::arch {
class Cmp;
}  // namespace puno::arch

namespace puno::telemetry {

class TelemetrySampler {
 public:
  /// Does not register anything; use attach() for the hooked-up form.
  /// `spatial` additionally records the per-tile channels (mesh heatmaps);
  /// the per-tile snapshot state is only allocated when it is set, so
  /// non-spatial samplers cost exactly what they did before.
  TelemetrySampler(arch::Cmp& cmp, Cycle interval, std::size_t capacity,
                   bool spatial = false);

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Creates a sampler and registers its post-cycle hook on `cmp`'s kernel.
  /// `interval` must be > 0 (callers gate on TelemetryRequest::active()).
  /// The caller owns the sampler and must keep it alive for the run.
  static std::unique_ptr<TelemetrySampler> attach(arch::Cmp& cmp,
                                                  const TelemetryRequest& req);

  /// Takes one sample now, closing the current (possibly partial) window.
  /// Call once after the run so the series covers every simulated cycle;
  /// idempotent when no cycles elapsed since the last sample.
  void finish();

  [[nodiscard]] const SeriesRing& series() const noexcept { return ring_; }
  [[nodiscard]] Cycle interval() const noexcept { return interval_; }
  [[nodiscard]] bool spatial() const noexcept { return spatial_; }

  /// Post-cycle hook body (public so tests can drive sampling manually).
  void on_post_cycle(Cycle now);

 private:
  /// Snapshot of every differenced counter at the previous sample.
  struct CounterSnapshot {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t false_aborts = 0;
    std::uint64_t notified_backoffs = 0;
    std::uint64_t nacks = 0;
    std::uint64_t txgetx_services = 0;
    std::uint64_t unicasts = 0;
    std::uint64_t multicasts = 0;
    std::uint64_t mp_feedbacks = 0;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t flits_sent = 0;
    std::uint64_t flits_ejected = 0;
    std::uint64_t traversals = 0;
    std::vector<std::uint64_t> router_traversals;
    // Per-tile cumulative values of the differenced spatial channels.
    // Sized lazily in the constructor only when spatial sampling is on.
    std::vector<std::uint64_t> tile_aborts;
    std::vector<std::uint64_t> tile_false_aborts;
    std::vector<std::uint64_t> tile_nacks_sent;
    std::vector<std::uint64_t> tile_nacks_recv;
    std::vector<std::uint64_t> tile_pbuffer_evictions;
    std::vector<std::uint64_t> tile_ud_mispredicts;
  };

  /// Closes the window ending after `cycles_completed` cycles.
  void take_sample(Cycle cycles_completed);

  arch::Cmp& cmp_;
  Cycle interval_;
  bool spatial_;
  SeriesRing ring_;
  CounterSnapshot prev_;
  Cycle prev_cycle_ = 0;  ///< Cycles completed at the last sample.
};

}  // namespace puno::telemetry
