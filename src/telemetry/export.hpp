// Telemetry series serialization: JSONL (one sample object per line, the
// machine-readable interchange format), CSV (for spreadsheets/pandas) and
// the JSONL reader used by the round-trip validator.
//
// The JSONL schema is flat — every key maps to an integer or an integer
// array — and is parsed back by read_telemetry_jsonl, which skips unknown
// keys so the schema can grow compatibly. Writing is fully deterministic
// (fixed key order, no floats), so two runs of the same simulation produce
// byte-identical files regardless of runner parallelism.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/series.hpp"

namespace puno::telemetry {

/// Writes one sample as a single JSONL line (trailing '\n' included).
void write_sample_jsonl(const TelemetrySample& s, std::ostream& out);

/// Writes the whole series, one line per sample.
void write_telemetry_jsonl(const std::vector<TelemetrySample>& samples,
                           std::ostream& out);

/// Parses one JSONL line back into a sample. Returns false on malformed
/// input; unknown keys are skipped.
[[nodiscard]] bool read_sample_jsonl(std::string_view line,
                                     TelemetrySample& out);

/// Parses a whole JSONL document (one object per line; blank lines are
/// ignored). Returns false — leaving `out` unspecified — on the first
/// malformed line.
[[nodiscard]] bool read_telemetry_jsonl(std::string_view text,
                                        std::vector<TelemetrySample>& out);

/// CSV header for a series whose samples carry `num_nodes` per-core states
/// and per-router columns (core0..coreN-1, router0..routerN-1). `spatial`
/// appends the per-tile channel columns (tile_aborts0.., tile_txn_pins0..).
[[nodiscard]] std::string telemetry_csv_header(std::size_t num_nodes,
                                               bool spatial = false);

/// Writes the series as CSV, header included. Spatial columns appear iff
/// the first sample carries the spatial channels.
void write_telemetry_csv(const std::vector<TelemetrySample>& samples,
                         std::size_t num_nodes, std::ostream& out);

}  // namespace puno::telemetry
