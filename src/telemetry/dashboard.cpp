#include "telemetry/dashboard.hpp"

#include <algorithm>
#include <functional>
#include <ostream>

#include "sim/stats.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/html.hpp"

namespace puno::telemetry {

namespace {

using html::fmt;

constexpr int kSparkW = 300;
constexpr int kSparkH = 64;

/// One inline-SVG sparkline: a filled area + line over the series, y scaled
/// to [0, max]. Values are window-level quantities; x is the sample index.
void sparkline(std::ostream& out, const std::vector<double>& ys,
               const char* color) {
  double maxy = 0;
  for (const double y : ys) maxy = std::max(maxy, y);
  out << "<svg class=\"spark\" viewBox=\"0 0 " << kSparkW << ' ' << kSparkH
      << "\" width=\"" << kSparkW << "\" height=\"" << kSparkH
      << "\" preserveAspectRatio=\"none\">";
  if (ys.size() >= 2 && maxy > 0) {
    const double dx =
        static_cast<double>(kSparkW) / static_cast<double>(ys.size() - 1);
    std::string line;
    for (std::size_t i = 0; i < ys.size(); ++i) {
      const double x = dx * static_cast<double>(i);
      const double y =
          static_cast<double>(kSparkH) * (1.0 - ys[i] / maxy * 0.92) - 2.0;
      if (!line.empty()) line += ' ';
      line += fmt(x) + ',' + fmt(std::max(1.0, y));
    }
    out << "<polygon fill=\"" << color << "\" fill-opacity=\"0.15\" points=\""
        << "0," << kSparkH << ' ' << line << ' ' << kSparkW << ','
        << kSparkH << "\"/>";
    out << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"1.5\" points=\"" << line << "\"/>";
  }
  out << "</svg>";
}

/// One metric card: title, the latest value + max, and a sparkline.
void card(std::ostream& out, const char* title,
          const std::vector<double>& ys, const char* color,
          const char* unit) {
  double maxy = 0;
  const double last = ys.empty() ? 0.0 : ys.back();
  for (const double y : ys) maxy = std::max(maxy, y);
  out << "<div class=\"card\"><div class=\"t\">"
      << html::escape(title) << "</div><div class=\"v\">" << fmt(last)
      << "<span class=\"u\">" << unit << " (max " << fmt(maxy)
      << ")</span></div>";
  sparkline(out, ys, color);
  out << "</div>\n";
}

std::vector<double> pluck(
    const std::vector<TelemetrySample>& ss,
    const std::function<double(const TelemetrySample&)>& f) {
  std::vector<double> ys;
  ys.reserve(ss.size());
  for (const TelemetrySample& s : ss) ys.push_back(f(s));
  return ys;
}

/// Per-window rate: delta / window, guarded against zero-width windows.
double rate(std::uint64_t delta, std::uint64_t window) {
  return window == 0 ? 0.0
                     : static_cast<double>(delta) /
                           static_cast<double>(window);
}

/// One spatial channel of the heatmap section: JSON/element-id key, human
/// label, aggregation (delta channels sum over windows, gauges peak) and
/// the accessor into a sample.
struct TileChannel {
  const char* key;
  const char* name;
  bool gauge;
  const std::vector<std::uint64_t>& (*get)(const TelemetrySample&);
};

constexpr TileChannel kTileChannels[] = {
    {"traversals", "router traversals", false,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.router_traversals;
     }},
    {"aborts", "aborts (victim tile)", false,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_aborts;
     }},
    {"false_aborts", "false-abort events (requester tile)", false,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_false_aborts;
     }},
    {"nacks_sent", "NACKs sent", false,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_nacks_sent;
     }},
    {"nacks_recv", "NACKs received", false,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_nacks_recv;
     }},
    {"pbuf_evict", "P-Buffer evictions", false,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_pbuffer_evictions;
     }},
    {"ud_mispred", "UD mispredicts", false,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_ud_mispredicts;
     }},
    {"txn_pins", "L1 txn-pinned lines (peak)", true,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_txn_pins;
     }},
    {"queued", "router queue depth (peak)", true,
     [](const TelemetrySample& s) -> const std::vector<std::uint64_t>& {
       return s.tile_router_queued;
     }},
};

/// Embedded scrubber frames are bounded to roughly this many numbers so a
/// 4096-tile page stays loadable; the time axis is decimated to fit.
constexpr std::size_t kScrubberNumberBudget = 200000;
constexpr std::size_t kScrubberMaxBuckets = 48;
constexpr std::size_t kHotspotTableK = 5;

void write_u64_json_array(std::ostream& out,
                          const std::vector<std::uint64_t>& v) {
  out << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out << ',';
    out << v[i];
  }
  out << ']';
}

/// The mesh heatmap section: one heatmap per channel with per-tile totals,
/// an optional time-window scrubber (inline script over embedded frames)
/// and the top-K hotspot table with a concentration index per channel.
void write_heatmap_section(std::ostream& out, const DashboardMeta& meta,
                           const std::vector<TelemetrySample>& samples) {
  const MeshGeometry geom{meta.num_nodes, meta.mesh_width, meta.mesh_height};
  if (!geom.valid() || samples.empty()) return;

  std::vector<const TileChannel*> channels;
  for (const TileChannel& c : kTileChannels) {
    if (!c.get(samples.front()).empty()) channels.push_back(&c);
  }
  if (channels.empty()) return;

  // Aggregates windows [begin, end) per tile: sums for delta channels,
  // peaks for gauges.
  const auto aggregate = [&](const TileChannel& c, std::size_t begin,
                             std::size_t end) {
    std::vector<std::uint64_t> agg(geom.num_nodes, 0);
    for (std::size_t w = begin; w < end; ++w) {
      const std::vector<std::uint64_t>& v = c.get(samples[w]);
      for (std::size_t i = 0; i < agg.size() && i < v.size(); ++i) {
        agg[i] = c.gauge ? std::max(agg[i], v[i]) : agg[i] + v[i];
      }
    }
    return agg;
  };

  std::vector<std::vector<std::uint64_t>> totals;
  totals.reserve(channels.size());
  for (const TileChannel* c : channels) {
    totals.push_back(aggregate(*c, 0, samples.size()));
  }

  // Time decimation for the scrubber: at most kScrubberMaxBuckets frames,
  // shrunk further so channels * buckets * tiles stays within the number
  // budget. 0 or 1 buckets degrades to a static (whole-run) page.
  std::size_t buckets =
      std::min(kScrubberMaxBuckets, samples.size());
  buckets = std::min(
      buckets, std::max<std::size_t>(
                   1, kScrubberNumberBudget /
                          std::max<std::size_t>(
                              1, channels.size() * geom.num_nodes)));
  const bool scrub = buckets > 1;

  out << "<h2>Mesh heatmaps</h2>\n";
  if (scrub) {
    out << "<p class=\"meta\">time window: <input type=\"range\" "
           "id=\"hmscrub\" min=\"0\" max=\""
        << buckets
        << "\" value=\"0\" oninput=\"hmSet(this.value)\"> <span "
           "id=\"hmlabel\">whole run</span></p>\n";
  }
  out << "<div class=\"grid\">\n";
  const int cell = heatmap_cell_px(geom);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    std::uint64_t maxv = 0;
    std::uint64_t sum = 0;
    for (const std::uint64_t v : totals[c]) {
      maxv = std::max(maxv, v);
      sum += v;
    }
    out << "<div class=\"hmcard\"><div class=\"t\">"
        << html::escape(channels[c]->name) << " &middot; "
        << (channels[c]->gauge ? "peak " : "total ")
        << (channels[c]->gauge ? maxv : sum) << "</div>";
    write_heatmap_svg(out, geom, totals[c], maxv, channels[c]->key, cell);
    out << "</div>\n";
  }
  out << "</div>\n";

  // Top-K hotspot table: per channel the share-weighted hottest tiles and
  // the normalized Herfindahl concentration (0 = uniform, 1 = one tile).
  out << "<table><tr><th>channel</th><th>total/peak</th>"
         "<th>concentration</th><th>top tiles</th></tr>";
  for (std::size_t c = 0; c < channels.size(); ++c) {
    std::uint64_t maxv = 0;
    std::uint64_t sum = 0;
    for (const std::uint64_t v : totals[c]) {
      maxv = std::max(maxv, v);
      sum += v;
    }
    out << "<tr><td>" << html::escape(channels[c]->name) << "</td><td>"
        << (channels[c]->gauge ? maxv : sum) << "</td><td>"
        << fmt(concentration_index(totals[c])) << "</td><td>";
    const auto spots = top_hotspots(totals[c], kHotspotTableK);
    for (std::size_t i = 0; i < spots.size(); ++i) {
      if (i != 0) out << " &middot; ";
      out << 't' << spots[i].tile << " (" << spots[i].tile % geom.width
          << ',' << spots[i].tile / geom.width << ") "
          << fmt(spots[i].share * 100.0) << '%';
    }
    if (spots.empty()) out << "&mdash;";
    out << "</td></tr>";
  }
  out << "</table>\n";

  if (!scrub) return;

  // Scrubber data + recolor script. Frame 0 is the whole run; frames 1..B
  // cover equal spans of the retained windows. hmHeat mirrors
  // heatmap.cpp's heat_color ramp exactly.
  out << "<script>\nvar HM={\"w\":" << geom.width << ",\"labels\":[\"whole "
         "run\"";
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * samples.size() / buckets;
    const std::size_t end = (b + 1) * samples.size() / buckets;
    const std::uint64_t from =
        samples[begin].cycle - samples[begin].window;
    const std::uint64_t to = samples[end == 0 ? 0 : end - 1].cycle;
    out << ",\"cycles " << from << "-" << to << "\"";
  }
  out << "],\"channels\":[";
  for (std::size_t c = 0; c < channels.size(); ++c) {
    if (c != 0) out << ',';
    out << "{\"key\":\"" << channels[c]->key << "\",\"frames\":[";
    write_u64_json_array(out, totals[c]);
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t begin = b * samples.size() / buckets;
      const std::size_t end = (b + 1) * samples.size() / buckets;
      out << ',';
      write_u64_json_array(out, aggregate(*channels[c], begin, end));
    }
    out << "]}";
  }
  out << "]};\n"
      << "function hmHeat(t){t=Math.max(0,Math.min(1,t));"
         "function l(a,b){return Math.round(a+(b-a)*t);}"
         "return \"rgb(\"+l(243,208)+\",\"+l(246,52)+\",\"+l(251,44)+\")\";}\n"
      << "function hmSet(f){f=+f;"
         "document.getElementById(\"hmlabel\").textContent=HM.labels[f];"
         "for(var c=0;c<HM.channels.length;++c){var ch=HM.channels[c];"
         "var v=ch.frames[f];var m=0;var i;"
         "for(i=0;i<v.length;++i)if(v[i]>m)m=v[i];"
         "for(i=0;i<v.length;++i){"
         "var r=document.getElementById(ch.key+\"-\"+i);if(!r)continue;"
         "r.setAttribute(\"fill\",hmHeat(m?v[i]/m:0));"
         "var t=r.firstChild;if(t)t.textContent=\"tile \"+i+\" (\"+"
         "(i%HM.w)+\",\"+Math.floor(i/HM.w)+\"): \"+v[i];}}}\n"
      << "</script>\n";
}

void percentile_row(std::ostream& out, const char* label,
                    const sim::Histogram& h) {
  out << "<tr><td>" << label << "</td><td>" << h.total() << "</td><td>"
      << fmt(h.mean()) << "</td><td>" << h.percentile(0.50) << "</td><td>"
      << h.percentile(0.90) << "</td><td>" << h.percentile(0.99)
      << "</td></tr>";
}

}  // namespace

void write_dashboard_html(const DashboardMeta& meta,
                          const std::vector<TelemetrySample>& samples,
                          const sim::StatsRegistry* stats,
                          std::ostream& out) {
  std::string style;
  style += ".grid{display:flex;flex-wrap:wrap;gap:12px}\n";
  style += ".card{background:#fff;border:1px solid #e2e2e2;border-radius:6px;"
           "padding:8px 10px;width:" + std::to_string(kSparkW + 2) + "px}\n";
  style += ".card .t{font-weight:600;font-size:.85em;color:#444}\n";
  style += ".card .v{font-size:1.25em;margin:.1em 0}\n";
  style += ".card .u{font-size:.6em;color:#888;margin-left:.4em}\n";
  style += ".spark{display:block}\n";
  style += ".bar{fill:#4878cf}\n";
  style += ".hmcard{background:#fff;border:1px solid #e2e2e2;"
           "border-radius:6px;padding:8px 10px}\n";
  style += ".hmcard .t{font-weight:600;font-size:.85em;color:#444;"
           "margin-bottom:4px}\n";
  html::begin_page(out,
                   "PUNO telemetry — " + meta.workload + " / " + meta.scheme,
                   "PUNO telemetry dashboard", style);
  out << "<p class=\"meta\">workload <b>"
      << html::escape(meta.workload) << "</b> &middot; scheme <b>"
      << html::escape(meta.scheme) << "</b> &middot; "
      << meta.cycles << " cycles &middot; sampled every " << meta.interval
      << " cycles &middot; " << samples.size() << " windows";
  if (meta.num_nodes > 0 && meta.mesh_width > 0) {
    out << " &middot; " << meta.mesh_width << "&times;" << meta.mesh_height
        << " mesh (" << meta.num_nodes << " tiles)";
  }
  if (meta.dropped > 0) {
    out << " &middot; <b>" << meta.dropped
        << " windows dropped (series cap)</b>";
  }
  out << "</p>\n";

  // --- per-core transaction state ---
  out << "<h2>Cores</h2><div class=\"grid\">\n";
  card(out, "cores in txn",
       pluck(samples,
             [](const auto& s) { return double(s.cores_in_txn); }),
       "#2a9d4e", "cores");
  card(out, "cores aborting (backoff population)",
       pluck(samples,
             [](const auto& s) { return double(s.cores_aborting); }),
       "#d0342c", "cores");
  card(out, "live read-set blocks",
       pluck(samples,
             [](const auto& s) { return double(s.read_set_blocks); }),
       "#4878cf", "blocks");
  card(out, "live write-set blocks",
       pluck(samples,
             [](const auto& s) { return double(s.write_set_blocks); }),
       "#8c54b0", "blocks");
  out << "</div>\n";

  // --- HTM throughput ---
  out << "<h2>HTM</h2><div class=\"grid\">\n";
  card(out, "commits / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.commits, s.window); }),
       "#2a9d4e", "");
  card(out, "aborts / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.aborts, s.window); }),
       "#d0342c", "");
  card(out, "false aborts / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.false_aborts, s.window);
             }),
       "#e8871e", "");
  card(out, "nacks / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.nacks, s.window); }),
       "#946b2d", "");
  out << "</div>\n";

  // --- open-loop traffic (only for runs that actually offered load) ---
  bool any_offered = false;
  for (const TelemetrySample& s : samples) any_offered |= s.offered > 0;
  if (any_offered) {
    out << "<h2>Traffic</h2><div class=\"grid\">\n";
    card(out, "offered arrivals / kcycle",
         pluck(samples,
               [](const auto& s) { return 1e3 * rate(s.offered, s.window); }),
         "#4878cf", "");
    card(out, "admitted arrivals / kcycle",
         pluck(samples,
               [](const auto& s) {
                 return 1e3 * rate(s.admitted, s.window);
               }),
         "#2a9d4e", "");
    card(out, "shed arrivals / kcycle",
         pluck(samples,
               [](const auto& s) { return 1e3 * rate(s.shed, s.window); }),
         "#d0342c", "");
    card(out, "drop rate (window)",
         pluck(samples,
               [](const auto& s) {
                 const double o = static_cast<double>(s.offered);
                 return o == 0 ? 0.0 : static_cast<double>(s.shed) / o;
               }),
         "#e8871e", "");
    out << "</div>\n";
  }

  // --- directory ---
  out << "<h2>Directory</h2><div class=\"grid\">\n";
  card(out, "entries mid-service (blocked)",
       pluck(samples, [](const auto& s) { return double(s.dir_busy); }),
       "#d0342c", "entries");
  card(out, "directory occupancy",
       pluck(samples, [](const auto& s) { return double(s.dir_entries); }),
       "#4878cf", "entries");
  card(out, "TX_GETX services / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.txgetx_services, s.window);
             }),
       "#2a9d4e", "");
  out << "</div>\n";

  // --- PUNO assist ---
  out << "<h2>PUNO</h2><div class=\"grid\">\n";
  card(out, "unicast predictions / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.unicasts, s.window); }),
       "#2a9d4e", "");
  card(out, "multicast fallbacks / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.multicasts, s.window);
             }),
       "#e8871e", "");
  card(out, "P-Buffer hit rate (window)",
       pluck(samples,
             [](const auto& s) {
               const double u = static_cast<double>(s.unicasts);
               return u == 0
                          ? 0.0
                          : 1.0 - static_cast<double>(s.mp_feedbacks) / u;
             }),
       "#4878cf", "");
  card(out, "usable P-Buffer entries",
       pluck(samples,
             [](const auto& s) { return double(s.pbuffer_usable); }),
       "#8c54b0", "entries");
  card(out, "TxLB entries",
       pluck(samples,
             [](const auto& s) { return double(s.txlb_entries); }),
       "#946b2d", "entries");
  card(out, "notified-backoff rate (of nacks)",
       pluck(samples,
             [](const auto& s) {
               const double n = static_cast<double>(s.nacks);
               return n == 0
                          ? 0.0
                          : static_cast<double>(s.notified_backoffs) / n;
             }),
       "#2a9d4e", "");
  out << "</div>\n";

  // --- NoC ---
  out << "<h2>NoC</h2><div class=\"grid\">\n";
  card(out, "flits injected / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.flits_sent, s.window);
             }),
       "#4878cf", "");
  card(out, "switch traversals / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.traversals, s.window);
             }),
       "#2a9d4e", "");
  card(out, "flits buffered in routers",
       pluck(samples,
             [](const auto& s) { return double(s.noc_buffered); }),
       "#e8871e", "flits");
  card(out, "flits in flight on links",
       pluck(samples,
             [](const auto& s) { return double(s.noc_inflight); }),
       "#8c54b0", "flits");
  out << "</div>\n";

  // Spatial view: per-channel mesh heatmaps with scrubber + hotspots.
  write_heatmap_section(out, meta, samples);

  // Per-router lifetime traversal share as a bar chart (sums of the
  // per-window deltas = each router's total traffic). Capped at 64 routers;
  // larger meshes are served by the heatmap above.
  if (!samples.empty() && !samples.front().router_traversals.empty() &&
      samples.front().router_traversals.size() <= 64) {
    const std::size_t n = samples.front().router_traversals.size();
    std::vector<std::uint64_t> totals(n, 0);
    for (const TelemetrySample& s : samples) {
      for (std::size_t i = 0; i < s.router_traversals.size() && i < n; ++i) {
        totals[i] += s.router_traversals[i];
      }
    }
    std::uint64_t maxt = 1;
    for (const std::uint64_t t : totals) maxt = std::max(maxt, t);
    const int bw = 18, gap = 4, h = 90;
    const int w = static_cast<int>(n) * (bw + gap);
    out << "<h2>Per-router traversals (whole run)</h2><svg width=\"" << w
        << "\" height=\"" << (h + 16) << "\">";
    for (std::size_t i = 0; i < n; ++i) {
      const int bh = static_cast<int>(
          static_cast<double>(h) * static_cast<double>(totals[i]) /
          static_cast<double>(maxt));
      const int x = static_cast<int>(i) * (bw + gap);
      out << "<rect class=\"bar\" x=\"" << x << "\" y=\"" << (h - bh)
          << "\" width=\"" << bw << "\" height=\"" << bh << "\"><title>router "
          << i << ": " << totals[i] << "</title></rect>"
          << "<text x=\"" << (x + bw / 2) << "\" y=\"" << (h + 12)
          << "\" font-size=\"9\" text-anchor=\"middle\">" << i << "</text>";
    }
    out << "</svg>\n";
  }

  // --- latency / backoff percentile table (registry histograms) ---
  if (stats != nullptr) {
    const auto& hists = stats->histograms();
    const auto len = hists.find("htm.txn_len_cycles");
    const auto back = hists.find("htm.backoff_cycles");
    if (len != hists.end() || back != hists.end()) {
      out << "<h2>Latency distributions (cycles; 256+ = overflow bucket)"
          << "</h2><table><tr><th>histogram</th><th>samples</th><th>mean"
          << "</th><th>p50</th><th>p90</th><th>p99</th></tr>";
      if (len != hists.end()) {
        percentile_row(out, "committed txn length", len->second);
      }
      if (back != hists.end()) {
        percentile_row(out, "granted backoff wait", back->second);
      }
      out << "</table>\n";
    }
  }

  html::end_page(out);
}

}  // namespace puno::telemetry
