#include "telemetry/dashboard.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <ostream>

#include "sim/jsonio.hpp"
#include "sim/stats.hpp"

namespace puno::telemetry {

namespace {

constexpr int kSparkW = 300;
constexpr int kSparkH = 64;

/// Formats a double compactly and deterministically ("12", "3.25", "1.2e+06").
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// One inline-SVG sparkline: a filled area + line over the series, y scaled
/// to [0, max]. Values are window-level quantities; x is the sample index.
void sparkline(std::ostream& out, const std::vector<double>& ys,
               const char* color) {
  double maxy = 0;
  for (const double y : ys) maxy = std::max(maxy, y);
  out << "<svg class=\"spark\" viewBox=\"0 0 " << kSparkW << ' ' << kSparkH
      << "\" width=\"" << kSparkW << "\" height=\"" << kSparkH
      << "\" preserveAspectRatio=\"none\">";
  if (ys.size() >= 2 && maxy > 0) {
    const double dx =
        static_cast<double>(kSparkW) / static_cast<double>(ys.size() - 1);
    std::string line;
    for (std::size_t i = 0; i < ys.size(); ++i) {
      const double x = dx * static_cast<double>(i);
      const double y =
          static_cast<double>(kSparkH) * (1.0 - ys[i] / maxy * 0.92) - 2.0;
      if (!line.empty()) line += ' ';
      line += fmt(x) + ',' + fmt(std::max(1.0, y));
    }
    out << "<polygon fill=\"" << color << "\" fill-opacity=\"0.15\" points=\""
        << "0," << kSparkH << ' ' << line << ' ' << kSparkW << ','
        << kSparkH << "\"/>";
    out << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"1.5\" points=\"" << line << "\"/>";
  }
  out << "</svg>";
}

/// One metric card: title, the latest value + max, and a sparkline.
void card(std::ostream& out, const char* title,
          const std::vector<double>& ys, const char* color,
          const char* unit) {
  double maxy = 0;
  const double last = ys.empty() ? 0.0 : ys.back();
  for (const double y : ys) maxy = std::max(maxy, y);
  out << "<div class=\"card\"><div class=\"t\">"
      << sim::jsonio::escape(title) << "</div><div class=\"v\">" << fmt(last)
      << "<span class=\"u\">" << unit << " (max " << fmt(maxy)
      << ")</span></div>";
  sparkline(out, ys, color);
  out << "</div>\n";
}

std::vector<double> pluck(
    const std::vector<TelemetrySample>& ss,
    const std::function<double(const TelemetrySample&)>& f) {
  std::vector<double> ys;
  ys.reserve(ss.size());
  for (const TelemetrySample& s : ss) ys.push_back(f(s));
  return ys;
}

/// Per-window rate: delta / window, guarded against zero-width windows.
double rate(std::uint64_t delta, std::uint64_t window) {
  return window == 0 ? 0.0
                     : static_cast<double>(delta) /
                           static_cast<double>(window);
}

void percentile_row(std::ostream& out, const char* label,
                    const sim::Histogram& h) {
  out << "<tr><td>" << label << "</td><td>" << h.total() << "</td><td>"
      << fmt(h.mean()) << "</td><td>" << h.percentile(0.50) << "</td><td>"
      << h.percentile(0.90) << "</td><td>" << h.percentile(0.99)
      << "</td></tr>";
}

}  // namespace

void write_dashboard_html(const DashboardMeta& meta,
                          const std::vector<TelemetrySample>& samples,
                          const sim::StatsRegistry* stats,
                          std::ostream& out) {
  out << "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
      << "<title>PUNO telemetry &mdash; "
      << sim::jsonio::escape(meta.workload) << " / "
      << sim::jsonio::escape(meta.scheme) << "</title>\n<style>\n"
      << "body{font:14px/1.4 system-ui,sans-serif;margin:1.5em;"
         "background:#fafafa;color:#222}\n"
      << "h1{font-size:1.3em}h2{font-size:1.05em;margin:1.2em 0 .4em;"
         "border-bottom:1px solid #ddd}\n"
      << ".meta{color:#666}\n"
      << ".grid{display:flex;flex-wrap:wrap;gap:12px}\n"
      << ".card{background:#fff;border:1px solid #e2e2e2;border-radius:6px;"
         "padding:8px 10px;width:" << (kSparkW + 2) << "px}\n"
      << ".card .t{font-weight:600;font-size:.85em;color:#444}\n"
      << ".card .v{font-size:1.25em;margin:.1em 0}\n"
      << ".card .u{font-size:.6em;color:#888;margin-left:.4em}\n"
      << ".spark{display:block}\n"
      << "table{border-collapse:collapse;background:#fff}\n"
      << "td,th{border:1px solid #e2e2e2;padding:4px 10px;text-align:right}\n"
      << "th{background:#f0f0f0}\ntd:first-child{text-align:left}\n"
      << ".bar{fill:#4878cf}\n"
      << "</style></head><body>\n"
      << "<h1>PUNO telemetry dashboard</h1>\n"
      << "<p class=\"meta\">workload <b>"
      << sim::jsonio::escape(meta.workload) << "</b> &middot; scheme <b>"
      << sim::jsonio::escape(meta.scheme) << "</b> &middot; "
      << meta.cycles << " cycles &middot; sampled every " << meta.interval
      << " cycles &middot; " << samples.size() << " windows";
  if (meta.dropped > 0) {
    out << " &middot; <b>" << meta.dropped
        << " windows dropped (series cap)</b>";
  }
  out << "</p>\n";

  // --- per-core transaction state ---
  out << "<h2>Cores</h2><div class=\"grid\">\n";
  card(out, "cores in txn",
       pluck(samples,
             [](const auto& s) { return double(s.cores_in_txn); }),
       "#2a9d4e", "cores");
  card(out, "cores aborting (backoff population)",
       pluck(samples,
             [](const auto& s) { return double(s.cores_aborting); }),
       "#d0342c", "cores");
  card(out, "live read-set blocks",
       pluck(samples,
             [](const auto& s) { return double(s.read_set_blocks); }),
       "#4878cf", "blocks");
  card(out, "live write-set blocks",
       pluck(samples,
             [](const auto& s) { return double(s.write_set_blocks); }),
       "#8c54b0", "blocks");
  out << "</div>\n";

  // --- HTM throughput ---
  out << "<h2>HTM</h2><div class=\"grid\">\n";
  card(out, "commits / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.commits, s.window); }),
       "#2a9d4e", "");
  card(out, "aborts / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.aborts, s.window); }),
       "#d0342c", "");
  card(out, "false aborts / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.false_aborts, s.window);
             }),
       "#e8871e", "");
  card(out, "nacks / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.nacks, s.window); }),
       "#946b2d", "");
  out << "</div>\n";

  // --- open-loop traffic (only for runs that actually offered load) ---
  bool any_offered = false;
  for (const TelemetrySample& s : samples) any_offered |= s.offered > 0;
  if (any_offered) {
    out << "<h2>Traffic</h2><div class=\"grid\">\n";
    card(out, "offered arrivals / kcycle",
         pluck(samples,
               [](const auto& s) { return 1e3 * rate(s.offered, s.window); }),
         "#4878cf", "");
    card(out, "admitted arrivals / kcycle",
         pluck(samples,
               [](const auto& s) {
                 return 1e3 * rate(s.admitted, s.window);
               }),
         "#2a9d4e", "");
    card(out, "shed arrivals / kcycle",
         pluck(samples,
               [](const auto& s) { return 1e3 * rate(s.shed, s.window); }),
         "#d0342c", "");
    card(out, "drop rate (window)",
         pluck(samples,
               [](const auto& s) {
                 const double o = static_cast<double>(s.offered);
                 return o == 0 ? 0.0 : static_cast<double>(s.shed) / o;
               }),
         "#e8871e", "");
    out << "</div>\n";
  }

  // --- directory ---
  out << "<h2>Directory</h2><div class=\"grid\">\n";
  card(out, "entries mid-service (blocked)",
       pluck(samples, [](const auto& s) { return double(s.dir_busy); }),
       "#d0342c", "entries");
  card(out, "directory occupancy",
       pluck(samples, [](const auto& s) { return double(s.dir_entries); }),
       "#4878cf", "entries");
  card(out, "TX_GETX services / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.txgetx_services, s.window);
             }),
       "#2a9d4e", "");
  out << "</div>\n";

  // --- PUNO assist ---
  out << "<h2>PUNO</h2><div class=\"grid\">\n";
  card(out, "unicast predictions / kcycle",
       pluck(samples,
             [](const auto& s) { return 1e3 * rate(s.unicasts, s.window); }),
       "#2a9d4e", "");
  card(out, "multicast fallbacks / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.multicasts, s.window);
             }),
       "#e8871e", "");
  card(out, "P-Buffer hit rate (window)",
       pluck(samples,
             [](const auto& s) {
               const double u = static_cast<double>(s.unicasts);
               return u == 0
                          ? 0.0
                          : 1.0 - static_cast<double>(s.mp_feedbacks) / u;
             }),
       "#4878cf", "");
  card(out, "usable P-Buffer entries",
       pluck(samples,
             [](const auto& s) { return double(s.pbuffer_usable); }),
       "#8c54b0", "entries");
  card(out, "TxLB entries",
       pluck(samples,
             [](const auto& s) { return double(s.txlb_entries); }),
       "#946b2d", "entries");
  card(out, "notified-backoff rate (of nacks)",
       pluck(samples,
             [](const auto& s) {
               const double n = static_cast<double>(s.nacks);
               return n == 0
                          ? 0.0
                          : static_cast<double>(s.notified_backoffs) / n;
             }),
       "#2a9d4e", "");
  out << "</div>\n";

  // --- NoC ---
  out << "<h2>NoC</h2><div class=\"grid\">\n";
  card(out, "flits injected / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.flits_sent, s.window);
             }),
       "#4878cf", "");
  card(out, "switch traversals / kcycle",
       pluck(samples,
             [](const auto& s) {
               return 1e3 * rate(s.traversals, s.window);
             }),
       "#2a9d4e", "");
  card(out, "flits buffered in routers",
       pluck(samples,
             [](const auto& s) { return double(s.noc_buffered); }),
       "#e8871e", "flits");
  card(out, "flits in flight on links",
       pluck(samples,
             [](const auto& s) { return double(s.noc_inflight); }),
       "#8c54b0", "flits");
  out << "</div>\n";

  // Per-router lifetime traversal share as a bar chart (sums of the
  // per-window deltas = each router's total traffic).
  if (!samples.empty() && !samples.front().router_traversals.empty()) {
    const std::size_t n = samples.front().router_traversals.size();
    std::vector<std::uint64_t> totals(n, 0);
    for (const TelemetrySample& s : samples) {
      for (std::size_t i = 0; i < s.router_traversals.size() && i < n; ++i) {
        totals[i] += s.router_traversals[i];
      }
    }
    std::uint64_t maxt = 1;
    for (const std::uint64_t t : totals) maxt = std::max(maxt, t);
    const int bw = 18, gap = 4, h = 90;
    const int w = static_cast<int>(n) * (bw + gap);
    out << "<h2>Per-router traversals (whole run)</h2><svg width=\"" << w
        << "\" height=\"" << (h + 16) << "\">";
    for (std::size_t i = 0; i < n; ++i) {
      const int bh = static_cast<int>(
          static_cast<double>(h) * static_cast<double>(totals[i]) /
          static_cast<double>(maxt));
      const int x = static_cast<int>(i) * (bw + gap);
      out << "<rect class=\"bar\" x=\"" << x << "\" y=\"" << (h - bh)
          << "\" width=\"" << bw << "\" height=\"" << bh << "\"><title>router "
          << i << ": " << totals[i] << "</title></rect>"
          << "<text x=\"" << (x + bw / 2) << "\" y=\"" << (h + 12)
          << "\" font-size=\"9\" text-anchor=\"middle\">" << i << "</text>";
    }
    out << "</svg>\n";
  }

  // --- latency / backoff percentile table (registry histograms) ---
  if (stats != nullptr) {
    const auto& hists = stats->histograms();
    const auto len = hists.find("htm.txn_len_cycles");
    const auto back = hists.find("htm.backoff_cycles");
    if (len != hists.end() || back != hists.end()) {
      out << "<h2>Latency distributions (cycles; 256+ = overflow bucket)"
          << "</h2><table><tr><th>histogram</th><th>samples</th><th>mean"
          << "</th><th>p50</th><th>p90</th><th>p99</th></tr>";
      if (len != hists.end()) {
        percentile_row(out, "committed txn length", len->second);
      }
      if (back != hists.end()) {
        percentile_row(out, "granted backoff wait", back->second);
      }
      out << "</table>\n";
    }
  }

  out << "</body></html>\n";
}

}  // namespace puno::telemetry
