// Self-contained single-file HTML dashboard for one run's telemetry series.
//
// The generated page has zero external dependencies — no scripts, no
// stylesheets, no fonts fetched from anywhere — so it renders identically
// from a local file://, a CI artifact store, or an air-gapped machine.
// Charts are inline SVG sparklines computed at generation time; output is
// fully deterministic for a given series (no timestamps, no randomness).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/series.hpp"

namespace puno::sim {
class StatsRegistry;
}  // namespace puno::sim

namespace puno::telemetry {

/// Run identification shown in the dashboard header. The mesh geometry
/// fields feed the spatial heatmap section; leave them 0 (or inconsistent)
/// to omit it.
struct DashboardMeta {
  std::string workload;
  std::string scheme;
  std::uint64_t cycles = 0;       ///< Total simulated cycles.
  std::uint64_t interval = 0;     ///< Sampling interval.
  std::uint64_t dropped = 0;      ///< Samples lost to the series cap.
  std::size_t num_nodes = 0;      ///< Tiles in the mesh (0 = unknown).
  std::size_t mesh_width = 0;     ///< Mesh columns.
  std::size_t mesh_height = 0;    ///< Mesh rows (effective, never 0-coded).
};

/// Writes the dashboard. `stats` may be null; when present it feeds the
/// latency/backoff percentile panel (htm.txn_len_cycles, htm.backoff_cycles
/// p50/p90/p99 via Histogram::percentile).
void write_dashboard_html(const DashboardMeta& meta,
                          const std::vector<TelemetrySample>& samples,
                          const sim::StatsRegistry* stats, std::ostream& out);

}  // namespace puno::telemetry
