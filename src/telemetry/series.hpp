// Windowed telemetry series: the sample record, the fixed-capacity ring
// that holds a run's samples, and the request struct callers use to ask
// for sampling.
//
// Semantics (docs/TELEMETRY.md): every `interval` cycles the sampler
// snapshots the whole machine into one TelemetrySample. Monotonic counters
// are stored as *deltas since the previous sample* (so a window's commits
// are directly plottable and windows sum to the run totals); instantaneous
// quantities (cores in a transaction, directory occupancy, buffered flits)
// are stored as point-in-time gauges. The final window may be shorter than
// `interval` — `window` records each sample's true width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace puno::telemetry {

/// One sampling window's snapshot of the whole CMP.
struct TelemetrySample {
  Cycle cycle = 0;   ///< Cycles completed at the end of this window.
  Cycle window = 0;  ///< Width in cycles (== interval except the last).

  // --- per-core transaction state (gauges at window end) ---
  std::uint32_t cores_in_txn = 0;    ///< Cores inside a transaction.
  std::uint32_t cores_aborting = 0;  ///< Aborted, awaiting restart (backoff
                                     ///< population).
  std::uint64_t read_set_blocks = 0;   ///< Sum of live read-set sizes.
  std::uint64_t write_set_blocks = 0;  ///< Sum of live write-set sizes.
  /// Per-core state: 0 = idle, 1 = in transaction, 2 = aborted/backoff.
  std::vector<std::uint64_t> core_state;

  // --- HTM activity (deltas over the window) ---
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t false_aborts = 0;       ///< htm.false_abort_events delta.
  std::uint64_t notified_backoffs = 0;  ///< TxLB-driven notified waits.
  std::uint64_t nacks = 0;              ///< l1.tx_getx_nacked delta.

  // --- directory (gauges + deltas) ---
  std::uint64_t dir_busy = 0;     ///< Entries mid-service (blocked requests).
  std::uint64_t dir_entries = 0;  ///< Total tracked blocks (occupancy).
  std::uint64_t txgetx_services = 0;  ///< dir.txgetx_services delta.

  // --- PUNO assist (deltas + gauges) ---
  std::uint64_t unicasts = 0;      ///< puno.unicast_predictions delta.
  std::uint64_t multicasts = 0;    ///< puno.multicast_fallbacks delta.
  std::uint64_t mp_feedbacks = 0;  ///< Misprediction feedbacks delta.
  std::uint64_t pbuffer_usable = 0;  ///< P-Buffer entries above the validity
                                     ///< threshold, summed over assists.
  std::uint64_t txlb_entries = 0;    ///< Live TxLB entries, summed over cores.

  // --- open-loop traffic (deltas; all zero for closed-loop workloads) ---
  std::uint64_t offered = 0;   ///< traffic.offered delta (arrivals).
  std::uint64_t admitted = 0;  ///< traffic.admitted delta.
  std::uint64_t shed = 0;      ///< traffic.dropped delta (load shedding).

  // --- NoC (deltas + gauges) ---
  std::uint64_t flits_sent = 0;     ///< noc.flits_sent delta.
  std::uint64_t flits_ejected = 0;  ///< noc.flits_ejected delta.
  std::uint64_t traversals = 0;     ///< Mesh-wide switch traversals delta.
  std::uint64_t noc_buffered = 0;   ///< Flits in router buffers (gauge).
  std::uint64_t noc_inflight = 0;   ///< Flits riding links (gauge).
  /// Per-router switch-traversal delta (index = node id).
  std::vector<std::uint64_t> router_traversals;

  // --- spatial channels (index = tile id; empty unless the request asked
  // for spatial sampling, so non-spatial series serialize unchanged) ---
  std::vector<std::uint64_t> tile_aborts;        ///< Victim-tile deltas.
  std::vector<std::uint64_t> tile_false_aborts;  ///< Requester-tile deltas.
  std::vector<std::uint64_t> tile_nacks_sent;    ///< Responder-tile deltas.
  std::vector<std::uint64_t> tile_nacks_recv;    ///< Requester-tile deltas.
  /// P-Buffer capacity-eviction deltas at each home tile's assist (all
  /// zero for schemes without assists).
  std::vector<std::uint64_t> tile_pbuffer_evictions;
  /// UD misprediction feedbacks absorbed at each home tile.
  std::vector<std::uint64_t> tile_ud_mispredicts;
  /// Gauge: L1 lines pinned by each tile's running transaction.
  std::vector<std::uint64_t> tile_txn_pins;
  /// Gauge: flits queued in each tile's router buffers.
  std::vector<std::uint64_t> tile_router_queued;

  /// True when the sample carries the per-tile spatial channels.
  [[nodiscard]] bool spatial() const noexcept { return !tile_aborts.empty(); }

  bool operator==(const TelemetrySample&) const = default;
};

/// Fixed-capacity sample store. Samples beyond capacity are counted but not
/// retained (the bound keeps a sampler's footprint predictable inside sweep
/// jobs, mirroring trace::TraceRecorder); unlike the trace ring it keeps the
/// *oldest* samples, so the series always starts at cycle 0 and `dropped()`
/// flags a truncated tail.
class SeriesRing {
 public:
  /// 16Ki windows: a 1M-cycle run sampled every 100 cycles fits untruncated.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

  explicit SeriesRing(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(TelemetrySample s) {
    if (samples_.size() < capacity_) {
      samples_.push_back(std::move(s));
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::vector<TelemetrySample>& samples() const noexcept {
    return samples_;
  }

 private:
  std::size_t capacity_;
  std::vector<TelemetrySample> samples_;
  std::uint64_t dropped_ = 0;
};

/// Run-scoped settings a caller (punosim, punobatch, ExperimentParams) uses
/// to request telemetry. Plain data; owned by value wherever embedded.
/// Mirrors trace::TraceRequest. Deliberately excluded from the runner's
/// cache key: sampling never changes simulated results, only side-effect
/// files (verified by tests/telemetry/telemetry_integration_test.cpp).
struct TelemetryRequest {
  Cycle interval = 0;    ///< Cycles per window; 0 = sampling off.
  std::string jsonl_path;     ///< Sample series JSONL; "" = don't write.
  std::string csv_path;       ///< Sample series CSV; "" = don't write.
  std::string dashboard_path; ///< Self-contained HTML; "" = don't write.
  std::size_t capacity = SeriesRing::kDefaultCapacity;
  /// Record the per-tile spatial channels (mesh heatmaps). Off by default:
  /// the extra vectors cost 8 words per tile per window, and non-spatial
  /// series must stay byte-identical to pre-spatial output.
  bool spatial = false;

  [[nodiscard]] bool active() const noexcept { return interval > 0; }
};

}  // namespace puno::telemetry
