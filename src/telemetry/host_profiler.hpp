// HostProfiler: the concrete sim::ProfileSink.
//
// Aggregates the kernel's per-component host-tick measurements into named
// buckets (call count + total host ticks) and renders a per-component
// breakdown — where the *simulator's own* wall-clock time goes, as opposed
// to the simulated-cycle accounting everywhere else in the tree. Used by
// `punosim --profile` and the bench_baseline target (BENCH_4.json).
//
// Attach with kernel.set_profiler(&profiler); detach (set nullptr) before
// the profiler goes out of scope.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/profile.hpp"

namespace puno::telemetry {

class HostProfiler final : public sim::ProfileSink {
 public:
  struct Bucket {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t ticks = 0;
  };

  // sim::ProfileSink:
  void declare_tickable(std::size_t idx, const char* name) override;
  void declare_hook(std::size_t idx, const char* name) override;
  void tickable_cost(std::size_t idx, std::uint64_t ticks) override;
  void hook_cost(std::size_t idx, std::uint64_t ticks) override;
  void event_cost(std::uint64_t events, std::uint64_t ticks) override;

  [[nodiscard]] const std::vector<Bucket>& tickables() const noexcept {
    return tickables_;
  }
  [[nodiscard]] const std::vector<Bucket>& hooks() const noexcept {
    return hooks_;
  }
  [[nodiscard]] const Bucket& events() const noexcept { return events_; }

  /// Sum of all measured ticks (tickables + events + hooks).
  [[nodiscard]] std::uint64_t total_ticks() const noexcept;

  /// Human-readable breakdown: one row per component, sorted by cost,
  /// with seconds (via sim::host_ticks_per_second) and percentages.
  void write_report(std::ostream& out) const;

  /// Machine-readable form: {"components":[{"name","calls","ticks"}...],
  /// "total_ticks":N} — consumed by the bench_baseline JSON emitter.
  void write_json(std::ostream& out) const;

 private:
  static void ensure(std::vector<Bucket>& v, std::size_t idx);

  std::vector<Bucket> tickables_;
  std::vector<Bucket> hooks_;
  Bucket events_{"kernel.events", 0, 0};
};

}  // namespace puno::telemetry
