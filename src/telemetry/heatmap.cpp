#include "telemetry/heatmap.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace puno::telemetry {

namespace {

// Heat ramp endpoints: near-white to the dashboard's abort red.
constexpr int kColdR = 243, kColdG = 246, kColdB = 251;
constexpr int kHotR = 208, kHotG = 52, kHotB = 44;

/// The longer mesh dimension fits this many pixels.
constexpr int kMeshBudgetPx = 640;

}  // namespace

int heatmap_cell_px(const MeshGeometry& g) noexcept {
  const std::size_t longest = std::max<std::size_t>(
      1, std::max(g.width, g.height));
  const int px = kMeshBudgetPx / static_cast<int>(longest);
  return std::clamp(px, 4, 28);
}

std::string heat_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Round the interpolated channel (always >= 0), not the delta: truncation
  // of a negative delta would miss both ramp endpoints by one, and this form
  // matches Math.round() in the dashboard's scrubber JS exactly.
  const auto lerp = [t](int a, int b) {
    return static_cast<int>(static_cast<double>(a) +
                            static_cast<double>(b - a) * t + 0.5);
  };
  char buf[8];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", lerp(kColdR, kHotR),
                lerp(kColdG, kHotG), lerp(kColdB, kHotB));
  return buf;
}

void write_heatmap_svg(std::ostream& out, const MeshGeometry& g,
                       const std::vector<std::uint64_t>& values,
                       std::uint64_t max_value, const std::string& id_prefix,
                       int cell_px) {
  const int gap = cell_px >= 8 ? 1 : 0;
  const int pitch = cell_px + gap;
  const int w = static_cast<int>(g.width) * pitch;
  const int h = static_cast<int>(g.height) * pitch;
  out << "<svg class=\"hm\" width=\"" << w << "\" height=\"" << h
      << "\" shape-rendering=\"crispEdges\">";
  for (std::size_t i = 0; i < g.num_nodes; ++i) {
    const std::size_t cx = i % g.width;
    const std::size_t cy = i / g.width;
    const std::uint64_t v = i < values.size() ? values[i] : 0;
    const double t = max_value == 0
                         ? 0.0
                         : static_cast<double>(v) /
                               static_cast<double>(max_value);
    out << "<rect";
    if (!id_prefix.empty()) out << " id=\"" << id_prefix << '-' << i << '"';
    out << " x=\"" << static_cast<int>(cx) * pitch << "\" y=\""
        << static_cast<int>(cy) * pitch << "\" width=\"" << cell_px
        << "\" height=\"" << cell_px << "\" fill=\"" << heat_color(t)
        << "\"><title>tile " << i << " (" << cx << ',' << cy << "): " << v
        << "</title></rect>";
  }
  out << "</svg>";
}

double concentration_index(const std::vector<std::uint64_t>& totals) {
  const std::size_t n = totals.size();
  if (n <= 1) return totals.empty() || totals[0] == 0 ? 0.0 : 1.0;
  double sum = 0.0;
  for (const std::uint64_t v : totals) sum += static_cast<double>(v);
  if (sum <= 0.0) return 0.0;
  double hhi = 0.0;
  for (const std::uint64_t v : totals) {
    const double share = static_cast<double>(v) / sum;
    hhi += share * share;
  }
  const double uniform = 1.0 / static_cast<double>(n);
  return (hhi - uniform) / (1.0 - uniform);
}

std::vector<Hotspot> top_hotspots(const std::vector<std::uint64_t>& totals,
                                  std::size_t k) {
  double sum = 0.0;
  for (const std::uint64_t v : totals) sum += static_cast<double>(v);
  std::vector<Hotspot> spots;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    if (totals[i] == 0) continue;
    spots.push_back(
        {i, totals[i], static_cast<double>(totals[i]) / sum});
  }
  std::stable_sort(spots.begin(), spots.end(),
                   [](const Hotspot& a, const Hotspot& b) {
                     if (a.value != b.value) return a.value > b.value;
                     return a.tile < b.tile;
                   });
  if (spots.size() > k) spots.resize(k);
  return spots;
}

}  // namespace puno::telemetry
