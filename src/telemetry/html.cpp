#include "telemetry/html.hpp"

#include <cstdio>
#include <ostream>

namespace puno::telemetry::html {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void begin_page(std::ostream& out, std::string_view title,
                std::string_view heading, std::string_view extra_style) {
  out << "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
      << "<title>" << escape(title) << "</title>\n<style>\n"
      << "body{font:14px/1.4 system-ui,sans-serif;margin:1.5em;"
         "background:#fafafa;color:#222}\n"
      << "h1{font-size:1.3em}h2{font-size:1.05em;margin:1.2em 0 .4em;"
         "border-bottom:1px solid #ddd}\n"
      << ".meta{color:#666}\n"
      << "table{border-collapse:collapse;background:#fff}\n"
      << "td,th{border:1px solid #e2e2e2;padding:4px 10px;text-align:right}\n"
      << "th{background:#f0f0f0}\ntd:first-child{text-align:left}\n"
      << extra_style << "</style></head><body>\n"
      << "<h1>" << escape(heading) << "</h1>\n";
}

void end_page(std::ostream& out) { out << "</body></html>\n"; }

}  // namespace puno::telemetry::html
