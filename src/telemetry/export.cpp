#include "telemetry/export.hpp"

#include <ostream>

#include "sim/jsonio.hpp"

namespace puno::telemetry {

namespace {

void write_u64_array(std::ostream& out, const std::vector<std::uint64_t>& v) {
  out << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out << ',';
    out << v[i];
  }
  out << ']';
}

[[nodiscard]] bool parse_sample_field(std::string_view& s,
                                      const std::string& key,
                                      TelemetrySample& r) {
  using sim::jsonio::parse_u64;
  using sim::jsonio::parse_u64_array;
  if (key == "cycle") return parse_u64(s, r.cycle);
  if (key == "window") return parse_u64(s, r.window);
  if (key == "cores_in_txn") {
    std::uint64_t v = 0;
    if (!parse_u64(s, v)) return false;
    r.cores_in_txn = static_cast<std::uint32_t>(v);
    return true;
  }
  if (key == "cores_aborting") {
    std::uint64_t v = 0;
    if (!parse_u64(s, v)) return false;
    r.cores_aborting = static_cast<std::uint32_t>(v);
    return true;
  }
  if (key == "read_set_blocks") return parse_u64(s, r.read_set_blocks);
  if (key == "write_set_blocks") return parse_u64(s, r.write_set_blocks);
  if (key == "core_state") return parse_u64_array(s, r.core_state);
  if (key == "commits") return parse_u64(s, r.commits);
  if (key == "aborts") return parse_u64(s, r.aborts);
  if (key == "false_aborts") return parse_u64(s, r.false_aborts);
  if (key == "notified_backoffs") return parse_u64(s, r.notified_backoffs);
  if (key == "nacks") return parse_u64(s, r.nacks);
  if (key == "dir_busy") return parse_u64(s, r.dir_busy);
  if (key == "dir_entries") return parse_u64(s, r.dir_entries);
  if (key == "txgetx_services") return parse_u64(s, r.txgetx_services);
  if (key == "unicasts") return parse_u64(s, r.unicasts);
  if (key == "multicasts") return parse_u64(s, r.multicasts);
  if (key == "mp_feedbacks") return parse_u64(s, r.mp_feedbacks);
  if (key == "pbuffer_usable") return parse_u64(s, r.pbuffer_usable);
  if (key == "txlb_entries") return parse_u64(s, r.txlb_entries);
  if (key == "offered") return parse_u64(s, r.offered);
  if (key == "admitted") return parse_u64(s, r.admitted);
  if (key == "shed") return parse_u64(s, r.shed);
  if (key == "flits_sent") return parse_u64(s, r.flits_sent);
  if (key == "flits_ejected") return parse_u64(s, r.flits_ejected);
  if (key == "traversals") return parse_u64(s, r.traversals);
  if (key == "noc_buffered") return parse_u64(s, r.noc_buffered);
  if (key == "noc_inflight") return parse_u64(s, r.noc_inflight);
  if (key == "router_traversals") {
    return parse_u64_array(s, r.router_traversals);
  }
  if (key == "tile_aborts") return parse_u64_array(s, r.tile_aborts);
  if (key == "tile_false_aborts") {
    return parse_u64_array(s, r.tile_false_aborts);
  }
  if (key == "tile_nacks_sent") return parse_u64_array(s, r.tile_nacks_sent);
  if (key == "tile_nacks_recv") return parse_u64_array(s, r.tile_nacks_recv);
  if (key == "tile_pbuffer_evictions") {
    return parse_u64_array(s, r.tile_pbuffer_evictions);
  }
  if (key == "tile_ud_mispredicts") {
    return parse_u64_array(s, r.tile_ud_mispredicts);
  }
  if (key == "tile_txn_pins") return parse_u64_array(s, r.tile_txn_pins);
  if (key == "tile_router_queued") {
    return parse_u64_array(s, r.tile_router_queued);
  }
  return sim::jsonio::skip_value(s);  // unknown key: forward compatibility
}

}  // namespace

void write_sample_jsonl(const TelemetrySample& s, std::ostream& out) {
  out << "{\"cycle\":" << s.cycle << ",\"window\":" << s.window
      << ",\"cores_in_txn\":" << s.cores_in_txn
      << ",\"cores_aborting\":" << s.cores_aborting
      << ",\"read_set_blocks\":" << s.read_set_blocks
      << ",\"write_set_blocks\":" << s.write_set_blocks
      << ",\"core_state\":";
  write_u64_array(out, s.core_state);
  out << ",\"commits\":" << s.commits << ",\"aborts\":" << s.aborts
      << ",\"false_aborts\":" << s.false_aborts
      << ",\"notified_backoffs\":" << s.notified_backoffs
      << ",\"nacks\":" << s.nacks << ",\"dir_busy\":" << s.dir_busy
      << ",\"dir_entries\":" << s.dir_entries
      << ",\"txgetx_services\":" << s.txgetx_services
      << ",\"unicasts\":" << s.unicasts << ",\"multicasts\":" << s.multicasts
      << ",\"mp_feedbacks\":" << s.mp_feedbacks
      << ",\"pbuffer_usable\":" << s.pbuffer_usable
      << ",\"txlb_entries\":" << s.txlb_entries
      << ",\"offered\":" << s.offered << ",\"admitted\":" << s.admitted
      << ",\"shed\":" << s.shed
      << ",\"flits_sent\":" << s.flits_sent
      << ",\"flits_ejected\":" << s.flits_ejected
      << ",\"traversals\":" << s.traversals
      << ",\"noc_buffered\":" << s.noc_buffered
      << ",\"noc_inflight\":" << s.noc_inflight
      << ",\"router_traversals\":";
  write_u64_array(out, s.router_traversals);
  // Spatial channels are conditional keys: rows from non-spatial runs stay
  // byte-identical to the pre-spatial schema (same contract as the lazy
  // traffic.* counters).
  if (s.spatial()) {
    out << ",\"tile_aborts\":";
    write_u64_array(out, s.tile_aborts);
    out << ",\"tile_false_aborts\":";
    write_u64_array(out, s.tile_false_aborts);
    out << ",\"tile_nacks_sent\":";
    write_u64_array(out, s.tile_nacks_sent);
    out << ",\"tile_nacks_recv\":";
    write_u64_array(out, s.tile_nacks_recv);
    out << ",\"tile_pbuffer_evictions\":";
    write_u64_array(out, s.tile_pbuffer_evictions);
    out << ",\"tile_ud_mispredicts\":";
    write_u64_array(out, s.tile_ud_mispredicts);
    out << ",\"tile_txn_pins\":";
    write_u64_array(out, s.tile_txn_pins);
    out << ",\"tile_router_queued\":";
    write_u64_array(out, s.tile_router_queued);
  }
  out << "}\n";
}

void write_telemetry_jsonl(const std::vector<TelemetrySample>& samples,
                           std::ostream& out) {
  for (const TelemetrySample& s : samples) write_sample_jsonl(s, out);
}

bool read_sample_jsonl(std::string_view line, TelemetrySample& out) {
  using sim::jsonio::consume;
  using sim::jsonio::parse_string;
  using sim::jsonio::skip_ws;
  out = TelemetrySample{};
  std::string_view s = line;
  if (!consume(s, '{')) return false;
  skip_ws(s);
  if (!consume(s, '}')) {
    for (;;) {
      std::string key;
      if (!parse_string(s, key)) return false;
      if (!consume(s, ':')) return false;
      if (!parse_sample_field(s, key, out)) return false;
      if (consume(s, ',')) continue;
      if (consume(s, '}')) break;
      return false;
    }
  }
  skip_ws(s);
  return s.empty();
}

bool read_telemetry_jsonl(std::string_view text,
                          std::vector<TelemetrySample>& out) {
  out.clear();
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    TelemetrySample s;
    if (!read_sample_jsonl(line, s)) return false;
    out.push_back(std::move(s));
  }
  return true;
}

namespace {

/// The spatial channels in serialization order; shared by the CSV writer
/// below so column names and values cannot drift apart.
constexpr const char* kTileChannelNames[] = {
    "tile_aborts",       "tile_false_aborts",      "tile_nacks_sent",
    "tile_nacks_recv",   "tile_pbuffer_evictions", "tile_ud_mispredicts",
    "tile_txn_pins",     "tile_router_queued"};

const std::vector<std::uint64_t>& tile_channel(const TelemetrySample& s,
                                               std::size_t channel) {
  switch (channel) {
    case 0: return s.tile_aborts;
    case 1: return s.tile_false_aborts;
    case 2: return s.tile_nacks_sent;
    case 3: return s.tile_nacks_recv;
    case 4: return s.tile_pbuffer_evictions;
    case 5: return s.tile_ud_mispredicts;
    case 6: return s.tile_txn_pins;
    default: return s.tile_router_queued;
  }
}

constexpr std::size_t kNumTileChannels =
    sizeof(kTileChannelNames) / sizeof(kTileChannelNames[0]);

}  // namespace

std::string telemetry_csv_header(std::size_t num_nodes, bool spatial) {
  std::string h =
      "cycle,window,cores_in_txn,cores_aborting,read_set_blocks,"
      "write_set_blocks,commits,aborts,false_aborts,notified_backoffs,nacks,"
      "dir_busy,dir_entries,txgetx_services,unicasts,multicasts,mp_feedbacks,"
      "pbuffer_usable,txlb_entries,offered,admitted,shed,"
      "flits_sent,flits_ejected,traversals,noc_buffered,noc_inflight";
  for (std::size_t i = 0; i < num_nodes; ++i) {
    h += ",core" + std::to_string(i);
  }
  for (std::size_t i = 0; i < num_nodes; ++i) {
    h += ",router" + std::to_string(i);
  }
  // Spatial columns are appended only for spatial series so existing
  // non-spatial CSV output stays byte-identical.
  if (spatial) {
    for (std::size_t c = 0; c < kNumTileChannels; ++c) {
      for (std::size_t i = 0; i < num_nodes; ++i) {
        h += ',' + std::string(kTileChannelNames[c]) + std::to_string(i);
      }
    }
  }
  return h;
}

void write_telemetry_csv(const std::vector<TelemetrySample>& samples,
                         std::size_t num_nodes, std::ostream& out) {
  const bool spatial = !samples.empty() && samples.front().spatial();
  out << telemetry_csv_header(num_nodes, spatial) << '\n';
  for (const TelemetrySample& s : samples) {
    out << s.cycle << ',' << s.window << ',' << s.cores_in_txn << ','
        << s.cores_aborting << ',' << s.read_set_blocks << ','
        << s.write_set_blocks << ',' << s.commits << ',' << s.aborts << ','
        << s.false_aborts << ',' << s.notified_backoffs << ',' << s.nacks
        << ',' << s.dir_busy << ',' << s.dir_entries << ','
        << s.txgetx_services << ',' << s.unicasts << ',' << s.multicasts
        << ',' << s.mp_feedbacks << ',' << s.pbuffer_usable << ','
        << s.txlb_entries << ',' << s.offered << ',' << s.admitted << ','
        << s.shed << ',' << s.flits_sent << ',' << s.flits_ejected
        << ',' << s.traversals << ',' << s.noc_buffered << ','
        << s.noc_inflight;
    for (std::size_t i = 0; i < num_nodes; ++i) {
      out << ',' << (i < s.core_state.size() ? s.core_state[i] : 0);
    }
    for (std::size_t i = 0; i < num_nodes; ++i) {
      out << ','
          << (i < s.router_traversals.size() ? s.router_traversals[i] : 0);
    }
    if (spatial) {
      for (std::size_t c = 0; c < kNumTileChannels; ++c) {
        const std::vector<std::uint64_t>& v = tile_channel(s, c);
        for (std::size_t i = 0; i < num_nodes; ++i) {
          out << ',' << (i < v.size() ? v[i] : 0);
        }
      }
    }
    out << '\n';
  }
}

}  // namespace puno::telemetry
