#include "telemetry/sampler.hpp"

#include "arch/cmp.hpp"
#include "htm/txn_context.hpp"
#include "noc/mesh.hpp"
#include "puno/puno_directory.hpp"
#include "sim/kernel.hpp"

namespace puno::telemetry {

namespace {

/// Reads one counter's current value. StatsRegistry::counter creates absent
/// names with value 0, which matches "component never instantiated" (e.g.
/// no PUNO counters under the Eager scheme) and never perturbs simulation.
std::uint64_t read(sim::StatsRegistry& stats, const char* name) {
  return stats.counter(name).value();
}

/// Like read(), but never creates the counter. The traffic.* counters are
/// registered lazily by OpenLoopWorkload::attach() precisely so closed-loop
/// runs' stats dumps stay byte-identical; the sampler must not undo that.
std::uint64_t read_if_present(const sim::StatsRegistry& stats,
                              const char* name) {
  const auto& counters = stats.counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

}  // namespace

TelemetrySampler::TelemetrySampler(arch::Cmp& cmp, Cycle interval,
                                   std::size_t capacity, bool spatial)
    : cmp_(cmp),
      interval_(interval == 0 ? 1 : interval),
      spatial_(spatial),
      ring_(capacity) {
  prev_.router_traversals.assign(cmp_.config().num_nodes, 0);
  if (spatial_) {
    // Lazily-created spatial state: only spatial samplers pay for it, and
    // runs without one remain bit-identical (nothing below ever writes).
    prev_.tile_aborts.assign(cmp_.config().num_nodes, 0);
    prev_.tile_false_aborts.assign(cmp_.config().num_nodes, 0);
    prev_.tile_nacks_sent.assign(cmp_.config().num_nodes, 0);
    prev_.tile_nacks_recv.assign(cmp_.config().num_nodes, 0);
    prev_.tile_pbuffer_evictions.assign(cmp_.config().num_nodes, 0);
    prev_.tile_ud_mispredicts.assign(cmp_.config().num_nodes, 0);
  }
}

std::unique_ptr<TelemetrySampler> TelemetrySampler::attach(
    arch::Cmp& cmp, const TelemetryRequest& req) {
  auto sampler = std::make_unique<TelemetrySampler>(cmp, req.interval,
                                                    req.capacity, req.spatial);
  TelemetrySampler* raw = sampler.get();
  cmp.kernel().add_post_cycle_hook(
      [raw](Cycle now) { raw->on_post_cycle(now); },
      "telemetry.sampler");
  return sampler;
}

void TelemetrySampler::on_post_cycle(Cycle now) {
  // The hook runs before the clock advances, so cycle `now` has completed
  // `now + 1` cycles. Sample on every interval boundary.
  const Cycle completed = now + 1;
  if (completed % interval_ == 0) take_sample(completed);
}

void TelemetrySampler::finish() {
  const Cycle completed = cmp_.kernel().now();
  if (completed > prev_cycle_) take_sample(completed);
}

void TelemetrySampler::take_sample(Cycle cycles_completed) {
  const auto& cfg = cmp_.config();
  const auto n = static_cast<NodeId>(cfg.num_nodes);
  sim::StatsRegistry& stats = cmp_.kernel().stats();

  TelemetrySample s;
  s.cycle = cycles_completed;
  s.window = cycles_completed - prev_cycle_;

  // Per-core transaction state.
  s.core_state.resize(cfg.num_nodes, 0);
  for (NodeId i = 0; i < n; ++i) {
    const htm::TxnContext& txn = cmp_.txn(i);
    if (!txn.in_txn()) continue;
    if (txn.aborted()) {
      ++s.cores_aborting;
      s.core_state[i] = 2;
    } else {
      ++s.cores_in_txn;
      s.core_state[i] = 1;
    }
    s.read_set_blocks += txn.read_set_size();
    s.write_set_blocks += txn.write_set_size();
  }

  // HTM / L1 counter deltas.
  CounterSnapshot cur;
  cur.commits = read(stats, "htm.commits");
  cur.aborts = read(stats, "htm.aborts");
  cur.false_aborts = read(stats, "htm.false_abort_events");
  cur.notified_backoffs = read(stats, "htm.notified_backoffs");
  cur.nacks = read(stats, "l1.tx_getx_nacked");
  cur.txgetx_services = read(stats, "dir.txgetx_services");
  cur.unicasts = read(stats, "puno.unicast_predictions");
  cur.multicasts = read(stats, "puno.multicast_fallbacks");
  cur.mp_feedbacks = read(stats, "dir.mp_feedbacks");
  cur.offered = read_if_present(stats, "traffic.offered");
  cur.admitted = read_if_present(stats, "traffic.admitted");
  cur.shed = read_if_present(stats, "traffic.dropped");
  cur.flits_sent = read(stats, "noc.flits_sent");
  cur.flits_ejected = read(stats, "noc.flits_ejected");
  cur.traversals = read(stats, "noc.router_traversals");

  s.commits = cur.commits - prev_.commits;
  s.aborts = cur.aborts - prev_.aborts;
  s.false_aborts = cur.false_aborts - prev_.false_aborts;
  s.notified_backoffs = cur.notified_backoffs - prev_.notified_backoffs;
  s.nacks = cur.nacks - prev_.nacks;
  s.txgetx_services = cur.txgetx_services - prev_.txgetx_services;
  s.unicasts = cur.unicasts - prev_.unicasts;
  s.multicasts = cur.multicasts - prev_.multicasts;
  s.mp_feedbacks = cur.mp_feedbacks - prev_.mp_feedbacks;
  s.offered = cur.offered - prev_.offered;
  s.admitted = cur.admitted - prev_.admitted;
  s.shed = cur.shed - prev_.shed;
  s.flits_sent = cur.flits_sent - prev_.flits_sent;
  s.flits_ejected = cur.flits_ejected - prev_.flits_ejected;
  s.traversals = cur.traversals - prev_.traversals;

  // Directory gauges.
  for (NodeId i = 0; i < n; ++i) {
    const coherence::Directory& dir = cmp_.directory(i);
    s.dir_busy += dir.pending_services();
    s.dir_entries += dir.entry_count();
  }

  // PUNO assist gauges (assists exist only under Scheme::kPuno).
  for (NodeId i = 0; i < n; ++i) {
    if (const core::PunoDirectory* assist = cmp_.assist(i)) {
      const core::PBuffer& pbuf = assist->pbuffer();
      for (std::uint32_t e = 0; e < pbuf.size(); ++e) {
        if (pbuf.usable(static_cast<NodeId>(e),
                        cfg.puno.validity_threshold)) {
          ++s.pbuffer_usable;
        }
      }
    }
    s.txlb_entries += cmp_.txn(i).txlb().size();
  }

  // NoC gauges + per-router traversal deltas.
  noc::Mesh& mesh = cmp_.mesh();
  s.noc_buffered = mesh.buffered_router_flits();
  s.noc_inflight = mesh.inflight_link_flits();
  cur.router_traversals.resize(cfg.num_nodes);
  s.router_traversals.resize(cfg.num_nodes);
  for (NodeId i = 0; i < n; ++i) {
    cur.router_traversals[i] = mesh.router(i).local_traversals();
    s.router_traversals[i] =
        cur.router_traversals[i] - prev_.router_traversals[i];
  }

  // Spatial channels: per-tile counter deltas + gauges read through the
  // same const accessors the invariant checker uses. Each delta channel
  // sums (over tiles) to its global counterpart, which the spatial tests
  // pin window by window.
  if (spatial_) {
    cur.tile_aborts.resize(cfg.num_nodes);
    cur.tile_false_aborts.resize(cfg.num_nodes);
    cur.tile_nacks_sent.resize(cfg.num_nodes);
    cur.tile_nacks_recv.resize(cfg.num_nodes);
    cur.tile_pbuffer_evictions.resize(cfg.num_nodes);
    cur.tile_ud_mispredicts.resize(cfg.num_nodes);
    s.tile_aborts.resize(cfg.num_nodes);
    s.tile_false_aborts.resize(cfg.num_nodes);
    s.tile_nacks_sent.resize(cfg.num_nodes);
    s.tile_nacks_recv.resize(cfg.num_nodes);
    s.tile_pbuffer_evictions.resize(cfg.num_nodes);
    s.tile_ud_mispredicts.resize(cfg.num_nodes);
    s.tile_txn_pins.resize(cfg.num_nodes);
    s.tile_router_queued.resize(cfg.num_nodes);
    for (NodeId i = 0; i < n; ++i) {
      const htm::TxnContext& txn = cmp_.txn(i);
      const coherence::L1Controller& l1 = cmp_.l1(i);
      const coherence::Directory& dir = cmp_.directory(i);
      cur.tile_aborts[i] = txn.tile_aborts();
      cur.tile_false_aborts[i] = txn.tile_false_aborts();
      cur.tile_nacks_sent[i] = l1.tile_nacks_sent();
      cur.tile_nacks_recv[i] = l1.tile_nacks_received();
      cur.tile_ud_mispredicts[i] = dir.tile_mp_feedbacks();
      if (const core::PunoDirectory* assist = cmp_.assist(i)) {
        cur.tile_pbuffer_evictions[i] = assist->pbuffer().evictions();
      }
      s.tile_aborts[i] = cur.tile_aborts[i] - prev_.tile_aborts[i];
      s.tile_false_aborts[i] =
          cur.tile_false_aborts[i] - prev_.tile_false_aborts[i];
      s.tile_nacks_sent[i] =
          cur.tile_nacks_sent[i] - prev_.tile_nacks_sent[i];
      s.tile_nacks_recv[i] =
          cur.tile_nacks_recv[i] - prev_.tile_nacks_recv[i];
      s.tile_pbuffer_evictions[i] =
          cur.tile_pbuffer_evictions[i] - prev_.tile_pbuffer_evictions[i];
      s.tile_ud_mispredicts[i] =
          cur.tile_ud_mispredicts[i] - prev_.tile_ud_mispredicts[i];
      s.tile_txn_pins[i] = l1.txn_pinned_lines();
      s.tile_router_queued[i] = mesh.router(i).buffered_flits();
    }
  }

  ring_.push(std::move(s));
  prev_ = std::move(cur);
  prev_cycle_ = cycles_completed;
}

}  // namespace puno::telemetry
