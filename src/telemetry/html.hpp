// Shared HTML generation helpers for the self-contained dashboards (the
// per-run page in dashboard.cpp and punoagg's fleet page).
//
// Everything here is deterministic plain-text emission: no timestamps, no
// randomness, no external fetches. escape() is the HTML-context escaper —
// distinct from sim::jsonio::escape (JSON string escaping), which must NOT
// be used for page content because it leaves '<' and '&' unescaped.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace puno::telemetry::html {

/// Escapes text for an HTML element or double-quoted attribute context:
/// & < > " ' become entities. Safe for workload/scheme/config strings that
/// come from the command line or a manifest.
[[nodiscard]] std::string escape(std::string_view s);

/// Formats a double compactly and deterministically ("12", "3.25",
/// "1.2e+06") — the shared numeric style of every dashboard.
[[nodiscard]] std::string fmt(double v);

/// Opens a page: doctype, <meta charset="utf-8">, escaped <title>, the
/// shared stylesheet, plus `extra_style` (may be empty), then <body> and an
/// <h1>. Pair with end_page().
void begin_page(std::ostream& out, std::string_view title,
                std::string_view heading, std::string_view extra_style);

/// Closes the page opened by begin_page().
void end_page(std::ostream& out);

}  // namespace puno::telemetry::html
