// Inline-SVG mesh heatmaps for the per-tile telemetry channels, shared by
// the per-run dashboard and punoagg's fleet page.
//
// A heatmap is the physical mesh drawn as a width x height grid of cells
// (tile id n at column n % width, row n / width — the XY-routing layout),
// colored on a light-to-red ramp by each tile's value relative to the
// hottest tile. Cells carry <title> tooltips and optional element ids so
// the dashboard's time-window scrubber can recolor them from script.
// Rendering is deterministic and self-contained (no external fetches), and
// scales to the full 4096-tile kMaxNodes mesh: cell size shrinks with the
// grid so any geometry, square or not, fits a fixed pixel budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace puno::telemetry {

/// Display geometry of the mesh: `width` columns x `height` rows with
/// `num_nodes == width * height` tiles.
struct MeshGeometry {
  std::size_t num_nodes = 0;
  std::size_t width = 0;
  std::size_t height = 0;

  [[nodiscard]] bool valid() const noexcept {
    return num_nodes > 0 && width > 0 && height > 0 &&
           width * height == num_nodes;
  }
};

/// Cell edge in pixels chosen so the longer mesh dimension fits ~640px:
/// 28px for a 4x4 mesh down to 10px at 64x64 (4096 tiles).
[[nodiscard]] int heatmap_cell_px(const MeshGeometry& g) noexcept;

/// "#rrggbb" on the shared heat ramp, t clamped to [0, 1]: #f3f6fb (cold)
/// to #d0342c (hot). The dashboard's scrubber script mirrors this formula.
[[nodiscard]] std::string heat_color(double t);

/// One heatmap as an inline <svg>. `values[i]` colors tile i relative to
/// `max_value` (pass the channel maximum; 0 renders everything cold). When
/// `id_prefix` is non-empty every cell gets id="<id_prefix>-<tile>" so
/// script can recolor it. `cell_px` from heatmap_cell_px(), or smaller for
/// thumbnails.
void write_heatmap_svg(std::ostream& out, const MeshGeometry& g,
                       const std::vector<std::uint64_t>& values,
                       std::uint64_t max_value, const std::string& id_prefix,
                       int cell_px);

/// Normalized Herfindahl–Hirschman concentration of a channel's per-tile
/// totals: 0 = perfectly uniform load, 1 = a single tile carries it all.
/// Returns 0 for an empty/all-zero channel.
[[nodiscard]] double concentration_index(
    const std::vector<std::uint64_t>& totals);

/// One row of the hotspot table.
struct Hotspot {
  std::size_t tile = 0;
  std::uint64_t value = 0;
  double share = 0.0;  ///< value / channel total.
};

/// The k hottest tiles, descending by value (ties broken by lower id);
/// zero-valued tiles are never reported.
[[nodiscard]] std::vector<Hotspot> top_hotspots(
    const std::vector<std::uint64_t>& totals, std::size_t k);

}  // namespace puno::telemetry
