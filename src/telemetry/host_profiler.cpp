#include "telemetry/host_profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/jsonio.hpp"

namespace puno::telemetry {

void HostProfiler::ensure(std::vector<Bucket>& v, std::size_t idx) {
  if (idx >= v.size()) v.resize(idx + 1);
}

void HostProfiler::declare_tickable(std::size_t idx, const char* name) {
  ensure(tickables_, idx);
  tickables_[idx].name = name;
}

void HostProfiler::declare_hook(std::size_t idx, const char* name) {
  ensure(hooks_, idx);
  hooks_[idx].name = name;
}

void HostProfiler::tickable_cost(std::size_t idx, std::uint64_t ticks) {
  ensure(tickables_, idx);
  tickables_[idx].calls += 1;
  tickables_[idx].ticks += ticks;
}

void HostProfiler::hook_cost(std::size_t idx, std::uint64_t ticks) {
  ensure(hooks_, idx);
  hooks_[idx].calls += 1;
  hooks_[idx].ticks += ticks;
}

void HostProfiler::event_cost(std::uint64_t events, std::uint64_t ticks) {
  events_.calls += events;
  events_.ticks += ticks;
}

std::uint64_t HostProfiler::total_ticks() const noexcept {
  std::uint64_t total = events_.ticks;
  for (const Bucket& b : tickables_) total += b.ticks;
  for (const Bucket& b : hooks_) total += b.ticks;
  return total;
}

void HostProfiler::write_report(std::ostream& out) const {
  std::vector<Bucket> rows;
  rows.reserve(tickables_.size() + hooks_.size() + 1);
  for (const Bucket& b : tickables_) {
    if (b.calls > 0) rows.push_back(b);
  }
  if (events_.calls > 0) rows.push_back(events_);
  for (const Bucket& b : hooks_) {
    if (b.calls > 0) rows.push_back(b);
  }
  std::sort(rows.begin(), rows.end(), [](const Bucket& a, const Bucket& b) {
    return a.ticks != b.ticks ? a.ticks > b.ticks : a.name < b.name;
  });

  const double total =
      static_cast<double>(std::max<std::uint64_t>(1, total_ticks()));
  const double tps = sim::host_ticks_per_second();
  char line[160];
  std::snprintf(line, sizeof line, "host-time breakdown (%.6f s measured)\n",
                static_cast<double>(total_ticks()) / tps);
  out << line;
  std::snprintf(line, sizeof line, "  %-24s %12s %12s %8s\n", "component",
                "calls", "seconds", "share");
  out << line;
  for (const Bucket& b : rows) {
    std::snprintf(line, sizeof line, "  %-24s %12llu %12.6f %7.2f%%\n",
                  b.name.empty() ? "(unnamed)" : b.name.c_str(),
                  static_cast<unsigned long long>(b.calls),
                  static_cast<double>(b.ticks) / tps,
                  100.0 * static_cast<double>(b.ticks) / total);
    out << line;
  }
}

void HostProfiler::write_json(std::ostream& out) const {
  out << "{\"components\":[";
  bool first = true;
  const auto emit = [&](const Bucket& b) {
    if (b.calls == 0) return;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << sim::jsonio::escape(b.name)
        << "\",\"calls\":" << b.calls << ",\"ticks\":" << b.ticks << '}';
  };
  for (const Bucket& b : tickables_) emit(b);
  emit(events_);
  for (const Bucket& b : hooks_) emit(b);
  out << "],\"total_ticks\":" << total_ticks()
      << ",\"ticks_per_second\":";
  sim::jsonio::write_double(out, sim::host_ticks_per_second());
  out << "}\n";
}

}  // namespace puno::telemetry
