// Simple in-order core model.
//
// Executes the workload's transaction descriptors: think, TX_BEGIN, a
// sequence of transactional loads/stores (each preceded by compute cycles),
// TX_COMMIT, think, repeat. On an abort (detected at the next operation
// boundary — the L1 cancels in-flight transactional misses) the core waits
// out the abort-recovery latency plus the scheme's restart backoff and
// re-executes the same dynamic instance, as the paper's log-based HTM does.
//
// This replaces the paper's SIMICS SPARC cores: the HTM/coherence machinery
// under study observes identical address streams and timing degrees of
// freedom (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <optional>

#include "coherence/l1_controller.hpp"
#include "htm/txn_context.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"
#include "workloads/workload.hpp"

namespace puno::arch {

class Core {
 public:
  Core(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node,
       htm::TxnContext& txn, coherence::L1Controller& l1,
       workloads::Workload& workload);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Kicks off execution (schedules the first transaction).
  void start();

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }

 private:
  void fetch_next();      ///< Pull the next descriptor (or finish).
  void begin_attempt();   ///< TX_BEGIN and start issuing ops.
  void step();            ///< Issue the next op or commit.
  void issue_op();
  void commit_txn();
  void restart();         ///< Abort path: recovery + backoff, then retry.

  sim::Kernel& kernel_;
  const SystemConfig& cfg_;
  NodeId node_;
  htm::TxnContext& txn_;
  coherence::L1Controller& l1_;
  workloads::Workload& workload_;

  std::optional<workloads::TxnDesc> desc_;
  std::size_t op_idx_ = 0;
  bool done_ = false;
  std::uint64_t committed_ = 0;
};

}  // namespace puno::arch
