// Whole-CMP assembly: 16 tiles of {core, L1, L2 bank + directory, PUNO
// assist, router/NI}, glued to the mesh (Figure 9).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "arch/core.hpp"
#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "htm/txn_context.hpp"
#include "noc/mesh.hpp"
#include "puno/puno_directory.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"
#include "workloads/workload.hpp"

namespace puno::arch {

class Cmp {
 public:
  Cmp(const SystemConfig& cfg, workloads::Workload& workload);

  Cmp(const Cmp&) = delete;
  Cmp& operator=(const Cmp&) = delete;

  /// Runs until every core has exhausted its workload (plus network drain)
  /// or `max_cycles` elapse. Returns true on normal completion.
  bool run(Cycle max_cycles);

  /// As run(), but additionally polls `stop(now)` every `check_interval`
  /// simulated cycles and ends the run early (returning false) when it
  /// returns true. The experiment runner's wall-clock watchdog hangs off
  /// this hook; the slicing itself does not perturb simulated behaviour.
  bool run(Cycle max_cycles, Cycle check_interval,
           const std::function<bool(Cycle)>& stop);

  [[nodiscard]] sim::Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] noc::Mesh& mesh() noexcept { return *mesh_; }
  [[nodiscard]] Core& core(NodeId n) { return *cores_[n]; }
  [[nodiscard]] htm::TxnContext& txn(NodeId n) { return *txns_[n]; }
  [[nodiscard]] coherence::L1Controller& l1(NodeId n) { return *l1s_[n]; }
  [[nodiscard]] coherence::Directory& directory(NodeId n) {
    return *dirs_[n];
  }
  /// The PUNO assist at node `n`, or nullptr when the scheme runs without
  /// assists (assists exist only under Scheme::kPuno).
  [[nodiscard]] core::PunoDirectory* assist(NodeId n) {
    return n < assists_.size() ? assists_[n].get() : nullptr;
  }

  [[nodiscard]] std::uint64_t total_committed() const;
  [[nodiscard]] bool all_done() const;

 private:
  SystemConfig cfg_;
  sim::Kernel kernel_;
  bool started_ = false;
  std::unique_ptr<noc::Mesh> mesh_;
  std::vector<std::unique_ptr<htm::TxnContext>> txns_;
  std::vector<std::unique_ptr<coherence::L1Controller>> l1s_;
  std::vector<std::unique_ptr<coherence::Directory>> dirs_;
  std::vector<std::unique_ptr<core::PunoDirectory>> assists_;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace puno::arch
