#include "arch/core.hpp"

#include "sim/log.hpp"
#include "trace/recorder.hpp"

namespace puno::arch {

Core::Core(sim::Kernel& kernel, const SystemConfig& cfg, NodeId node,
           htm::TxnContext& txn, coherence::L1Controller& l1,
           workloads::Workload& workload)
    : kernel_(kernel),
      cfg_(cfg),
      node_(node),
      txn_(txn),
      l1_(l1),
      workload_(workload) {}

void Core::start() {
  kernel_.schedule(1, [this] { fetch_next(); });
}

void Core::fetch_next() {
  desc_ = workload_.next(node_);
  if (!desc_.has_value()) {
    done_ = true;
    return;
  }
  kernel_.schedule(desc_->pre_think, [this] { begin_attempt(); });
}

void Core::begin_attempt() {
  txn_.begin(desc_->static_id);
  op_idx_ = 0;
  step();
}

void Core::step() {
  if (txn_.aborted()) {
    restart();
    return;
  }
  if (op_idx_ >= desc_->ops.size()) {
    commit_txn();
    return;
  }
  const workloads::TxOp& op = desc_->ops[op_idx_];
  kernel_.schedule(op.pre_think, [this] { issue_op(); });
}

void Core::issue_op() {
  if (txn_.aborted()) {
    restart();
    return;
  }
  const workloads::TxOp& op = desc_->ops[op_idx_];
  auto on_done = [this, is_store = op.is_store, addr = op.addr,
                  pc = op.pc](bool success) {
    if (!success || txn_.aborted()) {
      restart();
      return;
    }
    txn_.on_access(addr, is_store, pc);
    ++op_idx_;
    step();
  };
  if (op.is_store) {
    l1_.store(op.addr, /*transactional=*/true, std::move(on_done));
  } else {
    const bool excl = txn_.should_load_exclusive(op.pc);
    l1_.load(op.addr, /*transactional=*/true, excl, std::move(on_done));
  }
}

void Core::commit_txn() {
  txn_.commit();
  ++committed_;
  kernel_.schedule(desc_->post_think, [this] { fetch_next(); });
}

void Core::restart() {
  // FASTM-style recovery from the hardware buffer, plus the scheme's
  // restart backoff (randomized linear for the Backoff comparison point).
  const Cycle delay =
      cfg_.htm.abort_recovery_latency + txn_.restart_backoff();
  PUNO_TRACE(sim::TraceCat::kHtm, kernel_.now(), "core ", node_,
             " restarting txn after ", delay, " cycles");
  PUNO_TEV(kernel_, trace::Cat::kTxn,
           (trace::TraceEvent{.cycle = kernel_.now(),
                              .a = delay,
                              .b = txn_.attempt_aborts(),
                              .node = node_,
                              .kind = trace::EventKind::kTxnStall}));
  kernel_.schedule(delay, [this] { begin_attempt(); });
}

}  // namespace puno::arch
