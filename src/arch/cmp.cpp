#include "arch/cmp.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace puno::arch {

namespace {

using coherence::Message;
using coherence::MsgType;

/// Payload size on the wire: data-carrying messages move a cache line;
/// everything else (including all PUNO extensions, Section III.E) fits in
/// the head flit.
[[nodiscard]] std::uint32_t wire_bytes(const Message& m,
                                       const SystemConfig& cfg) {
  return coherence::carries_data(m.type) && m.has_payload
             ? cfg.cache.block_bytes
             : 0;
}

/// Messages steered to the directory (home-side) vs. the L1 (requester/
/// sharer side) of a tile.
[[nodiscard]] bool for_directory(MsgType t) {
  switch (t) {
    case MsgType::kGetS:
    case MsgType::kGetX:
    case MsgType::kPutX:
    case MsgType::kUnblock:
    case MsgType::kWbData:
      return true;
    default:
      return false;
  }
}

}  // namespace

Cmp::Cmp(const SystemConfig& cfg, workloads::Workload& workload) : cfg_(cfg) {
  if (auto err = validate(cfg_); err.has_value()) {
    throw std::invalid_argument("SystemConfig: " + *err);
  }
  mesh_ = std::make_unique<noc::Mesh>(kernel_, cfg_.noc);
  kernel_.add_tickable(*mesh_, "noc.mesh");

  const Cycle c2c = mesh_->average_c2c_latency();
  const auto n = static_cast<NodeId>(cfg_.num_nodes);

  for (NodeId i = 0; i < n; ++i) {
    txns_.push_back(
        std::make_unique<htm::TxnContext>(kernel_, cfg_, i, c2c));
  }
  for (NodeId i = 0; i < n; ++i) {
    auto send = [this, i](NodeId dst, std::shared_ptr<const Message> msg) {
      const auto vnet = coherence::vnet_of(msg->type);
      const std::uint32_t bytes = wire_bytes(*msg, cfg_);
      mesh_->send(i, dst, vnet, bytes, std::move(msg));
    };
    l1s_.push_back(std::make_unique<coherence::L1Controller>(
        kernel_, cfg_, i, *txns_[i], send));
    txns_[i]->attach_l1(l1s_[i].get());
    if (cfg_.puno.enable_commit_hint) {
      txns_[i]->set_hint_sender([send, i](NodeId dst, BlockAddr addr) {
        auto hint = Message::make(MsgType::kRetryHint, addr, i, dst);
        send(dst, std::move(hint));
      });
    }
    dirs_.push_back(
        std::make_unique<coherence::Directory>(kernel_, cfg_, i, send));
    if (txns_[i]->conflict_manager().wants_directory_assist()) {
      assists_.push_back(
          std::make_unique<core::PunoDirectory>(kernel_, cfg_, i));
      dirs_[i]->set_assist(assists_.back().get());
    }
    mesh_->set_handler(i, [this, i](noc::Packet p) {
      const auto* msg = static_cast<const Message*>(p.payload.get());
      assert(msg != nullptr);
      if (for_directory(msg->type)) {
        dirs_[i]->handle_message(*msg);
      } else {
        l1s_[i]->handle_message(*msg);
      }
    });
  }
  for (NodeId i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<Core>(kernel_, cfg_, i, *txns_[i],
                                            *l1s_[i], workload));
  }
}

bool Cmp::all_done() const {
  for (const auto& c : cores_) {
    if (!c->done()) return false;
  }
  return true;
}

std::uint64_t Cmp::total_committed() const {
  std::uint64_t total = 0;
  for (const auto& c : cores_) total += c->committed();
  return total;
}

bool Cmp::run(Cycle max_cycles) { return run(max_cycles, 0, nullptr); }

bool Cmp::run(Cycle max_cycles, Cycle check_interval,
              const std::function<bool(Cycle)>& stop) {
  if (!started_) {
    for (auto& c : cores_) c->start();
    started_ = true;
  }
  const auto done = [this] { return all_done() && mesh_->idle(); };
  if (check_interval == 0 || !stop) {
    return kernel_.run_until(done, max_cycles);
  }
  Cycle remaining = max_cycles;
  while (remaining > 0) {
    const Cycle slice = std::min(check_interval, remaining);
    if (kernel_.run_until(done, slice)) return true;
    remaining -= slice;
    if (stop(kernel_.now())) return false;
  }
  return done();
}

}  // namespace puno::arch
