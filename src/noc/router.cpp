#include "noc/router.hpp"

#include <cassert>

#include "sim/log.hpp"

namespace puno::noc {

Router::Router(sim::Kernel& kernel, const NocConfig& cfg, NodeId id,
               sim::Counter& traversals, std::uint64_t& inflight_flits)
    : kernel_(kernel),
      cfg_(cfg),
      id_(id),
      traversals_(traversals),
      inflight_flits_(inflight_flits),
      inputs_(kNumPorts * cfg.total_vcs()),
      outputs_(kNumPorts),
      credit_return_(kNumPorts) {
  for (auto& in : inputs_) in.buffer.set_capacity(cfg.vc_depth);
  for (auto& port : outputs_) port.vcs.resize(cfg.total_vcs());
  const std::uint32_t num_cand = kNumPorts * cfg.total_vcs();
  use_masks_ = num_cand <= 64;
  cand_port_.resize(num_cand);
  cand_vc_.resize(num_cand);
  for (std::uint32_t idx = 0; idx < num_cand; ++idx) {
    cand_port_[idx] = static_cast<Port>(idx / cfg.total_vcs());
    cand_vc_[idx] = idx % cfg.total_vcs();
  }
}

void Router::connect_output(Port p, FlitSink sink,
                            std::uint32_t initial_credits) {
  OutputPort& port = out(p);
  port.sink = std::move(sink);
  for (auto& vc : port.vcs) vc.credits = initial_credits;
}

void Router::connect_input(Port p, CreditSink credit_return) {
  credit_return_[static_cast<std::size_t>(p)] = std::move(credit_return);
}

void Router::receive_flit(Port p, std::uint32_t vc, Flit flit) {
  InputVc& in = in_vc(p, vc);
  assert(!in.buffer.full() && "credit protocol violated");
  // The flit occupies the 4-stage pipeline before it may traverse the switch.
  flit.ready_at = kernel_.now() + cfg_.pipeline_stages - 1;
  if (use_masks_ && in.buffer.empty() && !in.active) {
    va_mask_ |= std::uint64_t{1}
                << (static_cast<std::uint32_t>(p) * cfg_.total_vcs() + vc);
  }
  in.buffer.push_back(std::move(flit));
  ++buffered_flits_;
  if (buffered_flits_ == 1 && active_set_ != nullptr) active_set_->add(id_);
}

bool Router::corrupt_drop_flit_for_test() {
  for (std::uint32_t idx = 0; idx < inputs_.size(); ++idx) {
    InputVc& in = inputs_[idx];
    if (in.buffer.empty()) continue;
    in.buffer.pop_back();  // drop the youngest flit; head/VA state stays sane
    if (use_masks_ && in.buffer.empty() && !in.active) {
      va_mask_ &= ~(std::uint64_t{1} << idx);
    }
    --buffered_flits_;
    return true;
  }
  return false;
}

void Router::return_credit(Port p, std::uint32_t vc) {
  OutputVc& ovc = out(p).vcs[vc];
  assert(ovc.credits < cfg_.vc_depth || p == Port::kLocal);
  ++ovc.credits;
}

bool Router::try_allocate_vc(Port p, std::uint32_t vc, const Packet& pkt) {
  InputVc& in = in_vc(p, vc);
  in.out_port = route_xy(id_, pkt.dst, cfg_.mesh_width);
  OutputPort& oport = out(in.out_port);
  // VCs are partitioned per virtual network; a packet may only claim a VC
  // inside its vnet's slice, which is what breaks protocol deadlock.
  const std::uint32_t base =
      static_cast<std::uint32_t>(pkt.vnet) * cfg_.vcs_per_vnet;
  for (std::uint32_t i = 0; i < cfg_.vcs_per_vnet; ++i) {
    const std::uint32_t cand = base + i;
    if (!oport.vcs[cand].held) {
      oport.vcs[cand].held = true;
      in.out_vc = cand;
      in.active = true;
      if (use_masks_) {
        const std::uint64_t bit =
            std::uint64_t{1}
            << (static_cast<std::uint32_t>(p) * cfg_.total_vcs() + vc);
        va_mask_ &= ~bit;
        sa_mask_[static_cast<std::size_t>(in.out_port)] |= bit;
      }
      return true;
    }
  }
  return false;
}

bool Router::try_switch(std::uint32_t op, std::uint32_t idx, Cycle now,
                        bool* input_port_used) {
  const Port ip = cand_port_[idx];
  const std::uint32_t ivc = cand_vc_[idx];
  if (input_port_used[static_cast<std::size_t>(ip)]) return false;
  InputVc& in = in_vc(ip, ivc);
  if (!in.active || in.buffer.empty()) return false;
  if (static_cast<std::uint32_t>(in.out_port) != op) return false;
  const Flit& front = in.buffer.front();
  if (front.ready_at > now) return false;
  OutputPort& oport = out(static_cast<Port>(op));
  OutputVc& ovc = oport.vcs[in.out_vc];
  if (ovc.credits == 0) return false;

  // Winner: traverse the switch.
  Flit flit = std::move(in.buffer.front());
  in.buffer.pop_front();
  --buffered_flits_;
  --ovc.credits;
  input_port_used[static_cast<std::size_t>(ip)] = true;
  oport.rr_next = (idx + 1) % (kNumPorts * cfg_.total_vcs());
  traversals_.add();
  ++local_traversals_;
  PUNO_TRACE(sim::TraceCat::kNoc, now, "router ", id_, " ",
             to_string(ip), ivc, " -> ", to_string(static_cast<Port>(op)),
             in.out_vc, " pkt ", flit.packet->id,
             flit.is_tail ? " (tail)" : "");

  if (flit.is_tail) {
    ovc.held = false;
    in.active = false;
    if (use_masks_) {
      const std::uint64_t bit = std::uint64_t{1} << idx;
      sa_mask_[op] &= ~bit;
      if (!in.buffer.empty()) va_mask_ |= bit;
    }
  }

  // Return the freed buffer slot's credit upstream (one-cycle turnaround)
  if (CreditSink& cr = credit_return_[static_cast<std::size_t>(ip)]) {
    kernel_.schedule(1, [cr = &cr, ivc] { (*cr)(ivc); });
  }

  // Link traversal to the downstream receiver. The flit is accounted
  // as in-flight until the receiver has taken it, so Mesh::idle() never
  // reports an empty network while flits ride the links.
  const std::uint32_t out_vc = in.out_vc;
  FlitSink& sink = oport.sink;
  ++inflight_flits_;
  kernel_.schedule(cfg_.link_latency,
                   [this, &sink, out_vc, f = std::move(flit)]() mutable {
                     sink(out_vc, std::move(f));
                     --inflight_flits_;
                   });
  return true;
}

void Router::tick(Cycle now) {
  if (buffered_flits_ == 0) return;

  const std::uint32_t total_vcs = cfg_.total_vcs();
  const std::uint32_t num_cand = kNumPorts * total_vcs;

  // VC allocation: any idle input VC whose front flit is a ready head.
  // The mask path visits exactly the VCs the full (port, vc) double loop
  // would not have `continue`d on the (active, empty) test, in the same
  // ascending order.
  if (use_masks_) {
    std::uint64_t m = va_mask_;
    while (m != 0) {
      const auto idx = static_cast<std::uint32_t>(__builtin_ctzll(m));
      m &= m - 1;
      InputVc& in = inputs_[idx];
      const Flit& head = in.buffer.front();
      if (!head.is_head || head.ready_at > now) continue;
      try_allocate_vc(cand_port_[idx], cand_vc_[idx], *head.packet);
    }
  } else {
    for (std::uint32_t p = 0; p < kNumPorts; ++p) {
      for (std::uint32_t vc = 0; vc < total_vcs; ++vc) {
        InputVc& in = in_vc(static_cast<Port>(p), vc);
        if (in.active || in.buffer.empty()) continue;
        const Flit& head = in.buffer.front();
        if (!head.is_head || head.ready_at > now) continue;
        try_allocate_vc(static_cast<Port>(p), vc, *head.packet);
      }
    }
  }

  // Switch allocation + traversal: one flit per output port and per input
  // port per cycle, round-robin among competing input VCs. The mask path
  // visits the allocated candidates for this output port in round-robin
  // order starting at rr_next — the full scan's order restricted to the
  // candidates it would not have skipped as unallocated or mis-routed.
  bool input_port_used[kNumPorts] = {};
  for (std::uint32_t op = 0; op < kNumPorts; ++op) {
    OutputPort& oport = out(static_cast<Port>(op));
    if (!oport.sink) continue;
    if (use_masks_) {
      const std::uint64_t m = sa_mask_[op];
      if (m == 0) continue;
      const std::uint32_t rr = oport.rr_next;
      // Bits at idx >= rr first, then idx < rr: round-robin wrap order.
      std::uint64_t part = m & (~std::uint64_t{0} << rr);
      for (int half = 0; half < 2; ++half) {
        bool won = false;
        while (part != 0) {
          const auto idx = static_cast<std::uint32_t>(__builtin_ctzll(part));
          part &= part - 1;
          if (try_switch(op, idx, now, input_port_used)) {
            won = true;
            break;
          }
        }
        if (won) break;
        part = m & ~(~std::uint64_t{0} << rr);
      }
    } else {
      for (std::uint32_t k = 0; k < num_cand; ++k) {
        const std::uint32_t idx = (oport.rr_next + k) % num_cand;
        if (try_switch(op, idx, now, input_port_used)) break;
      }
    }
  }
}

}  // namespace puno::noc
