#include "noc/router.hpp"

#include <cassert>

#include "sim/log.hpp"

namespace puno::noc {

Router::Router(sim::Kernel& kernel, const NocConfig& cfg, NodeId id,
               sim::Counter& traversals, std::uint64_t& inflight_flits)
    : kernel_(kernel),
      cfg_(cfg),
      id_(id),
      traversals_(traversals),
      inflight_flits_(inflight_flits),
      inputs_(kNumPorts * cfg.total_vcs()),
      outputs_(kNumPorts),
      credit_return_(kNumPorts) {
  for (auto& port : outputs_) port.vcs.resize(cfg.total_vcs());
}

void Router::connect_output(Port p, FlitSink sink,
                            std::uint32_t initial_credits) {
  OutputPort& port = out(p);
  port.sink = std::move(sink);
  for (auto& vc : port.vcs) vc.credits = initial_credits;
}

void Router::connect_input(Port p, CreditSink credit_return) {
  credit_return_[static_cast<std::size_t>(p)] = std::move(credit_return);
}

void Router::receive_flit(Port p, std::uint32_t vc, Flit flit) {
  InputVc& in = in_vc(p, vc);
  assert(in.buffer.size() < cfg_.vc_depth && "credit protocol violated");
  // The flit occupies the 4-stage pipeline before it may traverse the switch.
  flit.ready_at = kernel_.now() + cfg_.pipeline_stages - 1;
  in.buffer.push_back(std::move(flit));
  ++buffered_flits_;
}

bool Router::corrupt_drop_flit_for_test() {
  for (auto& in : inputs_) {
    if (in.buffer.empty()) continue;
    in.buffer.pop_back();  // drop the youngest flit; head/VA state stays sane
    --buffered_flits_;
    return true;
  }
  return false;
}

void Router::return_credit(Port p, std::uint32_t vc) {
  OutputVc& ovc = out(p).vcs[vc];
  assert(ovc.credits < cfg_.vc_depth || p == Port::kLocal);
  ++ovc.credits;
}

bool Router::try_allocate_vc(Port p, std::uint32_t vc, const Packet& pkt) {
  InputVc& in = in_vc(p, vc);
  in.out_port = route_xy(id_, pkt.dst, cfg_.mesh_width);
  OutputPort& oport = out(in.out_port);
  // VCs are partitioned per virtual network; a packet may only claim a VC
  // inside its vnet's slice, which is what breaks protocol deadlock.
  const std::uint32_t base =
      static_cast<std::uint32_t>(pkt.vnet) * cfg_.vcs_per_vnet;
  for (std::uint32_t i = 0; i < cfg_.vcs_per_vnet; ++i) {
    const std::uint32_t cand = base + i;
    if (!oport.vcs[cand].held) {
      oport.vcs[cand].held = true;
      in.out_vc = cand;
      in.active = true;
      return true;
    }
  }
  return false;
}

void Router::tick(Cycle now) {
  if (buffered_flits_ == 0) return;

  const std::uint32_t total_vcs = cfg_.total_vcs();

  // VC allocation: any idle input VC whose front flit is a ready head.
  for (std::uint32_t p = 0; p < kNumPorts; ++p) {
    for (std::uint32_t vc = 0; vc < total_vcs; ++vc) {
      InputVc& in = in_vc(static_cast<Port>(p), vc);
      if (in.active || in.buffer.empty()) continue;
      const Flit& head = in.buffer.front();
      if (!head.is_head || head.ready_at > now) continue;
      try_allocate_vc(static_cast<Port>(p), vc, *head.packet);
    }
  }

  // Switch allocation + traversal: one flit per output port and per input
  // port per cycle, round-robin among competing input VCs.
  bool input_port_used[kNumPorts] = {};
  for (std::uint32_t op = 0; op < kNumPorts; ++op) {
    OutputPort& oport = out(static_cast<Port>(op));
    if (!oport.sink) continue;
    const std::uint32_t num_cand = kNumPorts * total_vcs;
    for (std::uint32_t k = 0; k < num_cand; ++k) {
      const std::uint32_t idx = (oport.rr_next + k) % num_cand;
      const auto ip = static_cast<Port>(idx / total_vcs);
      const std::uint32_t ivc = idx % total_vcs;
      if (input_port_used[static_cast<std::size_t>(ip)]) continue;
      InputVc& in = in_vc(ip, ivc);
      if (!in.active || in.buffer.empty()) continue;
      if (static_cast<std::uint32_t>(in.out_port) != op) continue;
      const Flit& front = in.buffer.front();
      if (front.ready_at > now) continue;
      OutputVc& ovc = oport.vcs[in.out_vc];
      if (ovc.credits == 0) continue;

      // Winner: traverse the switch.
      Flit flit = std::move(in.buffer.front());
      in.buffer.pop_front();
      --buffered_flits_;
      --ovc.credits;
      input_port_used[static_cast<std::size_t>(ip)] = true;
      oport.rr_next = (idx + 1) % num_cand;
      traversals_.add();
      ++local_traversals_;
      PUNO_TRACE(sim::TraceCat::kNoc, now, "router ", id_, " ",
                 to_string(ip), ivc, " -> ", to_string(static_cast<Port>(op)),
                 in.out_vc, " pkt ", flit.packet->id,
                 flit.is_tail ? " (tail)" : "");

      if (flit.is_tail) {
        ovc.held = false;
        in.active = false;
      }

      // Return the freed buffer slot's credit upstream (one-cycle turnaround)
      if (CreditSink& cr = credit_return_[static_cast<std::size_t>(ip)]) {
        kernel_.schedule(1, [cr, ivc] { cr(ivc); });
      }

      // Link traversal to the downstream receiver. The flit is accounted
      // as in-flight until the receiver has taken it, so Mesh::idle() never
      // reports an empty network while flits ride the links.
      const std::uint32_t out_vc = in.out_vc;
      FlitSink& sink = oport.sink;
      ++inflight_flits_;
      kernel_.schedule(cfg_.link_latency,
                       [this, &sink, out_vc, f = std::move(flit)]() mutable {
                         sink(out_vc, std::move(f));
                         --inflight_flits_;
                       });
      break;  // This output port is done for the cycle.
    }
  }
}

}  // namespace puno::noc
