// Network interface (NI): packetizes protocol messages into flits on the
// injection side and reassembles flits into packets on the ejection side.
//
// The NI keeps an unbounded per-vnet injection queue (endpoint queues must
// be able to sink/source without backpressure for the protocol-deadlock
// argument to hold) and injects at most one flit per cycle into its router's
// local input port, subject to VC availability and credits. One packet per
// virtual network may be in flight from the NI at a time, so response
// traffic is never blocked behind request traffic at the injection point.
//
// Hot-path notes: packets come from the mesh-wide PacketPool (one free-list
// pop per send instead of a heap allocation per packet), and ejection-side
// reassembly is a per-VC flit counter instead of a hash map — wormhole
// routing holds an output VC until the tail flit passes, so the flits of a
// packet arrive contiguously on their VC and the tail is always the
// completing flit. send() reports to an optional ActiveSet so the mesh can
// skip NIs with nothing to inject.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "noc/active_set.hpp"
#include "noc/flit.hpp"
#include "noc/packet_pool.hpp"
#include "noc/router.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::noc {

class NetworkInterface {
 public:
  /// Callback invoked when a whole packet has been ejected at this node.
  using DeliveryHandler = std::function<void(Packet)>;

  NetworkInterface(sim::Kernel& kernel, const NocConfig& cfg, NodeId id,
                   Router& router, PacketPool& pool,
                   sim::StatsRegistry& stats);

  NetworkInterface(const NetworkInterface&) = delete;
  NetworkInterface& operator=(const NetworkInterface&) = delete;

  void set_delivery_handler(DeliveryHandler h) { deliver_ = std::move(h); }

  /// Registers the mesh's NI active set; send() adds this NI so the mesh
  /// tick visits it while it has work. Null (the default) for standalone
  /// NIs in unit tests, which are ticked unconditionally.
  void set_active_set(ActiveSet* set) noexcept { active_set_ = set; }

  /// Queues a packet for injection. The flit count is 1 head flit plus
  /// ceil(data_bytes / flit_bytes) body flits (data_bytes == 0 for control
  /// messages, which fit in the head flit — Section III.E notes the PUNO
  /// message extensions never add flits).
  void send(NodeId dst, VNet vnet, std::uint32_t data_bytes,
            std::shared_ptr<const PacketPayload> payload);

  /// Injection side: pushes at most one flit into the router per cycle.
  void tick(Cycle now);

  /// Ejection side, wired as the router's local-output sink.
  void eject_flit(std::uint32_t vc, Flit flit);

  /// Credit returned by the router for the local input port.
  void return_credit(std::uint32_t vc);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] bool idle() const;

 private:
  struct VcCredit {
    std::uint32_t credits = 0;
  };
  /// Per-vnet injection state: queued packets plus the one being serialized.
  struct VnetLane {
    std::deque<PacketRef> queue;
    PacketRef inflight;
    std::uint32_t vc = 0;
    std::uint32_t sent = 0;
  };

  /// Picks a credited VC in the vnet's slice, or -1 if none available.
  [[nodiscard]] int pick_vc(VNet vnet) const;

  sim::Kernel& kernel_;
  const NocConfig cfg_;
  NodeId id_;
  Router& router_;
  PacketPool& pool_;
  DeliveryHandler deliver_;
  ActiveSet* active_set_ = nullptr;

  std::vector<VnetLane> lanes_;     // one per vnet
  std::uint32_t rr_vnet_ = 0;       // round-robin over vnets for injection
  std::vector<VcCredit> local_vc_;  // credits toward router local input port

  /// Ejection reassembly: flits received for the packet currently arriving
  /// on each VC (wormhole keeps per-VC packet streams contiguous).
  std::vector<std::uint32_t> eject_have_;  // [vc]

  std::uint64_t next_packet_seq_ = 0;
  sim::Counter& packets_sent_;
  sim::Counter& packets_received_;
  sim::Counter& flits_sent_;
  sim::Counter& flits_ejected_;
  sim::Scalar& packet_latency_;
};

}  // namespace puno::noc
