#include "noc/mesh.hpp"

#include <cassert>

namespace puno::noc {

namespace {
/// Large credit count standing in for the NI's unbounded reassembly buffer.
constexpr std::uint32_t kEjectionCredits = 1u << 30;

[[nodiscard]] constexpr Port opposite(Port p) noexcept {
  switch (p) {
    case Port::kNorth: return Port::kSouth;
    case Port::kSouth: return Port::kNorth;
    case Port::kEast: return Port::kWest;
    case Port::kWest: return Port::kEast;
    case Port::kLocal: return Port::kLocal;
  }
  return Port::kLocal;
}
}  // namespace

Mesh::Mesh(sim::Kernel& kernel, const NocConfig& cfg)
    : kernel_(kernel),
      cfg_(cfg),
      traversals_(&kernel.stats().counter("noc.router_traversals")),
      pool_(std::make_shared<PacketPool>()),
      handlers_(num_nodes()),
      ni_active_(num_nodes()),
      router_active_(num_nodes()) {
  // Link-traversal events capture PacketRefs; if the kernel outlives the
  // mesh (it does in Cmp), those events must not outlive the arena backing
  // the refs. Parking a keep-alive in the kernel guarantees the pool is
  // destroyed after every still-queued event.
  kernel_.retain(pool_);

  const std::uint32_t n = num_nodes();
  routers_.reserve(n);
  nis_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    routers_.push_back(std::make_unique<Router>(kernel_, cfg_, i,
                                                *traversals_,
                                                inflight_flits_));
    routers_.back()->set_active_set(&router_active_);
  }
  for (NodeId i = 0; i < n; ++i) {
    nis_.push_back(std::make_unique<NetworkInterface>(kernel_, cfg_, i,
                                                      *routers_[i], *pool_,
                                                      kernel_.stats()));
    nis_.back()->set_active_set(&ni_active_);
  }

  // Wire the local port pair: router <-> NI.
  for (NodeId i = 0; i < n; ++i) {
    Router& r = *routers_[i];
    NetworkInterface& ni = *nis_[i];
    r.connect_output(
        Port::kLocal,
        [&ni](std::uint32_t vc, Flit f) { ni.eject_flit(vc, std::move(f)); },
        kEjectionCredits);
    r.connect_input(Port::kLocal,
                    [&ni](std::uint32_t vc) { ni.return_credit(vc); });
    ni.set_delivery_handler([this, i](Packet p) {
      ++messages_delivered_;
      if (handlers_[i]) handlers_[i](std::move(p));
    });
  }

  // Wire inter-router links in both directions. Row-major ids: x in
  // [0, mesh_width), y in [0, rows) — non-square meshes just have a
  // different y bound.
  const auto width = static_cast<std::int32_t>(cfg_.mesh_width);
  const auto rows = static_cast<std::int32_t>(cfg_.rows());
  for (NodeId i = 0; i < n; ++i) {
    const Coord c = coord_of(i, cfg_.mesh_width);
    const auto wire = [&](Port out, Coord nc) {
      if (nc.x < 0 || nc.x >= width || nc.y < 0 || nc.y >= rows) return;
      Router& here = *routers_[i];
      Router& there = *routers_[node_of(nc, cfg_.mesh_width)];
      const Port in = opposite(out);
      here.connect_output(
          out,
          [&there, in](std::uint32_t vc, Flit f) {
            there.receive_flit(in, vc, std::move(f));
          },
          cfg_.vc_depth);
      there.connect_input(in, [&here, out, this](std::uint32_t vc) {
        // One-cycle credit turnaround is modelled by the scheduling done at
        // the sender; here the credit is applied immediately.
        here.return_credit(out, vc);
      });
    };
    wire(Port::kEast, Coord{c.x + 1, c.y});
    wire(Port::kWest, Coord{c.x - 1, c.y});
    wire(Port::kSouth, Coord{c.x, c.y + 1});
    wire(Port::kNorth, Coord{c.x, c.y - 1});
  }

  // The topology never changes after construction, so the O(n^2) all-pairs
  // hop average is computed once here instead of per call.
  std::uint64_t hops = 0;
  std::uint64_t pairs = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      hops += hop_distance(a, b, cfg_.mesh_width);
      ++pairs;
    }
  }
  const double avg_hops =
      static_cast<double>(hops) / static_cast<double>(pairs);
  const double per_hop = cfg_.pipeline_stages + cfg_.link_latency;
  avg_c2c_latency_ = static_cast<std::uint32_t>(avg_hops * per_hop);
}

void Mesh::set_handler(NodeId node, MessageHandler h) {
  assert(node < handlers_.size());
  handlers_[node] = std::move(h);
}

void Mesh::send(NodeId src, NodeId dst, VNet vnet, std::uint32_t data_bytes,
                std::shared_ptr<const PacketPayload> payload) {
  assert(src < num_nodes() && dst < num_nodes());
  ++messages_injected_;
  if (src == dst) {
    // Same-tile communication: no network traversal, one cycle of latency.
    ++inflight_local_;
    kernel_.schedule(1, [this, src, dst, vnet, payload = std::move(payload)] {
      --inflight_local_;
      ++messages_delivered_;
      if (handlers_[dst]) {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.vnet = vnet;
        p.payload = payload;
        handlers_[dst](std::move(p));
      }
    });
    return;
  }
  nis_[src]->send(dst, vnet, data_bytes, std::move(payload));
}

void Mesh::tick(Cycle now) {
  if (cfg_.always_tick) {
    // Reference schedule: full id-ordered sweep, every cycle. The active
    // sets are still pruned so their contents match the active-set mode
    // bit for bit (the invariant checker asserts coverage in both modes).
    for (auto& ni : nis_) ni->tick(now);
    for (auto& r : routers_) r->tick(now);
    ni_active_.for_each_prune(
        [this](NodeId id) { return !nis_[id]->idle(); });
    router_active_.for_each_prune(
        [this](NodeId id) { return !routers_[id]->idle(); });
    return;
  }

  // Active-set schedule: same id order as the full sweep, minus components
  // whose tick would provably be a no-op. NIs run first and may inject into
  // their local router, activating it for the router pass below — exactly
  // the visibility the full sweep had.
  ni_active_.for_each_prune([this, now](NodeId id) {
    nis_[id]->tick(now);
    return !nis_[id]->idle();
  });
  router_active_.for_each_prune([this, now](NodeId id) {
    routers_[id]->tick(now);
    return !routers_[id]->idle();
  });
}

bool Mesh::idle() const {
  if (inflight_flits_ != 0 || inflight_local_ != 0) return false;
  for (const auto& r : routers_) {
    if (!r->idle()) return false;
  }
  for (const auto& ni : nis_) {
    if (!ni->idle()) return false;
  }
  return true;
}

std::uint64_t Mesh::buffered_router_flits() const {
  std::uint64_t total = 0;
  for (const auto& r : routers_) total += r->buffered_flits();
  return total;
}

bool Mesh::corrupt_drop_flit_for_test() {
  for (auto& r : routers_) {
    if (r->corrupt_drop_flit_for_test()) return true;
  }
  return false;
}

}  // namespace puno::noc
