// Packet representation for the on-chip network.
//
// The NoC is payload-agnostic: upper protocol layers derive their message
// types from PacketPayload and the network moves them as wormhole-routed
// flit trains. A control message fits in one flit; a 64-byte data-carrying
// message needs 1 head + 4 body flits at the 16-byte channel width of
// Table II.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/types.hpp"

namespace puno::noc {

/// Base class for anything carried through the network.
class PacketPayload {
 public:
  virtual ~PacketPayload() = default;
};

/// Virtual network a packet travels on. Separating request, forward and
/// response traffic onto disjoint VC sets breaks protocol-level deadlock
/// cycles (request→forward→response dependency chain).
enum class VNet : std::uint8_t { kRequest = 0, kForward = 1, kResponse = 2 };

struct Packet {
  std::uint64_t id = 0;            ///< Unique per-network packet id.
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  VNet vnet = VNet::kRequest;
  std::uint32_t num_flits = 1;     ///< Head + body flits.
  Cycle injected_at = 0;
  std::shared_ptr<const PacketPayload> payload;
};

}  // namespace puno::noc
