// The 2D-mesh on-chip network: routers + NIs wired with credit links.
//
// Upper protocol layers use Mesh as a message transport: send() a payload to
// a node, receive delivered payloads through a per-node handler. Messages
// whose source and destination coincide (e.g. an L1 talking to the L2 bank
// on its own tile) bypass the network with one cycle of latency and generate
// no router traversals, as on a real tiled CMP.
//
// Scheduling: instead of ticking all N routers and N NIs every cycle, the
// mesh keeps two id-ordered active sets. A router registers when a flit
// lands in an empty router (Router::receive_flit), an NI when a message is
// queued (NetworkInterface::send); each is pruned once it drains. Because
// iteration is in ascending id order — NIs first, then routers, exactly the
// order the full sweep used — and a skipped component's tick was a no-op by
// construction, the active-set schedule is cycle-for-cycle identical to the
// full sweep. NocConfig::always_tick restores the full sweep (the reference
// path the equivalence tests compare against); the active sets are kept
// up to date in both modes so the invariant checker can assert coverage.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "noc/active_set.hpp"
#include "noc/network_interface.hpp"
#include "noc/packet_pool.hpp"
#include "noc/router.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::noc {

class Mesh final : public sim::Tickable {
 public:
  using MessageHandler = std::function<void(Packet)>;

  Mesh(sim::Kernel& kernel, const NocConfig& cfg);

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return cfg_.mesh_width * cfg_.rows();
  }

  void set_handler(NodeId node, MessageHandler h);

  /// Sends `payload` from `src` to `dst`. Control messages use
  /// data_bytes = 0 (single flit); cache-line transfers use the block size.
  void send(NodeId src, NodeId dst, VNet vnet, std::uint32_t data_bytes,
            std::shared_ptr<const PacketPayload> payload);

  void tick(Cycle now) override;

  /// True when no flit is buffered or queued anywhere in the network.
  [[nodiscard]] bool idle() const;

  /// Total flit router traversals so far — the Figure 11 traffic metric.
  [[nodiscard]] std::uint64_t router_traversals() const noexcept {
    return traversals_->value();
  }

  /// Average cache-to-cache (node-to-node) latency implied by the topology:
  /// mean hop distance over all src != dst pairs times per-hop cost plus the
  /// endpoint pipeline. PUNO's notification-guided backoff subtracts twice
  /// this value from the nacker's estimated remaining runtime (Section III.D)
  /// Purely topology-derived, so it is computed once at construction.
  [[nodiscard]] std::uint32_t average_c2c_latency() const noexcept {
    return avg_c2c_latency_;
  }

  [[nodiscard]] Router& router(NodeId n) { return *routers_[n]; }
  [[nodiscard]] const Router& router(NodeId n) const { return *routers_[n]; }
  [[nodiscard]] const NetworkInterface& ni(NodeId n) const {
    return *nis_[n];
  }

  // --- Read-only inspection for the invariant checker ---

  /// Flits currently riding inter-router links (scheduled kernel events).
  [[nodiscard]] std::uint64_t inflight_link_flits() const noexcept {
    return inflight_flits_;
  }
  /// Same-tile messages awaiting their 1-cycle bypass delivery.
  [[nodiscard]] std::uint64_t inflight_local_messages() const noexcept {
    return inflight_local_;
  }
  /// Flits sitting in router input buffers, summed over the whole mesh.
  [[nodiscard]] std::uint64_t buffered_router_flits() const;
  /// Protocol messages handed to send() since construction (including
  /// same-tile bypasses, which never become flits).
  [[nodiscard]] std::uint64_t messages_injected() const noexcept {
    return messages_injected_;
  }
  /// Protocol messages delivered to a node handler (or dropped for lack of
  /// one) since construction.
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }
  /// True if the router is on the active-set schedule. Any router holding
  /// buffered flits must be active, or it would silently stop draining —
  /// the invariant checker asserts exactly that.
  [[nodiscard]] bool router_active(NodeId n) const noexcept {
    return router_active_.contains(n);
  }
  /// True if the NI is on the active-set schedule. Any NI with queued or
  /// in-flight injection work must be active.
  [[nodiscard]] bool ni_active(NodeId n) const noexcept {
    return ni_active_.contains(n);
  }

  /// Fault injection for the invariant-checker tests ONLY: drops one flit
  /// from some router buffer. Returns false if the network held no flit.
  bool corrupt_drop_flit_for_test();

 private:
  sim::Kernel& kernel_;
  const NocConfig cfg_;
  sim::Counter* traversals_;
  /// Shared packet arena. Held by shared_ptr and parked in Kernel::retain()
  /// so PacketRefs captured in still-queued link events stay valid even if
  /// the mesh is destroyed before the kernel.
  std::shared_ptr<PacketPool> pool_;
  std::uint64_t inflight_flits_ = 0;
  std::uint64_t inflight_local_ = 0;  ///< Self-sends awaiting delivery.
  std::uint64_t messages_injected_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint32_t avg_c2c_latency_ = 0;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<MessageHandler> handlers_;
  ActiveSet ni_active_;
  ActiveSet router_active_;
};

}  // namespace puno::noc
