// Virtual-channel wormhole router with credit-based flow control.
//
// Microarchitecture (Table II: "4-stage router"): a flit entering an input
// buffer at cycle T becomes eligible for switch traversal at
// T + pipeline_stages - 1, which models the BW/RC, VA, SA, ST pipeline
// occupancy without simulating each stage's register separately. Route
// computation (XY) happens when the head flit reaches the front of its VC;
// output-VC allocation grabs a free downstream VC in the packet's virtual
// network; switch allocation arbitrates round-robin per output port with at
// most one flit per input port and per output port per cycle; switch
// traversal forwards the flit and returns a credit upstream.
//
// Every successful switch traversal increments the mesh-wide
// "flit router traversals" counter — the exact network-traffic metric of
// the paper's Figure 11.
//
// Hot-path notes: input VCs buffer flits in fixed-capacity rings (no deque,
// no steady-state allocation), packets ride pooled PacketRef handles, and
// the router reports its 0→1 buffered transition to an optional ActiveSet so
// the mesh can skip quiescent routers entirely. The VA and SA scans iterate
// candidate bitmasks instead of every (port, vc) slot: va_mask_ holds input
// VCs with buffered flits awaiting VC allocation, sa_mask_[op] the allocated
// input VCs routed to output port op. Bit position == the scan index the
// full loop used, and bits are visited in the same (ascending / round-robin)
// order, so the masks only skip iterations the full scan would have
// `continue`d — rr_next evolution and arbitration outcomes stay
// bit-identical. Configs whose (port, vc) space exceeds 64 fall back to the
// full scans.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "noc/active_set.hpp"
#include "noc/flit.hpp"
#include "noc/flit_ring.hpp"
#include "noc/routing.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::noc {

class Router {
 public:
  /// Downstream flit sink for an output port: (vc, flit).
  using FlitSink = std::function<void(std::uint32_t, Flit)>;
  /// Upstream credit return for an input port: (vc).
  using CreditSink = std::function<void(std::uint32_t)>;

  Router(sim::Kernel& kernel, const NocConfig& cfg, NodeId id,
         sim::Counter& traversals, std::uint64_t& inflight_flits);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Wires an output port to a downstream receiver. `initial_credits` is the
  /// downstream buffer depth per VC (use a large value for ejection ports,
  /// whose reassembly buffers are unbounded).
  void connect_output(Port p, FlitSink sink, std::uint32_t initial_credits);

  /// Wires an input port's credit-return path back to its upstream sender.
  void connect_input(Port p, CreditSink credit_return);

  /// Registers the mesh's router active set; receive_flit adds this router
  /// on its 0→1 buffered transition. Null (the default) for standalone
  /// routers in unit tests, which are ticked unconditionally.
  void set_active_set(ActiveSet* set) noexcept { active_set_ = set; }

  /// Delivers a flit into input buffer (p, vc). Called by the upstream link.
  /// The caller must have reserved a credit; overflow is a protocol bug and
  /// asserts.
  void receive_flit(Port p, std::uint32_t vc, Flit flit);

  /// Restores one credit for output (p, vc). Called by downstream.
  void return_credit(Port p, std::uint32_t vc);

  /// One cycle of switch allocation + traversal.
  void tick(Cycle now);

  /// True if no flit is buffered anywhere in this router.
  [[nodiscard]] bool idle() const noexcept { return buffered_flits_ == 0; }

  /// Number of flits currently held in this router's input buffers, for the
  /// invariant checker's flit-conservation accounting.
  [[nodiscard]] std::uint64_t buffered_flits() const noexcept {
    return buffered_flits_;
  }

  /// Lifetime switch traversals through *this* router (the mesh-wide counter
  /// aggregates all routers). The telemetry sampler differences this between
  /// windows for the per-router utilization panel.
  [[nodiscard]] std::uint64_t local_traversals() const noexcept {
    return local_traversals_;
  }

  /// Fault injection for the invariant-checker tests ONLY: silently discards
  /// one buffered flit (as a flow-control bug would), without touching the
  /// injected/ejected counters. Returns false if nothing was buffered.
  bool corrupt_drop_flit_for_test();

 private:
  struct InputVc {
    FlitRing buffer;
    bool active = false;        ///< Holds an in-flight packet (post-VA).
    Port out_port = Port::kLocal;
    std::uint32_t out_vc = 0;
  };
  struct OutputVc {
    std::uint32_t credits = 0;
    bool held = false;          ///< Allocated to some upstream packet.
  };
  struct OutputPort {
    FlitSink sink;
    std::vector<OutputVc> vcs;
    std::uint32_t rr_next = 0;  ///< Round-robin pointer over input VCs.
  };

  [[nodiscard]] InputVc& in_vc(Port p, std::uint32_t vc) {
    return inputs_[static_cast<std::size_t>(p) * cfg_.total_vcs() + vc];
  }
  [[nodiscard]] OutputPort& out(Port p) {
    return outputs_[static_cast<std::size_t>(p)];
  }

  /// Tries VC allocation for the head flit at the front of (p, vc).
  bool try_allocate_vc(Port p, std::uint32_t vc, const Packet& pkt);

  /// Switch-allocation attempt for scan candidate `idx` competing for
  /// output port `op`; on success performs the traversal and returns true.
  bool try_switch(std::uint32_t op, std::uint32_t idx, Cycle now,
                  bool* input_port_used);

  sim::Kernel& kernel_;
  const NocConfig cfg_;
  NodeId id_;
  sim::Counter& traversals_;
  /// Mesh-wide count of flits currently traversing links (they live in the
  /// kernel's event queue, so buffer occupancy alone cannot see them; the
  /// mesh needs this for a correct idle() check).
  std::uint64_t& inflight_flits_;
  ActiveSet* active_set_ = nullptr;

  std::vector<InputVc> inputs_;            // [port][vc]
  std::vector<OutputPort> outputs_;        // [port]
  std::vector<CreditSink> credit_return_;  // [port]
  std::uint64_t buffered_flits_ = 0;
  std::uint64_t local_traversals_ = 0;
  /// True when kNumPorts * total_vcs <= 64 and the mask-based scans apply
  /// (every shipped config; exotic ones use the full scans).
  bool use_masks_ = false;
  /// Scan-index bit per input VC that holds flits but no output VC yet.
  /// A set bit does not imply the head is ready — that is re-checked.
  std::uint64_t va_mask_ = 0;
  /// Scan-index bit per allocated (post-VA) input VC, keyed by the output
  /// port the packet is routed to. A set bit does not imply a flit is
  /// buffered or ready — both are re-checked in scan order.
  std::uint64_t sa_mask_[kNumPorts] = {};
  /// Scan index -> (input port, input vc), precomputed to keep the integer
  /// divisions out of the scan loops.
  std::vector<Port> cand_port_;
  std::vector<std::uint32_t> cand_vc_;
};

}  // namespace puno::noc
