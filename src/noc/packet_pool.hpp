// Pooled, non-atomic refcounted packets for the NoC hot path.
//
// Every flit of a packet used to share a std::shared_ptr<Packet>: one heap
// allocation per packet plus two atomic RMWs per flit copy — on a
// single-threaded kernel where nothing is ever contended. PacketRef replaces
// it with an intrusive, non-atomic refcount over packets that live in a
// free-list arena: allocation is a pointer pop, release is a pointer push,
// and copying a flit is a plain increment. The arena never shrinks while
// the simulation runs (steady state is allocation-free) and is shared by
// every NI of a mesh; the mesh parks a keep-alive in Kernel::retain() so
// packet handles captured inside still-queued events outlive the mesh.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "noc/packet.hpp"

namespace puno::noc {

class PacketPool;

/// Arena slot: the packet plus the intrusive bookkeeping PacketRef uses.
struct PooledPacket {
  Packet pkt;
  std::uint32_t refs = 0;
  PooledPacket* next_free = nullptr;
  PacketPool* pool = nullptr;
};

/// Non-atomic refcounted handle to a pooled packet. Copy = one increment;
/// destruction of the last handle returns the slot to its pool's free list.
class PacketRef {
 public:
  PacketRef() noexcept = default;
  PacketRef(const PacketRef& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) ++p_->refs;
  }
  PacketRef(PacketRef&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  PacketRef& operator=(const PacketRef& o) noexcept {
    if (p_ != o.p_) {
      release();
      p_ = o.p_;
      if (p_ != nullptr) ++p_->refs;
    }
    return *this;
  }
  PacketRef& operator=(PacketRef&& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~PacketRef() { release(); }

  void reset() noexcept {
    release();
    p_ = nullptr;
  }

  [[nodiscard]] Packet* operator->() const noexcept { return &p_->pkt; }
  [[nodiscard]] Packet& operator*() const noexcept { return p_->pkt; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return p_ != nullptr;
  }

 private:
  friend class PacketPool;
  explicit PacketRef(PooledPacket* p) noexcept : p_(p) {}

  inline void release() noexcept;

  PooledPacket* p_ = nullptr;
};

/// Free-list arena of packets. Single-threaded by design (the kernel is);
/// allocation order is deterministic, and no simulated behaviour ever
/// depends on slot identity.
class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Hands out a packet with default-initialized fields and refcount 1.
  [[nodiscard]] PacketRef allocate() {
    if (free_ == nullptr) grow();
    PooledPacket* p = free_;
    free_ = p->next_free;
    ++live_;
    p->pkt = Packet{};
    p->refs = 1;
    return PacketRef{p};
  }

  /// Packets currently held by at least one PacketRef.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  /// Arena capacity (all slots ever allocated, free or live).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return chunks_.size() * kChunk;
  }

 private:
  friend class PacketRef;
  static constexpr std::size_t kChunk = 64;

  void grow() {
    chunks_.push_back(std::make_unique<PooledPacket[]>(kChunk));
    PooledPacket* chunk = chunks_.back().get();
    // Chain in reverse so allocation hands out slots in address order.
    for (std::size_t i = kChunk; i-- > 0;) {
      chunk[i].pool = this;
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
  }

  void put_back(PooledPacket* p) noexcept {
    p->pkt.payload.reset();  // drop the protocol message promptly
    p->next_free = free_;
    free_ = p;
    --live_;
  }

  std::vector<std::unique_ptr<PooledPacket[]>> chunks_;
  PooledPacket* free_ = nullptr;
  std::size_t live_ = 0;
};

inline void PacketRef::release() noexcept {
  if (p_ != nullptr && --p_->refs == 0) p_->pool->put_back(p_);
}

}  // namespace puno::noc
