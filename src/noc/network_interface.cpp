#include "noc/network_interface.hpp"

#include <cassert>

#include "sim/log.hpp"
#include "trace/recorder.hpp"

namespace puno::noc {

NetworkInterface::NetworkInterface(sim::Kernel& kernel, const NocConfig& cfg,
                                   NodeId id, Router& router, PacketPool& pool,
                                   sim::StatsRegistry& stats)
    : kernel_(kernel),
      cfg_(cfg),
      id_(id),
      router_(router),
      pool_(pool),
      lanes_(cfg.num_vnets),
      local_vc_(cfg.total_vcs()),
      eject_have_(cfg.total_vcs(), 0),
      packets_sent_(stats.counter("noc.packets_sent")),
      packets_received_(stats.counter("noc.packets_received")),
      flits_sent_(stats.counter("noc.flits_sent")),
      flits_ejected_(stats.counter("noc.flits_ejected")),
      packet_latency_(stats.scalar("noc.packet_latency")) {
  for (auto& vc : local_vc_) vc.credits = cfg.vc_depth;
}

bool NetworkInterface::idle() const {
  for (const VnetLane& lane : lanes_) {
    if (!lane.queue.empty() || lane.inflight) return false;
  }
  return true;
}

void NetworkInterface::send(NodeId dst, VNet vnet, std::uint32_t data_bytes,
                            std::shared_ptr<const PacketPayload> payload) {
  assert(dst != id_ && "NoC messages to self must be short-circuited above");
  PacketRef pkt = pool_.allocate();
  pkt->id = (static_cast<std::uint64_t>(id_) << 48) | next_packet_seq_++;
  pkt->src = id_;
  pkt->dst = dst;
  pkt->vnet = vnet;
  pkt->num_flits = 1 + (data_bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
  pkt->injected_at = kernel_.now();
  pkt->payload = std::move(payload);
  lanes_[static_cast<std::size_t>(vnet)].queue.push_back(std::move(pkt));
  if (active_set_ != nullptr) active_set_->add(id_);
}

int NetworkInterface::pick_vc(VNet vnet) const {
  const std::uint32_t base =
      static_cast<std::uint32_t>(vnet) * cfg_.vcs_per_vnet;
  for (std::uint32_t i = 0; i < cfg_.vcs_per_vnet; ++i) {
    if (local_vc_[base + i].credits > 0) return static_cast<int>(base + i);
  }
  return -1;
}

void NetworkInterface::tick(Cycle now) {
  // One flit per cycle, round-robin across vnet lanes for fairness.
  for (std::uint32_t k = 0; k < cfg_.num_vnets; ++k) {
    const std::uint32_t v = (rr_vnet_ + k) % cfg_.num_vnets;
    VnetLane& lane = lanes_[v];
    if (!lane.inflight) {
      if (lane.queue.empty()) continue;
      const int vc = pick_vc(static_cast<VNet>(v));
      if (vc < 0) continue;  // no credited VC this cycle
      lane.inflight = std::move(lane.queue.front());
      lane.queue.pop_front();
      lane.vc = static_cast<std::uint32_t>(vc);
      lane.sent = 0;
    }
    VcCredit& credit = local_vc_[lane.vc];
    if (credit.credits == 0) continue;

    Flit flit;
    flit.packet = lane.inflight;
    flit.is_head = lane.sent == 0;
    flit.is_tail = lane.sent + 1 == lane.inflight->num_flits;
    --credit.credits;
    PUNO_TEV(kernel_, trace::Cat::kNoc,
             (trace::TraceEvent{
                 .cycle = now,
                 .a = lane.inflight->id,
                 .b = static_cast<std::uint64_t>(lane.inflight->vnet),
                 .node = id_,
                 .peer = lane.inflight->dst,
                 .kind = trace::EventKind::kFlitInject,
                 .flags = static_cast<std::uint8_t>(
                     (flit.is_head ? 1u : 0u) | (flit.is_tail ? 2u : 0u))}));
    router_.receive_flit(Port::kLocal, lane.vc, std::move(flit));
    flits_sent_.add();
    ++lane.sent;
    if (lane.sent == lane.inflight->num_flits) {
      PUNO_TRACE(sim::TraceCat::kNoc, now, "NI ", id_, " injected pkt ",
                 lane.inflight->id, " -> node ", lane.inflight->dst);
      packets_sent_.add();
      lane.inflight.reset();
    }
    rr_vnet_ = (v + 1) % cfg_.num_vnets;
    return;  // injected our one flit for this cycle
  }
}

void NetworkInterface::eject_flit(std::uint32_t vc, Flit flit) {
  flits_ejected_.add();
  const PacketRef& pkt = flit.packet;
  PUNO_TEV(kernel_, trace::Cat::kNoc,
           (trace::TraceEvent{
               .cycle = kernel_.now(),
               .a = pkt->id,
               .b = static_cast<std::uint64_t>(pkt->vnet),
               .node = id_,
               .peer = pkt->src,
               .kind = trace::EventKind::kFlitEject,
               .flags = static_cast<std::uint8_t>(
                   (flit.is_head ? 1u : 0u) | (flit.is_tail ? 2u : 0u))}));
  // Wormhole routing delivers a packet's flits contiguously on its VC, so a
  // plain per-VC counter replaces the old per-packet-id reassembly map. The
  // tail flit is by construction the num_flits'th flit of its packet.
  const std::uint32_t have = ++eject_have_[vc];
  if (!flit.is_tail) return;
  assert(have == pkt->num_flits && "per-VC packet stream not contiguous");
  (void)have;
  eject_have_[vc] = 0;
  packets_received_.add();
  packet_latency_.sample(
      static_cast<double>(kernel_.now() - pkt->injected_at));
  PUNO_TRACE(sim::TraceCat::kNoc, kernel_.now(), "NI ", id_, " delivered pkt ",
             pkt->id, " from node ", pkt->src);
  if (deliver_) deliver_(*pkt);
}

void NetworkInterface::return_credit(std::uint32_t vc) {
  assert(vc < local_vc_.size());
  ++local_vc_[vc].credits;
}

}  // namespace puno::noc
