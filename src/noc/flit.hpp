// Flit representation for the on-chip network.
//
// All flits of a packet share it through a pooled PacketRef (see
// packet_pool.hpp): copying a flit costs one non-atomic increment, and the
// packet storage is recycled through a free-list arena instead of the heap.
#pragma once

#include "noc/packet.hpp"
#include "noc/packet_pool.hpp"
#include "sim/types.hpp"

namespace puno::noc {

struct Flit {
  PacketRef packet;    ///< All flits of a packet share it.
  bool is_head = false;
  bool is_tail = false;
  Cycle ready_at = 0;  ///< Earliest cycle this flit may traverse the switch
                       ///< of the router currently buffering it (models the
                       ///< 4-stage pipeline).
};

}  // namespace puno::noc
