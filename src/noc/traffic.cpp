#include "noc/traffic.hpp"

namespace puno::noc {

const char* to_string(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::kUniformRandom: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kNearestNeighbour: return "neighbour";
  }
  return "?";
}

NodeId pattern_destination(TrafficPattern p, NodeId src, std::uint32_t width,
                           sim::Rng& rng) {
  const std::uint32_t n = width * width;
  switch (p) {
    case TrafficPattern::kUniformRandom: {
      auto dst = static_cast<NodeId>(rng.next_below(n));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
      return dst;
    }
    case TrafficPattern::kHotspot: {
      if (src != 0 && rng.next_bool(0.25)) return 0;
      auto dst = static_cast<NodeId>(rng.next_below(n));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
      return dst;
    }
    case TrafficPattern::kTranspose: {
      const Coord c = coord_of(src, width);
      NodeId dst = node_of(Coord{c.y, c.x}, width);
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
      return dst;
    }
    case TrafficPattern::kBitComplement: {
      NodeId dst = static_cast<NodeId>((n - 1) - src);
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
      return dst;
    }
    case TrafficPattern::kNearestNeighbour: {
      const Coord c = coord_of(src, width);
      return node_of(
          Coord{(c.x + 1) % static_cast<std::int32_t>(width), c.y}, width);
    }
  }
  return 0;
}

TrafficGenerator::TrafficGenerator(sim::Kernel& kernel, Mesh& mesh,
                                   const NocConfig& cfg,
                                   TrafficPattern pattern, double rate,
                                   std::uint32_t payload_bytes,
                                   std::uint64_t seed)
    : kernel_(kernel),
      mesh_(mesh),
      cfg_(cfg),
      pattern_(pattern),
      rate_(rate),
      payload_bytes_(payload_bytes),
      rng_(seed, 0xF00D) {
  const std::uint32_t n = cfg.mesh_width * cfg.mesh_width;
  for (NodeId d = 0; d < n; ++d) {
    mesh_.set_handler(d, [this](Packet p) {
      const auto* payload = static_cast<const Payload*>(p.payload.get());
      const double lat = static_cast<double>(kernel_.now() - payload->sent_at);
      ++delivered_;
      latency_sum_ += lat;
      latency_max_ = std::max(latency_max_, lat);
    });
  }
}

void TrafficGenerator::tick(Cycle now) {
  const std::uint32_t n = cfg_.mesh_width * cfg_.mesh_width;
  for (NodeId src = 0; src < n; ++src) {
    if (!rng_.next_bool(rate_)) continue;
    const NodeId dst = pattern_destination(pattern_, src, cfg_.mesh_width,
                                           rng_);
    const auto vnet = static_cast<VNet>(rng_.next_below(cfg_.num_vnets));
    mesh_.send(src, dst, vnet, payload_bytes_,
               std::make_shared<Payload>(now));
    ++injected_;
  }
}

TrafficGenerator::Results TrafficGenerator::results(Cycle elapsed) const {
  Results r;
  r.injected = injected_;
  r.delivered = delivered_;
  r.avg_latency = delivered_ == 0 ? 0.0 : latency_sum_ / delivered_;
  r.max_latency = latency_max_;
  const std::uint32_t n = cfg_.mesh_width * cfg_.mesh_width;
  r.throughput = elapsed == 0
                     ? 0.0
                     : static_cast<double>(delivered_) /
                           (static_cast<double>(elapsed) * n);
  return r;
}

}  // namespace puno::noc
