// Fixed-capacity ring buffer for a router input VC's flit queue.
//
// A VC buffer holds at most NocConfig::vc_depth flits — the credit protocol
// guarantees it — so the std::deque it used to be (heap blocks, bookkeeping,
// poor locality) is replaced with a ring over storage sized once at router
// construction. Depths up to kInline live directly inside the router's VC
// array (no pointer chase at all); deeper configurations take a single
// up-front heap block and are still allocation-free afterwards.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "noc/flit.hpp"

namespace puno::noc {

class FlitRing {
 public:
  /// VC depths up to this store their flits inline (default depth is 4).
  static constexpr std::uint32_t kInline = 8;

  FlitRing() = default;
  FlitRing(const FlitRing&) = delete;
  FlitRing& operator=(const FlitRing&) = delete;
  FlitRing(FlitRing&&) = default;
  FlitRing& operator=(FlitRing&&) = default;

  /// Sets the capacity. Must be called once, before any push.
  void set_capacity(std::uint32_t depth) {
    assert(size_ == 0 && "capacity change with buffered flits");
    cap_ = depth;
    if (depth > kInline) spill_ = std::make_unique<Flit[]>(depth);
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == cap_; }

  void push_back(Flit f) {
    assert(size_ < cap_ && "VC ring overflow (credit protocol violated)");
    slot((head_ + size_) % cap_) = std::move(f);
    ++size_;
  }

  [[nodiscard]] Flit& front() noexcept {
    assert(size_ > 0);
    return slot(head_);
  }
  [[nodiscard]] const Flit& front() const noexcept {
    assert(size_ > 0);
    return const_cast<FlitRing*>(this)->slot(head_);
  }

  void pop_front() noexcept {
    assert(size_ > 0);
    slot(head_) = Flit{};  // release the packet handle promptly
    head_ = (head_ + 1) % cap_;
    --size_;
  }

  /// Drops the youngest flit (fault injection for the invariant-checker
  /// tests; head/VA state stays sane).
  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
    slot((head_ + size_) % cap_) = Flit{};
  }

 private:
  [[nodiscard]] Flit& slot(std::uint32_t i) noexcept {
    return spill_ != nullptr ? spill_[i] : inline_[i];
  }

  std::uint32_t cap_ = 0;
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
  Flit inline_[kInline];
  std::unique_ptr<Flit[]> spill_;  ///< Engaged only when cap_ > kInline.
};

}  // namespace puno::noc
