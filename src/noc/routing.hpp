// 2D-mesh coordinates and dimension-order (XY) routing.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "sim/types.hpp"

namespace puno::noc {

/// Router ports. kLocal connects to the node's network interface.
enum class Port : std::uint8_t {
  kLocal = 0,
  kNorth = 1,
  kSouth = 2,
  kEast = 3,
  kWest = 4,
};
inline constexpr std::uint32_t kNumPorts = 5;

[[nodiscard]] constexpr const char* to_string(Port p) noexcept {
  switch (p) {
    case Port::kLocal: return "L";
    case Port::kNorth: return "N";
    case Port::kSouth: return "S";
    case Port::kEast: return "E";
    case Port::kWest: return "W";
  }
  return "?";
}

struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

[[nodiscard]] constexpr Coord coord_of(NodeId n, std::uint32_t width) noexcept {
  return Coord{static_cast<std::int32_t>(n % width),
               static_cast<std::int32_t>(n / width)};
}

[[nodiscard]] constexpr NodeId node_of(Coord c, std::uint32_t width) noexcept {
  return static_cast<NodeId>(c.y * static_cast<std::int32_t>(width) + c.x);
}

/// Dimension-order routing: fully resolve X before moving in Y. Deadlock-free
/// on a mesh because the turn set excludes all cycles.
[[nodiscard]] constexpr Port route_xy(NodeId here, NodeId dst,
                                      std::uint32_t width) noexcept {
  const Coord h = coord_of(here, width);
  const Coord d = coord_of(dst, width);
  if (h.x != d.x) return d.x > h.x ? Port::kEast : Port::kWest;
  if (h.y != d.y) return d.y > h.y ? Port::kSouth : Port::kNorth;
  return Port::kLocal;
}

/// Manhattan hop count between two nodes.
[[nodiscard]] constexpr std::uint32_t hop_distance(NodeId a, NodeId b,
                                                   std::uint32_t width) noexcept {
  const Coord ca = coord_of(a, width);
  const Coord cb = coord_of(b, width);
  return static_cast<std::uint32_t>(std::abs(ca.x - cb.x) +
                                    std::abs(ca.y - cb.y));
}

}  // namespace puno::noc
