// Synthetic traffic generation for standalone NoC studies.
//
// The CMP experiments exercise the mesh with protocol traffic; this module
// drives it with the classic synthetic patterns instead (uniform random,
// hotspot, transpose, bit-complement, nearest-neighbour), measuring
// throughput and latency versus offered load — the standard way to
// characterize a router microarchitecture in isolation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "noc/mesh.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"

namespace puno::noc {

enum class TrafficPattern : std::uint8_t {
  kUniformRandom,    ///< Destination uniformly random (≠ source).
  kHotspot,          ///< 25% of traffic to node 0, rest uniform.
  kTranspose,        ///< (x,y) -> (y,x).
  kBitComplement,    ///< node -> ~node (mod N).
  kNearestNeighbour, ///< +1 in x (wrapping within the row).
};

[[nodiscard]] const char* to_string(TrafficPattern p) noexcept;

/// Picks the destination for `src` under the pattern.
[[nodiscard]] NodeId pattern_destination(TrafficPattern p, NodeId src,
                                         std::uint32_t width, sim::Rng& rng);

/// Open-loop injector: every node offers `rate` packets/node/cycle
/// (Bernoulli), measuring end-to-end packet latency at the sinks.
class TrafficGenerator final : public sim::Tickable {
 public:
  TrafficGenerator(sim::Kernel& kernel, Mesh& mesh, const NocConfig& cfg,
                   TrafficPattern pattern, double rate,
                   std::uint32_t payload_bytes = 0,
                   std::uint64_t seed = 1);

  void tick(Cycle now) override;

  struct Results {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    double avg_latency = 0.0;
    double max_latency = 0.0;
    double throughput = 0.0;  ///< Delivered packets / node / cycle.
  };
  /// Snapshot after `measure_cycles` of simulated time.
  [[nodiscard]] Results results(Cycle elapsed) const;

 private:
  struct Payload final : PacketPayload {
    explicit Payload(Cycle t) : sent_at(t) {}
    Cycle sent_at;
  };

  sim::Kernel& kernel_;
  Mesh& mesh_;
  NocConfig cfg_;
  TrafficPattern pattern_;
  double rate_;
  std::uint32_t payload_bytes_;
  sim::Rng rng_;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  double latency_sum_ = 0.0;
  double latency_max_ = 0.0;
};

}  // namespace puno::noc
