// Deterministic id-ordered active set for NoC components.
//
// Mesh::tick used to tick every router and NI every cycle; with this set it
// visits only components that registered themselves on receiving work, in
// ascending id order — the exact order the full sweep used, so skipping
// quiescent tiles is behaviour-invisible. The set is a bitmask: add/remove
// are a single OR/AND, iteration scans whole 64-bit words, and an idle mesh
// costs one word test per 64 tiles instead of 64 virtual-free but
// branch-heavy tick calls.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace puno::noc {

class ActiveSet {
 public:
  explicit ActiveSet(std::uint32_t n = 0) { resize(n); }

  void resize(std::uint32_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  void add(NodeId id) noexcept {
    words_[id >> 6] |= std::uint64_t{1} << (id & 63);
  }
  void remove(NodeId id) noexcept {
    words_[id >> 6] &= ~(std::uint64_t{1} << (id & 63));
  }
  [[nodiscard]] bool contains(NodeId id) const noexcept {
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }
  [[nodiscard]] bool empty() const noexcept {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint32_t count() const noexcept {
    std::uint32_t c = 0;
    for (std::uint64_t w : words_) c += popcount(w);
    return c;
  }

  /// Visits every member in ascending id order. `fn(id)` returns true to
  /// keep the member, false to remove it. Members added to *other* ids
  /// during iteration by `fn` are picked up if their id is still ahead of
  /// the scan; the mesh only ever adds ids of the set scanned later in the
  /// cycle, so the visible semantics match the full id-ordered sweep.
  template <typename Fn>
  void for_each_prune(Fn&& fn) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::uint32_t>(ctz(bits));
        bits &= bits - 1;
        const auto id = static_cast<NodeId>(w * 64 + bit);
        if (!fn(id)) remove(id);
      }
    }
  }

 private:
  [[nodiscard]] static std::uint32_t popcount(std::uint64_t v) noexcept {
    return static_cast<std::uint32_t>(__builtin_popcountll(v));
  }
  [[nodiscard]] static int ctz(std::uint64_t v) noexcept {
    return __builtin_ctzll(v);
  }

  std::uint32_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace puno::noc
