#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cassert>

namespace puno::workloads {

SyntheticWorkload::SyntheticWorkload(SyntheticSpec spec,
                                     std::uint32_t num_nodes,
                                     std::uint64_t seed)
    : spec_(std::move(spec)), num_nodes_(num_nodes), issued_(num_nodes, 0) {
  assert(!spec_.txns.empty());
  rngs_.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    rngs_.emplace_back(seed, 0x900 + n);
  }
  for (const StaticTxnSpec& t : spec_.txns) total_weight_ += t.weight;
}

Addr SyntheticWorkload::hot_addr(sim::Rng& rng) const {
  return rng.next_below(spec_.hot_blocks) * spec_.block_bytes;
}

Addr SyntheticWorkload::cold_addr(NodeId node, sim::Rng& rng) const {
  const std::uint64_t hot_end = spec_.hot_blocks;
  if (rng.next_bool(spec_.private_frac)) {
    const std::uint64_t base = hot_end + spec_.shared_blocks +
                               static_cast<std::uint64_t>(node) *
                                   spec_.private_blocks_per_node;
    return (base + rng.next_below(spec_.private_blocks_per_node)) *
           spec_.block_bytes;
  }
  return (hot_end + rng.next_below(spec_.shared_blocks)) * spec_.block_bytes;
}

std::size_t SyntheticWorkload::pick_site(sim::Rng& rng) const {
  double r = rng.next_double() * total_weight_;
  for (std::size_t i = 0; i < spec_.txns.size(); ++i) {
    r -= spec_.txns[i].weight;
    if (r <= 0.0) return i;
  }
  return spec_.txns.size() - 1;
}

std::optional<TxnDesc> SyntheticWorkload::next(NodeId node) {
  assert(node < num_nodes_);
  if (issued_[node] >= spec_.txns_per_node) return std::nullopt;
  ++issued_[node];
  sim::Rng& rng = rngs_[node];

  const std::size_t site = pick_site(rng);
  const StaticTxnSpec& t = spec_.txns[site];

  TxnDesc desc;
  desc.static_id = static_cast<StaticTxId>(site);
  desc.pre_think = static_cast<std::uint32_t>(
      rng.next_range(spec_.pre_think_min, spec_.pre_think_max));
  desc.post_think = static_cast<std::uint32_t>(
      rng.next_range(spec_.post_think_min, spec_.post_think_max));

  const auto reads =
      static_cast<std::uint32_t>(rng.next_range(t.reads_min, t.reads_max));
  const auto writes =
      static_cast<std::uint32_t>(rng.next_range(t.writes_min, t.writes_max));
  desc.ops.reserve(reads + writes);

  // PCs are static per (site, op position): the same code site issues the
  // same instruction across dynamic instances, which is what PC-indexed
  // structures like the RMW predictor rely on.
  const std::uint64_t pc_base = (static_cast<std::uint64_t>(site) + 1) << 16;

  std::vector<Addr> read_addrs;
  read_addrs.reserve(reads);

  // Anchor ops first: the structure every instance of this site touches.
  if (t.anchor_reads + t.anchor_writes > 0) {
    const Addr anchor =
        rng.next_below(std::max<std::uint32_t>(spec_.anchor_blocks, 1)) *
        spec_.block_bytes;
    for (std::uint32_t i = 0; i < t.anchor_reads; ++i) {
      TxOp op;
      op.is_store = false;
      op.addr = anchor;
      op.pc = pc_base + 0xA000 + i;
      op.pre_think = static_cast<std::uint32_t>(
          rng.next_range(t.op_think_min, t.op_think_max));
      read_addrs.push_back(anchor);
      desc.ops.push_back(op);
    }
    for (std::uint32_t i = 0; i < t.anchor_writes; ++i) {
      TxOp op;
      op.is_store = true;
      op.addr = anchor;
      op.pc = pc_base + 0xB000 + i;
      op.pre_think = static_cast<std::uint32_t>(
          rng.next_range(t.op_think_min, t.op_think_max));
      desc.ops.push_back(op);
    }
  }

  std::uint32_t scan_cursor =
      static_cast<std::uint32_t>(rng.next_below(spec_.hot_blocks));
  for (std::uint32_t i = 0; i < reads; ++i) {
    TxOp op;
    op.is_store = false;
    if (t.scan_hot) {
      // Sweep the hot region (labyrinth-style whole-grid read).
      op.addr = (scan_cursor % spec_.hot_blocks) * spec_.block_bytes;
      ++scan_cursor;
    } else if (rng.next_bool(t.hot_read_frac)) {
      op.addr = hot_addr(rng);
    } else {
      op.addr = cold_addr(node, rng);
    }
    op.pc = pc_base + i;
    op.pre_think = static_cast<std::uint32_t>(
        rng.next_range(t.op_think_min, t.op_think_max));
    read_addrs.push_back(op.addr);
    desc.ops.push_back(op);
  }
  for (std::uint32_t i = 0; i < writes; ++i) {
    TxOp op;
    op.is_store = true;
    if (!read_addrs.empty() && rng.next_bool(t.rmw_frac)) {
      op.addr = read_addrs[rng.next_below(read_addrs.size())];
    } else if (rng.next_bool(t.hot_write_frac)) {
      op.addr = hot_addr(rng);
    } else {
      op.addr = cold_addr(node, rng);
    }
    op.pc = pc_base + 0x8000 + i;
    op.pre_think = static_cast<std::uint32_t>(
        rng.next_range(t.op_think_min, t.op_think_max));
    desc.ops.push_back(op);
  }
  return desc;
}

}  // namespace puno::workloads
