#include "workloads/stamp.hpp"

#include <cmath>
#include <stdexcept>

namespace puno::workloads::stamp {

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = {
      "bayes",  "intruder", "labyrinth", "yada",
      "genome", "kmeans",   "ssca2",     "vacation"};
  return names;
}

bool is_high_contention(const std::string& name) {
  return name == "bayes" || name == "intruder" || name == "labyrinth" ||
         name == "yada";
}

std::string input_parameters(const std::string& name) {
  if (name == "bayes") return "32 var, 1024 records, 2 edge/var";
  if (name == "intruder") return "2k flow, 10 attack, 4 pkt/flow";
  if (name == "labyrinth") return "32*32*3 maze, 96 paths";
  if (name == "yada") return "1264 elements, min-angle 20";
  if (name == "genome") return "32 var, 1024 records";
  if (name == "kmeans") return "16K seg, 256 gene, 16 sample";
  if (name == "ssca2") return "8k nodes, 3 len, 3 para edge";
  if (name == "vacation") return "16K record, 4K req, 60% coverage";
  throw std::invalid_argument("unknown STAMP benchmark: " + name);
}

double paper_abort_rate(const std::string& name) {
  if (name == "bayes") return 0.971;
  if (name == "intruder") return 0.776;
  if (name == "labyrinth") return 0.986;
  if (name == "yada") return 0.479;
  if (name == "genome") return 0.013;
  if (name == "kmeans") return 0.074;
  if (name == "ssca2") return 0.003;
  if (name == "vacation") return 0.38;
  throw std::invalid_argument("unknown STAMP benchmark: " + name);
}

namespace {

SyntheticSpec bayes_spec() {
  // Bayesian-network structure learning: few, very long transactions that
  // read large slices of the adjacency/score structures and write several
  // of them; extremely high contention (Table I: 97.1% aborts). Bayes has
  // the largest static-transaction count in STAMP (15, Section III.D).
  SyntheticSpec s;
  s.name = "bayes";
  s.txns_per_node = 14;
  s.hot_blocks = 24;
  s.anchor_blocks = 2;
  s.shared_blocks = 2048;
  s.pre_think_min = 20;
  s.pre_think_max = 80;
  s.post_think_min = 20;
  s.post_think_max = 80;
  // learnStructure-style sites: long scans + scattered writes.
  for (int i = 0; i < 12; ++i) {
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 30;
    t.reads_max = 40;
    t.writes_min = 2;
    t.writes_max = 5;
    t.op_think_min = 8;
    t.op_think_max = 14;
    t.hot_read_frac = 0.9;
    t.hot_write_frac = 0.9;
    t.rmw_frac = 0.3;
    t.anchor_reads = 2;  // the shared network root, read by every learner
    s.txns.push_back(t);
  }
  // Three short bookkeeping sites.
  for (int i = 0; i < 3; ++i) {
    StaticTxnSpec t;
    t.weight = 0.5;
    t.reads_min = 2;
    t.reads_max = 6;
    t.writes_min = 1;
    t.writes_max = 3;
    t.hot_read_frac = 0.6;
    t.hot_write_frac = 0.6;
    s.txns.push_back(t);
  }
  return s;
}

SyntheticSpec intruder_spec() {
  // Network-intrusion detection: packets flow through shared queues whose
  // head/tail blocks are extremely hot; transactions are short-to-medium
  // and frequent (77.6% aborts).
  SyntheticSpec s;
  s.name = "intruder";
  s.txns_per_node = 96;
  s.hot_blocks = 12;
  s.anchor_blocks = 4;
  s.shared_blocks = 2048;
  s.pre_think_min = 5;
  s.pre_think_max = 25;
  s.post_think_min = 5;
  s.post_think_max = 25;
  {
    // Queue pop (decoder stage): read-modify-write of the queue head.
    StaticTxnSpec t;
    t.weight = 1.5;
    t.reads_min = 2;
    t.reads_max = 5;
    t.writes_min = 1;
    t.writes_max = 3;
    t.op_think_min = 2;
    t.op_think_max = 6;
    t.hot_read_frac = 0.9;
    t.hot_write_frac = 0.9;
    t.rmw_frac = 0.6;
    t.anchor_reads = 1;  // queue head
    t.anchor_writes = 1;
    s.txns.push_back(t);
  }
  {
    // Fragment reassembly: a few map lookups plus inserts.
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 8;
    t.reads_max = 12;
    t.writes_min = 1;
    t.writes_max = 2;
    t.op_think_min = 3;
    t.op_think_max = 8;
    t.hot_read_frac = 0.75;
    t.hot_write_frac = 0.8;
    t.rmw_frac = 0.3;
    t.anchor_reads = 1;  // flow-table root
    s.txns.push_back(t);
  }
  {
    // Queue push into the detector stage.
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 1;
    t.reads_max = 3;
    t.writes_min = 1;
    t.writes_max = 2;
    t.op_think_min = 1;
    t.op_think_max = 4;
    t.hot_read_frac = 0.85;
    t.hot_write_frac = 0.85;
    t.rmw_frac = 0.5;
    t.anchor_reads = 1;  // queue tail
    t.anchor_writes = 1;
    s.txns.push_back(t);
  }
  return s;
}

SyntheticSpec labyrinth_spec() {
  // Lee-routing: every transaction reads (essentially) the whole maze grid
  // and writes the cells of its routed path. Read-read sharing is total and
  // every write conflicts with every concurrent reader: 98.6% aborts and
  // the paper's worst directory-blocking case (many sharers per line).
  SyntheticSpec s;
  s.name = "labyrinth";
  s.txns_per_node = 8;
  s.hot_blocks = 72;  // the grid
  s.shared_blocks = 512;
  s.pre_think_min = 30;
  s.pre_think_max = 100;
  s.post_think_min = 30;
  s.post_think_max = 100;
  {
    // Route a path: scan the grid, then claim the path cells.
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 58;
    t.reads_max = 70;
    t.writes_min = 1;
    t.writes_max = 4;
    t.op_think_min = 2;
    t.op_think_max = 6;
    t.hot_read_frac = 1.0;
    t.hot_write_frac = 1.0;
    t.rmw_frac = 0.8;  // path cells were read during the scan
    t.scan_hot = true;
    s.txns.push_back(t);
  }
  {
    // Work-queue pop of the next path request.
    StaticTxnSpec t;
    t.weight = 0.6;
    t.reads_min = 1;
    t.reads_max = 2;
    t.writes_min = 1;
    t.writes_max = 1;
    t.hot_read_frac = 0.3;
    t.hot_write_frac = 0.3;
    t.rmw_frac = 0.5;
    t.anchor_reads = 1;  // path work-queue head
    t.anchor_writes = 1;
    s.txns.push_back(t);
  }
  return s;
}

SyntheticSpec yada_spec() {
  // Delaunay mesh refinement: medium-to-long cavity retriangulations over a
  // shared mesh; moderate-to-high contention (47.9%).
  SyntheticSpec s;
  s.name = "yada";
  s.txns_per_node = 32;
  s.hot_blocks = 160;
  s.anchor_blocks = 6;
  s.shared_blocks = 2048;
  s.pre_think_min = 10;
  s.pre_think_max = 60;
  s.post_think_min = 10;
  s.post_think_max = 60;
  {
    // Retriangulate a cavity.
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 16;
    t.reads_max = 24;
    t.writes_min = 2;
    t.writes_max = 4;
    t.op_think_min = 5;
    t.op_think_max = 10;
    t.hot_read_frac = 0.5;
    t.hot_write_frac = 0.5;
    t.rmw_frac = 0.4;
    t.anchor_reads = 1;  // the mesh root every cavity walk starts from
    s.txns.push_back(t);
  }
  {
    // Work-heap extraction.
    StaticTxnSpec t;
    t.weight = 0.12;
    t.reads_min = 2;
    t.reads_max = 4;
    t.writes_min = 1;
    t.writes_max = 1;
    t.hot_read_frac = 0.7;
    t.hot_write_frac = 0.7;
    t.rmw_frac = 0.5;
    t.anchor_reads = 1;  // work-heap root
    t.anchor_writes = 1;
    s.txns.push_back(t);
  }
  return s;
}

SyntheticSpec genome_spec() {
  // Gene sequencing: hashtable segment deduplication; large key space so
  // transactions almost never collide (1.3%).
  SyntheticSpec s;
  s.name = "genome";
  s.txns_per_node = 256;
  s.hot_blocks = 16;
  s.shared_blocks = 8192;
  s.pre_think_min = 5;
  s.pre_think_max = 30;
  s.post_think_min = 5;
  s.post_think_max = 30;
  {
    // Hashtable insert of a segment.
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 2;
    t.reads_max = 6;
    t.writes_min = 1;
    t.writes_max = 2;
    t.op_think_min = 2;
    t.op_think_max = 6;
    t.hot_read_frac = 0.02;
    t.hot_write_frac = 0.02;
    t.rmw_frac = 0.3;
    s.txns.push_back(t);
  }
  {
    // String-chaining phase.
    StaticTxnSpec t;
    t.weight = 0.7;
    t.reads_min = 3;
    t.reads_max = 8;
    t.writes_min = 1;
    t.writes_max = 2;
    t.hot_read_frac = 0.05;
    t.hot_write_frac = 0.03;
    t.rmw_frac = 0.4;
    s.txns.push_back(t);
  }
  return s;
}

SyntheticSpec kmeans_spec() {
  // K-means clustering: tiny read-modify-write updates of cluster centers;
  // low contention (7.4%) and the RMW predictor's best case.
  SyntheticSpec s;
  s.name = "kmeans";
  s.txns_per_node = 160;
  s.hot_blocks = 96;  // the cluster-center array
  s.shared_blocks = 4096;
  s.pre_think_min = 8;
  s.pre_think_max = 40;
  s.post_think_min = 8;
  s.post_think_max = 40;
  {
    // Update one center: load it, accumulate, store it back.
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 1;
    t.reads_max = 3;
    t.writes_min = 1;
    t.writes_max = 2;
    t.op_think_min = 1;
    t.op_think_max = 4;
    t.hot_read_frac = 0.8;
    t.hot_write_frac = 0.8;
    t.rmw_frac = 0.95;
    s.txns.push_back(t);
  }
  return s;
}

SyntheticSpec ssca2_spec() {
  // Scalable Synthetic Compact Applications graph kernel: tiny transactions
  // adding edges over a huge node array; almost no conflicts (0.3%).
  SyntheticSpec s;
  s.name = "ssca2";
  s.txns_per_node = 384;
  s.hot_blocks = 8;
  s.shared_blocks = 8192;
  s.pre_think_min = 4;
  s.pre_think_max = 20;
  s.post_think_min = 4;
  s.post_think_max = 20;
  {
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 1;
    t.reads_max = 2;
    t.writes_min = 1;
    t.writes_max = 2;
    t.op_think_min = 1;
    t.op_think_max = 3;
    t.hot_read_frac = 0.005;
    t.hot_write_frac = 0.005;
    t.rmw_frac = 0.9;
    s.txns.push_back(t);
  }
  return s;
}

SyntheticSpec vacation_spec() {
  // Travel-reservation system: mid-size transactions over customer/flight/
  // room tables with moderate contention (38%).
  SyntheticSpec s;
  s.name = "vacation";
  s.txns_per_node = 64;
  s.hot_blocks = 64;
  s.shared_blocks = 4096;
  s.pre_think_min = 10;
  s.pre_think_max = 40;
  s.post_think_min = 10;
  s.post_think_max = 40;
  {
    // Make a reservation: read several table entries, update a few.
    StaticTxnSpec t;
    t.weight = 1.0;
    t.reads_min = 8;
    t.reads_max = 12;
    t.writes_min = 2;
    t.writes_max = 4;
    t.op_think_min = 3;
    t.op_think_max = 7;
    t.hot_read_frac = 0.45;
    t.hot_write_frac = 0.45;
    t.rmw_frac = 0.4;
    s.txns.push_back(t);
  }
  {
    // Delete / update a customer record.
    StaticTxnSpec t;
    t.weight = 0.5;
    t.reads_min = 4;
    t.reads_max = 7;
    t.writes_min = 1;
    t.writes_max = 2;
    t.hot_read_frac = 0.4;
    t.hot_write_frac = 0.4;
    t.rmw_frac = 0.5;
    s.txns.push_back(t);
  }
  return s;
}

}  // namespace

SyntheticSpec make_spec(const std::string& name, double scale) {
  SyntheticSpec s;
  if (name == "bayes") s = bayes_spec();
  else if (name == "intruder") s = intruder_spec();
  else if (name == "labyrinth") s = labyrinth_spec();
  else if (name == "yada") s = yada_spec();
  else if (name == "genome") s = genome_spec();
  else if (name == "kmeans") s = kmeans_spec();
  else if (name == "ssca2") s = ssca2_spec();
  else if (name == "vacation") s = vacation_spec();
  else throw std::invalid_argument("unknown STAMP benchmark: " + name);
  s.txns_per_node = static_cast<std::uint32_t>(
      std::lround(s.txns_per_node * scale));
  if (s.txns_per_node == 0) s.txns_per_node = 1;
  return s;
}

std::unique_ptr<SyntheticWorkload> make(const std::string& name,
                                        std::uint32_t num_nodes,
                                        std::uint64_t seed, double scale) {
  return std::make_unique<SyntheticWorkload>(make_spec(name, scale),
                                             num_nodes, seed);
}

}  // namespace puno::workloads::stamp
