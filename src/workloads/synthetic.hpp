// Parameterized synthetic transactional workload generator.
//
// The paper evaluates on the 8 STAMP benchmarks (Table I). STAMP itself is
// C/SPARC application code driven through a full-system simulator; what the
// HTM and PUNO machinery observe, however, is only each benchmark's
// *contention structure*: how many static transactions there are, how long
// their dynamic instances run, how large their read and write sets are, and
// how those sets overlap across cores. This generator reproduces exactly
// that structure (see stamp.hpp for the per-benchmark profiles calibrated
// against Table I's abort rates), per the substitution policy in DESIGN.md.
//
// Address space layout (block granular):
//   [0, hot_blocks)                      -- the contended shared region
//   [hot, hot+shared_blocks)             -- the large low-contention region
//   [hot+shared + node*priv, ...)        -- per-node private data
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "workloads/workload.hpp"

namespace puno::workloads {

/// One static transaction site's behavioural profile.
struct StaticTxnSpec {
  double weight = 1.0;  ///< Relative frequency of this site.
  std::uint32_t reads_min = 1;
  std::uint32_t reads_max = 4;
  std::uint32_t writes_min = 0;
  std::uint32_t writes_max = 2;
  std::uint32_t op_think_min = 1;   ///< Compute cycles between ops.
  std::uint32_t op_think_max = 4;
  double hot_read_frac = 0.5;   ///< Reads that hit the hot region.
  double hot_write_frac = 0.5;  ///< Writes that hit the hot region.
  /// Fraction of writes that update a block read earlier in the same
  /// transaction (the read-modify-write idiom the RMW predictor targets).
  double rmw_frac = 0.0;
  /// Reads that sweep the hot region in order instead of sampling it
  /// randomly (labyrinth reads the whole maze grid).
  bool scan_hot = false;
  /// Anchor ops: accesses to one of the workload's few "anchor" blocks
  /// (queue heads, work-list roots, global counters) that *every* dynamic
  /// instance touches. These concentrate contention the way real STAMP hot
  /// structures do, and are what makes the directory's priority tracking
  /// predictive: a cached sharer of an anchor block almost always has it in
  /// its current transaction's read set.
  std::uint32_t anchor_reads = 0;
  std::uint32_t anchor_writes = 0;
};

struct SyntheticSpec {
  std::string name = "synthetic";
  std::uint32_t txns_per_node = 64;  ///< Committed-transaction quota per core
  std::uint32_t hot_blocks = 64;
  /// Number of distinct anchor blocks (the first blocks of the hot region);
  /// each transaction instance picks one and performs its anchor ops on it.
  std::uint32_t anchor_blocks = 1;
  std::uint32_t shared_blocks = 4096;
  std::uint32_t private_blocks_per_node = 256;
  std::uint32_t pre_think_min = 10;
  std::uint32_t pre_think_max = 50;
  std::uint32_t post_think_min = 10;
  std::uint32_t post_think_max = 50;
  /// Fraction of non-hot accesses that go to the private region (the rest
  /// sample the shared region).
  double private_frac = 0.3;
  std::uint32_t block_bytes = 64;
  std::vector<StaticTxnSpec> txns;
};

class SyntheticWorkload final : public Workload {
 public:
  SyntheticWorkload(SyntheticSpec spec, std::uint32_t num_nodes,
                    std::uint64_t seed);

  [[nodiscard]] const std::string& name() const override {
    return spec_.name;
  }
  [[nodiscard]] std::optional<TxnDesc> next(NodeId node) override;

  [[nodiscard]] const SyntheticSpec& spec() const noexcept { return spec_; }

 private:
  [[nodiscard]] Addr hot_addr(sim::Rng& rng) const;
  [[nodiscard]] Addr cold_addr(NodeId node, sim::Rng& rng) const;
  [[nodiscard]] std::size_t pick_site(sim::Rng& rng) const;

  SyntheticSpec spec_;
  std::uint32_t num_nodes_;
  std::vector<sim::Rng> rngs_;        // one stream per node
  std::vector<std::uint32_t> issued_;  // committed quota tracking per node
  double total_weight_ = 0.0;
};

}  // namespace puno::workloads
