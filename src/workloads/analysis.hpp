// Static workload characterization: drain a workload's descriptor streams
// (without simulating) and compute the structural properties that determine
// its contention behaviour — transaction sizes, read/write mix, footprint,
// and how concentrated the accesses are on hot blocks.
//
// Used by the calibration workflow (comparing profiles against STAMP's
// published characteristics) and by the Table I bench for reporting.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "workloads/workload.hpp"

namespace puno::workloads {

struct WorkloadProfile {
  std::string name;
  std::uint64_t total_txns = 0;
  std::uint32_t static_txns = 0;  ///< Distinct TX_BEGIN sites observed.

  double avg_ops_per_txn = 0.0;
  double avg_reads_per_txn = 0.0;
  double avg_writes_per_txn = 0.0;
  double max_ops_in_txn = 0.0;

  /// Distinct blocks touched anywhere (bytes = blocks * 64).
  std::uint64_t footprint_blocks = 0;

  /// Concentration: fraction of all *accesses* landing on the 16 most
  /// accessed blocks, and on the single hottest block. High values mean
  /// queue-head-style contention; low values mean scattered accesses.
  double top16_access_share = 0.0;
  double hottest_block_share = 0.0;

  /// Average number of distinct nodes that touch each block (sharing
  /// degree over the whole run; >1 means actual inter-node sharing).
  double avg_sharing_degree = 0.0;
  /// Fraction of blocks written by at least two different nodes —
  /// write-sharing is what generates transactional conflicts.
  double write_shared_fraction = 0.0;

  /// Mean think cycles accompanying each transaction (pre+post+per-op).
  double avg_think_per_txn = 0.0;
};

/// Drains up to `max_per_node` descriptors per node from `workload` and
/// aggregates the profile. The workload is consumed (next() is destructive);
/// construct a fresh instance for simulation afterwards.
[[nodiscard]] WorkloadProfile analyze(Workload& workload,
                                      std::uint32_t num_nodes,
                                      std::uint32_t max_per_node = 0);

/// Formats a one-line summary (name, txns, sizes, concentration).
[[nodiscard]] std::string summarize(const WorkloadProfile& p);

}  // namespace puno::workloads
