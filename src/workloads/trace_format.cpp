#include "workloads/trace_format.hpp"

#include <sstream>
#include <stdexcept>

namespace puno::workloads::trace_format {

void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + what);
}

std::uint64_t parse_kv(const std::string& token, const char* key,
                       std::size_t line) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) {
    fail(line, "expected '" + prefix + "...', got '" + token + "'");
  }
  const std::string value = token.substr(prefix.size());
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) {
      fail(line, "trailing garbage in '" + token + "'");
    }
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "non-numeric value in '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line, "value out of range in '" + token + "'");
  }
}

namespace {

// Bare numeric operand (node, sid, addr). Same validation as parse_kv's
// value, but the whole token is the number.
std::uint64_t parse_number(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(token, &used);
    if (used != token.size()) {
      fail(line, "trailing garbage in '" + token + "'");
    }
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "non-numeric operand '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line, "value out of range in '" + token + "'");
  }
}

}  // namespace

std::string first_token(const std::string& raw) {
  std::size_t end = raw.find('#');
  if (end == std::string::npos) end = raw.size();
  std::size_t b = 0;
  while (b < end && (raw[b] == ' ' || raw[b] == '\t')) ++b;
  std::size_t e = b;
  while (e < end && raw[e] != ' ' && raw[e] != '\t' && raw[e] != '\r') ++e;
  return raw.substr(b, e - b);
}

Line parse_line(const std::string& raw, std::size_t line) {
  std::string text = raw;
  const auto hash = text.find('#');
  if (hash != std::string::npos) text.resize(hash);

  Line out;
  std::istringstream ls(text);
  std::string tok;
  if (!(ls >> tok)) return out;  // kBlank

  if (tok == "trace-v1") {
    out.kind = Line::Kind::kHeader;
    if (!(ls >> out.name)) out.name = "trace";
    return out;
  }
  if (tok == "txn") {
    std::string node, sid, pre, post;
    if (!(ls >> node >> sid >> pre >> post)) {
      fail(line, "bad 'txn' line: expected 'txn <node> <id> pre=N post=N'");
    }
    out.kind = Line::Kind::kTxn;
    out.node = static_cast<NodeId>(parse_number(node, line));
    out.static_id = static_cast<StaticTxId>(parse_number(sid, line));
    out.pre = static_cast<std::uint32_t>(parse_kv(pre, "pre", line));
    out.post = static_cast<std::uint32_t>(parse_kv(post, "post", line));
    return out;
  }
  if (tok == "r" || tok == "w") {
    std::string addr, pc, think;
    if (!(ls >> addr >> pc >> think)) {
      fail(line, "bad op line: expected '" + tok + " <addr> pc=N think=N'");
    }
    out.kind = Line::Kind::kOp;
    out.op.is_store = tok == "w";
    out.op.addr = parse_number(addr, line);
    out.op.pc = parse_kv(pc, "pc", line);
    out.op.pre_think =
        static_cast<std::uint32_t>(parse_kv(think, "think", line));
    return out;
  }
  if (tok == "end") {
    out.kind = Line::Kind::kEnd;
    return out;
  }
  fail(line, "unknown directive '" + tok + "'");
}

}  // namespace puno::workloads::trace_format
