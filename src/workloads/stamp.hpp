// STAMP-like workload profiles (Table I).
//
// Each profile reproduces the contention structure of one STAMP benchmark:
// transaction granularity (ops per transaction and think time), read/write
// set sizes, the size of the contended region, and the access mix. The
// profiles are calibrated so the *baseline* scheme's abort rate lands near
// Table I's "Abort %" column; EXPERIMENTS.md records the achieved values.
//
// Characterization sources: Table I of the paper, plus the paper's prose
// (Section IV): bayes/labyrinth = long coarse transactions with huge
// read sets; intruder = hot queue structures; kmeans/ssca2 = tiny
// low-conflict RMW transactions; genome = mostly-disjoint hashtable inserts;
// vacation = mid-size reservation-table transactions; yada = mid-to-long
// cavity re-triangulation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/synthetic.hpp"

namespace puno::workloads::stamp {

/// Names of the 8 benchmarks in the paper's presentation order.
[[nodiscard]] const std::vector<std::string>& benchmark_names();

/// The high-contention subset the paper's headline numbers refer to
/// (Section IV: bayes, intruder, labyrinth, yada).
[[nodiscard]] bool is_high_contention(const std::string& name);

/// Table I "Input Parameters" string for a benchmark (reporting only).
[[nodiscard]] std::string input_parameters(const std::string& name);

/// Table I "Abort %" for a benchmark (the paper's measured baseline rate).
[[nodiscard]] double paper_abort_rate(const std::string& name);

/// Builds the named benchmark profile. `scale` multiplies the per-node
/// committed-transaction quota (1.0 = the default used by the benches).
[[nodiscard]] SyntheticSpec make_spec(const std::string& name,
                                      double scale = 1.0);

/// Convenience: construct the workload directly.
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make(
    const std::string& name, std::uint32_t num_nodes, std::uint64_t seed,
    double scale = 1.0);

}  // namespace puno::workloads::stamp
