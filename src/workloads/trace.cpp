#include "workloads/trace.hpp"

#include <fstream>
#include <stdexcept>

#include "workloads/trace_format.hpp"

namespace puno::workloads {

namespace fmt = trace_format;

TraceWorkload TraceWorkload::parse(std::istream& in) {
  TraceWorkload w;
  std::string line;
  std::size_t lineno = 0;

  bool header_seen = false;
  bool in_txn = false;
  NodeId cur_node = 0;
  TxnDesc cur;

  while (std::getline(in, line)) {
    ++lineno;
    const fmt::Line parsed = fmt::parse_line(line, lineno);
    switch (parsed.kind) {
      case fmt::Line::Kind::kBlank:
        break;
      case fmt::Line::Kind::kHeader:
        if (header_seen) fmt::fail(lineno, "duplicate 'trace-v1' header");
        w.name_ = parsed.name;
        header_seen = true;
        break;
      case fmt::Line::Kind::kTxn:
        if (!header_seen) fmt::fail(lineno, "missing 'trace-v1' header");
        if (in_txn) fmt::fail(lineno, "nested 'txn'");
        cur = TxnDesc{};
        cur.static_id = parsed.static_id;
        cur.pre_think = parsed.pre;
        cur.post_think = parsed.post;
        cur_node = parsed.node;
        in_txn = true;
        break;
      case fmt::Line::Kind::kOp:
        if (!header_seen) fmt::fail(lineno, "missing 'trace-v1' header");
        if (!in_txn) {
          fmt::fail(lineno, std::string("'") +
                                (parsed.op.is_store ? "w" : "r") +
                                "' outside a txn block");
        }
        cur.ops.push_back(parsed.op);
        break;
      case fmt::Line::Kind::kEnd:
        if (!header_seen) fmt::fail(lineno, "missing 'trace-v1' header");
        if (!in_txn) fmt::fail(lineno, "'end' outside a txn block");
        w.streams_[cur_node].push_back(std::move(cur));
        in_txn = false;
        break;
    }
  }
  if (in_txn) fmt::fail(lineno, "unterminated txn block");
  if (!header_seen) fmt::fail(lineno, "empty trace");
  return w;
}

TraceWorkload TraceWorkload::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse(in);
}

void TraceWorkload::record(Workload& source, std::uint32_t num_nodes,
                           std::ostream& out, std::uint32_t max_per_node) {
  out << "trace-v1 " << source.name() << "\n";
  for (NodeId n = 0; n < num_nodes; ++n) {
    std::uint32_t count = 0;
    // max_per_node == 0 means unlimited: drain until the source's own
    // next() runs dry for this node. Open-ended sources (infinite
    // generators) must be bounded by the caller in that case.
    while (auto d = source.next(n)) {
      out << "txn " << n << " " << d->static_id << " pre=" << d->pre_think
          << " post=" << d->post_think << "\n";
      for (const TxOp& op : d->ops) {
        out << (op.is_store ? "w " : "r ") << op.addr << " pc=" << op.pc
            << " think=" << op.pre_think << "\n";
      }
      out << "end\n";
      if (max_per_node != 0 && ++count >= max_per_node) break;
    }
  }
}

void TraceWorkload::write(std::ostream& out) const {
  out << "trace-v1 " << name_ << "\n";
  for (const auto& [node, stream] : streams_) {
    for (const TxnDesc& d : stream) {
      out << "txn " << node << " " << d.static_id << " pre=" << d.pre_think
          << " post=" << d.post_think << "\n";
      for (const TxOp& op : d.ops) {
        out << (op.is_store ? "w " : "r ") << op.addr << " pc=" << op.pc
            << " think=" << op.pre_think << "\n";
      }
      out << "end\n";
    }
  }
}

std::optional<TxnDesc> TraceWorkload::next(NodeId node) {
  const auto it = streams_.find(node);
  if (it == streams_.end()) return std::nullopt;
  std::size_t& pos = cursor_[node];
  if (pos >= it->second.size()) return std::nullopt;
  return it->second[pos++];
}

std::size_t TraceWorkload::total_txns() const {
  std::size_t total = 0;
  for (const auto& [_, stream] : streams_) total += stream.size();
  return total;
}

std::size_t TraceWorkload::txns_for(NodeId node) const {
  const auto it = streams_.find(node);
  return it == streams_.end() ? 0 : it->second.size();
}

}  // namespace puno::workloads
