#include "workloads/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace puno::workloads {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + what);
}

/// Parses "key=value" returning value; fails otherwise.
std::uint64_t parse_kv(const std::string& token, const char* key,
                       std::size_t line) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) {
    fail(line, "expected '" + prefix + "...', got '" + token + "'");
  }
  return std::stoull(token.substr(prefix.size()));
}

}  // namespace

TraceWorkload TraceWorkload::parse(std::istream& in) {
  TraceWorkload w;
  std::string line;
  std::size_t lineno = 0;

  bool header_seen = false;
  bool in_txn = false;
  NodeId cur_node = 0;
  TxnDesc cur;

  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank/comment line

    if (!header_seen) {
      if (tok != "trace-v1") fail(lineno, "missing 'trace-v1' header");
      if (!(ls >> w.name_)) w.name_ = "trace";
      header_seen = true;
      continue;
    }

    if (tok == "txn") {
      if (in_txn) fail(lineno, "nested 'txn'");
      std::uint64_t node = 0, sid = 0;
      std::string pre, post;
      if (!(ls >> node >> sid >> pre >> post)) fail(lineno, "bad 'txn' line");
      cur = TxnDesc{};
      cur.static_id = static_cast<StaticTxId>(sid);
      cur.pre_think = static_cast<std::uint32_t>(parse_kv(pre, "pre", lineno));
      cur.post_think =
          static_cast<std::uint32_t>(parse_kv(post, "post", lineno));
      cur_node = static_cast<NodeId>(node);
      in_txn = true;
    } else if (tok == "r" || tok == "w") {
      if (!in_txn) fail(lineno, "'" + tok + "' outside a txn block");
      std::uint64_t addr = 0;
      std::string pc, think;
      if (!(ls >> addr >> pc >> think)) fail(lineno, "bad op line");
      TxOp op;
      op.is_store = tok == "w";
      op.addr = addr;
      op.pc = parse_kv(pc, "pc", lineno);
      op.pre_think =
          static_cast<std::uint32_t>(parse_kv(think, "think", lineno));
      cur.ops.push_back(op);
    } else if (tok == "end") {
      if (!in_txn) fail(lineno, "'end' outside a txn block");
      w.streams_[cur_node].push_back(std::move(cur));
      in_txn = false;
    } else {
      fail(lineno, "unknown directive '" + tok + "'");
    }
  }
  if (in_txn) fail(lineno, "unterminated txn block");
  if (!header_seen) fail(lineno, "empty trace");
  return w;
}

TraceWorkload TraceWorkload::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse(in);
}

void TraceWorkload::record(Workload& source, std::uint32_t num_nodes,
                           std::ostream& out, std::uint32_t max_per_node) {
  out << "trace-v1 " << source.name() << "\n";
  for (NodeId n = 0; n < num_nodes; ++n) {
    std::uint32_t count = 0;
    while (auto d = source.next(n)) {
      out << "txn " << n << " " << d->static_id << " pre=" << d->pre_think
          << " post=" << d->post_think << "\n";
      for (const TxOp& op : d->ops) {
        out << (op.is_store ? "w " : "r ") << op.addr << " pc=" << op.pc
            << " think=" << op.pre_think << "\n";
      }
      out << "end\n";
      if (max_per_node != 0 && ++count >= max_per_node) break;
    }
  }
}

void TraceWorkload::write(std::ostream& out) const {
  out << "trace-v1 " << name_ << "\n";
  for (const auto& [node, stream] : streams_) {
    for (const TxnDesc& d : stream) {
      out << "txn " << node << " " << d.static_id << " pre=" << d.pre_think
          << " post=" << d.post_think << "\n";
      for (const TxOp& op : d.ops) {
        out << (op.is_store ? "w " : "r ") << op.addr << " pc=" << op.pc
            << " think=" << op.pre_think << "\n";
      }
      out << "end\n";
    }
  }
}

std::optional<TxnDesc> TraceWorkload::next(NodeId node) {
  const auto it = streams_.find(node);
  if (it == streams_.end()) return std::nullopt;
  std::size_t& pos = cursor_[node];
  if (pos >= it->second.size()) return std::nullopt;
  return it->second[pos++];
}

std::size_t TraceWorkload::total_txns() const {
  std::size_t total = 0;
  for (const auto& [_, stream] : streams_) total += stream.size();
  return total;
}

std::size_t TraceWorkload::txns_for(NodeId node) const {
  const auto it = streams_.find(node);
  return it == streams_.end() ? 0 : it->second.size();
}

}  // namespace puno::workloads
