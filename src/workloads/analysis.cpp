#include "workloads/analysis.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace puno::workloads {

WorkloadProfile analyze(Workload& workload, std::uint32_t num_nodes,
                        std::uint32_t max_per_node) {
  WorkloadProfile p;
  p.name = workload.name();

  std::set<StaticTxId> sites;
  std::unordered_map<BlockAddr, std::uint64_t> block_accesses;
  std::unordered_map<BlockAddr, std::unordered_set<NodeId>> block_nodes;
  std::unordered_map<BlockAddr, std::unordered_set<NodeId>> block_writers;

  std::uint64_t total_ops = 0, total_reads = 0, total_writes = 0;
  std::uint64_t total_think = 0;
  std::uint64_t max_ops = 0;

  for (NodeId n = 0; n < num_nodes; ++n) {
    std::uint32_t count = 0;
    while (auto d = workload.next(n)) {
      ++p.total_txns;
      sites.insert(d->static_id);
      max_ops = std::max<std::uint64_t>(max_ops, d->ops.size());
      total_ops += d->ops.size();
      total_think += d->pre_think + d->post_think;
      for (const TxOp& op : d->ops) {
        const BlockAddr block = op.addr & ~BlockAddr{63};
        total_think += op.pre_think;
        ++block_accesses[block];
        block_nodes[block].insert(n);
        if (op.is_store) {
          ++total_writes;
          block_writers[block].insert(n);
        } else {
          ++total_reads;
        }
      }
      if (max_per_node != 0 && ++count >= max_per_node) break;
    }
  }

  p.static_txns = static_cast<std::uint32_t>(sites.size());
  p.footprint_blocks = block_accesses.size();
  p.max_ops_in_txn = static_cast<double>(max_ops);
  if (p.total_txns > 0) {
    const auto txns = static_cast<double>(p.total_txns);
    p.avg_ops_per_txn = static_cast<double>(total_ops) / txns;
    p.avg_reads_per_txn = static_cast<double>(total_reads) / txns;
    p.avg_writes_per_txn = static_cast<double>(total_writes) / txns;
    p.avg_think_per_txn = static_cast<double>(total_think) / txns;
  }

  if (total_ops > 0 && !block_accesses.empty()) {
    std::vector<std::uint64_t> counts;
    counts.reserve(block_accesses.size());
    for (const auto& [_, c] : block_accesses) counts.push_back(c);
    std::sort(counts.begin(), counts.end(), std::greater<>());
    std::uint64_t top16 = 0;
    for (std::size_t i = 0; i < counts.size() && i < 16; ++i) {
      top16 += counts[i];
    }
    p.top16_access_share = static_cast<double>(top16) / total_ops;
    p.hottest_block_share = static_cast<double>(counts.front()) / total_ops;

    std::uint64_t degree_sum = 0;
    std::uint64_t write_shared = 0;
    for (const auto& [block, nodes] : block_nodes) {
      degree_sum += nodes.size();
    }
    for (const auto& [block, writers] : block_writers) {
      // Write-shared: written by >=2 nodes, or written by one and read by
      // others (the read-write sharing that GETX invalidations hit).
      if (writers.size() >= 2 ||
          (writers.size() == 1 && block_nodes[block].size() >= 2)) {
        ++write_shared;
      }
    }
    p.avg_sharing_degree =
        static_cast<double>(degree_sum) / block_nodes.size();
    p.write_shared_fraction =
        static_cast<double>(write_shared) / block_accesses.size();
  }
  return p;
}

std::string summarize(const WorkloadProfile& p) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed;
  os << p.name << ": " << p.total_txns << " txns across " << p.static_txns
     << " sites, " << p.avg_ops_per_txn << " ops/txn ("
     << p.avg_reads_per_txn << "r/" << p.avg_writes_per_txn << "w), "
     << "footprint " << p.footprint_blocks << " blocks, top16 share "
     << p.top16_access_share * 100 << "%, sharing degree "
     << p.avg_sharing_degree;
  return os.str();
}

}  // namespace puno::workloads
