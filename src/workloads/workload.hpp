// Workload abstraction: a stream of transaction descriptors per core.
//
// The simulator's cores execute transaction *descriptors*: a static
// transaction id (the TX_BEGIN/TX_END site), think-time paddings, and a
// sequence of transactional loads/stores with per-op think time. This is the
// observable surface a trace-driven HTM study needs — the conflict-detection
// machinery only ever sees addresses, timestamps and timing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace puno::workloads {

struct TxOp {
  bool is_store = false;
  Addr addr = 0;
  std::uint64_t pc = 0;       ///< Static instruction id (RMW predictor key).
  std::uint32_t pre_think = 0;  ///< Compute cycles before issuing this op.
};

struct TxnDesc {
  StaticTxId static_id = 0;
  std::uint32_t pre_think = 0;   ///< Non-transactional cycles before begin.
  std::uint32_t post_think = 0;  ///< Non-transactional cycles after commit.
  std::vector<TxOp> ops;
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Produces the next transaction for core `node`, or nullopt when that
  /// core's share of the workload is exhausted. Called again only after the
  /// previous transaction *committed* (aborted attempts re-run the same
  /// descriptor, as re-executing a transaction replays the same code).
  [[nodiscard]] virtual std::optional<TxnDesc> next(NodeId node) = 0;
};

}  // namespace puno::workloads
