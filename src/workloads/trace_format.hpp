// Token-level parsing for the trace-v1 format, shared by the in-memory
// reader (TraceWorkload::parse) and the streaming reader
// (traffic::StreamTraceWorkload) so the two can never drift on syntax or
// error reporting. Every diagnostic carries the line number and the
// offending token.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/workload.hpp"

namespace puno::workloads::trace_format {

/// One parsed trace line. `kind` says which of the payload fields are live.
struct Line {
  enum class Kind : std::uint8_t {
    kBlank,   ///< Empty or comment-only.
    kHeader,  ///< "trace-v1 <name>"; `name` set.
    kTxn,     ///< "txn <node> <sid> pre=N post=N"; node/sid/pre/post set.
    kOp,      ///< "r|w <addr> pc=N think=N"; `op` set.
    kEnd,     ///< "end".
  };

  Kind kind = Kind::kBlank;
  std::string name;           // kHeader
  NodeId node = 0;            // kTxn
  StaticTxId static_id = 0;   // kTxn
  std::uint32_t pre = 0;      // kTxn
  std::uint32_t post = 0;     // kTxn
  TxOp op;                    // kOp
};

/// Throws std::runtime_error("trace parse error at line <line>: <what>").
[[noreturn]] void fail(std::size_t line, const std::string& what);

/// Parses "key=value" and returns the value. Diagnoses a wrong key, a
/// non-numeric value and an out-of-range value, always quoting the token.
[[nodiscard]] std::uint64_t parse_kv(const std::string& token,
                                     const char* key, std::size_t line);

/// Parses one raw trace line ('#' comments stripped here). Throws via
/// fail() on malformed input. Structural rules (header-first, no nested
/// txn, ops inside blocks) belong to the caller's state machine — this
/// function only classifies and decodes a single line.
[[nodiscard]] Line parse_line(const std::string& raw, std::size_t line);

/// The first whitespace-delimited token of `raw` after comment stripping,
/// or "" for a blank line. Cheap classification for cursors skipping other
/// nodes' blocks without paying a full parse.
[[nodiscard]] std::string first_token(const std::string& raw);

}  // namespace puno::workloads::trace_format
