// Trace-driven workloads: record any workload's transaction stream to a
// plain-text trace and replay it later, bit-identically.
//
// Format (line oriented, '#' comments):
//
//   trace-v1 <name>
//   txn <node> <static_id> pre=<cycles> post=<cycles>
//   r <addr> pc=<id> think=<cycles>
//   w <addr> pc=<id> think=<cycles>
//   end
//
// Each `txn ... end` block appends one descriptor to `node`'s stream; cores
// consume their streams in file order. Traces make experiments portable
// across simulator versions (the synthetic generators may be retuned;
// a trace never changes) and allow replaying streams captured elsewhere.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace puno::workloads {

class TraceWorkload final : public Workload {
 public:
  /// Parses a trace from a stream. Throws std::runtime_error on malformed
  /// input, with the line number and the offending token in the message.
  static TraceWorkload parse(std::istream& in);
  /// Convenience: parse a file.
  static TraceWorkload load(const std::string& path);

  /// Serializes any workload by draining it (next() is destructive).
  /// `max_per_node` caps the descriptors written per node; 0 (the default)
  /// means *unlimited* — drain each node until next() returns nullopt, so
  /// the caller must bound open-ended sources itself.
  static void record(Workload& source, std::uint32_t num_nodes,
                     std::ostream& out, std::uint32_t max_per_node = 0);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::optional<TxnDesc> next(NodeId node) override;

  /// Writes this trace back out (round-trip identical).
  void write(std::ostream& out) const;

  [[nodiscard]] std::size_t total_txns() const;
  [[nodiscard]] std::size_t txns_for(NodeId node) const;

  TraceWorkload() = default;

 private:
  std::string name_ = "trace";
  std::map<NodeId, std::vector<TxnDesc>> streams_;
  std::map<NodeId, std::size_t> cursor_;
};

}  // namespace puno::workloads
