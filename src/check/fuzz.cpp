#include "check/fuzz.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "arch/cmp.hpp"
#include "check/invariant_checker.hpp"
#include "metrics/stats_io.hpp"
#include "sim/rng.hpp"
#include "traffic/engine.hpp"
#include "traffic/registry.hpp"

namespace puno::check {

namespace {

/// Decorrelated rng streams for the halves of a fuzz case.
constexpr std::uint64_t kSpecStream = 0xF022'5EED;
constexpr std::uint64_t kConfigStream = 0xC0F1'65EED;
constexpr std::uint64_t kTrafficStream = 0x70AF'F1C5;

[[nodiscard]] double uniform(sim::Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.next_double();
}

}  // namespace

const char* scheme_flag(Scheme s) noexcept {
  // CLI spellings straight from the scheme table, so the fuzzer's repro
  // lines cover every registered scheme automatically.
  switch (s) {
#define PUNO_SCHEME_FLAG(name, canonical, alias) \
  case Scheme::name:                             \
    return alias;
    PUNO_SCHEME_LIST(PUNO_SCHEME_FLAG)
#undef PUNO_SCHEME_FLAG
  }
  return "?";
}

workloads::SyntheticSpec make_fuzz_spec(std::uint64_t seed) {
  sim::Rng rng(seed, kSpecStream);
  workloads::SyntheticSpec spec;
  std::ostringstream name;
  name << "fuzz-" << seed;
  spec.name = name.str();
  spec.txns_per_node = static_cast<std::uint32_t>(rng.next_range(8, 32));
  // Small hot regions concentrate contention; that is where the protocol's
  // multicast/unicast and NACK/abort machinery actually gets exercised.
  spec.hot_blocks = static_cast<std::uint32_t>(rng.next_range(4, 32));
  spec.anchor_blocks = static_cast<std::uint32_t>(
      rng.next_range(1, std::min<std::uint64_t>(4, spec.hot_blocks)));
  spec.shared_blocks = static_cast<std::uint32_t>(rng.next_range(256, 1024));
  spec.private_blocks_per_node =
      static_cast<std::uint32_t>(rng.next_range(64, 256));
  spec.pre_think_min = static_cast<std::uint32_t>(rng.next_range(2, 10));
  spec.pre_think_max =
      spec.pre_think_min + static_cast<std::uint32_t>(rng.next_range(0, 20));
  spec.post_think_min = static_cast<std::uint32_t>(rng.next_range(2, 10));
  spec.post_think_max =
      spec.post_think_min + static_cast<std::uint32_t>(rng.next_range(0, 20));
  spec.private_frac = uniform(rng, 0.1, 0.5);

  const auto num_sites = rng.next_range(1, 3);
  for (std::uint64_t s = 0; s < num_sites; ++s) {
    workloads::StaticTxnSpec site;
    site.weight = uniform(rng, 0.5, 2.0);
    site.reads_min = static_cast<std::uint32_t>(rng.next_range(1, 3));
    site.reads_max =
        site.reads_min + static_cast<std::uint32_t>(rng.next_range(0, 4));
    site.writes_min = static_cast<std::uint32_t>(rng.next_range(0, 2));
    site.writes_max =
        site.writes_min + static_cast<std::uint32_t>(rng.next_range(0, 3));
    site.op_think_min = static_cast<std::uint32_t>(rng.next_range(1, 3));
    site.op_think_max =
        site.op_think_min + static_cast<std::uint32_t>(rng.next_range(0, 4));
    site.hot_read_frac = uniform(rng, 0.2, 0.9);
    site.hot_write_frac = uniform(rng, 0.2, 0.9);
    site.rmw_frac = uniform(rng, 0.0, 0.5);
    site.anchor_reads = static_cast<std::uint32_t>(rng.next_range(0, 2));
    site.anchor_writes = static_cast<std::uint32_t>(rng.next_range(0, 1));
    spec.txns.push_back(site);
  }
  return spec;
}

SystemConfig make_fuzz_config(std::uint64_t seed, Scheme scheme) {
  sim::Rng rng(seed, kConfigStream);
  SystemConfig cfg;
  // 2x2 meshes hammer the same lines hard; 4x4 is the paper's machine.
  cfg.noc.mesh_width = rng.next_bool(0.5) ? 2 : 4;
  cfg.num_nodes = cfg.noc.mesh_width * cfg.noc.mesh_width;
  cfg.scheme = scheme;
  cfg.seed = seed;
  return cfg;
}

std::string fuzz_traffic_kernel(std::uint64_t seed) {
  sim::Rng rng(seed, kTrafficStream);
  const auto kind =
      static_cast<traffic::KernelKind>(rng.next_range(0, 3));
  return std::string("traffic-") + traffic::to_string(kind);
}

SystemConfig make_fuzz_traffic_config(std::uint64_t seed, Scheme scheme) {
  SystemConfig cfg = make_fuzz_config(seed, scheme);
  sim::Rng rng(seed, kTrafficStream);
  rng.next_range(0, 3);  // keep in lockstep with fuzz_traffic_kernel
  TrafficConfig& t = cfg.traffic;
  t.arrivals_per_node = static_cast<std::uint32_t>(rng.next_range(8, 32));
  t.keys = rng.next_range(256, 4096);
  if (rng.next_bool(0.3)) {
    // Hot-set mode: a handful of keys soak up most accesses.
    t.hot_keys = static_cast<std::uint32_t>(rng.next_range(4, 32));
    t.hot_frac = uniform(rng, 0.6, 0.95);
  } else {
    t.zipf_theta = uniform(rng, 0.0, 1.2);
  }
  t.phase_cycles = rng.next_bool(0.5) ? 0 : rng.next_range(5'000, 20'000);
  t.arrival = static_cast<ArrivalKind>(rng.next_range(0, 2));
  t.rate_per_kcycle = static_cast<std::uint32_t>(rng.next_range(10, 60));
  t.burst_period = rng.next_range(5'000, 50'000);
  t.diurnal_period = rng.next_range(20'000, 100'000);
  t.placement = static_cast<PlacementMode>(rng.next_range(0, 2));
  t.keys_per_block = static_cast<std::uint32_t>(rng.next_range(1, 8));
  t.update_frac = uniform(rng, 0.0, 1.0);
  t.counter_blocks = static_cast<std::uint32_t>(rng.next_range(2, 16));
  t.op_think_min = static_cast<std::uint32_t>(rng.next_range(1, 3));
  t.op_think_max =
      t.op_think_min + static_cast<std::uint32_t>(rng.next_range(0, 4));
  // No load shedding under fuzz: a drop consumes an arrival without a
  // commit, so per-node commit counts would diverge across schemes and the
  // differential oracle would misfire.
  t.queue_capacity = t.arrivals_per_node;
  return cfg;
}

RunOutcome run_one(const SystemConfig& cfg, workloads::Workload& workload,
                   const CheckerConfig& checker_cfg, Cycle max_cycles) {
  arch::Cmp cmp(cfg, workload);
  if (auto* open = dynamic_cast<traffic::OpenLoopWorkload*>(&workload)) {
    open->attach(cmp.kernel());
  }
  const auto checker = InvariantChecker::attach(cmp, checker_cfg);

  RunOutcome out;
  out.completed = cmp.run(max_cycles);
  // A final sweep regardless of stride alignment, so the settled end state
  // is always verified.
  checker->check_now(cmp.kernel().now());

  out.cycles = cmp.kernel().now();
  for (NodeId i = 0; i < cfg.num_nodes; ++i) {
    out.commits.push_back(cmp.core(i).committed());
  }
  out.total_committed = cmp.total_committed();
  out.falsely_aborted =
      cmp.kernel().stats().counter("htm.falsely_aborted_txns").value();
  out.violations = checker->violations();
  std::ostringstream csv;
  metrics::write_stats_csv(cmp.kernel().stats(), csv);
  out.stats_csv = csv.str();
  return out;
}

RunOutcome run_one(const SystemConfig& cfg,
                   const workloads::SyntheticSpec& spec,
                   const CheckerConfig& checker_cfg, Cycle max_cycles) {
  workloads::SyntheticWorkload workload(spec, cfg.num_nodes, cfg.seed);
  return run_one(cfg, workload, checker_cfg, max_cycles);
}

std::string repro_line(std::uint64_t seed, Scheme scheme, bool traffic) {
  std::ostringstream os;
  os << "punofuzz " << (traffic ? "--traffic " : "") << "--seed-start "
     << seed << " --seeds 1 --scheme " << scheme_flag(scheme)
     << " --stride 1 --invariants all";
  return os.str();
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport report;
  for (std::uint32_t k = 0; k < opts.num_seeds; ++k) {
    const std::uint64_t seed = opts.seed_start + k;
    const workloads::SyntheticSpec spec =
        opts.traffic ? workloads::SyntheticSpec{} : make_fuzz_spec(seed);
    const std::string kernel_name =
        opts.traffic ? fuzz_traffic_kernel(seed) : std::string();

    // One fresh workload per simulation — both workload families carry
    // per-run mutable state (rng cursors, queues).
    const auto run_case = [&](const SystemConfig& cfg,
                              const CheckerConfig& checker, Cycle cap) {
      if (!opts.traffic) return run_one(cfg, spec, checker, cap);
      const auto workload = traffic::registry::make(kernel_name, cfg);
      return run_one(cfg, *workload, checker, cap);
    };

    bool have_baseline = false;
    RunOutcome baseline_out;
    // Every non-baseline outcome, kept for the differential oracle below.
    std::vector<std::pair<Scheme, RunOutcome>> others;

    for (const Scheme scheme : opts.schemes) {
      const SystemConfig cfg = opts.traffic
                                   ? make_fuzz_traffic_config(seed, scheme)
                                   : make_fuzz_config(seed, scheme);
      RunOutcome out = run_case(cfg, opts.checker, opts.max_cycles);
      ++report.runs;

      if (!out.violations.empty() && opts.checker.stride > 1) {
        // Shrink: re-run at stride 1, stopping just past the coarse hit, to
        // name the exact first failing cycle in the report.
        CheckerConfig fine = opts.checker;
        fine.stride = 1;
        const Cycle cap = out.violations.front().cycle + 1;
        RunOutcome shrunk = run_case(cfg, fine, cap);
        if (!shrunk.violations.empty()) {
          out.violations = std::move(shrunk.violations);
        }
      }

      if (!out.violations.empty()) {
        ++report.violation_runs;
        report.repro_lines.push_back(repro_line(seed, scheme, opts.traffic));
        if (opts.log != nullptr) {
          *opts.log << "FAIL seed " << seed << " scheme "
                    << to_string(scheme) << ": "
                    << format_violation(out.violations.front())
                    << "\n  repro: " << report.repro_lines.back() << "\n";
        }
      } else if (!out.completed) {
        ++report.incomplete_runs;
        report.repro_lines.push_back(repro_line(seed, scheme, opts.traffic));
        if (opts.log != nullptr) {
          *opts.log << "FAIL seed " << seed << " scheme "
                    << to_string(scheme) << ": did not drain within "
                    << opts.max_cycles << " cycles\n  repro: "
                    << report.repro_lines.back() << "\n";
        }
      } else if (opts.log != nullptr) {
        *opts.log << "ok   seed " << seed << " scheme " << to_string(scheme)
                  << ": " << out.total_committed << " commits in "
                  << out.cycles << " cycles\n";
      }

      if (scheme == Scheme::kBaseline) {
        report.baseline_falsely_aborted += out.falsely_aborted;
        baseline_out = std::move(out);
        have_baseline = true;
      } else {
        if (scheme == Scheme::kPuno) {
          report.puno_falsely_aborted += out.falsely_aborted;
        }
        others.emplace_back(scheme, std::move(out));
      }
    }

    // Differential oracle: contention management must not change *what*
    // commits, only when — every scheme that drains the workload must show
    // baseline's per-node commit counts.
    if (opts.differential && have_baseline && baseline_out.completed) {
      for (const auto& [scheme, out] : others) {
        if (!out.completed || out.commits == baseline_out.commits) continue;
        ++report.differential_failures;
        report.repro_lines.push_back(repro_line(seed, scheme, opts.traffic));
        if (opts.log != nullptr) {
          *opts.log << "FAIL seed " << seed << ": baseline and "
                    << to_string(scheme)
                    << " committed different per-node counts\n  repro: "
                    << report.repro_lines.back() << "\n";
        }
      }
    }
  }
  return report;
}

}  // namespace puno::check
