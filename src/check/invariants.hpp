// Protocol invariants verified by the runtime oracle (src/check).
//
// Each invariant is a cross-layer consistency property that must hold at
// every post-cycle boundary — after all tickables and events of a cycle have
// run, the machine is in an architecturally meaningful state and anything
// still "in motion" is explicitly accounted (busy directory entries, the
// writeback buffer, flits riding links as scheduled events). The checker
// never fires on legal transient protocol windows; see docs/INVARIANTS.md
// for the per-invariant transient analysis and the paper sections each
// property is grounded in.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace puno::check {

enum class InvariantId : std::uint8_t {
  /// A directory entry is internally consistent with its own state tag:
  /// kI has no sharers and no owner, kS has sharers and no owner, kEM has
  /// an owner and no sharers; the busy-entry count matches the entry flags.
  kDirState,
  /// Directory and L1 states agree: an L1 holding E/M is the registered
  /// owner (or the entry is busy / a writeback is in flight); a non-busy
  /// kEM entry's owner actually holds the line; an L1 holding S appears in
  /// the (stale-inclusive) sharer list.
  kDirL1,
  /// The PUNO unicast-destination pointer names a current sharer (kS), the
  /// owner (kEM), or nobody (kI) — a stale UD is exactly the mismatch
  /// pathology the paper's Section III.B prediction machinery must avoid.
  kUdPointer,
  /// Every block in a live transaction's read set is present (pinned) in
  /// its L1, and every write-set block is present in M — the eager HTM's
  /// conflict detection is only sound while the sets stay cached.
  kTxnPin,
  /// NoC flit conservation: flits injected == flits ejected + flits riding
  /// links + flits buffered in routers, every cycle; and when the mesh is
  /// idle, every protocol message handed to send() has been delivered.
  kNocConservation,
};

inline constexpr InvariantId kAllInvariants[] = {
    InvariantId::kDirState,   InvariantId::kDirL1,
    InvariantId::kUdPointer,  InvariantId::kTxnPin,
    InvariantId::kNocConservation,
};

[[nodiscard]] constexpr const char* to_string(InvariantId id) noexcept {
  switch (id) {
    case InvariantId::kDirState: return "DIR-STATE";
    case InvariantId::kDirL1: return "DIR-L1";
    case InvariantId::kUdPointer: return "UD-POINTER";
    case InvariantId::kTxnPin: return "TXN-PIN";
    case InvariantId::kNocConservation: return "NOC-CONSERVATION";
  }
  return "?";
}

/// One detected invariant violation, with enough context to name the cycle,
/// node and block in a repro report.
struct Violation {
  InvariantId id = InvariantId::kDirState;
  Cycle cycle = 0;
  NodeId node = kInvalidNode;   ///< Node the violating state lives on.
  BlockAddr addr = 0;           ///< Block involved (0 for global properties).
  std::string detail;           ///< Human-readable specifics.
};

/// "[UD-POINTER] cycle 1234 node 3 block 0x1c0: ..." — the line test
/// failures and fuzz reports print.
[[nodiscard]] std::string format_violation(const Violation& v);

/// Which invariants to run and how often.
struct CheckerConfig {
  /// Check every `stride` cycles (1 = every cycle). The fuzz driver runs
  /// with a coarse stride for speed and re-runs failures at stride 1 to
  /// pin down the first failing cycle.
  std::uint32_t stride = 16;
  bool dir_state = true;
  bool dir_l1 = true;
  bool ud_pointer = true;
  bool txn_pin = true;
  bool noc_conservation = true;
  /// Stop recording after this many violations (the first is what matters;
  /// a corrupted machine can emit thousands per cycle).
  std::size_t max_violations = 16;

  [[nodiscard]] bool enabled(InvariantId id) const noexcept {
    switch (id) {
      case InvariantId::kDirState: return dir_state;
      case InvariantId::kDirL1: return dir_l1;
      case InvariantId::kUdPointer: return ud_pointer;
      case InvariantId::kTxnPin: return txn_pin;
      case InvariantId::kNocConservation: return noc_conservation;
    }
    return false;
  }
  void set_enabled(InvariantId id, bool on) noexcept {
    switch (id) {
      case InvariantId::kDirState: dir_state = on; break;
      case InvariantId::kDirL1: dir_l1 = on; break;
      case InvariantId::kUdPointer: ud_pointer = on; break;
      case InvariantId::kTxnPin: txn_pin = on; break;
      case InvariantId::kNocConservation: noc_conservation = on; break;
    }
  }
  [[nodiscard]] static CheckerConfig none() noexcept {
    CheckerConfig c;
    for (InvariantId id : kAllInvariants) c.set_enabled(id, false);
    return c;
  }
};

}  // namespace puno::check
