// Runtime protocol-invariant oracle.
//
// The checker watches the directory, L1, HTM and NoC layers through their
// read-only inspection accessors and re-verifies the cross-layer invariants
// of invariants.hpp at every post-cycle boundary (subject to the configured
// stride). It installs itself as a sim::Kernel post-cycle hook, so it is an
// observer by construction: it cannot perturb simulated timing, and a run
// with the checker attached is cycle-identical to one without.
//
// Always available, off by default: production experiments never pay for it;
// tests and the fuzz driver attach it with InvariantChecker::attach(cmp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/invariants.hpp"
#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "htm/txn_context.hpp"
#include "noc/mesh.hpp"
#include "sim/kernel.hpp"

namespace puno::arch {
class Cmp;
}

namespace puno::check {

class InvariantChecker {
 public:
  explicit InvariantChecker(CheckerConfig cfg = {});

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // --- Wiring (once, before the simulation runs) ---

  /// Watches one home directory. Call once per node, in node order.
  void watch_directory(const coherence::Directory& dir);
  /// Watches node `n`'s L1. Call once per node, in node order.
  void watch_l1(const coherence::L1Controller& l1);
  /// Watches node `n`'s transaction context.
  void watch_txn(const htm::TxnContext& txn);
  /// Watches the mesh; `stats` supplies the flit injection/ejection counters.
  void watch_mesh(const noc::Mesh& mesh, sim::StatsRegistry& stats);

  /// Registers the post-cycle hook. The checker must outlive the kernel run.
  void install(sim::Kernel& kernel);

  /// Builds a checker already wired to every layer of `cmp` and installed in
  /// its kernel. The returned checker must outlive cmp.run().
  [[nodiscard]] static std::unique_ptr<InvariantChecker> attach(
      arch::Cmp& cmp, CheckerConfig cfg = {});

  // --- Results ---

  /// Runs every enabled invariant immediately (also what the post-cycle hook
  /// calls on stride boundaries). Safe to call from tests at any quiesced
  /// point.
  void check_now(Cycle now);

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool clean() const noexcept { return violations_.empty(); }
  /// Total number of post-cycle sweeps executed (stride accounting).
  [[nodiscard]] std::uint64_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] const CheckerConfig& config() const noexcept { return cfg_; }

 private:
  void report(InvariantId id, Cycle cycle, NodeId node, BlockAddr addr,
              std::string detail);
  [[nodiscard]] bool full() const noexcept {
    return violations_.size() >= cfg_.max_violations;
  }

  void check_dir_state(Cycle now);
  void check_dir_l1(Cycle now);
  void check_ud_pointer(Cycle now);
  void check_txn_pin(Cycle now);
  void check_noc_conservation(Cycle now);

  CheckerConfig cfg_;
  std::vector<const coherence::Directory*> dirs_;
  std::vector<const coherence::L1Controller*> l1s_;
  std::vector<const htm::TxnContext*> txns_;
  const noc::Mesh* mesh_ = nullptr;
  const sim::Counter* flits_sent_ = nullptr;
  const sim::Counter* flits_ejected_ = nullptr;

  std::vector<Violation> violations_;
  std::uint64_t sweeps_ = 0;
};

}  // namespace puno::check
