#include "check/invariant_checker.hpp"

#include <sstream>

#include "arch/cmp.hpp"
#include "coherence/message.hpp"

namespace puno::check {

namespace {

using coherence::Directory;
using coherence::L1Controller;

[[nodiscard]] const char* dir_state_name(Directory::DirState s) {
  switch (s) {
    case Directory::DirState::kI: return "I";
    case Directory::DirState::kS: return "S";
    case Directory::DirState::kEM: return "EM";
  }
  return "?";
}

[[nodiscard]] const char* l1_state_name(L1Controller::LineState s) {
  switch (s) {
    case L1Controller::LineState::kS: return "S";
    case L1Controller::LineState::kE: return "E";
    case L1Controller::LineState::kM: return "M";
  }
  return "?";
}

}  // namespace

std::string format_violation(const Violation& v) {
  std::ostringstream os;
  os << "[" << to_string(v.id) << "] cycle " << v.cycle;
  if (v.node != kInvalidNode) os << " node " << v.node;
  if (v.addr != 0) os << " block 0x" << std::hex << v.addr << std::dec;
  os << ": " << v.detail;
  return os.str();
}

InvariantChecker::InvariantChecker(CheckerConfig cfg) : cfg_(cfg) {
  if (cfg_.stride == 0) cfg_.stride = 1;
}

void InvariantChecker::watch_directory(const Directory& dir) {
  dirs_.push_back(&dir);
}

void InvariantChecker::watch_l1(const L1Controller& l1) {
  l1s_.push_back(&l1);
}

void InvariantChecker::watch_txn(const htm::TxnContext& txn) {
  txns_.push_back(&txn);
}

void InvariantChecker::watch_mesh(const noc::Mesh& mesh,
                                  sim::StatsRegistry& stats) {
  mesh_ = &mesh;
  flits_sent_ = &stats.counter("noc.flits_sent");
  flits_ejected_ = &stats.counter("noc.flits_ejected");
}

void InvariantChecker::install(sim::Kernel& kernel) {
  kernel.add_post_cycle_hook(
      [this](Cycle now) {
        if (now % cfg_.stride == 0) check_now(now);
      },
      "check.invariants");
}

std::unique_ptr<InvariantChecker> InvariantChecker::attach(arch::Cmp& cmp,
                                                           CheckerConfig cfg) {
  auto checker = std::make_unique<InvariantChecker>(cfg);
  const auto n = static_cast<NodeId>(cmp.config().num_nodes);
  for (NodeId i = 0; i < n; ++i) {
    checker->watch_directory(cmp.directory(i));
    checker->watch_l1(cmp.l1(i));
    checker->watch_txn(cmp.txn(i));
  }
  checker->watch_mesh(cmp.mesh(), cmp.kernel().stats());
  checker->install(cmp.kernel());
  return checker;
}

void InvariantChecker::report(InvariantId id, Cycle cycle, NodeId node,
                              BlockAddr addr, std::string detail) {
  if (full()) return;
  violations_.push_back(Violation{id, cycle, node, addr, std::move(detail)});
}

void InvariantChecker::check_now(Cycle now) {
  ++sweeps_;
  if (full()) return;
  if (cfg_.dir_state) check_dir_state(now);
  if (cfg_.dir_l1) check_dir_l1(now);
  if (cfg_.ud_pointer) check_ud_pointer(now);
  if (cfg_.txn_pin) check_txn_pin(now);
  if (cfg_.noc_conservation) check_noc_conservation(now);
}

// DIR-STATE: every entry is self-consistent with its state tag, and the
// directory's cached busy-entry count agrees with the entry flags.
void InvariantChecker::check_dir_state(Cycle now) {
  for (const Directory* dir : dirs_) {
    const NodeId home = dir->node();
    const std::uint32_t n = static_cast<std::uint32_t>(dirs_.size());
    std::size_t busy_seen = 0;
    dir->for_each_entry([&](BlockAddr addr, const Directory::Entry& e) {
      if (e.busy) ++busy_seen;
      switch (e.state) {
        case Directory::DirState::kI:
          if (!e.sharers.empty() || e.owner != kInvalidNode) {
            report(InvariantId::kDirState, now, home, addr,
                   "state I but sharers/owner nonempty");
          }
          break;
        case Directory::DirState::kS:
          if (e.sharers.empty()) {
            report(InvariantId::kDirState, now, home, addr,
                   "state S with empty sharer list");
          }
          if (e.owner != kInvalidNode) {
            report(InvariantId::kDirState, now, home, addr,
                   "state S with an owner registered");
          }
          break;
        case Directory::DirState::kEM:
          if (e.owner == kInvalidNode || e.owner >= n) {
            report(InvariantId::kDirState, now, home, addr,
                   "state EM without a valid owner");
          }
          if (!e.sharers.empty()) {
            report(InvariantId::kDirState, now, home, addr,
                   "state EM with a nonempty sharer list");
          }
          break;
      }
      // Note: an idle entry MAY hold queued requests for one cycle — after
      // an UNBLOCK, maybe_service_next() schedules the next service with a
      // 1-cycle delay — so pending-queue occupancy is not checked here.
    });
    if (busy_seen != dir->pending_services()) {
      std::ostringstream os;
      os << "busy-entry count " << dir->pending_services()
         << " != " << busy_seen << " busy flags";
      report(InvariantId::kDirState, now, home, 0, os.str());
    }
  }
}

// DIR-L1: ownership/sharing agreement between the home directories and the
// private L1s. Busy entries are mid-transition and excluded; a writeback in
// flight keeps answering forwards from the L1's writeback buffer and is
// treated as continued ownership.
void InvariantChecker::check_dir_l1(Cycle now) {
  // L1 -> directory direction.
  for (std::size_t n = 0; n < l1s_.size(); ++n) {
    const auto node = static_cast<NodeId>(n);
    l1s_[n]->for_each_line([&](BlockAddr addr, L1Controller::LineState st) {
      // Only the home node holds an entry for a block, so the directory
      // that peeks non-null is the home.
      const Directory::Entry* e = nullptr;
      NodeId home_node = kInvalidNode;
      for (const Directory* d : dirs_) {
        if (const auto* got = d->peek(addr)) {
          e = got;
          home_node = d->node();
          break;
        }
      }
      if (e == nullptr) {
        std::ostringstream os;
        os << "L1 holds " << l1_state_name(st) << " but no directory entry";
        report(InvariantId::kDirL1, now, node, addr, os.str());
        return;
      }
      if (e->busy) return;  // mid-service: ownership is being transferred
      switch (st) {
        case L1Controller::LineState::kE:
        case L1Controller::LineState::kM:
          if (!(e->state == Directory::DirState::kEM && e->owner == node)) {
            std::ostringstream os;
            os << "L1 holds " << l1_state_name(st) << " but home (node "
               << home_node << ") is " << dir_state_name(e->state);
            if (e->owner != kInvalidNode) os << " with owner " << e->owner;
            report(InvariantId::kDirL1, now, node, addr, os.str());
          }
          break;
        case L1Controller::LineState::kS:
          // Sharer lists are stale-inclusive (silent S evictions), so the
          // list may name non-sharers but must never miss a real one.
          // An over-approximating representation (coarse regions,
          // limited-pointer broadcast) still satisfies this by
          // construction: contains() never misses a real sharer.
          if (e->state == Directory::DirState::kS &&
              !e->sharers.contains(node)) {
            report(InvariantId::kDirL1, now, node, addr,
                   "L1 holds S but home's sharer list misses it");
          } else if (e->state == Directory::DirState::kI) {
            report(InvariantId::kDirL1, now, node, addr,
                   "L1 holds S but home is I");
          } else if (e->state == Directory::DirState::kEM &&
                     e->owner != node) {
            report(InvariantId::kDirL1, now, node, addr,
                   "L1 holds S but home registered a different owner");
          }
          break;
      }
    });
  }

  // Directory -> L1 direction: a settled EM entry's owner really holds the
  // line (in E or M, or in its writeback buffer with the PutX in flight).
  for (const Directory* dir : dirs_) {
    const NodeId home = dir->node();
    dir->for_each_entry([&](BlockAddr addr, const Directory::Entry& e) {
      if (e.busy || e.state != Directory::DirState::kEM) return;
      if (e.owner >= l1s_.size()) return;  // DIR-STATE reports this
      const L1Controller* l1 = l1s_[e.owner];
      const auto st = l1->line_state(addr);
      const bool owns =
          (st.has_value() && (*st == L1Controller::LineState::kE ||
                              *st == L1Controller::LineState::kM)) ||
          l1->has_writeback(addr);
      if (!owns) {
        std::ostringstream os;
        os << "home registers node " << e.owner
           << " as owner but its L1 holds "
           << (st.has_value() ? l1_state_name(*st) : "nothing")
           << " and no writeback is in flight";
        report(InvariantId::kDirL1, now, home, addr, os.str());
      }
    });
  }
}

// UD-POINTER: PUNO's unicast-destination pointer must name a node that can
// actually hold the block transactionally — a current sharer (kS) or the
// owner (kEM). finish_service recomputes it from the settled sharer mask and
// handle_put_x clears it, so any other value is a stale pointer that would
// send U-bit invalidations to an innocent node.
void InvariantChecker::check_ud_pointer(Cycle now) {
  for (const Directory* dir : dirs_) {
    const NodeId home = dir->node();
    dir->for_each_entry([&](BlockAddr addr, const Directory::Entry& e) {
      if (e.busy || e.ud == kInvalidNode) return;
      switch (e.state) {
        case Directory::DirState::kI:
          report(InvariantId::kUdPointer, now, home, addr,
                 "UD pointer set on an I entry");
          break;
        case Directory::DirState::kS:
          if (!e.sharers.contains(e.ud)) {
            std::ostringstream os;
            os << "UD names node " << e.ud << ", not a current sharer";
            report(InvariantId::kUdPointer, now, home, addr, os.str());
          }
          break;
        case Directory::DirState::kEM:
          if (e.ud != e.owner) {
            std::ostringstream os;
            os << "UD names node " << e.ud << " but the owner is "
               << e.owner;
            report(InvariantId::kUdPointer, now, home, addr, os.str());
          }
          break;
      }
    });
  }
}

// TXN-PIN: the eager HTM detects conflicts through the coherence protocol,
// which only works while every read/write-set block stays resident in the
// transactional L1 (Section II.B). Lines leave the sets only through commit
// or abort, both of which clear the sets synchronously, so a live
// transaction with an uncached set block is a pinning bug.
void InvariantChecker::check_txn_pin(Cycle now) {
  for (std::size_t n = 0; n < txns_.size() && n < l1s_.size(); ++n) {
    const htm::TxnContext* txn = txns_[n];
    if (!txn->in_txn() || txn->aborted()) continue;
    const auto node = static_cast<NodeId>(n);
    const L1Controller* l1 = l1s_[n];
    for (BlockAddr addr : txn->read_set()) {
      if (!l1->line_state(addr).has_value()) {
        report(InvariantId::kTxnPin, now, node, addr,
               "read-set block not resident in the L1");
      }
    }
    for (BlockAddr addr : txn->write_set()) {
      const auto st = l1->line_state(addr);
      if (!st.has_value()) {
        report(InvariantId::kTxnPin, now, node, addr,
               "write-set block not resident in the L1");
      } else if (*st != L1Controller::LineState::kM) {
        std::ostringstream os;
        os << "write-set block resident in " << l1_state_name(*st)
           << ", not M";
        report(InvariantId::kTxnPin, now, node, addr, os.str());
      }
    }
  }
}

// NOC-CONSERVATION: every flit the NIs injected is either ejected, buffered
// in some router, or riding a link as a scheduled event — always; and once
// the mesh drains, protocol messages in equals messages out.
void InvariantChecker::check_noc_conservation(Cycle now) {
  if (mesh_ == nullptr) return;
  const std::uint64_t sent = flits_sent_->value();
  const std::uint64_t accounted = flits_ejected_->value() +
                                  mesh_->inflight_link_flits() +
                                  mesh_->buffered_router_flits();
  if (sent != accounted) {
    std::ostringstream os;
    os << "flits: " << sent << " injected but " << flits_ejected_->value()
       << " ejected + " << mesh_->inflight_link_flits() << " on links + "
       << mesh_->buffered_router_flits() << " buffered = " << accounted;
    report(InvariantId::kNocConservation, now, kInvalidNode, 0, os.str());
  }
  if (mesh_->idle() &&
      mesh_->messages_injected() != mesh_->messages_delivered()) {
    std::ostringstream os;
    os << "mesh idle with " << mesh_->messages_injected()
       << " messages injected but only " << mesh_->messages_delivered()
       << " delivered";
    report(InvariantId::kNocConservation, now, kInvalidNode, 0, os.str());
  }
  // Active-set coverage: a component holding work the tick loop must drain
  // has to be on the schedule, or it would sit on its flits forever. This
  // holds in always_tick mode too — the full sweep keeps the sets pruned
  // but never unregisters a busy component.
  for (NodeId n = 0; n < mesh_->num_nodes(); ++n) {
    if (mesh_->router(n).buffered_flits() != 0 && !mesh_->router_active(n)) {
      std::ostringstream os;
      os << "router buffers " << mesh_->router(n).buffered_flits()
         << " flit(s) but is not on the active schedule";
      report(InvariantId::kNocConservation, now, n, 0, os.str());
    }
    if (!mesh_->ni(n).idle() && !mesh_->ni_active(n)) {
      report(InvariantId::kNocConservation, now, n, 0,
             "NI has injection work but is not on the active schedule");
    }
  }
}

}  // namespace puno::check
