// Deterministic fuzz driver for the protocol invariant checker.
//
// Each fuzz case is a whole-CMP simulation of a randomized synthetic
// transactional workload on a randomized machine shape, derived entirely
// from a 64-bit seed — the same seed always produces the same cycle-exact
// run, so every failure is a one-command repro. The driver runs each case
// under the invariant oracle (coarse stride for speed), re-runs failures at
// stride 1 to pin the first failing cycle, and — when both schemes run —
// applies the differential oracle: a baseline and a PUNO simulation of the
// same seed must commit the same per-node transaction counts, because PUNO
// is a performance mechanism, not a semantics change (Section III).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "sim/config.hpp"
#include "workloads/synthetic.hpp"

namespace puno::check {

struct FuzzOptions {
  std::uint64_t seed_start = 1;
  std::uint32_t num_seeds = 16;
  /// Fuzz the open-loop traffic kernels instead of synthetic closed-loop
  /// specs: each seed draws a kernel (map/set/queue/counter) plus a
  /// randomized TrafficConfig with queue_capacity pinned to the arrival
  /// quota, so nothing is ever dropped and the per-node commit counts stay
  /// scheme-independent — the differential oracle remains valid.
  bool traffic = false;
  /// Schemes run per seed; with both kBaseline and kPuno present the
  /// differential oracle applies.
  std::vector<Scheme> schemes = {Scheme::kBaseline, Scheme::kPuno};
  /// Per-run cycle cap; a run that does not drain by then counts as a
  /// liveness failure.
  Cycle max_cycles = 2'000'000;
  CheckerConfig checker{};
  bool differential = true;
  /// Progress/failure lines land here when non-null.
  std::ostream* log = nullptr;
};

/// Everything one simulation produced, for oracles and repro reports.
struct RunOutcome {
  bool completed = false;          ///< Drained before the cycle cap.
  Cycle cycles = 0;
  std::vector<std::uint64_t> commits;  ///< Per-node committed transactions.
  std::uint64_t total_committed = 0;
  std::uint64_t falsely_aborted = 0;   ///< htm.falsely_aborted_txns.
  std::vector<Violation> violations;
  std::string stats_csv;           ///< Full stats dump (determinism oracle).
};

/// Aggregate over a whole fuzz campaign.
struct FuzzReport {
  std::uint32_t runs = 0;
  std::uint32_t violation_runs = 0;  ///< Runs with invariant violations.
  std::uint32_t incomplete_runs = 0; ///< Runs that hit the cycle cap.
  std::uint32_t differential_failures = 0;
  std::vector<std::string> repro_lines;
  /// Aggregated false-abort counts for the directional comparison
  /// (Figure 2: PUNO should falsely abort no more than the baseline).
  std::uint64_t baseline_falsely_aborted = 0;
  std::uint64_t puno_falsely_aborted = 0;

  [[nodiscard]] bool clean() const noexcept {
    return violation_runs == 0 && incomplete_runs == 0 &&
           differential_failures == 0;
  }
};

/// Deterministic randomized workload shape for `seed`: contention structure
/// (hot/anchor region sizes, site count, read/write-set sizes, RMW fraction)
/// drawn from the seed so the campaign sweeps the space the paper's Table I
/// benchmarks occupy.
[[nodiscard]] workloads::SyntheticSpec make_fuzz_spec(std::uint64_t seed);

/// Deterministic randomized machine shape for `seed` (mesh width, scheme,
/// simulation seed). Same seed + different scheme differ ONLY in the scheme,
/// which is what makes the differential oracle meaningful.
[[nodiscard]] SystemConfig make_fuzz_config(std::uint64_t seed, Scheme scheme);

/// Registry name of the traffic kernel fuzzed for `seed`
/// (e.g. "traffic-queue").
[[nodiscard]] std::string fuzz_traffic_kernel(std::uint64_t seed);

/// make_fuzz_config plus a randomized TrafficConfig (skew, arrival process,
/// placement, kernel shape) drawn from `seed`. queue_capacity is pinned to
/// the arrival quota so no request is ever shed: a dropped request would
/// make commit counts scheme-dependent and break the differential oracle.
[[nodiscard]] SystemConfig make_fuzz_traffic_config(std::uint64_t seed,
                                                    Scheme scheme);

/// Runs one simulation of `workload` with the invariant checker attached
/// (open-loop traffic workloads are attached to the kernel automatically).
[[nodiscard]] RunOutcome run_one(const SystemConfig& cfg,
                                 workloads::Workload& workload,
                                 const CheckerConfig& checker,
                                 Cycle max_cycles);

/// Convenience overload: builds the SyntheticWorkload for `spec` first.
[[nodiscard]] RunOutcome run_one(const SystemConfig& cfg,
                                 const workloads::SyntheticSpec& spec,
                                 const CheckerConfig& checker,
                                 Cycle max_cycles);

/// The punofuzz command line that replays a failing (seed, scheme) at
/// stride 1 with every invariant enabled.
[[nodiscard]] std::string repro_line(std::uint64_t seed, Scheme scheme,
                                     bool traffic = false);

/// Command-line spelling of a scheme ("baseline", "backoff", "rmw", "puno").
[[nodiscard]] const char* scheme_flag(Scheme s) noexcept;

/// Runs the whole campaign: seeds x schemes, with shrink-to-first-cycle on
/// violations and the differential oracle across schemes.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace puno::check
