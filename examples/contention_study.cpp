// Contention study: build custom synthetic workloads at increasing
// contention levels and watch false aborting emerge — the phenomenon that
// motivates the paper — then check how much of it PUNO removes.
//
// This example exercises the public workload-construction API: you define a
// SyntheticSpec (the same mechanism behind the 8 STAMP-like kernels) and run
// it through the experiment driver.
#include <cstdio>
#include <memory>

#include "arch/cmp.hpp"
#include "metrics/run_result.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace puno;

/// A tunable "shared counter pool" workload: every transaction reads a few
/// pool entries and updates one; `hot_blocks` controls how concentrated the
/// pool is (fewer blocks = more contention).
workloads::SyntheticSpec pool_spec(std::uint32_t hot_blocks) {
  workloads::SyntheticSpec s;
  s.name = "pool" + std::to_string(hot_blocks);
  s.txns_per_node = 64;
  s.hot_blocks = hot_blocks;
  s.anchor_blocks = 1;
  s.shared_blocks = 2048;
  workloads::StaticTxnSpec t;
  t.reads_min = 6;
  t.reads_max = 10;
  t.writes_min = 1;
  t.writes_max = 2;
  t.op_think_min = 3;
  t.op_think_max = 8;
  t.hot_read_frac = 0.8;
  t.hot_write_frac = 0.8;
  t.rmw_frac = 0.5;
  t.anchor_reads = 1;
  s.txns.push_back(t);
  return s;
}

metrics::RunResult run_pool(std::uint32_t hot_blocks, Scheme scheme) {
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 1;
  workloads::SyntheticWorkload wl(pool_spec(hot_blocks), cfg.num_nodes,
                                  cfg.seed);
  arch::Cmp cmp(cfg, wl);
  cmp.run(30'000'000);
  auto r = metrics::RunResult::from_stats(cmp.kernel().stats());
  r.cycles = cmp.kernel().now();
  return r;
}

}  // namespace

int main() {
  std::printf("Contention study: shared pool of N hot blocks, 16 cores\n");
  std::printf("%-6s | %9s %9s %10s | %9s %10s %9s\n", "hot", "abort%",
              "falseAb%", "cycles", "PUNOab%", "PUNOfae%", "PUNOcyc");
  for (std::uint32_t hot : {256u, 64u, 16u, 8u, 4u}) {
    const auto base = run_pool(hot, Scheme::kBaseline);
    const auto puno = run_pool(hot, Scheme::kPuno);
    std::printf("%-6u | %8.1f%% %8.1f%% %10llu | %8.1f%% %9.1f%% %9.2f\n",
                hot, base.abort_rate() * 100,
                base.false_abort_fraction() * 100,
                static_cast<unsigned long long>(base.cycles),
                puno.abort_rate() * 100, puno.false_abort_fraction() * 100,
                static_cast<double>(puno.cycles) /
                    static_cast<double>(base.cycles));
  }
  std::printf(
      "\nReading: as the pool shrinks, read-sharing piles onto fewer lines\n"
      "and the baseline's multicast GETX aborts ever more sharers for\n"
      "nothing; PUNO's columns show the abort rate and false-abort fraction\n"
      "it leaves behind, and its relative execution time.\n");
  return 0;
}
