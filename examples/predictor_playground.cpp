// Predictor playground: drive the PUNO hardware structures directly —
// P-Buffer updates, validity aging, UD-pointer recomputation, unicast
// decisions and misprediction feedback — reproducing the paper's Figure 8
// walk-through step by step on the component API (no full simulation).
#include <cstdio>

#include <string>

#include "coherence/message.hpp"
#include "coherence/sharer_set.hpp"
#include "puno/puno_directory.hpp"
#include "sim/kernel.hpp"

int main() {
  using namespace puno;
  using coherence::SharerSet;

  sim::Kernel kernel;
  SystemConfig cfg;
  cfg.scheme = Scheme::kPuno;
  core::PunoDirectory dir(kernel, cfg, /*node=*/0);

  const auto show = [&](const char* step) {
    std::printf("\n-- %s --\n", step);
    for (NodeId n = 1; n <= 3; ++n) {
      const auto& e = dir.pbuffer().get(n);
      std::printf("  P-Buffer[node%u]: ts=%-6llu validity=%u usable=%s\n", n,
                  e.ts == kInvalidTimestamp
                      ? 0ull
                      : static_cast<unsigned long long>(e.ts),
                  e.validity, dir.pbuffer().usable(n) ? "yes" : "no");
    }
  };

  std::printf("PUNO predictor walk-through (paper Figure 8)\n");

  // (a) Directory updates the P-Buffer from three transactional GETS.
  dir.observe_request(1, /*ts=*/100, /*avg_txn_len=*/500);
  dir.observe_request(2, /*ts=*/250, 500);
  dir.observe_request(3, /*ts=*/180, 500);
  show("(a) three TxGETS observed: priorities recorded");

  SharerSet sharers;
  sharers.add(1);
  sharers.add(2);
  sharers.add(3);
  NodeId ud = dir.recompute_ud(sharers);
  std::printf("  UD pointer -> node %u (highest priority = smallest ts)\n",
              ud);

  // (b) A TxGETX from node 2 (ts 250): node 1 (ts 100) out-prioritizes it,
  // so the directory unicasts.
  NodeId target = dir.predict_unicast(sharers.expand_excluding(2), 2, 250, ud);
  std::printf("\n-- (b) TxGETX from node2 (ts=250): %s --\n",
              target == kInvalidNode
                  ? "multicast (no usable older sharer)"
                  : "UNICAST");
  if (target != kInvalidNode) {
    std::printf("  forwarded with U-bit to node %u only\n", target);
  }

  // (c2) Node 1's transaction has committed meanwhile: the NACK comes back
  // with the MP-bit, and the UNBLOCK feedback invalidates the stale entry.
  dir.on_misprediction(1);
  show("(c2) misprediction feedback: node1's priority invalidated");
  ud = dir.recompute_ud(sharers);
  std::printf("  UD pointer recomputed -> node %u\n", ud);

  target = dir.predict_unicast(sharers.expand_excluding(2), 2, 250, ud);
  std::printf("  next TxGETX from node2: %s%s\n",
              target == kInvalidNode ? "multicast" : "unicast to node ",
              target == kInvalidNode ? "" : std::to_string(target).c_str());

  // Validity aging: rollover timeouts decay unreferenced priorities.
  std::printf("\n-- rollover timeouts (period = %llu cycles) --\n",
              static_cast<unsigned long long>(dir.timeout_period()));
  kernel.run_for(dir.timeout_period() + 1);
  show("after 1 period: all validity counters decremented");
  kernel.run_for(dir.timeout_period() + 1);
  show("after 2 periods: stale priorities are no longer usable");

  return 0;
}
