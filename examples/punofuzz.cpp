// punofuzz: deterministic fuzz campaign for the protocol invariant oracle.
//
//   ./punofuzz --seeds 64 --scheme both --invariants all
//
// Runs randomized synthetic workloads on randomized machine shapes, each
// derived entirely from its seed, with the invariant checker attached and —
// whenever the scheme list includes baseline plus at least one other scheme
// — the per-scheme-vs-baseline commit-count differential oracle. Every
// failure prints a one-command repro line. Exit status: 0 clean, 1 any
// invariant violation / liveness failure / differential mismatch.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seeds N         number of seeds to run (default: 16)\n"
      "  --seed-start N    first seed (default: 1)\n"
      "  --traffic         fuzz the open-loop traffic kernels (map/set/\n"
      "                    queue/counter with randomized skew, arrivals and\n"
      "                    placement) instead of synthetic closed-loop specs\n"
      "  --scheme LIST     comma list of baseline|backoff|rmw|puno|reqwins|\n"
      "                    limited, or both (= baseline,puno, the default)\n"
      "                    or all (every registered scheme); any list with\n"
      "                    baseline + another scheme enables the\n"
      "                    differential oracle\n"
      "  --max-cycles N    per-run cycle cap (default: 2000000)\n"
      "  --stride N        check every N cycles (default: 16; failures are\n"
      "                    re-run at stride 1 automatically)\n"
      "  --invariants LIST all|none|comma-list of dir-state,dir-l1,\n"
      "                    ud-pointer,txn-pin,noc (default: all)\n"
      "  --no-differential skip the cross-scheme commit-count oracle\n"
      "  --quiet           only print the summary and failures\n",
      argv0);
}

bool apply_invariant(puno::check::CheckerConfig& cfg, const std::string& tok) {
  using puno::check::InvariantId;
  if (tok == "dir-state") cfg.set_enabled(InvariantId::kDirState, true);
  else if (tok == "dir-l1") cfg.set_enabled(InvariantId::kDirL1, true);
  else if (tok == "ud-pointer") cfg.set_enabled(InvariantId::kUdPointer, true);
  else if (tok == "txn-pin") cfg.set_enabled(InvariantId::kTxnPin, true);
  else if (tok == "noc") cfg.set_enabled(InvariantId::kNocConservation, true);
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puno;
  check::FuzzOptions opts;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      opts.num_seeds = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--seed-start") {
      opts.seed_start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--scheme") {
      const std::string list = next();
      if (list == "both") {
        opts.schemes = {Scheme::kBaseline, Scheme::kPuno};
      } else if (list == "all") {
        opts.schemes.assign(std::begin(kAllSchemes), std::end(kAllSchemes));
      } else {
        opts.schemes.clear();
        std::size_t pos = 0;
        while (pos <= list.size()) {
          const std::size_t comma = list.find(',', pos);
          const std::string tok =
              list.substr(pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos);
          const auto s = scheme_from_string(tok);
          if (!s) {
            std::fprintf(stderr, "unknown scheme '%s'\n", tok.c_str());
            return 2;
          }
          opts.schemes.push_back(*s);
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      }
    } else if (arg == "--max-cycles") {
      opts.max_cycles = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stride") {
      opts.checker.stride = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--invariants") {
      const std::string list = next();
      if (list == "all") {
        // default config already has everything on
      } else {
        const std::uint32_t stride = opts.checker.stride;
        opts.checker = check::CheckerConfig::none();
        opts.checker.stride = stride;
        if (list != "none") {
          std::size_t pos = 0;
          while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            const std::string tok =
                list.substr(pos, comma == std::string::npos ? std::string::npos
                                                            : comma - pos);
            if (!apply_invariant(opts.checker, tok)) {
              std::fprintf(stderr, "unknown invariant '%s'\n", tok.c_str());
              return 2;
            }
            if (comma == std::string::npos) break;
            pos = comma + 1;
          }
        }
      }
    } else if (arg == "--traffic") {
      opts.traffic = true;
    } else if (arg == "--no-differential") {
      opts.differential = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  opts.log = quiet ? nullptr : &std::cout;
  const check::FuzzReport report = check::run_fuzz(opts);

  std::printf(
      "\n%u runs: %u invariant failures, %u liveness failures, "
      "%u differential mismatches\n",
      report.runs, report.violation_runs, report.incomplete_runs,
      report.differential_failures);
  if (report.baseline_falsely_aborted + report.puno_falsely_aborted > 0) {
    std::printf("falsely aborted txns: baseline %llu, PUNO %llu\n",
                static_cast<unsigned long long>(
                    report.baseline_falsely_aborted),
                static_cast<unsigned long long>(report.puno_falsely_aborted));
  }
  for (const std::string& line : report.repro_lines) {
    std::printf("repro: %s\n", line.c_str());
  }
  return report.clean() ? 0 : 1;
}
