// punosim: command-line driver for single experiments.
//
//   ./punosim --workload intruder --scheme puno --seed 7 --scale 0.5
//             [--no-unicast] [--no-notification] [--commit-hint]
//             [--replay FILE] [--record-trace FILE] [--csv FILE] [--stats]
//             [--trace[=FILTER]] [--trace-out FILE] [--abort-report[=FILE]]
//             [--verify-trace]
//
// Prints the headline metrics; --stats additionally dumps every counter,
// scalar and histogram the simulation recorded (the same registry the
// figures are built from). --replay replays a recorded workload stream
// instead of the synthetic generator; --record-trace writes the generated
// stream to a file (without simulating); --csv appends a result row (with
// header if new). --trace records the transaction-lifecycle event trace
// (docs/TRACING.md) and writes Perfetto-loadable Chrome trace JSON;
// --abort-report classifies every abort as false/necessary; --verify-trace
// re-parses the written JSON and cross-checks the attribution counts
// against the simulator's false-abort counters.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <vector>

#include "trace/abort_attribution.hpp"
#include "trace/chrome_export.hpp"
#include "trace/recorder.hpp"

#include "arch/cmp.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats_io.hpp"
#include "runner/grid.hpp"
#include "telemetry/dashboard.hpp"
#include "telemetry/export.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/sampler.hpp"
#include "traffic/engine.hpp"
#include "traffic/registry.hpp"
#include "traffic/stream_trace.hpp"
#include "workloads/trace.hpp"

namespace {

void usage(const char* argv0) {
  // Derive the machine-shape line from the real defaults so the help text
  // can never go stale when the configuration changes.
  const puno::SystemConfig defaults{};
  std::printf(
      "usage: %s [options]\n"
      "simulates a %ux%u mesh of %u tiles by default; resize with\n"
      "  --set num_nodes=N (or noc.mesh_width/noc.mesh_height), up to %u\n"
      "  --workload NAME   a registered workload: a STAMP profile or an\n"
      "                    open-loop traffic kernel (--list-workloads;\n"
      "                    default: intruder)\n"
      "  --list-workloads  print every registered workload and exit\n"
      "  --scheme NAME     baseline|backoff|rmw|puno|reqwins|limited\n"
      "                    (default: baseline)\n"
      "  --seed N          RNG seed (default: 1)\n"
      "  --scale X         committed-txn quota multiplier (default: 1.0)\n"
      "  --set KEY=VALUE   override a config knob (same keys as punobatch\n"
      "                    --list-keys; e.g. traffic.zipf_theta=1.2)\n"
      "  --no-unicast      disable PUNO's predictive unicast\n"
      "  --no-notification disable PUNO's notification\n"
      "  --commit-hint     enable the commit-hint extension\n"
      "  --replay FILE     replay a recorded workload stream (in memory)\n"
      "  --stream-replay F replay a trace incrementally (constant memory;\n"
      "                    for traces too large to load)\n"
      "  --record-trace F  write the generated stream to F and exit\n"
      "  --csv FILE        append the result as a CSV row\n"
      "  --stats           dump the full statistics registry\n"
      "  --trace[=FILTER]  record the event trace; FILTER is a comma list\n"
      "                    of txn,conflict,dir,noc,puno (default: all)\n"
      "  --trace-out FILE  Chrome trace JSON path (default:\n"
      "                    <workload>-<scheme>-s<seed>.trace.json)\n"
      "  --trace-capacity N  ring-buffer capacity in events (default 256Ki)\n"
      "  --abort-report[=FILE]  write the abort-attribution report\n"
      "                    (default FILE: <trace-out>.aborts.txt)\n"
      "  --verify-trace    re-parse the JSON and cross-check false-abort\n"
      "                    counts against the stats counters; exit 1 on\n"
      "                    mismatch\n"
      "  --telemetry[=N]   sample live gauges every N cycles (default 1000)\n"
      "                    into a windowed series (docs/TELEMETRY.md)\n"
      "  --telemetry-out F series JSONL path (default:\n"
      "                    <workload>-<scheme>-s<seed>.telemetry.jsonl)\n"
      "  --telemetry-csv F also write the series as CSV\n"
      "  --telemetry-spatial  also sample the per-tile channels (aborts,\n"
      "                    NACKs, P-Buffer evictions, UD mispredicts, txn\n"
      "                    pins, router queues) for the mesh heatmaps\n"
      "  --dashboard[=F]   write the self-contained HTML dashboard\n"
      "                    (default F: <workload>-<scheme>-s<seed>"
      ".dashboard.html)\n"
      "  --verify-telemetry  re-parse the written JSONL, check it round-trips\n"
      "                    and that windows sum to the final cycle; exit 1\n"
      "                    on mismatch\n"
      "  --profile[=F]     time every component's tick/hook in host terms;\n"
      "                    prints the breakdown, and with F also writes the\n"
      "                    JSON form\n",
      argv0, defaults.noc.mesh_width, defaults.noc.rows(),
      defaults.num_nodes, puno::kMaxNodes);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puno;
  metrics::ExperimentParams params;
  params.workload = "intruder";
  bool dump_stats = false;
  std::string replay_path, stream_replay_path, record_path, csv_path;
  bool trace_on = false, verify_trace = false, want_abort_report = false;
  std::string trace_filter, trace_out, abort_report_path;
  std::size_t trace_capacity = trace::TraceRecorder::kDefaultCapacity;
  bool telemetry_on = false, verify_telemetry = false, want_dashboard = false;
  bool telemetry_spatial = false;
  bool profile_on = false;
  Cycle telemetry_interval = 1000;
  std::string telemetry_out, telemetry_csv, dashboard_out, profile_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      params.workload = next();
    } else if (arg == "--list-workloads") {
      for (const auto& e : traffic::registry::entries()) {
        std::printf("%-16s %s\n", e.name.c_str(), e.description.c_str());
      }
      return 0;
    } else if (arg == "--set") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos ||
          !runner::apply_override(params.base_config, kv.substr(0, eq),
                                  kv.substr(eq + 1))) {
        std::fprintf(stderr, "bad --set '%s' (see punobatch --list-keys)\n",
                     kv.c_str());
        return 2;
      }
    } else if (arg == "--scheme") {
      const std::string s = next();
      if (const auto scheme = scheme_from_string(s)) {
        params.scheme = *scheme;
      } else {
        std::fprintf(stderr, "unknown scheme '%s'\n", s.c_str());
        return 2;
      }
    } else if (arg == "--seed") {
      params.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--scale") {
      params.scale = std::atof(next());
    } else if (arg == "--no-unicast") {
      params.base_config.puno.enable_unicast = false;
    } else if (arg == "--no-notification") {
      params.base_config.puno.enable_notification = false;
    } else if (arg == "--commit-hint") {
      params.base_config.puno.enable_commit_hint = true;
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--stream-replay") {
      stream_replay_path = next();
    } else if (arg == "--trace") {
      trace_on = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_on = true;
      trace_filter = arg.substr(std::strlen("--trace="));
    } else if (arg == "--trace-out") {
      trace_on = true;
      trace_out = next();
    } else if (arg == "--trace-capacity") {
      trace_on = true;
      trace_capacity = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--abort-report") {
      trace_on = true;
      want_abort_report = true;
    } else if (arg.rfind("--abort-report=", 0) == 0) {
      trace_on = true;
      want_abort_report = true;
      abort_report_path = arg.substr(std::strlen("--abort-report="));
    } else if (arg == "--verify-trace") {
      trace_on = true;
      verify_trace = true;
    } else if (arg == "--telemetry") {
      telemetry_on = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_on = true;
      telemetry_interval =
          std::strtoull(arg.c_str() + std::strlen("--telemetry="), nullptr,
                        10);
      if (telemetry_interval == 0) {
        std::fprintf(stderr, "--telemetry interval must be > 0\n");
        return 2;
      }
    } else if (arg == "--telemetry-out") {
      telemetry_on = true;
      telemetry_out = next();
    } else if (arg == "--telemetry-csv") {
      telemetry_on = true;
      telemetry_csv = next();
    } else if (arg == "--telemetry-spatial") {
      telemetry_on = true;
      telemetry_spatial = true;
    } else if (arg == "--dashboard") {
      telemetry_on = true;
      want_dashboard = true;
    } else if (arg.rfind("--dashboard=", 0) == 0) {
      telemetry_on = true;
      want_dashboard = true;
      dashboard_out = arg.substr(std::strlen("--dashboard="));
    } else if (arg == "--verify-telemetry") {
      telemetry_on = true;
      verify_telemetry = true;
    } else if (arg == "--profile") {
      profile_on = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_on = true;
      profile_out = arg.substr(std::strlen("--profile="));
    } else if (arg == "--record-trace") {
      record_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // Run through the Cmp directly so the stats registry stays accessible.
  SystemConfig cfg = params.base_config;
  cfg.scheme = params.scheme;
  cfg.seed = params.seed;

  const auto make_workload = [&]() -> std::unique_ptr<workloads::Workload> {
    try {
      return traffic::registry::make(params.workload, cfg, params.scale);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s (--list-workloads shows the registry)\n",
                   e.what());
      std::exit(2);
    }
  };

  if (!record_path.empty()) {
    // Unattached open-loop workloads run in drain mode here: every arrival
    // in order, no queueing — exactly what a portable trace should contain.
    auto source = make_workload();
    std::ofstream out(record_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", record_path.c_str());
      return 1;
    }
    workloads::TraceWorkload::record(*source, cfg.num_nodes, out);
    std::printf("trace written to %s\n", record_path.c_str());
    return 0;
  }

  std::unique_ptr<workloads::Workload> workload;
  try {
    if (!replay_path.empty()) {
      workload = std::make_unique<workloads::TraceWorkload>(
          workloads::TraceWorkload::load(replay_path));
      params.workload = workload->name() + " (replay)";
    } else if (!stream_replay_path.empty()) {
      workload = std::make_unique<traffic::StreamTraceWorkload>(
          stream_replay_path, static_cast<NodeId>(cfg.num_nodes));
      params.workload = workload->name() + " (stream-replay)";
    }
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (!workload) workload = make_workload();
  arch::Cmp cmp(cfg, *workload);
  if (auto* open = dynamic_cast<traffic::OpenLoopWorkload*>(workload.get())) {
    open->attach(cmp.kernel());
  }

  std::optional<trace::TraceRecorder> recorder;
  if (trace_on) {
    const auto mask = trace::parse_filter(trace_filter);
    if (!mask) {
      std::fprintf(stderr, "unknown trace filter '%s'\n",
                   trace_filter.c_str());
      return 2;
    }
    recorder.emplace(trace_capacity, *mask);
    cmp.kernel().set_tracer(&*recorder);
  }

  std::unique_ptr<telemetry::TelemetrySampler> sampler;
  if (telemetry_on) {
    telemetry::TelemetryRequest treq;
    treq.interval = telemetry_interval;
    treq.spatial = telemetry_spatial;
    sampler = telemetry::TelemetrySampler::attach(cmp, treq);
  }

  telemetry::HostProfiler profiler;
  if (profile_on) cmp.kernel().set_profiler(&profiler);

  bool completed = false;
  try {
    completed = cmp.run(params.max_cycles);
  } catch (const std::runtime_error& e) {
    // The streaming replay parses lazily, so a malformed line deep in the
    // trace surfaces here; anything else is a real simulator failure.
    if (std::string_view(e.what()).substr(0, 17) == "trace parse error") {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    throw;
  }
  if (profile_on) cmp.kernel().set_profiler(nullptr);

  auto r = metrics::RunResult::from_stats(cmp.kernel().stats());
  r.cycles = cmp.kernel().now();
  r.completed = completed;

  std::printf("workload=%s scheme=%s seed=%llu scale=%.3g\n",
              params.workload.c_str(), to_string(params.scheme),
              static_cast<unsigned long long>(params.seed), params.scale);
  std::printf("completed            %s\n", completed ? "yes" : "NO (budget)");
  std::printf("cycles               %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("commits              %llu\n",
              static_cast<unsigned long long>(r.commits));
  std::printf("aborts               %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.aborts),
              r.abort_rate() * 100.0);
  std::printf("false-abort events   %llu (%.1f%% of TxGETX)\n",
              static_cast<unsigned long long>(r.false_abort_events),
              r.false_abort_fraction() * 100.0);
  std::printf("network traffic      %llu flit router traversals\n",
              static_cast<unsigned long long>(r.router_traversals));
  std::printf("dir blocked/TxGETX   %.1f cycles\n", r.dir_blocked_mean);
  std::printf("G/D ratio            %.3f\n", r.gd_ratio());
  if (r.offered_txns > 0) {
    std::printf("offered arrivals     %llu (%llu dropped, %.1f%%)\n",
                static_cast<unsigned long long>(r.offered_txns),
                static_cast<unsigned long long>(r.dropped_txns),
                r.drop_rate() * 100.0);
    std::printf("queue delay          p50=%llu p90=%llu p99=%llu cycles\n",
                static_cast<unsigned long long>(r.queue_delay_p50),
                static_cast<unsigned long long>(r.queue_delay_p90),
                static_cast<unsigned long long>(r.queue_delay_p99));
  }
  if (params.scheme == Scheme::kPuno) {
    std::printf("unicasts             %llu (hit rate %.1f%%)\n",
                static_cast<unsigned long long>(r.unicast_forwards),
                r.prediction_hit_rate() * 100.0);
    std::printf("notified backoffs    %llu\n",
                static_cast<unsigned long long>(r.notified_backoffs));
  }

  if (recorder.has_value()) {
    cmp.kernel().set_tracer(nullptr);
    if (trace_out.empty()) {
      trace_out = params.workload + "-" + std::string(to_string(params.scheme)) +
                  "-s" + std::to_string(params.seed) + ".trace.json";
    }
    trace::TraceMeta meta;
    meta.workload = params.workload;
    meta.scheme = to_string(params.scheme);
    meta.seed = params.seed;
    meta.num_nodes = cfg.num_nodes;
    meta.final_cycle = cmp.kernel().now();
    if (!trace::write_chrome_trace_file(*recorder, meta, trace_out)) {
      std::fprintf(stderr, "cannot write trace '%s'\n", trace_out.c_str());
      return 1;
    }
    std::printf("trace                %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(recorder->size()),
                static_cast<unsigned long long>(recorder->dropped()),
                trace_out.c_str());

    const auto attribution = trace::attribute_aborts(*recorder);
    std::printf(
        "abort attribution    false=%llu necessary=%llu overflow=%llu "
        "unresolved=%llu\n",
        static_cast<unsigned long long>(attribution.false_aborts),
        static_cast<unsigned long long>(attribution.necessary_aborts),
        static_cast<unsigned long long>(attribution.overflow_aborts),
        static_cast<unsigned long long>(attribution.unresolved_aborts));
    if (want_abort_report) {
      if (abort_report_path.empty()) {
        abort_report_path = trace_out + ".aborts.txt";
      }
      std::ofstream repf(abort_report_path, std::ios::trunc);
      if (!repf) {
        std::fprintf(stderr, "cannot write '%s'\n",
                     abort_report_path.c_str());
        return 1;
      }
      trace::write_abort_report(attribution, repf);
      std::printf("abort report         -> %s\n", abort_report_path.c_str());
    }
    if (verify_trace) {
      std::ifstream in(trace_out);
      std::string err;
      const auto check = trace::validate_chrome_trace(in, &err);
      if (!check) {
        std::fprintf(stderr, "verify-trace: JSON FAILED: %s\n", err.c_str());
        return 1;
      }
      std::printf(
          "verify-trace         JSON ok: %llu events (%llu spans, %llu "
          "instants, %llu metadata)\n",
          static_cast<unsigned long long>(check->events),
          static_cast<unsigned long long>(check->complete),
          static_cast<unsigned long long>(check->instants),
          static_cast<unsigned long long>(check->metadata));
      // The counter cross-check needs the full abort/conflict event stream:
      // no ring drops, a filter covering txn+conflict, and emission sites
      // actually compiled in.
      const std::uint32_t need = static_cast<std::uint32_t>(trace::Cat::kTxn) |
                                 static_cast<std::uint32_t>(trace::Cat::kConflict);
      (void)need;  // unused in PUNO_TRACING_DISABLED builds
#ifdef PUNO_TRACING_DISABLED
      const char* skip_reason = "PUNO_TRACING_DISABLED build";
#else
      const char* skip_reason =
          recorder->dropped() > 0 ? "ring dropped events"
          : (recorder->category_mask() & need) != need
              ? "filter excludes txn/conflict"
              : nullptr;
#endif
      if (skip_reason == nullptr) {
        if (attribution.false_abort_events != r.false_abort_events ||
            attribution.falsely_aborted_txns != r.falsely_aborted_txns) {
          std::fprintf(
              stderr,
              "verify-trace: MISMATCH: trace events=%llu/txns=%llu, "
              "counters events=%llu/txns=%llu\n",
              static_cast<unsigned long long>(attribution.false_abort_events),
              static_cast<unsigned long long>(
                  attribution.falsely_aborted_txns),
              static_cast<unsigned long long>(r.false_abort_events),
              static_cast<unsigned long long>(r.falsely_aborted_txns));
          return 1;
        }
        std::printf(
            "verify-trace         attribution matches counters "
            "(false-abort events %llu, falsely aborted txns %llu)\n",
            static_cast<unsigned long long>(attribution.false_abort_events),
            static_cast<unsigned long long>(
                attribution.falsely_aborted_txns));
      } else {
        std::printf("verify-trace         counter cross-check skipped (%s)\n",
                    skip_reason);
      }
    }
  }

  if (sampler != nullptr) {
    sampler->finish();
    const auto& samples = sampler->series().samples();
    if (telemetry_out.empty()) {
      telemetry_out = params.workload + "-" +
                      std::string(to_string(params.scheme)) + "-s" +
                      std::to_string(params.seed) + ".telemetry.jsonl";
    }
    {
      std::ofstream out(telemetry_out, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", telemetry_out.c_str());
        return 1;
      }
      telemetry::write_telemetry_jsonl(samples, out);
    }
    std::printf("telemetry            %zu windows (%llu dropped) -> %s\n",
                samples.size(),
                static_cast<unsigned long long>(sampler->series().dropped()),
                telemetry_out.c_str());
    if (!telemetry_csv.empty()) {
      std::ofstream out(telemetry_csv, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", telemetry_csv.c_str());
        return 1;
      }
      telemetry::write_telemetry_csv(samples, cfg.num_nodes, out);
      std::printf("telemetry CSV        -> %s\n", telemetry_csv.c_str());
    }
    if (want_dashboard) {
      if (dashboard_out.empty()) {
        dashboard_out = params.workload + "-" +
                        std::string(to_string(params.scheme)) + "-s" +
                        std::to_string(params.seed) + ".dashboard.html";
      }
      std::ofstream out(dashboard_out, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", dashboard_out.c_str());
        return 1;
      }
      telemetry::DashboardMeta dmeta;
      dmeta.workload = params.workload;
      dmeta.scheme = to_string(params.scheme);
      dmeta.cycles = cmp.kernel().now();
      dmeta.interval = sampler->interval();
      dmeta.dropped = sampler->series().dropped();
      dmeta.num_nodes = cfg.num_nodes;
      dmeta.mesh_width = cfg.noc.mesh_width;
      dmeta.mesh_height = cfg.noc.rows();
      telemetry::write_dashboard_html(dmeta, samples, &cmp.kernel().stats(),
                                      out);
      std::printf("dashboard            -> %s\n", dashboard_out.c_str());
    }
    if (verify_telemetry) {
      std::ifstream in(telemetry_out);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      std::vector<telemetry::TelemetrySample> parsed;
      if (!telemetry::read_telemetry_jsonl(text, parsed)) {
        std::fprintf(stderr, "verify-telemetry: JSONL FAILED to parse\n");
        return 1;
      }
      if (parsed != samples) {
        std::fprintf(stderr,
                     "verify-telemetry: MISMATCH: %zu parsed windows do not "
                     "round-trip %zu recorded windows\n",
                     parsed.size(), samples.size());
        return 1;
      }
      std::uint64_t covered = 0;
      for (const auto& s : samples) covered += s.window;
      if (sampler->series().dropped() == 0 && covered != r.cycles) {
        std::fprintf(stderr,
                     "verify-telemetry: windows cover %llu cycles, run was "
                     "%llu\n",
                     static_cast<unsigned long long>(covered),
                     static_cast<unsigned long long>(r.cycles));
        return 1;
      }
      std::printf(
          "verify-telemetry     JSONL ok: %zu windows round-trip, %llu "
          "cycles covered\n",
          parsed.size(), static_cast<unsigned long long>(covered));
    }
  }

  if (profile_on) {
    std::string report;
    {
      std::ostringstream os;
      profiler.write_report(os);
      report = os.str();
    }
    std::fputs(report.c_str(), stdout);
    if (!profile_out.empty()) {
      std::ofstream out(profile_out, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", profile_out.c_str());
        return 1;
      }
      profiler.write_json(out);
      std::printf("profile JSON         -> %s\n", profile_out.c_str());
    }
  }

  if (!csv_path.empty()) {
    const bool fresh = !std::filesystem::exists(csv_path);
    std::ofstream csv(csv_path, std::ios::app);
    r.workload = params.workload;
    r.scheme = params.scheme;
    if (fresh) csv << metrics::result_csv_header() << '\n';
    metrics::write_result_csv(r, csv);
    std::printf("result row appended to %s\n", csv_path.c_str());
  }

  if (dump_stats) {
    std::printf("\n-- full statistics registry --\n");
    const auto& stats = cmp.kernel().stats();
    for (const auto& [name, c] : stats.counters()) {
      std::printf("%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    }
    for (const auto& [name, s] : stats.scalars()) {
      std::printf("%-40s mean=%.2f min=%.0f max=%.0f n=%llu\n", name.c_str(),
                  s.mean(), s.min(), s.max(),
                  static_cast<unsigned long long>(s.count()));
    }
    for (const auto& [name, h] : stats.histograms()) {
      std::printf("%-40s n=%llu mean=%.2f\n", name.c_str(),
                  static_cast<unsigned long long>(h.total()), h.mean());
    }
  }
  return completed ? 0 : 1;
}
