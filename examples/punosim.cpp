// punosim: command-line driver for single experiments.
//
//   ./punosim --workload intruder --scheme puno --seed 7 --scale 0.5
//             [--no-unicast] [--no-notification] [--commit-hint]
//             [--trace FILE] [--record-trace FILE] [--csv FILE] [--stats]
//
// Prints the headline metrics; --stats additionally dumps every counter,
// scalar and histogram the simulation recorded (the same registry the
// figures are built from). --trace replays a recorded trace instead of the
// synthetic generator; --record-trace writes the generated stream to a file
// (without simulating); --csv appends a result row (with header if new).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <filesystem>
#include <fstream>

#include "arch/cmp.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats_io.hpp"
#include "workloads/stamp.hpp"
#include "workloads/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload NAME   bayes|intruder|labyrinth|yada|genome|kmeans|\n"
      "                    ssca2|vacation (default: intruder)\n"
      "  --scheme NAME     baseline|backoff|rmw|puno (default: baseline)\n"
      "  --seed N          RNG seed (default: 1)\n"
      "  --scale X         committed-txn quota multiplier (default: 1.0)\n"
      "  --no-unicast      disable PUNO's predictive unicast\n"
      "  --no-notification disable PUNO's notification\n"
      "  --commit-hint     enable the commit-hint extension\n"
      "  --trace FILE      replay a recorded trace instead of the generator\n"
      "  --record-trace F  write the generated stream to F and exit\n"
      "  --csv FILE        append the result as a CSV row\n"
      "  --stats           dump the full statistics registry\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puno;
  metrics::ExperimentParams params;
  params.workload = "intruder";
  bool dump_stats = false;
  std::string trace_path, record_path, csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      params.workload = next();
    } else if (arg == "--scheme") {
      const std::string s = next();
      if (const auto scheme = scheme_from_string(s)) {
        params.scheme = *scheme;
      } else {
        std::fprintf(stderr, "unknown scheme '%s'\n", s.c_str());
        return 2;
      }
    } else if (arg == "--seed") {
      params.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--scale") {
      params.scale = std::atof(next());
    } else if (arg == "--no-unicast") {
      params.base_config.puno.enable_unicast = false;
    } else if (arg == "--no-notification") {
      params.base_config.puno.enable_notification = false;
    } else if (arg == "--commit-hint") {
      params.base_config.puno.enable_commit_hint = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--record-trace") {
      record_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // Run through the Cmp directly so the stats registry stays accessible.
  SystemConfig cfg = params.base_config;
  cfg.scheme = params.scheme;
  cfg.seed = params.seed;

  if (!record_path.empty()) {
    auto source = workloads::stamp::make(params.workload, cfg.num_nodes,
                                         params.seed, params.scale);
    std::ofstream out(record_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", record_path.c_str());
      return 1;
    }
    workloads::TraceWorkload::record(*source, cfg.num_nodes, out);
    std::printf("trace written to %s\n", record_path.c_str());
    return 0;
  }

  std::unique_ptr<workloads::Workload> workload;
  if (!trace_path.empty()) {
    workload = std::make_unique<workloads::TraceWorkload>(
        workloads::TraceWorkload::load(trace_path));
    params.workload = workload->name() + " (trace)";
  } else {
    workload = workloads::stamp::make(params.workload, cfg.num_nodes,
                                      params.seed, params.scale);
  }
  arch::Cmp cmp(cfg, *workload);
  const bool completed = cmp.run(params.max_cycles);

  auto r = metrics::RunResult::from_stats(cmp.kernel().stats());
  r.cycles = cmp.kernel().now();
  r.completed = completed;

  std::printf("workload=%s scheme=%s seed=%llu scale=%.3g\n",
              params.workload.c_str(), to_string(params.scheme),
              static_cast<unsigned long long>(params.seed), params.scale);
  std::printf("completed            %s\n", completed ? "yes" : "NO (budget)");
  std::printf("cycles               %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("commits              %llu\n",
              static_cast<unsigned long long>(r.commits));
  std::printf("aborts               %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.aborts),
              r.abort_rate() * 100.0);
  std::printf("false-abort events   %llu (%.1f%% of TxGETX)\n",
              static_cast<unsigned long long>(r.false_abort_events),
              r.false_abort_fraction() * 100.0);
  std::printf("network traffic      %llu flit router traversals\n",
              static_cast<unsigned long long>(r.router_traversals));
  std::printf("dir blocked/TxGETX   %.1f cycles\n", r.dir_blocked_mean);
  std::printf("G/D ratio            %.3f\n", r.gd_ratio());
  if (params.scheme == Scheme::kPuno) {
    std::printf("unicasts             %llu (hit rate %.1f%%)\n",
                static_cast<unsigned long long>(r.unicast_forwards),
                r.prediction_hit_rate() * 100.0);
    std::printf("notified backoffs    %llu\n",
                static_cast<unsigned long long>(r.notified_backoffs));
  }

  if (!csv_path.empty()) {
    const bool fresh = !std::filesystem::exists(csv_path);
    std::ofstream csv(csv_path, std::ios::app);
    r.workload = params.workload;
    r.scheme = params.scheme;
    if (fresh) csv << metrics::result_csv_header() << '\n';
    metrics::write_result_csv(r, csv);
    std::printf("result row appended to %s\n", csv_path.c_str());
  }

  if (dump_stats) {
    std::printf("\n-- full statistics registry --\n");
    const auto& stats = cmp.kernel().stats();
    for (const auto& [name, c] : stats.counters()) {
      std::printf("%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    }
    for (const auto& [name, s] : stats.scalars()) {
      std::printf("%-40s mean=%.2f min=%.0f max=%.0f n=%llu\n", name.c_str(),
                  s.mean(), s.min(), s.max(),
                  static_cast<unsigned long long>(s.count()));
    }
    for (const auto& [name, h] : stats.histograms()) {
      std::printf("%-40s n=%llu mean=%.2f\n", name.c_str(),
                  static_cast<unsigned long long>(h.total()), h.mean());
    }
  }
  return completed ? 0 : 1;
}
