// Quickstart: simulate one STAMP-like workload under the baseline HTM and
// under PUNO, and print the headline metrics side by side.
//
//   ./quickstart [benchmark] [seed]
//
// Benchmarks: bayes intruder labyrinth yada genome kmeans ssca2 vacation.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "intruder";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  std::printf("PUNO quickstart — workload '%s', seed %llu\n\n", bench.c_str(),
              static_cast<unsigned long long>(seed));

  puno::metrics::ExperimentParams params;
  params.workload = bench;
  params.seed = seed;

  params.scheme = puno::Scheme::kBaseline;
  const auto base = puno::metrics::run_experiment(params);
  params.scheme = puno::Scheme::kPuno;
  const auto puno_run = puno::metrics::run_experiment(params);

  const auto row = [](const char* name, double b, double p,
                      const char* unit) {
    std::printf("  %-28s %14.1f %14.1f %8s   (%+.1f%%)\n", name, b, p, unit,
                b == 0.0 ? 0.0 : (p - b) / b * 100.0);
  };

  std::printf("  %-28s %14s %14s\n", "", "Baseline", "PUNO");
  row("execution time", static_cast<double>(base.cycles),
      static_cast<double>(puno_run.cycles), "cycles");
  row("commits", static_cast<double>(base.commits),
      static_cast<double>(puno_run.commits), "txns");
  row("aborts", static_cast<double>(base.aborts),
      static_cast<double>(puno_run.aborts), "txns");
  row("network traffic", static_cast<double>(base.router_traversals),
      static_cast<double>(puno_run.router_traversals), "flit-hops");
  row("false-abort events", static_cast<double>(base.false_abort_events),
      static_cast<double>(puno_run.false_abort_events), "reqs");
  row("dir blocked per TxGETX", base.dir_blocked_mean,
      puno_run.dir_blocked_mean, "cycles");
  std::printf("\n  abort rate: baseline %.1f%%  puno %.1f%%\n",
              base.abort_rate() * 100.0, puno_run.abort_rate() * 100.0);
  std::printf("  G/D ratio:  baseline %.2f  puno %.2f\n", base.gd_ratio(),
              puno_run.gd_ratio());
  std::printf("  PUNO unicasts %llu, prediction hit rate %.1f%%\n",
              static_cast<unsigned long long>(puno_run.unicast_forwards),
              puno_run.prediction_hit_rate() * 100.0);
  std::printf("  completed: baseline=%d puno=%d\n", base.completed,
              puno_run.completed);
  return 0;
}
