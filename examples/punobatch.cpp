// punobatch: parallel batch driver for arbitrary experiment grids.
//
//   ./punobatch --workloads intruder,vacation --schemes baseline,puno
//               --seeds 1..3 --set puno.timeout_fraction=0.25,1,4
//               --jobs 8 --csv out.csv --jsonl out.jsonl --manifest runs.jsonl
//
// Expands the workload x scheme x seed x config-override cross product,
// shards it over the experiment runner's worker threads (with the
// content-addressed result cache), and writes the results as CSV and/or
// JSONL. Every --set adds a grid axis: --set KEY=V1,V2 multiplies the grid
// by one job per value. The JSONL manifest records one line per job
// (status, attempts, sim wall time, cycles/s, cache key).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <cstring>
#include <system_error>

#include "metrics/stats_io.hpp"
#include "trace/recorder.hpp"
#include "runner/cache.hpp"
#include "runner/grid.hpp"
#include "runner/runner.hpp"
#include "traffic/registry.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workloads LIST  csv of workload names; \"all\" = the 8 STAMP\n"
      "                    profiles, \"traffic\" = the open-loop kernels,\n"
      "                    groups and names compose (default: all)\n"
      "  --list-workloads  print every registered workload and exit\n"
      "  --schemes LIST    csv of baseline|backoff|rmw|puno|reqwins|limited,\n"
      "                    or \"all\" (every registered scheme)\n"
      "                    (default: all)\n"
      "  --seeds SPEC      \"1,2,5\" or \"1..8\" (default: 1)\n"
      "  --scale X         committed-txn quota multiplier (default: 1.0)\n"
      "  --max-cycles N    per-run cycle budget (default: 30000000)\n"
      "  --set KEY=V[,V..] config override axis; repeatable, each axis\n"
      "                    multiplies the grid (see --list-keys)\n"
      "  --list-keys       print the overridable config keys and exit\n"
      "  --jobs N          worker threads (default: PUNO_JOBS, else all\n"
      "                    hardware threads)\n"
      "  --watchdog SECS   per-job wall-clock limit (default: off)\n"
      "  --no-cache        always re-simulate\n"
      "  --cache-dir PATH  result cache location (default: PUNO_CACHE_DIR\n"
      "                    or ./.puno-cache)\n"
      "  --csv FILE        write results as CSV (\"-\" = stdout)\n"
      "  --jsonl FILE      write results as JSONL (\"-\" = stdout)\n"
      "  --manifest FILE   write the per-job JSONL manifest\n"
      "  --trace[=FILTER]  record an event trace per job (docs/TRACING.md);\n"
      "                    traced jobs bypass the result cache\n"
      "  --trace-dir DIR   where per-job trace JSON + abort-attribution\n"
      "                    reports land (default: ./traces); manifest rows\n"
      "                    record each path\n"
      "  --telemetry[=N]   sample live gauges every N cycles per job,\n"
      "                    including the per-tile spatial channels\n"
      "                    (default 1000; docs/TELEMETRY.md); sampled jobs\n"
      "                    bypass the result cache\n"
      "  --telemetry-dir DIR  where per-job telemetry JSONL lands (default:\n"
      "                    ./telemetry); manifest rows record each path\n"
      "  --dashboard-dir DIR  also write a per-job HTML dashboard (mesh\n"
      "                    heatmaps included) into DIR; implies --telemetry\n"
      "  --progress        live progress meter on stderr\n"
      "  --quiet           suppress the per-run result table\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace puno;

  std::string workloads_spec = "all";
  std::string schemes_spec = "all";
  std::string seeds_spec = "1";
  runner::GridSpec grid;
  runner::RunnerOptions options;
  bool use_cache = true;
  std::string cache_dir;
  std::string csv_path, jsonl_path;
  bool progress = false, quiet = false;
  bool trace_on = false;
  std::string trace_filter, trace_dir = "traces";
  bool telemetry_on = false;
  Cycle telemetry_interval = 1000;
  std::string telemetry_dir = "telemetry";
  std::string dashboard_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workloads") {
      workloads_spec = next();
    } else if (arg == "--schemes") {
      schemes_spec = next();
    } else if (arg == "--seeds") {
      seeds_spec = next();
    } else if (arg == "--scale") {
      grid.scale = std::atof(next());
    } else if (arg == "--max-cycles") {
      grid.max_cycles = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--set") {
      const std::string kv = next();
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size()) {
        std::fprintf(stderr, "--set expects KEY=VALUE[,VALUE...], got '%s'\n",
                     kv.c_str());
        return 2;
      }
      runner::OverrideAxis axis;
      axis.key = kv.substr(0, eq);
      axis.values = runner::split_list(kv.substr(eq + 1));
      grid.overrides.push_back(std::move(axis));
    } else if (arg == "--list-keys") {
      for (const std::string& k : runner::override_keys()) {
        std::printf("%s\n", k.c_str());
      }
      return 0;
    } else if (arg == "--list-workloads") {
      for (const auto& e : traffic::registry::entries()) {
        std::printf("%-16s %s\n", e.name.c_str(), e.description.c_str());
      }
      return 0;
    } else if (arg == "--jobs") {
      options.jobs = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--watchdog") {
      options.watchdog_seconds = std::atof(next());
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--jsonl") {
      jsonl_path = next();
    } else if (arg == "--manifest") {
      options.manifest_path = next();
    } else if (arg == "--trace") {
      trace_on = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_on = true;
      trace_filter = arg.substr(std::strlen("--trace="));
    } else if (arg == "--trace-dir") {
      trace_on = true;
      trace_dir = next();
    } else if (arg == "--telemetry") {
      telemetry_on = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_on = true;
      telemetry_interval =
          std::strtoull(arg.c_str() + std::strlen("--telemetry="), nullptr,
                        10);
      if (telemetry_interval == 0) {
        std::fprintf(stderr, "--telemetry interval must be > 0\n");
        return 2;
      }
    } else if (arg == "--telemetry-dir") {
      telemetry_on = true;
      telemetry_dir = next();
    } else if (arg == "--dashboard-dir") {
      telemetry_on = true;
      dashboard_dir = next();
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<runner::JobSpec> specs;
  try {
    grid.workloads = runner::parse_workload_list(workloads_spec);
    grid.schemes = runner::parse_scheme_list(schemes_spec);
    grid.seeds = runner::parse_seed_list(seeds_spec);
    specs = runner::expand_grid(grid);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "punobatch: %s\n", e.what());
    return 2;
  }

  if (trace_on) {
    if (!trace::parse_filter(trace_filter)) {
      std::fprintf(stderr, "punobatch: unknown trace filter '%s'\n",
                   trace_filter.c_str());
      return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "punobatch: cannot create '%s': %s\n",
                   trace_dir.c_str(), ec.message().c_str());
      return 1;
    }
    for (runner::JobSpec& spec : specs) {
      spec.params.trace.enabled = true;
      spec.params.trace.filter = trace_filter;
      // One file per job, named after the sanitized job label so a sweep's
      // traces are self-describing.
      std::string name = spec.label;
      for (char& c : name) {
        if (c == '/' || c == ' ' || c == '=' || c == ',') c = '_';
      }
      spec.params.trace.path =
          (std::filesystem::path(trace_dir) / (name + ".trace.json"))
              .string();
      // Abort attribution rides along: who aborted whom, per scheme.
      spec.params.trace.report_path =
          (std::filesystem::path(trace_dir) / (name + ".aborts.txt"))
              .string();
    }
  }

  if (telemetry_on) {
    std::error_code ec;
    std::filesystem::create_directories(telemetry_dir, ec);
    if (ec) {
      std::fprintf(stderr, "punobatch: cannot create '%s': %s\n",
                   telemetry_dir.c_str(), ec.message().c_str());
      return 1;
    }
    if (!dashboard_dir.empty()) {
      std::filesystem::create_directories(dashboard_dir, ec);
      if (ec) {
        std::fprintf(stderr, "punobatch: cannot create '%s': %s\n",
                     dashboard_dir.c_str(), ec.message().c_str());
        return 1;
      }
    }
    for (runner::JobSpec& spec : specs) {
      spec.params.telemetry.interval = telemetry_interval;
      // Batch runs always carry the per-tile channels: the whole point of
      // sampling a sweep is to compare spatial behavior across configs.
      spec.params.telemetry.spatial = true;
      // One JSONL per job, label-named like the per-job traces above.
      std::string name = spec.label;
      for (char& c : name) {
        if (c == '/' || c == ' ' || c == '=' || c == ',') c = '_';
      }
      spec.params.telemetry.jsonl_path =
          (std::filesystem::path(telemetry_dir) / (name + ".telemetry.jsonl"))
              .string();
      if (!dashboard_dir.empty()) {
        spec.params.telemetry.dashboard_path =
            (std::filesystem::path(dashboard_dir) / (name + ".dashboard.html"))
                .string();
      }
    }
  }

  std::optional<runner::ResultCache> cache;
  if (use_cache) {
    cache.emplace(cache_dir.empty() ? runner::ResultCache::default_dir()
                                    : std::filesystem::path(cache_dir));
    options.cache = &*cache;
  }
  options.progress = progress && !quiet;

  if (!quiet) {
    std::printf("punobatch: %zu jobs (%zu workloads x %zu schemes x %zu "
                "seeds%s) on %u workers\n",
                specs.size(), grid.workloads.size(), grid.schemes.size(),
                grid.seeds.size(),
                grid.overrides.empty() ? "" : " x config overrides",
                runner::resolve_jobs(options.jobs));
  }

  const runner::SweepResult sweep = runner::run_jobs(specs, options);

  std::vector<metrics::RunResult> results;
  results.reserve(sweep.outcomes.size());
  for (const runner::JobOutcome& o : sweep.outcomes) {
    results.push_back(o.result);
  }

  if (!quiet) {
    std::printf("%-38s %-8s %12s %10s %10s %8s\n", "job", "status", "cycles",
                "commits", "aborts", "wall_s");
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& o = sweep.outcomes[i];
      std::printf("%-38.38s %-8s %12llu %10llu %10llu %8.2f\n",
                  specs[i].label.c_str(), runner::to_string(o.status),
                  static_cast<unsigned long long>(o.result.cycles),
                  static_cast<unsigned long long>(o.result.commits),
                  static_cast<unsigned long long>(o.result.aborts),
                  o.wall_seconds);
      if (!o.error.empty()) {
        std::printf("  error: %s\n", o.error.c_str());
      }
    }
  }
  runner::print_summary(sweep, std::cout);

  const auto write_to = [](const std::string& path, const auto& writer) {
    if (path == "-") {
      writer(std::cout);
      return true;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "punobatch: cannot write '%s'\n", path.c_str());
      return false;
    }
    writer(out);
    return true;
  };
  bool io_ok = true;
  if (!csv_path.empty()) {
    io_ok &= write_to(csv_path, [&](std::ostream& out) {
      metrics::write_results_csv(results, out);
    });
    if (io_ok && csv_path != "-" && !quiet) {
      std::printf("results written to %s\n", csv_path.c_str());
    }
  }
  if (!jsonl_path.empty()) {
    io_ok &= write_to(jsonl_path, [&](std::ostream& out) {
      metrics::write_results_jsonl(results, out);
    });
    if (io_ok && jsonl_path != "-" && !quiet) {
      std::printf("results written to %s\n", jsonl_path.c_str());
    }
  }

  if (!io_ok) return 1;
  return sweep.failed == 0 ? 0 : 1;
}
