#include "metrics/run_result.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace puno::metrics {
namespace {

TEST(RunResult, DerivedMetricsFromEmptyRun) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.abort_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.false_abort_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(r.prediction_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.gd_ratio(), 0.0);
}

TEST(RunResult, AbortRate) {
  RunResult r;
  r.commits = 25;
  r.aborts = 75;
  EXPECT_DOUBLE_EQ(r.abort_rate(), 0.75);
}

TEST(RunResult, GdRatio) {
  RunResult r;
  r.good_cycles = 300;
  r.discarded_cycles = 100;
  EXPECT_DOUBLE_EQ(r.gd_ratio(), 3.0);
  r.discarded_cycles = 0;
  EXPECT_DOUBLE_EQ(r.gd_ratio(), 300.0)
      << "no discarded work: ratio degenerates to good cycles";
}

TEST(RunResult, FalseAbortFraction) {
  RunResult r;
  r.tx_getx_issued = 200;
  r.false_abort_events = 82;
  EXPECT_DOUBLE_EQ(r.false_abort_fraction(), 0.41);
}

TEST(RunResult, PredictionHitRate) {
  RunResult r;
  r.unicast_forwards = 100;
  r.mp_feedbacks = 10;
  EXPECT_DOUBLE_EQ(r.prediction_hit_rate(), 0.9);
}

TEST(RunResult, FromStatsPicksUpAllCounters) {
  sim::StatsRegistry stats;
  stats.counter("htm.commits").add(10);
  stats.counter("htm.aborts").add(4);
  stats.counter("htm.aborts_by_getx").add(3);
  stats.counter("htm.aborts_by_gets").add(1);
  stats.counter("l1.tx_getx_issued").add(50);
  stats.counter("htm.false_abort_events").add(5);
  stats.counter("htm.falsely_aborted_txns").add(9);
  stats.counter("noc.router_traversals").add(1234);
  stats.counter("htm.good_cycles").add(1000);
  stats.counter("htm.discarded_cycles").add(200);
  stats.counter("dir.unicast_forwards").add(7);
  stats.counter("dir.mp_feedbacks").add(2);
  stats.scalar("dir.txgetx_blocked_cycles").sample(40);
  stats.scalar("dir.txgetx_blocked_cycles").sample(60);
  stats.histogram("htm.false_abort_multiplicity", 16).sample(2);
  stats.histogram("htm.false_abort_multiplicity", 16).sample(2);
  stats.histogram("htm.false_abort_multiplicity", 16).sample(3);

  const RunResult r = RunResult::from_stats(stats);
  EXPECT_EQ(r.commits, 10u);
  EXPECT_EQ(r.aborts, 4u);
  EXPECT_EQ(r.aborts_by_getx, 3u);
  EXPECT_EQ(r.aborts_by_gets, 1u);
  EXPECT_EQ(r.tx_getx_issued, 50u);
  EXPECT_EQ(r.false_abort_events, 5u);
  EXPECT_EQ(r.falsely_aborted_txns, 9u);
  EXPECT_EQ(r.router_traversals, 1234u);
  EXPECT_EQ(r.good_cycles, 1000u);
  EXPECT_EQ(r.discarded_cycles, 200u);
  EXPECT_EQ(r.unicast_forwards, 7u);
  EXPECT_EQ(r.mp_feedbacks, 2u);
  EXPECT_DOUBLE_EQ(r.dir_blocked_mean, 50.0);
  ASSERT_GT(r.false_abort_multiplicity.size(), 3u);
  EXPECT_NEAR(r.false_abort_multiplicity[2], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.false_abort_multiplicity[3], 1.0 / 3.0, 1e-12);
}

TEST(RunResult, FromStatsToleratesMissingStats) {
  sim::StatsRegistry stats;  // nothing recorded
  const RunResult r = RunResult::from_stats(stats);
  EXPECT_EQ(r.commits, 0u);
  EXPECT_EQ(r.router_traversals, 0u);
  EXPECT_DOUBLE_EQ(r.dir_blocked_mean, 0.0);
}

}  // namespace
}  // namespace puno::metrics
