#include "metrics/stats_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace puno::metrics {
namespace {

TEST(StatsIo, RegistryCsvContainsEveryStat) {
  sim::StatsRegistry stats;
  stats.counter("a.count").add(7);
  stats.scalar("b.lat").sample(10);
  stats.scalar("b.lat").sample(20);
  stats.histogram("c.dist", 8).sample(3);

  std::ostringstream out;
  write_stats_csv(stats, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.count,value,7"), std::string::npos);
  EXPECT_NE(csv.find("scalar,b.lat,mean,15"), std::string::npos);
  EXPECT_NE(csv.find("scalar,b.lat,count,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.dist,bucket3,1"), std::string::npos);
}

TEST(StatsIo, EmptyHistogramBucketsSkipped) {
  sim::StatsRegistry stats;
  stats.histogram("h", 8).sample(2);
  std::ostringstream out;
  write_stats_csv(stats, out);
  EXPECT_EQ(out.str().find("bucket1,"), std::string::npos);
}

TEST(StatsIo, ResultRowMatchesHeaderArity) {
  RunResult r;
  r.workload = "vacation";
  r.scheme = Scheme::kPuno;
  r.commits = 10;
  std::ostringstream out;
  write_result_csv(r, out);
  const std::string row = out.str();
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(row), commas(result_csv_header()))
      << "row and header must have the same number of columns";
  EXPECT_EQ(row.find("vacation,PUNO,"), 0u);
}

TEST(StatsIo, SweepCsvHasHeaderAndOneRowPerResult) {
  std::vector<RunResult> results(3);
  results[0].workload = "a";
  results[1].workload = "b";
  results[2].workload = "c";
  std::ostringstream out;
  write_results_csv(results, out);
  const std::string csv = out.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_EQ(csv.find("workload,"), 0u);
}

}  // namespace
}  // namespace puno::metrics
