#include "metrics/stats_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace puno::metrics {
namespace {

TEST(StatsIo, RegistryCsvContainsEveryStat) {
  sim::StatsRegistry stats;
  stats.counter("a.count").add(7);
  stats.scalar("b.lat").sample(10);
  stats.scalar("b.lat").sample(20);
  stats.histogram("c.dist", 8).sample(3);

  std::ostringstream out;
  write_stats_csv(stats, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.count,value,7"), std::string::npos);
  EXPECT_NE(csv.find("scalar,b.lat,mean,15"), std::string::npos);
  EXPECT_NE(csv.find("scalar,b.lat,count,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.dist,bucket3,1"), std::string::npos);
}

TEST(StatsIo, EmptyHistogramBucketsSkipped) {
  sim::StatsRegistry stats;
  stats.histogram("h", 8).sample(2);
  std::ostringstream out;
  write_stats_csv(stats, out);
  EXPECT_EQ(out.str().find("bucket1,"), std::string::npos);
}

TEST(StatsIo, ResultRowMatchesHeaderArity) {
  RunResult r;
  r.workload = "vacation";
  r.scheme = Scheme::kPuno;
  r.commits = 10;
  std::ostringstream out;
  write_result_csv(r, out);
  const std::string row = out.str();
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(row), commas(result_csv_header()))
      << "row and header must have the same number of columns";
  EXPECT_EQ(row.find("vacation,PUNO,"), 0u);
}

TEST(StatsIo, SweepCsvHasHeaderAndOneRowPerResult) {
  std::vector<RunResult> results(3);
  results[0].workload = "a";
  results[1].workload = "b";
  results[2].workload = "c";
  std::ostringstream out;
  write_results_csv(results, out);
  const std::string csv = out.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_EQ(csv.find("workload,"), 0u);
}

TEST(StatsIoJsonl, RoundTripPreservesEveryField) {
  RunResult r;
  r.workload = "yada";
  r.scheme = Scheme::kRmwPred;
  r.completed = true;
  r.cycles = 987654321;
  r.commits = 1024;
  r.aborts = 33;
  r.aborts_by_getx = 20;
  r.aborts_by_gets = 13;
  r.aborts_overflow = 2;
  r.tx_getx_issued = 5000;
  r.tx_getx_nacked = 40;
  r.request_retries = 55;
  r.retries_per_contended_acquire = 2.625;  // exact in binary
  r.false_abort_events = 11;
  r.falsely_aborted_txns = 9;
  r.false_abort_multiplicity = {0.5, 0.25, 0.125, 0.125};
  r.router_traversals = 777777;
  r.dir_blocked_mean = 0.1;  // NOT exact in binary: %.17g must round-trip it
  r.dir_txgetx_services = 4321;
  r.good_cycles = 900000;
  r.discarded_cycles = 87654;
  r.unicast_forwards = 66;
  r.mp_feedbacks = 7;
  r.notified_backoffs = 88;
  r.commit_hints_sent = 4;
  r.hint_wakeups = 2;

  std::ostringstream out;
  write_result_jsonl(r, out);
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);

  RunResult back;
  ASSERT_TRUE(read_result_jsonl(line, back));
  EXPECT_EQ(back.workload, r.workload);
  EXPECT_EQ(back.scheme, r.scheme);
  EXPECT_EQ(back.completed, r.completed);
  EXPECT_EQ(back.cycles, r.cycles);
  EXPECT_EQ(back.commits, r.commits);
  EXPECT_EQ(back.aborts, r.aborts);
  EXPECT_EQ(back.aborts_by_getx, r.aborts_by_getx);
  EXPECT_EQ(back.aborts_by_gets, r.aborts_by_gets);
  EXPECT_EQ(back.aborts_overflow, r.aborts_overflow);
  EXPECT_EQ(back.tx_getx_issued, r.tx_getx_issued);
  EXPECT_EQ(back.tx_getx_nacked, r.tx_getx_nacked);
  EXPECT_EQ(back.request_retries, r.request_retries);
  EXPECT_EQ(back.retries_per_contended_acquire,
            r.retries_per_contended_acquire);
  EXPECT_EQ(back.false_abort_events, r.false_abort_events);
  EXPECT_EQ(back.falsely_aborted_txns, r.falsely_aborted_txns);
  EXPECT_EQ(back.false_abort_multiplicity, r.false_abort_multiplicity);
  EXPECT_EQ(back.router_traversals, r.router_traversals);
  EXPECT_EQ(back.dir_blocked_mean, r.dir_blocked_mean);
  EXPECT_EQ(back.dir_txgetx_services, r.dir_txgetx_services);
  EXPECT_EQ(back.good_cycles, r.good_cycles);
  EXPECT_EQ(back.discarded_cycles, r.discarded_cycles);
  EXPECT_EQ(back.unicast_forwards, r.unicast_forwards);
  EXPECT_EQ(back.mp_feedbacks, r.mp_feedbacks);
  EXPECT_EQ(back.notified_backoffs, r.notified_backoffs);
  EXPECT_EQ(back.commit_hints_sent, r.commit_hints_sent);
  EXPECT_EQ(back.hint_wakeups, r.hint_wakeups);
}

TEST(StatsIoJsonl, TraceKeysAreConditionalAndRoundTrip) {
  // Untraced rows must stay byte-identical to the pre-tracing schema.
  RunResult plain;
  plain.workload = "kmeans";
  std::ostringstream out_plain;
  write_result_jsonl(plain, out_plain);
  EXPECT_EQ(out_plain.str().find("trace_"), std::string::npos);

  RunResult traced = plain;
  traced.trace_path = "traces/kmeans.trace.json";
  traced.trace_events = 4096;
  traced.trace_dropped = 17;
  std::ostringstream out_traced;
  write_result_jsonl(traced, out_traced);
  RunResult back;
  ASSERT_TRUE(read_result_jsonl(out_traced.str(), back));
  EXPECT_EQ(back.trace_path, traced.trace_path);
  EXPECT_EQ(back.trace_events, traced.trace_events);
  EXPECT_EQ(back.trace_dropped, traced.trace_dropped);
}

TEST(StatsIoJsonl, EscapesAndRestoresSpecialCharacters) {
  RunResult r;
  r.workload = "odd \"name\"\twith\nnewline\\slash";
  std::ostringstream out;
  write_result_jsonl(r, out);
  const std::string line = out.str();
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1)
      << "escaped newline must not split the JSONL line";
  RunResult back;
  ASSERT_TRUE(read_result_jsonl(line, back));
  EXPECT_EQ(back.workload, r.workload);
}

TEST(StatsIoJsonl, RejectsGarbage) {
  RunResult r;
  EXPECT_FALSE(read_result_jsonl("", r));
  EXPECT_FALSE(read_result_jsonl("not json", r));
  EXPECT_FALSE(read_result_jsonl("{\"workload\":}", r));
  EXPECT_FALSE(read_result_jsonl("{\"cycles\":1} trailing", r));
  EXPECT_FALSE(read_result_jsonl("{\"workload\":\"unterminated", r));
}

TEST(StatsIoJsonl, IgnoresUnknownKeysForForwardCompat) {
  RunResult r;
  ASSERT_TRUE(read_result_jsonl(
      R"({"workload":"x","future_field":123,"future_list":[1,2],"cycles":9})",
      r));
  EXPECT_EQ(r.workload, "x");
  EXPECT_EQ(r.cycles, 9u);
}

TEST(StatsIoJsonl, OneLinePerResult) {
  std::vector<RunResult> results(3);
  results[0].workload = "a";
  results[1].workload = "b";
  results[2].workload = "c";
  std::ostringstream out;
  write_results_jsonl(results, out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);

  std::istringstream in(text);
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    RunResult back;
    ASSERT_TRUE(read_result_jsonl(line, back));
    EXPECT_EQ(back.workload, results[i].workload);
    ++i;
  }
  EXPECT_EQ(i, results.size());
}

}  // namespace
}  // namespace puno::metrics
