// TxnContext unit tests: conflict verdicts, set tracking, timestamps,
// backoff policies. Uses a bare kernel (no L1/mesh needed at this level).
#include "htm/txn_context.hpp"

#include <gtest/gtest.h>

#include "coherence/hooks.hpp"

namespace puno::htm {
namespace {

using coherence::ConflictDecision;
using coherence::ConflictVerdict;

class TxnContextTest : public ::testing::Test {
 protected:
  TxnContextTest() { cfg_.scheme = Scheme::kBaseline; }

  TxnContext make(NodeId node = 0) {
    return TxnContext(kernel_, cfg_, node, /*avg_c2c=*/13);
  }

  sim::Kernel kernel_;
  SystemConfig cfg_;
};

TEST_F(TxnContextTest, BeginEntersTransaction) {
  auto t = make();
  EXPECT_FALSE(t.in_txn());
  t.begin(3);
  EXPECT_TRUE(t.in_txn());
  EXPECT_NE(t.current_ts(), kInvalidTimestamp);
}

TEST_F(TxnContextTest, TimestampEncodesNodeForUniqueness) {
  auto a = make(0);
  auto b = make(1);
  a.begin(0);
  b.begin(0);
  EXPECT_NE(a.current_ts(), b.current_ts());
}

TEST_F(TxnContextTest, LaterBeginHasLargerTimestamp) {
  auto a = make(0);
  a.begin(0);
  const Timestamp first = a.current_ts();
  a.commit();
  kernel_.run_for(10);
  a.begin(0);
  EXPECT_GT(a.current_ts(), first);
}

TEST_F(TxnContextTest, CommitClearsSetsAndCounts) {
  auto t = make();
  t.begin(0);
  t.on_access(0x40, false, 1);
  t.on_access(0x80, true, 2);
  EXPECT_EQ(t.read_set_size(), 2u) << "writes are implicit reads";
  EXPECT_EQ(t.write_set_size(), 1u);
  t.commit();
  EXPECT_FALSE(t.in_txn());
  EXPECT_EQ(t.read_set_size(), 0u);
  EXPECT_EQ(t.write_set_size(), 0u);
  EXPECT_EQ(kernel_.stats().counter("htm.commits").value(), 1u);
}

TEST_F(TxnContextTest, AccessesOutsideTransactionIgnored) {
  auto t = make();
  t.on_access(0x40, true, 1);
  EXPECT_EQ(t.write_set_size(), 0u);
}

TEST_F(TxnContextTest, BlockGranularity) {
  auto t = make();
  t.begin(0);
  t.on_access(0x40, false, 1);
  t.on_access(0x41, false, 2);  // same 64B block
  EXPECT_EQ(t.read_set_size(), 1u);
}

TEST_F(TxnContextTest, NoConflictWhenLineNotInSets) {
  auto t = make();
  t.begin(0);
  t.on_access(0x40, false, 1);
  const ConflictVerdict v = t.on_remote_request(0x80, true, 0, 1, false);
  EXPECT_EQ(v.decision, ConflictDecision::kGrant);
}

TEST_F(TxnContextTest, WriteToReadSetConflicts) {
  auto t = make();
  kernel_.run_for(10);
  t.begin(0);
  t.on_access(0x40, false, 1);
  // Requester with ts 0 is older than us: we abort.
  const ConflictVerdict v = t.on_remote_request(0x40, true, 0, 1, false);
  EXPECT_EQ(v.decision, ConflictDecision::kGrantAfterAbort);
  EXPECT_TRUE(t.aborted());
  EXPECT_EQ(t.read_set_size(), 0u) << "abort clears the sets";
}

TEST_F(TxnContextTest, WriteToReadSetNackedWhenWeAreOlder) {
  auto t = make();
  t.begin(0);
  t.on_access(0x40, false, 1);
  const Timestamp younger = t.current_ts() + 100;
  const ConflictVerdict v = t.on_remote_request(0x40, true, younger, 1, false);
  EXPECT_EQ(v.decision, ConflictDecision::kNack);
  EXPECT_FALSE(t.aborted());
}

TEST_F(TxnContextTest, ReadOfWriteSetConflictsButReadOfReadSetDoesNot) {
  auto t = make();
  t.begin(0);
  t.on_access(0x40, false, 1);
  t.on_access(0x80, true, 2);
  const Timestamp younger = t.current_ts() + 100;
  EXPECT_EQ(t.on_remote_request(0x40, false, younger, 1, false).decision,
            ConflictDecision::kGrant)
      << "read-read sharing is never a conflict";
  EXPECT_EQ(t.on_remote_request(0x80, false, younger, 1, false).decision,
            ConflictDecision::kNack)
      << "reading a transactional store is a conflict";
}

TEST_F(TxnContextTest, UnicastNeverAborts) {
  auto t = make();
  kernel_.run_for(10);
  t.begin(0);
  t.on_access(0x40, false, 1);
  // Requester older: a plain Inv would abort us, a U-bit Inv must not.
  const ConflictVerdict v = t.on_remote_request(0x40, true, 0, 1, true);
  EXPECT_EQ(v.decision, ConflictDecision::kNack);
  EXPECT_TRUE(v.mispredicted);
  EXPECT_FALSE(t.aborted());
}

TEST_F(TxnContextTest, UnicastToNonConflictingNodeIsMisprediction) {
  auto t = make();
  const ConflictVerdict v = t.on_remote_request(0x40, true, 5, 1, true);
  EXPECT_EQ(v.decision, ConflictDecision::kNack);
  EXPECT_TRUE(v.mispredicted);
}

TEST_F(TxnContextTest, UnicastToCorrectNackerIsNotMisprediction) {
  auto t = make();
  t.begin(0);
  t.on_access(0x40, false, 1);
  const Timestamp younger = t.current_ts() + 100;
  const ConflictVerdict v = t.on_remote_request(0x40, true, younger, 1, true);
  EXPECT_EQ(v.decision, ConflictDecision::kNack);
  EXPECT_FALSE(v.mispredicted);
}

TEST_F(TxnContextTest, NotificationOnlyUnderPuno) {
  cfg_.scheme = Scheme::kPuno;
  auto t = make();
  // Train the TxLB so there is an estimate: commit one instance of site 0.
  t.begin(0);
  kernel_.run_for(200);
  t.commit();
  kernel_.run_for(10);
  t.begin(0);
  t.on_access(0x40, false, 1);
  kernel_.run_for(50);
  const Timestamp younger = t.current_ts() + 1000;
  const ConflictVerdict v = t.on_remote_request(0x40, true, younger, 1, false);
  EXPECT_EQ(v.decision, ConflictDecision::kNack);
  EXPECT_GT(v.notification, 0u) << "~150 cycles of the 200-cycle avg remain";
  EXPECT_LE(v.notification, 200u);
}

TEST_F(TxnContextTest, NoNotificationUnderBaseline) {
  auto t = make();
  t.begin(0);
  kernel_.run_for(200);
  t.commit();
  kernel_.run_for(10);
  t.begin(0);
  t.on_access(0x40, false, 1);
  const Timestamp younger = t.current_ts() + 1000;
  const ConflictVerdict v = t.on_remote_request(0x40, true, younger, 1, false);
  EXPECT_EQ(v.notification, 0u);
}

TEST_F(TxnContextTest, RetryBackoffFixedUnderBaseline) {
  auto t = make();
  EXPECT_EQ(t.retry_backoff(1000, 0), cfg_.htm.fixed_backoff);
}

TEST_F(TxnContextTest, RetryBackoffUsesNotificationUnderPuno) {
  cfg_.scheme = Scheme::kPuno;
  auto t = make();
  // notification 1000, RTT = 2*13 = 26 -> 974.
  EXPECT_EQ(t.retry_backoff(1000, 0), 974u);
  // Small notifications fall back to the fixed backoff.
  EXPECT_EQ(t.retry_backoff(10, 0), cfg_.htm.fixed_backoff);
  EXPECT_EQ(t.retry_backoff(0, 0), cfg_.htm.fixed_backoff);
}

TEST_F(TxnContextTest, RestartBackoffZeroExceptRandomScheme) {
  auto t = make();
  EXPECT_EQ(t.restart_backoff(), 0u);
}

TEST_F(TxnContextTest, RandomizedLinearBackoffGrowsWithAborts) {
  cfg_.scheme = Scheme::kRandomBackoff;
  auto t = make();
  kernel_.run_for(10);
  t.begin(0);
  t.on_access(0x40, false, 1);
  // First abort: window is [0, 1 slot].
  (void)t.on_remote_request(0x40, true, 0, 1, false);
  ASSERT_TRUE(t.aborted());
  Cycle max_seen_1 = 0;
  for (int i = 0; i < 50; ++i) max_seen_1 = std::max(max_seen_1, t.restart_backoff());
  EXPECT_LE(max_seen_1, 1u * cfg_.htm.backoff_slot);

  // Simulate more aborts of the same instance.
  for (int k = 0; k < 4; ++k) {
    t.begin(0);
    t.on_access(0x40, false, 1);
    (void)t.on_remote_request(0x40, true, 0, 1, false);
  }
  EXPECT_EQ(t.attempt_aborts(), 5u);
  Cycle max_seen_5 = 0;
  for (int i = 0; i < 50; ++i) max_seen_5 = std::max(max_seen_5, t.restart_backoff());
  EXPECT_GT(max_seen_5, max_seen_1) << "window grows linearly with aborts";
  EXPECT_LE(max_seen_5, 5u * cfg_.htm.backoff_slot);
}

TEST_F(TxnContextTest, RmwPredictorOnlyActiveUnderRmwScheme) {
  auto base = make();
  base.begin(0);
  base.on_access(0x40, false, 77);
  base.on_access(0x40, true, 78);  // trains pc 77 as RMW
  base.commit();
  EXPECT_FALSE(base.should_load_exclusive(77)) << "inactive under baseline";

  cfg_.scheme = Scheme::kRmwPred;
  auto rmw = make();
  rmw.begin(0);
  rmw.on_access(0x40, false, 77);
  rmw.on_access(0x40, true, 78);
  rmw.commit();
  EXPECT_TRUE(rmw.should_load_exclusive(77));
  EXPECT_FALSE(rmw.should_load_exclusive(99));
}

TEST_F(TxnContextTest, GoodAndDiscardedCyclesAccumulate) {
  auto t = make();
  t.begin(0);
  kernel_.run_for(100);
  t.commit();
  EXPECT_EQ(kernel_.stats().counter("htm.good_cycles").value(), 100u);
  kernel_.run_for(10);
  t.begin(1);
  kernel_.run_for(40);
  (void)t.on_remote_request(0x40, true, 0, 1, false);  // no conflict: grant
  t.on_access(0x40, false, 1);
  (void)t.on_remote_request(0x40, true, 0, 1, false);  // conflict: abort
  EXPECT_TRUE(t.aborted());
  EXPECT_EQ(kernel_.stats().counter("htm.discarded_cycles").value(), 40u);
}

TEST_F(TxnContextTest, FalseAbortAccounting) {
  auto t = make();
  t.on_getx_outcome(0x40, /*success=*/false, /*nacks=*/1,
                    /*aborted_sharers=*/3);
  EXPECT_EQ(kernel_.stats().counter("htm.false_abort_events").value(), 1u);
  EXPECT_EQ(kernel_.stats().counter("htm.falsely_aborted_txns").value(), 3u);
  // Successful or abort-free outcomes are not false aborting.
  t.on_getx_outcome(0x40, true, 0, 2);
  t.on_getx_outcome(0x40, false, 2, 0);
  EXPECT_EQ(kernel_.stats().counter("htm.false_abort_events").value(), 1u);
}

TEST_F(TxnContextTest, IsTxnLineTracksSets) {
  auto t = make();
  EXPECT_FALSE(t.is_txn_line(0x40));
  t.begin(0);
  t.on_access(0x40, false, 1);
  EXPECT_TRUE(t.is_txn_line(0x40));
  t.commit();
  EXPECT_FALSE(t.is_txn_line(0x40));
}

TEST_F(TxnContextTest, AvgTxnLenComesFromTxLB) {
  auto t = make();
  EXPECT_EQ(t.avg_txn_len(), 0u);
  t.begin(0);
  kernel_.run_for(120);
  t.commit();
  EXPECT_EQ(t.avg_txn_len(), 120u);
}

}  // namespace
}  // namespace puno::htm
