// Cross-scheme conformance suite for the ConflictManager framework
// (ctest label: scheme_matrix).
//
// Every registered scheme — the table is kAllSchemes, generated from
// PUNO_SCHEME_LIST — runs through the same scripted conflict scenarios
// (reader-writer race, write-write race, NACK cycle, self-abort) plus one
// small full-system run, and must satisfy the interface contracts:
//
//   * a conflicting request is never silently granted;
//   * the verdict and the transaction's abort state agree (kGrantAfterAbort
//     iff the local transaction aborted);
//   * a transaction never counts as both committed and aborted;
//   * every abort carries a populated cause (the per-cause counters sum to
//     the abort counter);
//   * both backoff policies are bounded;
//   * the scheme round-trips through to_string / scheme_from_string.
//
// A new scheme is added to the table (PUNO_SCHEME_LIST + the registry), not
// to this file.
#include "htm/conflict_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "../support/fixture.hpp"
#include "coherence/hooks.hpp"
#include "htm/txn_context.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"

namespace puno::htm {
namespace {

using coherence::ConflictDecision;
using coherence::ConflictVerdict;

[[nodiscard]] bool uses_fallback_timestamps(Scheme s) {
  return s == Scheme::kRequesterWins || s == Scheme::kLimitedSet;
}

class SchemeConformance : public ::testing::TestWithParam<Scheme> {
 protected:
  SchemeConformance() { cfg_.scheme = GetParam(); }

  TxnContext make(NodeId node) {
    return TxnContext(kernel_, cfg_, node, /*avg_c2c=*/8);
  }

  [[nodiscard]] std::uint64_t stat(const char* name) {
    return kernel_.stats().counter(name).value();
  }

  /// Contract: every abort has exactly one populated cause.
  void expect_abort_causes_populated() {
    EXPECT_EQ(stat("htm.aborts"),
              stat("htm.aborts_by_getx") + stat("htm.aborts_by_gets") +
                  stat("htm.aborts_overflow"))
        << "abort causes must partition htm.aborts";
  }

  /// Contract: the verdict for a conflicting request and the local
  /// transaction's state agree, and the conflict was not ignored.
  static void expect_verdict_consistent(const ConflictVerdict& v,
                                        const TxnContext& t) {
    EXPECT_NE(v.decision, ConflictDecision::kGrant)
        << "a conflicting request must abort the local txn or be NACKed";
    EXPECT_EQ(v.decision == ConflictDecision::kGrantAfterAbort, t.aborted())
        << "kGrantAfterAbort iff the local transaction aborted";
  }

  sim::Kernel kernel_;
  SystemConfig cfg_;
};

TEST_P(SchemeConformance, SchemeRoundTripsThroughStringTable) {
  const Scheme s = GetParam();
  const auto parsed = scheme_from_string(to_string(s));
  ASSERT_TRUE(parsed.has_value()) << to_string(s);
  EXPECT_EQ(*parsed, s);
}

TEST_P(SchemeConformance, RegistryBuildsManagerForScheme) {
  const auto mgr = make_conflict_manager(kernel_, cfg_, /*node=*/0);
  ASSERT_NE(mgr, nullptr);
  EXPECT_EQ(mgr->scheme(), GetParam());
  EXPECT_EQ(mgr->wants_directory_assist(), GetParam() == Scheme::kPuno)
      << "only PUNO runs directory assists";
}

// A reader holds a block; a younger remote writer races it.
TEST_P(SchemeConformance, ReaderWriterRace) {
  auto local = make(0);
  kernel_.run_for(10);
  local.begin(0);
  local.on_access(0x40, /*write=*/false, 1);

  auto remote = make(1);
  kernel_.run_for(10);
  remote.begin(0);

  const ConflictVerdict v =
      local.on_remote_request(0x40, /*write=*/true, remote.current_ts(),
                              /*requester=*/1, /*u_bit=*/false);
  expect_verdict_consistent(v, local);
  // One transaction, one outcome: commit iff it survived.
  if (!local.aborted()) local.commit();
  EXPECT_EQ(stat("htm.commits") + stat("htm.aborts"), 1u)
      << "a txn is never both committed and aborted";
  expect_abort_causes_populated();
}

// Write-write race, driven from both sides: an older writer's request must
// win against the local transaction under every scheme; a younger writer's
// fate is scheme-dependent but must stay consistent with the verdict.
TEST_P(SchemeConformance, WriteWriteRace) {
  auto older = make(0);
  kernel_.run_for(10);
  older.begin(0);
  older.on_access(0x80, /*write=*/true, 1);

  auto younger = make(1);
  kernel_.run_for(10);
  younger.begin(0);
  younger.on_access(0x80, /*write=*/true, 2);

  // Older requester vs younger holder: every scheme aborts the holder
  // (legacy/limited by timestamp order, requester-wins unconditionally).
  const ConflictVerdict at_younger = younger.on_remote_request(
      0x80, /*write=*/true, older.current_ts(), /*requester=*/0, false);
  EXPECT_EQ(at_younger.decision, ConflictDecision::kGrantAfterAbort);
  EXPECT_TRUE(younger.aborted());

  // Younger requester vs older holder: scheme-dependent, but consistent.
  const ConflictVerdict at_older = older.on_remote_request(
      0x80, /*write=*/true, younger.current_ts(), /*requester=*/1, false);
  expect_verdict_consistent(at_older, older);

  if (!older.aborted()) older.commit();
  EXPECT_EQ(stat("htm.commits") + stat("htm.aborts"), 2u)
      << "two transactions, two single outcomes";
  expect_abort_causes_populated();
  EXPECT_EQ(stat("htm.aborts_by_gets"), 0u) << "both requests were writes";
}

// Two transactions hold different blocks and race for each other's: the
// classic NACK-cycle shape. Whatever the scheme decides, the verdicts must
// agree with the states and the accounting must add up.
TEST_P(SchemeConformance, NackCycle) {
  auto a = make(0);
  kernel_.run_for(10);
  a.begin(0);
  a.on_access(0x40, /*write=*/false, 1);

  auto b = make(1);
  kernel_.run_for(10);
  b.begin(0);
  b.on_access(0x80, /*write=*/false, 2);

  const ConflictVerdict at_a = a.on_remote_request(
      0x40, /*write=*/true, b.current_ts(), /*requester=*/1, false);
  expect_verdict_consistent(at_a, a);
  const ConflictVerdict at_b = b.on_remote_request(
      0x80, /*write=*/true, a.current_ts(), /*requester=*/0, false);
  expect_verdict_consistent(at_b, b);

  if (!a.aborted()) a.commit();
  if (!b.aborted()) b.commit();
  EXPECT_EQ(stat("htm.commits") + stat("htm.aborts"), 2u);
  expect_abort_causes_populated();
  if (at_a.decision == ConflictDecision::kNack) {
    EXPECT_LE(at_a.notification,
              std::max<Cycle>(1, a.avg_txn_len()))
        << "a NACK notification never exceeds the estimated txn length";
  }
}

// Overflow self-abort: the transaction aborts itself, with the overflow
// cause populated, and the restart ages it (attempt_aborts grows).
TEST_P(SchemeConformance, SelfAbortOnOverflow) {
  auto t = make(0);
  kernel_.run_for(10);
  t.begin(0);
  t.on_access(0x40, /*write=*/true, 1);
  t.on_overflow_eviction(0x40);
  EXPECT_TRUE(t.aborted());
  EXPECT_EQ(t.attempt_aborts(), 1u);
  EXPECT_EQ(stat("htm.aborts_overflow"), 1u);
  expect_abort_causes_populated();

  t.begin(0);  // retry of the same instance
  EXPECT_FALSE(t.aborted());
  if (uses_fallback_timestamps(GetParam())) {
    EXPECT_NE(t.current_ts(), kInvalidTimestamp);
  }
}

// Both backoff policies are bounded for every scheme, across a growing
// abort count and arbitrary notifications.
TEST_P(SchemeConformance, BackoffBounded) {
  auto t = make(0);
  kernel_.run_for(10);
  // Age the attempt through repeated aborts (an untagged ts-0 requester
  // beats the local transaction under every scheme).
  for (int round = 0; round < 8; ++round) {
    t.begin(0);
    t.on_access(0x40, /*write=*/false, 1);
    const ConflictVerdict v =
        t.on_remote_request(0x40, /*write=*/true, /*ts=*/0,
                            /*requester=*/1, false);
    ASSERT_EQ(v.decision, ConflictDecision::kGrantAfterAbort) << round;
    ASSERT_TRUE(t.aborted());
  }
  EXPECT_EQ(t.attempt_aborts(), 8u);

  const Cycle restart_bound =
      static_cast<Cycle>(cfg_.htm.backoff_slot) * cfg_.htm.backoff_max_slots;
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(t.restart_backoff(), restart_bound);
  }
  for (const Cycle notification : {Cycle{0}, Cycle{10}, Cycle{1000}}) {
    for (std::uint32_t retries = 0; retries < 5; ++retries) {
      EXPECT_LE(t.retry_backoff(notification, retries),
                std::max<Cycle>(cfg_.htm.fixed_backoff, notification));
    }
  }
}

// Timestamp policy: fresh instances get strictly aging priorities; retries
// never lower the priority (starvation freedom for the time-based schemes,
// fallback-dominance for the tagged ones).
TEST_P(SchemeConformance, TimestampsAgeAcrossInstances) {
  auto t = make(0);
  kernel_.run_for(10);
  t.begin(0);
  const Timestamp first = t.current_ts();
  t.commit();
  kernel_.run_for(10);
  t.begin(1);
  EXPECT_GT(t.current_ts(), first) << "fresh instances are younger";
  if (uses_fallback_timestamps(GetParam())) {
    EXPECT_NE(t.current_ts() & kSpeculativeTsBit, 0u)
        << "fresh attempts start speculative (tagged)";
  } else {
    EXPECT_EQ(t.current_ts() & kSpeculativeTsBit, 0u)
        << "legacy schemes never tag timestamps";
  }
  // A retry must not lower the priority (raise the timestamp).
  t.on_access(0x40, false, 1);
  (void)t.on_remote_request(0x40, true, 0, 1, false);
  ASSERT_TRUE(t.aborted());
  const Timestamp before_retry = t.current_ts();
  t.begin(1);
  EXPECT_LE(t.current_ts(), before_retry);
}

// LimitedSet specifics: exceeding the architectural write-set capacity
// aborts with the overflow cause, and the retry runs serialized (untagged
// timestamp, unbounded sets).
TEST_P(SchemeConformance, LimitedSetCapacityAbortsAndSerializes) {
  if (GetParam() != Scheme::kLimitedSet) GTEST_SKIP();
  cfg_.htm.limited_write_entries = 4;
  cfg_.htm.limited_read_entries = 8;
  auto t = make(0);
  kernel_.run_for(10);
  t.begin(0);
  for (Addr a = 0; !t.aborted(); a += 0x40) {
    ASSERT_LT(a, 0x40 * 16u) << "capacity abort must fire within the bound";
    t.on_access(a, /*write=*/true, 1);
  }
  EXPECT_EQ(stat("htm.aborts_overflow"), 1u);
  EXPECT_EQ(stat("htm.set_capacity_overflows"), 1u);

  t.begin(0);  // serialized retry
  EXPECT_EQ(t.current_ts() & kSpeculativeTsBit, 0u) << "retry is untagged";
  for (Addr a = 0; a < 0x40 * 32u; a += 0x40) {
    t.on_access(a, /*write=*/true, 1);
  }
  EXPECT_FALSE(t.aborted()) << "serialized sets are unbounded";
  EXPECT_EQ(t.write_set_size(), 32u);
  t.commit();
}

// RequesterWins specifics: bounded optimism. The attempt enters the
// fallback path after requester_wins_max_retries aborts; a fallback NACKs
// speculative requesters instead of self-aborting.
TEST_P(SchemeConformance, RequesterWinsFallsBackAfterBoundedRetries) {
  if (GetParam() != Scheme::kRequesterWins) GTEST_SKIP();
  auto t = make(0);
  kernel_.run_for(10);
  const Timestamp speculative_req = Timestamp{5} | kSpeculativeTsBit;
  for (std::uint32_t round = 0; round < cfg_.htm.requester_wins_max_retries;
       ++round) {
    t.begin(0);
    EXPECT_NE(t.current_ts() & kSpeculativeTsBit, 0u) << "still speculative";
    t.on_access(0x40, /*write=*/false, 1);
    const ConflictVerdict v =
        t.on_remote_request(0x40, true, speculative_req, 1, false);
    ASSERT_EQ(v.decision, ConflictDecision::kGrantAfterAbort)
        << "speculative attempts always yield to the requester";
  }
  t.begin(0);  // exceeds the retry bound: fallback
  EXPECT_EQ(t.current_ts() & kSpeculativeTsBit, 0u) << "fallback is untagged";
  EXPECT_EQ(stat("htm.fallback_entries"), 1u);
  t.on_access(0x40, /*write=*/false, 1);
  const ConflictVerdict v =
      t.on_remote_request(0x40, true, speculative_req, 1, false);
  EXPECT_EQ(v.decision, ConflictDecision::kNack)
      << "a fallback NACKs speculative requesters";
  EXPECT_FALSE(t.aborted());
  t.commit();
  EXPECT_EQ(stat("htm.commits"), 1u);
}

// Full-system anchor: every scheme completes a small contended STAMP
// profile, commits exactly the per-node quota, and keeps the protocol
// invariant oracle clean.
TEST_P(SchemeConformance, FullSystemRunCompletesWithInvariantsClean) {
  testing::CmpHarness::Options opts;
  opts.workload = "intruder";
  opts.scheme = GetParam();
  opts.seed = 11;
  opts.scale = 0.05;
  opts.attach_checker = true;
  testing::CmpHarness h(opts);
  ASSERT_TRUE(h.run()) << "did not drain under " << to_string(GetParam());
  h.expect_invariants_clean();
  EXPECT_EQ(h.cmp().kernel().stats().counter("htm.commits").value(),
            static_cast<std::uint64_t>(h.quota()) * h.cfg().num_nodes);
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredSchemes, SchemeConformance,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kBaseline: return "Baseline";
                             case Scheme::kRandomBackoff: return "Backoff";
                             case Scheme::kRmwPred: return "RmwPred";
                             case Scheme::kPuno: return "Puno";
                             case Scheme::kRequesterWins:
                               return "RequesterWins";
                             case Scheme::kLimitedSet: return "LimitedSet";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace puno::htm
