#include "htm/rmw_predictor.hpp"

#include <gtest/gtest.h>

namespace puno::htm {
namespace {

TEST(RmwPredictor, ColdPredictorPredictsNothing) {
  RmwPredictor p(256);
  EXPECT_FALSE(p.predict_exclusive(0x400));
}

TEST(RmwPredictor, SingleRmwObservationEnablesPrediction) {
  RmwPredictor p(256);
  p.train(0x400, true);
  EXPECT_TRUE(p.predict_exclusive(0x400));
}

TEST(RmwPredictor, NegativeTrainingDecays) {
  RmwPredictor p(256);
  p.train(0x400, true);   // confidence 2
  p.train(0x400, false);  // confidence 1
  EXPECT_FALSE(p.predict_exclusive(0x400));
  p.train(0x400, true);  // back to 2
  EXPECT_TRUE(p.predict_exclusive(0x400));
}

TEST(RmwPredictor, ConfidenceSaturates) {
  RmwPredictor p(256);
  for (int i = 0; i < 10; ++i) p.train(0x400, true);
  // Needs more than one negative observation to flip after saturation.
  p.train(0x400, false);
  EXPECT_TRUE(p.predict_exclusive(0x400));
  p.train(0x400, false);
  EXPECT_FALSE(p.predict_exclusive(0x400));
}

TEST(RmwPredictor, PlainReadsNeverAllocateEntries) {
  RmwPredictor p(256);
  p.train(0x400, false);
  EXPECT_FALSE(p.predict_exclusive(0x400));
  // The slot must still be free for a real RMW pc that aliases to it.
  p.train(0x400 + 256, true);
  EXPECT_TRUE(p.predict_exclusive(0x400 + 256));
}

TEST(RmwPredictor, AliasingPcsEvict) {
  RmwPredictor p(256);
  p.train(0x100, true);
  ASSERT_TRUE(p.predict_exclusive(0x100));
  p.train(0x100 + 256, true);  // same slot, different tag
  EXPECT_FALSE(p.predict_exclusive(0x100)) << "tag mismatch after takeover";
  EXPECT_TRUE(p.predict_exclusive(0x100 + 256));
}

TEST(RmwPredictor, DistinctSlotsIndependent) {
  RmwPredictor p(256);
  p.train(1, true);
  p.train(2, true);
  p.train(2, false);
  p.train(2, false);
  EXPECT_TRUE(p.predict_exclusive(1));
  EXPECT_FALSE(p.predict_exclusive(2));
}

TEST(RmwPredictor, Capacity) {
  RmwPredictor p(256);
  EXPECT_EQ(p.capacity(), 256u);
}

}  // namespace
}  // namespace puno::htm
