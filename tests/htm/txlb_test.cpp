#include "htm/txlb.hpp"

#include <gtest/gtest.h>

namespace puno::htm {
namespace {

TEST(TxLB, UnknownTransactionHasNoEstimate) {
  TxLB t(32);
  EXPECT_EQ(t.estimate(7), 0u);
}

TEST(TxLB, FirstCommitSeedsAverage) {
  TxLB t(32);
  t.on_commit(1, 100);
  EXPECT_EQ(t.estimate(1), 100u);
}

TEST(TxLB, Formula1RecencyWeightedAverage) {
  // StaticTxLen_new = (StaticTxLen_prev + DynTxLen) / 2  -- paper formula (1)
  TxLB t(32);
  t.on_commit(1, 100);
  t.on_commit(1, 200);
  EXPECT_EQ(t.estimate(1), 150u);
  t.on_commit(1, 50);
  EXPECT_EQ(t.estimate(1), 100u);
}

TEST(TxLB, RecentInstancesDominate) {
  TxLB t(32);
  t.on_commit(1, 1000);
  for (int i = 0; i < 10; ++i) t.on_commit(1, 100);
  // After 10 halvings the old 1000 contributes < 1 cycle.
  EXPECT_LE(t.estimate(1), 101u);
  EXPECT_GE(t.estimate(1), 99u);
}

TEST(TxLB, TracksStaticTransactionsSeparately) {
  TxLB t(32);
  t.on_commit(1, 100);
  t.on_commit(2, 900);
  EXPECT_EQ(t.estimate(1), 100u);
  EXPECT_EQ(t.estimate(2), 900u);
}

TEST(TxLB, CapacityEvictsLeastRecentlyUpdated) {
  TxLB t(4);
  for (StaticTxId id = 0; id < 4; ++id) t.on_commit(id, 100 * (id + 1));
  t.on_commit(0, 100);  // refresh id 0; id 1 is now LRU
  t.on_commit(9, 500);  // overflow: evicts id 1
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.estimate(1), 0u) << "id 1 was evicted";
  EXPECT_NE(t.estimate(0), 0u);
  EXPECT_EQ(t.estimate(9), 500u);
}

TEST(TxLB, OverallAverageTracksAllCommits) {
  TxLB t(32);
  EXPECT_EQ(t.overall_average(), 0u);
  t.on_commit(1, 100);
  EXPECT_EQ(t.overall_average(), 100u);
  t.on_commit(2, 300);
  EXPECT_EQ(t.overall_average(), 200u);
}

TEST(TxLB, CapacityAccessor) {
  TxLB t(32);
  EXPECT_EQ(t.capacity(), 32u);
}

}  // namespace
}  // namespace puno::htm
