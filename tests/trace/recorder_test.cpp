// Ring-buffer recorder and filter-syntax unit tests.
#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace puno::trace {
namespace {

TraceEvent ev_at(Cycle cycle) {
  TraceEvent e;
  e.cycle = cycle;
  e.kind = EventKind::kTxnBegin;
  return e;
}

TEST(ParseFilter, EmptyMeansAll) {
  const auto m = parse_filter("");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, kAllCats);
}

TEST(ParseFilter, AllToken) {
  const auto m = parse_filter("all");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, kAllCats);
}

TEST(ParseFilter, SingleCategories) {
  EXPECT_EQ(parse_filter("txn"), static_cast<std::uint32_t>(Cat::kTxn));
  EXPECT_EQ(parse_filter("conflict"),
            static_cast<std::uint32_t>(Cat::kConflict));
  EXPECT_EQ(parse_filter("dir"), static_cast<std::uint32_t>(Cat::kDir));
  EXPECT_EQ(parse_filter("noc"), static_cast<std::uint32_t>(Cat::kNoc));
  EXPECT_EQ(parse_filter("puno"), static_cast<std::uint32_t>(Cat::kPuno));
}

TEST(ParseFilter, CommaSeparatedCombination) {
  const auto m = parse_filter("txn,conflict");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, static_cast<std::uint32_t>(Cat::kTxn) |
                    static_cast<std::uint32_t>(Cat::kConflict));
}

TEST(ParseFilter, DuplicateTokensAreIdempotent) {
  EXPECT_EQ(parse_filter("dir,dir,dir"),
            static_cast<std::uint32_t>(Cat::kDir));
}

TEST(ParseFilter, UnknownTokenRejected) {
  EXPECT_FALSE(parse_filter("bogus").has_value());
  EXPECT_FALSE(parse_filter("txn,bogus").has_value());
}

TEST(ParseFilter, RoundTripsThroughToString) {
  for (const char* f : {"txn", "txn,conflict", "dir,noc,puno", "all"}) {
    const auto m = parse_filter(f);
    ASSERT_TRUE(m.has_value()) << f;
    EXPECT_EQ(parse_filter(filter_to_string(*m)), m) << f;
  }
}

TEST(ParseFilter, ToStringOfFullAndEmptyMasks) {
  EXPECT_EQ(filter_to_string(kAllCats), "all");
  EXPECT_EQ(filter_to_string(0), "none");
}

TEST(CategoryOf, EveryKindMapsIntoTheMask) {
  for (int k = 0; k <= static_cast<int>(EventKind::kFlitEject); ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto cat = static_cast<std::uint32_t>(category_of(kind));
    EXPECT_NE(cat & kAllCats, 0u) << to_string(kind);
  }
}

TEST(TraceRecorder, StartsEmpty) {
  TraceRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, ZeroCapacityIsClampedToOne) {
  TraceRecorder rec(0);
  EXPECT_GE(rec.capacity(), 1u);
  rec.record(ev_at(7));
  EXPECT_EQ(rec.size(), 1u);
}

TEST(TraceRecorder, RetainsInOrderBelowCapacity) {
  TraceRecorder rec(8);
  for (Cycle c = 0; c < 5; ++c) rec.record(ev_at(c));
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].cycle, i);
  }
}

TEST(TraceRecorder, OverflowDropsOldestKeepsNewest) {
  TraceRecorder rec(4);
  for (Cycle c = 0; c < 10; ++c) rec.record(ev_at(c));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest retained is event 6, newest 9, still oldest → newest.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].cycle, 6 + i);
  }
}

TEST(TraceRecorder, WraparoundAtExactCapacityBoundary) {
  TraceRecorder rec(4);
  for (Cycle c = 0; c < 4; ++c) rec.record(ev_at(c));
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.snapshot().front().cycle, 0u);
  rec.record(ev_at(4));  // first overwrite
  EXPECT_EQ(rec.dropped(), 1u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().cycle, 1u);
  EXPECT_EQ(snap.back().cycle, 4u);
}

TEST(TraceRecorder, ForEachMatchesSnapshot) {
  TraceRecorder rec(4);
  for (Cycle c = 0; c < 7; ++c) rec.record(ev_at(c));
  std::vector<Cycle> seen;
  rec.for_each([&](const TraceEvent& e) { seen.push_back(e.cycle); });
  const auto snap = rec.snapshot();
  ASSERT_EQ(seen.size(), snap.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], snap[i].cycle);
  }
}

TEST(TraceRecorder, ClearResetsEverything) {
  TraceRecorder rec(4);
  for (Cycle c = 0; c < 9; ++c) rec.record(ev_at(c));
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(ev_at(42));
  EXPECT_EQ(rec.snapshot().front().cycle, 42u);
}

TEST(TraceRecorder, WantsRespectsMask) {
  TraceRecorder rec(4, static_cast<std::uint32_t>(Cat::kTxn) |
                           static_cast<std::uint32_t>(Cat::kNoc));
  EXPECT_TRUE(rec.wants(Cat::kTxn));
  EXPECT_TRUE(rec.wants(Cat::kNoc));
  EXPECT_FALSE(rec.wants(Cat::kConflict));
  EXPECT_FALSE(rec.wants(Cat::kDir));
  EXPECT_FALSE(rec.wants(Cat::kPuno));
}

TEST(TraceRequest, ActiveFollowsEnabled) {
  TraceRequest req;
  EXPECT_FALSE(req.active());
  req.enabled = true;
  EXPECT_TRUE(req.active());
}

}  // namespace
}  // namespace puno::trace
