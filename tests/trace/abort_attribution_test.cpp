// Abort-attribution walker unit tests on hand-built event streams.
//
// The canonical scenario is the paper's Figure 1(b): requester R multicasts
// a transactional GETX; a higher-priority sharer NACKs it while a
// lower-priority sharer aborts — a false abort, because R's issue failed.
#include "trace/abort_attribution.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace puno::trace {
namespace {

TraceEvent abort_ev(Cycle cycle, NodeId victim, NodeId aborter,
                    BlockAddr addr, Timestamp victim_ts,
                    Timestamp aborter_ts, std::uint64_t cause) {
  TraceEvent e;
  e.kind = EventKind::kTxnAbort;
  e.cycle = cycle;
  e.node = victim;
  e.peer = aborter;
  e.addr = addr;
  e.ts = victim_ts;
  e.b = aborter_ts;
  e.a = cause;
  return e;
}

TraceEvent nack_ev(Cycle cycle, NodeId nacker, NodeId requester,
                   BlockAddr addr, Timestamp requester_ts,
                   Timestamp nacker_ts, bool getx = true,
                   bool mispredict = false) {
  TraceEvent e;
  e.kind = mispredict ? EventKind::kNackMispredict : EventKind::kNackSent;
  e.cycle = cycle;
  e.node = nacker;
  e.peer = requester;
  e.addr = addr;
  e.ts = requester_ts;
  e.b = nacker_ts;
  e.flags = getx ? 1 : 0;
  return e;
}

TraceEvent outcome_ev(Cycle cycle, NodeId requester, BlockAddr addr,
                      Timestamp requester_ts, std::uint64_t nacks,
                      std::uint64_t aborted, bool success) {
  TraceEvent e;
  e.kind = EventKind::kGetxOutcome;
  e.cycle = cycle;
  e.node = requester;
  e.addr = addr;
  e.ts = requester_ts;
  e.a = nacks;
  e.b = aborted;
  e.flags = success ? 1 : 0;
  return e;
}

// Three transactions on block 0x1c0: requester n0 (ts=100), survivor n1
// (ts=50, older, NACKs), victim n2 (ts=200, younger, aborts). n0's issue
// fails => n2's abort was false.
std::vector<TraceEvent> false_abort_scenario() {
  return {
      abort_ev(10, /*victim=*/2, /*aborter=*/0, 0x1c0, /*victim_ts=*/200,
               /*aborter_ts=*/100, kAbortRemoteWrite),
      nack_ev(11, /*nacker=*/1, /*requester=*/0, 0x1c0,
              /*requester_ts=*/100, /*nacker_ts=*/50),
      outcome_ev(12, /*requester=*/0, 0x1c0, 100, /*nacks=*/1,
                 /*aborted=*/1, /*success=*/false),
  };
}

TEST(AbortAttribution, ClassifiesFalseAbort) {
  const AttributionReport rep = attribute_aborts(false_abort_scenario());
  EXPECT_EQ(rep.false_aborts, 1u);
  EXPECT_EQ(rep.necessary_aborts, 0u);
  EXPECT_EQ(rep.overflow_aborts, 0u);
  EXPECT_EQ(rep.unresolved_aborts, 0u);
  EXPECT_EQ(rep.false_abort_events, 1u);
  EXPECT_EQ(rep.falsely_aborted_txns, 1u);
  EXPECT_EQ(rep.total_aborts(), 1u);

  ASSERT_EQ(rep.aborts.size(), 1u);
  const AttributedAbort& ab = rep.aborts.front();
  EXPECT_EQ(ab.cls, AbortClass::kFalse);
  EXPECT_EQ(ab.victim, 2u);
  EXPECT_EQ(ab.aborter, 0u);
  EXPECT_EQ(ab.victim_ts, 200u);
  EXPECT_EQ(ab.aborter_ts, 100u);
  EXPECT_EQ(ab.cycle, 10u);
  EXPECT_EQ(ab.resolved_at, 12u);

  ASSERT_EQ(rep.failed_issues.size(), 1u);
  const ConflictChain& cc = rep.failed_issues.front();
  EXPECT_EQ(cc.requester, 0u);
  EXPECT_EQ(cc.requester_ts, 100u);
  EXPECT_EQ(cc.addr, 0x1c0u);
  EXPECT_EQ(cc.aborted_sharers, 1u);
  ASSERT_EQ(cc.nacks.size(), 1u);
  EXPECT_EQ(cc.nacks.front().nacker, 1u);
  EXPECT_EQ(cc.nacks.front().nacker_ts, 50u);
  EXPECT_FALSE(cc.nacks.front().mispredict);
  // Priority ordering recorded faithfully: the nacker is older (smaller ts)
  // than the requester, which is older than the victim.
  EXPECT_LT(cc.nacks.front().nacker_ts, cc.requester_ts);
}

TEST(AbortAttribution, SuccessfulIssueMakesAbortsNecessary) {
  const std::vector<TraceEvent> events = {
      abort_ev(10, 2, 0, 0x1c0, 200, 100, kAbortRemoteWrite),
      outcome_ev(12, 0, 0x1c0, 100, /*nacks=*/0, /*aborted=*/1,
                 /*success=*/true),
  };
  const AttributionReport rep = attribute_aborts(events);
  EXPECT_EQ(rep.necessary_aborts, 1u);
  EXPECT_EQ(rep.false_aborts, 0u);
  EXPECT_EQ(rep.false_abort_events, 0u);
  EXPECT_TRUE(rep.failed_issues.empty());
  EXPECT_EQ(rep.aborts.front().cls, AbortClass::kNecessary);
}

TEST(AbortAttribution, RemoteReadAbortIsNecessaryImmediately) {
  const std::vector<TraceEvent> events = {
      abort_ev(10, 2, 0, 0x1c0, 200, 100, kAbortRemoteRead),
  };
  const AttributionReport rep = attribute_aborts(events);
  EXPECT_EQ(rep.necessary_aborts, 1u);
  EXPECT_EQ(rep.unresolved_aborts, 0u);
  EXPECT_EQ(rep.aborts.front().cls, AbortClass::kNecessary);
  EXPECT_EQ(rep.aborts.front().resolved_at, 10u);
}

TEST(AbortAttribution, OverflowAbortCountedSeparately) {
  const std::vector<TraceEvent> events = {
      abort_ev(10, 3, kInvalidNode, 0, kInvalidTimestamp, kInvalidTimestamp,
               kAbortOverflow),
  };
  const AttributionReport rep = attribute_aborts(events);
  EXPECT_EQ(rep.overflow_aborts, 1u);
  EXPECT_EQ(rep.false_aborts, 0u);
  EXPECT_EQ(rep.necessary_aborts, 0u);
  EXPECT_EQ(rep.aborts.front().cls, AbortClass::kOverflow);
}

TEST(AbortAttribution, AbortWithoutOutcomeStaysUnresolved) {
  const std::vector<TraceEvent> events = {
      abort_ev(10, 2, 0, 0x1c0, 200, 100, kAbortRemoteWrite),
  };
  const AttributionReport rep = attribute_aborts(events);
  EXPECT_EQ(rep.unresolved_aborts, 1u);
  EXPECT_EQ(rep.aborts.front().cls, AbortClass::kUnresolved);
}

TEST(AbortAttribution, GetsNacksAreExcludedFromChains) {
  // A nacked GETS never emits an outcome event; if it were pended it would
  // pollute the next GETX chain at the same (requester, addr).
  std::vector<TraceEvent> events = {
      nack_ev(5, 1, 0, 0x1c0, kInvalidTimestamp, 50, /*getx=*/false),
  };
  const auto tail = false_abort_scenario();
  events.insert(events.end(), tail.begin(), tail.end());
  const AttributionReport rep = attribute_aborts(events);
  ASSERT_EQ(rep.failed_issues.size(), 1u);
  // Only the GETX NACK appears; the GETS NACK at cycle 5 does not.
  ASSERT_EQ(rep.failed_issues.front().nacks.size(), 1u);
  EXPECT_EQ(rep.failed_issues.front().nacks.front().cycle, 11u);
}

TEST(AbortAttribution, MispredictNackFlaggedInChain) {
  const std::vector<TraceEvent> events = {
      nack_ev(11, 1, 0, 0x1c0, 100, kInvalidTimestamp, /*getx=*/true,
              /*mispredict=*/true),
      outcome_ev(12, 0, 0x1c0, 100, 1, 0, /*success=*/false),
  };
  const AttributionReport rep = attribute_aborts(events);
  ASSERT_EQ(rep.failed_issues.size(), 1u);
  ASSERT_EQ(rep.failed_issues.front().nacks.size(), 1u);
  EXPECT_TRUE(rep.failed_issues.front().nacks.front().mispredict);
  // No abort happened, so a failed issue is not a false-abort event.
  EXPECT_EQ(rep.false_abort_events, 0u);
}

TEST(AbortAttribution, IndependentBlocksDoNotCrossTalk) {
  // Same requester, two different blocks: each outcome resolves only its
  // own block's pending aborts.
  const std::vector<TraceEvent> events = {
      abort_ev(10, 2, 0, 0x100, 200, 100, kAbortRemoteWrite),
      abort_ev(11, 3, 0, 0x200, 300, 100, kAbortRemoteWrite),
      outcome_ev(12, 0, 0x100, 100, 1, 1, /*success=*/false),
      outcome_ev(13, 0, 0x200, 100, 0, 1, /*success=*/true),
  };
  const AttributionReport rep = attribute_aborts(events);
  EXPECT_EQ(rep.false_aborts, 1u);
  EXPECT_EQ(rep.necessary_aborts, 1u);
  ASSERT_EQ(rep.aborts.size(), 2u);
  EXPECT_EQ(rep.aborts[0].cls, AbortClass::kFalse);
  EXPECT_EQ(rep.aborts[1].cls, AbortClass::kNecessary);
}

TEST(AbortAttribution, MultipleVictimsOfOneFailedIssue) {
  const std::vector<TraceEvent> events = {
      abort_ev(10, 2, 0, 0x1c0, 200, 100, kAbortRemoteWrite),
      abort_ev(10, 3, 0, 0x1c0, 300, 100, kAbortRemoteWrite),
      nack_ev(11, 1, 0, 0x1c0, 100, 50),
      outcome_ev(12, 0, 0x1c0, 100, 1, 2, /*success=*/false),
  };
  const AttributionReport rep = attribute_aborts(events);
  EXPECT_EQ(rep.false_aborts, 2u);
  EXPECT_EQ(rep.false_abort_events, 1u);
  EXPECT_EQ(rep.falsely_aborted_txns, 2u);
}

TEST(AbortAttribution, RecorderOverloadForwardsDropCount) {
  TraceRecorder rec(2);
  for (const TraceEvent& e : false_abort_scenario()) rec.record(e);
  // Capacity 2 dropped the abort itself; only nack + outcome remain.
  const AttributionReport rep = attribute_aborts(rec);
  EXPECT_EQ(rep.dropped_events, 1u);
  EXPECT_EQ(rep.aborts.size(), 0u);
  // The failed issue is still visible, so the event counters survive drops.
  EXPECT_EQ(rep.false_abort_events, 1u);
}

TEST(WriteAbortReport, IsStableAndMentionsEverySection) {
  const AttributionReport rep = attribute_aborts(false_abort_scenario());
  std::ostringstream a, b;
  write_abort_report(rep, a);
  write_abort_report(rep, b);
  EXPECT_EQ(a.str(), b.str());  // goldenable: no wall-clock content
  EXPECT_NE(a.str().find("false:               1"), std::string::npos);
  EXPECT_NE(a.str().find("failed tx-GETX issues"), std::string::npos);
  EXPECT_NE(a.str().find("n1(ts=50)"), std::string::npos);
}

TEST(WriteAbortReport, WarnsOnDrops) {
  AttributionReport rep;
  rep.dropped_events = 7;
  std::ostringstream os;
  write_abort_report(rep, os);
  EXPECT_NE(os.str().find("WARNING: 7"), std::string::npos);
}

}  // namespace
}  // namespace puno::trace
