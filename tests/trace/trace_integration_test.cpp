// End-to-end tracing contracts over real simulations:
//
//   1. Observability: attaching a recorder never changes simulated results
//      (bit-identical RunResult with and without tracing).
//   2. Accounting: the abort-attribution walk over a complete trace equals
//      the simulator's own false-abort counters (the Fig. 2 cross-check).
//   3. Determinism: the runner produces byte-identical trace files no
//      matter how many worker threads execute the sweep.
//   4. Overhead: the runtime-disabled emission path (null tracer) costs a
//      few nanoseconds per site — the "no measurable slowdown" assertion of
//      the zero-overhead contract (docs/TRACING.md).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/cmp.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats_io.hpp"
#include "runner/cache.hpp"
#include "runner/runner.hpp"
#include "sim/kernel.hpp"
#include "trace/abort_attribution.hpp"
#include "trace/chrome_export.hpp"
#include "trace/recorder.hpp"
#include "workloads/stamp.hpp"

namespace puno::trace {
namespace {

metrics::ExperimentParams small_params(Scheme scheme = Scheme::kBaseline) {
  metrics::ExperimentParams p;
  p.workload = "kmeans";
  p.scheme = scheme;
  p.seed = 3;
  p.scale = 0.1;
  return p;
}

std::string result_row(const metrics::RunResult& r) {
  std::ostringstream os;
  metrics::write_result_jsonl(r, os);
  return os.str();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TraceIntegration, TracingDoesNotPerturbResults) {
#ifdef PUNO_TRACING_DISABLED
  GTEST_SKIP() << "emission sites compiled out";
#endif
  const metrics::RunResult plain = metrics::run_experiment(small_params());

  metrics::ExperimentParams traced_params = small_params();
  traced_params.trace.enabled = true;
  metrics::RunResult traced = metrics::run_experiment(traced_params);
  EXPECT_GT(traced.trace_events, 0u);

  // Strip the trace metadata; every simulated metric must be bit-identical.
  traced.trace_path.clear();
  traced.trace_events = 0;
  traced.trace_dropped = 0;
  EXPECT_EQ(result_row(plain), result_row(traced));
}

TEST(TraceIntegration, AttributionMatchesSimulatorCounters) {
#ifdef PUNO_TRACING_DISABLED
  GTEST_SKIP() << "emission sites compiled out";
#endif
  // Contended workload so false aborts actually occur; ring sized to hold
  // the full run (dropped must be 0 for exact equality).
  SystemConfig cfg;
  cfg.scheme = Scheme::kBaseline;
  cfg.seed = 3;
  auto wl = workloads::stamp::make("intruder", cfg.num_nodes, 3, 0.1);
  arch::Cmp cmp(cfg, *wl);
  TraceRecorder rec(std::size_t{1} << 21,
                    static_cast<std::uint32_t>(Cat::kTxn) |
                        static_cast<std::uint32_t>(Cat::kConflict));
  cmp.kernel().set_tracer(&rec);
  ASSERT_TRUE(cmp.run(10'000'000));
  cmp.kernel().set_tracer(nullptr);
  ASSERT_EQ(rec.dropped(), 0u) << "ring too small for exact cross-check";

  const AttributionReport rep = attribute_aborts(rec);
  auto& stats = cmp.kernel().stats();
  EXPECT_EQ(rep.false_abort_events,
            stats.counter("htm.false_abort_events").value());
  EXPECT_EQ(rep.falsely_aborted_txns,
            stats.counter("htm.falsely_aborted_txns").value());
  // Every abort the HTM counted is in the trace and classified.
  EXPECT_EQ(rep.total_aborts(), stats.counter("htm.aborts").value());
  EXPECT_EQ(rep.overflow_aborts,
            stats.counter("htm.aborts_overflow").value());
  EXPECT_EQ(rep.unresolved_aborts, 0u);
  EXPECT_GT(rep.false_aborts, 0u) << "scenario should exhibit false aborts";
}

TEST(TraceIntegration, RunnerTraceFilesAreByteIdenticalAcrossJobCounts) {
  const std::string dir = testing::TempDir();
  auto make_specs = [&](const std::string& tag) {
    std::vector<runner::JobSpec> specs(2);
    specs[0].params = small_params(Scheme::kBaseline);
    specs[1].params = small_params(Scheme::kPuno);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].params.trace.enabled = true;
      specs[i].params.trace.path =
          dir + "/jobs" + tag + "-" + std::to_string(i) + ".trace.json";
    }
    return specs;
  };

  runner::RunnerOptions serial;
  serial.jobs = 1;
  const auto specs1 = make_specs("1");
  const auto sweep1 = runner::run_jobs(specs1, serial);
  ASSERT_EQ(sweep1.failed, 0u);

  runner::RunnerOptions threaded;
  threaded.jobs = 2;
  const auto specs8 = make_specs("8");
  const auto sweep8 = runner::run_jobs(specs8, threaded);
  ASSERT_EQ(sweep8.failed, 0u);

  for (std::size_t i = 0; i < specs1.size(); ++i) {
    const std::string a = file_bytes(specs1[i].params.trace.path);
    const std::string b = file_bytes(specs8[i].params.trace.path);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "job " << i;
  }
}

TEST(TraceIntegration, TracedJobsBypassTheRunnerCache) {
  // A cached row cannot reproduce trace side-effect files, so a traced job
  // must simulate even when a cache entry exists.
  const std::string cache_dir = testing::TempDir() + "/trace-cache-bypass";
  std::filesystem::remove_all(cache_dir);  // TempDir persists across runs
  runner::ResultCache cache(cache_dir);
  std::vector<runner::JobSpec> warm(1);
  warm[0].params = small_params();
  runner::RunnerOptions opt;
  opt.jobs = 1;
  opt.cache = &cache;
  ASSERT_EQ(runner::run_jobs(warm, opt).simulated, 1u);
  ASSERT_EQ(runner::run_jobs(warm, opt).cached, 1u);  // now cached

  std::vector<runner::JobSpec> traced(1);
  traced[0].params = small_params();
  traced[0].params.trace.enabled = true;
  traced[0].params.trace.path = testing::TempDir() + "/bypass.trace.json";
  const auto sweep = runner::run_jobs(traced, opt);
  EXPECT_EQ(sweep.simulated, 1u);
  EXPECT_EQ(sweep.cached, 0u);
  EXPECT_FALSE(file_bytes(traced[0].params.trace.path).empty());
}

TEST(TraceIntegration, ExperimentWritesValidChromeTraceAndReport) {
  metrics::ExperimentParams p = small_params();
  p.trace.enabled = true;
  p.trace.path = testing::TempDir() + "/experiment.trace.json";
  p.trace.report_path = testing::TempDir() + "/experiment.aborts.txt";
  const metrics::RunResult r = metrics::run_experiment(p);
  EXPECT_EQ(r.trace_path, p.trace.path);

  std::ifstream in(p.trace.path);
  ASSERT_TRUE(in.is_open());
  std::string err;
  const auto check = validate_chrome_trace(in, &err);
  ASSERT_TRUE(check.has_value()) << err;
  EXPECT_GT(check->events, 0u);

  const std::string report = file_bytes(p.trace.report_path);
  EXPECT_NE(report.find("abort attribution"), std::string::npos);
}

TEST(TraceIntegration, UnknownFilterIsRejected) {
  metrics::ExperimentParams p = small_params();
  p.trace.enabled = true;
  p.trace.filter = "txn,bogus";
  EXPECT_THROW((void)metrics::run_experiment(p), std::runtime_error);
}

TEST(TraceIntegration, DisabledEmissionPathHasNoMeasurableCost) {
  // The zero-overhead contract's runtime half: with no recorder attached,
  // PUNO_TEV is a pointer load + branch. Budget is deliberately generous
  // (50 ns/site >> the ~1 ns real cost) so the assertion never flakes under
  // sanitizers, yet still fails loudly if emission ever grows real work —
  // e.g. unconditional event construction or locking.
  sim::Kernel kernel;
  ASSERT_EQ(kernel.tracer(), nullptr);
  constexpr std::size_t kIters = std::size_t{1} << 22;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kIters; ++i) {
    // The barrier forces the null check to be re-evaluated each iteration,
    // as it is at real emission sites scattered across translation units.
    asm volatile("" ::: "memory");
    PUNO_TEV(kernel, Cat::kTxn, (TraceEvent{}));
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  EXPECT_LT(ns / static_cast<double>(kIters), 50.0)
      << "disabled trace path regressed";
}

}  // namespace
}  // namespace puno::trace
