// Chrome trace-event JSON exporter + structural validator tests, including
// the determinism (golden stability) contract.
#include "trace/chrome_export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace puno::trace {
namespace {

TraceMeta small_meta() {
  TraceMeta meta;
  meta.workload = "unit";
  meta.scheme = "Baseline";
  meta.seed = 7;
  meta.num_nodes = 2;
  meta.final_cycle = 100;
  return meta;
}

TraceEvent txn_begin(NodeId node, Cycle cycle, Timestamp ts,
                     std::uint64_t id) {
  TraceEvent e;
  e.kind = EventKind::kTxnBegin;
  e.node = node;
  e.cycle = cycle;
  e.ts = ts;
  e.a = id;
  return e;
}

TraceEvent txn_commit(NodeId node, Cycle cycle, Timestamp ts,
                      std::uint64_t id, std::uint64_t len) {
  TraceEvent e;
  e.kind = EventKind::kTxnCommit;
  e.node = node;
  e.cycle = cycle;
  e.ts = ts;
  e.a = id;
  e.b = len;
  return e;
}

std::string export_to_string(const TraceRecorder& rec, const TraceMeta& m) {
  std::ostringstream os;
  write_chrome_trace(rec, m, os);
  return os.str();
}

std::optional<ChromeTraceCheck> validate_string(const std::string& json,
                                                std::string* err = nullptr) {
  std::istringstream is(json);
  return validate_chrome_trace(is, err);
}

TEST(ChromeExport, EmptyRecorderStillValidates) {
  TraceRecorder rec(8);
  const std::string json = export_to_string(rec, small_meta());
  const auto check = validate_string(json);
  ASSERT_TRUE(check.has_value());
  // Metadata only: process + thread naming for 3 pids x num_nodes tids.
  EXPECT_GT(check->metadata, 0u);
  EXPECT_EQ(check->complete, 0u);
  EXPECT_EQ(check->instants, 0u);
}

TEST(ChromeExport, BeginCommitBecomesOneCompleteSpan) {
  TraceRecorder rec(8);
  rec.record(txn_begin(0, 10, 5, 1));
  rec.record(txn_commit(0, 30, 5, 1, 20));
  const std::string json = export_to_string(rec, small_meta());
  const auto check = validate_string(json);
  ASSERT_TRUE(check.has_value());
  EXPECT_EQ(check->complete, 1u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"commit\""), std::string::npos);
}

TEST(ChromeExport, CommitWithoutBeginBecomesInstant) {
  // A wrapped ring can retain a commit whose begin was overwritten; the
  // exporter must degrade it to an instant, not emit a broken span.
  TraceRecorder rec(8);
  rec.record(txn_commit(1, 30, 5, 1, 20));
  const auto check = validate_string(export_to_string(rec, small_meta()));
  ASSERT_TRUE(check.has_value());
  EXPECT_EQ(check->complete, 0u);
  EXPECT_EQ(check->instants, 1u);
}

TEST(ChromeExport, OpenTxnAtExportIsClosedAtFinalCycle) {
  TraceRecorder rec(8);
  rec.record(txn_begin(0, 10, 5, 1));
  const std::string json = export_to_string(rec, small_meta());
  const auto check = validate_string(json);
  ASSERT_TRUE(check.has_value());
  EXPECT_EQ(check->complete, 1u);
  EXPECT_NE(json.find("\"outcome\":\"open\""), std::string::npos);
}

TEST(ChromeExport, OutputIsByteIdenticalAcrossExports) {
  // The determinism contract (docs/TRACING.md): no wall clock, hostname or
  // environment leaks into the bytes.
  TraceRecorder rec(16);
  rec.record(txn_begin(0, 10, 5, 1));
  rec.record(txn_commit(0, 30, 5, 1, 20));
  TraceEvent nack;
  nack.kind = EventKind::kNackSent;
  nack.node = 1;
  nack.peer = 0;
  nack.addr = 0x1c0;
  nack.cycle = 15;
  nack.flags = 1;
  rec.record(nack);
  const TraceMeta meta = small_meta();
  EXPECT_EQ(export_to_string(rec, meta), export_to_string(rec, meta));
}

TEST(ChromeExport, FileRoundTrip) {
  TraceRecorder rec(8);
  rec.record(txn_begin(0, 1, 2, 3));
  const std::string path =
      testing::TempDir() + "/chrome_export_roundtrip.trace.json";
  ASSERT_TRUE(write_chrome_trace_file(rec, small_meta(), path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  EXPECT_TRUE(validate_chrome_trace(in).has_value());
}

TEST(ChromeExport, EveryInstantKindValidates) {
  TraceRecorder rec(64);
  for (int k = 0; k <= static_cast<int>(EventKind::kFlitEject); ++k) {
    TraceEvent e;
    e.kind = static_cast<EventKind>(k);
    e.node = 1;
    e.peer = 0;
    e.cycle = static_cast<Cycle>(10 + k);
    e.a = 2;
    e.b = 3;
    rec.record(e);
  }
  std::string err;
  const auto check = validate_string(export_to_string(rec, small_meta()),
                                     &err);
  ASSERT_TRUE(check.has_value()) << err;
}

TEST(ValidateChromeTrace, RejectsMalformedJson) {
  std::string err;
  EXPECT_FALSE(validate_string("{\"traceEvents\":[", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(ValidateChromeTrace, RejectsMissingTraceEvents) {
  EXPECT_FALSE(validate_string("{\"otherData\":{}}").has_value());
}

TEST(ValidateChromeTrace, RejectsEventWithoutPh) {
  EXPECT_FALSE(
      validate_string("{\"traceEvents\":[{\"name\":\"x\"}]}").has_value());
}

TEST(ValidateChromeTrace, RejectsTrailingGarbage) {
  EXPECT_FALSE(
      validate_string("{\"traceEvents\":[]} extra").has_value());
}

TEST(ValidateChromeTrace, AcceptsMinimalWellFormedFile) {
  const auto check = validate_string(
      "{\"traceEvents\":[{\"name\":\"n\",\"ph\":\"i\",\"ts\":0}]}");
  ASSERT_TRUE(check.has_value());
  EXPECT_EQ(check->events, 1u);
  EXPECT_EQ(check->instants, 1u);
}

}  // namespace
}  // namespace puno::trace
