// Shared test fixture: a full 16-node CMP (mesh + directories + L1s + real
// TxnContexts + optional PUNO assists) with NO cores, so tests drive memory
// operations and transaction boundaries directly and observe every protocol
// effect deterministically.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/cmp.hpp"
#include "check/invariant_checker.hpp"
#include "coherence/directory.hpp"
#include "coherence/l1_controller.hpp"
#include "htm/txn_context.hpp"
#include "noc/mesh.hpp"
#include "puno/puno_directory.hpp"
#include "sim/config.hpp"
#include "sim/kernel.hpp"
#include "workloads/stamp.hpp"

namespace puno::testing {

class ProtocolFixture : public ::testing::Test {
 protected:
  explicit ProtocolFixture(SystemConfig cfg = {}) : cfg_(std::move(cfg)) {
    mesh_ = std::make_unique<noc::Mesh>(kernel_, cfg_.noc);
    kernel_.add_tickable(*mesh_);
    const auto n = static_cast<NodeId>(cfg_.num_nodes);
    const Cycle c2c = mesh_->average_c2c_latency();
    for (NodeId i = 0; i < n; ++i) {
      txns_.push_back(
          std::make_unique<htm::TxnContext>(kernel_, cfg_, i, c2c));
    }
    for (NodeId i = 0; i < n; ++i) {
      auto send = [this, i](NodeId dst,
                            std::shared_ptr<const coherence::Message> msg) {
        const auto vnet = coherence::vnet_of(msg->type);
        const std::uint32_t bytes =
            coherence::carries_data(msg->type) && msg->has_payload
                ? cfg_.cache.block_bytes
                : 0;
        mesh_->send(i, dst, vnet, bytes, std::move(msg));
      };
      l1s_.push_back(std::make_unique<coherence::L1Controller>(
          kernel_, cfg_, i, *txns_[i], send));
      txns_[i]->attach_l1(l1s_[i].get());
      if (cfg_.puno.enable_commit_hint) {
        txns_[i]->set_hint_sender(
            [send, i](NodeId dst, BlockAddr addr) {
              send(dst, coherence::Message::make(
                            coherence::MsgType::kRetryHint, addr, i, dst));
            });
      }
      dirs_.push_back(
          std::make_unique<coherence::Directory>(kernel_, cfg_, i, send));
      if (txns_[i]->conflict_manager().wants_directory_assist()) {
        assists_.push_back(
            std::make_unique<core::PunoDirectory>(kernel_, cfg_, i));
        dirs_[i]->set_assist(assists_.back().get());
      }
      mesh_->set_handler(i, [this, i](noc::Packet p) {
        const auto* msg =
            static_cast<const coherence::Message*>(p.payload.get());
        switch (msg->type) {
          case coherence::MsgType::kGetS:
          case coherence::MsgType::kGetX:
          case coherence::MsgType::kPutX:
          case coherence::MsgType::kUnblock:
          case coherence::MsgType::kWbData:
            dirs_[i]->handle_message(*msg);
            break;
          default:
            l1s_[i]->handle_message(*msg);
            break;
        }
      });
    }
  }

  /// Blocking load: runs the simulation until the operation completes.
  /// Returns the completion flag (false = cancelled by a local abort).
  bool do_load(NodeId node, Addr addr, bool transactional = false,
               bool exclusive_hint = false, Cycle budget = 100000) {
    bool done = false, ok = false;
    l1s_[node]->load(addr, transactional, exclusive_hint, [&](bool success) {
      done = true;
      ok = success;
    });
    kernel_.run_until([&] { return done; }, budget);
    EXPECT_TRUE(done) << "load did not complete within budget";
    if (ok && transactional) txns_[node]->on_access(addr, false, 0);
    drain();
    return ok;
  }

  /// Lets trailing protocol actions (UNBLOCK, writebacks) land so directory
  /// state is settled when a test inspects it. Bounded so tests with other
  /// traffic in flight (pollers) still make progress.
  void drain(Cycle budget = 400) {
    kernel_.run_until([&] { return mesh_->idle(); }, budget);
    kernel_.run_for(2);
  }

  bool do_store(NodeId node, Addr addr, bool transactional = false,
                Cycle budget = 100000) {
    bool done = false, ok = false;
    l1s_[node]->store(addr, transactional, [&](bool success) {
      done = true;
      ok = success;
    });
    kernel_.run_until([&] { return done; }, budget);
    EXPECT_TRUE(done) << "store did not complete within budget";
    if (ok && transactional) txns_[node]->on_access(addr, true, 0);
    drain();
    return ok;
  }

  /// Starts an asynchronous operation; completion is reported through the
  /// returned flag pointer.
  std::shared_ptr<bool> async_store(NodeId node, Addr addr,
                                    bool transactional = true) {
    auto done = std::make_shared<bool>(false);
    l1s_[node]->store(addr, transactional, [done, this, node, addr,
                                            transactional](bool success) {
      *done = true;
      if (success && transactional) txns_[node]->on_access(addr, true, 0);
    });
    return done;
  }
  std::shared_ptr<bool> async_load(NodeId node, Addr addr,
                                   bool transactional = true) {
    auto done = std::make_shared<bool>(false);
    l1s_[node]->load(addr, transactional, false,
                     [done, this, node, addr, transactional](bool success) {
                       *done = true;
                       if (success && transactional) {
                         txns_[node]->on_access(addr, false, 0);
                       }
                     });
    return done;
  }

  void run(Cycle cycles) { kernel_.run_for(cycles); }

  [[nodiscard]] std::uint64_t stat(const std::string& name) {
    return kernel_.stats().counter(name).value();
  }

  using L1State = coherence::L1Controller::LineState;

  SystemConfig cfg_;
  sim::Kernel kernel_;
  std::unique_ptr<noc::Mesh> mesh_;
  std::vector<std::unique_ptr<htm::TxnContext>> txns_;
  std::vector<std::unique_ptr<coherence::L1Controller>> l1s_;
  std::vector<std::unique_ptr<coherence::Directory>> dirs_;
  std::vector<std::unique_ptr<core::PunoDirectory>> assists_;
};

/// Same fixture with the PUNO scheme enabled.
class PunoProtocolFixture : public ProtocolFixture {
 protected:
  PunoProtocolFixture() : ProtocolFixture(make_config()) {}
  static SystemConfig make_config() {
    SystemConfig cfg;
    cfg.scheme = Scheme::kPuno;
    return cfg;
  }
};

/// Full-system harness (cores + STAMP-profile workload + Cmp), factoring
/// the "build config, make workload, run, inspect" boilerplate the
/// integration tests all repeat — with the protocol invariant oracle
/// optionally riding along so any property test doubles as a protocol
/// consistency test.
class CmpHarness {
 public:
  struct Options {
    std::string workload = "intruder";
    Scheme scheme = Scheme::kBaseline;
    std::uint64_t seed = 1;
    double scale = 0.12;
    /// Attach the invariant checker (off = zero overhead, as in production).
    bool attach_checker = false;
    check::CheckerConfig checker{};
  };

  explicit CmpHarness(Options opts) : opts_(std::move(opts)) {
    cfg_.scheme = opts_.scheme;
    cfg_.seed = opts_.seed;
    workload_ = workloads::stamp::make(opts_.workload, cfg_.num_nodes,
                                       opts_.seed, opts_.scale);
    quota_ = workloads::stamp::make_spec(opts_.workload, opts_.scale)
                 .txns_per_node;
    cmp_ = std::make_unique<arch::Cmp>(cfg_, *workload_);
    if (opts_.attach_checker) {
      checker_ = check::InvariantChecker::attach(*cmp_, opts_.checker);
    }
  }

  [[nodiscard]] bool run(Cycle max_cycles = 20'000'000) {
    const bool completed = cmp_->run(max_cycles);
    if (checker_) checker_->check_now(cmp_->kernel().now());
    return completed;
  }

  /// Fails the current test with a formatted report if the oracle tripped.
  void expect_invariants_clean() const {
    if (!checker_) return;
    for (const auto& v : checker_->violations()) {
      ADD_FAILURE() << check::format_violation(v);
    }
  }

  [[nodiscard]] arch::Cmp& cmp() noexcept { return *cmp_; }
  [[nodiscard]] const SystemConfig& cfg() const noexcept { return cfg_; }
  [[nodiscard]] std::uint32_t quota() const noexcept { return quota_; }
  [[nodiscard]] const check::InvariantChecker* checker() const noexcept {
    return checker_.get();
  }

 private:
  Options opts_;
  SystemConfig cfg_;
  std::unique_ptr<workloads::Workload> workload_;
  std::uint32_t quota_ = 0;
  std::unique_ptr<arch::Cmp> cmp_;
  std::unique_ptr<check::InvariantChecker> checker_;
};

}  // namespace puno::testing
