#include "traffic/arrivals.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace puno::traffic {
namespace {

/// Mean arrivals per kcycle over `count` arrivals.
[[nodiscard]] double measured_rate(ArrivalSchedule& sched, int count) {
  std::uint64_t last = 0;
  for (int i = 0; i < count; ++i) last = sched.next();
  return 1000.0 * count / static_cast<double>(last);
}

TEST(ArrivalSchedule, TimesStrictlyIncrease) {
  TrafficConfig cfg;
  cfg.rate_per_kcycle = 100;
  ArrivalSchedule sched(cfg, 1, 0);
  std::uint64_t prev = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t t = sched.next();
    EXPECT_GT(t, prev);  // at least one cycle apart, so queues drain
    prev = t;
  }
}

TEST(ArrivalSchedule, DeterministicPerStream) {
  TrafficConfig cfg;
  cfg.arrival = ArrivalKind::kOnOff;
  ArrivalSchedule a(cfg, 99, 0xA05);
  ArrivalSchedule b(cfg, 99, 0xA05);
  ArrivalSchedule other(cfg, 99, 0xA06);
  bool diverged = false;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t t = a.next();
    EXPECT_EQ(t, b.next());
    diverged |= other.next() != t;
  }
  EXPECT_TRUE(diverged) << "per-core streams must be decorrelated";
}

TEST(ArrivalSchedule, PoissonHitsTheConfiguredMeanRate) {
  TrafficConfig cfg;
  cfg.rate_per_kcycle = 50;  // mean gap 20 cycles
  ArrivalSchedule sched(cfg, 7, 1);
  // Integer-cycle quantization (each gap is ceil'd and floored at 1) biases
  // the realized rate slightly low; 15% covers it plus sampling noise.
  EXPECT_NEAR(measured_rate(sched, 20000), 50.0, 50.0 * 0.15);
}

TEST(ArrivalSchedule, OnOffPreservesTheMeanRate) {
  TrafficConfig cfg;
  cfg.arrival = ArrivalKind::kOnOff;
  cfg.rate_per_kcycle = 40;
  cfg.burst_on_frac = 0.2;
  cfg.burst_boost = 4.0;
  cfg.burst_period = 10'000;
  ArrivalSchedule sched(cfg, 21, 1);
  EXPECT_NEAR(measured_rate(sched, 20000), 40.0, 40.0 * 0.15);
}

TEST(ArrivalSchedule, OnOffRateMultiplierIsASquareWave) {
  TrafficConfig cfg;
  cfg.arrival = ArrivalKind::kOnOff;
  cfg.burst_on_frac = 0.25;
  cfg.burst_boost = 3.0;
  cfg.burst_period = 1000;
  ArrivalSchedule sched(cfg, 1, 0);
  EXPECT_DOUBLE_EQ(sched.rate_multiplier(100), 3.0);   // inside the burst
  const double off = sched.rate_multiplier(600);       // outside
  EXPECT_LT(off, 1.0);
  // on*boost + (1-on)*off == 1 keeps the long-run mean at the base rate.
  EXPECT_NEAR(0.25 * 3.0 + 0.75 * off, 1.0, 1e-9);
}

TEST(ArrivalSchedule, OnOffOffRateClampsAtZeroWhenBurstExceedsMean) {
  // on_frac * boost = 0.25 * 8 = 2x the mean: no off-rate can compensate,
  // so it clamps at 0 and the schedule is silent between bursts.
  TrafficConfig cfg;
  cfg.arrival = ArrivalKind::kOnOff;
  cfg.burst_on_frac = 0.25;
  cfg.burst_boost = 8.0;
  cfg.burst_period = 1000;
  ArrivalSchedule sched(cfg, 1, 0);
  EXPECT_DOUBLE_EQ(sched.rate_multiplier(100), 8.0);
  EXPECT_DOUBLE_EQ(sched.rate_multiplier(600), 0.0);
}

TEST(ArrivalSchedule, DiurnalRateMultiplierOscillates) {
  TrafficConfig cfg;
  cfg.arrival = ArrivalKind::kDiurnal;
  cfg.diurnal_amplitude = 0.8;
  cfg.diurnal_period = 1000;
  ArrivalSchedule sched(cfg, 1, 0);
  EXPECT_NEAR(sched.rate_multiplier(250), 1.8, 1e-6);  // sin peak
  EXPECT_NEAR(sched.rate_multiplier(750), 0.2, 1e-6);  // sin trough
  EXPECT_NEAR(sched.rate_multiplier(0), 1.0, 1e-6);
}

TEST(ArrivalSchedule, BurstsActuallyCluster) {
  // On/off traffic at the same mean must show burstier gaps than Poisson:
  // compare the variance of inter-arrival times.
  TrafficConfig poisson;
  poisson.rate_per_kcycle = 20;
  TrafficConfig onoff = poisson;
  onoff.arrival = ArrivalKind::kOnOff;
  onoff.burst_on_frac = 0.1;
  onoff.burst_boost = 10.0;
  onoff.burst_period = 20'000;

  const auto gap_variance = [](const TrafficConfig& cfg) {
    ArrivalSchedule sched(cfg, 3, 2);
    double sum = 0.0, sq = 0.0;
    std::uint64_t prev = 0;
    constexpr int kN = 10000;
    for (int i = 0; i < kN; ++i) {
      const std::uint64_t t = sched.next();
      const double gap = static_cast<double>(t - prev);
      prev = t;
      sum += gap;
      sq += gap * gap;
    }
    const double mean = sum / kN;
    return sq / kN - mean * mean;
  };

  EXPECT_GT(gap_variance(onoff), 2.0 * gap_variance(poisson));
}

}  // namespace
}  // namespace puno::traffic
