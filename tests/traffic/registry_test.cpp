#include "traffic/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "traffic/engine.hpp"
#include "workloads/stamp.hpp"

namespace puno::traffic::registry {
namespace {

[[nodiscard]] bool contains(const std::vector<std::string>& v,
                            const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

TEST(Registry, ListsStampProfilesFirstThenTrafficKernels) {
  const std::vector<Entry>& all = entries();
  ASSERT_EQ(all.size(), workloads::stamp::benchmark_names().size() + 4);
  // STAMP block first, in stamp order.
  for (std::size_t i = 0; i < workloads::stamp::benchmark_names().size();
       ++i) {
    EXPECT_EQ(all[i].name, workloads::stamp::benchmark_names()[i]);
    EXPECT_FALSE(all[i].open_loop);
    EXPECT_FALSE(all[i].description.empty());
  }
  // Traffic kernels last, flagged open loop.
  for (std::size_t i = workloads::stamp::benchmark_names().size();
       i < all.size(); ++i) {
    EXPECT_TRUE(all[i].open_loop);
    EXPECT_EQ(all[i].name.rfind("traffic-", 0), 0u);
  }
}

TEST(Registry, KnowsEveryNameAndNothingElse) {
  const std::vector<std::string> n = names();
  EXPECT_TRUE(contains(n, "kmeans"));
  EXPECT_TRUE(contains(n, "traffic-map"));
  EXPECT_TRUE(contains(n, "traffic-set"));
  EXPECT_TRUE(contains(n, "traffic-queue"));
  EXPECT_TRUE(contains(n, "traffic-counter"));
  for (const std::string& name : n) EXPECT_TRUE(known(name));
  EXPECT_FALSE(known("traffic-heap"));
  EXPECT_FALSE(known("vacations"));
}

TEST(Registry, IsTrafficSeparatesTheFamilies) {
  EXPECT_TRUE(is_traffic("traffic-queue"));
  EXPECT_FALSE(is_traffic("kmeans"));
  EXPECT_FALSE(is_traffic("traffic-heap"));  // unknown is not traffic
}

TEST(Registry, MakeDispatchesOnFamily) {
  SystemConfig cfg;
  cfg.num_nodes = 4;
  cfg.traffic.arrivals_per_node = 8;

  const auto open = make("traffic-counter", cfg);
  ASSERT_NE(dynamic_cast<OpenLoopWorkload*>(open.get()), nullptr);
  EXPECT_EQ(dynamic_cast<OpenLoopWorkload*>(open.get())->kind(),
            KernelKind::kCounter);

  const auto closed = make("kmeans", cfg, 0.05);
  ASSERT_NE(closed, nullptr);
  EXPECT_EQ(dynamic_cast<OpenLoopWorkload*>(closed.get()), nullptr);
}

TEST(Registry, MakeAppliesScaleToTrafficQuota) {
  SystemConfig cfg;
  cfg.num_nodes = 2;
  cfg.traffic.arrivals_per_node = 100;
  const auto wl = make("traffic-map", cfg, 0.25);
  ASSERT_NE(dynamic_cast<OpenLoopWorkload*>(wl.get()), nullptr);
  EXPECT_EQ(dynamic_cast<OpenLoopWorkload*>(wl.get())->quota(), 25u);
}

TEST(Registry, MakeThrowsOnUnknownName) {
  SystemConfig cfg;
  EXPECT_THROW((void)make("traffic-heap", cfg), std::invalid_argument);
  EXPECT_THROW((void)make("", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace puno::traffic::registry
