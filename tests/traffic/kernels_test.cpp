#include "traffic/kernels.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"
#include "traffic/placement.hpp"

namespace puno::traffic {
namespace {

constexpr std::uint32_t kBlock = 64;
constexpr Addr kAnchorTop = kAnchorRegionBlocks * kBlock;

[[nodiscard]] TrafficConfig config(double update_frac) {
  TrafficConfig cfg;
  cfg.keys = 4096;
  cfg.update_frac = update_frac;
  return cfg;
}

TEST(KernelGen, NameRoundTrip) {
  for (const KernelKind k : {KernelKind::kMap, KernelKind::kSet,
                             KernelKind::kQueue, KernelKind::kCounter}) {
    EXPECT_EQ(kernel_kind_from_string(to_string(k)), k);
  }
  EXPECT_FALSE(kernel_kind_from_string("heap").has_value());
}

TEST(KernelGen, LookupOnlyMixNeverWrites) {
  // update_frac = 0: map and set degenerate to pure lookups.
  for (const KernelKind k : {KernelKind::kMap, KernelKind::kSet}) {
    const KernelGen gen(k, config(0.0), kBlock);
    sim::Rng rng(1, 1);
    for (int i = 0; i < 200; ++i) {
      const workloads::TxnDesc d = gen.make(i % 4096, 0, rng);
      ASSERT_FALSE(d.ops.empty());
      for (const workloads::TxOp& op : d.ops) {
        EXPECT_FALSE(op.is_store);
      }
    }
  }
}

TEST(KernelGen, UpdateOnlyMixAlwaysWritesTheKeyBlock) {
  const KernelGen gen(KernelKind::kMap, config(1.0), kBlock);
  sim::Rng rng(2, 1);
  for (int i = 0; i < 200; ++i) {
    const workloads::TxnDesc d = gen.make(i, 0, rng);
    bool wrote_key_region = false;
    for (const workloads::TxOp& op : d.ops) {
      wrote_key_region |= op.is_store && op.addr >= kAnchorTop;
    }
    EXPECT_TRUE(wrote_key_region);
  }
}

TEST(KernelGen, QueueAlwaysRmwsASharedAnchor) {
  // Both enqueue and dequeue read-then-write a head/tail anchor cell — the
  // queue-head contention the paper's intruder/genome profiles exhibit.
  const KernelGen gen(KernelKind::kQueue, config(0.5), kBlock);
  sim::Rng rng(3, 1);
  for (int i = 0; i < 200; ++i) {
    const workloads::TxnDesc d = gen.make(i, 0, rng);
    ASSERT_EQ(d.ops.size(), 3u);
    EXPECT_LT(d.ops.front().addr, kAnchorTop);  // anchor load first
    EXPECT_FALSE(d.ops.front().is_store);
    EXPECT_LT(d.ops.back().addr, kAnchorTop);   // anchor store last
    EXPECT_TRUE(d.ops.back().is_store);
    EXPECT_EQ(d.ops.front().addr, d.ops.back().addr);
  }
}

TEST(KernelGen, CounterConfinesItselfToTheConfiguredShards) {
  TrafficConfig cfg = config(1.0);
  cfg.counter_blocks = 4;
  const KernelGen gen(KernelKind::kCounter, cfg, kBlock);
  sim::Rng rng(4, 1);
  std::set<Addr> cells;
  for (int i = 0; i < 400; ++i) {
    const workloads::TxnDesc d = gen.make(i, 0, rng);
    ASSERT_EQ(d.ops.size(), 2u);
    EXPECT_FALSE(d.ops[0].is_store);
    EXPECT_TRUE(d.ops[1].is_store);
    EXPECT_EQ(d.ops[0].addr, d.ops[1].addr);
    EXPECT_LT(d.ops[0].addr, kAnchorTop);
    cells.insert(d.ops[0].addr);
  }
  EXPECT_EQ(cells.size(), 4u);
}

TEST(KernelGen, StaticSitesAndPcsAreStable) {
  // PC-indexed hardware (RMW predictor, TxLB) needs the same code sites
  // across dynamic instances: every descriptor's pcs derive from its site.
  const KernelGen gen(KernelKind::kMap, config(0.5), kBlock);
  sim::Rng rng(5, 1);
  std::set<StaticTxId> sites;
  for (int i = 0; i < 300; ++i) {
    const workloads::TxnDesc d = gen.make(i, 0, rng);
    ASSERT_NE(d.static_id, 0u);
    sites.insert(d.static_id);
    for (const workloads::TxOp& op : d.ops) {
      EXPECT_EQ(op.pc >> 16,
                static_cast<std::uint64_t>(d.static_id) + 1);
    }
  }
  EXPECT_EQ(sites.size(), 2u);  // map-get and map-put
}

TEST(KernelGen, DescriptorsAreDeterministic) {
  const TrafficConfig cfg = config(0.5);
  const KernelGen a(KernelKind::kSet, cfg, kBlock);
  const KernelGen b(KernelKind::kSet, cfg, kBlock);
  sim::Rng ra(6, 2), rb(6, 2);
  for (int i = 0; i < 200; ++i) {
    const workloads::TxnDesc da = a.make(i * 3, 100, ra);
    const workloads::TxnDesc db = b.make(i * 3, 100, rb);
    ASSERT_EQ(da.static_id, db.static_id);
    ASSERT_EQ(da.ops.size(), db.ops.size());
    for (std::size_t j = 0; j < da.ops.size(); ++j) {
      EXPECT_EQ(da.ops[j].addr, db.ops[j].addr);
      EXPECT_EQ(da.ops[j].is_store, db.ops[j].is_store);
      EXPECT_EQ(da.ops[j].pc, db.ops[j].pc);
      EXPECT_EQ(da.ops[j].pre_think, db.ops[j].pre_think);
    }
  }
}

TEST(KernelGen, OpThinkRespectsBounds) {
  TrafficConfig cfg = config(0.5);
  cfg.op_think_min = 3;
  cfg.op_think_max = 7;
  const KernelGen gen(KernelKind::kQueue, cfg, kBlock);
  sim::Rng rng(8, 1);
  for (int i = 0; i < 200; ++i) {
    for (const workloads::TxOp& op : gen.make(i, 0, rng).ops) {
      EXPECT_GE(op.pre_think, 3u);
      EXPECT_LE(op.pre_think, 7u);
    }
  }
}

}  // namespace
}  // namespace puno::traffic
