#include "traffic/engine.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "arch/cmp.hpp"
#include "sim/kernel.hpp"

namespace puno::traffic {
namespace {

constexpr std::uint32_t kBlock = 64;

[[nodiscard]] TrafficConfig small_config() {
  TrafficConfig cfg;
  cfg.arrivals_per_node = 20;
  cfg.keys = 512;
  cfg.rate_per_kcycle = 50;
  return cfg;
}

TEST(OpenLoopWorkload, DrainModeYieldsExactlyTheQuota) {
  OpenLoopWorkload wl(KernelKind::kMap, small_config(), 4, 1, kBlock);
  EXPECT_FALSE(wl.attached());
  EXPECT_EQ(wl.quota(), 20u);
  for (NodeId n = 0; n < 4; ++n) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(wl.next(n).has_value()) << "node " << n << " txn " << i;
    }
    EXPECT_FALSE(wl.next(n).has_value());
    EXPECT_FALSE(wl.next(n).has_value());  // stays exhausted
  }
  // Drain mode admits everything and drops nothing.
  EXPECT_EQ(wl.offered(), 80u);
  EXPECT_EQ(wl.admitted(), 80u);
  EXPECT_EQ(wl.begun(), 80u);
  EXPECT_EQ(wl.dropped(), 0u);
}

TEST(OpenLoopWorkload, ScaleMultipliesTheQuota) {
  const TrafficConfig cfg = small_config();
  EXPECT_EQ(OpenLoopWorkload(KernelKind::kMap, cfg, 2, 1, kBlock, 0.5)
                .quota(),
            10u);
  // Floored at one transaction so a tiny scale still runs something.
  EXPECT_EQ(OpenLoopWorkload(KernelKind::kMap, cfg, 2, 1, kBlock, 0.001)
                .quota(),
            1u);
}

TEST(OpenLoopWorkload, DrainModeIsDeterministic) {
  OpenLoopWorkload a(KernelKind::kQueue, small_config(), 4, 7, kBlock);
  OpenLoopWorkload b(KernelKind::kQueue, small_config(), 4, 7, kBlock);
  for (NodeId n = 0; n < 4; ++n) {
    for (;;) {
      const std::optional<workloads::TxnDesc> da = a.next(n);
      const std::optional<workloads::TxnDesc> db = b.next(n);
      ASSERT_EQ(da.has_value(), db.has_value());
      if (!da) break;
      ASSERT_EQ(da->static_id, db->static_id);
      ASSERT_EQ(da->pre_think, db->pre_think);
      ASSERT_EQ(da->ops.size(), db->ops.size());
      for (std::size_t j = 0; j < da->ops.size(); ++j) {
        EXPECT_EQ(da->ops[j].addr, db->ops[j].addr);
        EXPECT_EQ(da->ops[j].is_store, db->ops[j].is_store);
      }
    }
  }
}

TEST(OpenLoopWorkload, NodesProduceDecorrelatedStreams) {
  OpenLoopWorkload wl(KernelKind::kMap, small_config(), 2, 1, kBlock);
  std::vector<Addr> first_addr;
  bool differ = false;
  for (NodeId n = 0; n < 2; ++n) {
    const auto d = wl.next(n);
    ASSERT_TRUE(d.has_value());
    ASSERT_FALSE(d->ops.empty());
    first_addr.push_back(d->ops.back().addr);
  }
  // Two nodes drawing from independent streams; with 512 keys the chance of
  // an accidental clash on the first draw is small, and the full descriptor
  // stream diverging is what matters.
  for (int i = 0; i < 10; ++i) {
    const auto d0 = wl.next(0);
    const auto d1 = wl.next(1);
    if (!d0 || !d1) break;
    differ |= d0->ops.back().addr != d1->ops.back().addr ||
              d0->pre_think != d1->pre_think;
  }
  EXPECT_TRUE(differ);
}

TEST(OpenLoopWorkload, AttachedServesFutureArrivalsWithPreThink) {
  // A kernel that never advances (now() == 0): every poll pre-admits the
  // next future arrival, so pre_think must equal the arrival gap and the
  // bounded queue can never overflow.
  sim::Kernel kernel;
  OpenLoopWorkload wl(KernelKind::kSet, small_config(), 1, 3, kBlock);
  wl.attach(kernel);
  EXPECT_TRUE(wl.attached());

  std::uint64_t last_arrival = 0;
  for (std::uint64_t i = 0; i < wl.quota(); ++i) {
    const auto d = wl.next(0);
    ASSERT_TRUE(d.has_value());
    // pre_think carries the absolute arrival time here since now() == 0 and
    // arrivals strictly increase.
    EXPECT_GT(d->pre_think, last_arrival);
    last_arrival = d->pre_think;
  }
  EXPECT_FALSE(wl.next(0).has_value());
  EXPECT_EQ(wl.dropped(), 0u);
  EXPECT_EQ(wl.begun(), wl.quota());
  // The lazily-created stats mirror the accessors.
  EXPECT_EQ(kernel.stats().counter("traffic.offered").value(), wl.offered());
  EXPECT_EQ(kernel.stats().counter("traffic.dropped").value(), 0u);
}

TEST(OpenLoopWorkload, OverloadedSimulationShedsLoad) {
  // End to end: a high arrival rate against a tiny queue must drop, and the
  // conservation law offered == admitted + dropped, committed == admitted
  // must hold exactly once the run drains.
  SystemConfig cfg;
  cfg.noc.mesh_width = 2;
  cfg.num_nodes = 4;
  cfg.seed = 5;
  cfg.traffic.arrivals_per_node = 60;
  cfg.traffic.rate_per_kcycle = 200;  // far beyond service capacity
  cfg.traffic.queue_capacity = 2;
  cfg.traffic.keys = 64;

  OpenLoopWorkload wl(KernelKind::kQueue, cfg.traffic, cfg.num_nodes,
                      cfg.seed, kBlock);
  arch::Cmp cmp(cfg, wl);
  wl.attach(cmp.kernel());
  ASSERT_TRUE(cmp.run(2'000'000));

  EXPECT_EQ(wl.offered(), 240u);
  EXPECT_GT(wl.dropped(), 0u) << "rate 10x service with queue depth 2 must "
                                 "shed load";
  EXPECT_EQ(wl.offered(), wl.admitted() + wl.dropped());
  EXPECT_EQ(wl.begun(), wl.admitted());
  EXPECT_EQ(cmp.total_committed(), wl.admitted());
  // Queue delay histogram saw every admitted-from-queue request.
  const auto& hists = cmp.kernel().stats().histograms();
  const auto it = hists.find("traffic.queue_delay");
  ASSERT_NE(it, hists.end());
  EXPECT_EQ(it->second.total(), wl.begun());
}

TEST(OpenLoopWorkload, UncontendedSimulationDropsNothing) {
  SystemConfig cfg;
  cfg.noc.mesh_width = 2;
  cfg.num_nodes = 4;
  cfg.seed = 11;
  cfg.traffic.arrivals_per_node = 30;
  cfg.traffic.rate_per_kcycle = 5;  // one arrival per 200 cycles per core
  cfg.traffic.queue_capacity = 64;
  cfg.traffic.keys = 4096;
  cfg.traffic.zipf_theta = 0.0;  // uniform: almost no conflicts

  OpenLoopWorkload wl(KernelKind::kMap, cfg.traffic, cfg.num_nodes, cfg.seed,
                      kBlock);
  arch::Cmp cmp(cfg, wl);
  wl.attach(cmp.kernel());
  ASSERT_TRUE(cmp.run(2'000'000));

  EXPECT_EQ(wl.dropped(), 0u);
  EXPECT_EQ(cmp.total_committed(), 120u);
}

TEST(OpenLoopWorkload, DropsConsumeNoGeneratorRandomness) {
  // The determinism contract: the descriptor bodies of admitted arrivals
  // depend only on the admitted prefix, so a capacity-1 run's descriptors
  // are a subsequence of the no-drop run's arrival-order stream. Verified
  // indirectly: two runs that admit everything agree regardless of queue
  // capacity (capacity only matters when drops occur).
  TrafficConfig big = small_config();
  big.queue_capacity = 1000;
  TrafficConfig small = small_config();
  small.queue_capacity = 64;

  OpenLoopWorkload a(KernelKind::kMap, big, 2, 9, kBlock);
  OpenLoopWorkload b(KernelKind::kMap, small, 2, 9, kBlock);
  sim::Kernel ka, kb;
  a.attach(ka);
  b.attach(kb);
  for (NodeId n = 0; n < 2; ++n) {
    for (;;) {
      const auto da = a.next(n);
      const auto db = b.next(n);
      ASSERT_EQ(da.has_value(), db.has_value());
      if (!da) break;
      ASSERT_EQ(da->ops.size(), db->ops.size());
      for (std::size_t j = 0; j < da->ops.size(); ++j) {
        EXPECT_EQ(da->ops[j].addr, db->ops[j].addr);
      }
    }
  }
}

}  // namespace
}  // namespace puno::traffic
