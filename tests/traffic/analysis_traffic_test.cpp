// workloads::analysis over the open-loop traffic kernels: the static
// profiler must see the knobs — more Zipfian skew concentrates accesses on
// fewer blocks, hot sets shrink the effective footprint, and the queue
// kernel's shared anchors dominate its access distribution.
#include <gtest/gtest.h>

#include "traffic/engine.hpp"
#include "workloads/analysis.hpp"

namespace puno::traffic {
namespace {

constexpr NodeId kNodes = 4;
constexpr std::uint32_t kBlock = 64;

[[nodiscard]] workloads::WorkloadProfile profile(KernelKind kind,
                                                 const TrafficConfig& cfg) {
  // Drain mode: analyze() consumes the stream without a simulator.
  OpenLoopWorkload wl(kind, cfg, kNodes, 23, kBlock);
  return workloads::analyze(wl, kNodes);
}

[[nodiscard]] TrafficConfig base_config() {
  TrafficConfig cfg;
  cfg.arrivals_per_node = 400;
  cfg.keys = 8192;
  cfg.update_frac = 0.5;
  return cfg;
}

TEST(TrafficAnalysis, ZipfSkewConcentratesAccessesMonotonically) {
  double prev_top16 = -1.0;
  for (const double theta : {0.0, 0.6, 0.99, 1.3}) {
    TrafficConfig cfg = base_config();
    cfg.zipf_theta = theta;
    const workloads::WorkloadProfile p = profile(KernelKind::kSet, cfg);
    EXPECT_EQ(p.total_txns, 400u * kNodes);
    EXPECT_GT(p.top16_access_share, prev_top16)
        << "theta=" << theta << " must concentrate more than the last";
    prev_top16 = p.top16_access_share;
  }
  // The high-skew end is genuinely hot-key traffic.
  EXPECT_GT(prev_top16, 0.3);
}

TEST(TrafficAnalysis, SkewAlsoShrinksTheObservedFootprint) {
  TrafficConfig uniform = base_config();
  uniform.zipf_theta = 0.0;
  TrafficConfig skewed = base_config();
  skewed.zipf_theta = 1.3;
  const auto pu = profile(KernelKind::kSet, uniform);
  const auto ps = profile(KernelKind::kSet, skewed);
  EXPECT_GT(pu.footprint_blocks, ps.footprint_blocks)
      << "uniform traffic touches many more distinct blocks";
}

TEST(TrafficAnalysis, HotSetSamplerConcentratesLikeItsFraction) {
  TrafficConfig cfg = base_config();
  cfg.hot_keys = 8;
  cfg.hot_frac = 0.9;
  const workloads::WorkloadProfile p = profile(KernelKind::kSet, cfg);
  // 90% of accesses land on 8 keys -> the top-16 blocks carry at least that.
  EXPECT_GT(p.top16_access_share, 0.8);
}

TEST(TrafficAnalysis, QueueKernelIsAnchorDominated) {
  // Every queue transaction RMWs the shared head or tail cell, so the
  // hottest block absorbs a large share of accesses and is write-shared by
  // every node — exactly the structure the PUNO paper targets.
  const workloads::WorkloadProfile p =
      profile(KernelKind::kQueue, base_config());
  EXPECT_GT(p.hottest_block_share, 0.1);
  EXPECT_GT(p.avg_sharing_degree, 1.0);
  EXPECT_GT(p.write_shared_fraction, 0.0);
}

TEST(TrafficAnalysis, PackingShrinksFootprintVersusSpread) {
  // Uniform sampling so the footprint geometry is clean (Zipf hot keys
  // dominate and mute the placement effect), and enough volume that the
  // key-region footprint dwarfs the fixed anchor-block floor shared by
  // both placements.
  TrafficConfig spread = base_config();
  spread.zipf_theta = 0.0;
  spread.arrivals_per_node = 2000;
  spread.placement = PlacementMode::kSpread;
  TrafficConfig packed = spread;
  packed.placement = PlacementMode::kPack;
  packed.keys_per_block = 8;
  const auto ps = profile(KernelKind::kSet, spread);
  const auto pp = profile(KernelKind::kSet, packed);
  EXPECT_LT(pp.footprint_blocks * 2, ps.footprint_blocks)
      << "packing 8 keys per block must shrink the footprint several-fold";
}

}  // namespace
}  // namespace puno::traffic
