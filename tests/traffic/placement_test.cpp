#include "traffic/placement.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace puno::traffic {
namespace {

constexpr std::uint32_t kBlock = 64;

[[nodiscard]] TrafficConfig config(PlacementMode mode, std::uint64_t keys,
                                   std::uint32_t per_block) {
  TrafficConfig cfg;
  cfg.placement = mode;
  cfg.keys = keys;
  cfg.keys_per_block = per_block;
  return cfg;
}

TEST(Placement, SpreadGivesEveryKeyItsOwnBlock) {
  const Placement p(config(PlacementMode::kSpread, 500, 4), kBlock);
  std::set<Addr> blocks;
  for (std::uint64_t k = 0; k < 500; ++k) {
    const Addr a = p.key_addr(k);
    EXPECT_EQ(a % kBlock, 0u);
    EXPECT_GE(a, kAnchorRegionBlocks * kBlock) << "keys must sit above the "
                                                  "anchor region";
    blocks.insert(a);
  }
  EXPECT_EQ(blocks.size(), 500u);
  EXPECT_EQ(p.key_blocks(), 500u);
}

TEST(Placement, PackCoLocatesAdjacentKeys) {
  const Placement p(config(PlacementMode::kPack, 100, 4), kBlock);
  EXPECT_EQ(p.key_addr(0), p.key_addr(3));
  EXPECT_NE(p.key_addr(3), p.key_addr(4));
  EXPECT_EQ(p.key_addr(4), p.key_addr(7));
  EXPECT_EQ(p.key_blocks(), 25u);
}

TEST(Placement, ShufflePermutationIsABijection) {
  const Placement p(config(PlacementMode::kShuffle, 1000, 4), kBlock);
  std::vector<bool> seen(1000, false);
  bool moved_any = false;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t img = p.permute(k);
    ASSERT_LT(img, 1000u);
    ASSERT_FALSE(seen[img]) << "permute must be injective";
    seen[img] = true;
    moved_any |= img != k;
  }
  EXPECT_TRUE(moved_any);
}

TEST(Placement, ShuffleCoLocatesUnrelatedKeys) {
  // The adversarial property: some block holds keys that are far apart in
  // the logical keyspace (false sharing no software layer can see).
  const Placement p(config(PlacementMode::kShuffle, 4096, 4), kBlock);
  bool found_distant_pair = false;
  for (std::uint64_t a = 0; a < 256 && !found_distant_pair; ++a) {
    for (std::uint64_t b = a + 64; b < 4096; b += 97) {
      if (p.key_addr(a) == p.key_addr(b)) {
        found_distant_pair = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_distant_pair);
}

TEST(Placement, ShuffleIsDeterministicAcrossInstances) {
  const Placement a(config(PlacementMode::kShuffle, 777, 3), kBlock);
  const Placement b(config(PlacementMode::kShuffle, 777, 3), kBlock);
  for (std::uint64_t k = 0; k < 777; ++k) {
    EXPECT_EQ(a.key_addr(k), b.key_addr(k));
  }
}

TEST(Placement, AnchorRegionNeverAliasesKeys) {
  for (const PlacementMode mode :
       {PlacementMode::kSpread, PlacementMode::kPack,
        PlacementMode::kShuffle}) {
    const Placement p(config(mode, 2048, 4), kBlock);
    Addr max_anchor = 0;
    for (std::uint64_t i = 0; i < kAnchorRegionBlocks + 10; ++i) {
      max_anchor = std::max(max_anchor, p.anchor_addr(i));
    }
    for (std::uint64_t k = 0; k < 2048; k += 17) {
      EXPECT_GT(p.key_addr(k), max_anchor);
    }
  }
}

TEST(Placement, TinyAndNonPowerOfTwoKeyspacesWork) {
  for (const std::uint64_t keys : {1ull, 2ull, 3ull, 5ull, 65ull, 1025ull}) {
    const Placement p(config(PlacementMode::kShuffle, keys, 2), kBlock);
    std::set<std::uint64_t> images;
    for (std::uint64_t k = 0; k < keys; ++k) {
      const std::uint64_t img = p.permute(k);
      ASSERT_LT(img, keys);
      images.insert(img);
    }
    EXPECT_EQ(images.size(), keys);
  }
}

}  // namespace
}  // namespace puno::traffic
