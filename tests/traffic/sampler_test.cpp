#include "traffic/sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace puno::traffic {
namespace {

constexpr std::uint64_t kKeys = 1024;
constexpr int kDraws = 20000;

/// Fraction of draws landing on the 16 lowest ranks.
[[nodiscard]] double top16_share(const ZipfianSampler& z, std::uint64_t seed) {
  sim::Rng rng(seed, 7);
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (z.next(rng) < 16) ++hits;
  }
  return static_cast<double>(hits) / kDraws;
}

TEST(ZipfianSampler, SkewGrowsMonotonicallyWithTheta) {
  // The defining property of the knob: more theta, more concentration.
  const double s0 = top16_share(ZipfianSampler(kKeys, 0.0), 42);
  const double s1 = top16_share(ZipfianSampler(kKeys, 0.5), 42);
  const double s2 = top16_share(ZipfianSampler(kKeys, 0.99), 42);
  const double s3 = top16_share(ZipfianSampler(kKeys, 1.2), 42);
  EXPECT_LT(s0, s1);
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s3);
  // theta = 0 is uniform: top-16 share is about 16/1024.
  EXPECT_NEAR(s0, 16.0 / kKeys, 0.01);
  // YCSB-default skew puts a large share on the head of the distribution.
  EXPECT_GT(s2, 0.3);
}

TEST(ZipfianSampler, ThetaOnePoleIsSafe) {
  // theta == 1 hits the closed-form pole; the sampler must nudge off it
  // instead of dividing by zero.
  const ZipfianSampler z(kKeys, 1.0);
  sim::Rng rng(9, 1);
  std::uint64_t max_rank = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t r = z.next(rng);
    ASSERT_LT(r, kKeys);
    max_rank = std::max(max_rank, r);
  }
  // Draws still spread beyond the head.
  EXPECT_GT(max_rank, 16u);
  EXPECT_GT(top16_share(z, 11), 0.3);
}

TEST(ZipfianSampler, RankZeroIsHottest) {
  const ZipfianSampler z(kKeys, 0.99);
  sim::Rng rng(3, 1);
  std::vector<int> counts(kKeys, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z.next(rng)];
  EXPECT_EQ(std::distance(counts.begin(),
                          std::max_element(counts.begin(), counts.end())),
            0);
}

TEST(ZipfianSampler, DeterministicAcrossInstances) {
  const ZipfianSampler a(kKeys, 0.8);
  const ZipfianSampler b(kKeys, 0.8);
  sim::Rng ra(17, 4), rb(17, 4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(ra), b.next(rb));
  }
}

TEST(HotSetSampler, HotFractionIsRespected) {
  constexpr std::uint64_t kHot = 10;
  const HotSetSampler h(1000, kHot, 0.9);
  sim::Rng rng(5, 2);
  int hot_hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t r = h.next(rng);
    ASSERT_LT(r, 1000u);
    if (r < kHot) ++hot_hits;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / kDraws, 0.9, 0.02);
}

TEST(KeySampler, PhaseRotationMovesTheHotSet) {
  TrafficConfig cfg;
  cfg.keys = kKeys;
  cfg.phase_cycles = 100;
  const KeySampler s(cfg);

  EXPECT_EQ(s.phase(0), 0u);
  EXPECT_EQ(s.phase(99), 0u);
  EXPECT_EQ(s.phase(100), 1u);
  EXPECT_EQ(s.phase(250), 2u);

  // Phase 0 is the identity; later phases shift ranks elsewhere but stay a
  // bijection (a pure rotation).
  EXPECT_EQ(s.rotate(7, 0), 7u);
  EXPECT_NE(s.rotate(7, 1), 7u);
  std::vector<bool> seen(kKeys, false);
  for (std::uint64_t rank = 0; rank < kKeys; ++rank) {
    const std::uint64_t key = s.rotate(rank, 3);
    ASSERT_LT(key, kKeys);
    ASSERT_FALSE(seen[key]);
    seen[key] = true;
  }
  // Successive phases land in unrelated regions, not adjacent slides.
  EXPECT_NE(s.rotate(0, 1), s.rotate(0, 2));
}

TEST(KeySampler, StaticWhenPhaseCyclesZero) {
  TrafficConfig cfg;
  cfg.keys = kKeys;
  cfg.phase_cycles = 0;
  const KeySampler s(cfg);
  EXPECT_EQ(s.phase(1'000'000), 0u);
  EXPECT_EQ(s.rotate(13, s.phase(1'000'000)), 13u);
}

}  // namespace
}  // namespace puno::traffic
