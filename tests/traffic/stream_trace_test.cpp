#include "traffic/stream_trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "traffic/engine.hpp"
#include "workloads/trace.hpp"

namespace puno::traffic {
namespace {

[[nodiscard]] std::string write_temp(const std::string& text,
                                     const std::string& stem) {
  const std::filesystem::path p =
      std::filesystem::temp_directory_path() / (stem + ".trace");
  std::ofstream out(p, std::ios::trunc);
  out << text;
  return p.string();
}

/// Records a small open-loop workload (drain mode) to trace-v1 text.
[[nodiscard]] std::string record_traffic(NodeId nodes) {
  TrafficConfig cfg;
  cfg.arrivals_per_node = 10;
  cfg.keys = 128;
  OpenLoopWorkload wl(KernelKind::kQueue, cfg, nodes, 13, 64);
  std::ostringstream out;
  workloads::TraceWorkload::record(wl, nodes, out);
  return out.str();
}

void expect_same_desc(const workloads::TxnDesc& a,
                      const workloads::TxnDesc& b) {
  ASSERT_EQ(a.static_id, b.static_id);
  ASSERT_EQ(a.pre_think, b.pre_think);
  ASSERT_EQ(a.post_think, b.post_think);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t j = 0; j < a.ops.size(); ++j) {
    EXPECT_EQ(a.ops[j].addr, b.ops[j].addr);
    EXPECT_EQ(a.ops[j].is_store, b.ops[j].is_store);
    EXPECT_EQ(a.ops[j].pc, b.ops[j].pc);
    EXPECT_EQ(a.ops[j].pre_think, b.ops[j].pre_think);
  }
}

TEST(StreamTraceWorkload, MatchesMaterializedReplayDescriptorForDescriptor) {
  constexpr NodeId kNodes = 4;
  const std::string text = record_traffic(kNodes);
  const std::string path = write_temp(text, "stream-equiv");

  std::istringstream in(text);
  workloads::TraceWorkload materialized = workloads::TraceWorkload::parse(in);
  StreamTraceWorkload streaming(path, kNodes);

  for (NodeId n = 0; n < kNodes; ++n) {
    for (;;) {
      const auto a = materialized.next(n);
      const auto b = streaming.next(n);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a) break;
      expect_same_desc(*a, *b);
    }
    EXPECT_EQ(streaming.replayed(n), 10u);
  }
  std::filesystem::remove(path);
}

TEST(StreamTraceWorkload, CursorsAdvanceIndependently) {
  constexpr NodeId kNodes = 3;
  const std::string path =
      write_temp(record_traffic(kNodes), "stream-cursors");
  StreamTraceWorkload wl(path, kNodes);

  // Drain node 2 completely before touching the others.
  int node2 = 0;
  while (wl.next(2).has_value()) ++node2;
  EXPECT_EQ(node2, 10);
  EXPECT_EQ(wl.replayed(0), 0u);
  EXPECT_TRUE(wl.next(0).has_value());
  EXPECT_TRUE(wl.next(1).has_value());
  EXPECT_FALSE(wl.next(2).has_value());  // stays exhausted
  std::filesystem::remove(path);
}

TEST(StreamTraceWorkload, ThrowsOnMissingFile) {
  EXPECT_THROW(StreamTraceWorkload("/nonexistent/nowhere.trace", 2),
               std::runtime_error);
}

TEST(StreamTraceWorkload, MalformedLinesNameTheOffendingToken) {
  const std::string path = write_temp(
      "trace-v1 bad\n"
      "txn 0 1 pre=0 post=0\n"
      "r banana pc=1 think=0\n"
      "end\n",
      "stream-badtoken");
  StreamTraceWorkload wl(path, 1);
  try {
    (void)wl.next(0);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
  std::filesystem::remove(path);
}

TEST(StreamTraceWorkload, RejectsTruncatedBlocks) {
  const std::string path = write_temp(
      "trace-v1 truncated\n"
      "txn 0 1 pre=0 post=0\n"
      "r 64 pc=1 think=0\n",  // no `end`
      "stream-truncated");
  StreamTraceWorkload wl(path, 1);
  EXPECT_THROW((void)wl.next(0), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(StreamTraceWorkload, RejectsMissingHeader) {
  const std::string path = write_temp(
      "txn 0 1 pre=0 post=0\nend\n", "stream-noheader");
  // The header is validated eagerly when the reader opens the file.
  EXPECT_THROW(StreamTraceWorkload(path, 1), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace puno::traffic
