// Spatial (per-tile) telemetry contracts:
//
//   1. Reconciliation: per-tile window deltas sum to the matching global
//      counters over the whole run — the heatmaps redistribute the totals
//      across the mesh, they never invent or lose events.
//   2. Observability: turning the spatial channels on does not perturb the
//      simulation (bit-identical RunResult vs. a non-spatial run).
//   3. Format: spatial samples round-trip through JSONL; non-spatial output
//      stays byte-identical to the pre-spatial schema (conditional keys).
//   4. Rendering: heatmap SVG geometry/ids, heat ramp endpoints, hotspot
//      ranking, concentration index, HTML escaping, and the dashboard's
//      mesh section (non-square meshes included).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/cmp.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats_io.hpp"
#include "sim/kernel.hpp"
#include "telemetry/dashboard.hpp"
#include "telemetry/export.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/html.hpp"
#include "telemetry/sampler.hpp"
#include "workloads/stamp.hpp"

namespace puno::telemetry {
namespace {

struct SampledRun {
  std::unique_ptr<arch::Cmp> cmp;
  std::unique_ptr<TelemetrySampler> sampler;
  std::unique_ptr<workloads::Workload> workload;
};

SampledRun run_spatial(Scheme scheme, Cycle interval = 200) {
  SampledRun r;
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 3;
  r.workload = workloads::stamp::make("kmeans", cfg.num_nodes, 3, 0.05);
  r.cmp = std::make_unique<arch::Cmp>(cfg, *r.workload);
  TelemetryRequest req;
  req.interval = interval;
  req.spatial = true;
  r.sampler = TelemetrySampler::attach(*r.cmp, req);
  r.cmp->run(2'000'000);
  r.sampler->finish();
  return r;
}

std::uint64_t counter_or_zero(const sim::StatsRegistry& stats,
                              const std::string& name) {
  const auto it = stats.counters().find(name);
  return it == stats.counters().end() ? 0 : it->second.value();
}

/// Sums one per-tile channel over every tile of every window.
std::uint64_t tile_sum(
    const std::vector<TelemetrySample>& samples,
    const std::vector<std::uint64_t>& (*get)(const TelemetrySample&)) {
  std::uint64_t acc = 0;
  for (const TelemetrySample& s : samples) {
    for (const std::uint64_t v : get(s)) acc += v;
  }
  return acc;
}

TEST(SpatialTelemetry, TileDeltasSumToGlobalCounters) {
  const auto run = run_spatial(Scheme::kPuno);
  ASSERT_EQ(run.sampler->series().dropped(), 0u);
  const auto& samples = run.sampler->series().samples();
  ASSERT_FALSE(samples.empty());
  ASSERT_TRUE(samples.front().spatial());
  const auto& stats = run.cmp->kernel().stats();

  EXPECT_EQ(tile_sum(samples,
                     [](const TelemetrySample& s)
                         -> const std::vector<std::uint64_t>& {
                       return s.tile_aborts;
                     }),
            counter_or_zero(stats, "htm.aborts"))
      << "victim-attributed aborts must redistribute htm.aborts";
  EXPECT_EQ(tile_sum(samples,
                     [](const TelemetrySample& s)
                         -> const std::vector<std::uint64_t>& {
                       return s.tile_false_aborts;
                     }),
            counter_or_zero(stats, "htm.false_abort_events"));
  EXPECT_EQ(tile_sum(samples,
                     [](const TelemetrySample& s)
                         -> const std::vector<std::uint64_t>& {
                       return s.tile_ud_mispredicts;
                     }),
            counter_or_zero(stats, "dir.mp_feedbacks"));
  EXPECT_EQ(tile_sum(samples,
                     [](const TelemetrySample& s)
                         -> const std::vector<std::uint64_t>& {
                       return s.tile_pbuffer_evictions;
                     }),
            counter_or_zero(stats, "puno.pbuffer_evictions"));
  // Every NACK has one sender and one receiver; over a full run the two
  // attributions can only differ by responses still in flight at the
  // budget, and this run completes (drains).
  EXPECT_EQ(tile_sum(samples,
                     [](const TelemetrySample& s)
                         -> const std::vector<std::uint64_t>& {
                       return s.tile_nacks_sent;
                     }),
            tile_sum(samples,
                     [](const TelemetrySample& s)
                         -> const std::vector<std::uint64_t>& {
                       return s.tile_nacks_recv;
                     }));
  EXPECT_GT(tile_sum(samples,
                     [](const TelemetrySample& s)
                         -> const std::vector<std::uint64_t>& {
                       return s.tile_aborts;
                     }),
            0u)
      << "kmeans under contention must abort somewhere";
}

TEST(SpatialTelemetry, SpatialSamplingDoesNotPerturbResults) {
  metrics::ExperimentParams plain_params;
  plain_params.workload = "kmeans";
  plain_params.scheme = Scheme::kPuno;
  plain_params.seed = 3;
  plain_params.scale = 0.1;
  plain_params.telemetry.interval = 100;
  metrics::ExperimentParams spatial_params = plain_params;
  spatial_params.telemetry.spatial = true;

  const metrics::RunResult plain = metrics::run_experiment(plain_params);
  const metrics::RunResult spatial = metrics::run_experiment(spatial_params);
  std::ostringstream a, b;
  metrics::write_result_jsonl(plain, a);
  metrics::write_result_jsonl(spatial, b);
  EXPECT_EQ(a.str(), b.str())
      << "per-tile channels changed the simulation";
}

TEST(SpatialTelemetry, JsonlRoundTripsSpatialChannels) {
  const auto run = run_spatial(Scheme::kPuno);
  const auto& samples = run.sampler->series().samples();
  std::ostringstream os;
  write_telemetry_jsonl(samples, os);
  EXPECT_NE(os.str().find("\"tile_aborts\""), std::string::npos);
  std::vector<TelemetrySample> parsed;
  ASSERT_TRUE(read_telemetry_jsonl(os.str(), parsed));
  EXPECT_EQ(parsed, samples) << "spatial vectors must round-trip exactly";
}

TEST(SpatialTelemetry, NonSpatialOutputHasNoTileKeys) {
  TelemetrySample s;
  s.cycle = 100;
  s.window = 100;
  s.router_traversals = {1, 2, 3, 4};
  std::ostringstream jsonl;
  write_sample_jsonl(s, jsonl);
  EXPECT_EQ(jsonl.str().find("tile_"), std::string::npos)
      << "non-spatial rows must stay byte-identical to the old schema";
  EXPECT_EQ(telemetry_csv_header(4).find("tile_"), std::string::npos);
  EXPECT_NE(telemetry_csv_header(4, true).find("tile_aborts0"),
            std::string::npos);
}

TEST(SpatialTelemetry, SamplerAllocatesTileVectorsOnlyWhenAsked) {
  SystemConfig cfg;
  cfg.scheme = Scheme::kPuno;
  cfg.seed = 3;
  auto workload = workloads::stamp::make("kmeans", cfg.num_nodes, 3, 0.05);
  arch::Cmp cmp(cfg, *workload);
  TelemetryRequest req;
  req.interval = 200;
  auto sampler = TelemetrySampler::attach(cmp, req);
  cmp.run(100'000);
  sampler->finish();
  for (const TelemetrySample& s : sampler->series().samples()) {
    EXPECT_FALSE(s.spatial());
    EXPECT_TRUE(s.tile_aborts.empty());
    EXPECT_TRUE(s.tile_router_queued.empty());
  }
}

TEST(Heatmap, CellColorRampEndpoints) {
  EXPECT_EQ(heat_color(0.0), "#f3f6fb");
  EXPECT_EQ(heat_color(1.0), "#d0342c");
  EXPECT_EQ(heat_color(-5.0), heat_color(0.0)) << "t clamps";
  EXPECT_EQ(heat_color(7.0), heat_color(1.0));
}

TEST(Heatmap, SvgCoversNonSquareGeometry) {
  const MeshGeometry g{8, 4, 2};
  ASSERT_TRUE(g.valid());
  std::vector<std::uint64_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  std::ostringstream os;
  write_heatmap_svg(os, g, v, 7, "hm", 10);
  const std::string svg = os.str();
  EXPECT_EQ(svg.find("http"), std::string::npos);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(svg.find("id=\"hm-" + std::to_string(i) + "\""),
              std::string::npos);
  }
  EXPECT_NE(svg.find("tile 7 (3,1): 7"), std::string::npos)
      << "tile n sits at (n % width, n / width)";
}

TEST(Heatmap, InvalidGeometryIsDetected) {
  EXPECT_FALSE((MeshGeometry{8, 3, 2}.valid()));
  EXPECT_FALSE((MeshGeometry{0, 0, 0}.valid()));
  EXPECT_TRUE((MeshGeometry{256, 32, 8}.valid()));
}

TEST(Heatmap, ConcentrationIndexRange) {
  EXPECT_DOUBLE_EQ(concentration_index({5, 5, 5, 5}), 0.0) << "uniform";
  EXPECT_DOUBLE_EQ(concentration_index({9, 0, 0, 0}), 1.0) << "one tile";
  EXPECT_DOUBLE_EQ(concentration_index({0, 0, 0}), 0.0) << "no events";
  EXPECT_DOUBLE_EQ(concentration_index({}), 0.0);
  const double mid = concentration_index({6, 2, 1, 1});
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(Heatmap, TopHotspotsRankAndShare) {
  const auto spots = top_hotspots({0, 7, 3, 7, 0, 3}, 3);
  ASSERT_EQ(spots.size(), 3u);
  EXPECT_EQ(spots[0].tile, 1u) << "ties break toward the lower tile id";
  EXPECT_EQ(spots[1].tile, 3u);
  EXPECT_EQ(spots[2].tile, 2u);
  EXPECT_DOUBLE_EQ(spots[0].share, 7.0 / 20.0);
  EXPECT_TRUE(top_hotspots({0, 0}, 4).empty())
      << "zero-valued tiles are never hotspots";
}

TEST(Html, EscapesEveryDangerousCharacter) {
  EXPECT_EQ(html::escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
  EXPECT_EQ(html::escape("plain"), "plain");
}

std::vector<TelemetrySample> spatial_series(std::size_t tiles,
                                            std::size_t windows) {
  std::vector<TelemetrySample> series;
  for (std::size_t w = 1; w <= windows; ++w) {
    TelemetrySample s;
    s.cycle = static_cast<Cycle>(100 * w);
    s.window = 100;
    s.router_traversals.assign(tiles, 2);
    s.tile_aborts.assign(tiles, 0);
    s.tile_aborts[w % tiles] = 3;
    s.tile_false_aborts.assign(tiles, 1);
    s.tile_nacks_sent.assign(tiles, 1);
    s.tile_nacks_recv.assign(tiles, 1);
    s.tile_pbuffer_evictions.assign(tiles, 0);
    s.tile_ud_mispredicts.assign(tiles, 0);
    s.tile_txn_pins.assign(tiles, 2);
    s.tile_router_queued.assign(tiles, 1);
    series.push_back(std::move(s));
  }
  return series;
}

TEST(Dashboard, MeshHeatmapSectionRendersNonSquare) {
  DashboardMeta meta;
  meta.workload = "w<1>";  // must come out escaped
  meta.scheme = "PUNO";
  meta.cycles = 800;
  meta.interval = 100;
  meta.num_nodes = 8;
  meta.mesh_width = 4;
  meta.mesh_height = 2;
  std::ostringstream os;
  write_dashboard_html(meta, spatial_series(8, 8), nullptr, os);
  const std::string page = os.str();
  EXPECT_NE(page.find("Mesh heatmaps"), std::string::npos);
  EXPECT_NE(page.find("id=\"aborts-7\""), std::string::npos)
      << "every tile of every channel gets an addressable cell";
  EXPECT_NE(page.find("id=\"hmscrub\""), std::string::npos)
      << "multi-window spatial series gets the time scrubber";
  EXPECT_NE(page.find("4&times;2 mesh (8 tiles)"), std::string::npos);
  EXPECT_NE(page.find("w&lt;1&gt;"), std::string::npos)
      << "workload strings are HTML-escaped";
  EXPECT_EQ(page.find("http://"), std::string::npos);
  EXPECT_EQ(page.find("https://"), std::string::npos);
  EXPECT_NE(page.find("<meta charset=\"utf-8\">"), std::string::npos);
}

TEST(Dashboard, NoHeatmapSectionWithoutGeometry) {
  DashboardMeta meta;
  meta.workload = "intruder";
  meta.scheme = "PUNO";
  meta.cycles = 800;
  meta.interval = 100;  // num_nodes left 0: geometry unknown
  std::ostringstream os;
  write_dashboard_html(meta, spatial_series(8, 8), nullptr, os);
  EXPECT_EQ(os.str().find("Mesh heatmaps"), std::string::npos);
}

}  // namespace
}  // namespace puno::telemetry
