// End-to-end telemetry contracts over real simulations:
//
//   1. Observability: attaching the sampler never changes simulated results
//      (bit-identical RunResult with and without telemetry).
//   2. Determinism: the runner produces byte-identical telemetry JSONL no
//      matter how many worker threads execute the sweep.
//   3. Cache contract: sampled jobs bypass the result cache and sampling is
//      invisible to the cache key.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "metrics/stats_io.hpp"
#include "runner/cache.hpp"
#include "runner/runner.hpp"
#include "telemetry/export.hpp"

namespace puno::telemetry {
namespace {

namespace fs = std::filesystem;

metrics::ExperimentParams small_params(Scheme scheme = Scheme::kPuno) {
  metrics::ExperimentParams p;
  p.workload = "kmeans";
  p.scheme = scheme;
  p.seed = 3;
  p.scale = 0.1;
  return p;
}

std::string result_row(const metrics::RunResult& r) {
  std::ostringstream os;
  metrics::write_result_jsonl(r, os);
  return os.str();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("puno-telemetry-test-") + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(TelemetryIntegration, SamplingDoesNotPerturbResults) {
  for (const Scheme scheme : {Scheme::kBaseline, Scheme::kPuno}) {
    const metrics::RunResult plain = metrics::run_experiment(
        small_params(scheme));

    metrics::ExperimentParams sampled_params = small_params(scheme);
    sampled_params.telemetry.interval = 100;
    metrics::RunResult sampled = metrics::run_experiment(sampled_params);
    EXPECT_GT(sampled.telemetry_samples, 0u);

    // Strip the telemetry bookkeeping: every simulated field must match.
    sampled.telemetry_path.clear();
    sampled.telemetry_samples = 0;
    sampled.telemetry_dropped = 0;
    EXPECT_EQ(result_row(sampled), result_row(plain))
        << "scheme " << to_string(scheme)
        << ": sampling changed simulated results";
  }
}

TEST(TelemetryIntegration, RunnerTelemetryIsThreadCountInvariant) {
  const auto sweep_files = [](unsigned jobs, const TempDir& dir) {
    std::vector<runner::JobSpec> specs;
    for (const Scheme scheme : {Scheme::kBaseline, Scheme::kPuno}) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        runner::JobSpec spec;
        spec.params = small_params(scheme);
        spec.params.seed = seed;
        spec.params.scale = 0.05;
        spec.params.telemetry.interval = 200;
        spec.params.telemetry.jsonl_path =
            (dir.path / (std::string(to_string(scheme)) + "-s" +
                         std::to_string(seed) + ".telemetry.jsonl"))
                .string();
        specs.push_back(std::move(spec));
      }
    }
    runner::RunnerOptions options;
    options.jobs = jobs;
    const runner::SweepResult sweep = runner::run_jobs(specs, options);
    EXPECT_EQ(sweep.failed, 0u);
    std::vector<std::string> bytes;
    for (const runner::JobSpec& spec : specs) {
      bytes.push_back(file_bytes(spec.params.telemetry.jsonl_path));
      EXPECT_FALSE(bytes.back().empty());
    }
    return bytes;
  };

  const TempDir serial_dir("serial");
  const TempDir parallel_dir("parallel");
  const auto serial = sweep_files(1, serial_dir);
  const auto parallel = sweep_files(8, parallel_dir);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i])
        << "telemetry JSONL " << i << " differs across thread counts";
  }
}

TEST(TelemetryIntegration, SampledJobsBypassTheCache) {
  const TempDir dir("cache");
  runner::ResultCache cache(dir.path / "cache");

  runner::JobSpec spec;
  spec.params = small_params();
  spec.params.scale = 0.05;
  runner::RunnerOptions options;
  options.jobs = 1;
  options.cache = &cache;

  // Prime the cache with an unsampled run.
  auto sweep = runner::run_jobs({spec}, options);
  EXPECT_EQ(sweep.simulated, 1u);
  sweep = runner::run_jobs({spec}, options);
  EXPECT_EQ(sweep.cached, 1u) << "second unsampled run is a cache hit";

  // The sampled twin must simulate (its JSONL cannot come from the cache)
  // even though sampling does not change the cache key.
  runner::JobSpec sampled = spec;
  sampled.params.telemetry.interval = 200;
  sampled.params.telemetry.jsonl_path =
      (dir.path / "sampled.telemetry.jsonl").string();
  EXPECT_EQ(runner::cache_key(sampled.params), runner::cache_key(spec.params))
      << "telemetry must not be part of the cache key";
  sweep = runner::run_jobs({sampled}, options);
  EXPECT_EQ(sweep.simulated, 1u) << "sampled job must not be served cached";
  EXPECT_FALSE(file_bytes(sampled.params.telemetry.jsonl_path).empty());
}

TEST(TelemetryIntegration, RunResultRowRoundTripsTelemetryKeys) {
  metrics::RunResult r;
  r.workload = "kmeans";
  r.scheme = Scheme::kPuno;
  r.telemetry_path = "telemetry/kmeans.telemetry.jsonl";
  r.telemetry_samples = 42;
  r.telemetry_dropped = 3;
  metrics::RunResult back;
  ASSERT_TRUE(metrics::read_result_jsonl(result_row(r), back));
  EXPECT_EQ(back.telemetry_path, r.telemetry_path);
  EXPECT_EQ(back.telemetry_samples, 42u);
  EXPECT_EQ(back.telemetry_dropped, 3u);

  metrics::RunResult unsampled;
  unsampled.workload = "kmeans";
  unsampled.scheme = Scheme::kPuno;
  EXPECT_EQ(result_row(unsampled).find("telemetry"), std::string::npos)
      << "unsampled rows carry no telemetry keys";
}

TEST(TelemetryIntegration, ExperimentWritesRequestedFiles) {
  const TempDir dir("files");
  metrics::ExperimentParams p = small_params();
  p.scale = 0.05;
  p.telemetry.interval = 250;
  p.telemetry.jsonl_path = (dir.path / "run.telemetry.jsonl").string();
  p.telemetry.csv_path = (dir.path / "run.telemetry.csv").string();
  p.telemetry.dashboard_path = (dir.path / "run.dashboard.html").string();
  const metrics::RunResult r = metrics::run_experiment(p);

  EXPECT_EQ(r.telemetry_path, p.telemetry.jsonl_path);
  std::vector<TelemetrySample> samples;
  ASSERT_TRUE(
      read_telemetry_jsonl(file_bytes(p.telemetry.jsonl_path), samples));
  EXPECT_EQ(samples.size(), r.telemetry_samples);
  Cycle covered = 0;
  for (const TelemetrySample& s : samples) covered += s.window;
  EXPECT_EQ(covered, r.cycles) << "windows tile the run";
  EXPECT_FALSE(file_bytes(p.telemetry.csv_path).empty());
  const std::string html = file_bytes(p.telemetry.dashboard_path);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace puno::telemetry
