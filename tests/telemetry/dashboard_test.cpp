// Dashboard generator contracts: self-contained output, deterministic
// bytes, and the percentile panel's dependence on the stats registry.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "telemetry/dashboard.hpp"
#include "telemetry/series.hpp"

namespace puno::telemetry {
namespace {

std::vector<TelemetrySample> tiny_series() {
  std::vector<TelemetrySample> series;
  for (int i = 1; i <= 6; ++i) {
    TelemetrySample s;
    s.cycle = static_cast<Cycle>(100 * i);
    s.window = 100;
    s.cores_in_txn = static_cast<std::uint32_t>(i % 4);
    s.commits = static_cast<std::uint64_t>(2 * i);
    s.aborts = static_cast<std::uint64_t>(i);
    s.unicasts = 5;
    s.mp_feedbacks = 1;
    s.flits_sent = 50;
    s.core_state = {0, 1, 2, 1};
    s.router_traversals = {10, 20, 30, 40};
    series.push_back(s);
  }
  return series;
}

DashboardMeta meta() {
  DashboardMeta m;
  m.workload = "intruder";
  m.scheme = "PUNO";
  m.cycles = 600;
  m.interval = 100;
  return m;
}

std::string render(const sim::StatsRegistry* stats) {
  std::ostringstream os;
  write_dashboard_html(meta(), tiny_series(), stats, os);
  return os.str();
}

TEST(Dashboard, IsACompleteHtmlDocument) {
  const std::string html = render(nullptr);
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("intruder"), std::string::npos);
  EXPECT_NE(html.find("PUNO"), std::string::npos);
}

TEST(Dashboard, HasInlineSvgSparklines) {
  const std::string html = render(nullptr);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos);
}

TEST(Dashboard, IsSelfContained) {
  const std::string html = render(nullptr);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script src"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos)
      << "no external stylesheets";
}

TEST(Dashboard, IsByteDeterministic) {
  EXPECT_EQ(render(nullptr), render(nullptr));
}

TEST(Dashboard, PercentilePanelNeedsStats) {
  sim::StatsRegistry stats;
  sim::Histogram& txn = stats.histogram("htm.txn_len_cycles", 256);
  sim::Histogram& backoff = stats.histogram("htm.backoff_cycles", 256);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    txn.sample(v);
    backoff.sample(2 * v);
  }
  const std::string with = render(&stats);
  const std::string without = render(nullptr);
  EXPECT_NE(with.find("p99"), std::string::npos);
  EXPECT_EQ(without.find("p99"), std::string::npos)
      << "no stats registry, no percentile table";
}

TEST(Dashboard, EmptySeriesStillRenders) {
  std::ostringstream os;
  write_dashboard_html(meta(), {}, nullptr, os);
  const std::string html = os.str();
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace puno::telemetry
