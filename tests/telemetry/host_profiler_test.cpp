// HostProfiler unit behaviour plus its integration with the kernel's
// profiled stepping path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/kernel.hpp"
#include "telemetry/host_profiler.hpp"

namespace puno::telemetry {
namespace {

TEST(HostProfiler, BucketsAccumulateByIndex) {
  HostProfiler p;
  p.declare_tickable(0, "noc.mesh");
  p.declare_hook(0, "telemetry.sampler");
  p.tickable_cost(0, 100);
  p.tickable_cost(0, 50);
  p.hook_cost(0, 30);
  p.event_cost(4, 20);

  ASSERT_EQ(p.tickables().size(), 1u);
  EXPECT_EQ(p.tickables()[0].name, "noc.mesh");
  EXPECT_EQ(p.tickables()[0].calls, 2u);
  EXPECT_EQ(p.tickables()[0].ticks, 150u);
  ASSERT_EQ(p.hooks().size(), 1u);
  EXPECT_EQ(p.hooks()[0].ticks, 30u);
  EXPECT_EQ(p.events().calls, 4u);
  EXPECT_EQ(p.events().ticks, 20u);
  EXPECT_EQ(p.total_ticks(), 200u);
}

TEST(HostProfiler, CostBeforeDeclareStillCounts) {
  HostProfiler p;
  p.tickable_cost(2, 40);  // indices 0..1 never declared
  ASSERT_GE(p.tickables().size(), 3u);
  EXPECT_EQ(p.tickables()[2].ticks, 40u);
  EXPECT_EQ(p.total_ticks(), 40u);
}

TEST(HostProfiler, ReportNamesEveryComponent) {
  HostProfiler p;
  p.declare_tickable(0, "noc.mesh");
  p.tickable_cost(0, 1000);
  p.event_cost(1, 500);
  std::ostringstream os;
  p.write_report(os);
  const std::string report = os.str();
  EXPECT_NE(report.find("noc.mesh"), std::string::npos);
  EXPECT_NE(report.find("kernel.events"), std::string::npos);
  EXPECT_NE(report.find("%"), std::string::npos);
}

TEST(HostProfiler, JsonFormIsWellFormed) {
  HostProfiler p;
  p.declare_tickable(0, "noc.mesh");
  p.tickable_cost(0, 123);
  std::ostringstream os;
  p.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"components\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"noc.mesh\""), std::string::npos);
  EXPECT_NE(json.find("\"ticks\":123"), std::string::npos);
  EXPECT_NE(json.find("\"total_ticks\":"), std::string::npos);
}

struct SpinTickable final : sim::Tickable {
  void tick(Cycle) override {
    // Enough work to register non-zero ticks on any sane TSC.
    for (volatile int i = 0; i < 64; ++i) {
    }
  }
};

TEST(HostProfilerIntegration, KernelAttributesCostsToNames) {
#ifdef PUNO_PROFILING_DISABLED
  GTEST_SKIP() << "profiling path compiled out";
#else
  sim::Kernel kernel;
  SpinTickable t;
  kernel.add_tickable(t, "spin.tickable");
  bool hook_ran = false;
  kernel.add_post_cycle_hook([&](Cycle) { hook_ran = true; },
                             "spin.hook");
  kernel.schedule(1, [] {});

  HostProfiler p;
  kernel.set_profiler(&p);
  for (int i = 0; i < 100; ++i) kernel.step();
  kernel.set_profiler(nullptr);

  EXPECT_TRUE(hook_ran);
  ASSERT_EQ(p.tickables().size(), 1u);
  EXPECT_EQ(p.tickables()[0].name, "spin.tickable");
  EXPECT_EQ(p.tickables()[0].calls, 100u);
  EXPECT_GT(p.tickables()[0].ticks, 0u);
  ASSERT_EQ(p.hooks().size(), 1u);
  EXPECT_EQ(p.hooks()[0].name, "spin.hook");
  EXPECT_EQ(p.hooks()[0].calls, 100u);
  EXPECT_EQ(p.events().calls, 1u) << "one scheduled event ran";
#endif
}

TEST(HostProfilerIntegration, LateAttachReplaysDeclarations) {
#ifdef PUNO_PROFILING_DISABLED
  GTEST_SKIP() << "profiling path compiled out";
#else
  sim::Kernel kernel;
  SpinTickable t;
  kernel.add_tickable(t, "declared.before.attach");
  HostProfiler p;
  kernel.set_profiler(&p);  // must replay existing registrations
  kernel.step();
  kernel.set_profiler(nullptr);
  ASSERT_EQ(p.tickables().size(), 1u);
  EXPECT_EQ(p.tickables()[0].name, "declared.before.attach");
#endif
}

TEST(HostProfilerIntegration, DetachedKernelStepsWithoutProfiler) {
  sim::Kernel kernel;
  SpinTickable t;
  kernel.add_tickable(t, "spin.tickable");
  for (int i = 0; i < 10; ++i) kernel.step();
  EXPECT_EQ(kernel.now(), 10u);
}

}  // namespace
}  // namespace puno::telemetry
