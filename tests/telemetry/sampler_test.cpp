// SeriesRing container semantics and TelemetrySampler window accounting
// over real (small) simulations.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>

#include "arch/cmp.hpp"
#include "sim/kernel.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/series.hpp"
#include "workloads/stamp.hpp"

namespace puno::telemetry {
namespace {

TelemetrySample sample_at(Cycle c) {
  TelemetrySample s;
  s.cycle = c;
  s.window = 1;
  return s;
}

TEST(SeriesRing, KeepsOldestDropsTail) {
  SeriesRing ring(3);
  for (Cycle c = 1; c <= 5; ++c) ring.push(sample_at(c));
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.samples()[0].cycle, 1u) << "oldest samples are retained";
  EXPECT_EQ(ring.samples()[2].cycle, 3u);
}

TEST(SeriesRing, ZeroCapacityClampsToOne) {
  SeriesRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(sample_at(1));
  ring.push(sample_at(2));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(TelemetryRequest, ActiveMeansNonZeroInterval) {
  TelemetryRequest req;
  EXPECT_FALSE(req.active()) << "default is off";
  req.interval = 100;
  EXPECT_TRUE(req.active());
}

struct SampledRun {
  std::unique_ptr<arch::Cmp> cmp;
  std::unique_ptr<TelemetrySampler> sampler;
  std::unique_ptr<workloads::Workload> workload;
};

SampledRun run_sampled(Cycle interval, std::size_t capacity,
                       Scheme scheme = Scheme::kPuno) {
  SampledRun r;
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 3;
  r.workload = workloads::stamp::make("kmeans", cfg.num_nodes, 3, 0.05);
  r.cmp = std::make_unique<arch::Cmp>(cfg, *r.workload);
  TelemetryRequest req;
  req.interval = interval;
  req.capacity = capacity;
  r.sampler = TelemetrySampler::attach(*r.cmp, req);
  r.cmp->run(2'000'000);
  r.sampler->finish();
  return r;
}

TEST(TelemetrySampler, WindowsTileTheRun) {
  const auto run = run_sampled(250, SeriesRing::kDefaultCapacity);
  const auto& samples = run.sampler->series().samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(run.sampler->series().dropped(), 0u);

  Cycle covered = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const TelemetrySample& s = samples[i];
    EXPECT_GT(s.window, 0u);
    if (i + 1 < samples.size()) {
      EXPECT_EQ(s.window, 250u) << "only the last window may be partial";
    }
    covered += s.window;
    EXPECT_EQ(s.cycle, covered) << "cycle is the running end-of-window";
  }
  EXPECT_EQ(covered, run.cmp->kernel().now())
      << "windows sum to the run's cycle count";
}

TEST(TelemetrySampler, DeltasSumToRunTotals) {
  const auto run = run_sampled(100, SeriesRing::kDefaultCapacity);
  ASSERT_EQ(run.sampler->series().dropped(), 0u);
  const auto& samples = run.sampler->series().samples();
  const auto sum = [&](auto field) {
    std::uint64_t acc = 0;
    for (const TelemetrySample& s : samples) acc += field(s);
    return acc;
  };
  auto& stats = run.cmp->kernel().stats();
  EXPECT_EQ(sum([](const auto& s) { return s.commits; }),
            stats.counter("htm.commits").value());
  EXPECT_EQ(sum([](const auto& s) { return s.aborts; }),
            stats.counter("htm.aborts").value());
  EXPECT_EQ(sum([](const auto& s) { return s.flits_sent; }),
            stats.counter("noc.flits_sent").value());
  EXPECT_EQ(sum([](const auto& s) { return s.traversals; }),
            stats.counter("noc.router_traversals").value());
}

TEST(TelemetrySampler, PerRouterDeltasSumToMeshTotal) {
  const auto run = run_sampled(100, SeriesRing::kDefaultCapacity);
  const auto& samples = run.sampler->series().samples();
  std::uint64_t per_router = 0;
  std::uint64_t mesh_wide = 0;
  for (const TelemetrySample& s : samples) {
    mesh_wide += s.traversals;
    per_router += std::accumulate(s.router_traversals.begin(),
                                  s.router_traversals.end(), std::uint64_t{0});
  }
  EXPECT_EQ(per_router, mesh_wide);
}

TEST(TelemetrySampler, CapacityTruncatesTailAndCounts) {
  const auto run = run_sampled(50, 4);
  EXPECT_EQ(run.sampler->series().size(), 4u);
  EXPECT_GT(run.sampler->series().dropped(), 0u);
  EXPECT_EQ(run.sampler->series().samples()[0].cycle, 50u)
      << "the retained samples are the run's start";
}

TEST(TelemetrySampler, FinishIsIdempotent) {
  auto run = run_sampled(250, SeriesRing::kDefaultCapacity);
  const std::size_t n = run.sampler->series().size();
  run.sampler->finish();
  EXPECT_EQ(run.sampler->series().size(), n)
      << "no cycles elapsed, so no extra window";
}

TEST(TelemetrySampler, CoreStateVectorMatchesGaugeCounts) {
  const auto run = run_sampled(100, SeriesRing::kDefaultCapacity);
  for (const TelemetrySample& s : run.sampler->series().samples()) {
    std::uint32_t in_txn = 0, aborting = 0;
    for (const std::uint64_t st : s.core_state) {
      if (st == 1) ++in_txn;
      if (st == 2) ++aborting;
    }
    EXPECT_EQ(in_txn, s.cores_in_txn);
    EXPECT_EQ(aborting, s.cores_aborting);
  }
}

}  // namespace
}  // namespace puno::telemetry
