// Telemetry serialization contracts: JSONL round trips exactly, the reader
// tolerates schema growth, and both writers are byte-deterministic.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/series.hpp"

namespace puno::telemetry {
namespace {

TelemetrySample make_sample() {
  TelemetrySample s;
  s.cycle = 2000;
  s.window = 500;
  s.cores_in_txn = 5;
  s.cores_aborting = 2;
  s.read_set_blocks = 37;
  s.write_set_blocks = 12;
  s.core_state = {0, 1, 1, 2, 0, 1, 1, 2};
  s.commits = 11;
  s.aborts = 4;
  s.false_aborts = 1;
  s.notified_backoffs = 3;
  s.nacks = 9;
  s.dir_busy = 6;
  s.dir_entries = 420;
  s.txgetx_services = 17;
  s.unicasts = 8;
  s.multicasts = 2;
  s.mp_feedbacks = 1;
  s.pbuffer_usable = 14;
  s.txlb_entries = 5;
  s.flits_sent = 812;
  s.flits_ejected = 790;
  s.traversals = 2301;
  s.noc_buffered = 23;
  s.noc_inflight = 7;
  s.router_traversals = {100, 200, 300, 400, 500, 600, 101, 100};
  return s;
}

TEST(TelemetryExport, SampleRoundTripsExactly) {
  const TelemetrySample s = make_sample();
  std::ostringstream os;
  write_sample_jsonl(s, os);
  const std::string line = os.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  TelemetrySample back;
  ASSERT_TRUE(read_sample_jsonl(line, back));
  EXPECT_EQ(back, s);
}

TEST(TelemetryExport, SeriesRoundTripsExactly) {
  std::vector<TelemetrySample> series;
  for (int i = 1; i <= 4; ++i) {
    TelemetrySample s = make_sample();
    s.cycle = static_cast<Cycle>(500 * i);
    s.commits = static_cast<std::uint64_t>(i);
    series.push_back(s);
  }
  std::ostringstream os;
  write_telemetry_jsonl(series, os);

  std::vector<TelemetrySample> back;
  ASSERT_TRUE(read_telemetry_jsonl(os.str(), back));
  EXPECT_EQ(back, series);
}

TEST(TelemetryExport, WriterIsByteDeterministic) {
  const TelemetrySample s = make_sample();
  std::ostringstream a, b;
  write_sample_jsonl(s, a);
  write_sample_jsonl(s, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(TelemetryExport, ReaderSkipsUnknownKeys) {
  const TelemetrySample s = make_sample();
  std::ostringstream os;
  write_sample_jsonl(s, os);
  std::string line = os.str();
  // Splice a future-schema key into the object.
  const std::size_t brace = line.find('{');
  ASSERT_NE(brace, std::string::npos);
  line.insert(brace + 1, "\"future_key\":[1,2,3],\"future_flag\":true,");

  TelemetrySample back;
  ASSERT_TRUE(read_sample_jsonl(line, back));
  EXPECT_EQ(back, s);
}

TEST(TelemetryExport, ReaderRejectsMalformedInput) {
  TelemetrySample out;
  EXPECT_FALSE(read_sample_jsonl("", out));
  EXPECT_FALSE(read_sample_jsonl("not json", out));
  EXPECT_FALSE(read_sample_jsonl("{\"cycle\":", out));
  std::vector<TelemetrySample> series;
  EXPECT_FALSE(read_telemetry_jsonl("{\"cycle\":1}\ngarbage\n", series));
}

TEST(TelemetryExport, ReaderIgnoresBlankLines) {
  const TelemetrySample s = make_sample();
  std::ostringstream os;
  write_sample_jsonl(s, os);
  const std::string text = "\n" + os.str() + "\n\n";
  std::vector<TelemetrySample> back;
  ASSERT_TRUE(read_telemetry_jsonl(text, back));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], s);
}

TEST(TelemetryExport, CsvHeaderFlattensPerNodeColumns) {
  const std::string header = telemetry_csv_header(4);
  EXPECT_NE(header.find("cycle"), std::string::npos);
  EXPECT_NE(header.find("core0"), std::string::npos);
  EXPECT_NE(header.find("core3"), std::string::npos);
  EXPECT_EQ(header.find("core4"), std::string::npos);
  EXPECT_NE(header.find("router0"), std::string::npos);
  EXPECT_NE(header.find("router3"), std::string::npos);
}

TEST(TelemetryExport, CsvRowPerSamplePlusHeader) {
  std::vector<TelemetrySample> series = {make_sample(), make_sample()};
  std::ostringstream os;
  write_telemetry_csv(series, 8, os);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (const char c : text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 3u) << "header + one row per sample";
  EXPECT_EQ(text.rfind(telemetry_csv_header(8), 0), 0u)
      << "first line is the header";
}

}  // namespace
}  // namespace puno::telemetry
