// Parameterized NoC property sweep: random traffic must be fully delivered
// and the network must drain under every buffer/VC/pipeline configuration.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "noc/mesh.hpp"
#include "sim/rng.hpp"

namespace puno::noc {
namespace {

struct TestPayload final : PacketPayload {
  explicit TestPayload(int v) : value(v) {}
  int value;
};

// (vc_depth, vcs_per_vnet, pipeline_stages, link_latency)
using NocParam = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                            std::uint32_t>;

class NocParamTest : public ::testing::TestWithParam<NocParam> {};

TEST_P(NocParamTest, RandomTrafficFullyDelivered) {
  const auto& [depth, vcs, stages, link] = GetParam();
  sim::Kernel kernel;
  NocConfig cfg;
  cfg.vc_depth = depth;
  cfg.vcs_per_vnet = vcs;
  cfg.pipeline_stages = stages;
  cfg.link_latency = link;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);
  sim::Rng rng(99, depth * 1000 + vcs * 100 + stages * 10 + link);

  int delivered = 0;
  std::map<int, int> outstanding;
  for (NodeId d = 0; d < 16; ++d) {
    mesh.set_handler(d, [&](Packet p) {
      ++delivered;
      --outstanding[static_cast<const TestPayload*>(p.payload.get())->value];
    });
  }

  constexpr int kPackets = 600;
  int sent = 0;
  std::function<void()> injector = [&] {
    for (int burst = 0; burst < 6 && sent < kPackets; ++burst, ++sent) {
      const auto src = static_cast<NodeId>(rng.next_below(16));
      auto dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % 16);
      ++outstanding[sent];
      mesh.send(src, dst, static_cast<VNet>(rng.next_below(3)),
                rng.next_bool(0.4) ? 64 : 0,
                std::make_shared<TestPayload>(sent));
    }
    if (sent < kPackets) kernel.schedule(3, injector);
  };
  kernel.schedule(1, injector);

  kernel.run_until([&] { return delivered == kPackets && mesh.idle(); },
                   1'000'000);
  EXPECT_EQ(delivered, kPackets);
  EXPECT_TRUE(mesh.idle());
  for (const auto& [id, count] : outstanding) {
    ASSERT_EQ(count, 0) << "packet " << id;
  }
}

TEST_P(NocParamTest, LatencyLowerBoundRespected) {
  const auto& [depth, vcs, stages, link] = GetParam();
  sim::Kernel kernel;
  NocConfig cfg;
  cfg.vc_depth = depth;
  cfg.vcs_per_vnet = vcs;
  cfg.pipeline_stages = stages;
  cfg.link_latency = link;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  Cycle arrived = 0;
  mesh.set_handler(15, [&](Packet) { arrived = kernel.now(); });
  const Cycle sent_at = kernel.now();
  mesh.send(0, 15, VNet::kRequest, 0, std::make_shared<TestPayload>(1));
  kernel.run_until([&] { return arrived != 0; }, 10000);
  ASSERT_NE(arrived, 0u);
  // 6 hops, each at least (pipeline-1) cycles of router occupancy plus the
  // link; the analytical floor must never be violated.
  const Cycle floor = 6 * (stages - 1 + link);
  EXPECT_GE(arrived - sent_at, floor);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NocParamTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),   // vc_depth
                       ::testing::Values(1u, 2u),       // vcs_per_vnet
                       ::testing::Values(2u, 4u),       // pipeline stages
                       ::testing::Values(1u, 2u)),      // link latency
    [](const ::testing::TestParamInfo<NocParam>& info) {
      // std::get (not structured bindings): brackets would split the macro
      // arguments.
      return "d" + std::to_string(std::get<0>(info.param)) + "_v" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) + "_l" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace puno::noc
